(* Command-line front end for the reproduction: regenerate any paper
   figure or table, list the experiment registry, or run a quick demo. *)

open Cmdliner

(* Shared -j/--jobs flag: number of worker domains for the sweep
   runners. 0 (the default) means "auto": all recommended domains.
   Results are bit-identical whatever the value. Negative counts are
   rejected at parse time so the user gets a usage error, not a
   backtrace. *)
let jobs_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> Ok n
    | Some _ -> Error (`Msg "jobs count must be >= 0")
    | None ->
        Error
          (`Msg
             (Printf.sprintf "invalid jobs count %S (expected an integer)" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value & opt jobs_conv 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run sweep points on $(docv) worker domains (0 = one per \
           available core). Output is identical for every $(docv).")

let resolve_jobs = function 0 -> Ebrc.Pool.default_jobs () | n -> n

(* Shared telemetry sinks: any of these flags turns recording on for
   the duration of the command; sinks are flushed on the way out, even
   when the command fails. *)
let telemetry_args =
  let jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Enable telemetry and write counters, histograms, spans and \
             events as JSON lines to $(docv) on exit.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Enable telemetry and write a Chrome trace_event file to \
             $(docv) on exit (load it at chrome://tracing or \
             ui.perfetto.dev).")
  in
  let summary =
    Arg.(
      value & flag
      & info [ "telemetry-summary" ]
          ~doc:"Enable telemetry and print a summary table on exit.")
  in
  Term.(
    const (fun jsonl trace summary -> (jsonl, trace, summary))
    $ jsonl $ trace $ summary)

(* Scenario result cache: on by default (identical configs across
   figures are simulated once); --no-cache forces every run. *)
let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Bypass the scenario result cache and re-simulate every \
           scenario (outputs are byte-identical either way; see also \
           EBRC_CACHE_DIR).")

let apply_cache no_cache = if no_cache then Ebrc.Result_cache.set_enabled false

(* Event core: the timing wheel is on by default; --no-wheel (or
   EBRC_WHEEL=0) drops every engine back to the pure binary heap.
   Dispatch order is bit-identical either way — the toggle exists for
   A/B timing and for isolating a suspected scheduler bug. *)
let no_wheel_arg =
  Arg.(
    value & flag
    & info [ "no-wheel" ]
        ~doc:
          "Schedule every event on the binary heap instead of the            hierarchical timing wheel (outputs are byte-identical either            way; see also EBRC_WHEEL=0).")

let apply_wheel no_wheel = if no_wheel then Ebrc.Engine.set_wheel false

(* Hybrid packet/fluid layer: on by default; --no-hybrid (or
   EBRC_HYBRID=0) makes every scenario ignore its [background] config
   and run packet-only — structurally inert, so such a run is
   bit-identical to one whose config never had a background. *)
let no_hybrid_arg =
  Arg.(
    value & flag
    & info [ "no-hybrid" ]
        ~doc:
          "Disable the fluid background layer: scenarios run packet-only, \
           ignoring any configured background aggregate (see also \
           EBRC_HYBRID=0).")

let apply_hybrid no_hybrid = if no_hybrid then Ebrc.Fluid.set_hybrid false

(* Watchdog budgets (opt-in): cap every Engine.run in the process.
   Exceeding a budget raises Engine.Budget_exceeded — combine with
   --keep-going to salvage the remaining figures. *)
let budget_args =
  let budget_conv what =
    let parse s =
      match float_of_string_opt (String.trim s) with
      | Some b when b > 0.0 && Float.is_finite b -> Ok b
      | Some _ -> Error (`Msg (what ^ " budget must be a positive float"))
      | None -> Error (`Msg (Printf.sprintf "invalid %s budget %S" what s))
    in
    Arg.conv ~docv:"SECONDS" (parse, Format.pp_print_float)
  in
  let sim =
    Arg.(
      value
      & opt (some (budget_conv "sim-time")) None
      & info [ "sim-budget" ] ~docv:"SECONDS"
          ~doc:
            "Abort any single simulation that schedules past $(docv) \
             simulated seconds (raises Budget_exceeded; see also \
             EBRC_SIM_BUDGET).")
  in
  let wall =
    Arg.(
      value
      & opt (some (budget_conv "wall-clock")) None
      & info [ "wall-budget" ] ~docv:"SECONDS"
          ~doc:
            "Abort any single simulation that runs longer than $(docv) \
             wall-clock seconds (raises Budget_exceeded; see also \
             EBRC_WALL_BUDGET).")
  in
  Term.(const (fun sim wall -> (sim, wall)) $ sim $ wall)

let apply_budgets (sim, wall) =
  Option.iter (fun b -> Ebrc.Engine.set_sim_budget (Some b)) sim;
  Option.iter (fun b -> Ebrc.Engine.set_wall_budget (Some b)) wall

let keep_going_arg =
  Arg.(
    value & flag
    & info [ "keep-going"; "k" ]
        ~doc:
          "Do not abort on the first failing figure: render the survivors, \
           print a structured failure summary, and exit non-zero.")

let only_task_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "only-task" ] ~docv:"N"
        ~doc:
          "Replay only task $(docv) of crash-isolated sweeps (the index \
           reported by a failed run); every other task is skipped. See \
           also EBRC_ONLY_TASK.")

let apply_only_task only =
  Option.iter (fun n -> Ebrc.Pool.set_only_task (Some n)) only

let print_failures (failures : Ebrc.Figures.failure list) =
  List.iter
    (fun (f : Ebrc.Figures.failure) ->
      Printf.eprintf "ebrc: figure %s FAILED: %s\n" f.Ebrc.Figures.failed_id
        f.Ebrc.Figures.message;
      if f.Ebrc.Figures.backtrace <> "" then
        prerr_string f.Ebrc.Figures.backtrace)
    failures;
  Printf.eprintf "ebrc: %d figure(s) failed\n%!" (List.length failures)

let with_telemetry (jsonl, trace, summary) f =
  if jsonl = None && trace = None && not summary then f ()
  else begin
    Ebrc.Telemetry.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Ebrc.Telemetry.set_enabled false;
        Option.iter
          (fun path ->
            Ebrc.Telemetry_export.write_jsonl ~path ();
            Printf.eprintf "telemetry written to %s\n%!" path)
          jsonl;
        Option.iter
          (fun path ->
            Ebrc.Telemetry_export.write_chrome_trace ~path ();
            Printf.eprintf "trace written to %s\n%!" path)
          trace;
        if summary then print_string (Ebrc.Telemetry_export.summary ()))
      f
  end

(* Live observability: --stream starts the JSONL telemetry stream
   (tail it with `ebrc status`), --flight arms the crash flight
   recorder. Both also honour their env knobs (EBRC_STREAM,
   EBRC_STREAM_PERIOD, EBRC_STREAM_WALL, EBRC_FLIGHT) so a wrapper
   script can arm them without touching the command line. *)
let obs_args =
  let stream =
    Arg.(
      value
      & opt (some string) None
      & info [ "stream" ] ~docv:"FILE"
          ~doc:
            "Enable telemetry and append live progress records (JSON lines) \
             to $(docv) while the command runs; watch with `ebrc status \
             $(docv)`. See also EBRC_STREAM.")
  in
  let period =
    Arg.(
      value & opt float 1.0
      & info [ "stream-period" ] ~docv:"SECONDS"
          ~doc:
            "Simulated-time sampling period for per-run delta records (0 \
             disables sim-time sampling; the stream stays deterministic \
             for any value). See also EBRC_STREAM_PERIOD.")
  in
  let wall =
    Arg.(
      value & opt float 0.5
      & info [ "stream-wall" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock period for pool progress records (0 disables them; \
             required for byte-identical streams). See also \
             EBRC_STREAM_WALL.")
  in
  let flight =
    Arg.(
      value & flag
      & info [ "flight" ]
          ~doc:
            "Arm the flight recorder: on a watchdog kill, failed task or \
             crash, dump recent events and counters to \
             flight-<ts>.jsonl. See also EBRC_FLIGHT.")
  in
  Term.(
    const (fun stream period wall flight -> (stream, period, wall, flight))
    $ stream $ period $ wall $ flight)

let finalize_stream_once =
  let finalized = ref false in
  fun path ->
    if not !finalized then begin
      finalized := true;
      Ebrc.Telemetry_stream.finalize ();
      Option.iter (fun p -> Printf.eprintf "stream written to %s\n%!" p) path
    end

let with_observability ~cmd ~attrs (stream, period, wall, flight) f =
  let stream_on =
    match stream with
    | Some path ->
        Ebrc.Telemetry_stream.enable ~path ~period_sim:period
          ~period_wall:wall;
        true
    | None -> Ebrc.Telemetry_stream.enable_from_env ()
  in
  if flight then Ebrc.Telemetry_flight.set_enabled true
  else ignore (Ebrc.Telemetry_flight.enable_from_env () : bool);
  if not (stream_on || Ebrc.Telemetry_flight.active ()) then f ()
  else begin
    let stream_path = Ebrc.Telemetry_stream.path () in
    Ebrc.Telemetry.set_enabled true;
    if stream_on then begin
      Ebrc.Telemetry_stream.manifest ~cmd ~attrs ();
      (* keep-going paths exit directly, bypassing Fun.protect, so the
         stream is also finalized from at_exit (idempotent). *)
      at_exit (fun () -> finalize_stream_once stream_path)
    end;
    Fun.protect
      ~finally:(fun () -> if stream_on then finalize_stream_once stream_path)
      (fun () ->
        try f ()
        with e ->
          Ebrc.Telemetry_flight.on_exn ~reason:("cli:" ^ cmd) e;
          raise e)
  end

let print_tables ?csv_dir tables =
  List.iteri
    (fun i t ->
      Ebrc.Table.print t;
      print_newline ();
      match csv_dir with
      | Some dir ->
          let path = Filename.concat dir (Printf.sprintf "table_%02d.csv" i) in
          Ebrc.Table.save_csv t ~path;
          Printf.printf "(csv written to %s)\n" path
      | None -> ())
    tables

(* --- figure --- *)

let figure_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID"
          ~doc:
            "Figure or table id: 1-19, t1 (Table I), c3, c4, or 'all'.")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Run the paper-scale sweeps (long). Default is the quick \
             (scaled-down) mode.")
  in
  let csv =
    Arg.(
      value
      & opt (some dir) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each table as CSV into $(docv).")
  in
  let run id full csv jobs no_cache no_wheel no_hybrid keep_going only_task
      budgets telem obs =
    let quick = not full in
    (* Unknown ids are a usage error: list the valid names and exit 2
       rather than surfacing an exception. *)
    if id <> "all" && not (List.mem id (Ebrc.Figures.ids ())) then begin
      Printf.eprintf "ebrc: unknown figure id %S; valid ids are:\n  %s\n%!" id
        (String.concat " " (Ebrc.Figures.ids () @ [ "all" ]));
      exit 2
    end;
    try
      apply_cache no_cache;
      apply_wheel no_wheel;
      apply_hybrid no_hybrid;
      apply_budgets budgets;
      apply_only_task only_task;
      let jobs = resolve_jobs jobs in
      with_observability ~cmd:"figure"
        ~attrs:
          [
            ("id", Printf.sprintf "%S" id);
            ("quick", string_of_bool quick);
            ("jobs", string_of_int jobs);
          ]
        obs
      @@ fun () ->
      with_telemetry telem @@ fun () ->
      if keep_going then begin
        let tables, failures =
          if id = "all" then Ebrc.Figures.run_all_keep_going ~jobs ~quick ()
          else
            match Ebrc.Figures.run_one_result ~jobs ~quick id with
            | Ok tables -> (tables, [])
            | Error f -> ([], [ f ])
        in
        print_tables ?csv_dir:csv tables;
        if failures = [] then `Ok ()
        else begin
          print_failures failures;
          exit 1
        end
      end
      else begin
        let tables =
          if id = "all" then Ebrc.Figures.run_all ~jobs ~quick ()
          else Ebrc.Figures.run_one ~jobs ~quick id
        in
        print_tables ?csv_dir:csv tables;
        `Ok ()
      end
    with Invalid_argument msg -> `Error (false, msg)
  in
  let info =
    Cmd.info "figure"
      ~doc:"Regenerate a figure or table from the paper's evaluation."
  in
  Cmd.v info
    Term.(
      ret
        (const run $ id $ full $ csv $ jobs_arg $ no_cache_arg
       $ no_wheel_arg $ no_hybrid_arg $ keep_going_arg $ only_task_arg
       $ budget_args $ telemetry_args $ obs_args))

(* --- list --- *)

let list_cmd =
  let run telem =
    with_telemetry telem @@ fun () ->
    List.iter
      (fun (id, d) -> Printf.printf "%-4s %s\n" id d)
      (Ebrc.Figures.describe ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the figure/table registry.")
    Term.(const run $ telemetry_args)

(* --- quickstart --- *)

let quickstart_cmd =
  let run telem =
    with_telemetry telem @@ fun () ->
    let module F = Ebrc.Formula in
    let f = F.create ~rtt:0.1 F.Pftk_standard in
    Printf.printf "PFTK-standard, rtt = 100 ms:\n";
    List.iter
      (fun p -> Printf.printf "  f(%.3f) = %.1f pkt/s\n" p (F.eval f p))
      [ 0.001; 0.01; 0.05; 0.1 ];
    let rng = Ebrc.Prng.create ~seed:1 in
    let process = Ebrc.Loss_process.iid_shifted_exponential rng ~p:0.05 ~cv:0.9 in
    let estimator = Ebrc.Loss_interval.of_tfrc ~l:8 in
    let r =
      Ebrc.Basic_control.simulate ~formula:f ~estimator ~process
        ~cycles:50_000 ()
    in
    Printf.printf
      "\nBasic control on iid losses (p = 0.05, cv = 0.9, L = 8):\n\
      \  throughput       = %.1f pkt/s\n\
      \  normalized x/f(p) = %.3f  (conservative: %b)\n"
      r.Ebrc.Basic_control.throughput r.normalized (r.normalized <= 1.0)
  in
  Cmd.v
    (Cmd.info "quickstart"
       ~doc:"Evaluate the formulas and run a small basic-control simulation.")
    Term.(const run $ telemetry_args)

(* --- breakdown: run a custom dumbbell and print the four ratios --- *)

let breakdown_cmd =
  let n_tfrc =
    Arg.(value & opt int 4 & info [ "tfrc" ] ~docv:"N" ~doc:"Number of TFRC flows.")
  in
  let n_tcp =
    Arg.(value & opt int 4 & info [ "tcp" ] ~docv:"N" ~doc:"Number of TCP flows.")
  in
  let mbps =
    Arg.(
      value & opt float 15.0
      & info [ "mbps" ] ~docv:"MBPS" ~doc:"Bottleneck rate in Mb/s.")
  in
  let rtt_ms =
    Arg.(
      value & opt float 50.0
      & info [ "rtt" ] ~docv:"MS" ~doc:"Base round-trip time in milliseconds.")
  in
  let droptail =
    Arg.(
      value
      & opt (some int) None
      & info [ "droptail" ] ~docv:"PKTS"
          ~doc:"Use a DropTail queue of $(docv) packets instead of RED.")
  in
  let l = Arg.(value & opt int 8 & info [ "l" ] ~docv:"L" ~doc:"TFRC history window.") in
  let duration =
    Arg.(
      value & opt float 120.0
      & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let run n_tfrc n_tcp mbps rtt_ms droptail l duration seed telem =
    if n_tfrc < 1 || n_tcp < 1 then
      `Error (false, "need at least one TFRC and one TCP flow")
    else begin
      with_telemetry telem @@ fun () ->
      let module S = Ebrc.Scenario in
      let module B = Ebrc.Breakdown in
      let cfg =
        {
          S.default_config with
          seed;
          n_tfrc;
          n_tcp;
          bottleneck_bps = mbps *. 1e6;
          one_way_delay = rtt_ms /. 2000.0;
          queue =
            (match droptail with
            | Some capacity -> S.Drop_tail { capacity }
            | None -> S.Red_auto { capacity = 0 });
          tfrc_l = l;
          duration;
          warmup = duration /. 5.0;
        }
      in
      let r = S.run cfg in
      let formula =
        Ebrc.Formula.create ~rtt:(S.base_rtt cfg) cfg.S.tfrc_formula_kind
      in
      let b =
        B.create
          ~ebrc:
            {
              B.throughput = S.mean_throughput r.S.tfrc;
              p = S.pooled_loss_rate r.S.tfrc;
              rtt = S.mean_rtt r.S.tfrc;
            }
          ~tcp:
            {
              B.throughput = S.mean_throughput r.S.tcp;
              p = S.pooled_loss_rate r.S.tcp;
              rtt = S.mean_rtt r.S.tcp;
            }
          ~formula
      in
      Printf.printf "utilization %.1f%%, %d drops\n"
        (100.0 *. r.S.link_utilization)
        r.S.queue_drops;
      Printf.printf "TFRC: x=%.1f pkt/s  p=%.5f  rtt=%.1f ms\n"
        (S.mean_throughput r.S.tfrc)
        (S.pooled_loss_rate r.S.tfrc)
        (1000.0 *. S.mean_rtt r.S.tfrc);
      Printf.printf "TCP : x=%.1f pkt/s  p=%.5f  rtt=%.1f ms\n"
        (S.mean_throughput r.S.tcp)
        (S.pooled_loss_rate r.S.tcp)
        (1000.0 *. S.mean_rtt r.S.tcp);
      Printf.printf "breakdown: %s\n"
        (Format.asprintf "%a" B.pp b);
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "breakdown"
       ~doc:
         "Run a custom TFRC-vs-TCP dumbbell and print the four-way \
          TCP-friendliness breakdown.")
    Term.(
      ret
        (const run $ n_tfrc $ n_tcp $ mbps $ rtt_ms $ droptail $ l $ duration
       $ seed $ telemetry_args))

(* --- convexity: classify a formula's functionals over a region --- *)

let convexity_cmd =
  let kind =
    let kind_conv =
      Arg.enum
        [
          ("sqrt", Ebrc.Formula.Sqrt);
          ("pftk-standard", Ebrc.Formula.Pftk_standard);
          ("pftk-simplified", Ebrc.Formula.Pftk_simplified);
        ]
    in
    Arg.(
      value & opt kind_conv Ebrc.Formula.Pftk_standard
      & info [ "formula" ] ~docv:"KIND"
          ~doc:"Formula: sqrt, pftk-standard or pftk-simplified.")
  in
  let lo = Arg.(value & opt float 1.5 & info [ "lo" ] ~docv:"X" ~doc:"Region lower edge (packets).") in
  let hi = Arg.(value & opt float 1000.0 & info [ "hi" ] ~docv:"X" ~doc:"Region upper edge (packets).") in
  let run kind lo hi telem =
    if not (0.0 < lo && lo < hi) then `Error (false, "need 0 < lo < hi")
    else begin
      with_telemetry telem @@ fun () ->
      let f = Ebrc.Formula.create ~rtt:1.0 kind in
      let region = { Ebrc.Conditions.x_lo = lo; x_hi = hi } in
      Printf.printf "%s on x in [%g, %g] (p in [%g, %g]):\n"
        (Ebrc.Formula.name f) lo hi (1.0 /. hi) (1.0 /. lo);
      Printf.printf "  (F1)  1/f(1/x) convex : %b\n"
        (Ebrc.Conditions.f1_holds ~region f);
      Printf.printf "  (F2)  f(1/x) concave  : %b\n"
        (Ebrc.Conditions.f2_holds ~region f);
      Printf.printf "  (F2c) f(1/x) convex   : %b\n"
        (Ebrc.Conditions.f2c_holds ~region f);
      Printf.printf "  Prop-4 deviation r    : %.5f\n"
        (Ebrc.Conditions.deviation_ratio ~region f);
      (match Ebrc.Conditions.h_inflection f with
      | Some x ->
          Printf.printf "  f(1/x) inflection     : x = %.2f (p = %.4f)\n" x
            (1.0 /. x)
      | None -> Printf.printf "  f(1/x) inflection     : none (concave)\n");
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "convexity"
       ~doc:
         "Classify a throughput formula against the paper's conditions \
          (F1)/(F2)/(F2c) on a loss-interval region.")
    Term.(ret (const run $ kind $ lo $ hi $ telemetry_args))

(* --- design: the conservativeness-as-objective advisor --- *)

let design_cmd =
  let target =
    Arg.(
      value & opt float 0.8
      & info [ "target" ] ~docv:"FRAC"
          ~doc:
            "Worst-case efficiency target: the fraction of f(p) the \
             control must attain across the operating region.")
  in
  let cv =
    Arg.(
      value & opt float 0.9
      & info [ "cv" ] ~docv:"CV"
          ~doc:"Coefficient of variation of the loss intervals.")
  in
  let l_max =
    Arg.(value & opt int 64 & info [ "l-max" ] ~docv:"L" ~doc:"Largest window to consider.")
  in
  let run target cv l_max telem =
    if target <= 0.0 || target >= 1.0 then
      `Error (false, "target must be in (0, 1)")
    else if cv <= 0.0 || cv > 1.0 then `Error (false, "cv must be in (0, 1]")
    else begin
      with_telemetry telem @@ fun () ->
      let module Dz = Ebrc.Design in
      let formula = Ebrc.Formula.create ~rtt:0.1 Ebrc.Formula.Pftk_standard in
      let region = { Dz.default_region with cv } in
      (match Dz.recommend_window ~region ~l_max ~formula ~target () with
      | Some r ->
          Printf.printf
            "recommended window L = %d (worst-case efficiency %.3f over p in \
             {%s}, cv = %g)\n"
            r.Dz.l r.Dz.efficiency
            (String.concat ", "
               (List.map (Printf.sprintf "%g") region.Dz.p_values))
            cv;
          List.iter
            (fun (p, e) -> Printf.printf "  p = %-5g  x/f(p) = %.3f\n" p e)
            r.Dz.per_p
      | None ->
          Printf.printf
            "target %.2f unreachable within L <= %d; best at L = %d is %.3f\n"
            target l_max l_max
            (Dz.worst_case_efficiency ~region ~formula ~l:l_max ()));
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "design"
       ~doc:
         "Recommend the smallest estimator window meeting a worst-case \
          conservative-efficiency target (the paper's design-for-\
          conservativeness direction).")
    Term.(ret (const run $ target $ cv $ l_max $ telemetry_args))

(* --- report: regenerate figures into a markdown document --- *)

let report_cmd =
  let out =
    Arg.(
      value
      & opt string "report.md"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output markdown file.")
  in
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID" ~doc:"Figure ids to include (default: all).")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"Paper-scale sweeps instead of quick mode.")
  in
  let run out ids full jobs no_cache no_wheel no_hybrid keep_going budgets
      telem obs =
    apply_cache no_cache;
    apply_wheel no_wheel;
    apply_hybrid no_hybrid;
    apply_budgets budgets;
    let jobs = resolve_jobs jobs in
    with_observability ~cmd:"report"
      ~attrs:
        [
          ("out", Printf.sprintf "%S" out);
          ("quick", string_of_bool (not full));
          ("jobs", string_of_int jobs);
        ]
      obs
    @@ fun () ->
    with_telemetry telem @@ fun () ->
    let options =
      { Ebrc.Report.ids; quick = not full;
        heading = "EBRC reproduction report";
        jobs = Some jobs;
        keep_going }
    in
    let failures = Ebrc.Report.save_result ~options ~path:out () in
    Printf.printf "report written to %s\n" out;
    if failures <> [] then begin
      print_failures failures;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Regenerate figures into a self-contained markdown report.")
    Term.(
      const run $ out $ ids $ full $ jobs_arg $ no_cache_arg $ no_wheel_arg
      $ no_hybrid_arg $ keep_going_arg $ budget_args $ telemetry_args
      $ obs_args)

(* --- validate: assert the paper's qualitative claims --- *)

let validate_cmd =
  let full =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"Run the long (paper-scale) validations.")
  in
  let run full jobs no_cache no_wheel no_hybrid telem obs =
    apply_cache no_cache;
    apply_wheel no_wheel;
    apply_hybrid no_hybrid;
    let jobs = resolve_jobs jobs in
    with_observability ~cmd:"validate"
      ~attrs:
        [ ("quick", string_of_bool (not full)); ("jobs", string_of_int jobs) ]
      obs
    @@ fun () ->
    with_telemetry telem @@ fun () ->
    let outcomes = Ebrc.Validate.run_all ~quick:(not full) ~jobs () in
    Ebrc.Table.print (Ebrc.Validate.to_table outcomes);
    if Ebrc.Validate.all_passed outcomes then begin
      print_endline "all claims validated";
      `Ok ()
    end
    else `Error (false, "one or more claim validations FAILED")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Run the automated paper-claim validation suite (a scientific CI \
          gate).")
    Term.(
      ret
        (const run $ full $ jobs_arg $ no_cache_arg $ no_wheel_arg
       $ no_hybrid_arg $ telemetry_args $ obs_args))

(* --- status: tail live telemetry streams --- *)

let status_cmd =
  let files =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"STREAM"
          ~doc:
            "Stream file(s) written by a running --stream invocation \
             (default: $EBRC_STREAM).")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Print one machine-readable (JSON) snapshot and exit.")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Refresh period of the live view.")
  in
  let run files once interval =
    let files =
      match files with
      | [] -> (
          match Sys.getenv_opt "EBRC_STREAM" with
          | Some p when p <> "" -> [ p ]
          | _ -> [])
      | fs -> fs
    in
    if files = [] then
      `Error
        (false, "no stream file: pass one or set EBRC_STREAM (see --stream)")
    else if interval <= 0.0 then `Error (false, "interval must be > 0")
    else begin
      let read f =
        match Ebrc_obs.Status.read_file f with
        | Ok v -> Some v
        | Error msg ->
            Printf.eprintf "ebrc status: %s: %s\n%!" f msg;
            None
      in
      if once then begin
        List.iter
          (fun f ->
            match read f with
            | Some v ->
                let body = String.trim (Ebrc_obs.Status.render_json v) in
                Printf.printf "{\"file\":\"%s\",\"status\":%s}\n"
                  (Ebrc_obs.Json.escape f) body
            | None -> ())
          files;
        `Ok ()
      end
      else begin
        let tty = Unix.isatty Unix.stdout in
        let rec loop () =
          let views = List.map (fun f -> (f, read f)) files in
          if tty then print_string "\027[2J\027[H";
          List.iter
            (fun (f, v) ->
              match v with
              | Some v ->
                  if List.length files > 1 then Printf.printf "== %s ==\n" f;
                  print_string (Ebrc_obs.Status.render v)
              | None -> ())
            views;
          print_string "\n";
          flush stdout;
          let all_finished =
            views <> []
            && List.for_all
                 (fun (_, v) ->
                   match v with
                   | Some v -> v.Ebrc_obs.Status.finished
                   | None -> false)
                 views
          in
          if all_finished then `Ok ()
          else begin
            Unix.sleepf interval;
            loop ()
          end
        in
        loop ()
      end
    end
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Watch the live progress of a running figure/report/validate \
          invocation through its --stream file.")
    Term.(ret (const run $ files $ once $ interval))

(* --- bench-trend: longitudinal perf analytics over BENCH records --- *)

let bench_trend_cmd =
  let dir =
    Arg.(
      value & opt dir "."
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Directory holding the BENCH_*.json records.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the trend report as JSON to $(docv).")
  in
  let run dir json_out =
    let records, warnings = Ebrc_obs.Bench_records.load_all ~dir in
    List.iter (fun w -> Printf.eprintf "ebrc bench-trend: warning: %s\n" w)
      warnings;
    if records = [] then
      `Error (false, "no BENCH_*.json records found in " ^ dir)
    else begin
      let files =
        List.map (fun r -> r.Ebrc_obs.Bench_records.file) records
      in
      let series = Ebrc_obs.Trend.analyze records in
      print_string (Ebrc_obs.Trend.render ~files series);
      Option.iter
        (fun path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (Ebrc_obs.Trend.to_json ~files ~warnings series));
          Printf.printf "trend json written to %s\n" path)
        json_out;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "bench-trend"
       ~doc:
         "Analyze perf trends across all checked-in BENCH_*.json records: \
          first/last/best, per-record slope, and regression flags per \
          hot-path timing and telemetry counter.")
    Term.(ret (const run $ dir $ json_out))

(* --- manifest / serve / worker: the multi-process sweep service --- *)

(* Shared by serve / worker / scrub: arm the deterministic I/O fault
   shim (equivalent to EBRC_CHAOS=<seed>, and overriding it). *)
let chaos_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos" ] ~docv:"SEED"
        ~doc:
          "Arm the deterministic chaos layer: injected EIO/ENOSPC, torn \
           writes, lost fsync and lease clock skew on every queue and \
           store write, scheduled from a PRNG stream under $(docv) so \
           the run is replayable. Equivalent to EBRC_CHAOS=$(docv).")

let apply_chaos seed =
  match seed with
  | None -> ()
  | Some s -> Ebrc_chaos.Io_fault.set_seed (Some s)

let manifest_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Manifest file to write.")
  in
  let tasks =
    Arg.(
      value & opt int 6
      & info [ "tasks" ] ~docv:"N" ~doc:"Number of demo tasks to generate.")
  in
  let seed0 =
    Arg.(
      value & opt int 42
      & info [ "seed0" ] ~docv:"SEED"
          ~doc:"Seed of the first task (consecutive seeds follow).")
  in
  let duration =
    Arg.(
      value & opt float 10.0
      & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds per task.")
  in
  let run path tasks seed0 duration =
    if tasks < 1 then `Error (false, "need at least one task")
    else begin
      let m = Ebrc_serve.Manifest.demo ~seed0 ~duration ~tasks () in
      Ebrc_serve.Manifest.save ~path m;
      Printf.printf "manifest with %d task(s) written to %s\n" tasks path;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "manifest"
       ~doc:
         "Write a demo sweep manifest (small dumbbell scenarios over \
          consecutive seeds) for `ebrc serve`.")
    Term.(ret (const run $ path $ tasks $ seed0 $ duration))

let serve_cmd =
  let manifest_path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MANIFEST"
          ~doc:"Sweep manifest (see `ebrc manifest`).")
  in
  let queue =
    Arg.(
      value
      & opt (some string) None
      & info [ "queue" ] ~docv:"DIR"
          ~doc:"Task queue directory (default: $(i,MANIFEST).queue).")
  in
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Content-addressed result store shared by the workers \
             (default: $(i,QUEUE)/store). Re-serving over a partial \
             store enqueues only the missing tasks.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers"; "w" ] ~docv:"N"
          ~doc:
            "Worker processes to spawn (0 = just prime the queue for \
             externally started `ebrc worker` processes).")
  in
  let ttl =
    Arg.(
      value & opt float 300.0
      & info [ "ttl" ] ~docv:"S"
          ~doc:
            "Lease lifetime handed to workers: a SIGKILL'd worker \
             delays its task by at most $(docv) seconds.")
  in
  let retries =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:"Extra in-process attempts per crashing task.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ] ~doc:"Suppress the periodic progress line.")
  in
  let watchdog =
    Arg.(
      value & opt float 120.0
      & info [ "watchdog" ] ~docv:"S"
          ~doc:
            "Stall detector: SIGKILL a worker whose telemetry stream \
             has not grown for $(docv) seconds and reclaim its leases \
             (0 disables).")
  in
  let max_strikes =
    Arg.(
      value & opt int 3
      & info [ "max-strikes" ] ~docv:"N"
          ~doc:
            "Crash-loop circuit breaker: poison a task once $(docv) \
             workers died while holding its lease.")
  in
  let chaos_kill =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-kill" ] ~docv:"SEED"
          ~doc:
            "Arm the chaos monkey: SIGKILL random live workers on a \
             deterministic schedule drawn under $(docv). For chaos \
             soaks.")
  in
  let run manifest_path queue store workers ttl retries quiet watchdog
      max_strikes chaos_kill chaos =
    if workers < 0 then `Error (false, "workers must be >= 0")
    else if ttl <= 0.0 then `Error (false, "ttl must be > 0")
    else if max_strikes < 1 then `Error (false, "max-strikes must be >= 1")
    else begin
      apply_chaos chaos;
      let d = Ebrc_serve.Serve.default ~manifest_path in
      let queue_dir = Option.value ~default:d.Ebrc_serve.Serve.queue_dir queue in
      let cfg =
        {
          d with
          Ebrc_serve.Serve.queue_dir;
          store_dir =
            Option.value ~default:(Filename.concat queue_dir "store") store;
          workers;
          ttl;
          retries;
          watchdog;
          max_strikes;
          chaos_kill;
          quiet;
        }
      in
      exit (Ebrc_serve.Serve.run cfg)
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a sweep manifest through the multi-process experiment \
          service: enqueue every task not already in the result store, \
          spawn and supervise workers (heartbeat stall detection, \
          backoff restarts, crash-loop poisoning), and watch until the \
          sweep drains. Resumable: re-serving skips published results.")
    Term.(
      ret
        (const run $ manifest_path $ queue $ store $ workers $ ttl $ retries
       $ quiet $ watchdog $ max_strikes $ chaos_kill $ chaos_arg))

let worker_cmd =
  let queue =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUEUE"
          ~doc:"Task queue directory (see `ebrc serve`).")
  in
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:"Result store directory (default: $(i,QUEUE)/store).")
  in
  let id =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"ID"
          ~doc:
            "Worker id recorded in leases and failure records \
             (default: w<pid>).")
  in
  let ttl =
    Arg.(
      value & opt float 300.0
      & info [ "ttl" ] ~docv:"S" ~doc:"Lease lifetime in seconds.")
  in
  let retries =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:"Extra in-process attempts per crashing task.")
  in
  let poll =
    Arg.(
      value & opt float 0.2
      & info [ "poll" ] ~docv:"S"
          ~doc:"Rescan period while the queue is fully leased.")
  in
  let max_tasks =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-tasks" ] ~docv:"N"
          ~doc:"Stop after executing $(docv) tasks.")
  in
  let follow =
    Arg.(
      value & flag
      & info [ "follow" ]
          ~doc:
            "Keep polling for new tasks instead of exiting once the \
             queue drains.")
  in
  let run queue store id ttl retries poll max_tasks follow chaos no_wheel
      no_hybrid budgets telem obs =
    if ttl <= 0.0 then `Error (false, "ttl must be > 0")
    else if poll <= 0.0 then `Error (false, "poll must be > 0")
    else begin
      apply_wheel no_wheel;
      apply_hybrid no_hybrid;
      apply_budgets budgets;
      apply_chaos chaos;
      let d = Ebrc_serve.Worker.default ~queue_dir:queue in
      let cfg =
        {
          d with
          Ebrc_serve.Worker.store_dir =
            Option.value ~default:d.Ebrc_serve.Worker.store_dir store;
          worker_id = Option.value ~default:d.Ebrc_serve.Worker.worker_id id;
          ttl;
          retries;
          poll;
          max_tasks;
          exit_when_drained = not follow;
        }
      in
      with_observability ~cmd:"worker"
        ~attrs:
          [
            ("queue", Printf.sprintf "%S" queue);
            ("worker", Printf.sprintf "%S" cfg.Ebrc_serve.Worker.worker_id);
          ]
        obs
      @@ fun () ->
      with_telemetry telem @@ fun () ->
      let o = Ebrc_serve.Worker.run cfg in
      Printf.printf "worker %s: %d ran, %d cached, %d failed\n"
        cfg.Ebrc_serve.Worker.worker_id o.Ebrc_serve.Worker.ran
        o.Ebrc_serve.Worker.cached o.Ebrc_serve.Worker.failed;
      if o.Ebrc_serve.Worker.failed > 0 then exit 1;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Drain a sweep-service task queue: lease tasks, run each \
          scenario crash-isolated, publish results into the shared \
          content-addressed store. Any number of workers can share one \
          queue.")
    Term.(
      ret
        (const run $ queue $ store $ id $ ttl $ retries $ poll $ max_tasks
       $ follow $ chaos_arg $ no_wheel_arg $ no_hybrid_arg $ budget_args
       $ telemetry_args $ obs_args))

let scrub_cmd =
  let store =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"STORE"
          ~doc:"Content-addressed result store directory to verify.")
  in
  let quarantine =
    Arg.(
      value
      & opt (some string) None
      & info [ "quarantine" ] ~docv:"DIR"
          ~doc:
            "Where corrupt records are moved (default: \
             $(i,STORE)/quarantine). Nothing is ever deleted.")
  in
  let run store quarantine chaos =
    apply_chaos chaos;
    if not (Sys.file_exists store) then
      `Error (false, Printf.sprintf "no such store: %s" store)
    else begin
      let r = Ebrc.Result_cache.scrub ?quarantine ~dir:store () in
      List.iter
        (fun digest ->
          Printf.printf "scrub: quarantined %s -> %s\n" digest
            r.Ebrc.Result_cache.scrub_dir)
        r.Ebrc.Result_cache.scrub_quarantined;
      Printf.printf "scrub: %d record(s) checked, %d ok, %d quarantined\n"
        r.Ebrc.Result_cache.scrub_checked r.Ebrc.Result_cache.scrub_ok
        (List.length r.Ebrc.Result_cache.scrub_quarantined);
      if r.Ebrc.Result_cache.scrub_quarantined <> [] then exit 1;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Verify every record in a sweep result store against its \
          content digest and schema; corrupt or truncated records are \
          moved to quarantine/ (never deleted) so re-serving the \
          manifest recomputes exactly the damaged digests. Exit 1 when \
          anything was quarantined.")
    Term.(ret (const run $ store $ quarantine $ chaos_arg))

let main =
  let doc =
    "Reproduction of 'On the Long-Run Behavior of Equation-Based Rate \
     Control' (Vojnovic & Le Boudec, SIGCOMM 2002)."
  in
  Cmd.group
    (Cmd.info "ebrc" ~version:Ebrc.version ~doc)
    [ figure_cmd; list_cmd; quickstart_cmd; breakdown_cmd; convexity_cmd;
      report_cmd; design_cmd; validate_cmd; status_cmd; bench_trend_cmd;
      manifest_cmd; serve_cmd; worker_cmd; scrub_cmd ]

let () = exit (Cmd.eval main)
