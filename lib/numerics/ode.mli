(** Scalar ODE integration for the comprehensive-control growth equation
    (Eq. 16): a classic fixed-step RK4 engine kept for A/B validation,
    and an adaptive embedded Dormand–Prince 5(4) engine with per-step
    error control, dense output, and a root-finding threshold solve. *)

exception
  Step_limit_exceeded of { t : float; y : float; steps : int; what : string }
(** Raised when an integration exhausts its step budget (or the adaptive
    step size degenerates) before reaching its goal. [t], [y] are the
    state at abandonment; [steps] the steps taken; [what] names the
    failing entry point. *)

val rk4_step : (float -> float -> float) -> float -> float -> float -> float
(** [rk4_step f t y h] advances dy/dt = f(t, y) one step of size [h]. *)

val integrate :
  ?steps:int -> (float -> float -> float) -> t0:float -> t1:float ->
  y0:float -> float
(** Fixed-step RK4 over [t0, t1] with [steps] equal steps. *)

val time_to_reach :
  ?step:float -> ?max_steps:int -> (float -> float -> float) ->
  y0:float -> target:float -> float
(** Time for the increasing solution of dy/dt = f(t, y), y(0) = y0, to
    reach [target], by fixed-step RK4 with linear interpolation in the
    final step. Raises {!Step_limit_exceeded} if the step budget is
    exhausted before [target] (e.g. a derivative decaying toward zero). *)

(** {1 Adaptive Dormand–Prince 5(4)} *)

type stats = {
  accepted : int;  (** accepted steps *)
  rejected : int;  (** rejected (error-controlled) trial steps *)
  evals : int;     (** derivative evaluations *)
}

val default_rtol : float
(** 1e-6 — the documented default relative tolerance. *)

val default_atol : float
(** 1e-9 — the default absolute tolerance floor. *)

val integrate_adaptive :
  ?rtol:float -> ?atol:float -> ?h0:float -> ?max_steps:int ->
  (float -> float -> float) -> t0:float -> t1:float -> y0:float -> float
(** Adaptive integration of dy/dt = f(t, y) over [t0, t1]. Per-step
    error is held to [atol + rtol * |y|]. [h0] is the initial trial
    step (default: 1% of the span). Raises {!Step_limit_exceeded} after
    [max_steps] (default 100_000) trial steps. *)

val integrate_adaptive_stats :
  ?rtol:float -> ?atol:float -> ?h0:float -> ?max_steps:int ->
  (float -> float -> float) -> t0:float -> t1:float -> y0:float ->
  float * stats
(** Like {!integrate_adaptive}, also returning step statistics. *)

val time_to_reach_adaptive :
  ?rtol:float -> ?atol:float -> ?h0:float -> ?max_steps:int ->
  (float -> float -> float) -> y0:float -> target:float -> float
(** Adaptive analogue of {!time_to_reach}: steps until an accepted step
    brackets [target], then polishes the crossing on the cubic-Hermite
    dense-output polynomial with Brent's method. [f] must be positive
    along the trajectory. Raises {!Step_limit_exceeded} when the budget
    (default 100_000 trial steps) runs out, e.g. for a derivative that
    decays before the threshold is reached. *)

val time_to_reach_adaptive_stats :
  ?rtol:float -> ?atol:float -> ?h0:float -> ?max_steps:int ->
  (float -> float -> float) -> y0:float -> target:float -> float * stats
(** Like {!time_to_reach_adaptive}, also returning step statistics. *)

(** {1 Resumable vector systems}

    An incremental DOPRI5 stepper for small ODE systems that advance in
    many short bursts interleaved with discrete events (the hybrid
    packet/fluid bottleneck). Stage arrays are preallocated at creation;
    a steady-state {!System.advance} allocates nothing, retains its
    step size across calls, and lands exactly on the requested time by
    clamping the final step. *)
module System : sig
  type t

  type deriv = float -> floatarray -> floatarray -> unit
  (** [f t y dy] writes dy/dt at (t, y) into [dy]. The closure may read
      external mutable inputs (e.g. a packet arrival rate held
      piecewise-constant between syncs); call {!invalidate} after
      changing them so the cached FSAL slope is recomputed. *)

  val create :
    ?rtol:float -> ?atol:float -> ?h0:float -> f:deriv -> t0:float ->
    y0:floatarray -> unit -> t
  (** Fresh stepper at state [y0] (copied) and time [t0]. Tolerances
      default to {!default_rtol} / {!default_atol}. *)

  val time : t -> float
  (** Current integration time. *)

  val dim : t -> int
  (** State dimension. *)

  val value : t -> int -> float
  (** [value st i] is component [i] of the current state. *)

  val set : t -> int -> float -> unit
  (** Overwrite component [i] (e.g. clamping a queue to its physical
      range after an advance). Invalidates the FSAL slope only when the
      value actually changes. *)

  val invalidate : t -> unit
  (** Mark the cached end-of-step slope stale because an external input
      read by the derivative changed. *)

  val advance : ?max_steps:int -> t -> float -> unit
  (** [advance st t1] integrates the state forward to exactly [t1]
      (no-op when [t1 = time st]; invalid_arg when [t1] is in the
      past). Raises {!Step_limit_exceeded} after [max_steps] (default
      100_000) trial steps within this one call. *)

  val stats : t -> stats
  (** Cumulative accepted/rejected/eval counts since [create]. *)
end
