(* Explicit ODE integration. The comprehensive control's within-interval
   send-rate growth obeys d theta/dt = f(1/(w1*theta + W)) (Eq. 16 of the
   paper); for functions f without a closed-form solution we integrate it
   numerically.

   Two engines are provided:

   - classic fixed-step RK4 ([integrate], [time_to_reach]) — the original
     engine, kept for A/B validation;
   - an embedded Dormand–Prince 5(4) pair ([integrate_adaptive],
     [time_to_reach_adaptive]) with per-step error control, FSAL reuse,
     cubic-Hermite dense output, and a root-finding threshold-crossing
     solve. At the default tolerances it needs orders of magnitude fewer
     derivative evaluations than RK4 at step 1e-3 for the same accuracy. *)

exception
  Step_limit_exceeded of { t : float; y : float; steps : int; what : string }

let step_limit ~t ~y ~steps what = raise (Step_limit_exceeded { t; y; steps; what })

let rk4_step f t y h =
  let k1 = f t y in
  let k2 = f (t +. (h /. 2.0)) (y +. (h /. 2.0 *. k1)) in
  let k3 = f (t +. (h /. 2.0)) (y +. (h /. 2.0 *. k2)) in
  let k4 = f (t +. h) (y +. (h *. k3)) in
  y +. (h /. 6.0 *. (k1 +. (2.0 *. k2) +. (2.0 *. k3) +. k4))

let integrate ?(steps = 1000) f ~t0 ~t1 ~y0 =
  if steps < 1 then invalid_arg "Ode.integrate: steps must be >= 1";
  if not (t0 <= t1) then invalid_arg "Ode.integrate: t0 > t1";
  let h = (t1 -. t0) /. float_of_int steps in
  let y = ref y0 in
  for i = 0 to steps - 1 do
    let t = t0 +. (float_of_int i *. h) in
    y := rk4_step f t !y h
  done;
  !y

(* Integrate dy/dt = f(t, y) from y0 until y reaches [target] (f must be
   positive so y is increasing); returns the elapsed time. Used to solve
   theta(Tn + Sn-) = theta_n for the inter-loss duration Sn. *)
let time_to_reach ?(step = 1e-3) ?(max_steps = 10_000_000) f ~y0 ~target =
  if target <= y0 then 0.0
  else begin
    let t = ref 0.0 and y = ref y0 and n = ref 0 in
    while !y < target && !n < max_steps do
      let y' = rk4_step f !t !y step in
      if y' >= target then begin
        (* Linear interpolation inside the final step for accuracy. *)
        let frac = (target -. !y) /. (y' -. !y) in
        t := !t +. (frac *. step);
        y := target
      end
      else begin
        t := !t +. step;
        y := y'
      end;
      incr n
    done;
    if !n >= max_steps then
      step_limit ~t:!t ~y:!y ~steps:!n "Ode.time_to_reach";
    !t
  end

(* ------------------------------------------------------------------ *)
(* Adaptive Dormand–Prince 5(4).                                       *)
(* ------------------------------------------------------------------ *)

type stats = { accepted : int; rejected : int; evals : int }

let default_rtol = 1e-6
let default_atol = 1e-9

(* Butcher tableau of DOPRI5. The 5th-order weights double as the a7j
   row (FSAL): k7 = f(t + h, y5) is next step's k1. *)
let a21 = 1.0 /. 5.0

let a31 = 3.0 /. 40.0
let a32 = 9.0 /. 40.0

let a41 = 44.0 /. 45.0
let a42 = -56.0 /. 15.0
let a43 = 32.0 /. 9.0

let a51 = 19372.0 /. 6561.0
let a52 = -25360.0 /. 2187.0
let a53 = 64448.0 /. 6561.0
let a54 = -212.0 /. 729.0

let a61 = 9017.0 /. 3168.0
let a62 = -355.0 /. 33.0
let a63 = 46732.0 /. 5247.0
let a64 = 49.0 /. 176.0
let a65 = -5103.0 /. 18656.0

let b1 = 35.0 /. 384.0
let b3 = 500.0 /. 1113.0
let b4 = 125.0 /. 192.0
let b5 = -2187.0 /. 6784.0
let b6 = 11.0 /. 84.0

(* Error weights: e_j = b_j - b*_j where b* is the embedded 4th-order
   solution; the error estimate is h * sum e_j k_j. *)
let e1 = b1 -. (5179.0 /. 57600.0)
let e3 = b3 -. (7571.0 /. 16695.0)
let e4 = b4 -. (393.0 /. 640.0)
let e5 = b5 -. (-92097.0 /. 339200.0)
let e6 = b6 -. (187.0 /. 2100.0)
let e7 = -1.0 /. 40.0

let c2 = 1.0 /. 5.0
let c3 = 3.0 /. 10.0
let c4 = 4.0 /. 5.0
let c5 = 8.0 /. 9.0

(* One trial step from (t, y) with slope k1 = f t y already known.
   Returns (y5, err, k7). *)
let dopri5_try f t y h k1 =
  let k2 = f (t +. (c2 *. h)) (y +. (h *. a21 *. k1)) in
  let k3 = f (t +. (c3 *. h)) (y +. (h *. ((a31 *. k1) +. (a32 *. k2)))) in
  let k4 =
    f (t +. (c4 *. h))
      (y +. (h *. ((a41 *. k1) +. (a42 *. k2) +. (a43 *. k3))))
  in
  let k5 =
    f (t +. (c5 *. h))
      (y
      +. (h *. ((a51 *. k1) +. (a52 *. k2) +. (a53 *. k3) +. (a54 *. k4))))
  in
  let k6 =
    f (t +. h)
      (y
      +. (h
         *. ((a61 *. k1) +. (a62 *. k2) +. (a63 *. k3) +. (a64 *. k4)
            +. (a65 *. k5))))
  in
  let y5 =
    y
    +. (h *. ((b1 *. k1) +. (b3 *. k3) +. (b4 *. k4) +. (b5 *. k5) +. (b6 *. k6)))
  in
  let k7 = f (t +. h) y5 in
  let err =
    h
    *. ((e1 *. k1) +. (e3 *. k3) +. (e4 *. k4) +. (e5 *. k5) +. (e6 *. k6)
       +. (e7 *. k7))
  in
  (y5, err, k7)

(* Standard step-size controller: order-5 error, safety 0.9, growth
   clamped to [0.2, 5]. *)
let next_h h err_norm =
  let factor =
    if err_norm <= 0.0 then 5.0
    else Float.min 5.0 (Float.max 0.2 (0.9 *. (err_norm ** (-0.2))))
  in
  h *. factor

(* Cubic Hermite interpolant over an accepted step [t, t+h] with end
   values (y0, y1) and end slopes (f0, f1); theta in [0, 1]. Its error
   is O(h^4), below the O(h^5) local error the controller maintains. *)
let hermite ~y0 ~y1 ~f0 ~f1 ~h theta =
  let d = y1 -. y0 in
  let c2_ = (3.0 *. d) -. (h *. ((2.0 *. f0) +. f1)) in
  let c3_ = (-2.0 *. d) +. (h *. (f0 +. f1)) in
  y0 +. (theta *. ((h *. f0) +. (theta *. (c2_ +. (theta *. c3_)))))

let check_tols ~rtol ~atol name =
  if not (rtol > 0.0 && atol > 0.0) then
    invalid_arg (name ^ ": tolerances must be positive")

(* Drive the adaptive stepper from (t0, y0). [stop] inspects each
   accepted step (t, y, h, y5, k1, k7) and returns [Some result] to
   finish early; [limit_t] caps integration time. Returns the state at
   [limit_t] if reached first. *)
let adaptive_loop ~rtol ~atol ~h0 ~max_steps ~limit_t ~stop f ~t0 ~y0 =
  let t = ref t0 and y = ref y0 in
  let k1 = ref (f t0 y0) in
  let h = ref h0 in
  let accepted = ref 0 and rejected = ref 0 and evals = ref 1 in
  let result = ref None in
  (try
     while !result = None && !t < limit_t do
       if !accepted + !rejected >= max_steps then
         step_limit ~t:!t ~y:!y ~steps:(!accepted + !rejected)
           "Ode adaptive: step budget exhausted";
       if not (Float.is_finite !t && Float.is_finite !h && !h > 0.0) then
         step_limit ~t:!t ~y:!y ~steps:(!accepted + !rejected)
           "Ode adaptive: step size underflow/overflow";
       (* A vanishing derivative lets the controller quintuple h forever
          (e.g. a non-convergent time_to_reach target): cap the horizon. *)
       if limit_t = infinity && !t >= 1e150 then
         step_limit ~t:!t ~y:!y ~steps:(!accepted + !rejected)
           "Ode adaptive: target not reached before t = 1e150";
       let h_clamped = Float.min !h (limit_t -. !t) in
       let h_try = if h_clamped > 0.0 then h_clamped else !h in
       let y5, err, k7 = dopri5_try f !t !y h_try !k1 in
       evals := !evals + 6;
       let scale = atol +. (rtol *. Float.max (Float.abs !y) (Float.abs y5)) in
       let err_norm = Float.abs err /. scale in
       if err_norm <= 1.0 then begin
         incr accepted;
         (match stop ~t:!t ~y:!y ~h:h_try ~y5 ~f0:!k1 ~f1:k7 with
         | Some r -> result := Some r
         | None ->
             t := !t +. h_try;
             y := y5;
             k1 := k7;
             h := next_h h_try err_norm)
       end
       else begin
         incr rejected;
         h := next_h h_try err_norm
       end
     done
   with Step_limit_exceeded _ as e ->
     (* Re-raise with the loop's own bookkeeping already in the payload. *)
     raise e);
  let st = { accepted = !accepted; rejected = !rejected; evals = !evals } in
  match !result with Some r -> (r, st) | None -> (!y, st)

let default_h0 ~span = Float.max 1e-12 (1e-2 *. span)

let integrate_adaptive_stats ?(rtol = default_rtol) ?(atol = default_atol)
    ?h0 ?(max_steps = 100_000) f ~t0 ~t1 ~y0 =
  check_tols ~rtol ~atol "Ode.integrate_adaptive";
  if not (t0 <= t1) then invalid_arg "Ode.integrate_adaptive: t0 > t1";
  if t0 = t1 then (y0, { accepted = 0; rejected = 0; evals = 0 })
  else begin
    let h0 = match h0 with Some h -> h | None -> default_h0 ~span:(t1 -. t0) in
    adaptive_loop ~rtol ~atol ~h0 ~max_steps ~limit_t:t1
      ~stop:(fun ~t:_ ~y:_ ~h:_ ~y5:_ ~f0:_ ~f1:_ -> None)
      f ~t0 ~y0
  end

let integrate_adaptive ?rtol ?atol ?h0 ?max_steps f ~t0 ~t1 ~y0 =
  fst (integrate_adaptive_stats ?rtol ?atol ?h0 ?max_steps f ~t0 ~t1 ~y0)

(* Adaptive threshold crossing: step until an accepted step brackets
   [target], then polish the crossing on the dense-output polynomial
   with Brent. f must be positive (y increasing). *)
let time_to_reach_adaptive_stats ?(rtol = default_rtol)
    ?(atol = default_atol) ?h0 ?(max_steps = 100_000) f ~y0 ~target =
  check_tols ~rtol ~atol "Ode.time_to_reach_adaptive";
  if target <= y0 then (0.0, { accepted = 0; rejected = 0; evals = 0 })
  else begin
    let h0 =
      match h0 with
      | Some h -> h
      | None ->
          let f0 = f 0.0 y0 in
          if f0 > 0.0 then Float.max 1e-12 (1e-2 *. ((target -. y0) /. f0))
          else 1.0
    in
    let stop ~t ~y ~h ~y5 ~f0 ~f1 =
      if y5 < target then None
      else begin
        (* The crossing lies inside [t, t + h]: find theta with
           H(theta) = target on the Hermite interpolant. H(0) < target
           <= H(1) up to interpolation error; fall back to the linear
           estimate if rounding breaks the bracket. *)
        let g theta = hermite ~y0:y ~y1:y5 ~f0 ~f1 ~h theta -. target in
        let theta =
          match Roots.brent ~tol:1e-15 g ~lo:0.0 ~hi:1.0 with
          | theta -> theta
          | exception Roots.No_bracket _ -> (target -. y) /. (y5 -. y)
        in
        Some (t +. (theta *. h))
      end
    in
    adaptive_loop ~rtol ~atol ~h0 ~max_steps ~limit_t:infinity ~stop f ~t0:0.0
      ~y0
  end

let time_to_reach_adaptive ?rtol ?atol ?h0 ?max_steps f ~y0 ~target =
  fst (time_to_reach_adaptive_stats ?rtol ?atol ?h0 ?max_steps f ~y0 ~target)

(* ------------------------------------------------------------------ *)
(* Resumable vector systems.                                          *)
(* ------------------------------------------------------------------ *)

module System = struct
  type deriv = float -> floatarray -> floatarray -> unit

  (* All stage arrays are preallocated at [create]; a steady-state
     [advance] allocates nothing. [y]/[y5] and [k1]/[k7] are mutable
     fields so an accepted step is two pointer swaps (FSAL: k7 of the
     accepted step is next step's k1). *)
  type t = {
    f : deriv;
    dim : int;
    rtol : float;
    atol : float;
    mutable t : float;
    mutable y : floatarray;
    mutable y5 : floatarray;
    ytmp : floatarray;
    mutable k1 : floatarray;
    k2 : floatarray;
    k3 : floatarray;
    k4 : floatarray;
    k5 : floatarray;
    k6 : floatarray;
    mutable k7 : floatarray;
    mutable h : float;
    mutable fsal : bool;
    mutable accepted : int;
    mutable rejected : int;
    mutable evals : int;
  }

  let fget = Float.Array.unsafe_get
  let fset = Float.Array.unsafe_set

  let create ?(rtol = default_rtol) ?(atol = default_atol) ?h0 ~f ~t0 ~y0 ()
      =
    check_tols ~rtol ~atol "Ode.System.create";
    let dim = Float.Array.length y0 in
    if dim = 0 then invalid_arg "Ode.System.create: empty state";
    if not (Float.is_finite t0) then
      invalid_arg "Ode.System.create: non-finite t0";
    let mk () = Float.Array.make dim 0.0 in
    {
      f;
      dim;
      rtol;
      atol;
      t = t0;
      y = Float.Array.copy y0;
      y5 = mk ();
      ytmp = mk ();
      k1 = mk ();
      k2 = mk ();
      k3 = mk ();
      k4 = mk ();
      k5 = mk ();
      k6 = mk ();
      k7 = mk ();
      h = (match h0 with Some h -> h | None -> 0.0);
      fsal = false;
      accepted = 0;
      rejected = 0;
      evals = 0;
    }

  let time st = st.t
  let dim st = st.dim
  let value st i = Float.Array.get st.y i
  let invalidate st = st.fsal <- false

  let set st i v =
    if Float.Array.get st.y i <> v then begin
      Float.Array.set st.y i v;
      st.fsal <- false
    end

  let stats st =
    { accepted = st.accepted; rejected = st.rejected; evals = st.evals }

  (* One trial step of size [h] from (st.t, st.y) with k1 valid. Fills
     y5/k2..k7 and returns the scaled max-norm error estimate. *)
  let trial st h =
    let n = st.dim and y = st.y and tm = st.ytmp in
    let k1 = st.k1
    and k2 = st.k2
    and k3 = st.k3
    and k4 = st.k4
    and k5 = st.k5
    and k6 = st.k6
    and k7 = st.k7
    and y5 = st.y5 in
    for i = 0 to n - 1 do
      fset tm i (fget y i +. (h *. a21 *. fget k1 i))
    done;
    st.f (st.t +. (c2 *. h)) tm k2;
    for i = 0 to n - 1 do
      fset tm i
        (fget y i +. (h *. ((a31 *. fget k1 i) +. (a32 *. fget k2 i))))
    done;
    st.f (st.t +. (c3 *. h)) tm k3;
    for i = 0 to n - 1 do
      fset tm i
        (fget y i
        +. (h
           *. ((a41 *. fget k1 i) +. (a42 *. fget k2 i) +. (a43 *. fget k3 i))
           ))
    done;
    st.f (st.t +. (c4 *. h)) tm k4;
    for i = 0 to n - 1 do
      fset tm i
        (fget y i
        +. (h
           *. ((a51 *. fget k1 i) +. (a52 *. fget k2 i) +. (a53 *. fget k3 i)
              +. (a54 *. fget k4 i))))
    done;
    st.f (st.t +. (c5 *. h)) tm k5;
    for i = 0 to n - 1 do
      fset tm i
        (fget y i
        +. (h
           *. ((a61 *. fget k1 i) +. (a62 *. fget k2 i) +. (a63 *. fget k3 i)
              +. (a64 *. fget k4 i) +. (a65 *. fget k5 i))))
    done;
    st.f (st.t +. h) tm k6;
    for i = 0 to n - 1 do
      fset y5 i
        (fget y i
        +. (h
           *. ((b1 *. fget k1 i) +. (b3 *. fget k3 i) +. (b4 *. fget k4 i)
              +. (b5 *. fget k5 i) +. (b6 *. fget k6 i))))
    done;
    st.f (st.t +. h) y5 k7;
    st.evals <- st.evals + 6;
    let en = ref 0.0 in
    for i = 0 to n - 1 do
      let err =
        h
        *. ((e1 *. fget k1 i) +. (e3 *. fget k3 i) +. (e4 *. fget k4 i)
           +. (e5 *. fget k5 i) +. (e6 *. fget k6 i) +. (e7 *. fget k7 i))
      in
      let scale =
        st.atol
        +. (st.rtol *. Float.max (Float.abs (fget y i)) (Float.abs (fget y5 i)))
      in
      let v = Float.abs err /. scale in
      if v > !en then en := v
    done;
    !en

  let advance ?(max_steps = 100_000) st target =
    if not (Float.is_finite target) then
      invalid_arg "Ode.System.advance: non-finite target";
    if target < st.t then invalid_arg "Ode.System.advance: target in the past";
    if target > st.t then begin
      if not st.fsal then begin
        st.f st.t st.y st.k1;
        st.evals <- st.evals + 1;
        st.fsal <- true
      end;
      if not (st.h > 0.0 && Float.is_finite st.h) then
        st.h <- Float.max 1e-12 (1e-2 *. (target -. st.t));
      let steps = ref 0 in
      while st.t < target do
        if !steps >= max_steps then
          step_limit ~t:st.t ~y:(Float.Array.get st.y 0) ~steps:!steps
            "Ode.System.advance: step budget exhausted";
        if not (Float.is_finite st.h && st.h > 0.0) then
          step_limit ~t:st.t ~y:(Float.Array.get st.y 0) ~steps:!steps
            "Ode.System.advance: step size underflow/overflow";
        incr steps;
        let remaining = target -. st.t in
        let clamped = st.h >= remaining in
        let h_try = if clamped then remaining else st.h in
        let err_norm = trial st h_try in
        if err_norm <= 1.0 then begin
          st.accepted <- st.accepted + 1;
          st.t <- (if clamped then target else st.t +. h_try);
          let y = st.y in
          st.y <- st.y5;
          st.y5 <- y;
          let k = st.k1 in
          st.k1 <- st.k7;
          st.k7 <- k;
          (* When the step was clamped to land on [target], keep the
             established (larger) h for the next advance. *)
          if clamped then st.h <- Float.max st.h (next_h h_try err_norm)
          else st.h <- next_h h_try err_norm
        end
        else begin
          st.rejected <- st.rejected + 1;
          st.h <- next_h h_try err_norm
        end
      done
    end
end
