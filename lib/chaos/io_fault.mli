(** Deterministic fault-injecting I/O shim for chaos testing the sweep
    service (queue writes, lease files, store publication).

    Off by default: every hook below is a single [ref] load and a
    branch, and with no seed set each hook is byte-for-byte equivalent
    to the plain operation it wraps — [write] is [output_string],
    [now] is [Unix.gettimeofday], the guards are no-ops. Enabled by
    [EBRC_CHAOS=<seed>] (read once at module init; ["0"], empty and
    unset all mean off) or [set_seed].

    When enabled, faults are scheduled from a dedicated
    {!Ebrc_rng.Prng.stream} under the chaos seed — the same discipline
    as the packet-level [Fault] module — so a chaos run is
    bit-reproducible: the same seed over the same operation sequence
    injects the same faults. The fault classes:

    - EIO / ENOSPC raised (as [Sys_error]) on file open and rename;
    - torn writes: a prefix of the content is written, then the write
      raises — models a writer dying mid-[write(2)];
    - lost fsync: the durability barrier is silently skipped;
    - clock skew: [now] occasionally returns a time up to ±30 s off,
      exercising lease-deadline disagreement between workers.

    Call sites must treat any [Sys_error] from a guarded operation as
    a (retryable) I/O failure; the queue and store already do. *)

val set_seed : int option -> unit
(** [Some seed] arms the shim and resets the fault schedule and
    {!stats}; [None] disarms it. *)

val seed : unit -> int option
(** The active chaos seed, if armed. *)

val enabled : unit -> bool

val guard_open : string -> unit
(** Call before creating/opening a file for writing: raises an
    injected EIO or ENOSPC [Sys_error] naming the path, or returns. *)

val guard_rename : string -> unit
(** Call before an atomic-publish rename: may raise an injected EIO. *)

val write : out_channel -> string -> unit
(** [output_string], except an injected fault may raise before writing
    anything (EIO) or after writing only a flushed prefix (torn
    write). Chaos off: exactly [output_string]. *)

val maim : string -> string
(** Possibly-truncated copy of [content] for writers that must not
    raise (lease bodies under O_EXCL): an injected torn write returns
    a proper prefix, otherwise the string is returned unchanged. *)

val fsync : out_channel -> unit
(** Durability barrier for just-written records. Chaos off: a no-op
    (the atomic-rename discipline never needed fsync for consistency).
    Chaos on: flush, then fsync — except when the schedule injects a
    lost fsync, modelling data sitting in the page cache. *)

val now : unit -> float
(** [Unix.gettimeofday], skewed by up to ±30 s when the schedule
    injects clock skew. Feed lease deadlines and expiry checks through
    this. *)

type stats = {
  eio : int;  (** injected EIO faults (open/write/rename) *)
  enospc : int;  (** injected ENOSPC faults on open *)
  torn_writes : int;  (** writes truncated mid-content *)
  fsync_lost : int;  (** durability barriers silently skipped *)
  clock_skews : int;  (** skewed [now] readings *)
}

val stats : unit -> stats
(** Faults injected since the last [set_seed]. All zero (and staying
    zero) when the shim is off — pinned by tests as the structural
    zero-overhead contract. *)
