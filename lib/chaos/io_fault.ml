(* Seed-driven I/O fault injection; see the .mli for the fault classes
   and the zero-overhead-when-off contract. *)

module Tm = Ebrc_telemetry.Telemetry
module Prng = Ebrc_rng.Prng

let m_eio = Tm.Counter.make ~help:"chaos: injected EIO faults" "chaos.eio"

let m_enospc =
  Tm.Counter.make ~help:"chaos: injected ENOSPC faults" "chaos.enospc"

let m_torn =
  Tm.Counter.make ~help:"chaos: injected torn writes" "chaos.torn_writes"

let m_fsync_lost =
  Tm.Counter.make ~help:"chaos: fsync barriers silently lost"
    "chaos.fsync_lost"

let m_skews =
  Tm.Counter.make ~help:"chaos: skewed clock readings" "chaos.clock_skews"

type stats = {
  eio : int;
  enospc : int;
  torn_writes : int;
  fsync_lost : int;
  clock_skews : int;
}

(* Per-fault-class probabilities, per guarded operation. Low enough
   that a bounded retry loop converges almost surely, high enough that
   a short soak exercises every class. *)
let p_open_eio = 0.03
let p_open_enospc = 0.03
let p_write_eio = 0.03
let p_write_torn = 0.06
let p_rename_eio = 0.04
let p_fsync_lost = 0.25
let p_skew = 0.08
let skew_magnitude = 30.0

let lock = Mutex.create ()

(* Under [lock] (except the armed/disarmed check, which is a single
   ref load on the hot path). *)
let rng : Prng.t option ref = ref None
let seed_ref : int option ref = ref None
let s_eio = ref 0
let s_enospc = ref 0
let s_torn = ref 0
let s_fsync_lost = ref 0
let s_skews = ref 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let set_seed s =
  locked (fun () ->
      seed_ref := s;
      rng := Option.map (fun root -> Prng.stream ~root 0) s;
      s_eio := 0;
      s_enospc := 0;
      s_torn := 0;
      s_fsync_lost := 0;
      s_skews := 0)

let seed () = locked (fun () -> !seed_ref)
let enabled () = !rng <> None

let stats () =
  locked (fun () ->
      {
        eio = !s_eio;
        enospc = !s_enospc;
        torn_writes = !s_torn;
        fsync_lost = !s_fsync_lost;
        clock_skews = !s_skews;
      })

let () =
  match Sys.getenv_opt "EBRC_CHAOS" with
  | None | Some "" | Some "0" -> ()
  | Some v -> (
      match int_of_string_opt v with
      | Some s -> set_seed (Some s)
      | None -> ())

let count counter cell =
  incr cell;
  if Tm.is_on () then Tm.Counter.incr counter

let injected what path =
  Sys_error (Printf.sprintf "%s: chaos injected %s" path what)

let guard_open path =
  match !rng with
  | None -> ()
  | Some g ->
      locked (fun () ->
          let u = Prng.float_unit g in
          if u < p_open_eio then begin
            count m_eio s_eio;
            raise (injected "EIO on open" path)
          end
          else if u < p_open_eio +. p_open_enospc then begin
            count m_enospc s_enospc;
            raise (injected "ENOSPC on open" path)
          end)

let guard_rename path =
  match !rng with
  | None -> ()
  | Some g ->
      locked (fun () ->
          if Prng.float_unit g < p_rename_eio then begin
            count m_eio s_eio;
            raise (injected "EIO on rename" path)
          end)

let write oc s =
  match !rng with
  | None -> output_string oc s
  | Some g -> (
      let fault =
        locked (fun () ->
            let u = Prng.float_unit g in
            if u < p_write_eio then begin
              count m_eio s_eio;
              `Eio
            end
            else if u < p_write_eio +. p_write_torn && String.length s > 1
            then begin
              count m_torn s_torn;
              `Torn (1 + Prng.int g (String.length s - 1))
            end
            else `None)
      in
      match fault with
      | `None -> output_string oc s
      | `Eio -> raise (injected "EIO on write" "<channel>")
      | `Torn n ->
          (* The prefix really lands (flushed) before the failure, so a
             half-written tmp/record is observable — the case the
             scrubber and the torn-lease grace exist for. *)
          output_string oc (String.sub s 0 n);
          flush oc;
          raise (injected "torn write" "<channel>"))

let maim s =
  match !rng with
  | None -> s
  | Some g ->
      locked (fun () ->
          if Prng.float_unit g < p_write_torn && String.length s > 1 then begin
            count m_torn s_torn;
            String.sub s 0 (1 + Prng.int g (String.length s - 1))
          end
          else s)

let fsync oc =
  match !rng with
  | None -> ()
  | Some g ->
      flush oc;
      let lost =
        locked (fun () ->
            if Prng.float_unit g < p_fsync_lost then begin
              count m_fsync_lost s_fsync_lost;
              true
            end
            else false)
      in
      if not lost then
        try Unix.fsync (Unix.descr_of_out_channel oc)
        with Unix.Unix_error _ -> ()

let now () =
  let t = Unix.gettimeofday () in
  match !rng with
  | None -> t
  | Some g ->
      locked (fun () ->
          if Prng.float_unit g < p_skew then begin
            count m_skews s_skews;
            t +. (((Prng.float_unit g *. 2.0) -. 1.0) *. skew_magnitude)
          end
          else t)
