(* TFRC receiver: feeds arriving data into the loss history, measures
   the receive rate, and sends one feedback report per round-trip time
   carrying the loss-event rate estimate, the receive rate, and the
   echo of the most recent data timestamp (for the sender's RTT
   estimator). *)

module Engine = Ebrc_sim.Engine
module Packet = Ebrc_net.Packet

type t = {
  engine : Engine.t;
  flow : int;
  history : Loss_history.t;
  mutable feedback_interval : float;
  mutable send_feedback : Packet.t -> unit;
  mutable feedback_seq : int;
  mutable received : int;
  mutable bytes : int;
  mutable received_at_last_report : int;
  mutable last_report_at : float;
  mutable last_data_stamp : float;
  mutable last_data_arrival : float;
  mutable started : bool;
  mutable first_recv_at : float;
  mutable last_recv_at : float;
  fb_lane : Engine.lane;     (* per-RTT report ticks: FIFO, never cancelled *)
}

let create ?(comprehensive = true) ~engine ~flow ~l ~rtt () =
  {
    engine;
    flow;
    history = Loss_history.create ~comprehensive ~l ~rtt ();
    feedback_interval = rtt;
    send_feedback = (fun _ -> ());
    feedback_seq = 0;
    received = 0;
    bytes = 0;
    received_at_last_report = 0;
    last_report_at = 0.0;
    last_data_stamp = 0.0;
    last_data_arrival = 0.0;
    started = false;
    first_recv_at = nan;
    last_recv_at = nan;
    fb_lane = Engine.lane engine;
  }

let set_feedback_sink t f = t.send_feedback <- f

let history t = t.history

let set_rtt t rtt =
  Loss_history.set_rtt t.history rtt;
  if rtt > 0.0 then t.feedback_interval <- rtt

let emit_report t =
  let now = t.engine.Engine.now in
  let elapsed = now -. t.last_report_at in
  let recv_rate =
    if elapsed <= 0.0 then 0.0
    else float_of_int (t.received - t.received_at_last_report) /. elapsed
  in
  t.received_at_last_report <- t.received;
  t.last_report_at <- now;
  let pkt =
    Packet.feedback ~flow:t.flow ~seq:t.feedback_seq
      ~p_estimate:(Loss_history.p_estimate t.history)
      ~recv_rate ~rtt_echo:t.last_data_stamp
      ~hold:(Float.max 0.0 (now -. t.last_data_arrival))
      ~sent_at:now
  in
  t.feedback_seq <- t.feedback_seq + 1;
  t.send_feedback pkt

let feedback_loop t =
  (* One self-rescheduling thunk for the lifetime of the receiver. Each
     tick pushes the next one strictly later (feedback_interval > 0), so
     the per-receiver stream is FIFO and rides a lane. *)
  let rec tick () =
    emit_report t;
    Engine.lane_push t.fb_lane
      ~at:(t.engine.Engine.now +. t.feedback_interval)
      tick
  in
  Engine.lane_push t.fb_lane
    ~at:(t.engine.Engine.now +. t.feedback_interval)
    tick

let on_data t (pkt : Packet.t) =
  let now = t.engine.Engine.now in
  t.received <- t.received + 1;
  t.bytes <- t.bytes + pkt.size;
  t.last_data_stamp <- (Packet.sent_at pkt);
  t.last_data_arrival <- now;
  if Float.is_nan t.first_recv_at then t.first_recv_at <- now;
  t.last_recv_at <- now;
  Loss_history.on_packet t.history ~now ~seq:pkt.seq;
  if not t.started then begin
    t.started <- true;
    t.last_report_at <- now;
    (* First report goes out immediately so the sender leaves its
       initial rate quickly; then one per RTT. *)
    emit_report t;
    feedback_loop t
  end

let received t = t.received
let bytes t = t.bytes

let throughput_pps t =
  let d = t.last_recv_at -. t.first_recv_at in
  if Float.is_nan d || d <= 0.0 then 0.0
  else float_of_int (t.received - 1) /. d
