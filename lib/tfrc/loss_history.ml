(* TFRC receiver-side loss-event history (RFC 3448 section 5, as analysed
   by the paper).

   Losses are detected from sequence-number gaps. A detected loss starts
   a new loss event only if it occurs more than one round-trip time after
   the start of the previous loss event; otherwise it belongs to the same
   event. Loss-event intervals are counted in packets. The average loss
   interval is the weighted moving average over the last L completed
   intervals (theta_hat_n), optionally raised by the open interval (the
   comprehensive rule, paper Eq. (4)) — both implemented by
   [Ebrc_estimator.Loss_interval].

   For the paper's covariance instrumentation the history records, at
   each loss event n, the pair (theta_hat_n, theta_n): the estimate in
   force during the interval and the interval that actually materialised. *)

module Loss_interval = Ebrc_estimator.Loss_interval
module Floatbuf = Ebrc_stats.Floatbuf
module Tm = Ebrc_telemetry.Telemetry

let m_loss_events =
  Tm.Counter.make ~help:"TFRC loss events (one-RTT aggregated)"
    "tfrc.loss_events"

let m_wali_updates =
  Tm.Counter.make ~help:"WALI estimator updates (completed intervals)"
    "tfrc.wali_updates"

let m_intervals =
  Tm.Histogram.make ~help:"completed loss-event intervals (packets)"
    "tfrc.loss_interval_packets"

type t = {
  estimator : Loss_interval.t;
  comprehensive : bool;
  discounting : bool;                 (* history discounting, RFC 3448 5.5 *)
  mutable discount : float;           (* current discount factor in (0,1] *)
  mutable rtt : float;                (* loss-event aggregation window *)
  mutable expected_seq : int;
  mutable packets_since_event : int;  (* open interval theta(t), packets *)
  mutable event_count : int;
  mutable last_event_at : float;
  mutable total_lost : int;
  pair_hats : Floatbuf.t;             (* theta_hat_n at each event *)
  pair_thetas : Floatbuf.t;           (* matching theta_n *)
  intervals : Floatbuf.t;
}

let create ?(comprehensive = true) ?(discounting = false) ~l ~rtt () =
  if rtt <= 0.0 then invalid_arg "Loss_history.create: rtt <= 0";
  {
    estimator = Loss_interval.of_tfrc ~l;
    comprehensive;
    discounting;
    discount = 1.0;
    rtt;
    expected_seq = 0;
    packets_since_event = 0;
    event_count = 0;
    last_event_at = neg_infinity;
    total_lost = 0;
    pair_hats = Floatbuf.create ();
    pair_thetas = Floatbuf.create ();
    intervals = Floatbuf.create ();
  }

let set_rtt t rtt = if rtt > 0.0 then t.rtt <- rtt

let record_loss_event t ~now =
  if now -. t.last_event_at > t.rtt then begin
    if t.event_count > 0 then begin
      let theta = float_of_int t.packets_since_event in
      let theta = Float.max theta 1.0 in
      if Loss_interval.filled t.estimator > 0 then begin
        Floatbuf.add t.pair_hats (Loss_interval.estimate t.estimator);
        Floatbuf.add t.pair_thetas theta
      end;
      Floatbuf.add t.intervals theta;
      Loss_interval.record t.estimator theta;
      if Tm.is_on () then begin
        Tm.Counter.incr m_wali_updates;
        Tm.Histogram.observe m_intervals theta
      end;
      t.discount <- 1.0
    end;
    if Tm.is_on () then begin
      Tm.Counter.incr m_loss_events;
      (* value = the open interval this event closes, in packets *)
      Tm.event "tfrc.loss_event" ~time:now
        ~value:(float_of_int t.packets_since_event)
    end;
    t.event_count <- t.event_count + 1;
    t.packets_since_event <- 0;
    t.last_event_at <- now
  end

(* Process an arriving data packet; gaps imply losses (the simulated
   paths never reorder). *)
let on_packet t ~now ~seq =
  if seq > t.expected_seq then begin
    (* seq - expected_seq packets were lost; they all belong to (at
       most) one new loss event here since they were back-to-back. *)
    t.total_lost <- t.total_lost + (seq - t.expected_seq);
    record_loss_event t ~now
  end;
  if seq >= t.expected_seq then begin
    t.expected_seq <- seq + 1;
    t.packets_since_event <- t.packets_since_event + 1
  end

let has_loss t = t.event_count > 0
let event_count t = t.event_count
let total_lost t = t.total_lost
let open_interval t = t.packets_since_event

(* History discounting (in the spirit of RFC 3448 section 5.5): when the
   open interval has grown well beyond the historical average, the old
   history under-represents how good conditions have become; we shrink
   the contribution of the completed history toward the open interval by
   a factor that decays with the open/average ratio, floored at 1/2 so
   the history is never wiped out by one quiet spell. The factor resets
   to 1 whenever a new loss event completes an interval. *)
let update_discount t ~base ~open_interval =
  if t.discounting && base > 0.0 && open_interval > 2.0 *. base then
    t.discount <- Float.max 0.5 (2.0 *. base /. open_interval)
  else t.discount <- 1.0

(* Average loss interval: with the comprehensive rule the open interval
   is allowed to raise (never lower) the estimate; with discounting the
   completed history is additionally down-weighted during long quiet
   spells, letting the estimate track improving conditions faster.

   The discounted candidate uses exactly the weights of the Eq. (4)
   open-interval candidate (w1 on the open interval, w_{i+2} on history
   interval i, renormalised over the filled prefix) with the history
   weights scaled by the discount factor, so disc = 1 recovers Eq. (4)
   and disc -> 0 trusts the open interval alone. *)
let discounted_candidate t ~open_interval =
  let e = t.estimator in
  let weights = Loss_interval.weights e in
  let l = Array.length weights in
  let m = min (Loss_interval.filled e) (l - 1) in
  let w1 = weights.(0) in
  let wsum = ref w1 and acc = ref (w1 *. open_interval) in
  for i = 0 to m - 1 do
    let w = t.discount *. weights.(i + 1) in
    wsum := !wsum +. w;
    acc := !acc +. (w *. Loss_interval.nth_back e i)
  done;
  !acc /. !wsum

let average_interval t =
  if Loss_interval.filled t.estimator = 0 then infinity
  else begin
    let base = Loss_interval.estimate t.estimator in
    let open_interval = float_of_int t.packets_since_event in
    if not t.comprehensive then base
    else begin
      update_discount t ~base ~open_interval;
      let compr =
        Loss_interval.estimate_with_open_interval t.estimator ~open_interval
      in
      if t.discount >= 1.0 then compr
      else Float.max compr (discounted_candidate t ~open_interval)
    end
  end

(* Loss-event rate estimate 1/theta_hat; 0 before any interval
   completes. *)
let p_estimate t =
  let avg = average_interval t in
  if avg = infinity then 0.0 else 1.0 /. avg

let completed_intervals t = Floatbuf.to_array t.intervals

let interval_count t = Floatbuf.length t.intervals

let estimate_pairs t =
  Array.init (Floatbuf.length t.pair_hats) (fun i ->
      (Floatbuf.get t.pair_hats i, Floatbuf.get t.pair_thetas i))

let pair_count t = Floatbuf.length t.pair_hats

(* Empirical loss-event rate over the whole run (paper Eq. (1)):
   completed intervals only. *)
let empirical_p t =
  let n = Floatbuf.length t.intervals in
  if n = 0 then 0.0 else float_of_int n /. Floatbuf.sum t.intervals
