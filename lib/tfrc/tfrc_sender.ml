(* TFRC sender: rate-based transmission with the rate set from the
   throughput formula evaluated at the receiver-reported loss-event rate
   and the sender's smoothed RTT.

   Before any loss has been reported the sender doubles its rate each
   feedback (TFRC's slow-start analogue), capped at twice the reported
   receive rate; a report of zero receive rate holds the rate steady.
   After the first loss report, the rate is
   X = f(p_reported, srtt) — the comprehensive control when the receiver
   applies the open-interval rule, the basic control otherwise.

   [conform_to_analysis] disables the receive-rate cap so the control
   matches the paper's idealised model (the paper's lab senders were
   adjusted the same way). *)

module Engine = Ebrc_sim.Engine
module Packet = Ebrc_net.Packet
module Formula = Ebrc_formulas.Formula
module Welford = Ebrc_stats.Welford
module Tm = Ebrc_telemetry.Telemetry

let m_rate_changes =
  Tm.Counter.make ~help:"TFRC sender rate updates (formula or slow-start)"
    "tfrc.rate_changes"

let m_halvings =
  Tm.Counter.make ~help:"nofeedback-timer rate halvings"
    "tfrc.nofeedback_halvings"

let m_feedbacks =
  Tm.Counter.make ~help:"receiver feedback reports processed" "tfrc.feedbacks"

type t = {
  engine : Engine.t;
  flow : int;
  formula : Formula.t;
  packet_size : int;
  conform_to_analysis : bool;
  mutable transmit : Packet.t -> unit;
  mutable rate : float;                 (* current send rate, pkt/s *)
  mutable srtt : float;
  mutable seq : int;
  mutable sent : int;
  mutable running : bool;
  mutable saw_loss : bool;
  mutable last_recv_rate : float;
  mutable feedbacks : int;
  rate_stats : Welford.t;
  rtt_stats : Welford.t;
  mutable on_rate_change : float -> unit;
  initial_rate : float;
  min_rate : float;
  max_rate : float;
  nofeedback_rtts : float;            (* timer horizon in RTTs; 0 = off *)
  mutable nofeedback_timer : Engine.handle option;
  mutable rate_halvings : int;
  mutable send_tick : unit -> unit;   (* preallocated send-loop thunk *)
  send_lane : Engine.lane;            (* pacing ticks: FIFO, never cancelled *)
}

let rec create ?(packet_size = 1000) ?(conform_to_analysis = false)
    ?(initial_rate = 1.0) ?(min_rate = 0.1) ?(max_rate = 1e6)
    ?(nofeedback_rtts = 4.0) ~engine ~flow ~formula () =
  if packet_size <= 0 then invalid_arg "Tfrc_sender.create: packet_size <= 0";
  if initial_rate <= 0.0 then
    invalid_arg "Tfrc_sender.create: initial_rate <= 0";
  if max_rate <= min_rate then
    invalid_arg "Tfrc_sender.create: max_rate <= min_rate";
  let t =
    {
      engine;
      flow;
      formula;
      packet_size;
      conform_to_analysis;
      transmit = (fun _ -> ());
    rate = initial_rate;
    srtt = 0.0;
    seq = 0;
    sent = 0;
    running = false;
    saw_loss = false;
    last_recv_rate = 0.0;
    feedbacks = 0;
    rate_stats = Welford.create ();
    rtt_stats = Welford.create ();
    on_rate_change = (fun _ -> ());
    initial_rate;
    min_rate;
    max_rate;
      nofeedback_rtts;
      nofeedback_timer = None;
      rate_halvings = 0;
      send_tick = (fun () -> ());
      send_lane = Engine.lane engine;
    }
  in
  t.send_tick <- (fun () -> send_loop t);
  t

and send_loop t =
  if t.running then begin
    let pkt =
      Packet.data ~flow:t.flow ~seq:t.seq ~size:t.packet_size
        ~sent_at:(t.engine.Engine.now)
    in
    t.seq <- t.seq + 1;
    t.sent <- t.sent + 1;
    t.transmit pkt;
    (* Not [Float.max]: both operands are positive and non-NaN, and
       the stdlib's NaN/-0 handling is a [caml_signbit] C call per
       packet. *)
    let floor_ = if t.rate > t.min_rate then t.rate else t.min_rate in
    let gap = 1.0 /. floor_ in
    (* Each tick schedules the next strictly later, and rate changes
       only affect ticks not yet pushed — FIFO holds per sender. *)
    Engine.lane_push_after t.send_lane ~delay:gap t.send_tick
  end

let set_transmit t f = t.transmit <- f
let set_rate_change_hook t f = t.on_rate_change <- f

let update_rtt t sample =
  if sample > 0.0 then begin
    Welford.add t.rtt_stats sample;
    if t.srtt = 0.0 then t.srtt <- sample
    else t.srtt <- (0.9 *. t.srtt) +. (0.1 *. sample)
  end

let set_rate t rate =
  let rate = Float.min (Float.max rate t.min_rate) t.max_rate in
  t.rate <- rate;
  Welford.add t.rate_stats rate;
  if Atomic.get Tm.on then begin
    Tm.Counter.incr m_rate_changes;
    Tm.event "tfrc.rate" ~time:(t.engine.Engine.now) ~flow:t.flow ~value:rate
  end;
  t.on_rate_change rate

(* The RFC 3448 nofeedback timer: if no receiver report arrives for
   [nofeedback_rtts] round-trip times, halve the rate and re-arm. This
   protects against reverse-path loss and receiver failure; a flow that
   stops hearing feedback decays toward the floor instead of blasting
   at its last rate. *)
let rec arm_nofeedback_timer t =
  if t.nofeedback_rtts > 0.0 then begin
    (match t.nofeedback_timer with
    | Some h ->
        Engine.cancel h;
        t.nofeedback_timer <- None
    | None -> ());
    let horizon =
      t.nofeedback_rtts *. if t.srtt > 0.0 then t.srtt else 1.0
    in
    t.nofeedback_timer <-
      Some
        (Engine.schedule_after t.engine ~delay:horizon (fun () ->
             t.nofeedback_timer <- None;
             if t.running then begin
               t.rate_halvings <- t.rate_halvings + 1;
               if Atomic.get Tm.on then begin
                 Tm.Counter.incr m_halvings;
                 Tm.event "tfrc.nofeedback_halving"
                   ~time:(t.engine.Engine.now) ~flow:t.flow ~value:t.rate
               end;
               set_rate t (t.rate /. 2.0);
               arm_nofeedback_timer t
             end))
  end

let start t =
  if not t.running then begin
    t.running <- true;
    send_loop t;
    arm_nofeedback_timer t
  end

let stop t =
  t.running <- false;
  match t.nofeedback_timer with
  | Some h ->
      Engine.cancel h;
      t.nofeedback_timer <- None
  | None -> ()

let on_feedback t ~p_estimate ~recv_rate ~rtt_echo ~hold =
  t.feedbacks <- t.feedbacks + 1;
  if Atomic.get Tm.on then Tm.Counter.incr m_feedbacks;
  arm_nofeedback_timer t;
  let now = t.engine.Engine.now in
  (* Exclude the receiver hold time from the RTT sample — without this
     a starved flow echoes a stale timestamp, its smoothed RTT explodes,
     and f(p, srtt) pins the rate at the floor (a death spiral). *)
  if rtt_echo > 0.0 then update_rtt t (now -. rtt_echo -. hold);
  t.last_recv_rate <- recv_rate;
  if p_estimate > 0.0 then begin
    t.saw_loss <- true;
    let formula =
      if t.srtt > 0.0 then Formula.with_rtt t.formula ~rtt:t.srtt
      else t.formula
    in
    let x = Formula.eval formula p_estimate in
    let x =
      if t.conform_to_analysis then x
      else if recv_rate > 0.0 then Float.min x (2.0 *. recv_rate)
      else x
    in
    set_rate t x
  end
  else if not t.saw_loss then begin
    (* Slow-start analogue: double each feedback, capped at twice the
       reported receive rate (RFC 3448 s4.3). A report with
       recv_rate = 0 means nothing reached the receiver since the last
       report — hold the rate rather than blind-double. Treating zero
       as "no cap" let a slow starter (paced at its low initial rate,
       its pending send tick not yet due) double to max_rate on empty
       reports and then blast ~10^5 packets into a full queue the
       moment the tick fired: ~1.5 MW of minor allocation and ~90k
       drops in the first simulated second of every scenario run. *)
    if t.conform_to_analysis then set_rate t (2.0 *. t.rate)
    else if t.last_recv_rate > 0.0 then
      set_rate t
        (Float.min (2.0 *. t.rate) (2.0 *. t.last_recv_rate))
  end

let on_packet t (pkt : Packet.t) =
  match pkt.kind with
  | Packet.Feedback { p_estimate; recv_rate; rtt_echo; hold } ->
      on_feedback t ~p_estimate ~recv_rate ~rtt_echo ~hold
  | Packet.Data | Packet.Ack _ -> ()

let rate t = t.rate
let srtt t = t.srtt
let sent t = t.sent
let feedbacks t = t.feedbacks
let mean_rtt t = Welford.mean t.rtt_stats
let mean_rate t = Welford.mean t.rate_stats
let flow t = t.flow
let rate_halvings t = t.rate_halvings
