(** TFRC receiver-side loss-event history (RFC 3448 §5 as analysed by
    the paper): gap-based loss detection, one-RTT loss-event
    aggregation, packet-counted intervals, WALI average with or without
    the comprehensive open-interval rule. *)

type t

val create :
  ?comprehensive:bool -> ?discounting:bool -> l:int -> rtt:float -> unit -> t
(** [l] is the history window; [rtt] the loss-event aggregation window
    (updatable). [comprehensive] defaults to true, matching TFRC.
    [discounting] (default false) enables history discounting in the
    spirit of RFC 3448 5.5: during a quiet spell much longer than the
    historical average, the completed history is down-weighted so the
    estimate tracks improving conditions faster; the factor resets at
    the next loss event. *)

val set_rtt : t -> float -> unit

val on_packet : t -> now:float -> seq:int -> unit
(** Feed an arriving data packet; sequence gaps imply losses. *)

val has_loss : t -> bool
val event_count : t -> int
val total_lost : t -> int
val open_interval : t -> int
(** Packets received since the last loss event (θ(t)). *)

val average_interval : t -> float
(** θ̂ (with the open-interval rule when comprehensive); [infinity]
    before the first interval completes. *)

val p_estimate : t -> float
(** 1/θ̂; 0 before any interval completes. *)

val completed_intervals : t -> float array

val interval_count : t -> int
(** Number of completed intervals, without materialising the array. *)

val estimate_pairs : t -> (float * float) array
(** Per loss event n: (θ̂ₙ in force during the interval, realised θₙ) —
    the covariance-condition instrumentation behind Figures 5 and 10. *)

val pair_count : t -> int
(** Number of recorded (θ̂ₙ, θₙ) pairs, without materialising them. *)

val empirical_p : t -> float
(** Whole-run loss-event rate (paper Eq. (1)). *)
