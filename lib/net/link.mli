(** A simplex link: a queue discipline feeding a fixed-rate server,
    followed by a propagation delay. *)

type t

val create :
  engine:Ebrc_sim.Engine.t ->
  rate_bps:float ->
  delay:float ->
  queue:Queue_discipline.t ->
  rng:Ebrc_rng.Prng.t ->
  t

val set_deliver : t -> (Packet.t -> unit) -> unit
(** Downstream delivery callback (after service + propagation). *)

val set_on_drop : t -> (Packet.t -> unit) -> unit
(** Measurement hook for drops; protocols must learn losses end-to-end. *)

val send : t -> Packet.t -> unit
(** Offer a packet to the queue discipline. *)

val attach_fluid : t -> Fluid.t -> unit
(** Couple a fluid background aggregate to this link: foreground drop
    decisions see the queue inflated by the fluid backlog
    ({!Queue_discipline.offer_fluid}), foreground service is scaled by
    {!Fluid.fg_share}, and every arrival feeds the fluid's input-rate
    estimate. Never call this when {!Fluid.enabled} is false — the
    unattached link is structurally the packet-only code path (the
    EBRC_HYBRID ablation). *)

val fluid : t -> Fluid.t option

val transmission_time : t -> Packet.t -> float
val queue : t -> Queue_discipline.t
val delivered : t -> int
val bytes_delivered : t -> int
val utilization : t -> duration:float -> float
