(** Deterministic, seed-driven fault injection.

    A fault injector wraps packet sinks — the forward-path link ingress
    and the per-flow feedback sinks — and perturbs them with scheduled
    link up/down flaps, delay-spike episodes, reordering and duplication
    windows, and one-way feedback blackouts. Every random choice is
    drawn from the injector's own {!Ebrc_rng.Prng} stream, so a fault
    schedule is a pure function of the scenario seed: running twice
    yields bit-identical traces and [fault.*] telemetry counters.

    The whole layer is ablatable: with [EBRC_FAULTS=0] (or
    {!set_enabled}[ false]) injectors are inert and {!wrap_forward} /
    {!wrap_feedback} return the underlying sink physically unchanged —
    zero extra closures, zero PRNG draws, zero events — so a disabled
    run is bit-identical to one that never configured faults. *)

type flaps = {
  first_down : float;  (** time of the first down transition (s) *)
  down_mean : float;   (** mean outage length (s) *)
  up_mean : float;     (** mean up-time between outages (s) *)
  flap_jitter : float;
      (** relative spread in [0, 1): each duration is drawn uniformly
          from [mean*(1-jitter), mean*(1+jitter)] *)
  park : bool;
      (** [true]: packets offered while the link is down are parked and
          re-offered FIFO at the next up transition; [false]: dropped *)
}

type window = {
  start : float;   (** first episode start (s) *)
  length : float;  (** episode length (s) *)
  period : float;
      (** repeat interval; [0.] means one-shot. Must satisfy
          [period >= length] when positive. *)
}
(** Episode windows are pure arithmetic on simulated time — membership
    costs a subtraction and a compare, no PRNG, no scheduled events. *)

type config = {
  flaps : flaps option;
  blackouts : window list;
      (** one-way feedback blackouts: feedback packets offered to a
          {!wrap_feedback}-wrapped sink inside a window are dropped *)
  spike : (window * float) option;
      (** delay-spike episodes: forward packets inside the window are
          held for an extra one-way delay (s) *)
  reorder : (window * float * float) option;
      (** [(episodes, prob, hold)]: inside the window each forward
          packet is, with probability [prob], held back [hold] seconds
          so later packets overtake it *)
  duplicate : (window * float) option;
      (** [(episodes, prob)]: inside the window each forward packet is,
          with probability [prob], delivered twice *)
}

val none : config
(** No faults; an injector created from [none] is inert. *)

val set_enabled : bool -> unit
(** Global ablation toggle (default on; set [EBRC_FAULTS=0] to
    disable). Flip only between simulations. *)

val enabled : unit -> bool

type t

val create : engine:Ebrc_sim.Engine.t -> rng:Ebrc_rng.Prng.t -> config -> t
(** Validates the config ([Invalid_argument] on nonsense: negative
    times, [flap_jitter] outside [0, 1), probabilities outside [0, 1],
    [0 < period < length]...). If faults are globally disabled or the
    config is {!none}-shaped, the injector is inert: no events are
    scheduled and [rng] is never consulted. Otherwise the flap state
    machine (if any) is scheduled immediately. *)

val active : t -> bool
(** [false] for inert injectors. *)

val wrap_forward : t -> (Packet.t -> unit) -> (Packet.t -> unit)
(** Interpose the injector on a forward-path sink (link ingress).
    Returns the sink unchanged when the injector is inert or only
    blackouts are configured. Several senders may share one wrapped
    sink; parked packets are re-offered in global FIFO order. *)

val wrap_feedback : t -> (Packet.t -> unit) -> (Packet.t -> unit)
(** Interpose the feedback-blackout filter on a reverse-path sink.
    Returns the sink unchanged when inert or no blackouts are
    configured. *)

type stats = {
  transitions : int;     (** link up/down transitions *)
  down_drops : int;      (** packets dropped while the link was down *)
  parked : int;          (** packets parked while the link was down *)
  spiked : int;          (** packets given a delay spike *)
  reordered : int;       (** packets held back for reordering *)
  duplicated : int;      (** extra copies injected *)
  blackout_drops : int;  (** feedback packets dropped in blackouts *)
}

val stats : t -> stats
(** Injector-local counts (always maintained, independent of the
    telemetry runtime gate; the [fault.*] counters mirror them). *)
