(** Simulated packets (sizes in bytes, per-flow sequence numbers). *)

type kind =
  | Data
  | Ack of { acked : int; dup : bool }
  | Feedback of {
      p_estimate : float;
      recv_rate : float;
      rtt_echo : float;
      hold : float;
    }

type t = {
  mutable flow : int;
  mutable seq : int;
  mutable size : int;
  mutable kind : kind;
  f : float array;  (** [0] = origination time; use {!sent_at}. *)
}
(** The origination timestamp lives in a one-cell flat float array
    rather than a mutable float field: in a mixed int/float record the
    float is boxed, so every store allocates and (on a tenured, pooled
    record) pays a write barrier, while the flat-array cell is unboxed
    and barrier-free. That makes a recycled packet's refill touch no
    GC machinery at all. *)

val sent_at : t -> float
(** Origination time, for RTT samples. *)

val set_sent_at : t -> float -> unit

val data : flow:int -> seq:int -> size:int -> sent_at:float -> t
(** Draws from the per-domain freelist when pooling is on; pair with
    {!release} at the packet's terminal consumer to recycle. *)

val release : t -> unit
(** Return a [Data] packet to the per-domain freelist (no-op when
    pooling is off). The packet must not be used afterwards. No-op for
    Ack/Feedback packets, so demux code can release unconditionally. *)

val set_pooling : bool -> unit
(** Toggle the data-packet freelist ([EBRC_POOL=1] turns it on). Still
    off by default. With [sent_at] unboxed the refill of a recycled
    packet is barrier-free, which narrowed the gap the PR 2 ablation
    measured (~40% wall overhead then, ~10% now, with ~40% fewer
    minor words) — but fresh minor-heap packets still win on wall
    time: bump allocation plus a young death is cheaper than two
    freelist operations on tenured, cache-scattered records. Kept for
    A/B measurement (bench/main.exe records both sides). Flip only
    between simulations. *)

val dummy : t
(** Placeholder for preallocated buffers; never enters the freelist. *)

val copy : t -> t
(** Deep copy (fresh record and timestamp cell); used by fault
    injection to duplicate packets without aliasing the original's
    mutable state. The copy is never pool-owned until released. *)

val ack : flow:int -> seq:int -> acked:int -> dup:bool -> sent_at:float -> t
(** 40-byte acknowledgment; [acked] is the cumulative ACK number. *)

val feedback :
  flow:int -> seq:int -> p_estimate:float -> recv_rate:float ->
  rtt_echo:float -> hold:float -> sent_at:float -> t
(** TFRC receiver report (40 bytes). [hold] is the time the echoed data
    timestamp was held at the receiver, so the sender can exclude it
    from the RTT sample. *)

val is_data : t -> bool
val bits : t -> int
