(** Simulated packets (sizes in bytes, per-flow sequence numbers). *)

type kind =
  | Data
  | Ack of { acked : int; dup : bool }
  | Feedback of {
      p_estimate : float;
      recv_rate : float;
      rtt_echo : float;
      hold : float;
    }

type t = {
  mutable flow : int;
  mutable seq : int;
  mutable size : int;
  mutable kind : kind;
  mutable sent_at : float;
}

val data : flow:int -> seq:int -> size:int -> sent_at:float -> t
(** Draws from the per-domain freelist when pooling is on; pair with
    {!release} at the packet's terminal consumer to recycle. *)

val release : t -> unit
(** Return a [Data] packet to the per-domain freelist (no-op when
    pooling is off). The packet must not be used afterwards. No-op for
    Ack/Feedback packets, so demux code can release unconditionally. *)

val set_pooling : bool -> unit
(** Toggle the freelist. Off by default (or set [EBRC_POOL=1]):
    measured on the scenario bench, pooling halves minor-heap traffic
    but costs ~40% wall time — tenured records turn every boxed-field
    store into a write barrier plus a promotion. Kept for A/B
    allocation measurements. Flip only between simulations. *)

val dummy : t
(** Placeholder for preallocated buffers; never enters the freelist. *)

val ack : flow:int -> seq:int -> acked:int -> dup:bool -> sent_at:float -> t
(** 40-byte acknowledgment; [acked] is the cumulative ACK number. *)

val feedback :
  flow:int -> seq:int -> p_estimate:float -> recv_rate:float ->
  rtt_echo:float -> hold:float -> sent_at:float -> t
(** TFRC receiver report (40 bytes). [hold] is the time the echoed data
    timestamp was held at the receiver, so the sender can exclude it
    from the RTT sample. *)

val is_data : t -> bool
val bits : t -> int
