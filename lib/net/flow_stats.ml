(* Per-flow measurement: packets/bytes sent and received, loss events as
   defined by the paper (losses separated by less than one RTT belong to
   the same loss event), loss-event intervals in packets, and RTT
   samples. This is the "direct probing" instrumentation standing in for
   the paper's tcpdump post-processing. *)

module Welford = Ebrc_stats.Welford
module Floatbuf = Ebrc_stats.Floatbuf

type t = {
  flow : int;
  rtt_hint : float;             (* loss-event aggregation window, seconds *)
  mutable sent : int;
  mutable received : int;
  mutable bytes_received : int;
  mutable lost : int;
  mutable loss_events : int;
  mutable last_loss_event_at : float;
  mutable packets_since_event : int;
  intervals : Floatbuf.t;       (* completed loss-event intervals, packets *)
  rtt_stats : Welford.t;
  mutable first_recv_at : float;
  mutable last_recv_at : float;
}

let create ~flow ~rtt_hint =
  if rtt_hint <= 0.0 then invalid_arg "Flow_stats.create: rtt_hint <= 0";
  {
    flow;
    rtt_hint;
    sent = 0;
    received = 0;
    bytes_received = 0;
    lost = 0;
    loss_events = 0;
    last_loss_event_at = neg_infinity;
    packets_since_event = 0;
    intervals = Floatbuf.create ();
    rtt_stats = Welford.create ();
    first_recv_at = nan;
    last_recv_at = nan;
  }

let flow t = t.flow

let on_send t = t.sent <- t.sent + 1

let on_receive t ~now ~bytes =
  t.received <- t.received + 1;
  t.bytes_received <- t.bytes_received + bytes;
  t.packets_since_event <- t.packets_since_event + 1;
  if Float.is_nan t.first_recv_at then t.first_recv_at <- now;
  t.last_recv_at <- now

let on_loss t ~now =
  t.lost <- t.lost + 1;
  (* Paper definition: a new loss event only if more than one RTT has
     elapsed since the previous loss event started. *)
  if now -. t.last_loss_event_at > t.rtt_hint then begin
    if t.loss_events > 0 then
      Floatbuf.add t.intervals (float_of_int t.packets_since_event);
    t.loss_events <- t.loss_events + 1;
    t.packets_since_event <- 0;
    t.last_loss_event_at <- now
  end

let on_rtt_sample t rtt = Welford.add t.rtt_stats rtt

let sent t = t.sent
let received t = t.received
let lost t = t.lost
let loss_events t = t.loss_events

let loss_event_intervals t = Floatbuf.to_array t.intervals

let interval_count t = Floatbuf.length t.intervals

(* Loss-event rate as the paper defines it: 1 / E[theta], estimated as
   (number of completed intervals) / (total packets across them). *)
let loss_event_rate t =
  let n = Floatbuf.length t.intervals in
  if n = 0 then 0.0 else float_of_int n /. Floatbuf.sum t.intervals

let mean_rtt t = Welford.mean t.rtt_stats
let rtt_samples t = Welford.count t.rtt_stats

let throughput_pps t =
  let d = t.last_recv_at -. t.first_recv_at in
  if Float.is_nan d || d <= 0.0 then 0.0
  else float_of_int (t.received - 1) /. d

let throughput_bps t =
  let d = t.last_recv_at -. t.first_recv_at in
  if Float.is_nan d || d <= 0.0 then 0.0
  else 8.0 *. float_of_int t.bytes_received /. d
