(* Queue disciplines for the bottleneck link: DropTail and RED.

   RED follows the classic Floyd/Jacobson design as configured in ns-2
   and in the paper's experiments: an EWMA of the instantaneous queue
   length, linear drop probability between min and max thresholds,
   forced drop above the max threshold, non-"gentle" mode, and the
   count-based spacing of drops. The queue operates in packet mode
   (drop decisions independent of packet length), which is the mode the
   paper's Claim-2 audio experiments rely on. *)

module Tm = Ebrc_telemetry.Telemetry

let m_enqueues =
  Tm.Counter.make ~help:"packets admitted by any queue discipline"
    "queue.enqueues"

let m_drops =
  Tm.Counter.make ~help:"packets dropped by any queue discipline" "queue.drops"

let m_red_early =
  Tm.Counter.make ~help:"RED probabilistic (early) drops"
    "queue.red_early_drops"

let m_red_forced =
  Tm.Counter.make ~help:"RED forced drops (buffer full or above max_th)"
    "queue.red_forced_drops"

let m_occupancy =
  Tm.Gauge.make ~help:"queue occupancy sampled at every enqueue (packets)"
    "queue.occupancy"

type decision = Enqueue | Drop

type red_params = {
  min_th : float;      (* packets *)
  max_th : float;      (* packets *)
  max_p : float;       (* drop probability at max_th *)
  wq : float;          (* EWMA weight (ns-2 default 0.002) *)
  byte_mode : bool;    (* scale the drop probability by packet size;
                          packet mode (false) drops independently of
                          length — the mode Claim 2 relies on *)
  mean_pktsize : int;  (* byte-mode reference size *)
  gentle : bool;       (* ramp drop prob from max_p to 1 over
                          [max_th, 2 max_th] instead of a hard drop wall
                          (the mode the paper's Linux kernel lacked) *)
}

let default_red ~bdp =
  (* The paper's ns-2 setup: min 1/4 BDP, max 5/4 BDP, packet mode. *)
  { min_th = 0.25 *. bdp; max_th = 1.25 *. bdp; max_p = 0.1; wq = 0.002;
    byte_mode = false; mean_pktsize = 1000; gentle = false }

type kind =
  | Drop_tail
  | Red of red_params

type t = {
  kind : kind;
  capacity : int;                    (* buffer length, packets *)
  mutable occupancy : int;           (* current queue length, packets *)
  mutable avg : float;               (* RED average queue length *)
  mutable count : int;               (* packets since last RED drop *)
  mutable idle_since : float option; (* start of the current idle period *)
  mutable drops : int;
  mutable enqueues : int;
  service_rate : float;              (* pkt/s, for RED idle compensation *)
}

let create ?(service_rate = 0.0) ~capacity kind =
  if capacity < 1 then
    invalid_arg "Queue_discipline.create: capacity must be >= 1";
  (match kind with
  | Drop_tail -> ()
  | Red p ->
      if not (0.0 <= p.min_th && p.min_th < p.max_th) then
        invalid_arg "Queue_discipline.create: need 0 <= min_th < max_th";
      if p.max_p <= 0.0 || p.max_p > 1.0 then
        invalid_arg "Queue_discipline.create: max_p not in (0,1]";
      if p.wq <= 0.0 || p.wq > 1.0 then
        invalid_arg "Queue_discipline.create: wq not in (0,1]");
  {
    kind;
    capacity;
    occupancy = 0;
    avg = 0.0;
    count = -1;
    idle_since = None;
    drops = 0;
    enqueues = 0;
    service_rate;
  }

let occupancy t = t.occupancy
let capacity t = t.capacity
let drops t = t.drops
let enqueues t = t.enqueues
let average_queue t = t.avg

(* Only RED consumes the uniform draw in [offer]; DropTail callers can
   skip generating one entirely (the link's RNG stream is private to
   it, so skipping draws there changes nothing observable). *)
let needs_random t = match t.kind with Drop_tail -> false | Red _ -> true

let update_avg t ~now =
  match t.kind with
  | Drop_tail -> ()
  | Red p ->
      (match t.idle_since with
      | Some t0 when t.service_rate > 0.0 ->
          (* ns-2 idle compensation: pretend m small packets departed. *)
          let m = (now -. t0) *. t.service_rate in
          let decay = (1.0 -. p.wq) ** max 0.0 m in
          t.avg <- t.avg *. decay;
          t.idle_since <- None
      | Some _ -> t.idle_since <- None
      | None -> ());
      t.avg <- ((1.0 -. p.wq) *. t.avg) +. (p.wq *. float_of_int t.occupancy)

(* Decide the fate of an arriving packet and update state when enqueued.
   [u] must be a fresh uniform (0,1) draw for RED randomisation;
   [bytes] only matters for byte-mode RED. *)
let offer ?(bytes = 1000) t ~now ~u =
  match t.kind with
  | Drop_tail ->
      if t.occupancy >= t.capacity then begin
        t.drops <- t.drops + 1;
        if Atomic.get Tm.on then Tm.Counter.incr m_drops;
        Drop
      end
      else begin
        t.occupancy <- t.occupancy + 1;
        t.enqueues <- t.enqueues + 1;
        if Atomic.get Tm.on then begin
          Tm.Counter.incr m_enqueues;
          Tm.Gauge.set m_occupancy (float_of_int t.occupancy)
        end;
        Enqueue
      end
  | Red p ->
      update_avg t ~now;
      let hard_full = t.occupancy >= t.capacity in
      let forced = ref true in
      let verdict =
        if hard_full then Drop
        else if t.avg < p.min_th then Enqueue
        else if t.avg >= p.max_th && not p.gentle then Drop (* forced drop *)
        else if t.avg >= 2.0 *. p.max_th then Drop          (* gentle wall *)
        else begin
          forced := false;
          t.count <- t.count + 1;
          let pb =
            if t.avg < p.max_th then
              p.max_p *. (t.avg -. p.min_th) /. (p.max_th -. p.min_th)
            else
              (* gentle region: ramp from max_p to 1 over one max_th *)
              p.max_p
              +. ((1.0 -. p.max_p) *. (t.avg -. p.max_th) /. p.max_th)
          in
          let pb =
            if p.byte_mode then
              Float.min 1.0
                (pb *. float_of_int bytes /. float_of_int p.mean_pktsize)
            else pb
          in
          let pa =
            let d = 1.0 -. (float_of_int t.count *. pb) in
            if d <= 0.0 then 1.0 else pb /. d
          in
          if u < pa then Drop else Enqueue
        end
      in
      (match verdict with
      | Drop ->
          t.drops <- t.drops + 1;
          t.count <- 0;
          if Atomic.get Tm.on then begin
            Tm.Counter.incr m_drops;
            Tm.Counter.incr (if !forced then m_red_forced else m_red_early)
          end
      | Enqueue ->
          t.occupancy <- t.occupancy + 1;
          t.enqueues <- t.enqueues + 1;
          if Atomic.get Tm.on then begin
            Tm.Counter.incr m_enqueues;
            Tm.Gauge.set m_occupancy (float_of_int t.occupancy)
          end;
          if t.avg >= p.min_th then ()
          else t.count <- -1);
      verdict

(* Hybrid-path variant of [offer]: the drop decision sees the queue
   depth inflated by [extra] — the fluid background backlog in packets
   (Fluid.queue_pkts). A separate entry point rather than a parameter
   on [offer], so the packet-only path above stays byte-for-byte the
   pre-hybrid code: the structural half of the EBRC_HYBRID ablation. *)
let offer_fluid ?(bytes = 1000) t ~now ~u ~extra =
  match t.kind with
  | Drop_tail ->
      if float_of_int t.occupancy +. extra >= float_of_int t.capacity then begin
        t.drops <- t.drops + 1;
        if Atomic.get Tm.on then Tm.Counter.incr m_drops;
        Drop
      end
      else begin
        t.occupancy <- t.occupancy + 1;
        t.enqueues <- t.enqueues + 1;
        if Atomic.get Tm.on then begin
          Tm.Counter.incr m_enqueues;
          Tm.Gauge.set m_occupancy (float_of_int t.occupancy +. extra)
        end;
        Enqueue
      end
  | Red p ->
      (* RED's EWMA tracks the {e total} instantaneous queue — fluid
         backlog included — so the early-drop ramp reacts to congestion
         the background aggregate causes. *)
      (match t.idle_since with
      | Some t0 when t.service_rate > 0.0 ->
          let m = (now -. t0) *. t.service_rate in
          let decay = (1.0 -. p.wq) ** max 0.0 m in
          (* Packet-idle is not link-idle here: the fluid backlog
             persisted through the gap, so the average decays toward
             that floor rather than toward an empty queue. *)
          t.avg <- extra +. ((t.avg -. extra) *. decay);
          t.idle_since <- None
      | Some _ -> t.idle_since <- None
      | None -> ());
      t.avg <-
        ((1.0 -. p.wq) *. t.avg)
        +. (p.wq *. (float_of_int t.occupancy +. extra));
      let hard_full = float_of_int t.occupancy +. extra >= float_of_int t.capacity in
      let forced = ref true in
      let verdict =
        if hard_full then Drop
        else if t.avg < p.min_th then Enqueue
        else if t.avg >= p.max_th && not p.gentle then Drop
        else if t.avg >= 2.0 *. p.max_th then Drop
        else begin
          forced := false;
          t.count <- t.count + 1;
          let pb =
            if t.avg < p.max_th then
              p.max_p *. (t.avg -. p.min_th) /. (p.max_th -. p.min_th)
            else
              p.max_p
              +. ((1.0 -. p.max_p) *. (t.avg -. p.max_th) /. p.max_th)
          in
          let pb =
            if p.byte_mode then
              Float.min 1.0
                (pb *. float_of_int bytes /. float_of_int p.mean_pktsize)
            else pb
          in
          let pa =
            let d = 1.0 -. (float_of_int t.count *. pb) in
            if d <= 0.0 then 1.0 else pb /. d
          in
          if u < pa then Drop else Enqueue
        end
      in
      (match verdict with
      | Drop ->
          t.drops <- t.drops + 1;
          t.count <- 0;
          if Atomic.get Tm.on then begin
            Tm.Counter.incr m_drops;
            Tm.Counter.incr (if !forced then m_red_forced else m_red_early)
          end
      | Enqueue ->
          t.occupancy <- t.occupancy + 1;
          t.enqueues <- t.enqueues + 1;
          if Atomic.get Tm.on then begin
            Tm.Counter.incr m_enqueues;
            Tm.Gauge.set m_occupancy (float_of_int t.occupancy +. extra)
          end;
          if t.avg >= p.min_th then ()
          else t.count <- -1);
      verdict

(* A packet departed the queue (finished service). *)
let departure t ~now =
  if t.occupancy <= 0 then
    invalid_arg "Queue_discipline.departure: queue empty";
  t.occupancy <- t.occupancy - 1;
  if t.occupancy = 0 then t.idle_since <- Some now
