(* Deterministic fault injection: link flaps, delay spikes, reordering,
   duplication, feedback blackouts. Composes with any packet sink by
   wrapping it; every random choice comes from the injector's own Prng
   stream, so fault schedules are a pure function of the scenario seed.

   Design notes:
   - Episode windows (blackout/spike/reorder/duplicate) are pure
     arithmetic on simulated time: membership is a subtraction, an
     optional Float.rem, and a compare. No PRNG draws, no events.
   - Only the flap state machine schedules events, and only on the
     heap (schedule_unit): flap-perturbed deliveries, delay spikes and
     reorder holds break the FIFO proof that fast lanes require.
   - Inert injectors (EBRC_FAULTS=0 or an empty config) return the
     underlying sink physically unchanged from wrap_*, so a disabled
     run is bit-identical to one that never configured faults. *)

module Engine = Ebrc_sim.Engine
module Prng = Ebrc_rng.Prng
module Tm = Ebrc_telemetry.Telemetry

type flaps = {
  first_down : float;
  down_mean : float;
  up_mean : float;
  flap_jitter : float;
  park : bool;
}

type window = { start : float; length : float; period : float }

type config = {
  flaps : flaps option;
  blackouts : window list;
  spike : (window * float) option;
  reorder : (window * float * float) option;
  duplicate : (window * float) option;
}

let none =
  { flaps = None; blackouts = []; spike = None; reorder = None;
    duplicate = None }

(* Global ablation toggle, same shape as Loss_module.gap_skip /
   Engine.set_fast_lanes. *)
let enabled_flag = ref (Sys.getenv_opt "EBRC_FAULTS" <> Some "0")
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

type stats = {
  transitions : int;
  down_drops : int;
  parked : int;
  spiked : int;
  reordered : int;
  duplicated : int;
  blackout_drops : int;
}

type t = {
  engine : Engine.t;
  rng : Prng.t;
  cfg : config;
  live : bool;                 (* false = inert *)
  mutable link_up : bool;
  parked_q : (Packet.t * (Packet.t -> unit)) Queue.t;
  mutable s_transitions : int;
  mutable s_down_drops : int;
  mutable s_parked : int;
  mutable s_spiked : int;
  mutable s_reordered : int;
  mutable s_duplicated : int;
  mutable s_blackout_drops : int;
}

let m_transitions =
  Tm.Counter.make ~help:"fault: link up/down transitions" "fault.transitions"
let m_down_drops =
  Tm.Counter.make ~help:"fault: packets dropped while link down"
    "fault.down_drops"
let m_parked =
  Tm.Counter.make ~help:"fault: packets parked while link down" "fault.parked"
let m_spiked =
  Tm.Counter.make ~help:"fault: packets given a delay spike" "fault.spiked"
let m_reordered =
  Tm.Counter.make ~help:"fault: packets held back for reordering"
    "fault.reordered"
let m_duplicated =
  Tm.Counter.make ~help:"fault: duplicate copies injected" "fault.duplicated"
let m_blackout_drops =
  Tm.Counter.make ~help:"fault: feedback packets dropped in blackouts"
    "fault.blackout_drops"

let check_window what (w : window) =
  if not (Float.is_finite w.start) || w.start < 0.0 then
    invalid_arg (Printf.sprintf "Fault: %s window start must be >= 0" what);
  if not (Float.is_finite w.length) || w.length <= 0.0 then
    invalid_arg (Printf.sprintf "Fault: %s window length must be > 0" what);
  if Float.is_nan w.period || (w.period <> 0.0 && w.period < w.length) then
    invalid_arg
      (Printf.sprintf "Fault: %s window period must be 0 or >= length" what)

let check_prob what p =
  if not (Float.is_finite p) || p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Fault: %s probability must be in [0, 1]" what)

let validate (cfg : config) =
  (match cfg.flaps with
   | None -> ()
   | Some f ->
       if not (Float.is_finite f.first_down) || f.first_down < 0.0 then
         invalid_arg "Fault: flaps first_down must be >= 0";
       if not (Float.is_finite f.down_mean) || f.down_mean <= 0.0 then
         invalid_arg "Fault: flaps down_mean must be > 0";
       if not (Float.is_finite f.up_mean) || f.up_mean <= 0.0 then
         invalid_arg "Fault: flaps up_mean must be > 0";
       if not (Float.is_finite f.flap_jitter)
          || f.flap_jitter < 0.0 || f.flap_jitter >= 1.0 then
         invalid_arg "Fault: flap_jitter must be in [0, 1)");
  List.iter (check_window "blackout") cfg.blackouts;
  (match cfg.spike with
   | None -> ()
   | Some (w, d) ->
       check_window "spike" w;
       if not (Float.is_finite d) || d <= 0.0 then
         invalid_arg "Fault: spike extra delay must be > 0");
  (match cfg.reorder with
   | None -> ()
   | Some (w, p, hold) ->
       check_window "reorder" w;
       check_prob "reorder" p;
       if not (Float.is_finite hold) || hold <= 0.0 then
         invalid_arg "Fault: reorder hold must be > 0");
  (match cfg.duplicate with
   | None -> ()
   | Some (w, p) -> check_window "duplicate" w; check_prob "duplicate" p)

let is_empty (cfg : config) =
  cfg.flaps = None && cfg.blackouts = [] && cfg.spike = None
  && cfg.reorder = None && cfg.duplicate = None

let in_window (w : window) now =
  now >= w.start
  && (if w.period > 0.0 then Float.rem (now -. w.start) w.period < w.length
      else now -. w.start < w.length)

(* Uniform in [mean*(1-jitter), mean*(1+jitter)]; > 0 by validation. *)
let sample_duration t mean jitter =
  mean *. (1.0 -. jitter +. 2.0 *. jitter *. Prng.float_unit t.rng)

let rec go_down t (f : flaps) =
  t.link_up <- false;
  t.s_transitions <- t.s_transitions + 1;
  let now = Engine.now t.engine in
  if Tm.is_on () then begin
    Tm.Counter.incr m_transitions;
    Tm.event "fault.link_down" ~time:now
  end;
  let dt = sample_duration t f.down_mean f.flap_jitter in
  Engine.schedule_unit t.engine ~at:(now +. dt) (fun () -> go_up t f)

and go_up t (f : flaps) =
  t.link_up <- true;
  t.s_transitions <- t.s_transitions + 1;
  let now = Engine.now t.engine in
  let flushed = Queue.length t.parked_q in
  if Tm.is_on () then begin
    Tm.Counter.incr m_transitions;
    Tm.event "fault.link_up" ~time:now ~value:(float_of_int flushed)
  end;
  (* Re-offer parked packets in global FIFO order at the up instant. *)
  while not (Queue.is_empty t.parked_q) do
    let pkt, sink = Queue.pop t.parked_q in
    sink pkt
  done;
  let dt = sample_duration t f.up_mean f.flap_jitter in
  Engine.schedule_unit t.engine ~at:(now +. dt) (fun () -> go_down t f)

let create ~engine ~rng cfg =
  validate cfg;
  let live = enabled () && not (is_empty cfg) in
  let t =
    { engine; rng; cfg; live; link_up = true; parked_q = Queue.create ();
      s_transitions = 0; s_down_drops = 0; s_parked = 0; s_spiked = 0;
      s_reordered = 0; s_duplicated = 0; s_blackout_drops = 0 }
  in
  (if live then
     match cfg.flaps with
     | None -> ()
     | Some f ->
         let at = Float.max (Engine.now engine) f.first_down in
         Engine.schedule_unit engine ~at (fun () -> go_down t f));
  t

let active t = t.live

let copy_packet (pkt : Packet.t) =
  match pkt.kind with
  | Packet.Data ->
      (* Through the constructor so the copy participates in the
         freelist like any other data packet. *)
      Packet.data ~flow:pkt.flow ~seq:pkt.seq ~size:pkt.size
        ~sent_at:(Packet.sent_at pkt)
  | _ ->
      (* [Packet.copy], not [{ pkt with ... }]: a record copy would
         alias the timestamp cell with the original. *)
      Packet.copy pkt

(* Deliver one packet through the spike / reorder perturbations. Any
   extra delay goes through the heap: a perturbed stream is no longer
   FIFO, so it must not ride a lane. *)
let emit t sink now (pkt : Packet.t) =
  let extra =
    match t.cfg.spike with
    | Some (w, d) when in_window w now ->
        t.s_spiked <- t.s_spiked + 1;
        if Tm.is_on () then Tm.Counter.incr m_spiked;
        d
    | _ -> 0.0
  in
  let extra =
    match t.cfg.reorder with
    | Some (w, p, hold) when in_window w now ->
        if Prng.float_unit t.rng < p then begin
          t.s_reordered <- t.s_reordered + 1;
          if Tm.is_on () then Tm.Counter.incr m_reordered;
          extra +. hold
        end
        else extra
    | _ -> extra
  in
  if extra > 0.0 then
    Engine.schedule_unit t.engine ~at:(now +. extra) (fun () -> sink pkt)
  else sink pkt

let forward t sink (pkt : Packet.t) =
  let now = Engine.now t.engine in
  if not t.link_up then begin
    match t.cfg.flaps with
    | Some { park = true; _ } ->
        t.s_parked <- t.s_parked + 1;
        if Tm.is_on () then Tm.Counter.incr m_parked;
        Queue.add (pkt, sink) t.parked_q
    | _ ->
        t.s_down_drops <- t.s_down_drops + 1;
        if Tm.is_on () then begin
          Tm.Counter.incr m_down_drops;
          Tm.event "fault.down_drop" ~time:now ~flow:pkt.flow
        end;
        Packet.release pkt
  end
  else begin
    (match t.cfg.duplicate with
     | Some (w, p) when in_window w now && Prng.float_unit t.rng < p ->
         t.s_duplicated <- t.s_duplicated + 1;
         if Tm.is_on () then Tm.Counter.incr m_duplicated;
         emit t sink now (copy_packet pkt)
     | _ -> ());
    emit t sink now pkt
  end

let wrap_forward t sink =
  if not t.live
     || (t.cfg.flaps = None && t.cfg.spike = None && t.cfg.reorder = None
         && t.cfg.duplicate = None)
  then sink
  else fun pkt -> forward t sink pkt

let wrap_feedback t sink =
  if not t.live || t.cfg.blackouts = [] then sink
  else fun (pkt : Packet.t) ->
    let now = Engine.now t.engine in
    if List.exists (fun w -> in_window w now) t.cfg.blackouts then begin
      t.s_blackout_drops <- t.s_blackout_drops + 1;
      if Tm.is_on () then begin
        Tm.Counter.incr m_blackout_drops;
        Tm.event "fault.blackout_drop" ~time:now ~flow:pkt.flow
      end;
      Packet.release pkt
    end
    else sink pkt

let stats t =
  {
    transitions = t.s_transitions;
    down_drops = t.s_down_drops;
    parked = t.s_parked;
    spiked = t.s_spiked;
    reordered = t.s_reordered;
    duplicated = t.s_duplicated;
    blackout_drops = t.s_blackout_drops;
  }
