(* Simulated packets. Sizes are in bytes; sequence numbers are per-flow.

   [kind] distinguishes data from acknowledgments and from protocol
   feedback so that queues and measurement probes can treat them
   appropriately (ACKs travel on the reverse path and are never dropped
   by the forward bottleneck in our topologies).

   Data packets — the per-event bulk of a simulation — can be recycled
   through a per-domain freelist: [data] draws from it and [release]
   returns to it. Terminal consumers (the scenario demux callbacks and
   the link drop path) release; a packet must not be touched after
   release. Ack/Feedback packets carry fresh payload records anyway and
   are not pooled.

   Pooling is OFF by default (EBRC_POOL=1 or [set_pooling true] turns
   it on): measured on the scenario bench it halves minor-heap traffic
   but costs ~40% wall time, because reused records are tenured, so
   every store of a boxed value (the [sent_at] float, young payloads)
   into them pays a write barrier and promotes a box the minor GC
   would otherwise collect for free. The freelist is kept for A/B
   measurement — bench/main.exe records both sides. *)

type kind =
  | Data
  | Ack of { acked : int; dup : bool }
  | Feedback of {
      p_estimate : float;        (* receiver's loss-event rate estimate *)
      recv_rate : float;         (* receiver's measured receive rate, pkt/s *)
      rtt_echo : float;          (* sender timestamp being echoed *)
      hold : float;              (* time the echo spent held at the
                                    receiver before this report *)
    }

type t = {
  mutable flow : int;            (* flow identifier *)
  mutable seq : int;             (* per-flow sequence number *)
  mutable size : int;            (* bytes *)
  mutable kind : kind;
  mutable sent_at : float;       (* origination time (for RTT samples) *)
}

let dummy = { flow = -1; seq = -1; size = 1; kind = Data; sent_at = 0.0 }

type pool = { mutable free : t array; mutable free_size : int }

let pool_key : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { free = Array.make 256 dummy; free_size = 0 })

let pooling = ref (Sys.getenv_opt "EBRC_POOL" = Some "1")
let set_pooling b = pooling := b

let data ~flow ~seq ~size ~sent_at =
  if size <= 0 then invalid_arg "Packet.data: size must be positive";
  if not !pooling then { flow; seq; size; kind = Data; sent_at }
  else begin
    let p = Domain.DLS.get pool_key in
    if p.free_size = 0 then { flow; seq; size; kind = Data; sent_at }
    else begin
      let n = p.free_size - 1 in
      p.free_size <- n;
      let pkt = p.free.(n) in
      p.free.(n) <- dummy;
      pkt.flow <- flow;
      pkt.seq <- seq;
      pkt.size <- size;
      pkt.kind <- Data;
      pkt.sent_at <- sent_at;
      pkt
    end
  end

let release pkt =
  match pkt.kind with
  | Ack _ | Feedback _ -> ()
  | Data ->
      if !pooling && pkt != dummy then begin
        let p = Domain.DLS.get pool_key in
        if p.free_size = Array.length p.free then begin
          let bigger = Array.make (2 * p.free_size) dummy in
          Array.blit p.free 0 bigger 0 p.free_size;
          p.free <- bigger
        end;
        p.free.(p.free_size) <- pkt;
        p.free_size <- p.free_size + 1
      end

let ack ~flow ~seq ~acked ~dup ~sent_at =
  { flow; seq; size = 40; kind = Ack { acked; dup }; sent_at }

let feedback ~flow ~seq ~p_estimate ~recv_rate ~rtt_echo ~hold ~sent_at =
  {
    flow;
    seq;
    size = 40;
    kind = Feedback { p_estimate; recv_rate; rtt_echo; hold };
    sent_at;
  }

let is_data t = match t.kind with Data -> true | Ack _ | Feedback _ -> false

let bits t = 8 * t.size
