(* Simulated packets. Sizes are in bytes; sequence numbers are per-flow.

   [kind] distinguishes data from acknowledgments and from protocol
   feedback so that queues and measurement probes can treat them
   appropriately (ACKs travel on the reverse path and are never dropped
   by the forward bottleneck in our topologies).

   Float storage: [sent_at] lives in a one-cell flat float array
   rather than a mutable record field. In a mixed int/float record the
   float field is a boxed pointer, so every store allocates a fresh box
   and (for tenured records) pays a write barrier; a flat float-array
   cell is unboxed, so stores are plain memory writes. With that change a
   recycled packet's refill — flow/seq/size ints, the constant [Data]
   constructor, the sent_at cell — touches no GC machinery at all,
   which is what makes the freelist below worth having.

   Data packets — the per-event bulk of a simulation — can be recycled
   through a per-domain freelist: [data] draws from it and [release]
   returns to it. Terminal consumers (the scenario demux callbacks and
   the link drop path) release; a packet must not be touched after
   release. Ack/Feedback packets carry fresh payload records anyway and
   are not pooled. *)

type kind =
  | Data
  | Ack of { acked : int; dup : bool }
  | Feedback of {
      p_estimate : float;        (* receiver's loss-event rate estimate *)
      recv_rate : float;         (* receiver's measured receive rate, pkt/s *)
      rtt_echo : float;          (* sender timestamp being echoed *)
      hold : float;              (* time the echo spent held at the
                                    receiver before this report *)
    }

type t = {
  mutable flow : int;            (* flow identifier *)
  mutable seq : int;             (* per-flow sequence number *)
  mutable size : int;            (* bytes *)
  mutable kind : kind;
  f : float array;               (* [0] = origination time (RTT samples) *)
}

let sent_at t = Array.unsafe_get t.f 0
let set_sent_at t v = Array.unsafe_set t.f 0 v

(* [ [| sent_at |] ] is an inline minor-heap allocation;
   [Float.Array.create] would be a C call per packet. *)
let make ~flow ~seq ~size ~kind ~sent_at =
  { flow; seq; size; kind; f = [| sent_at |] }

let dummy = make ~flow:(-1) ~seq:(-1) ~size:1 ~kind:Data ~sent_at:0.0

let copy pkt =
  { flow = pkt.flow; seq = pkt.seq; size = pkt.size; kind = pkt.kind;
    f = [| Array.unsafe_get pkt.f 0 |] }

type pool = { mutable free : t array; mutable free_size : int }

let pool_key : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { free = Array.make 256 dummy; free_size = 0 })

let pooling = ref (Sys.getenv_opt "EBRC_POOL" = Some "1")
let set_pooling b = pooling := b

let data ~flow ~seq ~size ~sent_at =
  if size <= 0 then invalid_arg "Packet.data: size must be positive";
  if not !pooling then make ~flow ~seq ~size ~kind:Data ~sent_at
  else begin
    let p = Domain.DLS.get pool_key in
    if p.free_size = 0 then make ~flow ~seq ~size ~kind:Data ~sent_at
    else begin
      let n = p.free_size - 1 in
      p.free_size <- n;
      let pkt = p.free.(n) in
      p.free.(n) <- dummy;
      (* Barrier-free refill: ints, a constant constructor, and an
         unboxed float cell. *)
      pkt.flow <- flow;
      pkt.seq <- seq;
      pkt.size <- size;
      pkt.kind <- Data;
      Array.unsafe_set pkt.f 0 sent_at;
      pkt
    end
  end

let release pkt =
  match pkt.kind with
  | Ack _ | Feedback _ -> ()
  | Data ->
      if !pooling && pkt != dummy then begin
        let p = Domain.DLS.get pool_key in
        if p.free_size = Array.length p.free then begin
          let bigger = Array.make (2 * p.free_size) dummy in
          Array.blit p.free 0 bigger 0 p.free_size;
          p.free <- bigger
        end;
        p.free.(p.free_size) <- pkt;
        p.free_size <- p.free_size + 1
      end

let ack ~flow ~seq ~acked ~dup ~sent_at =
  make ~flow ~seq ~size:40 ~kind:(Ack { acked; dup }) ~sent_at

let feedback ~flow ~seq ~p_estimate ~recv_rate ~rtt_echo ~hold ~sent_at =
  make ~flow ~seq ~size:40
    ~kind:(Feedback { p_estimate; recv_rate; rtt_echo; hold })
    ~sent_at

let is_data t = match t.kind with Data -> true | Ack _ | Feedback _ -> false

let bits t = 8 * t.size
