(** Non-queue loss modules: the Bernoulli dropper of the paper's Claim-2
    experiments, plus deterministic and bursty droppers for tests. *)

type t

val process : t -> Packet.t -> bool
(** [true] = forward, [false] = dropped. Updates the per-module
    counters and the [loss_module.offered] / [loss_module.drops]
    telemetry counters. *)

val stats : t -> int * int
(** (offered, dropped). *)

val bernoulli : Ebrc_rng.Prng.t -> p:float -> t
(** Each packet dropped independently with probability [p], regardless
    of its length (RED packet-mode, memoryless limit). Dispatches to
    {!bernoulli_gap} (default) or {!bernoulli_per_packet} depending on
    {!set_gap_skip}. *)

val bernoulli_per_packet : Ebrc_rng.Prng.t -> p:float -> t
(** The direct implementation: one uniform draw per packet. Kept as
    the ablation baseline for gap skipping. *)

val bernoulli_gap : Ebrc_rng.Prng.t -> p:float -> t
(** Gap-skip implementation: samples the Geometric(p) run of passed
    packets once per loss event and counts down — one RNG draw per
    loss event instead of per packet. Statistically equivalent to
    {!bernoulli_per_packet} (identical process in distribution), but
    consumes the RNG differently, so traces are not bit-identical. *)

val set_gap_skip : bool -> unit
(** A/B toggle for {!bernoulli} (default on; set [EBRC_GAP_SKIP=0] to
    disable). Affects modules created after the call. *)

val gap_skip_enabled : unit -> bool

val periodic : period:int -> t
(** Drops every [period]-th packet — deterministic tests. *)

val lossless : unit -> t

val bernoulli_bytes : Ebrc_rng.Prng.t -> p_ref:float -> ref_size:int -> t
(** Length-dependent dropper: drop probability
    p_ref · size/ref_size (capped) — RED byte mode, the ablation
    contrast breaking Claim 2's independence assumption. *)

val gilbert_elliott :
  Ebrc_rng.Prng.t ->
  p_good:float -> p_bad:float -> good_to_bad:float -> bad_to_good:float -> t
(** Two-state bursty dropper with per-packet state transitions. *)
