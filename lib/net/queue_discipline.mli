(** Bottleneck queue disciplines: DropTail and RED (Floyd/Jacobson, as
    configured in ns-2: EWMA average queue, linear drop between
    thresholds, non-gentle forced drop, count-based drop spacing,
    packet-mode decisions). *)

type decision = Enqueue | Drop

type red_params = {
  min_th : float;  (** packets *)
  max_th : float;  (** packets *)
  max_p : float;   (** drop probability at [max_th] *)
  wq : float;      (** EWMA weight (ns-2 default 0.002) *)
  byte_mode : bool;
      (** Scale the drop probability by packet size. Packet mode
          (false, the default) drops independently of length — the mode
          the paper's Claim-2 audio experiments rely on. *)
  mean_pktsize : int;  (** Byte-mode reference packet size. *)
  gentle : bool;
      (** RED "gentle" mode: drop probability ramps from [max_p] to 1
          over [max_th, 2·max_th] instead of a hard wall at [max_th].
          The paper's Linux testbed could not enable this; we provide
          it for the ablation. *)
}

val default_red : bdp:float -> red_params
(** The paper's ns-2 setup relative to the bandwidth-delay product:
    min_th = BDP/4, max_th = 5·BDP/4, max_p = 0.1, wq = 0.002. *)

type kind = Drop_tail | Red of red_params

type t

val create : ?service_rate:float -> capacity:int -> kind -> t
(** [service_rate] (pkt/s) enables RED's idle-time average decay. *)

val offer : ?bytes:int -> t -> now:float -> u:float -> decision
(** Decide the fate of an arriving packet; [u] must be a fresh uniform
    (0,1) draw when {!needs_random} is true (any value otherwise);
    [bytes] (default 1000) only matters for byte-mode RED. Updates
    occupancy and counters when enqueued. *)

val offer_fluid :
  ?bytes:int -> t -> now:float -> u:float -> extra:float -> decision
(** Hybrid-path variant of {!offer}: the drop decision (DropTail wall,
    RED average and hard-full check) sees the queue depth inflated by
    [extra] — the fluid background backlog in packets. Only the
    {!Link} hybrid path calls this; {!offer} itself is untouched, so a
    run without an attached fluid executes the exact pre-hybrid code. *)

val needs_random : t -> bool
(** Whether [offer] consumes its uniform draw (RED yes, DropTail no) —
    lets the caller skip one RNG draw per packet on DropTail paths. *)

val departure : t -> now:float -> unit
(** Record a packet finishing service. *)

val occupancy : t -> int
val capacity : t -> int
val drops : t -> int
val enqueues : t -> int
val average_queue : t -> float
(** RED's EWMA average (0 for DropTail). *)
