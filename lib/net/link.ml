(* A simplex link: a queue discipline in front of a fixed-rate server,
   followed by a propagation delay. Packets are delivered to the
   downstream [deliver] callback; drops are announced to [on_drop] (used
   by measurement probes, never by protocols — protocols learn about
   losses end-to-end).

   Allocation: the backlog and the in-flight (post-service, pre-delivery)
   packets live in growable rings, and the service-completion and
   delivery thunks are preallocated — the per-packet path allocates
   nothing. Delivery events are scheduled per packet (preserving exact
   event ordering), but share one thunk that pops the in-flight ring:
   sound because service completions are ordered and the propagation
   delay is constant, so deliveries are FIFO.

   That same FIFO proof lets both event streams ride Engine fast lanes
   (O(1) ring push/pop) instead of the binary heap: service completions
   are scheduled in nondecreasing time order (the server serializes
   them) and deliveries are completions shifted by the constant
   propagation delay. Fire order is bit-identical either way — lanes
   merge with the heap on the heap's own (time, seq) tickets. *)

module Engine = Ebrc_sim.Engine
module Tm = Ebrc_telemetry.Telemetry

let m_link_drops =
  Tm.Counter.make ~help:"packets dropped at link ingress" "link.drops"

let m_link_delivered =
  Tm.Counter.make ~help:"packets delivered downstream" "link.delivered"

(* Growable FIFO ring of packets. Capacity is always a power of two
   (64, doubled), so index wrap is a mask, not a division. *)
type ring = {
  mutable buf : Packet.t array;
  mutable head : int;
  mutable len : int;
}

let ring_create () = { buf = Array.make 64 Packet.dummy; head = 0; len = 0 }

let ring_push r pkt =
  let cap = Array.length r.buf in
  if r.len = cap then begin
    let bigger = Array.make (2 * cap) Packet.dummy in
    for i = 0 to r.len - 1 do
      bigger.(i) <- r.buf.((r.head + i) land (cap - 1))
    done;
    r.buf <- bigger;
    r.head <- 0
  end;
  let cap = Array.length r.buf in
  r.buf.((r.head + r.len) land (cap - 1)) <- pkt;
  r.len <- r.len + 1

let ring_pop r =
  if r.len = 0 then invalid_arg "Link: pop from empty ring";
  let pkt = r.buf.(r.head) in
  r.buf.(r.head) <- Packet.dummy;
  r.head <- (r.head + 1) land (Array.length r.buf - 1);
  r.len <- r.len - 1;
  pkt

type t = {
  engine : Engine.t;
  rate_bps : float;               (* bits per second *)
  delay : float;                  (* propagation delay, seconds *)
  queue : Queue_discipline.t;
  rng : Ebrc_rng.Prng.t;
  needs_u : bool;                 (* discipline consumes the uniform? *)
  svc_lane : Engine.lane;         (* FIFO service completions *)
  del_lane : Engine.lane;         (* FIFO deliveries *)
  mutable busy : bool;
  backlog : ring;                 (* packets admitted by the discipline *)
  in_flight : ring;               (* served, awaiting propagation *)
  mutable in_service : Packet.t;
  mutable service_done : unit -> unit;
  mutable deliver_head : unit -> unit;
  mutable deliver : Packet.t -> unit;
  mutable on_drop : Packet.t -> unit;
  mutable delivered : int;
  mutable bytes_delivered : int;
  mutable fluid : Fluid.t option;
      (* Hybrid coupling: when attached, foreground drops see the fluid
         backlog, service is scaled by the foreground share, and every
         arrival feeds the fluid's input-rate estimate. [None] (the
         default, and the only state when EBRC_HYBRID=0) leaves the
         packet path structurally untouched. *)
}

let transmission_time t pkt = float_of_int (Packet.bits pkt) /. t.rate_bps

let start_service t =
  if t.backlog.len = 0 then t.busy <- false
  else begin
    let pkt = ring_pop t.backlog in
    t.busy <- true;
    t.in_service <- pkt;
    let tx = transmission_time t pkt in
    let tx =
      match t.fluid with
      | None -> tx
      | Some fl ->
          (* The fluid holds part of the capacity: the foreground is
             served at the share the background leaves behind,
             evaluated at service start (piecewise-constant per
             packet, like the queue's own service model). *)
          Fluid.set_pkt_occupancy fl (Queue_discipline.occupancy t.queue);
          Fluid.sync fl ~now:t.engine.Engine.now;
          tx /. Fluid.fg_share fl
    in
    Engine.lane_push_after t.svc_lane ~delay:tx t.service_done
  end

let create ~engine ~rate_bps ~delay ~queue ~rng =
  if rate_bps <= 0.0 then invalid_arg "Link.create: rate must be positive";
  if delay < 0.0 then invalid_arg "Link.create: negative delay";
  let t =
    {
      engine;
      rate_bps;
      delay;
      queue;
      rng;
      needs_u = Queue_discipline.needs_random queue;
      svc_lane = Engine.lane engine;
      del_lane = Engine.lane engine;
      busy = false;
      backlog = ring_create ();
      in_flight = ring_create ();
      in_service = Packet.dummy;
      service_done = (fun () -> ());
      deliver_head = (fun () -> ());
      deliver = (fun _ -> ());
      on_drop = (fun _ -> ());
      delivered = 0;
      bytes_delivered = 0;
      fluid = None;
    }
  in
  t.deliver_head <- (fun () -> t.deliver (ring_pop t.in_flight));
  t.service_done <-
    (fun () ->
      Queue_discipline.departure t.queue ~now:(t.engine.Engine.now);
      let pkt = t.in_service in
      t.in_service <- Packet.dummy;
      t.delivered <- t.delivered + 1;
      t.bytes_delivered <- t.bytes_delivered + pkt.Packet.size;
      if Atomic.get Tm.on then Tm.Counter.incr m_link_delivered;
      ring_push t.in_flight pkt;
      Engine.lane_push_after t.del_lane ~delay:t.delay t.deliver_head;
      start_service t);
  t

let set_deliver t f = t.deliver <- f
let set_on_drop t f = t.on_drop <- f

let attach_fluid t fl = t.fluid <- Some fl
let fluid t = t.fluid

let drop_pkt t ~now pkt =
  if Atomic.get Tm.on then begin
    Tm.Counter.incr m_link_drops;
    (* The per-flow attribution the counters cannot carry. *)
    Tm.event "link.drop" ~time:now ~flow:pkt.Packet.flow
      ~value:(float_of_int pkt.Packet.seq)
  end;
  t.on_drop pkt;
  Packet.release pkt

let send t pkt =
  let now = t.engine.Engine.now in
  match t.fluid with
  | None -> (
      let u = if t.needs_u then Ebrc_rng.Prng.float_unit t.rng else 0.0 in
      match Queue_discipline.offer ~bytes:pkt.Packet.size t.queue ~now ~u with
      | Queue_discipline.Drop -> drop_pkt t ~now pkt
      | Queue_discipline.Enqueue ->
          ring_push t.backlog pkt;
          if not t.busy then start_service t)
  | Some fl -> (
      (* Hybrid ingress: bring the fluid up to date and let the drop
         decision see a queue inflated by the fluid backlog. Only
         {e admitted} packets feed the fluid's foreground-rate
         estimate — dropped packets consume no service, and counting
         them would let a foreground overshoot starve the fluid's
         drain term and wedge the queue at its cap. *)
      Fluid.set_pkt_occupancy fl (Queue_discipline.occupancy t.queue);
      Fluid.sync fl ~now;
      let u = if t.needs_u then Ebrc_rng.Prng.float_unit t.rng else 0.0 in
      match
        Queue_discipline.offer_fluid ~bytes:pkt.Packet.size t.queue ~now ~u
          ~extra:(Fluid.queue_pkts fl)
      with
      | Queue_discipline.Drop -> drop_pkt t ~now pkt
      | Queue_discipline.Enqueue ->
          Fluid.on_packet_arrival fl;
          ring_push t.backlog pkt;
          if not t.busy then start_service t)

let queue t = t.queue
let delivered t = t.delivered
let bytes_delivered t = t.bytes_delivered
let utilization t ~duration =
  if duration <= 0.0 then 0.0
  else 8.0 *. float_of_int t.bytes_delivered /. (t.rate_bps *. duration)
