(** Per-flow measurement probe: counts, loss events under the paper's
    definition (losses within one RTT aggregate into a single event),
    loss-event intervals in packets, RTT samples, and throughput. *)

type t

val create : flow:int -> rtt_hint:float -> t
(** [rtt_hint] is the loss-event aggregation window (seconds). *)

val flow : t -> int
val on_send : t -> unit
val on_receive : t -> now:float -> bytes:int -> unit
val on_loss : t -> now:float -> unit
val on_rtt_sample : t -> float -> unit

val sent : t -> int
val received : t -> int
val lost : t -> int
val loss_events : t -> int

val loss_event_intervals : t -> float array
(** Completed loss-event intervals, packets. *)

val interval_count : t -> int
(** Number of completed intervals, without materialising the array. *)

val loss_event_rate : t -> float
(** p = (#completed intervals) / (Σ packets in them); 0 before the first
    two loss events. *)

val mean_rtt : t -> float
val rtt_samples : t -> int
val throughput_pps : t -> float
val throughput_bps : t -> float
