(** Fluid background aggregate for the hybrid packet/fluid bottleneck.

    Collapses 10⁴–10⁶ background AIMD (TCP-like) flows into a
    two-dimensional ODE — mean per-flow window W and fluid backlog q —
    in the Misra–Gong–Towsley / Vardoyan–Hollot–Towsley style, solved
    incrementally between packet events with the resumable
    {!Ebrc_numerics.Ode.System} stepper. Coupling to the packet path:
    the queue discipline adds {!queue_pkts} to its occupancy when
    deciding foreground drops ({!Queue_discipline.offer_fluid}), the
    link scales foreground service by {!fg_share}
    ({!Link.attach_fluid}), and the fluid sees foreground arrivals
    through {!on_packet_arrival} as a piecewise-constant input rate.

    Every sync target is the sim time rounded down to a fixed
    resolution quantum — a pure function of event times, with no RNG —
    so hybrid runs are bit-reproducible. The component is globally
    gated ({!set_hybrid} / [EBRC_HYBRID=0]); when disabled nothing is
    attached and the packet path is structurally identical to a
    fluid-free build (the hybrid ablation). *)

val set_hybrid : bool -> unit
(** A/B toggle (default on; set [EBRC_HYBRID=0] to disable). Sampled
    when a scenario or bench decides whether to attach a fluid
    background. Flip only between simulations. *)

val enabled : unit -> bool

(** Drop profile the fluid integrates through — mirror of the packet
    queue's discipline. *)
type drop_profile =
  | Tail of { ramp : float }
      (** DropTail stand-in: p rises quadratically from 0 at
          [(1-ramp)·qmax] to 1 at [qmax] (a smooth wall the
          error-controlled stepper can integrate). *)
  | Ramp of { min_th : float; max_th : float; max_p : float }
      (** RED's linear early-drop ramp (instantaneous queue), with the
          non-gentle forced wall above [max_th]. *)

type config = {
  flows : int;           (** N, background flow count *)
  capacity_pps : float;  (** C, bottleneck capacity in packets/s *)
  base_rtt : float;      (** two-way propagation delay, seconds *)
  qmax : float;          (** shared buffer, packets *)
  profile : drop_profile;
  share_cap : float;     (** max capacity fraction the fluid may hold *)
  resolution : float;    (** sync quantum, seconds *)
  rate_tau : float;      (** foreground rate EWMA time constant, s *)
  w_min : float;         (** window floor, packets *)
  rtol : float;
  atol : float;
}

val default :
  ?profile:drop_profile -> ?share_cap:float -> ?resolution:float ->
  ?rate_tau:float -> flows:int -> capacity_pps:float -> base_rtt:float ->
  qmax:float -> unit -> config
(** Defaults: DropTail-style [Tail {ramp = 0.25}], share_cap 0.95,
    resolution 1 ms, rate_tau 100 ms. *)

type t

val create : ?t0:float -> config -> t
(** Fresh fluid at W = 1 packet (TCP initial window), empty backlog.
    Raises [Invalid_argument] on malformed configs. *)

val config : t -> config

val sync : t -> now:float -> unit
(** Advance the fluid to [now] rounded down to the resolution quantum
    (no-op within a quantum). Folds the foreground arrivals seen since
    the last sync into the rate EWMA first. *)

val on_packet_arrival : t -> unit
(** Count one foreground packet arrival (folded into the rate EWMA at
    the next {!sync}). *)

val set_pkt_occupancy : t -> int -> unit
(** Tell the fluid how many foreground packets are queued (read by the
    RTT/drop terms of the derivative until the next update). *)

val queue_pkts : t -> float
(** Current fluid backlog, packets (clamped to [0, share_cap·qmax]). *)

val window : t -> float
(** Current mean per-flow window, packets. *)

val fg_rate : t -> float
(** Current foreground arrival-rate estimate, pkt/s. *)

val rtt : t -> float
(** Load-dependent RTT: base_rtt + total queue / capacity. *)

val drop_prob : t -> float
(** Drop probability of the profile at the current total queue. *)

val util : t -> float
(** Instantaneous fraction of the bottleneck consumed by the fluid,
    capped at share_cap. *)

val fg_share : t -> float
(** Service share left to the foreground: [1 - util], floored at
    [1 - share_cap] so packet service times stay finite. *)

type stats = {
  advances : int;          (** sync calls that moved the fluid *)
  ode : Ebrc_numerics.Ode.stats;
  w : float;               (** final window *)
  q : float;               (** final fluid backlog *)
  a_fg : float;            (** final foreground rate estimate *)
  mean_util : float;       (** time-average fluid utilization *)
  mean_drop : float;       (** time-average drop probability *)
}

val stats : t -> stats

(** {2 Analytic equilibrium} *)

type equilibrium = {
  eq_p : float;      (** drop probability at the fixed point *)
  eq_w : float;      (** per-flow window, packets *)
  eq_q : float;      (** queue, packets *)
  eq_rtt : float;    (** round-trip time, seconds *)
  eq_rate : float;   (** per-flow throughput, pkt/s *)
}

val equilibrium : ?a_fg:float -> config -> equilibrium
(** Fixed point of the fluid at constant foreground rate [a_fg]
    (default 0): dW = 0 gives W* = √(2/p); dq = 0 gives
    N·W*/R·(1−p) = C − a_fg with q the drop profile's inverse at p.
    Solved by bisection (the demand side is strictly decreasing in p).
    This is the analytic many-sources limit the end-to-end test
    compares simulated loss-event rates against. *)
