(* Loss modules that are not queues: the Bernoulli dropper used by the
   paper's Claim-2 experiments (each packet dropped independently with a
   fixed probability, irrespective of its length — RED "packet mode"
   taken to its memoryless limit), and a deterministic periodic dropper
   used in tests.

   The Bernoulli dropper has two implementations. The per-packet path
   draws one uniform per packet; the gap-skip path exploits the
   memorylessness directly — the number of passed packets between
   consecutive drops is Geometric(p), so it samples that gap once per
   loss event and counts packets down. Same process in distribution
   (pinned by a chi-square test), ~1/p fewer RNG draws. *)

module Tm = Ebrc_telemetry.Telemetry

let m_offered =
  Tm.Counter.make ~help:"packets offered to loss modules"
    "loss_module.offered"

let m_drops =
  Tm.Counter.make ~help:"packets dropped by loss modules" "loss_module.drops"

type t = {
  mutable pass : Packet.t -> bool;   (* true = forward, false = drop *)
  mutable dropped : int;
  mutable offered : int;
}

let stats t = (t.offered, t.dropped)

let process t pkt =
  t.offered <- t.offered + 1;
  if Tm.is_on () then Tm.Counter.incr m_offered;
  if t.pass pkt then true
  else begin
    t.dropped <- t.dropped + 1;
    if Tm.is_on () then Tm.Counter.incr m_drops;
    false
  end

let check_p name p =
  if p < 0.0 || p >= 1.0 then
    invalid_arg ("Loss_module." ^ name ^ ": p must be in [0,1)")

let bernoulli_per_packet rng ~p =
  check_p "bernoulli" p;
  {
    pass = (fun _ -> not (Ebrc_rng.Dist.bernoulli rng ~p));
    dropped = 0;
    offered = 0;
  }

let bernoulli_gap rng ~p =
  check_p "bernoulli" p;
  if p = 0.0 then { pass = (fun _ -> true); dropped = 0; offered = 0 }
  else begin
    (* [remaining] = packets still to pass before the next drop; -1 =
       gap not yet sampled. Geometric(p) counts the Bernoulli failures
       before the first success, which is exactly the run of passed
       packets before a drop. *)
    let remaining = ref (-1) in
    {
      pass =
        (fun _ ->
          if !remaining < 0 then remaining := Ebrc_rng.Dist.geometric rng ~p;
          if !remaining = 0 then begin
            remaining := -1;
            false
          end
          else begin
            decr remaining;
            true
          end);
      dropped = 0;
      offered = 0;
    }
  end

(* A/B toggle in the style of [Engine.set_fast_lanes]: gap skipping is
   statistically (not bit-) equivalent to the per-packet draw — it
   consumes the RNG differently — so the per-packet path stays
   available as the ablation (EBRC_GAP_SKIP=0). *)
let gap_skip = ref (Sys.getenv_opt "EBRC_GAP_SKIP" <> Some "0")
let set_gap_skip b = gap_skip := b
let gap_skip_enabled () = !gap_skip

let bernoulli rng ~p =
  if !gap_skip then bernoulli_gap rng ~p else bernoulli_per_packet rng ~p

let periodic ~period =
  if period < 1 then invalid_arg "Loss_module.periodic: period must be >= 1";
  let n = ref 0 in
  {
    pass =
      (fun _ ->
        incr n;
        !n mod period <> 0);
    dropped = 0;
    offered = 0;
  }

let lossless () = { pass = (fun _ -> true); dropped = 0; offered = 0 }

(* Length-dependent Bernoulli dropper: per-packet drop probability
   proportional to the packet size (RED "byte mode"). This breaks the
   independence assumption behind Claim 2 — an adaptive audio source
   sending bigger packets gets dropped more — and is used as the
   ablation contrast to [bernoulli]. *)
let bernoulli_bytes rng ~p_ref ~ref_size =
  if p_ref < 0.0 || p_ref >= 1.0 then
    invalid_arg "Loss_module.bernoulli_bytes: p_ref must be in [0,1)";
  if ref_size <= 0 then
    invalid_arg "Loss_module.bernoulli_bytes: ref_size must be positive";
  {
    pass =
      (fun pkt ->
        let p =
          Float.min 0.999
            (p_ref *. float_of_int pkt.Packet.size /. float_of_int ref_size)
        in
        not (Ebrc_rng.Dist.bernoulli rng ~p));
    dropped = 0;
    offered = 0;
  }

(* Gilbert-Elliott two-state dropper: bursty losses for robustness tests.
   In the Bad state packets drop with probability p_bad; state
   transitions occur per packet. *)
let gilbert_elliott rng ~p_good ~p_bad ~good_to_bad ~bad_to_good =
  let check name v =
    if v < 0.0 || v > 1.0 then
      invalid_arg ("Loss_module.gilbert_elliott: " ^ name ^ " not in [0,1]")
  in
  check "p_good" p_good;
  check "p_bad" p_bad;
  check "good_to_bad" good_to_bad;
  check "bad_to_good" bad_to_good;
  let in_good = ref true in
  {
    pass =
      (fun _ ->
        let switch_p = if !in_good then good_to_bad else bad_to_good in
        if Ebrc_rng.Dist.bernoulli rng ~p:switch_p then
          in_good := not !in_good;
        let p = if !in_good then p_good else p_bad in
        not (Ebrc_rng.Dist.bernoulli rng ~p));
    dropped = 0;
    offered = 0;
  }
