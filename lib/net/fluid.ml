(* Fluid background aggregate for the hybrid packet/fluid bottleneck.

   The many-sources regime (10^4..10^6 background TCP flows through one
   bottleneck) is far beyond what the packet-level engine can simulate
   event by event; following the fluid-model line (Misra/Gong/Towsley;
   Vardoyan/Hollot/Towsley in PAPERS.md), the background aggregate is
   collapsed into a two-dimensional ODE

     dW/dt = 1/R(q)  -  p(q_tot) * W^2 / (2 R(q))       (AIMD window)
     dq/dt = N W / R(q) * (1 - p(q_tot))  -  (C - a_fg) (backlog)

   where W is the per-flow mean window (packets), q the fluid backlog
   (packets), N the flow count, C the bottleneck capacity (pkt/s),
   R(q) = base_rtt + q_tot / C the load-dependent round-trip time,
   a_fg the measured foreground packet arrival rate (pkt/s, an EWMA
   held piecewise-constant between syncs), and q_tot = q + (foreground
   packets queued). The drop profile p mirrors the queue discipline the
   packet path runs: a quadratic ramp over the top of the buffer for
   DropTail, the linear min_th/max_th/max_p ramp for RED.

   The system is integrated incrementally with the resumable
   Ode.System DOPRI5 stepper: each sync advances the fluid to the
   current sim time rounded down to a resolution quantum, so the
   advance schedule is a pure function of event times — no RNG is
   involved and hybrid runs are bit-reproducible. Coupling back to the
   packet path: the queue discipline adds the fluid backlog to its
   occupancy when deciding drops (Queue_discipline.offer_fluid), and
   the link scales foreground service capacity by the share the fluid
   is not using (Link.attach_fluid).

   Like the wheel/lanes/faults layers, the whole component sits behind
   a global toggle: with [EBRC_HYBRID=0] / [set_hybrid false] nothing
   is ever attached and the packet path is structurally identical to a
   fluid-free build. *)

module Tm = Ebrc_telemetry.Telemetry
module Ode = Ebrc_numerics.Ode

let m_advances =
  Tm.Counter.make ~help:"fluid background sync advances" "fluid.advances"

let m_steps =
  Tm.Counter.make ~help:"fluid ODE accepted steps" "fluid.steps"

let m_queue =
  Tm.Gauge.make ~help:"fluid background backlog (packets)" "fluid.queue"

(* Global A/B toggle (precedent: Fault.enabled, Engine.set_wheel).
   Sampled by the scenario/bench when deciding whether to attach a
   fluid background: with the toggle off nothing is created, so the
   disabled path is structurally the packet-only engine. *)
let enabled_flag = ref (Sys.getenv_opt "EBRC_HYBRID" <> Some "0")
let set_hybrid b = enabled_flag := b
let enabled () = !enabled_flag

type drop_profile =
  | Tail of { ramp : float }
      (* p rises quadratically from 0 at (1-ramp)*qmax to 1 at qmax:
         a smooth stand-in for DropTail's wall that the error-controlled
         stepper can integrate through. *)
  | Ramp of { min_th : float; max_th : float; max_p : float }
      (* RED's linear early-drop ramp on the instantaneous queue.
         Above max_th the packet queue forces every drop; here the
         forced wall is a continuous climb from max_p at max_th to 1
         at qmax — a discontinuous jump would put the ODE into a
         sliding mode the error-controlled stepper chatters on. *)

type config = {
  flows : int;           (* N, background flow count *)
  capacity_pps : float;  (* C, bottleneck capacity in packets/s *)
  base_rtt : float;      (* two-way propagation + fixed processing, s *)
  qmax : float;          (* shared buffer, packets *)
  profile : drop_profile;
  share_cap : float;     (* max capacity fraction the fluid may hold *)
  resolution : float;    (* sync quantum, s *)
  rate_tau : float;      (* foreground arrival-rate EWMA time const, s *)
  w_min : float;         (* window floor, packets *)
  rtol : float;
  atol : float;
}

let default ?profile ?(share_cap = 0.95) ?(resolution = 1e-3)
    ?(rate_tau = 0.1) ~flows ~capacity_pps ~base_rtt ~qmax () =
  let profile =
    match profile with Some p -> p | None -> Tail { ramp = 0.25 }
  in
  {
    flows;
    capacity_pps;
    base_rtt;
    qmax;
    profile;
    share_cap;
    resolution;
    rate_tau;
    w_min = 1e-2;
    rtol = 1e-5;
    atol = 1e-7;
  }

let validate cfg =
  if cfg.flows < 1 then invalid_arg "Fluid: flows must be >= 1";
  if not (cfg.capacity_pps > 0.0) then
    invalid_arg "Fluid: capacity must be positive";
  if not (cfg.base_rtt > 0.0) then
    invalid_arg "Fluid: base_rtt must be positive";
  if not (cfg.qmax > 0.0) then invalid_arg "Fluid: qmax must be positive";
  if not (cfg.share_cap > 0.0 && cfg.share_cap <= 1.0) then
    invalid_arg "Fluid: share_cap not in (0,1]";
  if not (cfg.resolution > 0.0) then
    invalid_arg "Fluid: resolution must be positive";
  if not (cfg.rate_tau > 0.0) then
    invalid_arg "Fluid: rate_tau must be positive";
  (match cfg.profile with
  | Tail { ramp } ->
      if not (ramp > 0.0 && ramp <= 1.0) then
        invalid_arg "Fluid: Tail ramp not in (0,1]"
  | Ramp { min_th; max_th; max_p } ->
      if not (0.0 <= min_th && min_th < max_th) then
        invalid_arg "Fluid: need 0 <= min_th < max_th";
      if not (max_p > 0.0 && max_p <= 1.0) then
        invalid_arg "Fluid: max_p not in (0,1]")

let drop_prob_at cfg qt =
  match cfg.profile with
  | Tail { ramp } ->
      let lo = (1.0 -. ramp) *. cfg.qmax in
      if qt <= lo then 0.0
      else
        let z = Float.min 1.0 ((qt -. lo) /. (ramp *. cfg.qmax)) in
        z *. z
  | Ramp { min_th; max_th; max_p } ->
      if qt <= min_th then 0.0
      else if qt < max_th then max_p *. (qt -. min_th) /. (max_th -. min_th)
      else if qt >= cfg.qmax || max_th >= cfg.qmax then 1.0
      else
        max_p
        +. ((1.0 -. max_p) *. (qt -. max_th) /. (cfg.qmax -. max_th))

type t = {
  cfg : config;
  sys : Ode.System.t;
  t0 : float;
  q_cap : float;            (* share_cap * qmax: fluid backlog ceiling *)
  inputs : floatarray;      (* [0] a_fg (pkt/s); [1] fg packets queued.
                               Read by the derivative closure; held
                               piecewise-constant between syncs. *)
  mutable synced_to : float;    (* last quantum boundary reached *)
  mutable arrivals : int;       (* fg arrivals since last sync *)
  mutable advances : int;
  mutable util_int : float;     (* integral of bg utilization over time *)
  mutable drop_int : float;     (* integral of p over time *)
  mutable steps_noted : int;    (* accepted steps already counted in
                                   telemetry (stats may be called twice) *)
}

let create ?(t0 = 0.0) cfg =
  validate cfg;
  let q_cap = cfg.share_cap *. cfg.qmax in
  let inputs = Float.Array.make 2 0.0 in
  let n = float_of_int cfg.flows in
  let f _t y dy =
    let w = Float.max cfg.w_min (Float.Array.unsafe_get y 0) in
    let q =
      Float.min q_cap (Float.max 0.0 (Float.Array.unsafe_get y 1))
    in
    let a_fg = Float.Array.unsafe_get inputs 0 in
    let qt = q +. Float.Array.unsafe_get inputs 1 in
    let r = cfg.base_rtt +. (qt /. cfg.capacity_pps) in
    let p = drop_prob_at cfg qt in
    let x = n *. w /. r in
    let dw = (1.0 /. r) -. (p *. w *. w /. (2.0 *. r)) in
    (* Background drains whatever capacity the foreground leaves. *)
    let svc =
      Float.max 0.0 (cfg.capacity_pps -. Float.min a_fg cfg.capacity_pps)
    in
    let dq_raw = (x *. (1.0 -. p)) -. svc in
    (* Reflect at the physical boundaries so the state cannot leave
       [0, q_cap] x [w_min, inf) between clamps. *)
    let dq =
      if q <= 0.0 && dq_raw < 0.0 then 0.0
      else if q >= q_cap && dq_raw > 0.0 then 0.0
      else dq_raw
    in
    let dw = if w <= cfg.w_min && dw < 0.0 then 0.0 else dw in
    Float.Array.unsafe_set dy 0 dw;
    Float.Array.unsafe_set dy 1 dq
  in
  let y0 = Float.Array.make 2 0.0 in
  Float.Array.set y0 0 1.0 (* initial window: one packet, TCP-style *);
  Float.Array.set y0 1 0.0;
  let sys =
    Ode.System.create ~rtol:cfg.rtol ~atol:cfg.atol ~f ~t0 ~y0 ()
  in
  {
    cfg;
    sys;
    t0;
    q_cap;
    inputs;
    synced_to = t0;
    arrivals = 0;
    advances = 0;
    util_int = 0.0;
    drop_int = 0.0;
    steps_noted = 0;
  }

let config t = t.cfg
let window t = Ode.System.value t.sys 0

let queue_pkts t =
  Float.min t.q_cap (Float.max 0.0 (Ode.System.value t.sys 1))

let fg_rate t = Float.Array.get t.inputs 0

let rtt t =
  t.cfg.base_rtt
  +. ((queue_pkts t +. Float.Array.get t.inputs 1) /. t.cfg.capacity_pps)

let drop_prob t =
  drop_prob_at t.cfg (queue_pkts t +. Float.Array.get t.inputs 1)

(* Instantaneous fraction of the bottleneck the background consumes:
   when backlogged it is work-conserving on the residual capacity,
   otherwise it uses its admitted arrival rate. Capped by share_cap so
   the foreground always retains a service floor. *)
let util t =
  let cfg = t.cfg in
  let q = queue_pkts t in
  let u =
    if q > 1e-9 then
      Float.max 0.0 (cfg.capacity_pps -. Float.min (fg_rate t) cfg.capacity_pps)
      /. cfg.capacity_pps
    else begin
      let w = Float.max cfg.w_min (window t) in
      let x = float_of_int cfg.flows *. w /. rtt t in
      x *. (1.0 -. drop_prob t) /. cfg.capacity_pps
    end
  in
  Float.min cfg.share_cap u

(* Foreground service share: what the fluid leaves behind, floored at
   (1 - share_cap) so packet service times stay finite. *)
let fg_share t = Float.max (1.0 -. t.cfg.share_cap) (1.0 -. util t)

let on_packet_arrival t = t.arrivals <- t.arrivals + 1

let set_pkt_occupancy t n =
  Float.Array.set t.inputs 1 (float_of_int n)

(* Advance the fluid to [now] rounded down to the resolution quantum.
   The target is a pure function of [now], and the EWMA update depends
   only on the arrival count and elapsed span — fully deterministic. *)
let sync t ~now =
  let cfg = t.cfg in
  let target = Float.floor (now /. cfg.resolution) *. cfg.resolution in
  if target > t.synced_to then begin
    let dt = target -. t.synced_to in
    let inst = float_of_int t.arrivals /. dt in
    let alpha = Float.min 1.0 (dt /. cfg.rate_tau) in
    let a_fg = Float.Array.get t.inputs 0 in
    Float.Array.set t.inputs 0 (a_fg +. (alpha *. (inst -. a_fg)));
    t.arrivals <- 0;
    (* Inputs changed: the cached FSAL slope is stale. *)
    Ode.System.invalidate t.sys;
    Ode.System.advance t.sys target;
    (* Clamp the state back into its physical range; [set] only
       invalidates when a bound was actually crossed. *)
    let w = Ode.System.value t.sys 0 in
    if w < cfg.w_min then Ode.System.set t.sys 0 cfg.w_min;
    let q = Ode.System.value t.sys 1 in
    if q < 0.0 then Ode.System.set t.sys 1 0.0
    else if q > t.q_cap then Ode.System.set t.sys 1 t.q_cap;
    t.util_int <- t.util_int +. (util t *. dt);
    t.drop_int <- t.drop_int +. (drop_prob t *. dt);
    t.advances <- t.advances + 1;
    t.synced_to <- target;
    if Atomic.get Tm.on then begin
      Tm.Counter.incr m_advances;
      Tm.Gauge.set m_queue (queue_pkts t)
    end
  end

type stats = {
  advances : int;
  ode : Ode.stats;
  w : float;
  q : float;
  a_fg : float;
  mean_util : float;
  mean_drop : float;
}

let stats t =
  let ode = Ode.System.stats t.sys in
  if Atomic.get Tm.on then begin
    Tm.Counter.add m_steps (ode.Ode.accepted - t.steps_noted);
    t.steps_noted <- ode.Ode.accepted
  end;
  let span = t.synced_to -. t.t0 in
  {
    advances = t.advances;
    ode;
    w = window t;
    q = queue_pkts t;
    a_fg = fg_rate t;
    mean_util = (if span > 0.0 then t.util_int /. span else 0.0);
    mean_drop = (if span > 0.0 then t.drop_int /. span else 0.0);
  }

(* ------------------------- equilibrium ----------------------------- *)

(* Fixed point of the fluid at constant foreground rate [a_fg]:
   dW = 0 gives W* = sqrt(2/p); dq = 0 (backlogged) gives
   N W*/R(q(p)) (1 - p) = C - a_fg, with q(p) the drop profile's
   inverse. The left side is strictly decreasing in p (window shrinks,
   survival shrinks, RTT grows), so the root is found by bisection.
   This is the analytic limit the Many_sources end-to-end test
   compares the simulated large-N loss-event rate against. *)

type equilibrium = {
  eq_p : float;      (* drop probability *)
  eq_w : float;      (* per-flow window, packets *)
  eq_q : float;      (* queue at the fixed point, packets *)
  eq_rtt : float;    (* round-trip time, s *)
  eq_rate : float;   (* per-flow throughput, pkt/s *)
}

let queue_at_drop cfg p =
  match cfg.profile with
  | Tail { ramp } ->
      let lo = (1.0 -. ramp) *. cfg.qmax in
      lo +. (ramp *. cfg.qmax *. sqrt (Float.min 1.0 p))
  | Ramp { min_th; max_th; max_p } ->
      if p <= max_p then min_th +. (p /. max_p *. (max_th -. min_th))
      else if max_th >= cfg.qmax then max_th
      else
        max_th +. ((p -. max_p) /. (1.0 -. max_p) *. (cfg.qmax -. max_th))

let equilibrium ?(a_fg = 0.0) cfg =
  validate cfg;
  let c_eff = Float.max 1e-9 (cfg.capacity_pps -. a_fg) in
  let n = float_of_int cfg.flows in
  let excess p =
    let q = queue_at_drop cfg p in
    let r = cfg.base_rtt +. (q /. cfg.capacity_pps) in
    (n *. sqrt (2.0 /. p) /. r *. (1.0 -. p)) -. c_eff
  in
  let lo = ref 1e-12 and hi = ref (1.0 -. 1e-12) in
  (* excess(lo) -> +inf; if even p ~ 1 leaves demand above capacity the
     fixed point sits at the wall. *)
  if excess !hi > 0.0 then lo := !hi
  else
    for _ = 1 to 200 do
      let mid = 0.5 *. (!lo +. !hi) in
      if excess mid > 0.0 then lo := mid else hi := mid
    done;
  let p = 0.5 *. (!lo +. !hi) in
  let q = queue_at_drop cfg p in
  let r = cfg.base_rtt +. (q /. cfg.capacity_pps) in
  let w = sqrt (2.0 /. p) in
  { eq_p = p; eq_w = w; eq_q = q; eq_rtt = r; eq_rate = w /. r }
