(* Live JSONL telemetry streaming. See stream.mli for the contract;
   the load-bearing choices here are (a) one mutex + flush per line so
   concurrent domains never tear records, (b) integer-only delta
   payloads so deltas telescope exactly, and (c) a canonicalising
   finalize pass so pool interleaving never shows in the bytes. *)

let esc = Export.json_escape
let num = Export.num

(* ------------------------------------------------------------------ *)
(* Global state.                                                       *)
(* ------------------------------------------------------------------ *)

let on = Atomic.make false
let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* All under [mutex] unless noted. *)
let chan : out_channel option ref = ref None
let path_v : string option ref = ref None
let sim_period_v = ref 0.0
let wall_period_v = ref 0.0

(* Wall-clock rate limiter for [wall_tick]: lock-free claim so pool
   workers skipping a tick never touch the mutex. *)
let last_wall = Atomic.make 0.0

let recent_cap = 64
let recent_ring = Array.make recent_cap ""
let recent_n = ref 0

(* [line] has no trailing newline. *)
let emit line =
  if Atomic.get on then
    locked (fun () ->
        (match !chan with
        | Some oc ->
            output_string oc line;
            output_char oc '\n';
            flush oc
        | None -> ());
        recent_ring.(!recent_n mod recent_cap) <- line;
        incr recent_n)

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                          *)
(* ------------------------------------------------------------------ *)

let active () = Atomic.get on
let sim_active () = Atomic.get on && !sim_period_v > 0.0
let sim_period () = !sim_period_v
let path () = !path_v

let close_chan () =
  match !chan with
  | Some oc ->
      (try flush oc with Sys_error _ -> ());
      (try close_out oc with Sys_error _ -> ());
      chan := None
  | None -> ()

let disable () =
  Atomic.set on false;
  locked close_chan

let enable ~path:p ~period_sim ~period_wall =
  if not (Float.is_finite period_sim) || period_sim < 0.0 then
    invalid_arg "Stream.enable: period_sim must be finite and >= 0";
  if not (Float.is_finite period_wall) || period_wall < 0.0 then
    invalid_arg "Stream.enable: period_wall must be finite and >= 0";
  locked (fun () ->
      close_chan ();
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 p in
      chan := Some oc;
      path_v := Some p;
      sim_period_v := period_sim;
      wall_period_v := period_wall;
      Array.fill recent_ring 0 recent_cap "";
      recent_n := 0;
      Atomic.set last_wall 0.0;
      if out_channel_length oc = 0 then begin
        output_string oc
          "{\"type\":\"meta\",\"schema\":1,\"source\":\"ebrc_stream\"}\n";
        flush oc
      end);
  Atomic.set on true

let enable_from_env () =
  match Sys.getenv_opt "EBRC_STREAM" with
  | None | Some "" -> false
  | Some p ->
      let fenv name default =
        match Sys.getenv_opt name with
        | None | Some "" -> default
        | Some v -> ( match float_of_string_opt v with Some f -> f | None -> default)
      in
      enable ~path:p
        ~period_sim:(fenv "EBRC_STREAM_PERIOD" 1.0)
        ~period_wall:(fenv "EBRC_STREAM_WALL" 0.5);
      true

(* ------------------------------------------------------------------ *)
(* Non-run records.                                                    *)
(* ------------------------------------------------------------------ *)

let manifest ~cmd ?(attrs = []) () =
  if Atomic.get on then begin
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "{\"type\":\"manifest\",\"cmd\":\"%s\"" (esc cmd));
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf (Printf.sprintf ",\"%s\":%s" (esc k) v))
      attrs;
    Buffer.add_char buf '}';
    emit (Buffer.contents buf)
  end

let figure_event ~id ~phase ?tables () =
  if Atomic.get on then begin
    let buf = Buffer.create 96 in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"type\":\"figure\",\"id\":\"%s\",\"phase\":\"%s\",\"t_wall\":%s"
         (esc id) (esc phase)
         (num (Telemetry.wall_now ())));
    (match tables with
    | Some n -> Buffer.add_string buf (Printf.sprintf ",\"tables\":%d" n)
    | None -> ());
    Buffer.add_char buf '}';
    emit (Buffer.contents buf)
  end

(* Task lifecycle records for the sweep-service worker: same shape as
   figure records (id + phase + wall clock) so `ebrc status` folds
   them the same way, under their own type tag. *)
let task ~key ~phase ?(attrs = []) () =
  if Atomic.get on then begin
    let buf = Buffer.create 96 in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"type\":\"task\",\"id\":\"%s\",\"phase\":\"%s\",\"t_wall\":%s"
         (esc key) (esc phase)
         (num (Telemetry.wall_now ())));
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf (Printf.sprintf ",\"%s\":%s" (esc k) v))
      attrs;
    Buffer.add_char buf '}';
    emit (Buffer.contents buf)
  end

let progress_line now =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"type\":\"progress\",\"t_wall\":%s,\"counters\":{"
       (num now));
  let first = ref true in
  List.iter
    (fun (s : Telemetry.snapshot) ->
      if s.snap_kind = Telemetry.Counter && s.count > 0 then begin
        if not !first then Buffer.add_char buf ',';
        first := false;
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":%d" (esc s.snap_name) s.count)
      end)
    (Telemetry.snapshot ());
  Buffer.add_string buf "}}";
  Buffer.contents buf

let wall_tick () =
  if Atomic.get on && !wall_period_v > 0.0 then begin
    let now = Telemetry.wall_now () in
    let last = Atomic.get last_wall in
    if now -. last >= !wall_period_v && Atomic.compare_and_set last_wall last now
    then emit (progress_line now)
  end

(* ------------------------------------------------------------------ *)
(* Per-run delta sampling.                                             *)
(* ------------------------------------------------------------------ *)

type run = {
  key : string;
  mutable seq : int;
  mutable prev : (string * Telemetry.kind * int * float) list;
  mutable prev_events : int;
}

let run_start ~key =
  let r = { key; seq = 0; prev = Telemetry.local_totals (); prev_events = 0 } in
  if Atomic.get on then
    emit
      (Printf.sprintf "{\"type\":\"run_start\",\"run\":\"%s\",\"seq\":0}"
         (esc key));
  r

(* Diff of two name-sorted local-totals lists: (name, kind, d_count)
   for every metric whose sample/counter count advanced. Counts are
   monotonic between samples (counters and histogram/gauge sample
   counts only ever increment), so [cur] dominates [prev]. *)
let diff prev cur =
  let rec walk prev cur acc =
    match (prev, cur) with
    | _, [] -> List.rev acc
    | [], (n, k, c, _) :: cur' ->
        walk [] cur' (if c <> 0 then (n, k, c) :: acc else acc)
    | (np, _, cp, _) :: prev', ((nc, kc, cc, _) :: cur' as cur0) ->
        let o = compare np nc in
        if o = 0 then
          walk prev' cur'
            (if cc - cp <> 0 then (nc, kc, cc - cp) :: acc else acc)
        else if o < 0 then
          (* metric vanished from the local view: impossible while the
             registry is stable; skip defensively. *)
          walk prev' cur0 acc
        else walk prev cur' (if cc <> 0 then (nc, kc, cc) :: acc else acc)
  in
  walk prev cur []

let add_kind_section buf label kind deltas =
  let rows = List.filter (fun (_, k, _) -> k = kind) deltas in
  if rows <> [] then begin
    Buffer.add_string buf (Printf.sprintf ",\"%s\":{" label);
    List.iteri
      (fun i (n, _, d) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (esc n) d))
      rows;
    Buffer.add_char buf '}'
  end

let delta_record r ~typ ~t_sim ~events ~pending ~ok =
  let cur = Telemetry.local_totals () in
  let deltas = diff r.prev cur in
  r.prev <- cur;
  r.seq <- r.seq + 1;
  let d_events = events - r.prev_events in
  r.prev_events <- events;
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"type\":\"%s\",\"run\":\"%s\",\"seq\":%d,\"t_sim\":%s,\
        \"d_events\":%d,\"pending\":%d"
       typ (esc r.key) r.seq (num t_sim) d_events pending);
  (match ok with
  | Some b -> Buffer.add_string buf (Printf.sprintf ",\"ok\":%b" b)
  | None -> ());
  add_kind_section buf "counters" Telemetry.Counter deltas;
  add_kind_section buf "gauges" Telemetry.Gauge deltas;
  add_kind_section buf "hists" Telemetry.Histogram deltas;
  Buffer.add_char buf '}';
  emit (Buffer.contents buf)

let sample r ~t_sim ~events ~pending =
  if Atomic.get on then
    delta_record r ~typ:"delta" ~t_sim ~events ~pending ~ok:None

let run_end r ~t_sim ~events ~pending ~ok =
  if Atomic.get on then
    delta_record r ~typ:"run_end" ~t_sim ~events ~pending ~ok:(Some ok)

(* ------------------------------------------------------------------ *)
(* Reading back.                                                       *)
(* ------------------------------------------------------------------ *)

let recent () =
  locked (fun () ->
      let n = !recent_n in
      let k = min n recent_cap in
      List.init k (fun i -> recent_ring.((n - k + i) mod recent_cap)))

(* Tiny field scanners for our own writer's output (fields are rendered
   by [emit]ers above, so the shapes are known; this is not a JSON
   parser). *)
let field_string line name =
  let pat = Printf.sprintf "\"%s\":\"" name in
  let plen = String.length pat and llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then begin
      let b = Buffer.create 16 in
      let rec scan j =
        if j >= llen then None
        else
          match line.[j] with
          | '"' -> Some (Buffer.contents b)
          | '\\' when j + 1 < llen ->
              Buffer.add_char b line.[j + 1];
              scan (j + 2)
          | c ->
              Buffer.add_char b c;
              scan (j + 1)
      in
      scan (i + plen)
    end
    else find (i + 1)
  in
  find 0

let field_int line name =
  let pat = Printf.sprintf "\"%s\":" name in
  let plen = String.length pat and llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then begin
      let j = ref (i + plen) in
      let b = Buffer.create 8 in
      if !j < llen && line.[!j] = '-' then begin
        Buffer.add_char b '-';
        incr j
      end;
      while !j < llen && line.[!j] >= '0' && line.[!j] <= '9' do
        Buffer.add_char b line.[!j];
        incr j
      done;
      int_of_string_opt (Buffer.contents b)
    end
    else find (i + 1)
  in
  find 0

let record_rank line =
  match field_string line "type" with
  | Some "run_start" -> Some 0
  | Some "delta" -> Some 1
  | Some "run_end" -> Some 2
  | _ -> None

let finalize () =
  let p = locked (fun () -> !path_v) in
  match p with
  | None -> ()
  | Some p ->
      Atomic.set on false;
      locked (fun () ->
          close_chan ();
          path_v := None);
      let lines = ref [] in
      (try
         let ic = open_in p in
         Fun.protect
           ~finally:(fun () -> close_in ic)
           (fun () ->
             try
               while true do
                 lines := input_line ic :: !lines
               done
             with End_of_file -> ())
       with Sys_error _ -> ());
      let lines = List.rev !lines in
      let fixed, runs =
        List.partition (fun l -> record_rank l = None) lines
      in
      let key l =
        ( (match field_string l "run" with Some k -> k | None -> ""),
          (match field_int l "seq" with Some s -> s | None -> 0),
          match record_rank l with Some r -> r | None -> 3 )
      in
      let runs = List.stable_sort (fun a b -> compare (key a) (key b)) runs in
      let tmp = p ^ ".tmp" in
      let oc = open_out tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            (fixed @ runs);
          output_string oc "{\"type\":\"stream_end\"}\n");
      Sys.rename tmp p
