(** Flight recorder: on an abnormal end (engine budget exhaustion, a
    failed pool task, an uncaught scenario exception) dump what the
    telemetry layer was seeing — recent stream lines, the merged
    metric snapshot, spans, and the most recent structured events — to
    a self-contained `flight-<ts>-<pid>-<n>.jsonl` postmortem file.

    Off by default; when off, {!on_exn} is one atomic load. Dump
    failures are swallowed (a postmortem must never mask the original
    exception), and consecutive {!on_exn} calls carrying the {e same}
    exception value produce one dump — the engine, the figure runner
    and the CLI wrapper may all see one exception on its way up. *)

val set_enabled : bool -> unit
val active : unit -> bool

val set_dir : string -> unit
(** Directory for dump files (default ["."]). *)

val enable_from_env : unit -> bool
(** Honour [EBRC_FLIGHT]: unset/empty/["0"] = off; ["1"] = on, dumps
    in the current directory; any other value = on, value is the dump
    directory. Returns whether the recorder was enabled. *)

val on_exn : reason:string -> ?attrs:(string * string) list -> exn -> unit
(** Record a dump for [exn] if the recorder is active and this exact
    exception value was not already dumped. [reason] names the trigger
    site (e.g. ["engine.budget"], ["figure"], ["cli"]); [attrs] are
    extra string fields rendered into the dump's header line (the
    sweep worker records the task digest, attempt count and chaos seed
    so a failure is replayable offline). Never raises. *)

val last_dump : unit -> string option
(** Path of the most recent dump, if any. *)
