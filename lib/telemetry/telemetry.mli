(** Always-available, near-zero-overhead metrics and structured event
    tracing for the simulator, the protocols and the domain pool.

    The layer is compile-in but runtime-gated: every recording
    primitive first reads one global atomic flag ({!is_on}) and does
    nothing when telemetry is disabled (the default), so instrumented
    hot paths cost one load-and-branch. When enabled, recording is
    O(1) and lock-free per domain: each metric keeps one shard per
    recording domain (reached through domain-local storage, so pool
    workers never contend on a cache line), and shards are merged only
    on read.

    Determinism contract: counter values and histogram bucket/count
    totals are integer sums over shards, so they are independent of
    how work was partitioned across domains — a sweep recorded under
    [Pool] with 1 or N domains yields bit-identical totals (histogram
    [sum] is a float and is likewise partition-independent whenever
    the observed values add exactly, e.g. small integers; wall-clock
    observations are inherently run-dependent).

    Readers ({!snapshot}, {!events}, {!spans}, {!reset}) are intended
    for quiescent points — between pool jobs or after a run — where
    the pool's own synchronisation has published all worker writes. *)

val set_enabled : bool -> unit
(** Turn recording on or off (off at startup). Flip only at quiescent
    points; instrumentation sites see the change on their next
    record. *)

val is_on : unit -> bool

val on : bool Atomic.t
(** The enable gate behind {!is_on}. Hot paths may read it directly
    ([Atomic.get Telemetry.on]): [Atomic.get] is a compiler primitive,
    so the check compiles to one load-and-branch even without
    cross-module inlining, where calling {!is_on} would cost a
    function call per instrumentation site. Treat as read-only —
    writes go through {!set_enabled}. *)

val wall_now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); the clock used by spans
    and by the pool's chunk timings. *)

val reset : unit -> unit
(** Zero every metric shard and clear the event rings and span log.
    Registered metric handles stay valid. Call only when no other
    domain is recording. *)

(** {1 Metrics} *)

type kind = Counter | Gauge | Histogram

module Counter : sig
  type t

  val make : ?help:string -> string -> t
  (** Find-or-create the counter with this name. Raises
      [Invalid_argument] if the name is already registered with a
      different metric kind. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

module Gauge : sig
  (** A sampled level (queue depth, backlog): each [set] records one
      sample; reads expose the extremes, which are partition- and
      order-independent, unlike "last value". *)

  type t

  val make : ?help:string -> string -> t
  val set : t -> float -> unit
  val samples : t -> int

  val max_value : t -> float
  (** High-water mark over all samples; [nan] when none. *)

  val min_value : t -> float
end

module Histogram : sig
  (** Log2-bucketed histogram: value [v] lands in the bucket whose
      range is [[2^k, 2^(k+1))]; non-positive values land in the
      lowest bucket. *)

  type t

  val make : ?help:string -> string -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [[0, 1]] (clamped): the cumulative
      count over the merged log2 buckets crosses [q * count] in some
      bucket [[lo, 2*lo)]; the result interpolates linearly within it.
      Deterministic across domain partitions (bucket counts are integer
      sums); accurate to bucket resolution. [nan] when empty. *)
end

type snapshot = {
  snap_name : string;
  snap_kind : kind;
  snap_help : string;
  count : int;          (** counter value / number of samples *)
  sum : float;          (** histogram sum of observations; 0 otherwise *)
  min_v : float;        (** [nan] when no samples *)
  max_v : float;        (** [nan] when no samples *)
  per_domain : (int * float) list;
      (** Per recording-domain primary total (counter count, histogram
          sum, gauge sample count), keyed by domain id — the
          per-domain utilization view for pool timings. *)
  buckets : (float * int) array;
      (** Non-empty only for histograms: (bucket lower bound, count)
          for each non-zero bucket, in increasing bound order. *)
}

val snapshot : unit -> snapshot list
(** Merged view of every registered metric, sorted by name. *)

val quantile_of_buckets : (float * int) array -> float -> float
(** The interpolation behind {!Histogram.quantile}, usable directly on
    a {!snapshot}'s [buckets] array (so exporters can print percentiles
    without re-reading the registry). [nan] when the total count is
    zero. *)

val local_totals : unit -> (string * kind * int * float) list
(** The {e calling domain's} shard of every metric it has recorded to:
    [(name, kind, count, sum)] sorted by name ([sum] is 0 except for
    histograms). This is the stream sampler's read primitive: a domain
    executes one simulation at a time, so deltas of these totals across
    a run are exactly that run's contribution, independent of which
    pool domain the run was scheduled on — the property behind the
    [-j1]-vs[-jN] byte-identity of sim-time-cadenced streams. *)

(** {1 Structured events} *)

type event = {
  time : float;   (** caller-supplied clock, usually simulated seconds *)
  ev : string;    (** event kind, e.g. ["link.drop"] *)
  flow : int;     (** flow id, [-1] when not flow-scoped *)
  value : float;  (** primary numeric attribute *)
  attrs : (string * float) list;
}

val event :
  ?flow:int -> ?value:float -> ?attrs:(string * float) list ->
  string -> time:float -> unit
(** Append a structured event to the recording domain's ring buffer.
    When a ring is full the oldest event is overwritten (counted by
    {!events_dropped}), so memory stays bounded. No-op when
    disabled. *)

val events : unit -> event list
(** All retained events, merged across domains and sorted by
    (time, kind, flow, value). *)

val events_dropped : unit -> int

val set_event_capacity : int -> unit
(** Per-domain ring capacity (default 65536, minimum 16). Resizes and
    clears existing rings; call only when quiescent. *)

(** {1 Spans (wall-clock timers)} *)

type span = {
  span_name : string;
  cat : string;
  t0 : float;     (** wall-clock begin, seconds *)
  t1 : float;     (** wall-clock end, seconds *)
  dom : int;      (** recording domain id *)
}

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** Time [f] on the wall clock and record a span (also on exception).
    Calls [f] directly when disabled. Spans are coarse-grained
    (per-figure, per-report) and go through a small lock. *)

val spans : unit -> span list
(** Recorded spans in completion order. *)
