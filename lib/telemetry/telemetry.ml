(* Runtime-gated metrics and event tracing.

   Recording path: one atomic load (the enable gate); when enabled,
   the recording domain reaches its private shard of the metric
   through domain-local storage — no locks, no shared cache lines —
   and mutates plain int fields / an unboxed float array. Shards are
   registered with their metric under a mutex exactly once per
   (metric, domain) pair; readers take the same mutex only to walk
   the shard lists.

   Merged counter and bucket totals are integer sums over shards, so
   they do not depend on how the recording work was partitioned
   across domains — the property the -j1-vs-jN determinism tests
   pin. *)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let is_on () = Atomic.get on
let wall_now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Metrics.                                                            *)
(* ------------------------------------------------------------------ *)

type kind = Counter | Gauge | Histogram

(* Log2 buckets covering [2^-48, 2^48); frexp gives v = m * 2^e with
   m in [0.5, 1), so v lies in [2^(e-1), 2^e) and bucket (e-1) + offset
   has lower bound 2^(i - offset). *)
let n_buckets = 96
let bucket_offset = 48

let bucket_of v =
  if v <= 0.0 then 0
  else begin
    let _, e = Float.frexp v in
    let i = e - 1 + bucket_offset in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
  end

let bucket_lower i = Float.ldexp 1.0 (i - bucket_offset)

type shard = {
  dom : int;                 (* id of the domain that owns the shard *)
  mutable icount : int;      (* counter value / number of samples *)
  stats : float array;       (* [| sum; min; max |] — unboxed *)
  bkts : int array;          (* [||] unless the metric is a histogram *)
}

type metric = {
  id : int;
  mname : string;
  mkind : kind;
  mhelp : string;
  mutable shards : shard list;   (* guarded by [reg_mutex] *)
}

let reg_mutex = Mutex.create ()
let metrics : (string, metric) Hashtbl.t = Hashtbl.create 64
let next_id = ref 0

let locked f =
  Mutex.lock reg_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mutex) f

let register kind ?(help = "") name =
  locked (fun () ->
      match Hashtbl.find_opt metrics name with
      | Some m ->
          if m.mkind <> kind then
            invalid_arg
              (Printf.sprintf
                 "Telemetry: %S already registered with a different kind" name);
          m
      | None ->
          let m =
            { id = !next_id; mname = name; mkind = kind; mhelp = help;
              shards = [] }
          in
          incr next_id;
          Hashtbl.add metrics name m;
          m)

(* ------------------------------------------------------------------ *)
(* Domain-local state: one shard slot per metric id, one event ring.   *)
(* ------------------------------------------------------------------ *)

type event = {
  time : float;
  ev : string;
  flow : int;
  value : float;
  attrs : (string * float) list;
}

type ring = {
  rdom : int;
  mutable evs : event array;
  mutable start : int;       (* index of the oldest retained event *)
  mutable rlen : int;
  mutable rdropped : int;
}

type domain_state = {
  mutable slots : shard option array;  (* metric id -> this domain's shard *)
  mutable ring : ring option;
}

let dls : domain_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { slots = [||]; ring = None })

let new_shard m =
  let buckets =
    match m.mkind with Histogram -> Array.make n_buckets 0 | _ -> [||]
  in
  let s =
    { dom = (Domain.self () :> int); icount = 0;
      stats = [| 0.0; infinity; neg_infinity |]; bkts = buckets }
  in
  locked (fun () -> m.shards <- s :: m.shards);
  s

let local_shard m =
  let st = Domain.DLS.get dls in
  let slots = st.slots in
  if m.id < Array.length slots then
    match Array.unsafe_get slots m.id with
    | Some s -> s
    | None ->
        let s = new_shard m in
        slots.(m.id) <- Some s;
        s
  else begin
    let bigger = Array.make (max (m.id + 1) ((2 * Array.length slots) + 8)) None in
    Array.blit slots 0 bigger 0 (Array.length slots);
    st.slots <- bigger;
    let s = new_shard m in
    bigger.(m.id) <- Some s;
    s
  end

(* Quantile over merged log2 buckets: find the bucket where the
   cumulative count crosses [q * total] and interpolate linearly inside
   its [lo, 2*lo) range. Exact only up to bucket resolution (a factor
   of 2), which is the deal the log2 layout already made. *)
let quantile_of_buckets buckets q =
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 buckets in
  if total = 0 then nan
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let target = q *. float_of_int total in
    let last = Array.length buckets - 1 in
    let rec find i cum =
      let lo, c = buckets.(i) in
      let cum' = cum +. float_of_int c in
      if cum' >= target || i = last then begin
        let frac =
          if c = 0 then 0.0 else (target -. cum) /. float_of_int c
        in
        let frac =
          if frac < 0.0 then 0.0 else if frac > 1.0 then 1.0 else frac
        in
        lo *. (1.0 +. frac)
      end
      else find (i + 1) cum'
    in
    find 0 0.0
  end

module Counter = struct
  type t = metric

  let make ?help name = register Counter ?help name

  let add m n =
    if Atomic.get on then begin
      let s = local_shard m in
      s.icount <- s.icount + n
    end

  let incr m = add m 1

  let value m =
    locked (fun () -> List.fold_left (fun acc s -> acc + s.icount) 0 m.shards)

  let name m = m.mname
end

module Gauge = struct
  type t = metric

  let make ?help name = register Gauge ?help name

  let set m v =
    if Atomic.get on then begin
      let s = local_shard m in
      s.icount <- s.icount + 1;
      let st = s.stats in
      if v < st.(1) then st.(1) <- v;
      if v > st.(2) then st.(2) <- v
    end

  let samples m =
    locked (fun () -> List.fold_left (fun acc s -> acc + s.icount) 0 m.shards)

  let fold_stat i cmp m =
    locked (fun () ->
        List.fold_left
          (fun acc s -> if s.icount = 0 then acc else cmp acc s.stats.(i))
          nan m.shards)

  let max_value m =
    fold_stat 2 (fun a b -> if Float.is_nan a || b > a then b else a) m

  let min_value m =
    fold_stat 1 (fun a b -> if Float.is_nan a || b < a then b else a) m
end

module Histogram = struct
  type t = metric

  let make ?help name = register Histogram ?help name

  let observe m v =
    if Atomic.get on then begin
      let s = local_shard m in
      s.icount <- s.icount + 1;
      let st = s.stats in
      st.(0) <- st.(0) +. v;
      if v < st.(1) then st.(1) <- v;
      if v > st.(2) then st.(2) <- v;
      let b = bucket_of v in
      s.bkts.(b) <- s.bkts.(b) + 1
    end

  let count m =
    locked (fun () -> List.fold_left (fun acc s -> acc + s.icount) 0 m.shards)

  let sum m =
    locked (fun () ->
        List.fold_left (fun acc s -> acc +. s.stats.(0)) 0.0 m.shards)

  let quantile m q =
    let buckets =
      locked (fun () ->
          let merged = Array.make n_buckets 0 in
          List.iter
            (fun s ->
              Array.iteri (fun i c -> merged.(i) <- merged.(i) + c) s.bkts)
            m.shards;
          let out = ref [] in
          for i = n_buckets - 1 downto 0 do
            if merged.(i) > 0 then out := (bucket_lower i, merged.(i)) :: !out
          done;
          Array.of_list !out)
    in
    quantile_of_buckets buckets q
end

(* ------------------------------------------------------------------ *)
(* Snapshots.                                                          *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_name : string;
  snap_kind : kind;
  snap_help : string;
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  per_domain : (int * float) list;
  buckets : (float * int) array;
}

let snapshot_metric m =
  (* Shards are merged in a fixed (sorted-by-domain) order so the
     float reductions are reproducible for a given shard population. *)
  let shards =
    List.sort (fun a b -> compare a.dom b.dom) m.shards
  in
  let count = List.fold_left (fun acc s -> acc + s.icount) 0 shards in
  let sum = List.fold_left (fun acc s -> acc +. s.stats.(0)) 0.0 shards in
  let fold i cmp =
    List.fold_left
      (fun acc s -> if s.icount = 0 then acc else cmp acc s.stats.(i))
      nan shards
  in
  let min_v = fold 1 (fun a b -> if Float.is_nan a || b < a then b else a) in
  let max_v = fold 2 (fun a b -> if Float.is_nan a || b > a then b else a) in
  let per_domain =
    List.filter_map
      (fun s ->
        if s.icount = 0 then None
        else
          let primary =
            match m.mkind with
            | Histogram -> s.stats.(0)
            | Counter | Gauge -> float_of_int s.icount
          in
          Some (s.dom, primary))
      shards
  in
  let buckets =
    match m.mkind with
    | Histogram ->
        let merged = Array.make n_buckets 0 in
        List.iter
          (fun s ->
            Array.iteri (fun i c -> merged.(i) <- merged.(i) + c) s.bkts)
          shards;
        let out = ref [] in
        for i = n_buckets - 1 downto 0 do
          if merged.(i) > 0 then out := (bucket_lower i, merged.(i)) :: !out
        done;
        Array.of_list !out
    | Counter | Gauge -> [||]
  in
  {
    snap_name = m.mname;
    snap_kind = m.mkind;
    snap_help = m.mhelp;
    count;
    sum;
    min_v;
    max_v;
    per_domain;
    buckets;
  }

let snapshot () =
  locked (fun () ->
      Hashtbl.fold (fun _ m acc -> snapshot_metric m :: acc) metrics [])
  |> List.sort (fun a b -> compare a.snap_name b.snap_name)

(* The calling domain's shard values, for the stream sampler: a domain
   runs one scenario at a time, so deltas of these totals over a run
   are exactly that run's contribution — independent of which domain
   the pool scheduled it on. *)
let local_totals () =
  let slots = (Domain.DLS.get dls).slots in
  let n = Array.length slots in
  locked (fun () ->
      Hashtbl.fold
        (fun _ m acc ->
          if m.id < n then
            match slots.(m.id) with
            | Some s when s.icount > 0 -> (m.mname, m.mkind, s.icount, s.stats.(0)) :: acc
            | _ -> acc
          else acc)
        metrics [])
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Event rings.                                                        *)
(* ------------------------------------------------------------------ *)

let event_capacity = ref 65536
let rings : ring list ref = ref []   (* guarded by [reg_mutex] *)

let dummy_event = { time = 0.0; ev = ""; flow = -1; value = 0.0; attrs = [] }

let new_ring st =
  let r =
    { rdom = (Domain.self () :> int);
      evs = Array.make !event_capacity dummy_event;
      start = 0; rlen = 0; rdropped = 0 }
  in
  locked (fun () -> rings := r :: !rings);
  st.ring <- Some r;
  r

let event ?(flow = -1) ?(value = 0.0) ?(attrs = []) ev ~time =
  if Atomic.get on then begin
    let st = Domain.DLS.get dls in
    let r = match st.ring with Some r -> r | None -> new_ring st in
    let cap = Array.length r.evs in
    let e = { time; ev; flow; value; attrs } in
    if r.rlen = cap then begin
      (* Full: overwrite the oldest. *)
      r.evs.(r.start) <- e;
      r.start <- (r.start + 1) mod cap;
      r.rdropped <- r.rdropped + 1
    end
    else begin
      r.evs.((r.start + r.rlen) mod cap) <- e;
      r.rlen <- r.rlen + 1
    end
  end

let events () =
  let all =
    locked (fun () ->
        List.concat_map
          (fun r ->
            List.init r.rlen (fun i ->
                r.evs.((r.start + i) mod Array.length r.evs)))
          !rings)
  in
  List.sort compare all

let events_dropped () =
  locked (fun () -> List.fold_left (fun acc r -> acc + r.rdropped) 0 !rings)

let set_event_capacity n =
  let n = max 16 n in
  locked (fun () ->
      event_capacity := n;
      List.iter
        (fun r ->
          r.evs <- Array.make n dummy_event;
          r.start <- 0;
          r.rlen <- 0;
          r.rdropped <- 0)
        !rings)

(* ------------------------------------------------------------------ *)
(* Spans.                                                              *)
(* ------------------------------------------------------------------ *)

type span = {
  span_name : string;
  cat : string;
  t0 : float;
  t1 : float;
  dom : int;
}

let span_log : span list ref = ref []   (* guarded by [reg_mutex] *)

let with_span ?(cat = "span") name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = wall_now () in
    Fun.protect
      ~finally:(fun () ->
        let s =
          { span_name = name; cat; t0; t1 = wall_now ();
            dom = (Domain.self () :> int) }
        in
        locked (fun () -> span_log := s :: !span_log))
      f
  end

let spans () = locked (fun () -> List.rev !span_log)

(* ------------------------------------------------------------------ *)
(* Reset.                                                              *)
(* ------------------------------------------------------------------ *)

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ m ->
          List.iter
            (fun s ->
              s.icount <- 0;
              s.stats.(0) <- 0.0;
              s.stats.(1) <- infinity;
              s.stats.(2) <- neg_infinity;
              Array.fill s.bkts 0 (Array.length s.bkts) 0)
            m.shards)
        metrics;
      List.iter
        (fun r ->
          r.start <- 0;
          r.rlen <- 0;
          r.rdropped <- 0)
        !rings;
      span_log := [])
