(** Live telemetry streaming: append-only JSONL delta records written
    while a figure/report/bench invocation runs, so `ebrc status` (and
    anything else that can tail a file) can watch progress without
    touching the simulator.

    Two cadences coexist:

    - {e sim-time} sampling ({!sim_active}): the engine fires the
      sampler at fixed simulated-time boundaries, so the resulting
      [run_start]/[delta]/[run_end] records depend only on the
      simulation itself. Combined with {!finalize}'s canonical
      reordering, a stream recorded under a 1-domain and a 4-domain
      pool is byte-identical.
    - {e wall-clock} progress ({!wall_tick}): the pool pings the
      stream after each chunk; at most one [progress] record per
      {e period_wall} seconds is written, carrying global counter
      totals. These records are inherently wall-dependent and are
      excluded from the determinism contract (disable with
      [period_wall = 0] when byte-identity matters).

    Every record is one self-describing JSON object per line, appended
    under a single mutex with an immediate flush, so concurrent pool
    domains never interleave partial lines and a reader always sees
    whole records (the last line may be missing, never torn mid-write
    beyond the final line).

    Delta records carry {e integer} fields only (counter deltas, gauge
    sample-count deltas, histogram count deltas): integers telescope
    exactly, so summed deltas equal the final snapshot bit-for-bit and
    are independent of domain scheduling. Float sums are deliberately
    omitted — a domain-local float accumulator includes contributions
    from other runs scheduled on the same domain, which would break the
    [-j1]-vs-[-jN] contract. *)

val enable : path:string -> period_sim:float -> period_wall:float -> unit
(** Open [path] (append/create) and start streaming. [period_sim] is
    the simulated-seconds sampling period (0 disables sim-time
    sampling); [period_wall] the wall-clock progress period in seconds
    (0 disables progress records). Writes the stream's [meta] line if
    the file is empty. Implies nothing about {!Telemetry.set_enabled}:
    callers turn the registry on themselves. *)

val enable_from_env : unit -> bool
(** Honour [EBRC_STREAM] (stream file path; unset/empty = off),
    [EBRC_STREAM_PERIOD] (sim period, default 1.0) and
    [EBRC_STREAM_WALL] (wall period, default 0.5). Returns whether
    streaming was enabled. *)

val disable : unit -> unit
(** Stop streaming and close the file (no reordering; see
    {!finalize}). Safe when not enabled. *)

val active : unit -> bool

val sim_active : unit -> bool
(** Streaming is on {e and} sim-time sampling is wanted — the test a
    scenario uses before attaching an engine sampler. *)

val sim_period : unit -> float

val path : unit -> string option

val manifest : cmd:string -> ?attrs:(string * string) list -> unit -> unit
(** Append a [manifest] record describing the invocation ([attrs] are
    pre-rendered JSON values keyed by field name). *)

val figure_event : id:string -> phase:string -> ?tables:int -> unit -> unit
(** Append a [figure] lifecycle record; [phase] is ["start"], ["done"]
    or ["failed"]. *)

val task : key:string -> phase:string -> ?attrs:(string * string) list ->
  unit -> unit
(** Append a [task] lifecycle record (the sweep-service worker's
    lease/done/failed transitions), keyed by the task's content
    digest. [attrs] are pre-rendered JSON values keyed by field
    name. *)

val wall_tick : unit -> unit
(** Rate-limited wall-clock progress probe (see module doc). Cheap
    when streaming is off (one atomic load). *)

(** {1 Per-run delta sampling} *)

type run
(** Mutable cursor for one simulation run on the calling domain:
    remembers the domain-local metric totals at the last sample so the
    next sample can emit just the diff. A domain executes one run at a
    time, which is what makes domain-local deltas equal that run's own
    contribution regardless of pool scheduling. *)

val run_start : key:string -> run
(** Start a run stream keyed by [key] (a config-derived identity,
    stable across schedules). Captures the domain-local baseline
    without emitting it — baselines depend on what ran earlier on this
    domain and must stay out of the file. *)

val sample : run -> t_sim:float -> events:int -> pending:int -> unit
(** Append a [delta] record at simulated time [t_sim]: integer metric
    deltas since the previous sample, plus the run's cumulative engine
    event count [events] (streamed as a delta) and current event-queue
    depth [pending]. *)

val run_end : run -> t_sim:float -> events:int -> pending:int -> ok:bool -> unit
(** Append the final [run_end] record (same delta payload plus
    [ok]). After this the summed deltas of the run equal its total
    contribution exactly. *)

(** {1 Reading back} *)

val recent : unit -> string list
(** The most recent stream lines (bounded ring, oldest first) — the
    flight recorder's view of "what was happening". *)

val finalize : unit -> unit
(** Close the stream and rewrite the file in canonical order:
    non-run records (meta/manifest/progress/figure) keep their
    original order, run records are stably sorted by
    (run key, seq, record rank), and a [stream_end] record is
    appended. The rewrite goes through a temp file + rename, so
    readers never observe a half-written file. Canonical order is what
    turns "same simulations, different pool interleaving" into
    byte-identical files. No-op when streaming was never enabled. *)
