(* Flight recorder. The dump reuses Export's line builders so the
   postmortem file speaks the same JSONL dialect as --telemetry-json,
   prefixed with the stream's recent lines (already self-describing
   records) for the "what was happening" context. *)

let enabled = Atomic.make false
let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* Under [mutex]. *)
let dir = ref "."
let last_exn : exn option ref = ref None
let last_path : string option ref = ref None
let dump_count = ref 0

let set_enabled b = Atomic.set enabled b
let active () = Atomic.get enabled
let set_dir d = locked (fun () -> dir := d)
let last_dump () = locked (fun () -> !last_path)

let enable_from_env () =
  match Sys.getenv_opt "EBRC_FLIGHT" with
  | None | Some "" | Some "0" -> false
  | Some "1" ->
      set_enabled true;
      true
  | Some d ->
      set_dir d;
      set_enabled true;
      true

let max_events = 512

let timestamp now =
  let tm = Unix.gmtime now in
  Printf.sprintf "%04d%02d%02dT%02d%02d%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* Called with [mutex] held. *)
let dump ~reason ~attrs exn =
  let now = Telemetry.wall_now () in
  incr dump_count;
  let name =
    Printf.sprintf "flight-%s-%d-%d.jsonl" (timestamp now) (Unix.getpid ())
      !dump_count
  in
  let path = Filename.concat !dir name in
  let buf = Buffer.create 65536 in
  let attr_fields =
    String.concat ""
      (List.map
         (fun (k, v) ->
           Printf.sprintf ",\"%s\":\"%s\"" (Export.json_escape k)
             (Export.json_escape v))
         attrs)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"type\":\"flight\",\"schema\":1,\"reason\":\"%s\",\"exn\":\"%s\",\
        \"t_wall\":%s,\"pid\":%d%s}\n"
       (Export.json_escape reason)
       (Export.json_escape (Printexc.to_string exn))
       (Export.num now) (Unix.getpid ()) attr_fields);
  List.iter
    (fun l ->
      if l <> "" then begin
        Buffer.add_string buf l;
        Buffer.add_char buf '\n'
      end)
    (Stream.recent ());
  List.iter (Export.metric_line buf) (Telemetry.snapshot ());
  List.iter (Export.span_line buf) (Telemetry.spans ());
  let events = Telemetry.events () in
  let n = List.length events in
  let events =
    if n <= max_events then events
    else List.filteri (fun i _ -> i >= n - max_events) events
  in
  List.iter (Export.event_line buf) events;
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf);
  Sys.rename tmp path;
  last_path := Some path;
  Printf.eprintf "[ebrc] flight recorder: wrote %s (%s)\n%!" path reason

let on_exn ~reason ?(attrs = []) exn =
  if Atomic.get enabled then
    locked (fun () ->
        let already =
          match !last_exn with Some e -> e == exn | None -> false
        in
        if not already then begin
          last_exn := Some exn;
          try dump ~reason ~attrs exn with _ -> ()
        end)
