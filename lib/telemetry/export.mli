(** Telemetry sinks: JSON-lines dump, Chrome [trace_event] file, and a
    human-readable summary.

    The JSONL dump is one self-describing object per line (a ["meta"]
    line, then one line per metric, span and event), so it streams
    into jq / pandas without a schema. The Chrome trace is the JSON
    object format loadable in chrome://tracing or ui.perfetto.dev:
    spans become complete ("X") slices on the wall-clock process
    (pid 1), structured events become instant ("i") marks on the
    simulated-time process (pid 2, simulated seconds rendered as
    trace seconds). *)

val write_jsonl : path:string -> unit -> unit

val write_chrome_trace : path:string -> unit -> unit

val summary : unit -> string
(** Pretty-printed table of every registered metric with non-zero
    activity (histograms include interpolated p50/p90/p99), plus span
    and event totals. *)

(** {1 JSON building blocks}

    Shared by the streaming and flight-recorder sinks so every
    observability file speaks the same dialect. *)

val json_escape : string -> string

val num : float -> string
(** Round-trippable double rendering ([%.17g], integral values
    trimmed); non-finite floats become [null]. *)

val metric_line : Buffer.t -> Telemetry.snapshot -> unit
(** Append one metric's JSONL line (newline included). *)

val span_line : Buffer.t -> Telemetry.span -> unit
val event_line : Buffer.t -> Telemetry.event -> unit
