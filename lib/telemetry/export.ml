(* Telemetry sinks. Hand-rolled JSON emission: the values are floats,
   ints and registered metric names, so escaping is the only subtlety
   (and NaN/infinity, which JSON lacks — emitted as null). *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let num f =
  if Float.is_finite f then
    (* %.17g round-trips doubles; trim the common integral case. *)
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f
  else "null"

let kind_name = function
  | Telemetry.Counter -> "counter"
  | Telemetry.Gauge -> "gauge"
  | Telemetry.Histogram -> "histogram"

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

(* ------------------------------------------------------------------ *)
(* JSONL.                                                              *)
(* ------------------------------------------------------------------ *)

let metric_line buf (s : Telemetry.snapshot) =
  Buffer.add_string buf
    (Printf.sprintf "{\"type\":%S,\"name\":\"%s\",\"count\":%d"
       (kind_name s.snap_kind) (json_escape s.snap_name) s.count);
  (match s.snap_kind with
  | Telemetry.Counter -> ()
  | Telemetry.Gauge | Telemetry.Histogram ->
      Buffer.add_string buf
        (Printf.sprintf ",\"min\":%s,\"max\":%s" (num s.min_v) (num s.max_v)));
  (match s.snap_kind with
  | Telemetry.Histogram ->
      Buffer.add_string buf (Printf.sprintf ",\"sum\":%s" (num s.sum));
      Buffer.add_string buf ",\"buckets\":[";
      Array.iteri
        (fun i (lo, c) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "[%s,%d]" (num lo) c))
        s.buckets;
      Buffer.add_char buf ']'
  | Telemetry.Counter | Telemetry.Gauge -> ());
  if s.per_domain <> [] then begin
    Buffer.add_string buf ",\"per_domain\":{";
    List.iteri
      (fun i (d, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%d\":%s" d (num v)))
      s.per_domain;
    Buffer.add_char buf '}'
  end;
  if s.snap_help <> "" then
    Buffer.add_string buf
      (Printf.sprintf ",\"help\":\"%s\"" (json_escape s.snap_help));
  Buffer.add_string buf "}\n"

let event_line buf (e : Telemetry.event) =
  Buffer.add_string buf
    (Printf.sprintf "{\"type\":\"event\",\"t\":%s,\"kind\":\"%s\"" (num e.time)
       (json_escape e.ev));
  if e.flow >= 0 then
    Buffer.add_string buf (Printf.sprintf ",\"flow\":%d" e.flow);
  Buffer.add_string buf (Printf.sprintf ",\"value\":%s" (num e.value));
  if e.attrs <> [] then begin
    Buffer.add_string buf ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":%s" (json_escape k) (num v)))
      e.attrs;
    Buffer.add_char buf '}'
  end;
  Buffer.add_string buf "}\n"

let span_line buf (s : Telemetry.span) =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"type\":\"span\",\"name\":\"%s\",\"cat\":\"%s\",\"begin_s\":%s,\
        \"dur_s\":%s,\"dom\":%d}\n"
       (json_escape s.span_name) (json_escape s.cat) (num s.t0)
       (num (s.t1 -. s.t0))
       s.dom)

let write_jsonl ~path () =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"type\":\"meta\",\"schema\":1,\"source\":\"ebrc_telemetry\",\
        \"events_dropped\":%d}\n"
       (Telemetry.events_dropped ()));
  List.iter (metric_line buf) (Telemetry.snapshot ());
  List.iter (span_line buf) (Telemetry.spans ());
  List.iter (event_line buf) (Telemetry.events ());
  with_out path (fun oc -> Buffer.output_buffer oc buf)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event format.                                          *)
(* ------------------------------------------------------------------ *)

let write_chrome_trace ~path () =
  let spans = Telemetry.spans () in
  let events = Telemetry.events () in
  (* Spans carry absolute wall-clock epochs; rebase so the trace
     starts near ts 0 and stays readable. *)
  let epoch =
    List.fold_left (fun acc (s : Telemetry.span) -> Float.min acc s.t0)
      infinity spans
  in
  let buf = Buffer.create 65536 in
  let sep = ref "" in
  let add_record s =
    Buffer.add_string buf !sep;
    Buffer.add_string buf "\n    ";
    Buffer.add_string buf s;
    sep := ","
  in
  Buffer.add_string buf "{\"traceEvents\": [";
  add_record
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
     \"args\":{\"name\":\"wall clock (spans)\"}}";
  add_record
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
     \"args\":{\"name\":\"simulated time (events)\"}}";
  List.iter
    (fun (s : Telemetry.span) ->
      add_record
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\
            \"dur\":%s,\"pid\":1,\"tid\":%d}"
           (json_escape s.span_name) (json_escape s.cat)
           (num ((s.t0 -. epoch) *. 1e6))
           (num (Float.max 0.0 (s.t1 -. s.t0) *. 1e6))
           s.dom))
    spans;
  List.iter
    (fun (e : Telemetry.event) ->
      add_record
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"g\",\
            \"ts\":%s,\"pid\":2,\"tid\":%d,\"args\":{\"flow\":%d,\
            \"value\":%s}}"
           (json_escape e.ev)
           (num (e.time *. 1e6))
           (max 0 e.flow) e.flow (num e.value)))
    events;
  Buffer.add_string buf "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
  with_out path (fun oc -> Buffer.output_buffer oc buf)

(* ------------------------------------------------------------------ *)
(* Summary.                                                            *)
(* ------------------------------------------------------------------ *)

let summary () =
  let buf = Buffer.create 4096 in
  let snaps =
    List.filter (fun (s : Telemetry.snapshot) -> s.count > 0)
      (Telemetry.snapshot ())
  in
  Buffer.add_string buf "telemetry summary\n";
  let section kind title fmt =
    let rows = List.filter (fun s -> s.Telemetry.snap_kind = kind) snaps in
    if rows <> [] then begin
      Buffer.add_string buf (Printf.sprintf "  %s:\n" title);
      List.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf "    %s\n" (fmt s)))
        rows
    end
  in
  section Telemetry.Counter "counters" (fun s ->
      Printf.sprintf "%-36s %12d" s.snap_name s.count);
  section Telemetry.Gauge "gauges (min .. max over samples)" (fun s ->
      Printf.sprintf "%-36s %g .. %g  (n=%d)" s.snap_name s.min_v s.max_v
        s.count);
  section Telemetry.Histogram "histograms" (fun s ->
      let q p = Telemetry.quantile_of_buckets s.buckets p in
      Printf.sprintf
        "%-36s n=%-9d sum=%-12g mean=%-10g p50=%-10.3g p90=%-10.3g \
         p99=%-10.3g min=%-10g max=%g"
        s.snap_name s.count s.sum
        (s.sum /. float_of_int s.count)
        (q 0.5) (q 0.9) (q 0.99) s.min_v s.max_v);
  let spans = Telemetry.spans () in
  if spans <> [] then begin
    Buffer.add_string buf "  spans:\n";
    List.iter
      (fun (s : Telemetry.span) ->
        Buffer.add_string buf
          (Printf.sprintf "    %-36s %.3f s\n" s.span_name (s.t1 -. s.t0)))
      spans
  end;
  Buffer.add_string buf
    (Printf.sprintf "  events: %d retained, %d dropped\n"
       (List.length (Telemetry.events ()))
       (Telemetry.events_dropped ()));
  Buffer.contents buf
