(** Two-level hierarchical timing wheel for bounded-horizon events.

    The wheel owns events within a 16 s window of the cursor: level 0
    covers one 1/16 s span at 2^-16 s resolution, level 1 covers the
    remaining 255 spans at 1/16 s resolution, cascading one slot at a
    time into level 0 on demand. Push is O(1); minimum extraction is a
    bitmap scan plus one slot-list walk (a slot crowded past a small
    threshold is merge-sorted in place on first lookup and then drains
    at O(1) per pop), compared by exact (time, seq) so the dispatch
    order is the true global minimum — never a bucketed
    approximation. Events outside the window (far future, non-finite,
    or behind the cursor after a salvaged abort) are rejected by
    {!fits} and belong on the caller's overflow heap.

    Entries live in one growable arena of parallel arrays threaded into
    per-slot intrusive lists by [next]; a cascade relinks entries
    between levels without copying payloads, and a push into a fresh
    engine never reallocates per-slot storage.

    The wheel is generic in the cancellation-handle type ['h] so the
    engine can store its own handles without a dependency cycle.

    The record type is exposed [private] so the engine's run loop can
    read the cached minimum as direct field loads: without flambda, a
    cross-module call returning a [float] boxes its result, and the
    scheduler peeks the minimum several times per event — that box was
    measurable across a whole scenario. Call {!ensure} first; after it
    returns (wheel non-empty), [min_time]/[min_seq]/[min_idx] are valid
    until the next {!drop_min}.

    Telemetry: [wheel.pushed], [wheel.rotations] (level-1 slots
    cascaded), [wheel.overflowed] (events {!fits} rejected). *)

type 'h t = private {
  null : 'h;
  mutable times : float array;
  mutable seqs : int array;
  mutable fires : (unit -> unit) array;
  mutable handles : 'h array;
  mutable flags : Bytes.t;
      (** ['\001'] iff the entry's [handles] cell is live; the handle
          array is written — and must be read — only under this flag,
          which spares a write barrier on never-cancelled entries. *)
  mutable next : int array;
  mutable free : int;
  head0 : int array;
  head1 : int array;
  occ0 : int array;
  occ1 : int array;
  abs1 : int array;
  mutable cur1 : int;
  mutable count0 : int;
  mutable count1 : int;
  mutable floor_w : int;
  mutable min_ok : bool;
  mutable min_slot : int;
  mutable min_idx : int;
  mutable min_prev : int;
      (** list predecessor of [min_idx], -1 when it is the slot head;
          maintained by pushes so {!drop_min} unlinks in O(1) *)
  fmin : floatarray;
      (** [0] = minimum time, valid after {!ensure} until {!drop_min}.
          A one-cell floatarray, not a mutable float field: the cache
          is republished per pop, and a float field in a mixed record
          is a boxed pointer (allocation + write barrier per store)
          where the floatarray cell is a plain unboxed write. *)
  mutable min_seq : int;  (** valid after {!ensure}, until {!drop_min} *)
  mutable sorted_slot : int;
      (** level-0 slot whose list is in ascending (time, seq) order
          (-1 = none): crowded slots are merge-sorted on first minimum
          lookup so draining them is O(1) per pop — see the cost model
          above *)
  sort_runs : int array;
      (** merge-sort scratch ladder; all -1 between operations *)
}

val min_time : 'h t -> float
(** [Float.Array.unsafe_get t.fmin 0]; for out-of-hot-path readers. *)

val create : null:'h -> unit -> 'h t
(** [null] is the filler stored in empty arena cells (it must be a
    value the caller never dereferences through). An entry pushed with
    the [null] handle is treated as non-cancellable. *)

val count : 'h t -> int
val is_empty : 'h t -> bool

val fits : 'h t -> now:float -> at:float -> bool
(** Whether an event at absolute time [at] lands inside the wheel
    window. Call this {e before} drawing a tie-break ticket: a [false]
    answer means the event must go to the overflow heap, whose own push
    draws the ticket instead — that ordering is what keeps the merged
    dispatch order bit-identical to a pure-heap run. May advance the
    cursor when the wheel is idle (re-anchoring at [now]). *)

val push : 'h t -> time:float -> seq:int -> (unit -> unit) -> 'h -> unit
(** Insert an event. Precondition: {!fits} just returned [true] for
    this [time]. [seq] is the ticket drawn from the heap's shared
    sequence counter. *)

val try_push :
  'h t -> 'a Event_queue.t -> now:float -> at:float ->
  (unit -> unit) -> 'h -> bool
(** Fused {!fits} + ticket draw + {!push}: one cross-module call on the
    schedule fast path. On [true] the event is on the wheel with a
    ticket from [q]'s sequence counter; on [false] {e no ticket was
    drawn} — the caller must push to [q], whose own push draws the next
    counter value, preserving global ticket order. *)

val ensure : 'h t -> unit
(** Locate the (time, seq)-minimum pending entry and publish it in
    [min_time]/[min_seq]/[min_idx] (cached; a no-op when already
    located). The wheel must not be empty. Cancelled entries are still
    pending — like the heap, the wheel dispatches them for the caller
    to discard. *)

val min_handle : 'h t -> 'h
(** Handle of the minimum entry ([null] for non-cancellable entries),
    for the engine's cancellation check. Implies {!ensure}. *)

val min_cancellable : 'h t -> bool
(** Whether the minimum entry carries a live handle. Implies
    {!ensure}. *)

val drop_min : 'h t -> unit -> unit
(** Remove the minimum entry and return its fire thunk, invalidating
    the cached minimum. Implies {!ensure}; the wheel must not be
    empty. *)
