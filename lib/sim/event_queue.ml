(* Binary min-heap of timestamped events with stable FIFO tie-breaking.

   Since event core v3 this heap serves overflow/far-future duty: the
   engine routes bounded-horizon events onto a hierarchical timing
   wheel and only events past the wheel window (or with the wheel
   disabled) land here. The sequence counter below remains the single
   source of tie-break tickets for every scheduler — wheel, lanes, and
   heap — which is what keeps their merged dispatch order identical to
   a pure-heap run.

   Ties matter: a packet arrival and a timer expiring at the same instant
   must be processed in schedule order for the simulation to be
   deterministic across runs. We break ties with a monotonically
   increasing sequence number.

   Hot-path layout: the heap is three parallel arrays (a flat float
   array of times, an int array of sequence numbers, and the payloads).
   Sifting is hole-based — the moving element rides in registers while
   ancestors/descendants slide into the hole, one write per level
   instead of the three-array triple-store a swap costs, and the moving
   element is written exactly once at its final slot.

   Payloads are stored unboxed as [Obj.t] (no [option] wrapper): a push
   allocates nothing beyond amortized array growth. The [Obj] use is
   confined to this module and is safe because the array's static type
   is [Obj.t array] — never a float array — so the compiler always uses
   generic (boxed) array accesses; empty slots hold [hole] (the unit
   value) purely so popped payloads don't leak. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable payloads : Obj.t array;
  mutable size : int;
  mutable next_seq : int;
}

let hole = Obj.repr ()

let create () =
  {
    times = Array.make 64 0.0;
    seqs = Array.make 64 0;
    payloads = Array.make 64 hole;
    size = 0;
    next_seq = 0;
  }

let size t = t.size
let is_empty t = t.size = 0

let grow t =
  let n = Array.length t.times in
  let times = Array.make (2 * n) 0.0 in
  let seqs = Array.make (2 * n) 0 in
  let payloads = Array.make (2 * n) hole in
  Array.blit t.times 0 times 0 n;
  Array.blit t.seqs 0 seqs 0 n;
  Array.blit t.payloads 0 payloads 0 n;
  t.times <- times;
  t.seqs <- seqs;
  t.payloads <- payloads

(* Move the hole at [i] rootward until (time, seq) fits, then place the
   carried element. *)
let sift_up t i time seq payload =
  let i = ref i in
  let placed = ref false in
  while (not !placed) && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = t.times.(parent) in
    if time < pt || (time = pt && seq < t.seqs.(parent)) then begin
      t.times.(!i) <- pt;
      t.seqs.(!i) <- t.seqs.(parent);
      t.payloads.(!i) <- t.payloads.(parent);
      i := parent
    end
    else placed := true
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.payloads.(!i) <- payload

(* Move the hole at [i] leafward, pulling the smaller child up, until
   (time, seq) fits. *)
let sift_down t i time seq payload =
  let n = t.size in
  let i = ref i in
  let placed = ref false in
  while not !placed do
    let l = (2 * !i) + 1 in
    if l >= n then placed := true
    else begin
      let r = l + 1 in
      let c =
        if
          r < n
          && (t.times.(r) < t.times.(l)
             || (t.times.(r) = t.times.(l) && t.seqs.(r) < t.seqs.(l)))
        then r
        else l
      in
      let ct = t.times.(c) in
      if ct < time || (ct = time && t.seqs.(c) < seq) then begin
        t.times.(!i) <- ct;
        t.seqs.(!i) <- t.seqs.(c);
        t.payloads.(!i) <- t.payloads.(c);
        i := c
      end
      else placed := true
    end
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.payloads.(!i) <- payload

let push t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  if t.size = Array.length t.times then grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let i = t.size in
  t.size <- i + 1;
  sift_up t i time seq (Obj.repr payload)

(* External FIFO lanes (Engine fast lanes) draw tie-break tickets from
   the same counter as heap pushes, so a k-way merge by (time, seq)
   across heap + lanes reproduces the pure-heap pop order exactly. *)
let take_seq t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  seq

let peek_time t = if t.size = 0 then None else Some t.times.(0)

(* Allocation-free accessors for the hot loop: callers check
   [is_empty] first. *)
let top_time t =
  if t.size = 0 then invalid_arg "Event_queue.top_time: empty queue";
  t.times.(0)

let top_seq t =
  if t.size = 0 then invalid_arg "Event_queue.top_seq: empty queue";
  t.seqs.(0)

let pop_exn t =
  if t.size = 0 then invalid_arg "Event_queue.pop_exn: empty queue";
  let payload : 'a = Obj.obj t.payloads.(0) in
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then begin
    let lt = t.times.(n) and ls = t.seqs.(n) and lp = t.payloads.(n) in
    t.payloads.(n) <- hole;
    sift_down t 0 lt ls lp
  end
  else t.payloads.(0) <- hole;
  payload

let pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) in
    let payload : 'a = Obj.obj t.payloads.(0) in
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      let lt = t.times.(n) and ls = t.seqs.(n) and lp = t.payloads.(n) in
      t.payloads.(n) <- hole;
      sift_down t 0 lt ls lp
    end
    else t.payloads.(0) <- hole;
    Some (time, payload)
  end

let clear t =
  (* Only the live prefix can hold payload pointers — dropping just
     those is O(size), not O(capacity). Resetting the tie-break counter
     makes a cleared queue replay an identical push sequence with an
     identical pop order. *)
  Array.fill t.payloads 0 t.size hole;
  t.size <- 0;
  t.next_seq <- 0
