(* Two-level hierarchical timing wheel for bounded-horizon events.

   Geometry: level 0 has 4096 slots of width 2^-16 s (~15 us) and spans
   exactly one level-1 slot; level 1 has 256 slots of width 1/16 s, for
   a 16 s total horizon. Slot numbers are absolute — S0(T) = floor(T *
   65536), S1(T) = floor(T * 16) = S0(T) / 4096 — and both scale
   factors are powers of two, so the float multiply is exact and slot
   assignment never suffers rounding drift. Level 0 is deliberately
   finer than level 1's fan-out needs: at 10^5 pending events a
   cascaded level-1 slot still spreads to only a few entries per
   level-0 slot, keeping the per-pop walk short without sorting.

   [cur1] is the absolute level-1 slot currently covered by level 0:
   level 0 holds exactly the entries with S1(time) = cur1, level 1
   holds cur1 < S1(time) <= cur1 + 255. That window is narrower than
   the slot count, so each level-1 slot maps to at most one absolute
   slot number and no per-entry round counter is needed. Anything past
   the horizon — or behind the cursor, which can happen when a caller
   schedules after a Budget_exceeded salvage left the cursor ahead of
   [now] — is rejected by {!fits} and belongs on the overflow heap.

   Storage: one growable arena of parallel arrays (times / tie-break
   seqs / fire thunks / cancellation handles) threaded into per-slot
   intrusive singly-linked lists by the [next] array; free entries are
   chained through [next] as well. A push is a pool alloc plus a list
   prepend — no per-slot arrays to grow, blit, or reallocate per
   engine — and a cascade relinks entries between levels without
   copying a single payload. Handles are stored only for cancellable
   entries ([flags] gates the read), which spares the write barrier on
   the never-cancelled majority (lane traffic, unit timers).

   Exactness: entries within one level-0 slot differ by < 2^-12 s but
   are compared by full (time, seq) when the minimum is extracted, so
   dispatch order is the exact global minimum, not a bucketed
   approximation — the property the engine's bit-identity contract
   rests on. Equal-time entries can never span two slots (a slot owns a
   half-open time interval), so the first occupied slot always contains
   the global minimum.

   Cost model: push is O(1); extracting a minimum is a bitmap scan
   (monotonic within a window, amortized by [floor_w]) plus an O(k)
   walk of one slot list, where k is the slot population (single
   digits in the scenario benches, ~4 at the 100k-flow bench — against
   the ~17 cache-missing sift levels a 100k-entry binary heap pays per
   pop). A slot crowded past [sort_threshold] — same-time bursts,
   10^6-scale backlogs — is merge-sorted in place on first lookup and
   then drains at O(1) per pop. A level-1 slot is cascaded into level
   0 at most once per 1/16 s of simulated time. *)

module Tm = Ebrc_telemetry.Telemetry

let m_pushed =
  Tm.Counter.make ~help:"events accepted by the timing wheel" "wheel.pushed"

let m_rotations =
  Tm.Counter.make ~help:"level-1 slots cascaded into level 0"
    "wheel.rotations"

let m_overflowed =
  Tm.Counter.make
    ~help:"events outside the wheel window, routed to the overflow heap"
    "wheel.overflowed"

let n_slots = 256 (* level-1 slots *)
let slot_mask = n_slots - 1
let n0_slots = 4096 (* level-0 slots; 128 bitmap words *)
let slot_mask0 = n0_slots - 1
let l0_shift = 12 (* log2 (n0_slots): S1 = S0 asr l0_shift *)
let l0_scale = 65536.0 (* slots/second at level 0; 2^-16 s slot width *)
let l1_scale = 16.0 (* slots/second at level 1; 1/16 s slot width *)

let nop () = ()

type 'h t = {
  null : 'h;
  (* entry arena: parallel payload arrays plus intrusive [next] links;
     free entries are chained through [next] from [free]. *)
  mutable times : float array;
  mutable seqs : int array;
  mutable fires : (unit -> unit) array;
  mutable handles : 'h array;
  mutable flags : Bytes.t; (* '\001' iff the entry's handle is live *)
  mutable next : int array;
  mutable free : int;
  (* per-slot list heads (-1 = empty) and 256-bit occupancy bitmaps
     packed 32 slots per int word. *)
  head0 : int array;
  head1 : int array;
  occ0 : int array;
  occ1 : int array;
  abs1 : int array; (* absolute S1 per occupied level-1 slot *)
  mutable cur1 : int;
  mutable count0 : int;
  mutable count1 : int;
  (* Lowest level-0 bitmap word that can be occupied: pops sweep
     forward monotonically, so the per-pop scan starts here instead of
     at word 0; a push below the hint lowers it. *)
  mutable floor_w : int;
  (* Cached minimum — always a level-0 entry (level-0 times are
     strictly below every level-1 time, since S1 partitions time into
     half-open intervals). Invalidated by {!drop_min}, upgraded in
     place by a smaller push, recomputed lazily. The time lives in a
     one-cell floatarray: it is republished on every pop, and a
     mutable float field in this mixed record would be a boxed
     pointer, costing an allocation plus a write barrier per store. *)
  mutable min_ok : bool;
  mutable min_slot : int;
  mutable min_idx : int;
  mutable min_prev : int;
      (* predecessor of [min_idx] in its slot list, -1 if it is the
         head — lets {!drop_min} unlink without re-walking the list *)
  fmin : floatarray; (* [0] = cached minimum time *)
  mutable min_seq : int;
  (* Level-0 slot whose list is in ascending (time, seq) order, -1 if
     none. A crowded slot is merge-sorted the first time the minimum
     is located in it, so draining it costs O(1) per pop instead of a
     fresh O(k) walk each — without this, a slot holding k entries
     costs O(k^2) to drain, which dominated at 10^5 pending events
     (~60 entries per slot). Pushes that would break the order clear
     the mark; a new-minimum prepend and a push into an empty slot
     preserve it. *)
  mutable sorted_slot : int;
  sort_runs : int array;
      (* scratch for the carry-propagation merge sort: [sort_runs.(i)]
         holds a sorted run of 2^i entries, -1 when empty; always all
         -1 between calls *)
}

let min_time t = Float.Array.unsafe_get t.fmin 0

(* Chain [lo..hi-1] through [next] as free-list segments ending in the
   previous free head. *)
let chain_free next lo hi tail =
  for i = lo to hi - 2 do
    next.(i) <- i + 1
  done;
  next.(hi - 1) <- tail

let initial_cap = 256

let create ~null () =
  let next = Array.make initial_cap 0 in
  chain_free next 0 initial_cap (-1);
  {
    null;
    times = Array.make initial_cap 0.0;
    seqs = Array.make initial_cap 0;
    fires = Array.make initial_cap nop;
    handles = Array.make initial_cap null;
    flags = Bytes.make initial_cap '\000';
    next;
    free = 0;
    head0 = Array.make n0_slots (-1);
    head1 = Array.make n_slots (-1);
    occ0 = Array.make 128 0;
    occ1 = Array.make 8 0;
    abs1 = Array.make n_slots 0;
    cur1 = 0;
    count0 = 0;
    count1 = 0;
    floor_w = 0;
    min_ok = false;
    min_slot = 0;
    min_idx = 0;
    min_prev = -1;
    fmin = Float.Array.make 1 0.0;
    min_seq = 0;
    sorted_slot = -1;
    sort_runs = Array.make 48 (-1);
  }

let count t = t.count0 + t.count1
let is_empty t = t.count0 = 0 && t.count1 = 0

let grow t =
  let cap = Array.length t.times in
  let ncap = 2 * cap in
  let times = Array.make ncap 0.0 in
  let seqs = Array.make ncap 0 in
  let fires = Array.make ncap nop in
  let handles = Array.make ncap t.null in
  let flags = Bytes.make ncap '\000' in
  let next = Array.make ncap 0 in
  Array.blit t.times 0 times 0 cap;
  Array.blit t.seqs 0 seqs 0 cap;
  Array.blit t.fires 0 fires 0 cap;
  Array.blit t.handles 0 handles 0 cap;
  Bytes.blit t.flags 0 flags 0 cap;
  Array.blit t.next 0 next 0 cap;
  chain_free next cap ncap t.free;
  t.times <- times;
  t.seqs <- seqs;
  t.fires <- fires;
  t.handles <- handles;
  t.flags <- flags;
  t.next <- next;
  t.free <- cap

(* ------------------------- occupancy bitmap ------------------------- *)

(* 32 slots per word (OCaml ints carry 63 usable bits, so 64-per-word
   would lose the top slot of every word to shift overflow). *)

let occ_set occ i =
  let w = i lsr 5 in
  Array.unsafe_set occ w (Array.unsafe_get occ w lor (1 lsl (i land 31)))

let occ_clear occ i =
  let w = i lsr 5 in
  Array.unsafe_set occ w
    (Array.unsafe_get occ w land lnot (1 lsl (i land 31)))

(* Count trailing zeros of a 32-bit-confined word by de Bruijn multiply
   — no refs (a local [ref] is a minor-heap cell, and this runs once
   per extracted event). *)
let debruijn32 = 0x077CB531

let ctz_table =
  let tbl = Array.make 32 0 in
  for i = 0 to 31 do
    tbl.(((debruijn32 lsl i) land 0xFFFFFFFF) lsr 27) <- i
  done;
  tbl

let ctz w =
  Array.unsafe_get ctz_table ((((w land -w) * debruijn32) land 0xFFFFFFFF) lsr 27)

(* First occupied slot in linear order; -1 if none. Level 0 only ever
   holds S1 = cur1, and cur1 * 256 is 0 mod 256, so relative slot order
   equals absolute time order and the scan starts at slot 0. All scan
   helpers are top-level and tail-recursive: a [let rec] with captured
   variables is a closure allocation per call. *)
let rec occ_scan occ wi =
  if wi = 128 then -1
  else
    let w = Array.unsafe_get occ wi in
    if w <> 0 then (wi lsl 5) + ctz w else occ_scan occ (wi + 1)

(* First occupied slot in cyclic order from [start]; -1 if none. Used
   on level 1, where cyclic distance from (cur1 + 1) equals absolute
   S1 order. *)
let rec occ_scan_wrap occ wi low_mask k =
  if k > 8 then -1
  else
    let wj = (wi + k) land 7 in
    let w = if k = 8 then occ.(wj) land low_mask else occ.(wj) in
    if w <> 0 then (wj lsl 5) + ctz w else occ_scan_wrap occ wi low_mask (k + 1)

let first_occ_from occ start =
  let wi = start lsr 5 in
  let low_mask = (1 lsl (start land 31)) - 1 in
  let head = occ.(wi) land lnot low_mask in
  if head <> 0 then (wi lsl 5) + ctz head
  else occ_scan_wrap occ wi low_mask 1

(* ------------------------------ push ------------------------------- *)

let fits t ~now ~at =
  if not (Float.is_finite at) then begin
    if Atomic.get Tm.on then Tm.Counter.incr m_overflowed;
    false
  end
  else begin
    (* Re-anchor an idle wheel so long gaps with nothing on the wheel
       don't strand the cursor in the past. *)
    if t.count0 = 0 && t.count1 = 0 then begin
      let s1n = int_of_float (now *. l1_scale) in
      if s1n > t.cur1 then t.cur1 <- s1n
    end;
    let s1 = int_of_float (at *. l1_scale) in
    let ok = s1 >= t.cur1 && s1 - t.cur1 < n_slots in
    if (not ok) && Atomic.get Tm.on then Tm.Counter.incr m_overflowed;
    ok
  end

(* Write one entry into the arena and prepend it to its slot list.
   [s0] = floor(time * 4096); the caller has already established that
   S1(time) is inside the window. Stores into [times]/[seqs]/[next]
   are barrier-free (unboxed arrays); only the fire thunk — and the
   handle, when one exists — pays caml_modify. *)
let insert_entry t s0 time seq fire handle cancellable =
  (if t.free < 0 then grow t);
  let idx = t.free in
  t.free <- Array.unsafe_get t.next idx;
  Array.unsafe_set t.times idx time;
  Array.unsafe_set t.seqs idx seq;
  Array.unsafe_set t.fires idx fire;
  Bytes.unsafe_set t.flags idx (if cancellable then '\001' else '\000');
  if cancellable then Array.unsafe_set t.handles idx handle;
  let s1 = s0 asr l0_shift in
  if s1 = t.cur1 then begin
    let rel = s0 land slot_mask0 in
    let head = Array.unsafe_get t.head0 rel in
    if head < 0 then occ_set t.occ0 rel;
    Array.unsafe_set t.next idx head;
    Array.unsafe_set t.head0 rel idx;
    t.count0 <- t.count0 + 1;
    if rel lsr 5 < t.floor_w then t.floor_w <- rel lsr 5;
    (* A sorted slot survives two kinds of push: a prepend to an empty
       list (trivially sorted) and a new-global-minimum prepend (the
       new head is below everything behind it). Any other prepend into
       it leaves an out-of-order head, so the mark is dropped and the
       next {!ensure} re-walks (and possibly re-sorts) the slot. *)
    (if t.min_ok then
       let mt = Float.Array.unsafe_get t.fmin 0 in
       if time < mt || (time = mt && seq < t.min_seq) then begin
         t.min_slot <- rel;
         t.min_idx <- idx;
         t.min_prev <- -1; (* just prepended: it is the head *)
         Float.Array.unsafe_set t.fmin 0 time;
         t.min_seq <- seq
       end
       else begin
         if rel = t.min_slot && t.min_prev < 0 then
           (* The cached minimum was this slot's head; the new entry
              was just prepended in front of it. *)
           t.min_prev <- idx;
         if rel = t.sorted_slot && head >= 0 then t.sorted_slot <- -1
       end
     else if rel = t.sorted_slot && head >= 0 then t.sorted_slot <- -1)
  end
  else begin
    let rel = s1 land slot_mask in
    let head = Array.unsafe_get t.head1 rel in
    if head < 0 then occ_set t.occ1 rel;
    Array.unsafe_set t.next idx head;
    Array.unsafe_set t.head1 rel idx;
    Array.unsafe_set t.abs1 rel s1;
    t.count1 <- t.count1 + 1
  end;
  if Atomic.get Tm.on then Tm.Counter.incr m_pushed

(* Precondition: {!fits} just returned [true] for this time (and no
   push or pop intervened). [seq] is the caller's tie-break ticket,
   drawn from the same counter as heap pushes. *)
let push t ~time ~seq fire handle =
  insert_entry t
    (int_of_float (time *. l0_scale))
    time seq fire handle
    (handle != t.null)

(* Fused fits + ticket + push: one cross-module call — and one
   float-to-int conversion — on the schedule fast path. Returns [false]
   (drawing no ticket) when the event must go to the overflow heap —
   whose own push then draws the same counter value, preserving ticket
   order. *)
let try_push t q ~now ~at fire handle =
  if not (Float.is_finite at) then begin
    if Atomic.get Tm.on then Tm.Counter.incr m_overflowed;
    false
  end
  else begin
    if t.count0 = 0 && t.count1 = 0 then begin
      let s1n = int_of_float (now *. l1_scale) in
      if s1n > t.cur1 then t.cur1 <- s1n
    end;
    let s0 = int_of_float (at *. l0_scale) in
    let s1 = s0 asr l0_shift in
    if s1 >= t.cur1 && s1 - t.cur1 < n_slots then begin
      (* Inline take_seq: same counter, same value, minus a call. *)
      let seq = q.Event_queue.next_seq in
      q.Event_queue.next_seq <- seq + 1;
      insert_entry t s0 at seq fire handle (handle != t.null);
      true
    end
    else begin
      if Atomic.get Tm.on then Tm.Counter.incr m_overflowed;
      false
    end
  end

(* ------------------------- minimum extraction ----------------------- *)

(* Relink one level-1 slot list into level 0. Entries move by pointer
   surgery only — no payload is copied. *)
let rec relink_l0 t times next i n =
  if i < 0 then n
  else begin
    let nx = Array.unsafe_get next i in
    let rel0 =
      int_of_float (Array.unsafe_get times i *. l0_scale) land slot_mask0
    in
    let head = Array.unsafe_get t.head0 rel0 in
    if head < 0 then occ_set t.occ0 rel0;
    Array.unsafe_set next i head;
    Array.unsafe_set t.head0 rel0 i;
    relink_l0 t times next nx (n + 1)
  end

(* Move one level-1 slot down into level 0 and advance the cursor to
   it. Level 0 is empty when this is called, and every intermediate
   level-1 slot is empty too (the cascaded slot is the cyclically first
   occupied one), so no pending entry is skipped. *)
let cascade t s1abs =
  let rel1 = s1abs land slot_mask in
  t.cur1 <- s1abs;
  let n = relink_l0 t t.times t.next t.head1.(rel1) 0 in
  t.head1.(rel1) <- -1;
  occ_clear t.occ1 rel1;
  t.count1 <- t.count1 - n;
  t.count0 <- t.count0 + n;
  t.floor_w <- 0;
  t.sorted_slot <- -1; (* level 0 now holds a fresh window's entries *)
  if Atomic.get Tm.on then Tm.Counter.incr m_rotations

(* (time, seq)-minimum of one slot list, published into the min cache
   together with its list predecessor (so {!drop_min} unlinks in O(1)
   instead of re-walking the slot). The running best stays an index
   into the arena — float parameters (or a [for] loop's [ref] cells)
   would box a float per improvement; re-reading [times.(bi)] keeps
   every comparison on unboxed loads. Top-level and tail-recursive: a
   [let rec] with captured variables is a closure allocation per call.
   [p] is the predecessor of [i]; [bp] of [bi]. *)
let rec list_min t (times : float array) (seqs : int array) next i p bi bp =
  if i < 0 then begin
    t.min_idx <- bi;
    t.min_prev <- bp
  end
  else begin
    let ti = Array.unsafe_get times i in
    let bt = Array.unsafe_get times bi in
    if
      ti < bt
      || (ti = bt && Array.unsafe_get seqs i < Array.unsafe_get seqs bi)
    then list_min t times seqs next (Array.unsafe_get next i) i i p
    else list_min t times seqs next (Array.unsafe_get next i) i bi bp
  end

(* --------------------------- slot sorting --------------------------- *)

(* A slot list longer than this is merge-sorted in place the first
   time the minimum is located in it, so draining it is O(1) per pop
   instead of a fresh O(k) walk each. Shorter lists keep the walk: the
   sort machinery costs more than it saves, and scenario-bench slots
   hold single digits. *)
let sort_threshold = 12

(* Does list [i] have at least [k] more entries? Touches only [next],
   so the pre-sort length probe is cheaper than a full min walk. *)
let rec len_ge next i k =
  k = 0 || (i >= 0 && len_ge next (Array.unsafe_get next i) (k - 1))

(* Append the merge of sorted lists [a] and [b] after [tail]. All the
   sort helpers are top-level and tail-recursive for the same reason as
   {!list_min}: no closure, no boxed floats, no stack growth on a
   burst slot holding thousands of same-time entries. *)
let rec merge_into (times : float array) (seqs : int array) next tail a b =
  if a < 0 then Array.unsafe_set next tail b
  else if b < 0 then Array.unsafe_set next tail a
  else
    let ta = Array.unsafe_get times a and tb = Array.unsafe_get times b in
    if ta < tb || (ta = tb && Array.unsafe_get seqs a <= Array.unsafe_get seqs b)
    then begin
      Array.unsafe_set next tail a;
      merge_into times seqs next a (Array.unsafe_get next a) b
    end
    else begin
      Array.unsafe_set next tail b;
      merge_into times seqs next b a (Array.unsafe_get next b)
    end

(* Merge two sorted lists, returning the head of the result. *)
let merge (times : float array) (seqs : int array) next a b =
  if a < 0 then b
  else if b < 0 then a
  else
    let ta = Array.unsafe_get times a and tb = Array.unsafe_get times b in
    if ta < tb || (ta = tb && Array.unsafe_get seqs a <= Array.unsafe_get seqs b)
    then begin
      merge_into times seqs next a (Array.unsafe_get next a) b;
      a
    end
    else begin
      merge_into times seqs next b a (Array.unsafe_get next b);
      b
    end

(* Carry a sorted run of 2^i entries into the scratch ladder, merging
   with the resident run at each occupied rung — binary-counter
   increment, giving O(k log k) total work over a k-entry slot. *)
let rec carry_run times seqs next runs r i =
  let resident = Array.unsafe_get runs i in
  if resident < 0 then Array.unsafe_set runs i r
  else begin
    Array.unsafe_set runs i (-1);
    carry_run times seqs next runs (merge times seqs next resident r) (i + 1)
  end

let rec feed_runs times seqs next runs i =
  if i >= 0 then begin
    let nx = Array.unsafe_get next i in
    Array.unsafe_set next i (-1);
    carry_run times seqs next runs i 0;
    feed_runs times seqs next runs nx
  end

let rec fold_runs times seqs next runs i acc =
  if i = 48 then acc
  else begin
    let r = Array.unsafe_get runs i in
    if r < 0 then fold_runs times seqs next runs (i + 1) acc
    else begin
      Array.unsafe_set runs i (-1);
      fold_runs times seqs next runs (i + 1) (merge times seqs next acc r)
    end
  end

(* Sort slot list [h] into ascending (time, seq) order, returning the
   new head. (time, seq) is a total order — seqs are unique — so the
   sorted list, and therefore dispatch order, is independent of the
   input permutation: bit identity is untouched. Leaves [sort_runs]
   all -1. *)
let sort_list t h =
  feed_runs t.times t.seqs t.next t.sort_runs h;
  fold_runs t.times t.seqs t.next t.sort_runs 0 (-1)

(* Locate the (time, seq)-minimum entry. Precondition: not empty. *)
let ensure t =
  if not t.min_ok then begin
    if t.count0 = 0 then begin
      let rel1 = first_occ_from t.occ1 ((t.cur1 + 1) land slot_mask) in
      cascade t t.abs1.(rel1)
    end;
    let rel = occ_scan t.occ0 t.floor_w in
    t.floor_w <- rel lsr 5;
    let h = t.head0.(rel) in
    (if rel = t.sorted_slot then begin
       (* Still in ascending order: the minimum is the head. *)
       t.min_idx <- h;
       t.min_prev <- -1
     end
     else if len_ge t.next h sort_threshold then begin
       let sh = sort_list t h in
       t.head0.(rel) <- sh;
       t.sorted_slot <- rel;
       t.min_idx <- sh;
       t.min_prev <- -1
     end
     else list_min t t.times t.seqs t.next t.next.(h) h h (-1));
    let bi = t.min_idx in
    t.min_slot <- rel;
    Float.Array.unsafe_set t.fmin 0 t.times.(bi);
    t.min_seq <- t.seqs.(bi);
    t.min_ok <- true
  end

let min_handle t =
  ensure t;
  if Bytes.unsafe_get t.flags t.min_idx = '\000' then t.null
  else t.handles.(t.min_idx)

let min_cancellable t =
  ensure t;
  Bytes.unsafe_get t.flags t.min_idx <> '\000'

(* Remove the minimum entry and return its fire thunk. Precondition:
   not empty.

   The freed arena cell keeps its stale fire/handle pointers — clearing
   them would cost a write barrier each, and they are unreachable
   through the wheel's API. The retention this causes ends at the next
   push that reuses the cell, or with the engine (one wheel per engine,
   one engine per simulation). *)
let drop_min t =
  ensure t;
  let rel = t.min_slot in
  let idx = t.min_idx in
  let prev = t.min_prev in
  let next = t.next in
  let fire = t.fires.(idx) in
  if prev < 0 then begin
    (* [min_prev] is maintained by pushes into this slot, so the cached
       head-ness is still exact: -1 means [idx] is the head now. *)
    let nx = Array.unsafe_get next idx in
    Array.unsafe_set t.head0 rel nx;
    if nx < 0 then occ_clear t.occ0 rel
  end
  else Array.unsafe_set next prev (Array.unsafe_get next idx);
  next.(idx) <- t.free;
  t.free <- idx;
  t.count0 <- t.count0 - 1;
  t.min_ok <- false;
  fire
