(* Discrete-event simulation engine.

   Events are thunks scheduled at absolute times; [run] drains the queue
   until a time horizon or event budget is hit. Cancellation is by
   generation counter: a [handle] is invalidated rather than removed from
   the heap (O(1) cancel, lazily discarded on pop) — the standard
   technique for simulators with many retransmit-timer resets.

   Hot-path allocation: event records are recycled through a per-engine
   freelist (most callers never cancel, so [schedule_unit] shares one
   never-cancelled handle and a steady-state run allocates no event
   records at all), and the run loop peeks/pops through the queue's
   allocation-free accessors. *)

module Tm = Ebrc_telemetry.Telemetry

(* Registered once at module init; recording is gated on
   [Tm.is_on ()] so the disabled hot path pays one atomic load and a
   branch per instrumentation point. *)
let m_scheduled =
  Tm.Counter.make ~help:"events pushed onto the simulator queue"
    "sim.events_scheduled"

let m_fired = Tm.Counter.make ~help:"events executed" "sim.events_fired"

let m_discarded =
  Tm.Counter.make ~help:"cancelled events lazily discarded on pop"
    "sim.events_discarded"

let m_depth =
  Tm.Gauge.make ~help:"event-queue depth sampled at every schedule"
    "sim.queue_depth"

type handle = { mutable cancelled : bool }

(* Shared sentinel for events scheduled without a handle; never
   cancelled. *)
let no_handle = { cancelled = false }

type event = { mutable fire : unit -> unit; mutable handle : handle }

let nop () = ()

(* A fast lane is a growable FIFO ring of (time, seq, thunk) for event
   streams the caller proves are time-ordered and never cancelled
   (link service completions, constant-delay deliveries, fixed-delay
   feedback). Push and pop are O(1); the run loop k-way-merges lane
   heads with the heap top by (time, seq), and because lane pushes
   draw tickets from the heap's own sequence counter the merged order
   is bit-identical to what a pure-heap run would produce. *)
type lane = {
  l_eng : t;
  mutable l_times : float array;
  mutable l_seqs : int array;
  mutable l_fires : (unit -> unit) array;
  mutable l_head : int;
  mutable l_len : int;
  mutable l_last : float;  (* time of the newest entry; FIFO guard *)
}

and t = {
  queue : event Event_queue.t;
  mutable now : float;
  mutable processed : int;
  mutable horizon : float;
  mutable pool : event array;
  mutable pool_size : int;
  mutable lanes : lane array;
  mutable n_lanes : int;
}

let dummy_event = { fire = nop; handle = no_handle }

let create () =
  {
    queue = Event_queue.create ();
    now = 0.0;
    processed = 0;
    horizon = infinity;
    pool = Array.make 64 dummy_event;
    pool_size = 0;
    lanes = [||];
    n_lanes = 0;
  }

let now t = t.now
let processed t = t.processed

let pending t =
  let n = ref (Event_queue.size t.queue) in
  for i = 0 to t.n_lanes - 1 do
    n := !n + t.lanes.(i).l_len
  done;
  !n

let pooling = ref (Sys.getenv_opt "EBRC_POOL" = Some "1")
let set_pooling b = pooling := b

let alloc_event t fire handle =
  if (not !pooling) || t.pool_size = 0 then { fire; handle }
  else begin
    let n = t.pool_size - 1 in
    t.pool_size <- n;
    let ev = t.pool.(n) in
    t.pool.(n) <- dummy_event;
    ev.fire <- fire;
    ev.handle <- handle;
    ev
  end

let recycle t ev =
  if not !pooling then ignore ev
  else begin
  ev.fire <- nop;
  ev.handle <- no_handle;
  if t.pool_size = Array.length t.pool then begin
    let bigger = Array.make (2 * t.pool_size) dummy_event in
    Array.blit t.pool 0 bigger 0 t.pool_size;
    t.pool <- bigger
  end;
  t.pool.(t.pool_size) <- ev;
  t.pool_size <- t.pool_size + 1
  end

let note_scheduled t =
  if Tm.is_on () then begin
    Tm.Counter.incr m_scheduled;
    Tm.Gauge.set m_depth (float_of_int (pending t))
  end

let check_at t at =
  (* [not (at >= now)] also rejects NaN, which would otherwise poison
     the queue ordering. *)
  if not (at >= t.now) then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is in the past (now %g)" at
         t.now)

let schedule t ~at fire =
  check_at t at;
  let handle = { cancelled = false } in
  Event_queue.push t.queue ~time:at (alloc_event t fire handle);
  note_scheduled t;
  handle

let schedule_unit t ~at fire =
  check_at t at;
  Event_queue.push t.queue ~time:at (alloc_event t fire no_handle);
  note_scheduled t

(* A negative delay would silently schedule into the simulated past and
   a NaN delay would poison queue ordering; both are caller bugs, so
   reject loudly rather than clamp. [not (delay >= 0)] catches both. *)
let check_delay delay =
  if not (delay >= 0.0) then
    invalid_arg
      (Printf.sprintf "Engine.schedule_after: negative or NaN delay %g" delay)

let schedule_after t ~delay fire =
  check_delay delay;
  schedule t ~at:(t.now +. delay) fire

let schedule_after_unit t ~delay fire =
  check_delay delay;
  schedule_unit t ~at:(t.now +. delay) fire

(* ------------------------------ lanes ------------------------------ *)

(* Global A/B toggle (precedent: Ode_fixed_step, set_pooling). With
   lanes off every [lane_push] falls back to a plain heap push, which
   consumes the same sequence ticket — the two modes fire the same
   events in the same order and keep identical telemetry counters. *)
let lanes_on = ref (Sys.getenv_opt "EBRC_LANES" <> Some "0")
let set_fast_lanes b = lanes_on := b
let fast_lanes_enabled () = !lanes_on

let lane t =
  let ln =
    {
      l_eng = t;
      l_times = Array.make 64 0.0;
      l_seqs = Array.make 64 0;
      l_fires = Array.make 64 nop;
      l_head = 0;
      l_len = 0;
      l_last = neg_infinity;
    }
  in
  if t.n_lanes = Array.length t.lanes then begin
    (* Filler slots hold the new lane; iteration is bounded by
       [n_lanes] so they are never visited. *)
    let bigger = Array.make (max 4 (2 * t.n_lanes)) ln in
    Array.blit t.lanes 0 bigger 0 t.n_lanes;
    t.lanes <- bigger
  end;
  t.lanes.(t.n_lanes) <- ln;
  t.n_lanes <- t.n_lanes + 1;
  ln

let lane_depth ln = ln.l_len

let lane_grow ln =
  let cap = Array.length ln.l_times in
  let times = Array.make (2 * cap) 0.0 in
  let seqs = Array.make (2 * cap) 0 in
  let fires = Array.make (2 * cap) nop in
  for i = 0 to ln.l_len - 1 do
    let j = (ln.l_head + i) mod cap in
    times.(i) <- ln.l_times.(j);
    seqs.(i) <- ln.l_seqs.(j);
    fires.(i) <- ln.l_fires.(j)
  done;
  ln.l_times <- times;
  ln.l_seqs <- seqs;
  ln.l_fires <- fires;
  ln.l_head <- 0

let lane_push ln ~at fire =
  let t = ln.l_eng in
  if not !lanes_on then schedule_unit t ~at fire
  else begin
    check_at t at;
    if at < ln.l_last then
      invalid_arg
        (Printf.sprintf
           "Engine.lane_push: time %g below lane tail %g (FIFO violated)" at
           ln.l_last);
    let cap = Array.length ln.l_times in
    if ln.l_len = cap then lane_grow ln;
    let cap = Array.length ln.l_times in
    let i = ln.l_head + ln.l_len in
    let i = if i >= cap then i - cap else i in
    ln.l_times.(i) <- at;
    ln.l_seqs.(i) <- Event_queue.take_seq t.queue;
    ln.l_fires.(i) <- fire;
    ln.l_len <- ln.l_len + 1;
    ln.l_last <- at;
    note_scheduled t
  end

let lane_pop ln =
  let i = ln.l_head in
  let fire = ln.l_fires.(i) in
  ln.l_fires.(i) <- nop;
  let cap = Array.length ln.l_times in
  ln.l_head <- (if i + 1 = cap then 0 else i + 1);
  ln.l_len <- ln.l_len - 1;
  fire

(* Earliest source by (time, seq): 0 = heap, i+1 = lane i, -1 = empty.
   Tail-recursive with unboxed float arguments — the hot loop calls
   this once per event and it must not allocate. *)
let rec scan_lanes t i best best_time best_seq =
  if i >= t.n_lanes then best
  else begin
    let ln = t.lanes.(i) in
    if ln.l_len > 0 then begin
      let tm = ln.l_times.(ln.l_head) in
      let sq = ln.l_seqs.(ln.l_head) in
      if best < 0 || tm < best_time || (tm = best_time && sq < best_seq) then
        scan_lanes t (i + 1) (i + 1) tm sq
      else scan_lanes t (i + 1) best best_time best_seq
    end
    else scan_lanes t (i + 1) best best_time best_seq
  end

let select_source t =
  if t.n_lanes = 0 then (if Event_queue.is_empty t.queue then -1 else 0)
  else if Event_queue.is_empty t.queue then
    scan_lanes t 0 (-1) infinity max_int
  else
    scan_lanes t 0 0 (Event_queue.top_time t.queue)
      (Event_queue.top_seq t.queue)

let cancel handle = handle.cancelled <- true
let is_cancelled handle = handle.cancelled

type stop_reason = Queue_empty | Horizon_reached | Budget_exhausted | Stopped

exception Stop

let stop _t = raise Stop

(* --------------------------- watchdogs ----------------------------- *)

type budget_kind = Sim_time | Wall_clock

exception
  Budget_exceeded of {
    kind : budget_kind;
    budget : float;
    at : float;
    events : int;
  }

let parse_budget var =
  match Sys.getenv_opt var with
  | None -> None
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some b when b > 0.0 && Float.is_finite b -> Some b
      | _ -> None)

(* Process-wide defaults, applied when [run] is not given an explicit
   budget. Orchestration guards, not simulation parameters: a run that
   stays within budget is bit-identical to an unbudgeted one, which is
   why budgets are deliberately absent from the result-cache key. *)
let default_sim_budget = ref (parse_budget "EBRC_SIM_BUDGET")
let default_wall_budget = ref (parse_budget "EBRC_WALL_BUDGET")

let check_budget what = function
  | Some b when not (b > 0.0 && Float.is_finite b) ->
      invalid_arg (Printf.sprintf "Engine: %s budget must be > 0" what)
  | _ -> ()

let set_sim_budget b =
  check_budget "sim-time" b;
  default_sim_budget := b

let set_wall_budget b =
  check_budget "wall-clock" b;
  default_wall_budget := b

let run ?(until = infinity) ?(max_events = max_int) ?sim_budget ?wall_budget t
    =
  check_budget "sim-time" sim_budget;
  check_budget "wall-clock" wall_budget;
  let sim_budget =
    match sim_budget with Some _ -> sim_budget | None -> !default_sim_budget
  in
  let wall_budget =
    match wall_budget with Some _ -> wall_budget | None -> !default_wall_budget
  in
  (* Budgets resolve to a deadline once at entry; the per-event cost
     with watchdogs off is one float compare and one option match. *)
  let sim_deadline =
    match sim_budget with Some b -> t.now +. b | None -> infinity
  in
  let wall_t0 =
    match wall_budget with Some _ -> Tm.wall_now () | None -> 0.0
  in
  t.horizon <- until;
  let reason = ref Queue_empty in
  (try
     let continue = ref true in
     while !continue do
       let src = select_source t in
       if src < 0 then begin
         reason := Queue_empty;
         continue := false
       end
       else begin
         let time =
           if src = 0 then Event_queue.top_time t.queue
           else
             let ln = t.lanes.(src - 1) in
             ln.l_times.(ln.l_head)
         in
         if time > sim_deadline then
           (* [t.now] stays at the last fired event: the engine (and the
              caller's per-flow measures) remain queryable, so partial
              statistics can be salvaged by the handler. *)
           raise
             (Budget_exceeded
                { kind = Sim_time; budget = Option.get sim_budget; at = time;
                  events = t.processed });
         (match wall_budget with
          | Some b when t.processed land 1023 = 0 ->
              let elapsed = Tm.wall_now () -. wall_t0 in
              if elapsed > b then
                raise
                  (Budget_exceeded
                     { kind = Wall_clock; budget = b; at = elapsed;
                       events = t.processed })
          | _ -> ());
         if time > until then begin
           (* Leave it queued for a later resumed run and stop. *)
           t.now <- until;
           reason := Horizon_reached;
           continue := false
         end
         else if src > 0 then begin
           (* Lane events are never cancelled, so no discard branch. *)
           let fire = lane_pop t.lanes.(src - 1) in
           t.now <- time;
           t.processed <- t.processed + 1;
           if Tm.is_on () then Tm.Counter.incr m_fired;
           fire ();
           if t.processed >= max_events then begin
             reason := Budget_exhausted;
             continue := false
           end
         end
         else begin
           let ev = Event_queue.pop_exn t.queue in
           if ev.handle.cancelled then begin
             recycle t ev;
             if Tm.is_on () then Tm.Counter.incr m_discarded
           end
           else begin
             t.now <- time;
             t.processed <- t.processed + 1;
             if Tm.is_on () then Tm.Counter.incr m_fired;
             let fire = ev.fire in
             recycle t ev;
             fire ();
             if t.processed >= max_events then begin
               reason := Budget_exhausted;
               continue := false
             end
           end
         end
       end
     done
   with Stop -> reason := Stopped);
  !reason
