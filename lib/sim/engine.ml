(* Discrete-event simulation engine.

   Events are thunks scheduled at absolute times; [run] drains the queue
   until a time horizon or event budget is hit. Cancellation is by
   generation counter: a [handle] is invalidated rather than removed from
   the heap (O(1) cancel, lazily discarded on pop) — the standard
   technique for simulators with many retransmit-timer resets.

   Event core v3: by default every bounded-horizon event rides a
   hierarchical timing wheel ({!Timing_wheel}) with the binary heap
   demoted to overflow/far-future duty; the PR 4 FIFO lanes are
   subsumed (a wheel-mode lane is just a FIFO-contract checker in front
   of the wheel). The wheel draws tie-break tickets from the heap's own
   sequence counter and compares exact (time, seq) at extraction, so
   the merged dispatch order — and therefore every trace, counter, and
   figure byte — is identical to a pure-heap run ([EBRC_WHEEL=0]).

   Hot-path allocation: wheel-accepted events store their fire thunk
   directly in the slot arrays (no event record at all); heap events
   can be recycled through a per-engine freelist (most callers never
   cancel, so [schedule_unit] shares one never-cancelled handle), and
   the run loop peeks/pops through allocation-free accessors. *)

module Tm = Ebrc_telemetry.Telemetry

(* Registered once at module init; recording is gated on
   [Atomic.get Tm.on] so the disabled hot path pays one atomic load and a
   branch per instrumentation point. *)
let m_scheduled =
  Tm.Counter.make ~help:"events pushed onto the simulator queue"
    "sim.events_scheduled"

let m_fired = Tm.Counter.make ~help:"events executed" "sim.events_fired"

let m_discarded =
  Tm.Counter.make ~help:"cancelled events lazily discarded on pop"
    "sim.events_discarded"

let m_depth =
  Tm.Gauge.make ~help:"event-queue depth sampled at every schedule"
    "sim.queue_depth"

type handle = { mutable cancelled : bool }

(* Shared sentinel for events scheduled without a handle; never
   cancelled. *)
let no_handle = { cancelled = false }

type event = { mutable fire : unit -> unit; mutable handle : handle }

let nop () = ()
let nop_hook (_ : float) = ()

(* A fast lane is a growable FIFO ring of (time, seq, thunk) for event
   streams the caller proves are time-ordered and never cancelled
   (link service completions, constant-delay deliveries, fixed-delay
   feedback). Push and pop are O(1); the run loop k-way-merges lane
   heads with the heap top by (time, seq), and because lane pushes
   draw tickets from the heap's own sequence counter the merged order
   is bit-identical to what a pure-heap run would produce. *)
type lane = {
  l_eng : t;
  mutable l_times : float array;
  mutable l_seqs : int array;
  mutable l_fires : (unit -> unit) array;
  mutable l_head : int;
  mutable l_len : int;
  l_last : floatarray;
      (* [0] = time of the newest entry; the FIFO guard. A floatarray
         cell, not a mutable float field: it is stored on every push,
         and a float field in this mixed record would be a boxed
         pointer — allocation plus write barrier per store. *)
}

and t = {
  queue : event Event_queue.t;
  mutable now : float;
      (* Boxed field, deliberately: [now] is read (cross-module) far
         more often than it is stored, and returning the field is just
         the existing box — a floatarray cell here measured {e worse},
         because every [Engine.now] call would box a fresh float. *)
  mutable processed : int;
  mutable horizon : float;
  mutable pool : event array;
  mutable pool_size : int;
  mutable lanes : lane array;
  mutable n_lanes : int;
  wheel : handle Timing_wheel.t;
  use_wheel : bool;  (* sampled from the global toggle at [create] *)
  mutable advance_hook : float -> unit;
      (* Called with the event time before each live event fires (the
         hybrid fluid advance). *)
  mutable has_hook : bool;
      (* Split from the closure so the unused-hook cost in the run loop
         is one immediate-bool load and branch, not a closure compare. *)
  mutable sampler : float -> unit;
      (* Sim-time telemetry sampler (the live-stream cadence). *)
  mutable next_sample : float;
      (* Next sampling boundary; [infinity] when no sampler is set, so
         the disabled run-loop cost is one float compare per event. *)
  mutable sample_period : float;
}

let dummy_event = { fire = nop; handle = no_handle }

(* Global A/B toggle (precedent: set_fast_lanes, set_pooling). Sampled
   once per engine at [create]: flip only between engine creations.
   With the wheel off and lanes on, scheduling behaves exactly as in
   the PR 4 event core; with both off, it is the pure-heap baseline.
   All three modes fire the same events in the same order. *)
let wheel_on = ref (Sys.getenv_opt "EBRC_WHEEL" <> Some "0")
let set_wheel b = wheel_on := b
let wheel_enabled () = !wheel_on

let create () =
  {
    queue = Event_queue.create ();
    now = 0.0;
    processed = 0;
    horizon = infinity;
    pool = Array.make 64 dummy_event;
    pool_size = 0;
    lanes = [||];
    n_lanes = 0;
    wheel = Timing_wheel.create ~null:no_handle ();
    use_wheel = !wheel_on;
    advance_hook = nop_hook;
    has_hook = false;
    sampler = nop_hook;
    next_sample = infinity;
    sample_period = 0.0;
  }

let set_advance_hook t = function
  | None ->
      t.advance_hook <- nop_hook;
      t.has_hook <- false
  | Some f ->
      t.advance_hook <- f;
      t.has_hook <- true

let set_sampler t ~period f =
  if not (period > 0.0 && Float.is_finite period) then
    invalid_arg "Engine.set_sampler: period must be > 0 and finite";
  t.sampler <- f;
  t.sample_period <- period;
  t.next_sample <- t.now +. period

let clear_sampler t =
  t.sampler <- nop_hook;
  t.next_sample <- infinity;
  t.sample_period <- 0.0

(* An event at [time] crossed the next sampling boundary: fire the
   sampler once, labelled with that boundary, then skip past any
   further boundaries the same event jumped over (one sample per
   crossing event, not per elapsed period — idle stretches produce no
   records, and the labels stay pure functions of the event times, so
   the sample sequence is deterministic). Kept out of line: the run
   loop pays one float compare when no boundary was crossed. *)
let fire_sampler t time =
  let b = t.next_sample in
  let p = t.sample_period in
  let next = ref (b +. p) in
  while !next <= time do
    next := !next +. p
  done;
  t.next_sample <- !next;
  t.sampler b

let now t = t.now
let processed t = t.processed

let pending t =
  let n = ref (Event_queue.size t.queue + Timing_wheel.count t.wheel) in
  for i = 0 to t.n_lanes - 1 do
    n := !n + t.lanes.(i).l_len
  done;
  !n

let pooling = ref (Sys.getenv_opt "EBRC_POOL" = Some "1")
let set_pooling b = pooling := b

let alloc_event t fire handle =
  if (not !pooling) || t.pool_size = 0 then { fire; handle }
  else begin
    let n = t.pool_size - 1 in
    t.pool_size <- n;
    let ev = t.pool.(n) in
    t.pool.(n) <- dummy_event;
    ev.fire <- fire;
    ev.handle <- handle;
    ev
  end

let recycle t ev =
  if not !pooling then ignore ev
  else begin
  ev.fire <- nop;
  ev.handle <- no_handle;
  if t.pool_size = Array.length t.pool then begin
    let bigger = Array.make (2 * t.pool_size) dummy_event in
    Array.blit t.pool 0 bigger 0 t.pool_size;
    t.pool <- bigger
  end;
  t.pool.(t.pool_size) <- ev;
  t.pool_size <- t.pool_size + 1
  end

(* Call gated at each site ([if Atomic.get Tm.on then ...]): without
   flambda an intra-module call is never inlined, so the gate must
   live in the caller for the disabled path to cost one load. *)
let note_scheduled t =
  Tm.Counter.incr m_scheduled;
  Tm.Gauge.set m_depth (float_of_int (pending t))

(* Cold path of the past/NaN check. The compare itself ([at >= t.now],
   which also rejects NaN) is inlined at each call site — without
   flambda a [check_at] helper would cost a call per schedule. *)
let check_at_fail t at =
  invalid_arg
    (Printf.sprintf "Engine.schedule: time %g is in the past (now %g)" at
       t.now)

(* Insert with a caller-supplied handle. The [fits] check runs before
   any ticket is drawn: a wheel-accepted event takes its ticket via
   [Event_queue.take_seq], an overflow event lets the heap push draw
   the very same counter value — so tickets are issued in scheduling
   order regardless of destination, which is the whole bit-identity
   argument. *)
let insert t ~at fire handle =
  if t.use_wheel && Timing_wheel.try_push t.wheel t.queue ~now:t.now ~at fire handle
  then ()
  else Event_queue.push t.queue ~time:at (alloc_event t fire handle)

let schedule t ~at fire =
  if not (at >= t.now) then check_at_fail t at;
  let handle = { cancelled = false } in
  insert t ~at fire handle;
  if Atomic.get Tm.on then note_scheduled t;
  handle

let schedule_unit t ~at fire =
  if not (at >= t.now) then check_at_fail t at;
  insert t ~at fire no_handle;
  if Atomic.get Tm.on then note_scheduled t

(* A negative delay would silently schedule into the simulated past and
   a NaN delay would poison queue ordering; both are caller bugs, so
   reject loudly rather than clamp. [not (delay >= 0)] catches both.
   The message names the scheduler that rejected the delay — the
   contract is identical on both, but a report against one mode should
   say which event core it came from. *)
let check_delay t delay =
  if not (delay >= 0.0) then
    invalid_arg
      (Printf.sprintf
         "Engine.schedule_after (%s scheduler): negative or NaN delay %g"
         (if t.use_wheel then "wheel" else "heap")
         delay)

let schedule_after t ~delay fire =
  check_delay t delay;
  schedule t ~at:(t.now +. delay) fire

let schedule_after_unit t ~delay fire =
  check_delay t delay;
  schedule_unit t ~at:(t.now +. delay) fire

(* ------------------------------ lanes ------------------------------ *)

(* Global A/B toggle (precedent: Ode_fixed_step, set_pooling). With
   lanes off every [lane_push] falls back to a plain heap push, which
   consumes the same sequence ticket — the two modes fire the same
   events in the same order and keep identical telemetry counters. *)
let lanes_on = ref (Sys.getenv_opt "EBRC_LANES" <> Some "0")
let set_fast_lanes b = lanes_on := b
let fast_lanes_enabled () = !lanes_on

let lane t =
  if t.use_wheel then
    (* Subsumed by the wheel: the lane keeps its FIFO-contract guard
       ([l_last]) but holds no ring and is not registered, so the run
       loop's lane scan stays empty and disappears from the hot path.
       Pushes route through the wheel like any other event. *)
    {
      l_eng = t;
      l_times = [||];
      l_seqs = [||];
      l_fires = [||];
      l_head = 0;
      l_len = 0;
      l_last = Float.Array.make 1 neg_infinity;
    }
  else begin
    let ln =
      {
        l_eng = t;
        l_times = Array.make 64 0.0;
        l_seqs = Array.make 64 0;
        l_fires = Array.make 64 nop;
        l_head = 0;
        l_len = 0;
        l_last = Float.Array.make 1 neg_infinity;
      }
    in
    if t.n_lanes = Array.length t.lanes then begin
      (* Filler slots hold the new lane; iteration is bounded by
         [n_lanes] so they are never visited. *)
      let bigger = Array.make (max 4 (2 * t.n_lanes)) ln in
      Array.blit t.lanes 0 bigger 0 t.n_lanes;
      t.lanes <- bigger
    end;
    t.lanes.(t.n_lanes) <- ln;
    t.n_lanes <- t.n_lanes + 1;
    ln
  end

let lane_depth ln = ln.l_len

let lane_grow ln =
  let cap = Array.length ln.l_times in
  let times = Array.make (2 * cap) 0.0 in
  let seqs = Array.make (2 * cap) 0 in
  let fires = Array.make (2 * cap) nop in
  for i = 0 to ln.l_len - 1 do
    let j = (ln.l_head + i) mod cap in
    times.(i) <- ln.l_times.(j);
    seqs.(i) <- ln.l_seqs.(j);
    fires.(i) <- ln.l_fires.(j)
  done;
  ln.l_times <- times;
  ln.l_seqs <- seqs;
  ln.l_fires <- fires;
  ln.l_head <- 0

let lane_push ln ~at fire =
  let t = ln.l_eng in
  if t.use_wheel then begin
    (* Wheel mode keeps the lane's FIFO-contract check (callers still
       promise time-ordered streams; a violation is a caller bug worth
       catching in every mode) but the event itself rides the wheel. *)
    if not (at >= t.now) then check_at_fail t at;
    if at < Float.Array.unsafe_get ln.l_last 0 then
      invalid_arg
        (Printf.sprintf
           "Engine.lane_push: time %g below lane tail %g (FIFO violated)" at
           (Float.Array.unsafe_get ln.l_last 0));
    Float.Array.unsafe_set ln.l_last 0 at;
    insert t ~at fire no_handle;
    if Atomic.get Tm.on then note_scheduled t
  end
  else if not !lanes_on then schedule_unit t ~at fire
  else begin
    if not (at >= t.now) then check_at_fail t at;
    if at < Float.Array.unsafe_get ln.l_last 0 then
      invalid_arg
        (Printf.sprintf
           "Engine.lane_push: time %g below lane tail %g (FIFO violated)" at
           (Float.Array.unsafe_get ln.l_last 0));
    let cap = Array.length ln.l_times in
    if ln.l_len = cap then lane_grow ln;
    let cap = Array.length ln.l_times in
    let i = ln.l_head + ln.l_len in
    let i = if i >= cap then i - cap else i in
    ln.l_times.(i) <- at;
    ln.l_seqs.(i) <- Event_queue.take_seq t.queue;
    ln.l_fires.(i) <- fire;
    ln.l_len <- ln.l_len + 1;
    Float.Array.unsafe_set ln.l_last 0 at;
    if Atomic.get Tm.on then note_scheduled t
  end

(* Every lane producer schedules at (now + constant delay); computing
   the sum here spares each push a cross-module [now] call. The float
   arithmetic is the same, so the resulting [at] — and the dispatch
   order — is bit-identical to the two-call spelling. *)
let lane_push_after ln ~delay fire =
  lane_push ln ~at:(ln.l_eng.now +. delay) fire

let lane_pop ln =
  let i = ln.l_head in
  let fire = ln.l_fires.(i) in
  ln.l_fires.(i) <- nop;
  let cap = Array.length ln.l_times in
  ln.l_head <- (if i + 1 = cap then 0 else i + 1);
  ln.l_len <- ln.l_len - 1;
  fire

(* Earliest source by (time, seq): 0 = heap, i+1 = lane i, -1 = empty.
   Tail-recursive with unboxed float arguments — the hot loop calls
   this once per event and it must not allocate. *)
let rec scan_lanes t i best best_time best_seq =
  if i >= t.n_lanes then best
  else begin
    let ln = t.lanes.(i) in
    if ln.l_len > 0 then begin
      let tm = ln.l_times.(ln.l_head) in
      let sq = ln.l_seqs.(ln.l_head) in
      if best < 0 || tm < best_time || (tm = best_time && sq < best_seq) then
        scan_lanes t (i + 1) (i + 1) tm sq
      else scan_lanes t (i + 1) best best_time best_seq
    end
    else scan_lanes t (i + 1) best best_time best_seq
  end

let select_source t =
  let q = t.queue in
  if t.n_lanes = 0 then (if q.Event_queue.size = 0 then -1 else 0)
  else if q.Event_queue.size = 0 then scan_lanes t 0 (-1) infinity max_int
  else
    scan_lanes t 0 0
      (Array.unsafe_get q.Event_queue.times 0)
      (Array.unsafe_get q.Event_queue.seqs 0)

(* Earliest source across wheel + heap + lanes: -2 = wheel, 0 = heap,
   i+1 = lane i, -1 = everything empty. Returns a bare int (the caller
   recomputes the time by branch) so the hot loop allocates nothing;
   the wheel minimum is read through direct field loads because a
   cross-module float-returning call would box its result on every
   peek. In wheel mode no lane ever registers, so the merge is wheel
   vs heap-overflow only. *)
let select_all t =
  if not t.use_wheel then select_source t
  else begin
    let w = t.wheel in
    let q = t.queue in
    if w.Timing_wheel.count0 = 0 && w.Timing_wheel.count1 = 0 then
      (if q.Event_queue.size = 0 then -1 else 0)
    else begin
      Timing_wheel.ensure w;
      if q.Event_queue.size = 0 then -2
      else begin
        let wt = Float.Array.unsafe_get w.Timing_wheel.fmin 0 in
        let ht = Array.unsafe_get q.Event_queue.times 0 in
        if
          wt < ht
          || (wt = ht
              && w.Timing_wheel.min_seq
                 < Array.unsafe_get q.Event_queue.seqs 0)
        then -2
        else 0
      end
    end
  end

let cancel handle = handle.cancelled <- true
let is_cancelled handle = handle.cancelled

type stop_reason = Queue_empty | Horizon_reached | Budget_exhausted | Stopped

exception Stop

let stop _t = raise Stop

(* --------------------------- watchdogs ----------------------------- *)

type budget_kind = Sim_time | Wall_clock

exception
  Budget_exceeded of {
    kind : budget_kind;
    budget : float;
    at : float;
    events : int;
  }

let parse_budget var =
  match Sys.getenv_opt var with
  | None -> None
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some b when b > 0.0 && Float.is_finite b -> Some b
      | _ -> None)

(* Process-wide defaults, applied when [run] is not given an explicit
   budget. Orchestration guards, not simulation parameters: a run that
   stays within budget is bit-identical to an unbudgeted one, which is
   why budgets are deliberately absent from the result-cache key. *)
let default_sim_budget = ref (parse_budget "EBRC_SIM_BUDGET")
let default_wall_budget = ref (parse_budget "EBRC_WALL_BUDGET")

let check_budget what = function
  | Some b when not (b > 0.0 && Float.is_finite b) ->
      invalid_arg (Printf.sprintf "Engine: %s budget must be > 0" what)
  | _ -> ()

let set_sim_budget b =
  check_budget "sim-time" b;
  default_sim_budget := b

let set_wall_budget b =
  check_budget "wall-clock" b;
  default_wall_budget := b

let run ?(until = infinity) ?(max_events = max_int) ?sim_budget ?wall_budget t
    =
  check_budget "sim-time" sim_budget;
  check_budget "wall-clock" wall_budget;
  let sim_budget =
    match sim_budget with Some _ -> sim_budget | None -> !default_sim_budget
  in
  let wall_budget =
    match wall_budget with Some _ -> wall_budget | None -> !default_wall_budget
  in
  (* Budgets resolve to a deadline once at entry; the per-event cost
     with watchdogs off is one float compare and one option match. *)
  let sim_deadline =
    match sim_budget with Some b -> t.now +. b | None -> infinity
  in
  let wall_t0 =
    match wall_budget with Some _ -> Tm.wall_now () | None -> 0.0
  in
  t.horizon <- until;
  let reason = ref Queue_empty in
  (try
     let continue = ref true in
     while !continue do
       let src = select_all t in
       if src = -1 then begin
         reason := Queue_empty;
         continue := false
       end
       else begin
         let time =
           if src = -2 then Float.Array.unsafe_get t.wheel.Timing_wheel.fmin 0
           else if src = 0 then Array.unsafe_get t.queue.Event_queue.times 0
           else
             let ln = t.lanes.(src - 1) in
             ln.l_times.(ln.l_head)
         in
         if time > sim_deadline then begin
           (* [t.now] stays at the last fired event: the engine (and the
              caller's per-flow measures) remain queryable, so partial
              statistics can be salvaged by the handler. *)
           let e =
             Budget_exceeded
               { kind = Sim_time; budget = Option.get sim_budget; at = time;
                 events = t.processed }
           in
           Ebrc_telemetry.Flight.on_exn ~reason:"engine.budget" e;
           raise e
         end;
         (match wall_budget with
          | Some b when t.processed land 1023 = 0 ->
              let elapsed = Tm.wall_now () -. wall_t0 in
              if elapsed > b then begin
                let e =
                  Budget_exceeded
                    { kind = Wall_clock; budget = b; at = elapsed;
                      events = t.processed }
                in
                Ebrc_telemetry.Flight.on_exn ~reason:"engine.budget" e;
                raise e
              end
          | _ -> ());
         if time > until then begin
           (* Leave it queued for a later resumed run and stop. *)
           t.now <- until;
           reason := Horizon_reached;
           continue := false
         end
         else if src = -2 then begin
           (* Wheel events mirror the heap pop exactly: a cancelled
              entry is dispatched and discarded without advancing
              [now], a live one fires. The handle is read through the
              exposed fields (valid: select_all just ran [ensure]);
              the flag gate means never-cancelled entries skip the
              handle load entirely. *)
           let w = t.wheel in
           let idx = w.Timing_wheel.min_idx in
           let cancelled =
             Bytes.unsafe_get w.Timing_wheel.flags idx <> '\000'
             && (w.Timing_wheel.handles.(idx)).cancelled
           in
           let fire = Timing_wheel.drop_min t.wheel in
           if cancelled then begin
             if Atomic.get Tm.on then Tm.Counter.incr m_discarded
           end
           else begin
             t.now <- time;
             t.processed <- t.processed + 1;
             if Atomic.get Tm.on then Tm.Counter.incr m_fired;
             if time >= t.next_sample then fire_sampler t time;
             if t.has_hook then t.advance_hook time;
             fire ();
             if t.processed >= max_events then begin
               reason := Budget_exhausted;
               continue := false
             end
           end
         end
         else if src > 0 then begin
           (* Lane events are never cancelled, so no discard branch. *)
           let fire = lane_pop t.lanes.(src - 1) in
           t.now <- time;
           t.processed <- t.processed + 1;
           if Atomic.get Tm.on then Tm.Counter.incr m_fired;
           if time >= t.next_sample then fire_sampler t time;
           if t.has_hook then t.advance_hook time;
           fire ();
           if t.processed >= max_events then begin
             reason := Budget_exhausted;
             continue := false
           end
         end
         else begin
           let ev = Event_queue.pop_exn t.queue in
           if ev.handle.cancelled then begin
             recycle t ev;
             if Atomic.get Tm.on then Tm.Counter.incr m_discarded
           end
           else begin
             t.now <- time;
             t.processed <- t.processed + 1;
             if Atomic.get Tm.on then Tm.Counter.incr m_fired;
             if time >= t.next_sample then fire_sampler t time;
             if t.has_hook then t.advance_hook time;
             let fire = ev.fire in
             recycle t ev;
             fire ();
             if t.processed >= max_events then begin
               reason := Budget_exhausted;
               continue := false
             end
           end
         end
       end
     done
   with Stop -> reason := Stopped);
  !reason
