(* Discrete-event simulation engine.

   Events are thunks scheduled at absolute times; [run] drains the queue
   until a time horizon or event budget is hit. Cancellation is by
   generation counter: a [handle] is invalidated rather than removed from
   the heap (O(1) cancel, lazily discarded on pop) — the standard
   technique for simulators with many retransmit-timer resets.

   Hot-path allocation: event records are recycled through a per-engine
   freelist (most callers never cancel, so [schedule_unit] shares one
   never-cancelled handle and a steady-state run allocates no event
   records at all), and the run loop peeks/pops through the queue's
   allocation-free accessors. *)

module Tm = Ebrc_telemetry.Telemetry

(* Registered once at module init; recording is gated on
   [Tm.is_on ()] so the disabled hot path pays one atomic load and a
   branch per instrumentation point. *)
let m_scheduled =
  Tm.Counter.make ~help:"events pushed onto the simulator queue"
    "sim.events_scheduled"

let m_fired = Tm.Counter.make ~help:"events executed" "sim.events_fired"

let m_discarded =
  Tm.Counter.make ~help:"cancelled events lazily discarded on pop"
    "sim.events_discarded"

let m_depth =
  Tm.Gauge.make ~help:"event-queue depth sampled at every schedule"
    "sim.queue_depth"

type handle = { mutable cancelled : bool }

(* Shared sentinel for events scheduled without a handle; never
   cancelled. *)
let no_handle = { cancelled = false }

type event = { mutable fire : unit -> unit; mutable handle : handle }

let nop () = ()

type t = {
  queue : event Event_queue.t;
  mutable now : float;
  mutable processed : int;
  mutable horizon : float;
  mutable pool : event array;
  mutable pool_size : int;
}

let dummy_event = { fire = nop; handle = no_handle }

let create () =
  {
    queue = Event_queue.create ();
    now = 0.0;
    processed = 0;
    horizon = infinity;
    pool = Array.make 64 dummy_event;
    pool_size = 0;
  }

let now t = t.now
let processed t = t.processed
let pending t = Event_queue.size t.queue

let pooling = ref (Sys.getenv_opt "EBRC_POOL" = Some "1")
let set_pooling b = pooling := b

let alloc_event t fire handle =
  if (not !pooling) || t.pool_size = 0 then { fire; handle }
  else begin
    let n = t.pool_size - 1 in
    t.pool_size <- n;
    let ev = t.pool.(n) in
    t.pool.(n) <- dummy_event;
    ev.fire <- fire;
    ev.handle <- handle;
    ev
  end

let recycle t ev =
  if not !pooling then ignore ev
  else begin
  ev.fire <- nop;
  ev.handle <- no_handle;
  if t.pool_size = Array.length t.pool then begin
    let bigger = Array.make (2 * t.pool_size) dummy_event in
    Array.blit t.pool 0 bigger 0 t.pool_size;
    t.pool <- bigger
  end;
  t.pool.(t.pool_size) <- ev;
  t.pool_size <- t.pool_size + 1
  end

let note_scheduled t =
  if Tm.is_on () then begin
    Tm.Counter.incr m_scheduled;
    Tm.Gauge.set m_depth (float_of_int (Event_queue.size t.queue))
  end

let check_at t at =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is in the past (now %g)" at
         t.now)

let schedule t ~at fire =
  check_at t at;
  let handle = { cancelled = false } in
  Event_queue.push t.queue ~time:at (alloc_event t fire handle);
  note_scheduled t;
  handle

let schedule_unit t ~at fire =
  check_at t at;
  Event_queue.push t.queue ~time:at (alloc_event t fire no_handle);
  note_scheduled t

let schedule_after t ~delay fire =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.now +. delay) fire

let schedule_after_unit t ~delay fire =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_unit t ~at:(t.now +. delay) fire

let cancel handle = handle.cancelled <- true
let is_cancelled handle = handle.cancelled

type stop_reason = Queue_empty | Horizon_reached | Budget_exhausted | Stopped

exception Stop

let stop _t = raise Stop

let run ?(until = infinity) ?(max_events = max_int) t =
  t.horizon <- until;
  let reason = ref Queue_empty in
  (try
     let continue = ref true in
     while !continue do
       if Event_queue.is_empty t.queue then begin
         reason := Queue_empty;
         continue := false
       end
       else begin
         let time = Event_queue.top_time t.queue in
         if time > until then begin
           (* Leave it queued for a later resumed run and stop. *)
           t.now <- until;
           reason := Horizon_reached;
           continue := false
         end
         else begin
           let ev = Event_queue.pop_exn t.queue in
           if ev.handle.cancelled then begin
             recycle t ev;
             if Tm.is_on () then Tm.Counter.incr m_discarded
           end
           else begin
             t.now <- time;
             t.processed <- t.processed + 1;
             if Tm.is_on () then Tm.Counter.incr m_fired;
             let fire = ev.fire in
             recycle t ev;
             fire ();
             if t.processed >= max_events then begin
               reason := Budget_exhausted;
               continue := false
             end
           end
         end
       end
     done
   with Stop -> reason := Stopped);
  !reason
