(** Discrete-event simulation engine: thunks scheduled at absolute times,
    O(1) timer cancellation, deterministic processing order. *)

type t
type handle

val create : unit -> t

val set_pooling : bool -> unit
(** Toggle event-record recycling through the per-engine freelist. Off
    by default (or set [EBRC_POOL=1]): recycled records are tenured,
    so storing each event's young closure into them pays a write
    barrier and promotes the closure, which measured slower than
    letting records die in the minor heap. Kept for A/B allocation
    measurements. Flip only between simulations. *)

val now : t -> float
val processed : t -> int
val pending : t -> int

val schedule : t -> at:float -> (unit -> unit) -> handle
(** Raises if [at] is in the past. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle

val schedule_unit : t -> at:float -> (unit -> unit) -> unit
(** Like {!schedule} for events that are never cancelled: shares one
    sentinel handle and recycles event records through the engine's
    freelist, so steady-state scheduling allocates nothing. *)

val schedule_after_unit : t -> delay:float -> (unit -> unit) -> unit

val cancel : handle -> unit
(** O(1); the event is discarded lazily when popped. *)

val is_cancelled : handle -> bool

type stop_reason = Queue_empty | Horizon_reached | Budget_exhausted | Stopped

val stop : t -> 'a
(** Abort the current [run] from inside an event handler. *)

val run : ?until:float -> ?max_events:int -> t -> stop_reason
(** Drain the queue until empty, the time horizon, or the event budget.
    A horizon-interrupted run can be resumed with a later [until]. *)
