(** Discrete-event simulation engine: thunks scheduled at absolute times,
    O(1) timer cancellation, deterministic processing order. *)

type handle
type event

type lane
(** A FIFO fast lane; see below. *)

type t = private {
  queue : event Event_queue.t;
  mutable now : float;
  mutable processed : int;
  mutable horizon : float;
  mutable pool : event array;
  mutable pool_size : int;
  mutable lanes : lane array;
  mutable n_lanes : int;
  wheel : handle Timing_wheel.t;
  use_wheel : bool;
  mutable advance_hook : float -> unit;
  mutable has_hook : bool;
  mutable sampler : float -> unit;
  mutable next_sample : float;
  mutable sample_period : float;
}
(** Exposed [private] (precedent: {!Timing_wheel.t}) so per-packet
    callers can read the clock as a direct field load
    ([eng.Engine.now]): without flambda a cross-module call cannot be
    inlined, and the simulator reads the clock several times per
    event. [private] keeps every field read-only outside this module —
    all mutation still goes through the API. *)

val create : unit -> t

val set_wheel : bool -> unit
(** A/B toggle for event core v3 (default on; set [EBRC_WHEEL=0] to
    disable). With the wheel on, every bounded-horizon event rides a
    two-level hierarchical {!Timing_wheel} and the binary heap is
    demoted to overflow/far-future duty; FIFO lanes are subsumed. The
    wheel draws tie-break tickets from the heap's sequence counter and
    extracts by exact (time, seq), so all modes fire the same events
    in the same order with identical telemetry counters — results are
    bit-identical. Sampled once per engine at {!create}: flip only
    between engine creations. *)

val wheel_enabled : unit -> bool

val set_pooling : bool -> unit
(** Toggle event-record recycling through the per-engine freelist. Off
    by default (or set [EBRC_POOL=1]): recycled records are tenured,
    so storing each event's young closure into them pays a write
    barrier and promotes the closure, which measured slower than
    letting records die in the minor heap. Kept for A/B allocation
    measurements. Flip only between simulations. *)

val now : t -> float
val processed : t -> int
val pending : t -> int

val set_advance_hook : t -> (float -> unit) option -> unit
(** Install (or clear) a continuous-state advance hook: called with the
    event's time immediately before every live event fires, after the
    clock has advanced to it. Used by the hybrid packet/fluid
    bottleneck to integrate the fluid background up to each packet
    event. The hook must not schedule, cancel, or mutate engine state —
    it exists to advance co-simulated continuous state, so installing
    one whose effects are invisible to the event population leaves the
    run bit-identical (the unused-hook cost is one branch per event). *)

val set_sampler : t -> period:float -> (float -> unit) -> unit
(** Install a sim-time telemetry sampler: whenever a live event's time
    reaches the next multiple-of-[period] boundary past the install
    time, the sampler is called once with that boundary (before the
    event's hook and thunk run), and boundaries the event jumped over
    are skipped — one sample per crossing event. Because boundaries
    are pure functions of install time and event times, the sample
    sequence is deterministic and independent of pool scheduling,
    which is what makes sim-time-cadenced telemetry streams
    [-j1]-vs-[-jN] byte-identical. The sampler must not schedule or
    cancel events (it observes; it does not participate — and it draws
    no tie-break tickets, so installing one never perturbs the run).
    Cost when no boundary is crossed: one float compare per event.
    Raises [Invalid_argument] unless [period > 0] and finite. *)

val clear_sampler : t -> unit

val schedule : t -> at:float -> (unit -> unit) -> handle
(** Raises [Invalid_argument] if [at] is in the past or NaN. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle
(** Raises [Invalid_argument] if [delay] is negative or NaN — a
    negative delay would otherwise schedule into the simulated past.
    The contract holds identically on the wheel and heap paths; the
    error message names which scheduler rejected the delay. *)

val schedule_unit : t -> at:float -> (unit -> unit) -> unit
(** Like {!schedule} for events that are never cancelled: shares one
    sentinel handle and recycles event records through the engine's
    freelist, so steady-state scheduling allocates nothing. *)

val schedule_after_unit : t -> delay:float -> (unit -> unit) -> unit

val cancel : handle -> unit
(** O(1); the event is discarded lazily when popped. *)

val is_cancelled : handle -> bool

(** {2 FIFO fast lanes}

    Event streams that are provably time-ordered and never cancelled —
    link service completions, constant-propagation-delay deliveries,
    fixed-delay feedback paths — can bypass the binary heap through a
    lane: a growable ring with O(1) push/pop. The run loop k-way-merges
    lane heads with the heap top by (time, seq), and lane pushes draw
    tie-break tickets from the heap's own sequence counter, so the
    merged fire order is bit-identical to a pure-heap run.

    With the wheel enabled ({!set_wheel}) lanes are subsumed: a lane
    still enforces its FIFO contract, but its events ride the wheel and
    the lane scan vanishes from the run loop. {!lane_depth} is then
    always 0. *)

val set_fast_lanes : bool -> unit
(** A/B toggle (default on; set [EBRC_LANES=0] to disable). With lanes
    off, {!lane_push} falls back to a plain heap push that consumes
    the same sequence ticket — same fire order, same telemetry
    counters. Flip only between simulations. *)

val fast_lanes_enabled : unit -> bool

val lane : t -> lane
(** Register a new FIFO lane on this engine. *)

val lane_push : lane -> at:float -> (unit -> unit) -> unit
(** Append an event to the lane. Raises [Invalid_argument] if [at] is
    in the past, NaN, or below the lane's newest entry (the caller's
    FIFO proof is violated). *)

val lane_push_after : lane -> delay:float -> (unit -> unit) -> unit
(** [lane_push_after ln ~delay fire] is exactly
    [lane_push ln ~at:(now t +. delay) fire] — same float arithmetic,
    so the schedule is bit-identical — minus one cross-module [now]
    call on a very hot path. *)

val lane_depth : lane -> int

type stop_reason = Queue_empty | Horizon_reached | Budget_exhausted | Stopped

val stop : t -> 'a
(** Abort the current [run] from inside an event handler. *)

(** {2 Watchdog budgets}

    Opt-in guards for hung or runaway simulations: a sim-time budget
    bounds how far simulated time may advance within one [run] call,
    and a wall-clock budget bounds real elapsed time (checked every
    1024 events). Exceeding either raises {!Budget_exceeded}; the
    engine is left in a consistent state — [now] at the last fired
    event, [processed] accurate — so partial statistics can be
    salvaged. Budgets never perturb a run that stays within them, so
    they are orchestration guards, not simulation parameters (and are
    deliberately excluded from the result-cache key). *)

type budget_kind = Sim_time | Wall_clock

exception
  Budget_exceeded of {
    kind : budget_kind;
    budget : float;  (** the configured budget, seconds *)
    at : float;
        (** [Sim_time]: the sim time of the event that would have
            exceeded the budget; [Wall_clock]: elapsed wall seconds *)
    events : int;    (** events processed when the budget tripped *)
  }

val set_sim_budget : float option -> unit
(** Process-wide default sim-time budget per [run] call, used when the
    call passes no explicit [?sim_budget] (env default:
    [EBRC_SIM_BUDGET]). [None] disables. Raises [Invalid_argument] on
    non-positive budgets. *)

val set_wall_budget : float option -> unit
(** Same for the wall-clock budget ([EBRC_WALL_BUDGET]). *)

val run :
  ?until:float -> ?max_events:int -> ?sim_budget:float ->
  ?wall_budget:float -> t -> stop_reason
(** Drain the queue until empty, the time horizon, or the event budget.
    A horizon-interrupted run can be resumed with a later [until].
    [?sim_budget]/[?wall_budget] override the process-wide watchdog
    defaults for this call; see {!Budget_exceeded}. *)
