(** Bounded-memory time-series recorder for simulation observables.

    When the buffer fills, every other retained sample is dropped and
    the sampling stride doubles, keeping a uniform-in-time skeleton of
    the trajectory in constant memory. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 samples; at least 8. *)

val record : t -> time:float -> value:float -> unit

val length : t -> int
val stride : t -> int
(** Current decimation stride (1 until the first overflow). *)

val times : t -> float array
val values : t -> float array
val to_pairs : t -> (float * float) array

val time_average : t -> float
(** Time-average under sample-and-hold interpolation. nan contract:
    [nan] when empty; a single sample returns its value (a degenerate
    but well-defined average); [nan] when all timestamps coincide
    (zero total duration, the average is 0/0). *)

val slope : t -> float
(** Least-squares slope of value over time. nan contract: [nan] for
    fewer than 2 samples, and [nan] when every timestamp is identical
    (vertical fit, zero time variance) — callers must treat [nan] as
    "no trend measurable", never as 0. *)

val growth_linearity : t -> float
(** Ratio of the second-half slope to the first-half slope: 1 for
    linear growth, below 1 for concave (sub-linear) growth — the
    paper's Section-IV-B conjecture about large TCP windows. nan
    contract: [nan] for fewer than 8 samples (each half needs a
    meaningful fit), when either half's slope is [nan] (e.g. constant
    timestamps), or when the first-half slope is exactly 0 (the ratio
    would divide by zero). *)
