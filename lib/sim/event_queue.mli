(** Binary min-heap of timestamped events with stable FIFO tie-breaking,
    so simultaneous events are processed in schedule order and runs are
    deterministic. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable payloads : Obj.t array;
  mutable size : int;
  mutable next_seq : int;
}
(** Exposed concrete — and not [private] — for the two in-library
    consumers on the per-event path: the engine's run loop peeks
    [size]/[times.(0)]/[seqs.(0)] as direct loads, and
    {!Timing_wheel.try_push} draws a tie-break ticket inline (a load
    and an increment of [next_seq], exactly what {!take_seq} does)
    instead of paying a cross-module call per scheduled event. Treat
    the fields as read-only everywhere else; [payloads] holds [Obj.t]
    by design (see the implementation) and must never be touched
    outside this module. *)

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** Raises on NaN time. *)

val take_seq : 'a t -> int
(** Allocate the next FIFO tie-break ticket without pushing. External
    schedulers (Engine fast lanes) that merge with this queue by
    (time, seq) take tickets here so the merged pop order is exactly
    the order a pure-heap run would produce. *)

val peek_time : 'a t -> float option

val top_time : 'a t -> float
(** Time of the earliest event, without allocating. Raises on an empty
    queue — check {!is_empty} first. *)

val top_seq : 'a t -> int
(** Tie-break ticket of the earliest event. Raises on an empty queue. *)

val pop : 'a t -> (float * 'a) option

val pop_exn : 'a t -> 'a
(** Pop the earliest payload without allocating (its time is
    [top_time] just before the call). Raises on an empty queue. *)

val clear : 'a t -> unit
