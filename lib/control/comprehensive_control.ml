(* The comprehensive control (paper Eq. (4)): like the basic control, but
   within a loss-free interval the send rate increases once the open
   interval theta(t) exceeds the threshold (thetahat_n - W_n)/w_1, i.e.
   whenever counting the open interval raises the estimator.

   The key quantity per cycle is the duration S_n. Writing U_n for the
   time spent at the initial rate f(1/thetahat_n) before the rate starts
   growing, the paper derives (proof of Prop. 3), for SQRT and
   PFTK-simplified:

     S_n = theta_n / f(1/thetahat_n) - V_n 1{thetahat_{n+1} > thetahat_n}

   where V_n has the closed form implemented below. For arbitrary f we
   integrate the growth ODE d theta/dt = f(1/(w1 theta + W_n)):
   adaptively (Dormand-Prince 5(4), the default ODE engine) or with the
   legacy fixed-step RK4 kept for A/B validation.

   All engines are exposed; tests cross-validate them. *)

module Formula = Ebrc_formulas.Formula
module Loss_interval = Ebrc_estimator.Loss_interval
module Loss_process = Ebrc_lossproc.Loss_process
module Welford = Ebrc_stats.Welford
module Cov_acc = Ebrc_stats.Cov_acc
module Ode = Ebrc_numerics.Ode

type engine = Closed_form | Ode_integration | Ode_fixed_step

(* V_n of Proposition 3. thetahat1 = thetahat_{n+1}, thetahat0 =
   thetahat_n. Only valid for SQRT (c2 q terms vanish) and
   PFTK-simplified. *)
let v_n ~formula ~w1 ~thetahat0 ~thetahat1 =
  let c1r = Formula.c1 formula *. Formula.rtt formula in
  let c2q =
    match Formula.kind formula with
    | Formula.Sqrt -> 0.0
    | Formula.Pftk_simplified -> Formula.c2 formula *. Formula.rto formula
    | Formula.Pftk_standard | Formula.Aimd _ ->
        invalid_arg "Comprehensive_control.v_n: closed form needs SQRT or \
                     PFTK-simplified"
  in
  let pow x e = x ** e in
  let term1 = -2.0 *. c1r *. (pow thetahat1 0.5 -. pow thetahat0 0.5) in
  let term2 = 2.0 *. c2q *. (pow thetahat1 (-0.5) -. pow thetahat0 (-0.5)) in
  let term3 =
    64.0 /. 5.0 *. c2q *. (pow thetahat1 (-2.5) -. pow thetahat0 (-2.5))
  in
  let term4 =
    (thetahat1 -. thetahat0) /. Formula.eval formula (1.0 /. thetahat0)
  in
  (term1 +. term2 +. term3 +. term4) /. w1

(* Duration of cycle n via the closed form. *)
let cycle_duration_closed ~formula ~estimator ~theta =
  let thetahat0 = Loss_interval.estimate estimator in
  let base = theta /. Formula.eval formula (1.0 /. thetahat0) in
  (* thetahat_{n+1} is the estimate after recording theta; compute it on
     a copy so the caller controls when the estimator advances. *)
  let probe = Loss_interval.copy estimator in
  Loss_interval.record probe theta;
  let thetahat1 = Loss_interval.estimate probe in
  if thetahat1 > thetahat0 then
    let w1 = Loss_interval.first_weight estimator in
    base -. v_n ~formula ~w1 ~thetahat0 ~thetahat1
  else base

(* Duration of cycle n by integrating the rate-growth ODE. Valid for any
   formula f. theta(t) counts packets since the last loss event; the rate
   is f(1/thetahat_n) until theta(t) reaches the threshold, then grows as
   d theta/dt = f(1/(w1 theta + W_n)). *)
let cycle_duration_ode ?(step = 1e-3) ~formula ~estimator ~theta () =
  let thetahat0 = Loss_interval.estimate estimator in
  let x0 = Formula.eval formula (1.0 /. thetahat0) in
  let threshold = Loss_interval.open_interval_threshold estimator in
  if theta <= threshold then theta /. x0
  else begin
    let u_n = threshold /. x0 in
    let w1 = Loss_interval.first_weight estimator in
    let w_n = Loss_interval.tail_weighted_sum estimator in
    let deriv _t y = Formula.eval formula (1.0 /. ((w1 *. y) +. w_n)) in
    let growth_time =
      Ode.time_to_reach ~step deriv ~y0:threshold ~target:theta
    in
    u_n +. growth_time
  end

(* Memo cache for the adaptive growth-time integration. The growth time
   is a pure function of the derivative and the integration bounds,
   which are fully determined by the formula's constants, (w1, W_n), the
   threshold (thetahat_n = w1 * threshold + W_n) and theta — so repeated
   replications over the same deterministic loss sequence never
   re-integrate a cycle. Per-domain tables (Domain.DLS) keep parallel
   sweeps race-free; each table is bounded and reset when full. *)
type memo_key = {
  kind : Formula.kind;
  c1 : float;
  c2 : float;
  rtt : float;
  rto : float;
  w1 : float;
  w_n : float;
  threshold : float;
  theta : float;
  rtol : float;
}

let memo_max_entries = 65_536

let memo_table : (memo_key, float) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

(* Duration of cycle n with the adaptive Dormand-Prince engine and the
   per-(formula, estimator-state) memo cache; valid for any formula. *)
let cycle_duration_ode_adaptive ?(rtol = Ode.default_rtol)
    ?(atol = Ode.default_atol) ~formula ~estimator ~theta () =
  let thetahat0 = Loss_interval.estimate estimator in
  let x0 = Formula.eval formula (1.0 /. thetahat0) in
  let threshold = Loss_interval.open_interval_threshold estimator in
  if theta <= threshold then theta /. x0
  else begin
    let u_n = threshold /. x0 in
    let w1 = Loss_interval.first_weight estimator in
    let w_n = Loss_interval.tail_weighted_sum estimator in
    let key =
      {
        kind = Formula.kind formula;
        c1 = Formula.c1 formula;
        c2 = Formula.c2 formula;
        rtt = Formula.rtt formula;
        rto = Formula.rto formula;
        w1;
        w_n;
        threshold;
        theta;
        rtol;
      }
    in
    let tbl = Domain.DLS.get memo_table in
    let growth_time =
      match Hashtbl.find_opt tbl key with
      | Some t -> t
      | None ->
          let deriv _t y = Formula.eval formula (1.0 /. ((w1 *. y) +. w_n)) in
          let t =
            Ode.time_to_reach_adaptive ~rtol ~atol deriv ~y0:threshold
              ~target:theta
          in
          if Hashtbl.length tbl >= memo_max_entries then Hashtbl.reset tbl;
          Hashtbl.add tbl key t;
          t
    in
    u_n +. growth_time
  end

type result = {
  throughput : float;
  normalized : float;
  p_observed : float;
  cov_theta_thetahat : float;
  cov_rate_duration : float;
  cv_thetahat : float;
  mean_thetahat : float;
  cycles : int;
}

let simulate ?(engine = Closed_form) ?(warmup_cycles = 0) ?(ode_step = 1e-3)
    ?(ode_rtol = Ode.default_rtol) ~formula ~estimator ~process ~cycles () =
  if cycles < 2 then
    invalid_arg "Comprehensive_control.simulate: need >= 2 cycles";
  (match (engine, Formula.kind formula) with
  | Closed_form, (Formula.Sqrt | Formula.Pftk_simplified) -> ()
  | Closed_form, (Formula.Pftk_standard | Formula.Aimd _) ->
      invalid_arg
        "Comprehensive_control.simulate: closed form requires SQRT or \
         PFTK-simplified; use Ode_integration"
  | (Ode_integration | Ode_fixed_step), _ -> ());
  let l = Loss_interval.window estimator in
  for _ = 1 to l + warmup_cycles do
    Loss_interval.record estimator (Loss_process.next process)
  done;
  let total_packets = ref 0.0 and total_time = ref 0.0 in
  let c1 = Cov_acc.create () in
  let c2 = Cov_acc.create () in
  let w_thetahat = Welford.create () in
  for _ = 1 to cycles do
    let thetahat = Loss_interval.estimate estimator in
    let theta = Loss_process.next process in
    let s =
      match engine with
      | Closed_form -> cycle_duration_closed ~formula ~estimator ~theta
      | Ode_integration ->
          cycle_duration_ode_adaptive ~rtol:ode_rtol ~formula ~estimator
            ~theta ()
      | Ode_fixed_step ->
          cycle_duration_ode ~step:ode_step ~formula ~estimator ~theta ()
    in
    let x_n = Formula.eval formula (1.0 /. thetahat) in
    total_packets := !total_packets +. theta;
    total_time := !total_time +. s;
    Cov_acc.add c1 theta thetahat;
    Cov_acc.add c2 x_n s;
    Welford.add w_thetahat thetahat;
    Loss_interval.record estimator theta
  done;
  let throughput = !total_packets /. !total_time in
  let mean_theta = !total_packets /. float_of_int cycles in
  let p_observed = 1.0 /. mean_theta in
  {
    throughput;
    normalized = throughput /. Formula.eval formula p_observed;
    p_observed;
    cov_theta_thetahat = Cov_acc.covariance c1;
    cov_rate_duration = Cov_acc.covariance c2;
    cv_thetahat = Welford.coefficient_of_variation w_thetahat;
    mean_thetahat = Welford.mean w_thetahat;
    cycles;
  }
