(* The basic control (paper Eq. (3)): between loss events the send rate
   is held at X(t) = f(1/thetahat_n). Given a driving loss-interval
   process {theta_n}, each cycle n:

     X_n = f(1/thetahat_n)        rate set at loss event n
     S_n = theta_n / X_n          duration until the next loss event
                                  (theta_n packets sent at rate X_n)

   and by the Palm inversion formula the long-run throughput is

     E[X(0)] = E[theta_0] / E[theta_0 / f(1/thetahat_0)]   (Prop. 1).

   This module simulates the stationary cycle sequence and accumulates
   everything the paper's figures need: throughput, loss-event rate as
   seen by the source, cov[theta_0, thetahat_0] (condition C1),
   cov[X_0, S_0] (condition C2), and the variability of thetahat. *)

module Formula = Ebrc_formulas.Formula
module Loss_interval = Ebrc_estimator.Loss_interval
module Loss_process = Ebrc_lossproc.Loss_process
module Welford = Ebrc_stats.Welford
module Cov_acc = Ebrc_stats.Cov_acc
module Prng = Ebrc_rng.Prng
module Pool = Ebrc_parallel.Pool

type result = {
  throughput : float;          (* time-average send rate, packets/s *)
  normalized : float;          (* throughput / f(p_observed) *)
  p_observed : float;          (* 1 / mean observed loss-event interval *)
  cov_theta_thetahat : float;  (* cov[theta_0, thetahat_0], condition C1 *)
  cov_rate_duration : float;   (* cov[X_0, S_0], condition C2 *)
  cv_thetahat : float;         (* coefficient of variation of thetahat *)
  cv_theta : float;
  mean_thetahat : float;
  cycles : int;
  palm_mean_rate : float;      (* E0_N[X_0]: event-average of the rate *)
  rate_duration_pairs : (float * float) array;
      (* (X_n, S_n) per cycle when requested, for the (C3) diagnostic *)
}

(* Warm the estimator by feeding it [window] intervals drawn from the
   process, so measurements start at stationarity. *)
let warm_up estimator process =
  let l = Loss_interval.window estimator in
  for _ = 1 to l do
    Loss_interval.record estimator (Loss_process.next process)
  done

let simulate ?(warmup_cycles = 0) ?(collect_pairs = false) ~formula ~estimator
    ~process ~cycles () =
  if cycles < 2 then invalid_arg "Basic_control.simulate: need >= 2 cycles";
  warm_up estimator process;
  for _ = 1 to warmup_cycles do
    Loss_interval.record estimator (Loss_process.next process)
  done;
  let total_packets = ref 0.0 and total_time = ref 0.0 in
  let c1 = Cov_acc.create () in
  let c2 = Cov_acc.create () in
  let w_thetahat = Welford.create () in
  let w_theta = Welford.create () in
  let w_rate = Welford.create () in
  let pairs = if collect_pairs then Array.make cycles (0.0, 0.0) else [||] in
  for i = 1 to cycles do
    let thetahat = Loss_interval.estimate estimator in
    let theta = Loss_process.next process in
    let x = Formula.eval formula (1.0 /. thetahat) in
    let s = theta /. x in
    total_packets := !total_packets +. theta;
    total_time := !total_time +. s;
    Cov_acc.add c1 theta thetahat;
    Cov_acc.add c2 x s;
    Welford.add w_thetahat thetahat;
    Welford.add w_theta theta;
    Welford.add w_rate x;
    if collect_pairs then pairs.(i - 1) <- (x, s);
    Loss_interval.record estimator theta
  done;
  let throughput = !total_packets /. !total_time in
  let mean_theta = !total_packets /. float_of_int cycles in
  let p_observed = 1.0 /. mean_theta in
  {
    throughput;
    normalized = throughput /. Formula.eval formula p_observed;
    p_observed;
    cov_theta_thetahat = Cov_acc.covariance c1;
    cov_rate_duration = Cov_acc.covariance c2;
    cv_thetahat = Welford.coefficient_of_variation w_thetahat;
    cv_theta = Welford.coefficient_of_variation w_theta;
    mean_thetahat = Welford.mean w_thetahat;
    cycles;
    palm_mean_rate = Welford.mean w_rate;
    rate_duration_pairs = pairs;
  }

(* Monte-Carlo replication driver: [replications] independent copies of
   [simulate], each built from its own (root_seed, index) PRNG stream,
   fanned out over [jobs] domains. Replication i's stream never depends
   on how many draws the others made, and results land in slot i, so
   the returned array is bit-identical for every [jobs] — including the
   sequential [jobs = 1] run. *)
let simulate_replications ?(jobs = 1) ?(warmup_cycles = 0) ~root_seed
    ~replications ~formula ~make_estimator ~make_process ~cycles () =
  if replications < 1 then
    invalid_arg "Basic_control.simulate_replications: replications < 1";
  let one i =
    let rng = Prng.stream ~root:root_seed i in
    let process = make_process rng in
    let estimator = make_estimator i in
    simulate ~warmup_cycles ~formula ~estimator ~process ~cycles ()
  in
  if jobs <= 1 || replications < 4 then Array.init replications one
  else Pool.init (Pool.shared ~domains:jobs ()) replications one

(* Exact Proposition-1 throughput for a *given* finite trajectory of
   loss-event intervals: E[theta_0] / E[theta_0 / f(1/thetahat_0)],
   with thetahat computed by the supplied estimator over the same
   trajectory. Useful for deterministic unit tests. *)
let palm_throughput ~formula ~weights (thetas : float array) =
  let l = Array.length weights in
  let n = Array.length thetas in
  if n <= l then invalid_arg "Basic_control.palm_throughput: trajectory too short";
  let estimator = Loss_interval.create ~weights in
  for i = 0 to l - 1 do
    Loss_interval.record estimator thetas.(i)
  done;
  let num = ref 0.0 and den = ref 0.0 in
  for i = l to n - 1 do
    let thetahat = Loss_interval.estimate estimator in
    let theta = thetas.(i) in
    num := !num +. theta;
    den := !den +. (theta /. Formula.eval formula (1.0 /. thetahat));
    Loss_interval.record estimator theta
  done;
  !num /. !den
