(** The comprehensive control (paper Eq. (4)): the basic control plus a
    rate increase during long loss-free intervals, as in TFRC. Three
    cycle engines are provided: the Proposition-3 closed form (SQRT and
    PFTK-simplified only), adaptive Dormand–Prince 5(4) integration of
    the rate-growth ODE with a per-(formula, estimator-state) memo cache
    (any formula; the default ODE engine), and the legacy fixed-step RK4
    path kept for A/B validation. Tests cross-validate them. *)

type engine =
  | Closed_form
  | Ode_integration  (** adaptive Dormand–Prince 5(4), memo-cached *)
  | Ode_fixed_step  (** legacy RK4 at [ode_step], for A/B validation *)

type result = {
  throughput : float;
  normalized : float;
  p_observed : float;
  cov_theta_thetahat : float;
  cov_rate_duration : float;
  cv_thetahat : float;
  mean_thetahat : float;
  cycles : int;
}

val v_n :
  formula:Ebrc_formulas.Formula.t ->
  w1:float ->
  thetahat0:float ->
  thetahat1:float ->
  float
(** The Proposition-3 correction Vₙ; requires SQRT or PFTK-simplified. *)

val cycle_duration_closed :
  formula:Ebrc_formulas.Formula.t ->
  estimator:Ebrc_estimator.Loss_interval.t ->
  theta:float ->
  float
(** Sₙ for a cycle of θ packets via the closed form. Does not advance the
    estimator. *)

val cycle_duration_ode :
  ?step:float ->
  formula:Ebrc_formulas.Formula.t ->
  estimator:Ebrc_estimator.Loss_interval.t ->
  theta:float ->
  unit ->
  float
(** Sₙ by fixed-step RK4 integration of dθ/dt = f(1/(w₁θ + Wₙ)); works
    for any formula. Legacy engine, kept for A/B validation. *)

val cycle_duration_ode_adaptive :
  ?rtol:float ->
  ?atol:float ->
  formula:Ebrc_formulas.Formula.t ->
  estimator:Ebrc_estimator.Loss_interval.t ->
  theta:float ->
  unit ->
  float
(** Sₙ by adaptive Dormand–Prince 5(4) integration with dense-output
    root finding for the threshold crossing; works for any formula.
    Defaults: [rtol = Ode.default_rtol] (1e-6), [atol = Ode.default_atol]
    (1e-9). Growth times are memo-cached per domain, keyed on the formula
    constants, (w₁, Wₙ), threshold, θ and [rtol] — which determine the
    integral exactly — so repeated replications of identical cycles hit
    the cache; the cache is bounded and reset when full. *)

val simulate :
  ?engine:engine ->
  ?warmup_cycles:int ->
  ?ode_step:float ->
  ?ode_rtol:float ->
  formula:Ebrc_formulas.Formula.t ->
  estimator:Ebrc_estimator.Loss_interval.t ->
  process:Ebrc_lossproc.Loss_process.t ->
  cycles:int ->
  unit ->
  result
(** Monte-Carlo run of the comprehensive control, mirroring
    {!Basic_control.simulate}. *)
