(** The basic control (paper Eq. (3)): rate held at f(1/θ̂ₙ) between loss
    events. Monte-Carlo simulation of the stationary cycle sequence with
    all the observables the paper's Figures 3–6 report. *)

type result = {
  throughput : float;          (** Time-average send rate, packets/s. *)
  normalized : float;          (** throughput / f(p_observed). *)
  p_observed : float;          (** 1 / mean observed loss-event interval. *)
  cov_theta_thetahat : float;  (** cov[θ₀, θ̂₀] — condition (C1). *)
  cov_rate_duration : float;   (** cov[X₀, S₀] — condition (C2). *)
  cv_thetahat : float;         (** Coefficient of variation of θ̂. *)
  cv_theta : float;
  mean_thetahat : float;
  cycles : int;
  palm_mean_rate : float;      (** E⁰_N[X₀], the event-average rate. *)
  rate_duration_pairs : (float * float) array;
      (** (Xₙ, Sₙ) per cycle when [collect_pairs] was set — input to the
          (C3) diagnostic {!Theorems.check_c3}. Empty otherwise. *)
}

val simulate :
  ?warmup_cycles:int ->
  ?collect_pairs:bool ->
  formula:Ebrc_formulas.Formula.t ->
  estimator:Ebrc_estimator.Loss_interval.t ->
  process:Ebrc_lossproc.Loss_process.t ->
  cycles:int ->
  unit ->
  result
(** Run [cycles] loss-event cycles after warming the estimator with one
    full window (plus [warmup_cycles] extra). *)

val simulate_replications :
  ?jobs:int ->
  ?warmup_cycles:int ->
  root_seed:int ->
  replications:int ->
  formula:Ebrc_formulas.Formula.t ->
  make_estimator:(int -> Ebrc_estimator.Loss_interval.t) ->
  make_process:(Ebrc_rng.Prng.t -> Ebrc_lossproc.Loss_process.t) ->
  cycles:int ->
  unit ->
  result array
(** [replications] independent copies of {!simulate} fanned out over
    [jobs] domains (default 1). Replication [i] draws from the
    independent stream [Prng.stream ~root:root_seed i] and its result
    is stored at index [i], so the output is bit-identical for every
    [jobs]. *)

val palm_throughput :
  formula:Ebrc_formulas.Formula.t ->
  weights:float array ->
  float array ->
  float
(** Proposition-1 throughput Σθₙ / Σ(θₙ/f(1/θ̂ₙ)) computed exactly over a
    given trajectory (the first [window] entries warm the estimator). *)
