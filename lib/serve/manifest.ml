(* Canonical JSON codec for sweep manifests.

   Floats are rendered as "%h" hex strings and parsed back with
   [float_of_string], the same discipline as the result store, so a
   config survives save/load bit-exactly — which is what makes the
   content digest (Result_cache's canonical key) stable across
   processes and machines. Field order is fixed, so re-saving a loaded
   manifest is byte-identical. *)

module Scenario = Ebrc_exp.Scenario
module Result_cache = Ebrc_exp.Result_cache
module Qd = Ebrc_net.Queue_discipline
module Fault = Ebrc_net.Fault
module Formula = Ebrc_formulas.Formula
module Json = Ebrc_obs.Json

type t = { tasks : Scenario.config list }

let codec_version = "ebrc-manifest-v1"
let digest = Result_cache.digest_of_config

(* ---------------------------- encoding ---------------------------- *)

let add_float buf f =
  Buffer.add_char buf '"';
  Buffer.add_string buf (Printf.sprintf "%h" f);
  Buffer.add_char buf '"'

let add_field buf ~first name payload =
  if not !first then Buffer.add_char buf ',';
  first := false;
  Buffer.add_char buf '"';
  Buffer.add_string buf name;
  Buffer.add_string buf "\":";
  payload ()

let obj buf fields =
  let first = ref true in
  Buffer.add_char buf '{';
  List.iter (fun (name, payload) -> add_field buf ~first name payload) fields;
  Buffer.add_char buf '}'

let fint buf n () = Buffer.add_string buf (string_of_int n)
let ffloat buf f () = add_float buf f
let fbool buf b () = Buffer.add_string buf (string_of_bool b)

let fstr buf s () =
  Buffer.add_char buf '"';
  Buffer.add_string buf (Json.escape s);
  Buffer.add_char buf '"'

let add_queue buf (q : Scenario.queue_config) () =
  match q with
  | Scenario.Drop_tail { capacity } ->
      obj buf
        [ ("kind", fstr buf "droptail"); ("capacity", fint buf capacity) ]
  | Scenario.Red_auto { capacity } ->
      obj buf
        [ ("kind", fstr buf "red-auto"); ("capacity", fint buf capacity) ]
  | Scenario.Red_manual { capacity; params = p } ->
      obj buf
        [
          ("kind", fstr buf "red");
          ("capacity", fint buf capacity);
          ("min_th", ffloat buf p.Qd.min_th);
          ("max_th", ffloat buf p.max_th);
          ("max_p", ffloat buf p.max_p);
          ("wq", ffloat buf p.wq);
          ("byte_mode", fbool buf p.byte_mode);
          ("mean_pktsize", fint buf p.mean_pktsize);
          ("gentle", fbool buf p.gentle);
        ]

let add_formula buf (k : Formula.kind) () =
  match k with
  | Formula.Sqrt -> obj buf [ ("kind", fstr buf "sqrt") ]
  | Formula.Pftk_standard -> obj buf [ ("kind", fstr buf "pftk") ]
  | Formula.Pftk_simplified -> obj buf [ ("kind", fstr buf "pftk-simple") ]
  | Formula.Aimd { alpha; beta } ->
      obj buf
        [
          ("kind", fstr buf "aimd");
          ("alpha", ffloat buf alpha);
          ("beta", ffloat buf beta);
        ]

let add_window buf (w : Fault.window) () =
  obj buf
    [
      ("start", ffloat buf w.Fault.start);
      ("length", ffloat buf w.length);
      ("period", ffloat buf w.period);
    ]

let add_opt buf add = function
  | None -> fun () -> Buffer.add_string buf "null"
  | Some v -> add v

let add_faults buf (fc : Fault.config) () =
  obj buf
    [
      ( "flaps",
        add_opt buf
          (fun (f : Fault.flaps) () ->
            obj buf
              [
                ("first_down", ffloat buf f.Fault.first_down);
                ("down_mean", ffloat buf f.down_mean);
                ("up_mean", ffloat buf f.up_mean);
                ("flap_jitter", ffloat buf f.flap_jitter);
                ("park", fbool buf f.park);
              ])
          fc.Fault.flaps );
      ( "blackouts",
        fun () ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i w ->
              if i > 0 then Buffer.add_char buf ',';
              add_window buf w ())
            fc.blackouts;
          Buffer.add_char buf ']' );
      ( "spike",
        add_opt buf
          (fun (w, d) () ->
            obj buf [ ("window", add_window buf w); ("delay", ffloat buf d) ])
          fc.spike );
      ( "reorder",
        add_opt buf
          (fun (w, p, h) () ->
            obj buf
              [
                ("window", add_window buf w);
                ("prob", ffloat buf p);
                ("hold", ffloat buf h);
              ])
          fc.reorder );
      ( "duplicate",
        add_opt buf
          (fun (w, p) () ->
            obj buf [ ("window", add_window buf w); ("prob", ffloat buf p) ])
          fc.duplicate );
    ]

let add_background buf (bg : Scenario.background) () =
  obj buf
    [
      ("bg_flows", fint buf bg.Scenario.bg_flows);
      ("bg_share_cap", ffloat buf bg.bg_share_cap);
      ("bg_resolution", ffloat buf bg.bg_resolution);
    ]

let add_task buf (c : Scenario.config) =
  obj buf
    [
      ("seed", fint buf c.Scenario.seed);
      ("bottleneck_bps", ffloat buf c.bottleneck_bps);
      ("one_way_delay", ffloat buf c.one_way_delay);
      ("queue", add_queue buf c.queue);
      ("packet_size", fint buf c.packet_size);
      ("n_tfrc", fint buf c.n_tfrc);
      ("n_tcp", fint buf c.n_tcp);
      ("with_probe", fbool buf c.with_probe);
      ("tfrc_l", fint buf c.tfrc_l);
      ("formula", add_formula buf c.tfrc_formula_kind);
      ("comprehensive", fbool buf c.tfrc_comprehensive);
      ("conform", fbool buf c.tfrc_conform_to_analysis);
      ("reverse_jitter", ffloat buf c.reverse_jitter);
      ("duration", ffloat buf c.duration);
      ("warmup", ffloat buf c.warmup);
      ("faults", add_opt buf (add_faults buf) c.faults);
      ("background", add_opt buf (add_background buf) c.background);
    ]

let task_to_json c =
  let buf = Buffer.create 512 in
  add_task buf c;
  Buffer.contents buf

let to_json { tasks } =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":1,\"codec\":\"%s\",\"tasks\":[" codec_version);
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      add_task buf c)
    tasks;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* ---------------------------- decoding ---------------------------- *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> fail "missing field %S" name

let get_int name j =
  match Json.to_int (member name j) with
  | Some n -> n
  | None -> fail "field %S: expected an integer" name

let get_bool name j =
  match member name j with
  | Json.Bool b -> b
  | _ -> fail "field %S: expected a boolean" name

let get_str name j =
  match Json.to_string (member name j) with
  | Some s -> s
  | None -> fail "field %S: expected a string" name

(* Hex-float strings; plain JSON numbers are also accepted so
   hand-written manifests work. *)
let get_float name j =
  match member name j with
  | Json.Str s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> fail "field %S: unparsable float %S" name s)
  | Json.Num f -> f
  | _ -> fail "field %S: expected a float" name

let get_opt name j f =
  match Json.member name j with
  | None | Some Json.Null -> None
  | Some v -> Some (f v)

let window_of j : Fault.window =
  {
    Fault.start = get_float "start" j;
    length = get_float "length" j;
    period = get_float "period" j;
  }

let queue_of j : Scenario.queue_config =
  match get_str "kind" j with
  | "droptail" -> Scenario.Drop_tail { capacity = get_int "capacity" j }
  | "red-auto" -> Scenario.Red_auto { capacity = get_int "capacity" j }
  | "red" ->
      Scenario.Red_manual
        {
          capacity = get_int "capacity" j;
          params =
            {
              Qd.min_th = get_float "min_th" j;
              max_th = get_float "max_th" j;
              max_p = get_float "max_p" j;
              wq = get_float "wq" j;
              byte_mode = get_bool "byte_mode" j;
              mean_pktsize = get_int "mean_pktsize" j;
              gentle = get_bool "gentle" j;
            };
        }
  | k -> fail "unknown queue kind %S" k

let formula_of j : Formula.kind =
  match get_str "kind" j with
  | "sqrt" -> Formula.Sqrt
  | "pftk" -> Formula.Pftk_standard
  | "pftk-simple" -> Formula.Pftk_simplified
  | "aimd" ->
      Formula.Aimd { alpha = get_float "alpha" j; beta = get_float "beta" j }
  | k -> fail "unknown formula kind %S" k

let faults_of j : Fault.config =
  {
    Fault.flaps =
      get_opt "flaps" j (fun f ->
          {
            Fault.first_down = get_float "first_down" f;
            down_mean = get_float "down_mean" f;
            up_mean = get_float "up_mean" f;
            flap_jitter = get_float "flap_jitter" f;
            park = get_bool "park" f;
          });
    blackouts =
      (match member "blackouts" j with
      | Json.List ws -> List.map window_of ws
      | _ -> fail "field \"blackouts\": expected a list");
    spike =
      get_opt "spike" j (fun s ->
          (window_of (member "window" s), get_float "delay" s));
    reorder =
      get_opt "reorder" j (fun s ->
          (window_of (member "window" s), get_float "prob" s,
           get_float "hold" s));
    duplicate =
      get_opt "duplicate" j (fun s ->
          (window_of (member "window" s), get_float "prob" s));
  }

let background_of j : Scenario.background =
  {
    Scenario.bg_flows = get_int "bg_flows" j;
    bg_share_cap = get_float "bg_share_cap" j;
    bg_resolution = get_float "bg_resolution" j;
  }

let config_of j : Scenario.config =
  {
    Scenario.seed = get_int "seed" j;
    bottleneck_bps = get_float "bottleneck_bps" j;
    one_way_delay = get_float "one_way_delay" j;
    queue = queue_of (member "queue" j);
    packet_size = get_int "packet_size" j;
    n_tfrc = get_int "n_tfrc" j;
    n_tcp = get_int "n_tcp" j;
    with_probe = get_bool "with_probe" j;
    tfrc_l = get_int "tfrc_l" j;
    tfrc_formula_kind = formula_of (member "formula" j);
    tfrc_comprehensive = get_bool "comprehensive" j;
    tfrc_conform_to_analysis = get_bool "conform" j;
    reverse_jitter = get_float "reverse_jitter" j;
    duration = get_float "duration" j;
    warmup = get_float "warmup" j;
    faults = get_opt "faults" j faults_of;
    background = get_opt "background" j background_of;
  }

let task_of_json s =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> ( try Ok (config_of j) with Bad m -> Error m)

let of_json s =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> (
      try
        (match Json.to_int (member "schema" j) with
        | Some 1 -> ()
        | _ -> fail "unsupported manifest schema");
        (match get_str "codec" j with
        | v when v = codec_version -> ()
        | v -> fail "unsupported manifest codec %S (want %S)" v codec_version);
        match member "tasks" j with
        | Json.List ts -> Ok { tasks = List.map config_of ts }
        | _ -> fail "field \"tasks\": expected a list"
      with Bad m -> Error m)

(* ------------------------------- io ------------------------------- *)

let save ~path m =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json m));
  Sys.rename tmp path

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_json s
  | exception Sys_error msg -> Error msg

(* ------------------------------ demo ------------------------------ *)

let demo ?(seed0 = 42) ?(duration = 10.0) ~tasks () =
  let task i =
    let queue =
      if i mod 2 = 0 then Scenario.Drop_tail { capacity = 25 }
      else Scenario.Red_auto { capacity = 0 }
    in
    {
      Scenario.default_config with
      seed = seed0 + i;
      bottleneck_bps = 5e6;
      queue;
      n_tfrc = 1;
      n_tcp = 1;
      with_probe = false;
      duration;
      warmup = duration /. 5.0;
    }
  in
  { tasks = List.init (max 0 tasks) task }
