(** The sweep-service worker loop behind [ebrc worker]: lease tasks
    from a {!Task_queue}, run each scenario crash-isolated, publish the
    result into the shared content-addressed store, and stream [task]
    lifecycle records for `ebrc status` / the serve watcher.

    Workers are horizontally scalable and interchangeable: any number
    of processes (on any machine sharing the queue and store
    directories) can point at the same queue. Identity of work is the
    config digest, publication is atomic and deterministic, so a task
    run twice — e.g. around an expired lease, or when a run outlives
    its lease [ttl] — wastes time but publishes identical bytes. *)

type config = {
  queue_dir : string;
  store_dir : string;
  worker_id : string;  (** recorded in lease files and failure records *)
  ttl : float;
      (** lease lifetime, seconds. A worker SIGKILL'd mid-task delays
          that one task by at most [ttl] before another worker
          reclaims it. Should exceed the longest expected single run;
          a run that outlives its lease is merely re-runnable, not
          wrong. *)
  retries : int;  (** extra in-process attempts per crashing task *)
  poll : float;  (** rescan sleep when everything pending is leased *)
  max_tasks : int option;  (** stop after this many executed tasks *)
  exit_when_drained : bool;
      (** return once the queue has no task files left; otherwise keep
          polling for new work forever *)
}

val default : queue_dir:string -> config
(** [worker_id] = ["w<pid>"], [ttl] = 300s, [retries] = 1,
    [poll] = 0.2s, no task cap, [exit_when_drained = true];
    [store_dir] = [<queue_dir>/store]. *)

type outcome = {
  ran : int;  (** tasks simulated and published by this worker *)
  cached : int;
      (** tasks completed by store lookup alone (already published —
          the resume path) *)
  failed : int;  (** tasks this worker marked terminally failed *)
}

val run : config -> outcome
(** Run the lease/execute/publish loop until the queue drains (or
    forever, per [exit_when_drained]). Startup reclaims stale store
    tmp files ({!Ebrc_exp.Result_cache.gc_tmp}, age threshold
    [2 × ttl]). Never raises on task failure — crashing tasks are
    retried then recorded under [failed/], with a {!Flight} dump
    (digest, attempt count, chaos seed) when the recorder is armed.

    Publication is read-back verified: after [store_to] the record
    must load and key-verify from the store; a publication that never
    verifies (full disk, injected chaos faults) first hands the task
    back for a clean re-run, then fails it terminally — it is never
    "completed" with an empty store slot. *)
