(* Manifest → queue → worker fleet → watch; see the .mli. *)

module Rc = Ebrc_exp.Result_cache
module Status = Ebrc_obs.Status

type config = {
  manifest_path : string;
  queue_dir : string;
  store_dir : string;
  workers : int;
  ttl : float;
  retries : int;
  poll : float;
  quiet : bool;
}

let default ~manifest_path =
  let queue_dir = manifest_path ^ ".queue" in
  {
    manifest_path;
    queue_dir;
    store_dir = Filename.concat queue_dir "store";
    workers = 2;
    ttl = 300.0;
    retries = 1;
    poll = 0.25;
    quiet = false;
  }

type progress = {
  total : int;
  published : int;
  queued : int;
  leased : int;
  failed : int;
}

(* Distinct digests: a manifest may repeat a config; identity is the
   digest, so duplicates collapse to one task. *)
let distinct_tasks (m : Manifest.t) =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun cfg ->
      let d = Manifest.digest cfg in
      if Hashtbl.mem seen d then false
      else begin
        Hashtbl.add seen d ();
        true
      end)
    m.Manifest.tasks

let progress ~store_dir ~queue m =
  let tasks = distinct_tasks m in
  let published =
    List.length (List.filter (fun c -> Rc.published ~dir:store_dir c) tasks)
  in
  {
    total = List.length tasks;
    published;
    queued = List.length (Task_queue.pending queue);
    leased = Task_queue.leased queue;
    failed = List.length (Task_queue.failed queue);
  }

let plan ~store_dir ~queue m =
  ignore (Rc.gc_tmp store_dir);
  let outstanding = ref 0 in
  List.iter
    (fun cfg ->
      if not (Rc.published ~dir:store_dir cfg) then begin
        incr outstanding;
        Task_queue.enqueue queue ~digest:(Manifest.digest cfg)
          ~spec:(Manifest.task_to_json cfg)
      end)
    (distinct_tasks m);
  !outstanding

(* ---------------------------- worker fleet ------------------------ *)

let spawn_worker cfg ~queue ~index =
  let stream =
    Filename.concat (Task_queue.streams_dir queue)
      (Printf.sprintf "worker-%d.jsonl" index)
  in
  (* Fresh stream per serve invocation: a stale finished stream would
     read as a live worker's. *)
  (try Sys.remove stream with Sys_error _ -> ());
  let argv =
    [|
      Sys.executable_name;
      "worker";
      cfg.queue_dir;
      "--store"; cfg.store_dir;
      "--id"; Printf.sprintf "serve-w%d" index;
      "--ttl"; string_of_float cfg.ttl;
      "--retries"; string_of_int cfg.retries;
      "--stream"; stream;
    |]
  in
  Unix.create_process Sys.executable_name argv Unix.stdin Unix.stdout
    Unix.stderr

let reap pids =
  List.filter
    (fun pid ->
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> true
      | _ -> false
      | exception Unix.Unix_error _ -> false)
    pids

(* Merge whatever the workers have streamed so far into one fleet
   view; tolerant of torn tails and missing files by construction. *)
let fleet_view queue =
  let dir = Task_queue.streams_dir queue in
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | entries ->
      let views =
        Array.to_list entries
        |> List.filter (fun e -> Filename.check_suffix e ".jsonl")
        |> List.sort String.compare
        |> List.filter_map (fun e ->
               match Status.read_file (Filename.concat dir e) with
               | Ok v -> Some v
               | Error _ -> None)
      in
      if views = [] then None else Some (Status.merge views)

let progress_line p view =
  let fleet =
    match view with
    | None -> ""
    | Some (v : Status.view) ->
        let rate =
          if Float.is_finite v.Status.event_rate then
            Printf.sprintf "  %.0f events/s" v.Status.event_rate
          else ""
        in
        Printf.sprintf "  (%d task records%s)" (List.length v.Status.tasks)
          rate
  in
  Printf.sprintf "serve: %d/%d published, %d queued, %d leased, %d failed%s"
    p.published p.total p.queued p.leased p.failed fleet

let run cfg =
  match Manifest.load ~path:cfg.manifest_path with
  | Error msg ->
      Printf.eprintf "ebrc serve: %s: %s\n%!" cfg.manifest_path msg;
      2
  | Ok m ->
      let queue = Task_queue.create ~dir:cfg.queue_dir in
      let outstanding = plan ~store_dir:cfg.store_dir ~queue m in
      let say fmt =
        Printf.ksprintf
          (fun s -> if not cfg.quiet then print_endline s)
          fmt
      in
      let p0 = progress ~store_dir:cfg.store_dir ~queue m in
      say "serve: %d task(s), %d already published, %d outstanding"
        p0.total p0.published outstanding;
      let finish p =
        if p.published = p.total then begin
          say "serve: complete (%d/%d published)" p.published p.total;
          0
        end
        else begin
          List.iter
            (fun (digest, msg) ->
              Printf.eprintf "ebrc serve: task %s failed: %s\n%!" digest msg)
            (Task_queue.failed queue);
          Printf.eprintf "ebrc serve: incomplete (%d/%d published, %d failed)\n%!"
            p.published p.total p.failed;
          1
        end
      in
      if outstanding = 0 then
        (* Warm resume: everything already in the store. *)
        finish p0
      else if cfg.workers <= 0 then begin
        (* Prime-only mode: external workers will drain the queue. *)
        say "serve: queue primed at %s (no workers spawned)" cfg.queue_dir;
        if p0.failed > 0 then finish p0 else 0
      end
      else begin
        let pids =
          List.init cfg.workers (fun i -> spawn_worker cfg ~queue ~index:i)
        in
        say "serve: spawned %d worker(s)" (List.length pids);
        let rec watch pids last_line =
          let p = progress ~store_dir:cfg.store_dir ~queue m in
          let line = progress_line p (fleet_view queue) in
          if line <> last_line then say "%s" line;
          if p.published + p.failed >= p.total then p
          else begin
            let pids = reap pids in
            if pids = [] then begin
              (* Fleet gone with work remaining: report what we have
                 rather than spinning forever. *)
              Printf.eprintf "ebrc serve: all workers exited early\n%!";
              p
            end
            else begin
              Unix.sleepf cfg.poll;
              watch pids line
            end
          end
        in
        let p = watch pids "" in
        (* Drained (or stalled): collect the fleet. *)
        List.iter
          (fun pid ->
            try ignore (Unix.waitpid [] pid)
            with Unix.Unix_error _ -> ())
          pids;
        finish p
      end
