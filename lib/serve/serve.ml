(* Manifest → queue → supervised worker fleet → watch; see the .mli. *)

module Rc = Ebrc_exp.Result_cache
module Status = Ebrc_obs.Status
module Chaos = Ebrc_chaos.Io_fault
module Prng = Ebrc_rng.Prng

type config = {
  manifest_path : string;
  queue_dir : string;
  store_dir : string;
  workers : int;
  ttl : float;
  retries : int;
  poll : float;
  watchdog : float;
  max_strikes : int;
  chaos_kill : int option;
  quiet : bool;
}

let default ~manifest_path =
  let queue_dir = manifest_path ^ ".queue" in
  {
    manifest_path;
    queue_dir;
    store_dir = Filename.concat queue_dir "store";
    workers = 2;
    ttl = 300.0;
    retries = 1;
    poll = 0.25;
    watchdog = 120.0;
    max_strikes = 3;
    chaos_kill = None;
    quiet = false;
  }

type progress = {
  total : int;
  published : int;
  queued : int;
  leased : int;
  failed : int;
  poisoned : int;
}

type taxonomy = {
  mutable t_restarts : int;
  mutable t_stall_kills : int;
  mutable t_chaos_kills : int;
  mutable t_strikes : int;
}

(* Exponential-backoff respawn delay after the n-th consecutive death
   (n from 0), capped so a flapping fleet still probes for recovery. *)
let backoff n = Float.min 15.0 (0.5 *. Float.pow 2.0 (float_of_int n))

(* Consecutive deaths without any fleet-wide publication progress
   before a worker slot is retired — the fleet-level circuit breaker
   backing up the per-digest poison one. *)
let max_barren_restarts = 5

(* Distinct digests: a manifest may repeat a config; identity is the
   digest, so duplicates collapse to one task. *)
let distinct_tasks (m : Manifest.t) =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun cfg ->
      let d = Manifest.digest cfg in
      if Hashtbl.mem seen d then false
      else begin
        Hashtbl.add seen d ();
        true
      end)
    m.Manifest.tasks

let progress ~store_dir ~queue m =
  let tasks = distinct_tasks m in
  let published =
    List.length (List.filter (fun c -> Rc.published ~dir:store_dir c) tasks)
  in
  {
    total = List.length tasks;
    published;
    queued = List.length (Task_queue.pending queue);
    leased = Task_queue.leased queue;
    failed = List.length (Task_queue.failed queue);
    poisoned = List.length (Task_queue.poisoned queue);
  }

let plan ?gc_max_age ~store_dir ~queue m =
  ignore (Rc.gc_tmp ?max_age:gc_max_age store_dir);
  let outstanding = ref 0 in
  List.iter
    (fun cfg ->
      if not (Rc.published ~dir:store_dir cfg) then begin
        incr outstanding;
        let digest = Manifest.digest cfg in
        (* Re-serving is the operator's retry: a poison verdict from a
           previous invocation is cleared when its digest is enqueued
           again. *)
        Task_queue.clear_poison queue ~digest;
        Task_queue.enqueue queue ~digest ~spec:(Manifest.task_to_json cfg)
      end)
    (distinct_tasks m);
  !outstanding

(* ---------------------------- worker fleet ------------------------ *)

let stream_path queue index =
  Filename.concat (Task_queue.streams_dir queue)
    (Printf.sprintf "worker-%d.jsonl" index)

let worker_id index = Printf.sprintf "serve-w%d" index

let spawn_worker cfg ~queue ~index =
  let stream = stream_path queue index in
  (* Fresh stream per spawn: a stale finished stream would read as a
     live worker's (and fake its heartbeat). *)
  (try Sys.remove stream with Sys_error _ -> ());
  let chaos_args =
    (* Forward chaos to spawned workers with per-worker derived seeds
       so the fleet doesn't inject faults in lockstep. An inherited
       EBRC_CHAOS env var is overridden by this flag in the child. *)
    match Chaos.seed () with
    | None -> []
    | Some s -> [ "--chaos"; string_of_int (s + (1009 * (index + 1))) ]
  in
  let argv =
    Array.of_list
      ([
         Sys.executable_name;
         "worker";
         cfg.queue_dir;
         "--store"; cfg.store_dir;
         "--id"; worker_id index;
         "--ttl"; string_of_float cfg.ttl;
         "--retries"; string_of_int cfg.retries;
         "--stream"; stream;
       ]
      @ chaos_args)
  in
  Unix.create_process Sys.executable_name argv Unix.stdin Unix.stdout
    Unix.stderr

(* Merge whatever the workers have streamed so far into one fleet
   view; tolerant of torn tails and missing files by construction. *)
let fleet_view queue =
  let dir = Task_queue.streams_dir queue in
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | entries ->
      let views =
        Array.to_list entries
        |> List.filter (fun e -> Filename.check_suffix e ".jsonl")
        |> List.sort String.compare
        |> List.filter_map (fun e ->
               match Status.read_file (Filename.concat dir e) with
               | Ok v -> Some v
               | Error _ -> None)
      in
      if views = [] then None else Some (Status.merge views)

let progress_line p view =
  let fleet =
    match view with
    | None -> ""
    | Some (v : Status.view) ->
        let rate =
          if Float.is_finite v.Status.event_rate then
            Printf.sprintf "  %.0f events/s" v.Status.event_rate
          else ""
        in
        Printf.sprintf "  (%d task records%s)" (List.length v.Status.tasks)
          rate
  in
  let poisoned =
    if p.poisoned > 0 then Printf.sprintf ", %d poisoned" p.poisoned else ""
  in
  Printf.sprintf "serve: %d/%d published, %d queued, %d leased, %d failed%s%s"
    p.published p.total p.queued p.leased p.failed poisoned fleet

(* ----------------------------- supervisor ------------------------- *)

(* One supervised worker slot. The worker id (hence lease attribution)
   is stable across restarts of the same slot. *)
type slot = {
  index : int;
  stream : string;
  mutable pid : int option;
  mutable beat : float;  (** wall time of the last observed heartbeat *)
  mutable stream_size : int;
  mutable deaths : int;  (** consecutive deaths without fleet progress *)
  mutable spawn_after : float;  (** backoff gate for the next respawn *)
  mutable retired : bool;
}

let supervise cfg ~queue ~say m =
  let strikes : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let tax =
    { t_restarts = 0; t_stall_kills = 0; t_chaos_kills = 0; t_strikes = 0 }
  in
  (* The chaos monkey draws from its own stream (index 1; the I/O shim
     owns index 0) so kill schedules replay independently of I/O
     faulting. It kills on a drawn interval (0.5–2 s) rather than a
     per-tick coin flip so even a short sweep is guaranteed to lose
     workers. *)
  let monkey =
    Option.map
      (fun s ->
        let g = Prng.stream ~root:s 1 in
        (g, ref (Unix.gettimeofday () +. 0.5 +. (1.5 *. Prng.float_unit g))))
      cfg.chaos_kill
  in
  let slots =
    Array.init cfg.workers (fun i ->
        {
          index = i;
          stream = stream_path queue i;
          pid = None;
          beat = 0.0;
          stream_size = -1;
          deaths = 0;
          spawn_after = 0.0;
          retired = false;
        })
  in
  let spawn slot =
    slot.pid <- Some (spawn_worker cfg ~queue ~index:slot.index);
    slot.beat <- Unix.gettimeofday ();
    slot.stream_size <- -1
  in
  (* Digest → config for the published-already check below. *)
  let cfg_of : (string, Ebrc_exp.Scenario.config) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun c -> Hashtbl.replace cfg_of (Manifest.digest c) c)
    (distinct_tasks m);
  (* Worker death with the slot's leases still on disk means the task
     under each lease may have killed the process: strike it, free the
     lease for the survivors, and poison it once it has demonstrably
     taken [max_strikes] workers down. Digests whose task file is gone
     or whose result is already published are merely reclaimed — a
     worker dying between publish and complete must not poison a
     perfectly good task (and poisoning it would double-count the
     digest in the completion arithmetic). *)
  let strike_leases slot =
    List.iter
      (fun digest ->
        let still_pending =
          Task_queue.read_spec queue ~digest <> None
          && not
               (match Hashtbl.find_opt cfg_of digest with
               | Some c -> Rc.published ~dir:cfg.store_dir c
               | None -> false)
        in
        if still_pending then begin
          let n =
            1
            + (match Hashtbl.find_opt strikes digest with
              | Some n -> n
              | None -> 0)
          in
          Hashtbl.replace strikes digest n;
          tax.t_strikes <- tax.t_strikes + 1;
          if n >= cfg.max_strikes then begin
            Task_queue.poison queue ~digest
              ~message:
                (Printf.sprintf
                   "%d worker death(s) while leased (crash-loop circuit \
                    breaker)"
                   n);
            Printf.eprintf
              "ebrc serve: task %s poisoned after %d worker death(s)\n%!"
              digest n
          end
        end)
      (Task_queue.reclaim_worker queue ~worker:(worker_id slot.index))
  in
  let handle_death slot ~now ~clean ~outstanding =
    slot.pid <- None;
    strike_leases slot;
    if clean && not outstanding then slot.retired <- true
    else begin
      slot.deaths <- slot.deaths + 1;
      if slot.deaths > max_barren_restarts then begin
        slot.retired <- true;
        Printf.eprintf
          "ebrc serve: worker %d retired after %d deaths without fleet \
           progress\n\
           %!"
          slot.index slot.deaths
      end
      else slot.spawn_after <- now +. backoff (slot.deaths - 1)
    end
  in
  let heartbeat slot now =
    (* Stream growth is the heartbeat: workers wall-tick while polling
       and stream sim-time deltas while running, so a silent stream is
       a hung process, not a busy one. *)
    match Unix.stat slot.stream with
    | st ->
        if st.Unix.st_size <> slot.stream_size then begin
          slot.stream_size <- st.Unix.st_size;
          slot.beat <- now
        end
    | exception Unix.Unix_error _ -> ()
  in
  Array.iter spawn slots;
  say (Printf.sprintf "serve: spawned %d worker(s)" cfg.workers);
  let last_published = ref (-1) in
  let rec watch last_line =
    let now = Unix.gettimeofday () in
    let p = progress ~store_dir:cfg.store_dir ~queue m in
    if p.published > !last_published then begin
      if !last_published >= 0 then
        Array.iter (fun s -> s.deaths <- 0) slots;
      last_published := p.published
    end;
    let line = progress_line p (fleet_view queue) in
    if line <> last_line then say line;
    if p.published + p.failed + p.poisoned >= p.total then p
    else begin
      let outstanding = p.queued > 0 || p.leased > 0 in
      Array.iter
        (fun slot ->
          match slot.pid with
          | Some pid -> (
              heartbeat slot now;
              if cfg.watchdog > 0.0 && now -. slot.beat > cfg.watchdog
              then begin
                Printf.eprintf
                  "ebrc serve: worker %d stalled (no heartbeat for %.0f \
                   s); killing\n\
                   %!"
                  slot.index cfg.watchdog;
                (try Unix.kill pid Sys.sigkill
                 with Unix.Unix_error _ -> ());
                tax.t_stall_kills <- tax.t_stall_kills + 1
              end;
              match Unix.waitpid [ Unix.WNOHANG ] pid with
              | 0, _ -> ()
              | _, status ->
                  handle_death slot ~now
                    ~clean:(status = Unix.WEXITED 0)
                    ~outstanding
              | exception Unix.Unix_error _ ->
                  handle_death slot ~now ~clean:false ~outstanding)
          | None ->
              if (not slot.retired) && outstanding && now >= slot.spawn_after
              then begin
                tax.t_restarts <- tax.t_restarts + 1;
                spawn slot
              end)
        slots;
      (match monkey with
      | Some (g, next_kill) when now >= !next_kill -> (
          next_kill := now +. 0.5 +. (1.5 *. Prng.float_unit g);
          let live =
            Array.to_list slots |> List.filter (fun s -> s.pid <> None)
          in
          match live with
          | [] -> ()
          | _ -> (
              match
                (List.nth live (Prng.int g (List.length live))).pid
              with
              | Some pid ->
                  (try Unix.kill pid Sys.sigkill
                   with Unix.Unix_error _ -> ());
                  tax.t_chaos_kills <- tax.t_chaos_kills + 1
              | None -> ()))
      | _ -> ());
      let all_retired =
        Array.for_all (fun s -> s.retired && s.pid = None) slots
      in
      if all_retired then begin
        Printf.eprintf
          "ebrc serve: every worker slot retired with work remaining\n%!";
        p
      end
      else begin
        Unix.sleepf cfg.poll;
        watch line
      end
    end
  in
  let p = watch "" in
  (* Collect the fleet. Post-completion the queue has no task files,
     so live workers exit on their own; give them a grace period, then
     SIGKILL stragglers (a worker hung inside a poisoned task's
     simulation would otherwise wedge serve itself). *)
  Array.iter
    (fun slot ->
      match slot.pid with
      | None -> ()
      | Some pid ->
          let rec wait tries =
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ ->
                if tries <= 0 then begin
                  (try Unix.kill pid Sys.sigkill
                   with Unix.Unix_error _ -> ());
                  try ignore (Unix.waitpid [] pid)
                  with Unix.Unix_error _ -> ()
                end
                else begin
                  Unix.sleepf 0.1;
                  wait (tries - 1)
                end
            | _ -> ()
            | exception Unix.Unix_error _ -> ()
          in
          wait 50)
    slots;
  (p, tax)

(* ------------------------------- run ------------------------------ *)

let run cfg =
  match Manifest.load ~path:cfg.manifest_path with
  | Error msg ->
      Printf.eprintf "ebrc serve: %s: %s\n%!" cfg.manifest_path msg;
      2
  | Ok m ->
      let queue = Task_queue.create ~dir:cfg.queue_dir () in
      let outstanding =
        plan ~gc_max_age:(2.0 *. cfg.ttl) ~store_dir:cfg.store_dir ~queue m
      in
      let say fmt =
        Printf.ksprintf
          (fun s -> if not cfg.quiet then print_endline s)
          fmt
      in
      let p0 = progress ~store_dir:cfg.store_dir ~queue m in
      say "serve: %d task(s), %d already published, %d outstanding"
        p0.total p0.published outstanding;
      let finish ?tax p =
        (match tax with
        | Some t ->
            say
              "serve: exit taxonomy — %d clean completion(s), %d \
               restart(s), %d stall kill(s), %d chaos kill(s), %d lease \
               strike(s), %d poisoned"
              p.published t.t_restarts t.t_stall_kills t.t_chaos_kills
              t.t_strikes p.poisoned
        | None -> ());
        if p.published = p.total then begin
          say "serve: complete (%d/%d published)" p.published p.total;
          0
        end
        else begin
          List.iter
            (fun (digest, msg) ->
              Printf.eprintf "ebrc serve: task %s failed: %s\n%!" digest msg)
            (Task_queue.failed queue);
          List.iter
            (fun (digest, msg) ->
              Printf.eprintf "ebrc serve: task %s poisoned: %s\n%!" digest
                msg)
            (Task_queue.poisoned queue);
          Printf.eprintf
            "ebrc serve: incomplete (%d/%d published, %d failed, %d \
             poisoned)\n\
             %!"
            p.published p.total p.failed p.poisoned;
          1
        end
      in
      if outstanding = 0 then
        (* Warm resume: everything already in the store. *)
        finish p0
      else if cfg.workers <= 0 then begin
        (* Prime-only mode: external workers will drain the queue. *)
        say "serve: queue primed at %s (no workers spawned)" cfg.queue_dir;
        if p0.failed > 0 || p0.poisoned > 0 then finish p0 else 0
      end
      else begin
        let p, tax =
          supervise cfg ~queue
            ~say:(fun s -> if not cfg.quiet then print_endline s)
            m
        in
        finish ~tax p
      end
