(** On-disk task queue for the multi-process sweep service.

    Layout under the queue root:

    {v
    tasks/<digest>.json     one task spec (a Manifest task object)
    leases/<digest>.lease   O_EXCL claim file: worker id, pid, deadline
    failed/<digest>.json    terminal failure record
    poisoned/<digest>.json  crash-loop circuit-breaker record
    streams/                per-worker telemetry JSONL (by convention)
    v}

    Claiming is an [O_CREAT|O_EXCL] create of the lease file — the
    filesystem arbitrates, so exactly one of any number of concurrent
    claimants wins. Leases carry an absolute wall-clock deadline: an
    expired lease is reclaimable, so a SIGKILL'd worker costs one
    lease timeout, not the sweep. Reclaim renames the expired lease to
    a private name first (rename is atomic; exactly one reclaimer
    succeeds, the loser gets ENOENT) and then re-claims through the
    same O_EXCL path.

    Failure model: leases are a work-avoidance mechanism, not a
    correctness mechanism. Correctness comes from the content-addressed
    store — results are published by atomic rename under a key that is
    a pure function of the config, and the simulator is deterministic,
    so the rare double-execution around an expired lease wastes time
    but publishes byte-identical bytes. *)

type t

val create : ?torn_grace:float -> dir:string -> unit -> t
(** Open (creating directories as needed) the queue rooted at [dir].
    [torn_grace] is the mtime grace period for unparsable (torn) lease
    files before they read as expired; default from [EBRC_LEASE_GRACE]
    or 10 s. *)

val dir : t -> string
val streams_dir : t -> string

val torn_grace : t -> float
(** The effective torn-lease grace for this queue handle. *)

val enqueue : t -> digest:string -> spec:string -> unit
(** Write [tasks/<digest>.json] atomically (tmp+rename). Idempotent:
    an existing task file is left in place. *)

val pending : t -> string list
(** Digests with a task file present, sorted. *)

val read_spec : t -> digest:string -> string option

type claim_outcome =
  | Claimed
  | Busy  (** a live (unexpired) lease exists, or we lost the race *)
  | Gone  (** no task file — already completed or failed *)

val claim : t -> worker:string -> ttl:float -> digest:string -> claim_outcome
(** Try to lease the task for [ttl] seconds. *)

val release : t -> digest:string -> unit
(** Drop our lease without completing the task (it becomes immediately
    claimable again). *)

val complete : t -> digest:string -> unit
(** Remove the task file and lease after the result was published. *)

val fail : t -> worker:string -> digest:string -> message:string -> unit
(** Record a terminal failure ([failed/<digest>.json]) and dequeue the
    task so the sweep can drain. *)

val failed : t -> (string * string) list
(** [(digest, message)] of terminally failed tasks, sorted. *)

val poison : t -> digest:string -> message:string -> unit
(** Record a crash-loop circuit-breaker verdict
    ([poisoned/<digest>.json]) and dequeue the task: used by the serve
    supervisor when the same digest keeps killing worker processes, so
    the sweep drains around it instead of crash-looping forever. *)

val poisoned : t -> (string * string) list
(** [(digest, message)] of poisoned tasks, sorted. *)

val clear_poison : t -> digest:string -> unit
(** Remove a poison verdict (re-serving a manifest counts as the
    operator retrying the task). *)

val leased : t -> int
(** Number of lease files present (live and expired alike). *)

val lease_holders : t -> (string * string) list
(** [(digest, worker-id)] for every parsable lease file, sorted by
    digest; torn leases are omitted (their holder is unknowable). *)

val reclaim_worker : t -> worker:string -> string list
(** Release every lease held by [worker], returning the digests freed.
    Safe only once that worker process is known dead (the supervisor
    calls this after SIGKILL + reap) — otherwise it would merely
    re-open the benign double-execution window. *)
