(* Lease/execute/publish loop; see the .mli for the contract. *)

module Rc = Ebrc_exp.Result_cache
module Scenario = Ebrc_exp.Scenario
module Tm = Ebrc_telemetry.Telemetry
module Stream = Ebrc_telemetry.Stream
module Flight = Ebrc_telemetry.Flight
module Pool = Ebrc_parallel.Pool
module Chaos = Ebrc_chaos.Io_fault

let m_ran =
  Tm.Counter.make ~help:"sweep tasks simulated and published"
    "worker.tasks_ran"

let m_cached =
  Tm.Counter.make ~help:"sweep tasks satisfied by the store on lease"
    "worker.tasks_cached"

let m_failed =
  Tm.Counter.make ~help:"sweep tasks marked terminally failed"
    "worker.tasks_failed"

let m_publish_retries =
  Tm.Counter.make ~help:"publications retried after a failed read-back"
    "worker.publish_retries"

let m_publish_failed =
  Tm.Counter.make ~help:"publications that never verified on read-back"
    "worker.publish_failed"

type config = {
  queue_dir : string;
  store_dir : string;
  worker_id : string;
  ttl : float;
  retries : int;
  poll : float;
  max_tasks : int option;
  exit_when_drained : bool;
}

let default ~queue_dir =
  {
    queue_dir;
    store_dir = Filename.concat queue_dir "store";
    worker_id = Printf.sprintf "w%d" (Unix.getpid ());
    ttl = 300.0;
    retries = 1;
    poll = 0.2;
    max_tasks = None;
    exit_when_drained = true;
  }

type outcome = { ran : int; cached : int; failed : int }

let run cfg =
  (* 2 × lease ttl: a startup gc sweep must never reclaim a live
     peer's in-flight publication, and no publication outlives its
     task's lease by more than the lease itself. *)
  ignore (Rc.gc_tmp ~max_age:(2.0 *. cfg.ttl) cfg.store_dir);
  let q = Task_queue.create ~dir:cfg.queue_dir () in
  (* domains:1 spawns nothing; the pool only supplies the per-task
     exception barrier + retry policy of [run_isolated]. *)
  let pool = Pool.create ~domains:1 () in
  let ran = ref 0 and cached = ref 0 and failed = ref 0 in
  let publish_failures : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let executed () = !ran + !failed in
  let under_cap () =
    match cfg.max_tasks with Some n -> executed () < n | None -> true
  in
  let mark_failed digest message =
    Task_queue.fail q ~worker:cfg.worker_id ~digest ~message;
    Stream.task ~key:digest ~phase:"failed" ();
    if Tm.is_on () then Tm.Counter.incr m_failed;
    incr failed
  in
  (* Publish with read-back verification: [store_to] degrades store
     failures to a warning by design, so under injected faults (or a
     genuinely sick disk) a publication can silently not land.
     Verifying via [published] (a full load + key check) and retrying
     bounds that: the record either verifies or the task is handed
     back / failed — never "completed" with an empty store slot. *)
  let publish scenario_cfg r =
    let rec go attempt =
      Rc.store_to ~dir:cfg.store_dir scenario_cfg r;
      if Rc.published ~dir:cfg.store_dir scenario_cfg then true
      else if attempt < 8 then begin
        if Tm.is_on () then Tm.Counter.incr m_publish_retries;
        go (attempt + 1)
      end
      else false
    in
    go 0
  in
  let execute digest scenario_cfg =
    Stream.task ~key:digest ~phase:"leased" ();
    match
      Pool.run_isolated ~retries:cfg.retries pool (fun ~attempt:_ ->
          Scenario.run scenario_cfg)
    with
    | Ok r ->
        if publish scenario_cfg r then begin
          Task_queue.complete q ~digest;
          Stream.task ~key:digest ~phase:"done" ();
          if Tm.is_on () then Tm.Counter.incr m_ran;
          incr ran
        end
        else begin
          if Tm.is_on () then Tm.Counter.incr m_publish_failed;
          let strikes =
            1
            + (match Hashtbl.find_opt publish_failures digest with
              | Some n -> n
              | None -> 0)
          in
          Hashtbl.replace publish_failures digest strikes;
          if strikes >= 2 then
            mark_failed digest "result publication failed read-back verification"
          else begin
            (* Hand the task back rather than completing with nothing
               in the store: another worker (or a later rescan here)
               re-runs it against a hopefully healthier disk. *)
            Task_queue.release q ~digest;
            Stream.task ~key:digest ~phase:"publish-failed" ()
          end
        end
    | Error e ->
        Flight.on_exn ~reason:"worker.task"
          ~attrs:
            ([
               ("digest", digest);
               ("attempts", string_of_int e.Pool.t_attempts);
             ]
            @
            match Chaos.seed () with
            | Some s -> [ ("chaos_seed", string_of_int s) ]
            | None -> [])
          e.Pool.t_exn;
        mark_failed digest
          (Printf.sprintf "%s (after %d attempt(s))"
             (Printexc.to_string e.Pool.t_exn)
             e.Pool.t_attempts)
  in
  let run_claimed digest =
    match Task_queue.read_spec q ~digest with
    | None ->
        (* Task file vanished between claim and read: someone else
           completed it; drop our stray lease. *)
        Task_queue.release q ~digest
    | Some spec -> (
        match Manifest.task_of_json spec with
        | Error msg -> mark_failed digest ("unparsable task spec: " ^ msg)
        | Ok scenario_cfg ->
            if Manifest.digest scenario_cfg <> digest then
              mark_failed digest "task spec does not match its digest"
            else if Rc.published ~dir:cfg.store_dir scenario_cfg then begin
              (* Resume path: already in the store — complete without
                 simulating. *)
              Task_queue.complete q ~digest;
              Stream.task ~key:digest ~phase:"done"
                ~attrs:[ ("cached", "true") ] ();
              if Tm.is_on () then Tm.Counter.incr m_cached;
              incr cached
            end
            else execute digest scenario_cfg)
  in
  let stop = ref false in
  while not !stop do
    Stream.wall_tick ();
    match Task_queue.pending q with
    | [] ->
        if cfg.exit_when_drained then stop := true else Unix.sleepf cfg.poll
    | pending ->
        let progressed = ref false in
        List.iter
          (fun digest ->
            if under_cap () && not !stop then
              match
                Task_queue.claim q ~worker:cfg.worker_id ~ttl:cfg.ttl ~digest
              with
              | Busy | Gone -> ()
              | Claimed ->
                  progressed := true;
                  run_claimed digest)
          pending;
        if not (under_cap ()) then stop := true
        else if not !progressed then
          (* Everything pending is leased by live peers (or their
             leases have not yet expired): wait and rescan — never
             exit while task files remain, or a peer's SIGKILL would
             strand its task. *)
          Unix.sleepf cfg.poll
  done;
  Pool.shutdown pool;
  { ran = !ran; cached = !cached; failed = !failed }
