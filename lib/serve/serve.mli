(** The sweep-service front end behind [ebrc serve]: load a manifest,
    prime the task queue with every config not already published in
    the content-addressed store, optionally spawn a fleet of worker
    processes, and watch the store until the sweep drains.

    Because enqueueing consults the store first, sweeps are resumable
    and incremental for free: re-serving a manifest over a partial
    store enqueues only the missing tasks, and a fully published
    manifest returns immediately (the warm-resume path). *)

type config = {
  manifest_path : string;
  queue_dir : string;
  store_dir : string;
  workers : int;
      (** worker processes to spawn (re-exec of the current
          executable's [worker] subcommand). 0 = prime the queue and
          report without waiting — external workers drain it. *)
  ttl : float;  (** lease lifetime handed to spawned workers *)
  retries : int;  (** per-task retry budget handed to spawned workers *)
  poll : float;  (** watch-loop period, seconds *)
  quiet : bool;  (** suppress the periodic progress line *)
}

val default : manifest_path:string -> config
(** [queue_dir] = [<manifest_path>.queue], [store_dir] =
    [<queue_dir>/store], [workers] = 2, [ttl] = 300s, [retries] = 1,
    [poll] = 0.25s. *)

type progress = {
  total : int;  (** distinct task digests in the manifest *)
  published : int;  (** verified result records in the store *)
  queued : int;  (** task files still present in the queue *)
  leased : int;  (** lease files present (live and expired) *)
  failed : int;  (** terminal failure records *)
}

val progress : store_dir:string -> queue:Task_queue.t -> Manifest.t -> progress

val plan : store_dir:string -> queue:Task_queue.t -> Manifest.t -> int
(** Enqueue every manifest task whose result is not already published
    (idempotent), returning how many are outstanding. Also reclaims
    stale store tmp files ({!Ebrc_exp.Result_cache.gc_tmp}). *)

val run : config -> int
(** The [ebrc serve] entry point; returns the process exit code:
    0 — every task published; 1 — terminal failures, or the fleet
    exited with work remaining; 2 — unreadable manifest. *)
