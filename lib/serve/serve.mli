(** The sweep-service front end behind [ebrc serve]: load a manifest,
    prime the task queue with every config not already published in
    the content-addressed store, spawn and {e supervise} a fleet of
    worker processes, and watch the store until the sweep drains.

    Because enqueueing consults the store first, sweeps are resumable
    and incremental for free: re-serving a manifest over a partial
    store enqueues only the missing tasks, and a fully published
    manifest returns immediately (the warm-resume path).

    Supervision (all of it driven off artifacts the fleet already
    produces — stream files, lease files, the store):

    - {b Heartbeats}: each spawned worker streams task/progress records
      to [streams/worker-<i>.jsonl]; growth of that file is the
      heartbeat. A worker silent past the [watchdog] TTL is presumed
      hung, SIGKILLed, and its leases reclaimed.
    - {b Restarts}: dead workers are respawned under exponential
      backoff (0.5 s doubling, capped at 15 s). A slot that keeps
      dying with no fleet-wide publication progress is retired.
    - {b Crash-loop circuit breaker}: each worker death strikes the
      digests it held leases on; a digest that takes [max_strikes]
      workers down is {e poisoned} ([poisoned/<digest>.json]) and
      dequeued, so one deadly task costs itself, not the sweep.
      Re-serving the manifest clears poison verdicts (a retry).
    - {b Exit taxonomy}: completion reports clean completions,
      restarts, stall kills, chaos kills, strikes and poisonings, and
      the exit code distinguishes complete (0) from degraded (1). *)

type config = {
  manifest_path : string;
  queue_dir : string;
  store_dir : string;
  workers : int;
      (** worker processes to spawn (re-exec of the current
          executable's [worker] subcommand). 0 = prime the queue and
          report without waiting — external workers drain it. *)
  ttl : float;  (** lease lifetime handed to spawned workers *)
  retries : int;  (** per-task retry budget handed to spawned workers *)
  poll : float;  (** watch-loop period, seconds *)
  watchdog : float;
      (** stall detector: SIGKILL a worker whose stream has not grown
          for this many seconds. 0 disables stall detection. Must
          comfortably exceed the worker's wall-tick period (0.5 s) —
          the default 120 s does. *)
  max_strikes : int;
      (** worker deaths while holding a digest's lease before that
          digest is poisoned *)
  chaos_kill : int option;
      (** arm the deterministic chaos monkey with this seed: every
          0.5–2 s (drawn from its own {!Ebrc_rng.Prng.stream}) it
          SIGKILLs a random live worker. For chaos soaks only. *)
  quiet : bool;  (** suppress the periodic progress line *)
}

val default : manifest_path:string -> config
(** [queue_dir] = [<manifest_path>.queue], [store_dir] =
    [<queue_dir>/store], [workers] = 2, [ttl] = 300s, [retries] = 1,
    [poll] = 0.25s, [watchdog] = 120s, [max_strikes] = 3, no chaos
    monkey. *)

type progress = {
  total : int;  (** distinct task digests in the manifest *)
  published : int;  (** verified result records in the store *)
  queued : int;  (** task files still present in the queue *)
  leased : int;  (** lease files present (live and expired) *)
  failed : int;  (** terminal failure records *)
  poisoned : int;  (** crash-loop circuit-breaker records *)
}

val progress : store_dir:string -> queue:Task_queue.t -> Manifest.t -> progress

val plan :
  ?gc_max_age:float -> store_dir:string -> queue:Task_queue.t -> Manifest.t -> int
(** Enqueue every manifest task whose result is not already published
    (idempotent), returning how many are outstanding; poison verdicts
    for re-enqueued digests are cleared. Also reclaims stale store tmp
    files ({!Ebrc_exp.Result_cache.gc_tmp}; [run] passes
    [gc_max_age = 2 × ttl] so a live peer's in-flight publication is
    never swept). *)

val backoff : int -> float
(** Respawn delay after the [n]-th consecutive worker death (from 0):
    0.5 s doubling, capped at 15 s. Exposed for tests. *)

val run : config -> int
(** The [ebrc serve] entry point; returns the process exit code:
    0 — every task published; 1 — terminal failures, poisoned tasks,
    or the fleet retired with work remaining; 2 — unreadable
    manifest. *)
