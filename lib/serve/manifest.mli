(** Sweep manifests: the canonical on-disk description of an ensemble
    of scenario runs for the multi-process sweep service.

    A manifest is a JSON object

    {v
    {"schema": 1, "codec": "ebrc-manifest-v1", "tasks": [<config>, ...]}
    v}

    where each [<config>] is a complete {!Ebrc_exp.Scenario.config}
    rendered with every float as a hex-float string, so a config
    round-trips bit-exactly and its content key — the existing
    {!Ebrc_exp.Result_cache} digest — is identical on every machine
    that loads the manifest. The task list is ordered, but order only
    affects scheduling preference: task identity is the digest, so
    duplicated configs collapse to one result record. *)

type t = { tasks : Ebrc_exp.Scenario.config list }

val digest : Ebrc_exp.Scenario.config -> string
(** The content key of one task: {!Ebrc_exp.Result_cache.digest_of_config}. *)

val task_to_json : Ebrc_exp.Scenario.config -> string
(** One config as a canonical single-line JSON object (the payload of
    a queue task file). *)

val task_of_json : string -> (Ebrc_exp.Scenario.config, string) result

val to_json : t -> string
(** Canonical rendering: loading and re-saving a manifest is
    byte-identical. *)

val of_json : string -> (t, string) result

val save : path:string -> t -> unit
(** Atomic tmp+rename write. *)

val load : path:string -> (t, string) result

val demo : ?seed0:int -> ?duration:float -> tasks:int -> unit -> t
(** A small self-contained manifest for demos, CI and the bench:
    [tasks] scaled-down dumbbell configs (1 TFRC + 1 TCP flow,
    alternating DropTail/RED, consecutive seeds from [seed0], default
    42) of [duration] simulated seconds (default 10). *)
