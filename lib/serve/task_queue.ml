(* On-disk task queue with O_EXCL lease claims; see the .mli for the
   protocol and the failure model. *)

module Tm = Ebrc_telemetry.Telemetry
module Json = Ebrc_obs.Json
module Chaos = Ebrc_chaos.Io_fault

let m_claims = Tm.Counter.make ~help:"queue leases claimed" "queue.claims"

let m_conflicts =
  Tm.Counter.make ~help:"queue claim attempts lost to a live lease"
    "queue.claim_conflicts"

let m_reclaimed =
  Tm.Counter.make ~help:"expired queue leases reclaimed"
    "queue.leases_reclaimed"

let m_completed =
  Tm.Counter.make ~help:"queue tasks completed" "queue.completed"

let m_failed =
  Tm.Counter.make ~help:"queue tasks terminally failed" "queue.failed"

let m_poisoned =
  Tm.Counter.make ~help:"queue tasks poisoned by the crash-loop breaker"
    "queue.poisoned"

type t = {
  root : string;
  tasks_dir : string;
  leases_dir : string;
  failed_dir : string;
  poisoned_dir : string;
  streams : string;
  torn_grace : float;
}

let rec mkdir_p d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A lease that cannot be parsed is usually a claimant killed between
   the O_EXCL create and the write. The torn file still holds the
   lease (we cannot know its deadline), but only for a grace period —
   after that it reads as expired and gets reclaimed. Configurable
   per queue ([?torn_grace]) or fleet-wide via EBRC_LEASE_GRACE. *)
let default_torn_grace () =
  match Sys.getenv_opt "EBRC_LEASE_GRACE" with
  | Some v -> (
      match float_of_string_opt v with
      | Some g when g >= 0.0 -> g
      | _ -> 10.0)
  | None -> 10.0

let create ?torn_grace ~dir () =
  let t =
    {
      root = dir;
      tasks_dir = Filename.concat dir "tasks";
      leases_dir = Filename.concat dir "leases";
      failed_dir = Filename.concat dir "failed";
      poisoned_dir = Filename.concat dir "poisoned";
      streams = Filename.concat dir "streams";
      torn_grace =
        (match torn_grace with
        | Some g -> g
        | None -> default_torn_grace ());
    }
  in
  mkdir_p t.tasks_dir;
  mkdir_p t.leases_dir;
  mkdir_p t.failed_dir;
  mkdir_p t.poisoned_dir;
  mkdir_p t.streams;
  t

let dir t = t.root
let torn_grace t = t.torn_grace
let streams_dir t = t.streams
let task_path t digest = Filename.concat t.tasks_dir (digest ^ ".json")
let lease_path t digest = Filename.concat t.leases_dir (digest ^ ".lease")
let failed_path t digest = Filename.concat t.failed_dir (digest ^ ".json")

let list_dir dir ~suffix =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun e ->
             if String.length e > 0 && e.[0] <> '.'
                && Filename.check_suffix e suffix
             then Some (Filename.chop_suffix e suffix)
             else None)
      |> List.sort String.compare

let atomic_write path content =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  Chaos.guard_open tmp;
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Chaos.write oc content;
      Chaos.fsync oc);
  Chaos.guard_rename path;
  Sys.rename tmp path

(* Queue metadata writes must land even under fault injection — the
   faults are probabilistic, so a bounded retry converges almost
   surely. Chaos off: the first attempt is the only one. *)
let atomic_write_retry path content =
  let rec go attempt =
    match atomic_write path content with
    | () -> ()
    | exception Sys_error _ when Chaos.enabled () && attempt < 100 ->
        go (attempt + 1)
  in
  go 0

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Some s
  | exception Sys_error _ -> None

let enqueue t ~digest ~spec =
  if not (Sys.file_exists (task_path t digest)) then
    atomic_write_retry (task_path t digest) (spec ^ "\n")

let pending t = list_dir t.tasks_dir ~suffix:".json"
let read_spec t ~digest = read_file (task_path t digest)
let leased t = List.length (list_dir t.leases_dir ~suffix:".lease")

(* ------------------------------ leases ---------------------------- *)

type claim_outcome = Claimed | Busy | Gone

let lease_body ~worker ~deadline =
  Printf.sprintf
    "{\"schema\":1,\"worker\":\"%s\",\"pid\":%d,\"deadline\":\"%h\"}\n"
    (Json.escape worker) (Unix.getpid ()) deadline

(* O_EXCL create: the one atomic "exactly one winner" primitive the
   whole queue rests on. Under chaos the body may land torn
   ([Chaos.maim]) while the claim itself stands — exactly the
   crashed-mid-write shape the torn-lease grace covers. *)
let create_exclusive path content =
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let b = Bytes.of_string (Chaos.maim content) in
          ignore (Unix.write fd b 0 (Bytes.length b)));
      true
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false

let lease_expired t path ~now =
  match read_file path with
  | None -> false (* vanished: released or completed; not ours to take *)
  | Some body -> (
      match
        Option.bind (Json.parse body |> Result.to_option) (fun j ->
            Option.bind (Json.member "deadline" j) Json.to_string)
      with
      | Some s -> (
          match float_of_string_opt s with
          | Some deadline -> now > deadline
          | None -> true)
      | None -> (
          match Unix.stat path with
          | st -> now -. st.Unix.st_mtime > t.torn_grace
          | exception Unix.Unix_error _ -> false))

let claim t ~worker ~ttl ~digest =
  if not (Sys.file_exists (task_path t digest)) then Gone
  else begin
    let now = Chaos.now () in
    let path = lease_path t digest in
    let body = lease_body ~worker ~deadline:(now +. ttl) in
    let try_create () =
      if create_exclusive path body then begin
        if Tm.is_on () then Tm.Counter.incr m_claims;
        Claimed
      end
      else begin
        if Tm.is_on () then Tm.Counter.incr m_conflicts;
        Busy
      end
    in
    if not (Sys.file_exists path) then try_create ()
    else if not (lease_expired t path ~now) then begin
      if Tm.is_on () then Tm.Counter.incr m_conflicts;
      Busy
    end
    else begin
      (* Expired: rename it away first. Rename is atomic, so of any
         number of concurrent reclaimers exactly one succeeds; the
         losers see ENOENT and move on. *)
      let grave =
        Filename.concat t.leases_dir
          (Printf.sprintf ".%s.%s.%d.reclaim" digest worker (Unix.getpid ()))
      in
      match Unix.rename path grave with
      | () ->
          (try Unix.unlink grave with Unix.Unix_error _ -> ());
          if Tm.is_on () then Tm.Counter.incr m_reclaimed;
          try_create ()
      | exception Unix.Unix_error _ -> Busy
    end
  end

let unlink_quiet path =
  try Unix.unlink path with Unix.Unix_error _ -> ()

let release t ~digest = unlink_quiet (lease_path t digest)

let complete t ~digest =
  unlink_quiet (task_path t digest);
  unlink_quiet (lease_path t digest);
  if Tm.is_on () then Tm.Counter.incr m_completed

let fail t ~worker ~digest ~message =
  atomic_write_retry (failed_path t digest)
    (Printf.sprintf "{\"schema\":1,\"digest\":\"%s\",\"worker\":\"%s\",\"message\":\"%s\"}\n"
       digest (Json.escape worker) (Json.escape message));
  unlink_quiet (task_path t digest);
  unlink_quiet (lease_path t digest);
  if Tm.is_on () then Tm.Counter.incr m_failed

let record_messages dir ~path_of =
  List.filter_map
    (fun digest ->
      match read_file (path_of digest) with
      | None -> None
      | Some body ->
          let message =
            match
              Option.bind (Json.parse body |> Result.to_option) (fun j ->
                  Option.bind (Json.member "message" j) Json.to_string)
            with
            | Some m -> m
            | None -> "unreadable failure record"
          in
          Some (digest, message))
    (list_dir dir ~suffix:".json")

let failed t = record_messages t.failed_dir ~path_of:(failed_path t)

(* --------------------------- poison / reclaim --------------------- *)

let poisoned_path t digest = Filename.concat t.poisoned_dir (digest ^ ".json")

let poison t ~digest ~message =
  atomic_write_retry (poisoned_path t digest)
    (Printf.sprintf "{\"schema\":1,\"digest\":\"%s\",\"message\":\"%s\"}\n"
       digest (Json.escape message));
  unlink_quiet (task_path t digest);
  unlink_quiet (lease_path t digest);
  if Tm.is_on () then Tm.Counter.incr m_poisoned

let poisoned t = record_messages t.poisoned_dir ~path_of:(poisoned_path t)
let clear_poison t ~digest = unlink_quiet (poisoned_path t digest)

let lease_holders t =
  List.filter_map
    (fun digest ->
      match read_file (lease_path t digest) with
      | None -> None
      | Some body -> (
          match
            Option.bind (Json.parse body |> Result.to_option) (fun j ->
                Option.bind (Json.member "worker" j) Json.to_string)
          with
          | Some w -> Some (digest, w)
          | None -> None))
    (list_dir t.leases_dir ~suffix:".lease")

let reclaim_worker t ~worker =
  List.filter_map
    (fun (digest, w) ->
      if w = worker then begin
        release t ~digest;
        Some digest
      end
      else None)
    (lease_holders t)
