(** Longitudinal perf-trend analysis over the repo's `BENCH_*.json`
    history: joins hot-path timings ([microbench_ns_per_run]) and
    behavioural telemetry counters ([telemetry_summary.counters])
    across time-ordered records, and reports first/last/best, a
    per-record least-squares slope, and regression flags. The
    complement to bench/compare.ml's newest-vs-previous gate: compare
    answers "did this PR regress", trend answers "how did we get
    here". *)

type group = Ns | Counter

type series = {
  key : string;
  group : group;
  n : int;  (** records carrying this key *)
  first : float;
  last : float;
  best : float;  (** min over the series (timings); [nan] for counters *)
  slope : float;
      (** least-squares slope per record over (record index, value) *)
  regressed : bool;
      (** timings only: last is >20% above best and the best is above
          the 1 ms/run noise floor (mirrors compare.ml's gate) *)
  improved : bool;  (** timings only: last is ≤80% of first *)
  changed : bool;
      (** counters only: last differs from first — a behaviour drift,
          since counter totals are deterministic *)
}

val analyze : Bench_records.record list -> series list
(** Records must already be in time order ({!Bench_records.load_all}).
    Series are sorted: timings first, then counters, each by key. *)

val render : files:string list -> series list -> string
(** Human-readable trend table. *)

val to_json : files:string list -> warnings:string list -> series list -> string
