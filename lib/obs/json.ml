(* Recursive-descent JSON reader. The inputs are this repo's own
   bench/stream files (small: at most a few MB), so clarity beats
   zero-copy cleverness. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "short \\u escape";
                   let hex = String.sub s !pos 4 in
                   pos := !pos + 4;
                   (match int_of_string_opt ("0x" ^ hex) with
                   | None -> fail "bad \\u escape"
                   | Some code ->
                       (* Our writers only escape control chars; emit
                          the raw byte for the BMP-latin subset and a
                          replacement otherwise. *)
                       if code < 0x80 then Buffer.add_char b (Char.chr code)
                       else Buffer.add_char b '?')
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); go ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec go () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); go ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Fail (msg, at) ->
      Error (Printf.sprintf "%s at offset %d" msg at)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | Null -> Some nan | _ -> None
let to_int = function Num f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let to_string = function Str s -> Some s | _ -> None

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf
