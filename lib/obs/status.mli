(** Reader for live telemetry stream files (the `ebrc status` view):
    parses the JSONL records `Ebrc_telemetry.Stream` writes and folds
    them into one progress snapshot — per-run delta cursors, figure
    lifecycle, pool counters with an ETA from the completed-task rate.
    Tolerant of a file being mid-write: a torn final line (or any
    unparsable line) is skipped, everything before it still counts. *)

type run_row = {
  run_key : string;
  seq : int;  (** last delta seq seen *)
  t_sim : float;  (** last sampled simulated time *)
  events : int;  (** summed d_events *)
  pending : int;  (** last event-queue depth *)
  ended : bool;
  run_ok : bool;  (** meaningful when [ended] *)
}

type figure_row = {
  fig_id : string;
  phase : string;  (** latest of start/done/failed *)
  t_start : float;  (** wall clock of the start record; [nan] unseen *)
  t_last : float;  (** wall clock of the latest record *)
  tables : int;  (** from the done record; 0 otherwise *)
}

type view = {
  manifest : (string * string) list;
      (** cmd plus attrs of the latest manifest record, values
          re-rendered as strings *)
  runs : run_row list;  (** stream order *)
  figures : figure_row list;  (** stream order *)
  tasks : figure_row list;
      (** sweep-service task lifecycle records ([task] type), one row
          per task digest; [phase] is the latest of
          leased/done/failed and [t_start] anchors at the lease *)
  counters : (string * int) list;
      (** totals from the latest progress record *)
  event_rate : float;  (** d sim.events_fired / d t_wall; [nan] unknown *)
  task_rate : float;  (** d pool.tasks / d t_wall; [nan] unknown *)
  eta : float;
      (** (tasks_submitted - tasks) / task_rate, seconds; [nan]
          unknown *)
  t_progress : float;  (** wall clock of latest progress; [nan] none *)
  finished : bool;  (** a stream_end record was seen *)
  skipped : int;  (** unparsable lines (usually a torn tail) *)
}

val of_lines : string list -> view

val merge : view list -> view
(** Fold per-worker views into one fleet snapshot (the serve watcher
    reads one stream file per worker): counters sum by key, row lists
    concatenate (workers never share a task digest — leases are
    exclusive), rates sum over the workers that report one, [eta] and
    [t_progress] take the max, and the fleet is [finished] only when
    every member is. [merge []] is the empty view. *)

val read_file : string -> (view, string) result
(** {!of_lines} over the file's lines; [Error] when unreadable. *)

val render : view -> string
(** Human-readable live view. *)

val render_json : view -> string
(** Machine-readable one-object rendering (for [--once]). *)
