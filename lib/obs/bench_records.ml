(* Bench-record discovery and ordering. *)

let digits s lo hi =
  let ok = ref true in
  for i = lo to hi do
    if not (s.[i] >= '0' && s.[i] <= '9') then ok := false
  done;
  !ok

let is_date s =
  (* YYYY-MM-DD *)
  String.length s = 10
  && digits s 0 3 && s.[4] = '-' && digits s 5 6 && s.[7] = '-' && digits s 8 9

let timestamp_of_filename name =
  let pre = "BENCH_" and suf = ".json" in
  let pl = String.length pre and sl = String.length suf in
  let nl = String.length name in
  if nl <= pl + sl
     || String.sub name 0 pl <> pre
     || String.sub name (nl - sl) sl <> suf
  then None
  else begin
    let stem = String.sub name pl (nl - pl - sl) in
    let l = String.length stem in
    if is_date stem then Some (stem ^ "T000000Z")
    else if
      l = 18
      && is_date (String.sub stem 0 10)
      && stem.[10] = 'T'
      && digits stem 11 16
      && stem.[17] = 'Z'
    then Some stem
    else None
  end

type record = { file : string; ts : string option; json : Json.t }

let list_ordered ~dir =
  let names =
    match Sys.readdir dir with
    | arr ->
        Array.to_list arr
        |> List.filter (fun f ->
               String.length f > 11
               && String.sub f 0 6 = "BENCH_"
               && Filename.check_suffix f ".json")
    | exception Sys_error _ -> []
  in
  (* Timestamped records first in timestamp order; the normalised
     forms share one fixed-width shape, so string compare is time
     compare. Unstamped records sort last, by name, and each earns a
     warning. *)
  let keyed =
    List.map (fun f -> (timestamp_of_filename f, f)) names
    |> List.sort (fun (ta, fa) (tb, fb) ->
           match (ta, tb) with
           | Some a, Some b ->
               let c = compare a b in
               if c <> 0 then c else compare fa fb
           | Some _, None -> -1
           | None, Some _ -> 1
           | None, None -> compare fa fb)
  in
  let warnings =
    List.filter_map
      (fun (ts, f) ->
        if ts = None then
          Some
            (Printf.sprintf
               "%s: no recognisable timestamp in filename; ordered last" f)
        else None)
      keyed
  in
  (List.map snd keyed, warnings)

let load_all ~dir =
  let files, warnings = list_ordered ~dir in
  let warnings = ref (List.rev warnings) in
  let records =
    List.filter_map
      (fun file ->
        let path = Filename.concat dir file in
        match
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with
        | exception Sys_error msg ->
            warnings := Printf.sprintf "%s: unreadable (%s)" file msg :: !warnings;
            None
        | contents -> (
            match Json.parse contents with
            | Ok json ->
                Some { file; ts = timestamp_of_filename file; json }
            | Error msg ->
                warnings := Printf.sprintf "%s: parse error (%s)" file msg :: !warnings;
                None))
      files
  in
  (records, List.rev !warnings)
