(** Minimal JSON reader for the repo's own machine outputs (bench
    records, telemetry streams): a full parser for the JSON those
    writers produce, with permissive number handling and no
    dependencies. Not a general-purpose validator — unknown escapes
    pass through and numbers are whatever [float_of_string] accepts. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value; the error string carries a character
    offset. Trailing whitespace is allowed, trailing content is an
    error. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_float : t -> float option
(** [Num]; also [Null] → [nan] (our writers emit [null] for
    non-finite floats). *)

val to_int : t -> int option
val to_string : t -> string option
val escape : string -> string
