(* Perf-trend analytics over time-ordered bench records. *)

type group = Ns | Counter

type series = {
  key : string;
  group : group;
  n : int;
  first : float;
  last : float;
  best : float;
  slope : float;
  regressed : bool;
  improved : bool;
  changed : bool;
}

(* Mirror compare.ml's thresholds so "trend says regressed" and
   "compare would have failed" agree about what counts as signal. *)
let noise_floor_ns = 1e6
let regression_threshold = 0.20

let ols_slope points =
  (* points : (float index, value) list, n >= 2 *)
  let n = float_of_int (List.length points) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  let denom = (n *. sxx) -. (sx *. sx) in
  if denom = 0.0 then 0.0 else ((n *. sxy) -. (sx *. sy)) /. denom

(* Pull (key, value) pairs for one record, tagged by group. *)
let record_pairs (r : Bench_records.record) =
  let num_fields j =
    match j with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) ->
            match Json.to_float v with
            | Some f when Float.is_finite f -> Some (k, f)
            | _ -> None)
          fields
    | _ -> []
  in
  let micro = num_fields (Json.member "microbench_ns_per_run" r.json) in
  let counters =
    num_fields
      (Option.bind
         (Json.member "telemetry_summary" r.json)
         (Json.member "counters"))
  in
  List.map (fun (k, v) -> (Ns, k, v)) micro
  @ List.map (fun (k, v) -> (Counter, k, v)) counters

let analyze records =
  (* (group, key) -> (record index, value) list, newest last. *)
  let tbl : (group * string, (int * float) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iteri
    (fun i r ->
      List.iter
        (fun (g, k, v) ->
          match Hashtbl.find_opt tbl (g, k) with
          | Some l -> l := (i, v) :: !l
          | None -> Hashtbl.add tbl (g, k) (ref [ (i, v) ]))
        (record_pairs r))
    records;
  let series =
    Hashtbl.fold
      (fun (group, key) pts acc ->
        let pts = List.rev !pts in
        let values = List.map snd pts in
        let n = List.length values in
        let first = List.hd values in
        let last = List.nth values (n - 1) in
        let best =
          match group with
          | Ns -> List.fold_left Float.min infinity values
          | Counter -> nan
        in
        let slope =
          if n < 2 then 0.0
          else
            ols_slope (List.map (fun (i, v) -> (float_of_int i, v)) pts)
        in
        let regressed =
          group = Ns && n >= 2 && best >= noise_floor_ns
          && last > best *. (1.0 +. regression_threshold)
        in
        let improved = group = Ns && n >= 2 && last <= first *. 0.8 in
        let changed = group = Counter && n >= 2 && last <> first in
        { key; group; n; first; last; best; slope; regressed; improved;
          changed }
        :: acc)
      tbl []
  in
  List.sort
    (fun a b ->
      match (a.group, b.group) with
      | Ns, Counter -> -1
      | Counter, Ns -> 1
      | _ -> compare a.key b.key)
    series

let flag s =
  if s.regressed then "REGRESSED"
  else if s.improved then "improved"
  else if s.changed then "CHANGED"
  else ""

let render ~files series =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "bench trend over %d records (%s .. %s)\n"
       (List.length files)
       (match files with f :: _ -> f | [] -> "-")
       (match List.rev files with f :: _ -> f | [] -> "-"));
  let section g title unit =
    let rows = List.filter (fun s -> s.group = g) series in
    if rows <> [] then begin
      Buffer.add_string buf (Printf.sprintf "  %s:\n" title);
      Buffer.add_string buf
        (Printf.sprintf "    %-52s %3s %12s %12s %12s %12s  %s\n" "key" "n"
           "first" "last" "best" ("slope/" ^ unit) "flag");
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "    %-52s %3d %12.4g %12.4g %12.4g %12.4g  %s\n"
               s.key s.n s.first s.last
               (if Float.is_nan s.best then s.last else s.best)
               s.slope (flag s)))
        rows
    end
  in
  section Ns "hot-path timings (ns/run)" "rec";
  section Counter "telemetry counters" "rec";
  let n_reg = List.length (List.filter (fun s -> s.regressed) series) in
  let n_chg = List.length (List.filter (fun s -> s.changed) series) in
  Buffer.add_string buf
    (Printf.sprintf "  %d regressed timing(s), %d drifted counter(s)\n" n_reg
       n_chg);
  Buffer.contents buf

let to_json ~files ~warnings series =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"records\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "\"%s\"" (Json.escape f)))
    files;
  Buffer.add_string buf "],\n  \"warnings\": [";
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "\"%s\"" (Json.escape w)))
    warnings;
  Buffer.add_string buf "],\n  \"series\": [";
  let num f = if Float.is_finite f then Printf.sprintf "%.17g" f else "null" in
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"key\": \"%s\", \"group\": \"%s\", \"n\": %d, \"first\": \
            %s, \"last\": %s, \"best\": %s, \"slope\": %s, \"regressed\": %b, \
            \"improved\": %b, \"changed\": %b}"
           (Json.escape s.key)
           (match s.group with Ns -> "ns" | Counter -> "counter")
           s.n (num s.first) (num s.last) (num s.best) (num s.slope)
           s.regressed s.improved s.changed))
    series;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
