(* Stream-file reader behind `ebrc status`. *)

type run_row = {
  run_key : string;
  seq : int;
  t_sim : float;
  events : int;
  pending : int;
  ended : bool;
  run_ok : bool;
}

type figure_row = {
  fig_id : string;
  phase : string;
  t_start : float;
  t_last : float;
  tables : int;
}

type view = {
  manifest : (string * string) list;
  runs : run_row list;
  figures : figure_row list;
  tasks : figure_row list;
  counters : (string * int) list;
  event_rate : float;
  task_rate : float;
  eta : float;
  t_progress : float;
  finished : bool;
  skipped : int;
}

let scalar_to_string = function
  | Json.Str s -> s
  | Json.Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%g" f
  | Json.Bool b -> string_of_bool b
  | Json.Null -> "null"
  | Json.List _ | Json.Obj _ -> "<json>"

let fget j k = Option.bind (Json.member k j) Json.to_float
let iget j k = Option.bind (Json.member k j) Json.to_int
let sget j k = Option.bind (Json.member k j) Json.to_string

let counters_of j =
  match Json.member "counters" j with
  | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) ->
          match Json.to_int v with Some n -> Some (k, n) | None -> None)
        fields
  | _ -> []

let of_lines lines =
  let runs : (string, run_row) Hashtbl.t = Hashtbl.create 16 in
  let run_order = ref [] in
  let figs : (string, figure_row) Hashtbl.t = Hashtbl.create 16 in
  let fig_order = ref [] in
  let tasks : (string, figure_row) Hashtbl.t = Hashtbl.create 16 in
  let task_order = ref [] in
  let manifest = ref [] in
  let first_progress = ref None in
  let last_progress = ref None in
  let finished = ref false in
  let skipped = ref 0 in
  let on_run j ~ended =
    match (sget j "run", iget j "seq") with
    | Some key, Some seq ->
        let prev = Hashtbl.find_opt runs key in
        if prev = None then run_order := key :: !run_order;
        let base =
          match prev with
          | Some r -> r
          | None ->
              { run_key = key; seq = 0; t_sim = 0.0; events = 0; pending = 0;
                ended = false; run_ok = false }
        in
        let t_sim =
          match fget j "t_sim" with Some t -> t | None -> base.t_sim
        in
        let d_events =
          match iget j "d_events" with Some d -> d | None -> 0
        in
        let pending =
          match iget j "pending" with Some p -> p | None -> base.pending
        in
        let run_ok =
          match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> base.run_ok
        in
        Hashtbl.replace runs key
          { base with seq = max base.seq seq; t_sim;
            events = base.events + d_events; pending;
            ended = base.ended || ended; run_ok }
    | _ -> incr skipped
  in
  (* Figure and task records share one lifecycle shape: id + phase +
     wall clock, with figures additionally carrying a table count.
     [start] names the phase whose wall clock anchors elapsed time. *)
  let on_lifecycle tbl order j ~start =
    match (sget j "id", sget j "phase") with
    | Some id, Some phase ->
        let t = match fget j "t_wall" with Some t -> t | None -> nan in
        let prev = Hashtbl.find_opt tbl id in
        if prev = None then order := id :: !order;
        let base =
          match prev with
          | Some f -> f
          | None ->
              { fig_id = id; phase; t_start = nan; t_last = t; tables = 0 }
        in
        let t_start = if phase = start then t else base.t_start in
        let tables =
          match iget j "tables" with Some n -> n | None -> base.tables
        in
        Hashtbl.replace tbl id
          { base with phase; t_start; t_last = t; tables }
    | _ -> incr skipped
  in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match Json.parse line with
        | Error _ -> incr skipped
        | Ok j -> (
            match sget j "type" with
            | Some "run_start" -> on_run j ~ended:false
            | Some "delta" -> on_run j ~ended:false
            | Some "run_end" -> on_run j ~ended:true
            | Some "figure" -> on_lifecycle figs fig_order j ~start:"start"
            | Some "task" -> on_lifecycle tasks task_order j ~start:"leased"
            | Some "progress" ->
                let p =
                  ( (match fget j "t_wall" with Some t -> t | None -> nan),
                    counters_of j )
                in
                if !first_progress = None then first_progress := Some p;
                last_progress := Some p
            | Some "manifest" -> (
                match j with
                | Json.Obj fields ->
                    manifest :=
                      List.filter_map
                        (fun (k, v) ->
                          if k = "type" then None
                          else Some (k, scalar_to_string v))
                        fields
                | _ -> ())
            | Some "stream_end" -> finished := true
            | Some _ | None -> ()))
    lines;
  let counters, t_progress =
    match !last_progress with Some (t, c) -> (c, t) | None -> ([], nan)
  in
  let rate name =
    match (!first_progress, !last_progress) with
    | Some (t0, c0), Some (t1, c1) when t1 > t0 -> (
        match (List.assoc_opt name c0, List.assoc_opt name c1) with
        | Some a, Some b -> float_of_int (b - a) /. (t1 -. t0)
        | _ -> nan)
    | _ -> nan
  in
  let event_rate = rate "sim.events_fired" in
  let task_rate = rate "pool.tasks" in
  let eta =
    match
      (List.assoc_opt "pool.tasks_submitted" counters,
       List.assoc_opt "pool.tasks" counters)
    with
    | Some submitted, Some tasks
      when Float.is_finite task_rate && task_rate > 0.0 ->
        float_of_int (max 0 (submitted - tasks)) /. task_rate
    | _ -> nan
  in
  {
    manifest = !manifest;
    runs =
      List.rev_map (fun k -> Hashtbl.find runs k) !run_order;
    figures = List.rev_map (fun k -> Hashtbl.find figs k) !fig_order;
    tasks = List.rev_map (fun k -> Hashtbl.find tasks k) !task_order;
    counters;
    event_rate;
    task_rate;
    eta;
    t_progress;
    finished = !finished;
    skipped = !skipped;
  }

(* Combine per-worker views into one fleet view: the serve watcher
   reads one stream file per worker and wants a single snapshot.
   Counters sum (each worker's totals are disjoint), rows concatenate
   (workers never share a run/figure/task id — task digests are leased
   exclusively), rates sum where known, and the fleet is finished only
   when every member is. *)
let merge views =
  let sum f = List.fold_left (fun acc v -> acc + f v) 0 views in
  let sum_rate f =
    let known = List.filter (fun v -> Float.is_finite (f v)) views in
    if known = [] then nan
    else List.fold_left (fun acc v -> acc +. f v) 0.0 known
  in
  let max_f f =
    List.fold_left
      (fun acc v ->
        let x = f v in
        if Float.is_finite x && not (Float.is_finite acc && acc >= x) then x
        else acc)
      nan views
  in
  let counters =
    let tbl = Hashtbl.create 32 in
    let order = ref [] in
    List.iter
      (fun v ->
        List.iter
          (fun (k, n) ->
            match Hashtbl.find_opt tbl k with
            | Some m -> Hashtbl.replace tbl k (m + n)
            | None ->
                order := k :: !order;
                Hashtbl.replace tbl k n)
          v.counters)
      views;
    List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order
  in
  {
    manifest =
      (match List.find_opt (fun v -> v.manifest <> []) views with
      | Some v -> v.manifest
      | None -> []);
    runs = List.concat_map (fun v -> v.runs) views;
    figures = List.concat_map (fun v -> v.figures) views;
    tasks = List.concat_map (fun v -> v.tasks) views;
    counters;
    event_rate = sum_rate (fun v -> v.event_rate);
    task_rate = sum_rate (fun v -> v.task_rate);
    eta = max_f (fun v -> v.eta);
    t_progress = max_f (fun v -> v.t_progress);
    finished = views <> [] && List.for_all (fun v -> v.finished) views;
    skipped = sum (fun v -> v.skipped);
  }

let read_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        List.rev !lines)
  with
  | lines -> Ok (of_lines lines)
  | exception Sys_error msg -> Error msg

let fmt_rate r = if Float.is_finite r then Printf.sprintf "%.0f/s" r else "-"

let fmt_eta e =
  if not (Float.is_finite e) then "-"
  else if e >= 3600.0 then Printf.sprintf "%.1fh" (e /. 3600.0)
  else if e >= 60.0 then Printf.sprintf "%.1fm" (e /. 60.0)
  else Printf.sprintf "%.0fs" e

let render v =
  let buf = Buffer.create 2048 in
  if v.manifest <> [] then begin
    Buffer.add_string buf "invocation:";
    List.iter
      (fun (k, s) -> Buffer.add_string buf (Printf.sprintf " %s=%s" k s))
      v.manifest;
    Buffer.add_char buf '\n'
  end;
  if v.figures <> [] then begin
    Buffer.add_string buf "figures:\n";
    List.iter
      (fun f ->
        let elapsed =
          if Float.is_finite f.t_start && Float.is_finite f.t_last then
            Printf.sprintf " %.1fs" (f.t_last -. f.t_start)
          else ""
        in
        let tables =
          if f.tables > 0 then Printf.sprintf " tables=%d" f.tables else ""
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-24s %-7s%s%s\n" f.fig_id f.phase elapsed tables))
      v.figures
  end;
  if v.tasks <> [] then begin
    let count p = List.length (List.filter (fun t -> t.phase = p) v.tasks) in
    Buffer.add_string buf
      (Printf.sprintf "tasks: %d done, %d failed, %d leased\n" (count "done")
         (count "failed")
         (List.length v.tasks - count "done" - count "failed"))
  end;
  if v.runs <> [] then begin
    let live = List.filter (fun r -> not r.ended) v.runs in
    let done_ = List.length v.runs - List.length live in
    Buffer.add_string buf
      (Printf.sprintf "runs: %d done, %d live\n" done_ (List.length live));
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "  %-40s t_sim=%-8g events=%-9d pending=%d\n"
             r.run_key r.t_sim r.events r.pending))
      live
  end;
  let c name = List.assoc_opt name v.counters in
  (match (c "pool.tasks", c "pool.tasks_submitted") with
  | Some t, Some s ->
      Buffer.add_string buf
        (Printf.sprintf
           "pool: %d/%d tasks (%d chunks, %d steals)  rate=%s  eta=%s\n" t s
           (Option.value ~default:0 (c "pool.chunks"))
           (Option.value ~default:0 (c "pool.steals"))
           (fmt_rate v.task_rate) (fmt_eta v.eta))
  | _ -> ());
  if Float.is_finite v.event_rate then
    Buffer.add_string buf
      (Printf.sprintf "engine: %s events\n" (fmt_rate v.event_rate));
  if v.finished then Buffer.add_string buf "stream: finished\n"
  else if v.counters <> [] || v.runs <> [] || v.figures <> [] then
    Buffer.add_string buf "stream: live\n"
  else Buffer.add_string buf "stream: empty\n";
  if v.skipped > 0 then
    Buffer.add_string buf
      (Printf.sprintf "(%d unparsable line(s) skipped)\n" v.skipped);
  Buffer.contents buf

let render_json v =
  let buf = Buffer.create 2048 in
  let num f = if Float.is_finite f then Printf.sprintf "%.17g" f else "null" in
  Buffer.add_string buf "{";
  Buffer.add_string buf "\"manifest\":{";
  List.iteri
    (fun i (k, s) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":\"%s\"" (Json.escape k) (Json.escape s)))
    v.manifest;
  Buffer.add_string buf "},\"figures\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\":\"%s\",\"phase\":\"%s\",\"t_start\":%s,\"t_last\":%s,\
            \"tables\":%d}"
           (Json.escape f.fig_id) (Json.escape f.phase) (num f.t_start)
           (num f.t_last) f.tables))
    v.figures;
  Buffer.add_string buf "],\"tasks\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\":\"%s\",\"phase\":\"%s\",\"t_start\":%s,\"t_last\":%s}"
           (Json.escape f.fig_id) (Json.escape f.phase) (num f.t_start)
           (num f.t_last)))
    v.tasks;
  Buffer.add_string buf "],\"runs\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"run\":\"%s\",\"seq\":%d,\"t_sim\":%s,\"events\":%d,\
            \"pending\":%d,\"ended\":%b,\"ok\":%b}"
           (Json.escape r.run_key) r.seq (num r.t_sim) r.events r.pending
           r.ended r.run_ok))
    v.runs;
  Buffer.add_string buf "],\"counters\":{";
  List.iteri
    (fun i (k, n) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (Json.escape k) n))
    v.counters;
  Buffer.add_string buf
    (Printf.sprintf
       "},\"event_rate\":%s,\"task_rate\":%s,\"eta_s\":%s,\"t_progress\":%s,\
        \"finished\":%b,\"skipped\":%d}"
       (num v.event_rate) (num v.task_rate) (num v.eta) (num v.t_progress)
       v.finished v.skipped);
  Buffer.add_char buf '\n';
  Buffer.contents buf
