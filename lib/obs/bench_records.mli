(** Locating and time-ordering `BENCH_*.json` perf records.

    Two filename shapes coexist historically: day-only
    ([BENCH_2026-08-05.json], from before bench runs were timestamped)
    and full UTC ([BENCH_2026-08-05T141802Z.json]). Ordering
    lexicographically by filename happens to work only because of the
    shapes' shared prefix — and silently breaks for any third shape —
    so record order is derived from the {e embedded timestamp}
    instead: day-only files normalise to midnight UTC, records without
    a recognisable timestamp sort last (with a warning) in filename
    order. *)

val timestamp_of_filename : string -> string option
(** [Some "YYYY-MM-DDTHHMMSSZ"] for the two known shapes (day-only
    normalises to ["T000000Z"]); [None] otherwise. Input is a base
    name, not a path. *)

type record = {
  file : string;  (** base filename *)
  ts : string option;  (** normalised timestamp, [None] when missing *)
  json : Json.t;
}

val list_ordered : dir:string -> string list * string list
(** [(files, warnings)]: all [BENCH_*.json] base names in [dir] in
    timestamp order (ties and missing timestamps break by filename;
    missing-timestamp files last), plus one warning per file whose
    name carries no recognisable timestamp. *)

val load_all : dir:string -> record list * string list
(** {!list_ordered}, with each record parsed. Unreadable or
    unparsable files are dropped with a warning. *)
