(* Fixed-size domain pool with chunked work-stealing.

   Workers are spawned once and parked on a condition variable between
   jobs; a job is an index range [0, length) that workers (and the
   submitting caller) drain by fetch-and-add on an atomic cursor, a
   chunk of indices at a time. Task results are written into
   caller-owned slots keyed by task index, never appended, so the
   output order is independent of the schedule — that, plus per-task
   PRNG streams (Prng.stream), is what makes parallel sweeps
   bit-identical to their sequential runs. *)

module Tm = Ebrc_telemetry.Telemetry

let m_jobs = Tm.Counter.make ~help:"parallel jobs submitted" "pool.jobs"
let m_tasks = Tm.Counter.make ~help:"tasks drained by pool jobs" "pool.tasks"
let m_chunks = Tm.Counter.make ~help:"work chunks executed" "pool.chunks"

let m_steals =
  Tm.Counter.make
    ~help:"chunks executed by a domain other than the submitter" "pool.steals"

let m_chunk_seconds =
  Tm.Histogram.make ~help:"wall-clock seconds per executed chunk"
    "pool.chunk_seconds"

let m_tasks_submitted =
  Tm.Counter.make
    ~help:"tasks posted with jobs (drained or not); ETA denominator"
    "pool.tasks_submitted"

type job = {
  run_chunk : int -> int -> unit;  (* process indices [lo, hi) *)
  length : int;
  chunk : int;
  cursor : int Atomic.t;
  submitter : int;                 (* domain id of the submitting caller *)
  mutable finished_workers : int;  (* protected by the pool lock *)
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  n_domains : int;
  mutable workers : unit Domain.t array;  (* set once, right after spawn *)
  lock : Mutex.t;
  wake : Condition.t;              (* new job posted, or shutdown *)
  idle : Condition.t;              (* all workers done with the job *)
  mutable job : job option;
  mutable epoch : int;             (* bumped once per posted job *)
  mutable closed : bool;
}

let default_jobs () =
  match Sys.getenv_opt "EBRC_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let execute job =
  let continue = ref true in
  while !continue do
    let lo = Atomic.fetch_and_add job.cursor job.chunk in
    if lo >= job.length || Atomic.get job.failure <> None then
      continue := false
    else begin
      let hi = min job.length (lo + job.chunk) in
      let telem = Tm.is_on () in
      let t0 = if telem then Tm.wall_now () else 0.0 in
      (try job.run_chunk lo hi
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         (* Keep the first failure; later ones lose the race. *)
         ignore (Atomic.compare_and_set job.failure None (Some (e, bt))));
      if telem then begin
        Tm.Counter.incr m_chunks;
        Tm.Counter.add m_tasks (hi - lo);
        if (Domain.self () :> int) <> job.submitter then
          Tm.Counter.incr m_steals;
        Tm.Histogram.observe m_chunk_seconds (Tm.wall_now () -. t0)
      end;
      (* Live-stream progress probe: rate-limited inside, one atomic
         load when streaming is off. *)
      Ebrc_telemetry.Stream.wall_tick ()
    end
  done

let worker_loop t =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while (not t.closed) && t.epoch = !seen do
      Condition.wait t.wake t.lock
    done;
    if t.closed then begin
      running := false;
      Mutex.unlock t.lock
    end
    else begin
      seen := t.epoch;
      let job = Option.get t.job in
      Mutex.unlock t.lock;
      execute job;
      Mutex.lock t.lock;
      job.finished_workers <- job.finished_workers + 1;
      if job.finished_workers = t.n_domains - 1 then Condition.broadcast t.idle;
      Mutex.unlock t.lock
    end
  done

let create ?domains () =
  let n_domains = max 1 (match domains with Some d -> d | None -> default_jobs ()) in
  let t =
    {
      n_domains;
      workers = [||];
      lock = Mutex.create ();
      wake = Condition.create ();
      idle = Condition.create ();
      job = None;
      epoch = 0;
      closed = false;
    }
  in
  t.workers <-
    Array.init (n_domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let domains t = t.n_domains

(* Run [run_chunk] over the index range [0, length). The caller drains
   chunks alongside the workers, then waits for every worker to retire
   from the job before returning (so results are published and the
   pool can accept the next job). *)
let check_open t =
  Mutex.lock t.lock;
  let closed = t.closed in
  Mutex.unlock t.lock;
  if closed then invalid_arg "Pool: used after shutdown"

let run t ~length run_chunk =
  if length > 0 then begin
    if Tm.is_on () then begin
      Tm.Counter.incr m_jobs;
      Tm.Counter.add m_tasks_submitted length;
      if t.n_domains = 1 || length = 1 then begin
        (* The inline fast path bypasses [execute]; account for it
           here so pool.tasks totals match across domain counts. *)
        Tm.Counter.incr m_chunks;
        Tm.Counter.add m_tasks length
      end
    end;
    if t.n_domains = 1 || length = 1 then begin
      (* Inline fast path: no handoff, exceptions propagate directly. *)
      run_chunk 0 length;
      Ebrc_telemetry.Stream.wall_tick ()
    end
    else begin
      let job =
        {
          run_chunk;
          length;
          (* Small chunks (several per domain) absorb task-duration
             skew without much cursor contention. *)
          chunk = max 1 (length / (t.n_domains * 4));
          cursor = Atomic.make 0;
          submitter = (Domain.self () :> int);
          finished_workers = 0;
          failure = Atomic.make None;
        }
      in
      Mutex.lock t.lock;
      if t.closed then begin
        Mutex.unlock t.lock;
        invalid_arg "Pool: used after shutdown"
      end;
      t.job <- Some job;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.wake;
      Mutex.unlock t.lock;
      execute job;
      Mutex.lock t.lock;
      while job.finished_workers < t.n_domains - 1 do
        Condition.wait t.idle t.lock
      done;
      t.job <- None;
      Mutex.unlock t.lock;
      match Atomic.get job.failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* ----------------------- crash isolation --------------------------- *)

type task_error = {
  t_index : int;
  t_seed : int;
  t_attempts : int;
  t_exn : exn;
  t_backtrace : Printexc.raw_backtrace;
}

exception Task_failed of task_error
exception Task_skipped

let () =
  Printexc.register_printer (function
    | Task_failed e ->
        Some
          (Printf.sprintf
             "Pool.Task_failed (task #%d, seed %d, attempt %d): %s" e.t_index
             e.t_seed e.t_attempts (Printexc.to_string e.t_exn))
    | Task_skipped -> Some "Pool.Task_skipped (only-task filter)"
    | _ -> None)

let m_task_failures =
  Tm.Counter.make ~help:"tasks whose final attempt raised" "pool.task_failures"

let m_task_retries =
  Tm.Counter.make ~help:"task attempts retried after a failure"
    "pool.task_retries"

let only_task_ref =
  ref
    (match Sys.getenv_opt "EBRC_ONLY_TASK" with
    | Some s -> int_of_string_opt (String.trim s)
    | None -> None)

let set_only_task o = only_task_ref := o
let only_task () = !only_task_ref

let try_init_gen ~honor_only ?(retries = 0) ?seed_of t n f =
  check_open t;
  if n < 0 then invalid_arg "Pool.try_init: negative length";
  if retries < 0 then invalid_arg "Pool.try_init: negative retries";
  let seed_of = match seed_of with Some g -> g | None -> fun i -> i in
  let only = if honor_only then !only_task_ref else None in
  if n = 0 then [||]
  else begin
    let nowhere = Printexc.get_callstack 0 in
    let placeholder =
      Error
        { t_index = -1; t_seed = 0; t_attempts = 0; t_exn = Task_skipped;
          t_backtrace = nowhere }
    in
    let results = Array.make n placeholder in
    (* [one] never raises, so a crashing task can neither abort its
       chunk-mates nor poison the job: every sibling still runs and
       publishes its own Ok/Error slot. *)
    let one i =
      match only with
      | Some k when k <> i ->
          Error
            { t_index = i; t_seed = seed_of i; t_attempts = 0;
              t_exn = Task_skipped; t_backtrace = nowhere }
      | _ ->
          let rec attempt a =
            match f ~attempt:a i with
            | v -> Ok v
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                if a < retries then begin
                  if Tm.is_on () then Tm.Counter.incr m_task_retries;
                  attempt (a + 1)
                end
                else begin
                  if Tm.is_on () then Tm.Counter.incr m_task_failures;
                  Error
                    { t_index = i; t_seed = seed_of i; t_attempts = a + 1;
                      t_exn = e; t_backtrace = bt }
                end
          in
          attempt 0
    in
    run t ~length:n (fun lo hi ->
        for i = lo to hi - 1 do
          results.(i) <- one i
        done);
    results
  end

let try_init ?retries ?seed_of t n f =
  try_init_gen ~honor_only:true ?retries ?seed_of t n f

(* Single-task crash isolation for callers that are not sweeps — the
   serve worker leases one task at a time and must not be filtered by
   a sweep-replay EBRC_ONLY_TASK left in the environment. *)
let run_isolated ?retries t f =
  (try_init_gen ~honor_only:false ?retries t 1 (fun ~attempt _ ->
       f ~attempt)).(0)

(* Lowest failing index, so the raised error is deterministic (the old
   first-failure-wins atomic depended on the chunk schedule). *)
let lowest_error results =
  let err = ref None in
  for i = Array.length results - 1 downto 0 do
    match results.(i) with Error e -> err := Some e | Ok _ -> ()
  done;
  !err

let reap results =
  match lowest_error results with
  | Some e ->
      let exn = Task_failed e in
      Ebrc_telemetry.Flight.on_exn ~reason:"pool.task_failed" exn;
      raise exn
  | None -> Array.map (function Ok v -> v | Error _ -> assert false) results

let map t f xs =
  let n = Array.length xs in
  reap (try_init_gen ~honor_only:false t n (fun ~attempt:_ i -> f xs.(i)))

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let init t n f =
  if n < 0 then invalid_arg "Pool.init: negative length";
  reap (try_init_gen ~honor_only:false t n (fun ~attempt:_ i -> f i))

let shutdown t =
  Mutex.lock t.lock;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.lock;
  if not was_closed then Array.iter Domain.join t.workers

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Process-wide warm pools, one per domain count. Spawning a domain
   costs on the order of a millisecond, so a sweep layer that opens a
   fresh pool per sweep pays that again and again — with quick-mode
   sweeps of a few dozen points the spawn tax exceeded the parallel
   gain (the PR1 jobs=2 regression). Shared pools are spawned on first
   use, kept parked between jobs, and joined at process exit. *)
let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4
let shared_lock = Mutex.create ()
let shared_at_exit = ref false

let shared ?domains () =
  let n =
    max 1 (match domains with Some d -> d | None -> default_jobs ())
  in
  Mutex.lock shared_lock;
  let pool =
    match Hashtbl.find_opt shared_pools n with
    | Some p when not p.closed -> p
    | _ ->
        let p = create ~domains:n () in
        Hashtbl.replace shared_pools n p;
        if not !shared_at_exit then begin
          shared_at_exit := true;
          at_exit (fun () ->
              Mutex.lock shared_lock;
              let ps =
                Hashtbl.fold (fun _ p acc -> p :: acc) shared_pools []
              in
              Hashtbl.reset shared_pools;
              Mutex.unlock shared_lock;
              List.iter shutdown ps)
        end;
        p
  in
  Mutex.unlock shared_lock;
  pool
