(** Fixed-size OCaml 5 domain pool for embarrassingly parallel sweeps.

    The experiment layer runs large grids of independent simulations
    (per-figure parameter sweeps, Monte-Carlo replications). This pool
    fans such grids out over [domains] domains with chunked
    work-stealing over an atomic index.

    Determinism contract: [map]/[init] write each task's result into
    the slot of its task index, and every stochastic task must derive
    its own generator from its index (see {!Ebrc_rng.Prng.stream}), so
    the output is bit-identical to the sequential run regardless of
    pool size or scheduling order. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (the
    caller participates in every job, so [domains] is the total
    parallelism). [domains] defaults to {!default_jobs}[ ()] and is
    clamped to at least 1; a pool of 1 spawns nothing and runs every
    job inline. *)

val domains : t -> int
(** Total parallelism of the pool (workers + the calling domain). *)

val default_jobs : unit -> int
(** The [EBRC_JOBS] environment variable if set to a positive integer,
    else [Domain.recommended_domain_count ()]. *)

(** {2 Crash isolation}

    Every task runs under a per-task exception barrier: a crashing
    task never aborts its chunk-mates, and all sibling results are
    preserved. {!try_init} exposes the per-task [result]s directly;
    [map]/[init] are built on it and raise {!Task_failed} carrying the
    lowest failing index (deterministic, unlike a first-observed
    race), its seed, and the original exception + backtrace — enough
    to replay exactly one task with {!set_only_task} /
    [--only-task]. *)

type task_error = {
  t_index : int;       (** task index within the job *)
  t_seed : int;        (** [seed_of t_index]; the index itself by default *)
  t_attempts : int;    (** attempts made, including the failing one *)
  t_exn : exn;         (** the original exception *)
  t_backtrace : Printexc.raw_backtrace;
}

exception Task_failed of task_error

exception Task_skipped
(** The [t_exn] of tasks filtered out by {!set_only_task}. *)

val try_init :
  ?retries:int -> ?seed_of:(int -> int) -> t -> int ->
  (attempt:int -> int -> 'a) -> ('a, task_error) result array
(** Crash-isolated parallel [Array.init]: task [i] yields [Ok] of its
    value or [Error] describing its final failure; siblings always run
    to completion. [retries] (default 0) re-runs a failing task up to
    that many extra times, passing the attempt number (0-based) so the
    task can derive a fresh PRNG sub-stream per attempt, e.g.
    [Prng.stream ~root (seed_of i + attempt)]. [seed_of] (default
    [Fun.id]) records each task's seed in its [task_error] so a crash
    report identifies the replication. Honors {!set_only_task}:
    filtered tasks return [Error] with [t_exn = Task_skipped]. *)

val run_isolated :
  ?retries:int -> t -> (attempt:int -> 'a) -> ('a, task_error) result
(** One task under the same per-task exception barrier as {!try_init}:
    [Ok] of the value or [Error] describing the final failure, with
    [retries] extra attempts (the attempt number lets the task derive
    a fresh PRNG sub-stream). Unlike {!try_init} it ignores
    {!set_only_task} — it serves callers (the sweep-service worker)
    whose unit of replay is not a sweep index. *)

val set_only_task : int option -> unit
(** Replay filter for {!try_init} (env default: [EBRC_ONLY_TASK]):
    when set, only the matching task index actually runs — the knob
    that makes a [Task_failed] report replayable in isolation. Ignored
    by [map]/[init]. *)

val only_task : unit -> int option

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel [Array.map]. Tasks are crash-isolated:
    if any raise, the whole job still drains, then {!Task_failed} for
    the lowest failing index is raised in the caller; the pool remains
    usable. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel [List.map]. *)

val init : t -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init], same failure contract as {!map}. *)

val shutdown : t -> unit
(** Join all workers. Idempotent; using the pool afterwards raises
    [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it
    down afterwards, whether [f] returns or raises. *)

val shared : ?domains:int -> unit -> t
(** A process-wide pool of the given size, spawned on first use and
    reused by every subsequent call with the same [domains] (workers
    stay parked between jobs, so repeated sweeps pay the domain-spawn
    cost once instead of per sweep). Shut down automatically at
    process exit; do not call {!shutdown} on it — a closed shared
    pool is replaced on the next call. *)
