(** Fixed-size OCaml 5 domain pool for embarrassingly parallel sweeps.

    The experiment layer runs large grids of independent simulations
    (per-figure parameter sweeps, Monte-Carlo replications). This pool
    fans such grids out over [domains] domains with chunked
    work-stealing over an atomic index.

    Determinism contract: [map]/[init] write each task's result into
    the slot of its task index, and every stochastic task must derive
    its own generator from its index (see {!Ebrc_rng.Prng.stream}), so
    the output is bit-identical to the sequential run regardless of
    pool size or scheduling order. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (the
    caller participates in every job, so [domains] is the total
    parallelism). [domains] defaults to {!default_jobs}[ ()] and is
    clamped to at least 1; a pool of 1 spawns nothing and runs every
    job inline. *)

val domains : t -> int
(** Total parallelism of the pool (workers + the calling domain). *)

val default_jobs : unit -> int
(** The [EBRC_JOBS] environment variable if set to a positive integer,
    else [Domain.recommended_domain_count ()]. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel [Array.map]. If any task raises, the
    first exception observed is re-raised in the caller once in-flight
    chunks have drained; the pool remains usable. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel [List.map]. *)

val init : t -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]. *)

val shutdown : t -> unit
(** Join all workers. Idempotent; using the pool afterwards raises
    [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it
    down afterwards, whether [f] returns or raises. *)

val shared : ?domains:int -> unit -> t
(** A process-wide pool of the given size, spawned on first use and
    reused by every subsequent call with the same [domains] (workers
    stay parked between jobs, so repeated sweeps pay the domain-spawn
    cost once instead of per sweep). Shut down automatically at
    process exit; do not call {!shutdown} on it — a closed shared
    pool is replaced on the next call. *)
