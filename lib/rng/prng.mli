(** Deterministic, splittable PRNG (splitmix64).

    All stochastic components of the reproduction take an explicit
    generator so that every experiment is reproducible bit-for-bit. *)

type t

val create : seed:int -> t

val split : t -> t
(** Derive an independent child stream (e.g. one per simulated flow). *)

val stream : root:int -> int -> t
(** [stream ~root i] is the [i]-th independent stream under root seed
    [root]. Unlike {!split} it is a pure function of [(root, i)], so
    parallel tasks can each derive their own generator and produce
    results bit-identical to a sequential run regardless of scheduling.
    Raises on a negative index. *)

val copy : t -> t

val state_bits : t -> int64
(** The raw 64-bit state (diagnostic; lets tests audit the phase
    distance between streams). *)

val gamma : int64
(** The splitmix64 state increment per draw (the golden gamma): the
    state after [n] draws is [state_bits t + n * gamma]. *)

val next_int64 : t -> int64

val float_unit : t -> float
(** Uniform on [0, 1). *)

val float_unit_positive : t -> float
(** Uniform on (0, 1); safe as an argument to [log]. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound). Raises on non-positive bound. *)

val bool : t -> bool
