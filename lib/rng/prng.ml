(* Deterministic, splittable pseudo-random number generator.

   We implement splitmix64 (Steele, Lea, Flood 2014) rather than wrapping
   [Random.State] so that experiment outputs are reproducible bit-for-bit
   regardless of the OCaml runtime version, and so that independent
   streams can be split off for each simulated flow. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  (* Derive an independent stream: one draw seeds the child. *)
  { state = next_int64 t }

(* Independent stream for parallel task [index] under [root]: unlike
   [split], the derivation is a pure function of (root, index), so a
   task's stream does not depend on how many draws other tasks made —
   the keystone of the parallel determinism contract. Two rounds of
   mix64 scatter neighbouring indices across the 2^64 state space, so
   the phase distance between any two streams (every generator walks
   the same +gamma orbit) is astronomically unlikely to be within any
   practical draw window. *)
let stream ~root index =
  if index < 0 then invalid_arg "Prng.stream: negative index";
  let z =
    Int64.add (Int64.of_int root)
      (Int64.mul golden_gamma (Int64.of_int index))
  in
  let z = mix64 z in
  { state = mix64 (Int64.add z golden_gamma) }

let copy t = { state = t.state }

let state_bits t = t.state
let gamma = golden_gamma

(* Uniform in [0, 1): use the top 53 bits so every double in the range is
   reachable with the correct probability. *)
let float_unit t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

(* Uniform in [0, 1): never exactly 0, safe as argument to log. *)
let float_unit_positive t =
  let u = float_unit t in
  if u = 0.0 then 0x1.0p-53 else u

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < 2^-40 for the
     bounds used in this project (all < 2^20). Keep 62 bits so the
     value fits OCaml's native int without wrapping negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L
