(* Growable append-only float buffer: the allocation-free replacement
   for the [float Queue.t] interval logs on the simulator hot path
   (a Queue cell per sample vs amortized doubling here), with O(1)
   length and O(n) snapshot instead of a full Seq traversal. *)

type t = { mutable buf : float array; mutable len : int }

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Floatbuf.create: capacity < 1";
  { buf = Array.make capacity 0.0; len = 0 }

let length t = t.len

let add t x =
  if t.len = Array.length t.buf then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end;
  t.buf.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Floatbuf.get: index out of bounds";
  t.buf.(i)

let to_array t = Array.sub t.buf 0 t.len

(* Elements from index [from] (inclusive) to the end; the tail added
   since a snapshot of [length]. *)
let tail t ~from =
  if from < 0 || from > t.len then invalid_arg "Floatbuf.tail: bad index";
  Array.sub t.buf from (t.len - from)

let sum t =
  let acc = ref 0.0 in
  for i = 0 to t.len - 1 do
    acc := !acc +. t.buf.(i)
  done;
  !acc

let iter f t =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done
