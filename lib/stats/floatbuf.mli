(** Growable append-only float buffer — allocation-free sample log for
    the simulator hot path (amortized-doubling array instead of a
    [Queue.t] cell per sample). *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val add : t -> float -> unit
val get : t -> int -> float

val to_array : t -> float array
(** Fresh array of the [length] elements added so far. *)

val tail : t -> from:int -> float array
(** Elements added since a snapshot of [length] taken earlier. *)

val sum : t -> float
val iter : (float -> unit) -> t -> unit
