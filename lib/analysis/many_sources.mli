(** The many-sources limit (paper §IV-A.1, Claim 3): a source driven by
    an exogenous congestion process observes the loss-event rate of
    Eq. (13) — a send-rate-weighted average of the per-state rates — so
    responsive sources (TCP) see smaller p than sluggish equation-based
    sources, which see smaller p than non-adaptive (Poisson) probes:
    p′ ≤ p ≤ p″. *)

type state = {
  p_i : float;   (** Per-packet loss-event rate in this state. *)
  pi_i : float;  (** Stationary probability. *)
}

type congestion_process = state array

val limit_loss_event_rate : congestion_process -> rates:float array -> float
(** Eq. (13) for a source holding time-average rate [rates.(i)] in
    state i. *)

val poisson_profile : congestion_process -> float array
(** Constant (non-adaptive) rate profile → p″. *)

val responsive_profile :
  congestion_process -> formula_rate:(float -> float) -> float array
(** Ideally responsive profile x_i = formula_rate p_i → p′. *)

val partially_responsive_profile :
  congestion_process ->
  formula_rate:(float -> float) ->
  responsiveness:float ->
  float array
(** Geometric interpolation between non-adaptive (0) and fully
    responsive (1) — the sluggishness induced by the averaging
    window L. *)

val finite_timescale_loss_event_rate :
  congestion_process -> rates:float array -> mean_sojourn:float -> float
(** The pre-limit Eq. (12) with per-state weights
    bᵢ = λᵢTᵢ/(1 + λᵢTᵢ); converges to {!limit_loss_event_rate} as the
    sojourns grow long against the control timescale (bᵢ → 1). *)

val eq12_weight : p_i:float -> rate:float -> mean_sojourn:float -> float

type mc_result = { observed_p : float; events : int; packets : float }

val monte_carlo :
  Ebrc_rng.Prng.t ->
  congestion_process ->
  rates:float array ->
  mean_sojourn:float ->
  steps:int ->
  mc_result
(** Monte-Carlo sampling of the congestion process by a source with the
    given rate profile; converges to [limit_loss_event_rate]. *)

val monte_carlo_batched :
  ?jobs:int ->
  root_seed:int ->
  congestion_process ->
  rates:float array ->
  mean_sojourn:float ->
  steps:int ->
  batches:int ->
  mc_result
(** {!monte_carlo} split into [batches] independent chunks, each drawing
    from its own [Prng.stream ~root:root_seed] stream, fanned out over
    [jobs] domains (default 1) and recombined in batch order — so the
    result is bit-identical for every [jobs]. *)
