(* The many-sources limit (paper Section IV-A.1, Claim 3).

   Senders are driven by an exogenous congestion process Z(t) on a finite
   state space: in state i, loss events hit a source at real-time
   intensity lambda_i proportional to its send rate times the state's
   per-packet loss ratio; equivalently, the per-packet loss-event
   probability is 1/interval_i. The source's observed loss-event rate is

       p = (number of loss events) / (packets sent),

   and in the separation-of-timescales limit Eq. (13) gives

       p -> sum_i p_i x_i pi_i / sum_i x_i pi_i,

   a send-rate weighted average of the per-state rates p_i. A responsive
   source (TCP) weights good states (small p_i) more, so p' <= p <= p''
   where p'' is the non-adaptive (Poisson/CBR) average. This module
   provides both the analytic Eq. (13) evaluation for a given rate
   profile {x_i} and a Monte-Carlo sampler in which sources with tunable
   responsiveness ride the same congestion process. *)

module Prng = Ebrc_rng.Prng
module Dist = Ebrc_rng.Dist
module Loss_interval = Ebrc_estimator.Loss_interval
module Pool = Ebrc_parallel.Pool

type state = {
  p_i : float;            (* loss-event rate (per packet) in this state *)
  pi_i : float;           (* stationary probability *)
}

type congestion_process = state array

let validate (cp : congestion_process) =
  if Array.length cp = 0 then invalid_arg "Many_sources: empty state space";
  let total = Array.fold_left (fun acc s -> acc +. s.pi_i) 0.0 cp in
  if abs_float (total -. 1.0) > 1e-9 then
    invalid_arg "Many_sources: stationary probabilities must sum to 1";
  Array.iter
    (fun s ->
      if s.p_i <= 0.0 || s.p_i > 1.0 then
        invalid_arg "Many_sources: p_i must be in (0,1]";
      if s.pi_i < 0.0 then invalid_arg "Many_sources: negative pi_i")
    cp

(* Eq. (13): the loss-event rate experienced by a source whose
   time-average rate in state i is rates.(i). *)
let limit_loss_event_rate (cp : congestion_process) ~rates =
  validate cp;
  if Array.length rates <> Array.length cp then
    invalid_arg "Many_sources.limit_loss_event_rate: rate profile mismatch";
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i s ->
      let x = rates.(i) in
      if x < 0.0 then invalid_arg "Many_sources: negative rate";
      num := !num +. (s.p_i *. x *. s.pi_i);
      den := !den +. (x *. s.pi_i))
    cp;
  if !den = 0.0 then invalid_arg "Many_sources: all rates zero";
  !num /. !den

(* The three canonical rate profiles of Claim 3. [formula_rate] maps a
   per-state loss-event rate to the rate an ideally responsive
   (TCP-like) source would hold in that state. *)
let poisson_profile cp = Array.map (fun _ -> 1.0) cp

let responsive_profile cp ~formula_rate = Array.map (fun s -> formula_rate s.p_i) cp

(* Partially responsive: geometric interpolation between the Poisson
   profile (responsiveness 0) and the fully responsive one
   (responsiveness 1) — models the sluggishness induced by the averaging
   window L. *)
let partially_responsive_profile cp ~formula_rate ~responsiveness =
  if responsiveness < 0.0 || responsiveness > 1.0 then
    invalid_arg "Many_sources: responsiveness not in [0,1]";
  Array.map
    (fun s -> formula_rate s.p_i ** responsiveness)
    cp

(* The finite-timescale version (paper Eq. (12)): before the
   separation-of-timescales limit, each state's contribution is weighted
   by

     b_i = E0[packets sent during a sojourn | i] /
           E0[integral of X over the sojourn | i]

   For a source holding constant rate x_i within state i, the packets
   counted per unit of integrated rate differ from 1 only through the
   boundary effect of loss-event intervals straddling state changes;
   we model it as b_i = lambda_i T_i / (1 + lambda_i T_i) scaled to 1 in
   the limit, with lambda_i = p_i x_i the real-time loss intensity and
   T_i the mean sojourn. b_i -> 1 as lambda' / lambda_i -> 0 (sojourns
   long against the control timescale), recovering Eq. (13). *)
let eq12_weight ~p_i ~rate ~mean_sojourn =
  let lambda_i = p_i *. rate in
  let events_per_sojourn = lambda_i *. mean_sojourn in
  events_per_sojourn /. (1.0 +. events_per_sojourn)

let finite_timescale_loss_event_rate (cp : congestion_process) ~rates
    ~mean_sojourn =
  validate cp;
  if Array.length rates <> Array.length cp then
    invalid_arg "Many_sources.finite_timescale_loss_event_rate: rate mismatch";
  if mean_sojourn <= 0.0 then
    invalid_arg "Many_sources.finite_timescale_loss_event_rate: sojourn <= 0";
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i s ->
      let x = rates.(i) in
      let b = eq12_weight ~p_i:s.p_i ~rate:x ~mean_sojourn in
      num := !num +. (b *. s.p_i *. x *. s.pi_i);
      den := !den +. (b *. x *. s.pi_i))
    cp;
  if !den = 0.0 then invalid_arg "Many_sources: all weights zero";
  !num /. !den

(* Monte-Carlo: one source rides the congestion process; sojourns are
   geometric with mean [mean_sojourn] (counted in packets of a unit-rate
   clock); the source's packet count advances proportionally to its
   current rate, and each of its packets is the start of a loss event
   with per-packet probability p_i. The source adapts its rate to the
   state with a lag of [lag] sojourns (lag 0 = TCP-like, instant;
   lag = infinity = Poisson). Returns the observed loss-event rate. *)
type mc_result = { observed_p : float; events : int; packets : float }

let monte_carlo rng (cp : congestion_process) ~rates ~mean_sojourn ~steps =
  validate cp;
  if Array.length rates <> Array.length cp then
    invalid_arg "Many_sources.monte_carlo: rate profile mismatch";
  if mean_sojourn <= 0.0 then
    invalid_arg "Many_sources.monte_carlo: mean_sojourn <= 0";
  if steps < 1 then invalid_arg "Many_sources.monte_carlo: steps < 1";
  let n = Array.length cp in
  (* Draw states iid from the stationary law: sojourns are exchangeable,
     which is all Eq. (13) needs. *)
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i s ->
      acc := !acc +. s.pi_i;
      cumulative.(i) <- !acc)
    cp;
  let draw_state () =
    let u = Prng.float_unit rng in
    let rec find i = if u <= cumulative.(i) || i = n - 1 then i else find (i + 1) in
    find 0
  in
  let events = ref 0 and packets = ref 0.0 in
  for _ = 1 to steps do
    let i = draw_state () in
    let sojourn = Dist.exponential_mean rng ~mean:mean_sojourn in
    let sent = rates.(i) *. sojourn in
    (* Loss events among [sent] packets at per-packet rate p_i. *)
    let expected_events = cp.(i).p_i *. sent in
    events := !events + Dist.poisson rng ~mean:expected_events;
    packets := !packets +. sent
  done;
  { observed_p = float_of_int !events /. !packets; events = !events;
    packets = !packets }

(* Batched Monte-Carlo: split [steps] across [batches] independent
   chunks, each with its own (root_seed, batch-index) PRNG stream, and
   fan the chunks out over [jobs] domains. Chunk b gets
   steps/batches (+1 for b < steps mod batches) sojourns; counts are
   combined in batch-index order. Because each chunk's stream and step
   count are functions of (root_seed, b) alone, the result is
   bit-identical for every [jobs], including the sequential run. *)
let monte_carlo_batched ?(jobs = 1) ~root_seed (cp : congestion_process)
    ~rates ~mean_sojourn ~steps ~batches =
  if batches < 1 then invalid_arg "Many_sources.monte_carlo_batched: batches < 1";
  if steps < batches then
    invalid_arg "Many_sources.monte_carlo_batched: steps < batches";
  let base = steps / batches and extra = steps mod batches in
  let one b =
    let rng = Prng.stream ~root:root_seed b in
    let chunk = base + if b < extra then 1 else 0 in
    monte_carlo rng cp ~rates ~mean_sojourn ~steps:chunk
  in
  let parts =
    if jobs <= 1 || batches < 4 then Array.init batches one
    else Pool.init (Pool.shared ~domains:jobs ()) batches one
  in
  let events = ref 0 and packets = ref 0.0 in
  Array.iter
    (fun (r : mc_result) ->
      events := !events + r.events;
      packets := !packets +. r.packets)
    parts;
  { observed_p = float_of_int !events /. !packets; events = !events;
    packets = !packets }
