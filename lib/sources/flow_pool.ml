(* Struct-of-arrays flow pool: the per-flow hot state of many cheap
   flows, laid out as flat columns instead of one heap record per flow.

   At 10^4..10^6 flows, per-flow records cost a pointer chase per field
   access and scatter the working set across the heap; columns keep
   each access pattern (all rates, all next-send times, ...) dense and
   prefetchable, and the float columns are unboxed floatarrays. The
   record is exposed [private] (precedent: Engine.t, Timing_wheel.t)
   so hot loops read and write columns directly — array contents are
   freely mutable through the fields; only the pool's own bookkeeping
   ([n]) is protected behind the API.

   Column ownership is by convention: a source that uses the pool
   decides which columns it maintains (Flock keeps [rate] as its tick
   gap and [seq] as the per-flow sequence; the scenario keeps the
   warmup-snapshot marks and fills rate/rtt/loss_rate at measurement
   time). Unused columns cost their allocation once and nothing per
   event. *)

type t = {
  cap : int;
  mutable n : int;
  rate : floatarray;       (* per-flow pacing value: pkt/s for senders,
                              tick gap (s) for Flock *)
  next_send : floatarray;  (* absolute next-send time, s *)
  rtt : floatarray;        (* smoothed / measured RTT, s *)
  loss_rate : floatarray;  (* loss-event rate estimate *)
  seq : int array;         (* next sequence number *)
  sent : int array;        (* packets sent *)
  snap_recv : int array;   (* warmup snapshot: packets received *)
  snap_ivs : int array;    (* warmup snapshot: loss intervals *)
  snap_pairs : int array;  (* warmup snapshot: RTT sample pairs *)
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg "Flow_pool.create: capacity must be >= 1";
  {
    cap = capacity;
    n = 0;
    rate = Float.Array.make capacity 0.0;
    next_send = Float.Array.make capacity 0.0;
    rtt = Float.Array.make capacity 0.0;
    loss_rate = Float.Array.make capacity 0.0;
    seq = Array.make capacity 0;
    sent = Array.make capacity 0;
    snap_recv = Array.make capacity 0;
    snap_ivs = Array.make capacity 0;
    snap_pairs = Array.make capacity 0;
  }

let length t = t.n
let capacity t = t.cap

let add ?(rate = 0.0) ?(next_send = 0.0) t =
  if t.n >= t.cap then invalid_arg "Flow_pool.add: pool full";
  let i = t.n in
  t.n <- i + 1;
  Float.Array.set t.rate i rate;
  Float.Array.set t.next_send i next_send;
  i
