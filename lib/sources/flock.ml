(* A flock of very cheap periodic flows, built to put the scheduler —
   not the protocol stack — on the critical path. Packet-level TFRC
   flows carry too much per-event protocol work to expose scheduler
   costs at scale, so each flock member is the minimal credible flow:
   a periodic tick that bumps a sequence number, folds itself into a
   dispatch-order fingerprint, and reschedules.

   With 10^5 members the engine holds ~10^5 pending events at all
   times, which is exactly the regime where a binary heap pays ~17
   cache-missing sift levels per operation and the timing wheel pays
   O(1). Per-flow state lives in a struct-of-arrays Flow_pool (the
   tick gap in the [rate] column, the sequence number in [seq]) and
   every member's tick thunk is preallocated at setup, so the steady
   state allocates nothing — what the bench times is scheduling, not
   construction.

   The fingerprint folds (flow, seq) in dispatch order with plain
   wrapping-int mixing, so two engines agree on it iff they dispatched
   the same events in the same order — the scale-bench analogue of the
   scenario-level serialized-result comparison.

   [run_hybrid] extends the flock into the flows1m hybrid bench: the
   flock's ticks become real packets through a bottleneck Link whose
   queue carries a 10^5..10^6-flow fluid background aggregate
   (Ebrc_net.Fluid); deliveries and drops fold into the fingerprint,
   so the hybrid co-simulation's determinism is checkable the same
   way. *)

module Engine = Ebrc_sim.Engine
module Prng = Ebrc_rng.Prng
module Fluid = Ebrc_net.Fluid
module Link = Ebrc_net.Link
module Packet = Ebrc_net.Packet
module Queue_discipline = Ebrc_net.Queue_discipline

type t = {
  pool : Flow_pool.t;
  mutable events : int;
  mutable fingerprint : int;
}

type stats = { flows : int; events : int; fingerprint : int }

let fnv_prime = 0x100000001b3

let create ?(flows = 100_000) ?(seed = 1) engine =
  if flows <= 0 then invalid_arg "Flock.create: flows must be positive";
  let rng = Prng.create ~seed in
  let pool = Flow_pool.create ~capacity:flows in
  let gaps = pool.Flow_pool.rate and seqs = pool.Flow_pool.seq in
  let t = { pool; events = 0; fingerprint = 0 } in
  for _ = 0 to flows - 1 do
    (* Gaps in [0.8, 1.2) s: inside the wheel's 16 s horizon (the
       common case this bench targets) yet spread enough that slots
       stay lightly loaded. *)
    let gap = 0.8 +. (0.4 *. Prng.float_unit rng) in
    (* Staggered starts: uniform over the flow's own first period, so
       the initial burst doesn't land 10^5 events on one instant. *)
    let first = gap *. Prng.float_unit rng in
    let i = Flow_pool.add ~rate:gap ~next_send:first pool in
    let rec tick () =
      let seq = Array.unsafe_get seqs i + 1 in
      Array.unsafe_set seqs i seq;
      t.events <- t.events + 1;
      let fp = ((t.fingerprint * fnv_prime) + i) * fnv_prime + seq in
      t.fingerprint <- fp;
      Engine.schedule_after_unit engine
        ~delay:(Float.Array.unsafe_get gaps i) tick
    in
    Engine.schedule_unit engine ~at:first tick
  done;
  t

let events (t : t) = t.events
let fingerprint (t : t) = t.fingerprint
let pool (t : t) = t.pool

let run ?(flows = 100_000) ?(duration = 10.0) ?(seed = 1) () =
  let engine = Engine.create () in
  let t = create ~flows ~seed engine in
  (match Engine.run ~until:duration engine with
  | Engine.Horizon_reached | Engine.Queue_empty -> ()
  | Engine.Budget_exhausted | Engine.Stopped -> ());
  { flows = Flow_pool.length t.pool; events = t.events;
    fingerprint = t.fingerprint }

(* ----------------------- flows1m hybrid bench ---------------------- *)

type hybrid_stats = {
  fg_flows : int;
  bg_flows : int;
  events : int;           (* engine events dispatched *)
  sent : int;             (* foreground packets offered to the link *)
  delivered : int;
  dropped : int;
  fingerprint : int;      (* dispatch-order fold over send/deliver/drop *)
  fluid : Fluid.stats option;  (* None when the hybrid layer is off *)
}

(* Foreground flows tick at ~1 pkt/s each through a bottleneck sized at
   [capacity_factor] x their aggregate mean rate; the fluid background
   aggregates [bg_flows] AIMD flows contending for the same queue. With
   the hybrid layer disabled (EBRC_HYBRID=0) no fluid is created and
   this is a packet-only link bench over the same event population. *)
let run_hybrid ?(fg_flows = 20_000) ?(bg_flows = 200_000)
    ?(duration = 10.0) ?(seed = 1) ?(base_rtt = 0.1)
    ?(capacity_factor = 2.5) () =
  if fg_flows <= 0 then invalid_arg "Flock.run_hybrid: fg_flows";
  if bg_flows <= 0 then invalid_arg "Flock.run_hybrid: bg_flows";
  let engine = Engine.create () in
  let rng = Prng.create ~seed in
  let pkt_size = 1000 in
  (* Mean tick gap is 1 s, so the foreground offers ~fg_flows pkt/s. *)
  let capacity_pps = capacity_factor *. float_of_int fg_flows in
  let qmax = Float.max 64.0 (capacity_pps *. base_rtt) in
  let queue =
    Queue_discipline.create
      ~capacity:(int_of_float qmax)
      Queue_discipline.Drop_tail
  in
  let link =
    Link.create ~engine
      ~rate_bps:(capacity_pps *. float_of_int (8 * pkt_size))
      ~delay:(0.5 *. base_rtt) ~queue ~rng
  in
  let fluid =
    if Fluid.enabled () then begin
      let fl =
        Fluid.create
          (Fluid.default ~flows:bg_flows ~capacity_pps ~base_rtt
             ~qmax ())
      in
      Link.attach_fluid link fl;
      Engine.set_advance_hook engine
        (Some
           (fun now ->
             Fluid.set_pkt_occupancy fl (Queue_discipline.occupancy queue);
             Fluid.sync fl ~now));
      Some fl
    end
    else None
  in
  let pool = Flow_pool.create ~capacity:fg_flows in
  let gaps = pool.Flow_pool.rate
  and seqs = pool.Flow_pool.seq
  and sent_col = pool.Flow_pool.sent
  and next_send = pool.Flow_pool.next_send in
  let fp = ref 0 and sent = ref 0 and delivered = ref 0 and dropped = ref 0 in
  Link.set_deliver link (fun pkt ->
      delivered := !delivered + 1;
      fp :=
        ((!fp * fnv_prime) + pkt.Packet.flow) * fnv_prime + pkt.Packet.seq;
      Packet.release pkt);
  Link.set_on_drop link (fun pkt ->
      dropped := !dropped + 1;
      (* Drops mix with the complemented sequence so a dropped and a
         delivered packet can never cancel to the same fold. *)
      fp :=
        ((!fp * fnv_prime) + pkt.Packet.flow) * fnv_prime
        + lnot pkt.Packet.seq);
  for _ = 0 to fg_flows - 1 do
    let gap = 0.8 +. (0.4 *. Prng.float_unit rng) in
    let first = gap *. Prng.float_unit rng in
    let i = Flow_pool.add ~rate:gap ~next_send:first pool in
    let rec tick () =
      let seq = Array.unsafe_get seqs i + 1 in
      Array.unsafe_set seqs i seq;
      Array.unsafe_set sent_col i (Array.unsafe_get sent_col i + 1);
      sent := !sent + 1;
      let now = engine.Engine.now in
      Link.send link
        (Packet.data ~flow:i ~seq ~size:pkt_size ~sent_at:now);
      let gap = Float.Array.unsafe_get gaps i in
      Float.Array.unsafe_set next_send i (now +. gap);
      Engine.schedule_after_unit engine ~delay:gap tick
    in
    Engine.schedule_unit engine ~at:first tick
  done;
  (match Engine.run ~until:duration engine with
  | Engine.Horizon_reached | Engine.Queue_empty -> ()
  | Engine.Budget_exhausted | Engine.Stopped -> ());
  Engine.set_advance_hook engine None;
  {
    fg_flows;
    bg_flows;
    events = engine.Engine.processed;
    sent = !sent;
    delivered = !delivered;
    dropped = !dropped;
    fingerprint = !fp;
    fluid = Option.map Fluid.stats fluid;
  }
