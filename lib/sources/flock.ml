(* A flock of very cheap periodic flows, built to put the scheduler —
   not the protocol stack — on the critical path. Packet-level TFRC
   flows carry too much per-event protocol work to expose scheduler
   costs at scale, so each flock member is the minimal credible flow:
   a periodic tick that bumps a sequence number, folds itself into a
   dispatch-order fingerprint, and reschedules.

   With 10^5 members the engine holds ~10^5 pending events at all
   times, which is exactly the regime where a binary heap pays ~17
   cache-missing sift levels per operation and the timing wheel pays
   O(1). Per-flow state is struct-of-arrays (one flat float array of
   gaps, one int array of sequence numbers) and every member's tick
   thunk is preallocated at setup, so the steady state allocates
   nothing — what the bench times is scheduling, not construction.

   The fingerprint folds (flow, seq) in dispatch order with plain
   wrapping-int mixing, so two engines agree on it iff they dispatched
   the same events in the same order — the scale-bench analogue of the
   scenario-level serialized-result comparison. *)

module Engine = Ebrc_sim.Engine
module Prng = Ebrc_rng.Prng

type t = {
  flows : int;
  gaps : floatarray;            (* per-flow send interval, seconds *)
  seqs : int array;             (* per-flow next sequence number *)
  mutable events : int;
  mutable fingerprint : int;
}

type stats = { flows : int; events : int; fingerprint : int }

let fnv_prime = 0x100000001b3

let create ?(flows = 100_000) ?(seed = 1) engine =
  if flows <= 0 then invalid_arg "Flock.create: flows must be positive";
  let rng = Prng.create ~seed in
  let gaps = Float.Array.create flows in
  let seqs = Array.make flows 0 in
  let t = { flows; gaps; seqs; events = 0; fingerprint = 0 } in
  for i = 0 to flows - 1 do
    (* Gaps in [0.8, 1.2) s: inside the wheel's 16 s horizon (the
       common case this bench targets) yet spread enough that slots
       stay lightly loaded. *)
    let gap = 0.8 +. (0.4 *. Prng.float_unit rng) in
    Float.Array.set gaps i gap;
    let rec tick () =
      let seq = Array.unsafe_get seqs i + 1 in
      Array.unsafe_set seqs i seq;
      t.events <- t.events + 1;
      let fp = ((t.fingerprint * fnv_prime) + i) * fnv_prime + seq in
      t.fingerprint <- fp;
      Engine.schedule_after_unit engine
        ~delay:(Float.Array.unsafe_get gaps i) tick
    in
    (* Staggered starts: uniform over the flow's own first period, so
       the initial burst doesn't land 10^5 events on one instant. *)
    Engine.schedule_unit engine ~at:(gap *. Prng.float_unit rng) tick
  done;
  t

let events (t : t) = t.events
let fingerprint (t : t) = t.fingerprint

let run ?(flows = 100_000) ?(duration = 10.0) ?(seed = 1) () =
  let engine = Engine.create () in
  let t = create ~flows ~seed engine in
  (match Engine.run ~until:duration engine with
  | Engine.Horizon_reached | Engine.Queue_empty -> ()
  | Engine.Budget_exhausted | Engine.Stopped -> ());
  { flows = t.flows; events = t.events; fingerprint = t.fingerprint }
