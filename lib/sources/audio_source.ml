(* The Claim-2 workload: an audio-like sender that emits packets at a
   fixed packet rate (one packet every [period] seconds) and performs
   equation-based rate control by varying the *packet length*.

   Because the packet emission times are independent of the control, the
   inter-loss-event durations S_n are independent of the send rate X_n —
   cov[X_0, S_0] = 0, condition (C2c) with equality — which is exactly
   the regime where Theorem 2 predicts non-conservativeness for a convex
   f(1/x) (PFTK under heavy loss) and conservativeness for a concave one
   (SQRT).

   The control runs end-to-end: the receiver-side loss history is driven
   by sequence gaps (losses come from a Bernoulli dropper in the Claim-2
   experiments, which drops independently of packet length), and the
   sender recomputes its byte rate at each loss event, exactly like the
   basic control. The open-interval (comprehensive) rule can be enabled
   as in TFRC. *)

module Engine = Ebrc_sim.Engine
module Packet = Ebrc_net.Packet
module Formula = Ebrc_formulas.Formula
module Loss_history = Ebrc_tfrc.Loss_history

type t = {
  engine : Engine.t;
  flow : int;
  period : float;                  (* fixed inter-packet time, s *)
  base_size : int;                 (* bytes carried at rate 1 pkt-unit/s *)
  formula : Formula.t;
  history : Loss_history.t;        (* fed back by the receiver wire *)
  mutable transmit : Packet.t -> unit;
  mutable seq : int;
  mutable sent : int;
  mutable running : bool;
  mutable rate_units : float;      (* current f(1/theta_hat), "packets"/s *)
  mutable rate_samples : float list;
}

(* The audio sender's "rate" is in formula packet-units per second; each
   emitted packet carries rate * period packet-units of payload. We
   encode payload as bytes = max 1 (round (units * base_size)). *)
let create ?(comprehensive = false) ?(l = 4) ?(base_size = 100)
    ?(initial_units = 1.0) ~engine ~flow ~period ~formula ~rtt () =
  if period <= 0.0 then invalid_arg "Audio_source.create: period <= 0";
  if base_size <= 0 then invalid_arg "Audio_source.create: base_size <= 0";
  {
    engine;
    flow;
    period;
    base_size;
    formula;
    history = Loss_history.create ~comprehensive ~l ~rtt ();
    transmit = (fun _ -> ());
    seq = 0;
    sent = 0;
    running = false;
    rate_units = initial_units;
    rate_samples = [];
  }

let set_transmit t f = t.transmit <- f
let history t = t.history

let update_rate t =
  let p = Loss_history.p_estimate t.history in
  if p > 0.0 then begin
    t.rate_units <- Formula.eval t.formula p;
    t.rate_samples <- t.rate_units :: t.rate_samples
  end

(* The receiver notifies the sender of every arrived sequence number
   (zero-delay feedback is acceptable for the Claim-2 loop: the paper's
   analysis is for the idealised control clocked by loss events). *)
let on_receiver_packet t ~seq =
  let before = Loss_history.event_count t.history in
  Loss_history.on_packet t.history ~now:(Engine.now t.engine) ~seq;
  (* With the comprehensive rule the estimate can also rise between loss
     events, so recompute every packet; for the basic control only at
     new loss events. *)
  if Loss_history.event_count t.history > before then update_rate t
  else if Loss_history.has_loss t.history then update_rate t

let packet_bytes t =
  let units = t.rate_units *. t.period in
  max 1 (int_of_float (Float.round (units *. float_of_int t.base_size)))

let send_loop t =
  (* One self-rescheduling thunk per start, not one closure per packet. *)
  let rec tick () =
    if t.running then begin
      let pkt =
        Packet.data ~flow:t.flow ~seq:t.seq ~size:(packet_bytes t)
          ~sent_at:(Engine.now t.engine)
      in
      t.seq <- t.seq + 1;
      t.sent <- t.sent + 1;
      t.transmit pkt;
      Engine.schedule_after_unit t.engine ~delay:t.period tick
    end
  in
  tick ()

let start t =
  if not t.running then begin
    t.running <- true;
    send_loop t
  end

let stop t = t.running <- false

let sent t = t.sent
let rate_units t = t.rate_units
let rate_samples t = Array.of_list (List.rev t.rate_samples)
let flow t = t.flow
