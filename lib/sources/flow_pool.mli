(** Struct-of-arrays per-flow hot state for 10⁴–10⁶ cheap flows.

    Flat unboxed columns (rate, next-send time, RTT, loss-event rate)
    plus int columns (sequence, sent, warmup-snapshot marks) replace
    one heap record per flow: each access pattern stays dense and
    prefetchable, and a flow costs a few cache lines instead of a
    pointer chase per field. The record is exposed [private]
    (precedent: {!Ebrc_sim.Engine.t}) so hot loops touch columns
    directly; column {e contents} are freely mutable through the
    fields, only the pool's bookkeeping goes through the API.

    Column ownership is by convention — the source using the pool
    decides which columns it maintains ({!Flock} keeps [rate] as its
    tick gap; the scenario keeps the snapshot marks). Unused columns
    cost one allocation and nothing per event. *)

type t = private {
  cap : int;
  mutable n : int;
  rate : floatarray;       (** pacing value: pkt/s, or tick gap (s) *)
  next_send : floatarray;  (** absolute next-send time, s *)
  rtt : floatarray;        (** smoothed / measured RTT, s *)
  loss_rate : floatarray;  (** loss-event rate estimate *)
  seq : int array;         (** next sequence number *)
  sent : int array;        (** packets sent *)
  snap_recv : int array;   (** warmup snapshot: packets received *)
  snap_ivs : int array;    (** warmup snapshot: loss intervals *)
  snap_pairs : int array;  (** warmup snapshot: RTT sample pairs *)
}

val create : capacity:int -> t
(** All columns preallocated at [capacity] flows and zeroed. *)

val add : ?rate:float -> ?next_send:float -> t -> int
(** Claim the next flow slot, returning its index. Raises
    [Invalid_argument] when the pool is full. *)

val length : t -> int
(** Flows added so far. *)

val capacity : t -> int
