(** A flock of minimal periodic flows for scheduler-bound scale
    benchmarks.

    Each member ticks at its own fixed gap (drawn once from a seeded
    PRNG), bumping a per-flow sequence number and folding [(flow,
    seq)] into a dispatch-order fingerprint before rescheduling
    itself. Per-flow state is struct-of-arrays and every tick thunk is
    preallocated at {!create}, so the steady state allocates nothing:
    with 10^5 members the engine's scheduler is the only thing on the
    critical path, which is the point — at ~10^5 pending events a
    binary heap pays ~17 sift levels per operation where the timing
    wheel pays O(1).

    Two runs agree on {!fingerprint} iff they dispatched the same
    events in the same order, so the fingerprint is the scale-bench
    analogue of the scenario-level serialized-result bit-identity
    check. *)

type t

type stats = { flows : int; events : int; fingerprint : int }

val create : ?flows:int -> ?seed:int -> Ebrc_sim.Engine.t -> t
(** Build the flock and schedule every member's first tick, staggered
    uniformly over its own first period. Defaults: 100_000 flows,
    seed 1. The caller runs the engine. *)

val events : t -> int
(** Ticks dispatched so far. *)

val fingerprint : t -> int
(** Wrapping-int fold of [(flow, seq)] in dispatch order. *)

val run : ?flows:int -> ?duration:float -> ?seed:int -> unit -> stats
(** Convenience wrapper: fresh engine (current [Engine.set_wheel] /
    lane settings apply), run to [duration] (default 10 s of simulated
    time), return the tallies. *)
