(** A flock of minimal periodic flows for scheduler-bound scale
    benchmarks.

    Each member ticks at its own fixed gap (drawn once from a seeded
    PRNG), bumping a per-flow sequence number and folding [(flow,
    seq)] into a dispatch-order fingerprint before rescheduling
    itself. Per-flow state is struct-of-arrays and every tick thunk is
    preallocated at {!create}, so the steady state allocates nothing:
    with 10^5 members the engine's scheduler is the only thing on the
    critical path, which is the point — at ~10^5 pending events a
    binary heap pays ~17 sift levels per operation where the timing
    wheel pays O(1).

    Two runs agree on {!fingerprint} iff they dispatched the same
    events in the same order, so the fingerprint is the scale-bench
    analogue of the scenario-level serialized-result bit-identity
    check. *)

type t

type stats = { flows : int; events : int; fingerprint : int }

val create : ?flows:int -> ?seed:int -> Ebrc_sim.Engine.t -> t
(** Build the flock and schedule every member's first tick, staggered
    uniformly over its own first period. Defaults: 100_000 flows,
    seed 1. The caller runs the engine. Per-flow state lives in a
    {!Flow_pool} (tick gap in [rate], sequence in [seq]). *)

val events : t -> int
(** Ticks dispatched so far. *)

val fingerprint : t -> int
(** Wrapping-int fold of [(flow, seq)] in dispatch order. *)

val pool : t -> Flow_pool.t
(** The flock's backing flow pool. *)

val run : ?flows:int -> ?duration:float -> ?seed:int -> unit -> stats
(** Convenience wrapper: fresh engine (current [Engine.set_wheel] /
    lane settings apply), run to [duration] (default 10 s of simulated
    time), return the tallies. *)

(** {2 flows1m: the hybrid packet/fluid scale bench} *)

type hybrid_stats = {
  fg_flows : int;
  bg_flows : int;
  events : int;      (** engine events dispatched *)
  sent : int;        (** foreground packets offered to the link *)
  delivered : int;
  dropped : int;
  fingerprint : int; (** dispatch-order fold over deliveries and drops *)
  fluid : Ebrc_net.Fluid.stats option;
      (** [None] when the hybrid layer is disabled. *)
}

val run_hybrid :
  ?fg_flows:int -> ?bg_flows:int -> ?duration:float -> ?seed:int ->
  ?base_rtt:float -> ?capacity_factor:float -> unit -> hybrid_stats
(** The flows1m bench: [fg_flows] (default 20_000) packet-level
    periodic flows send real packets through a DropTail bottleneck
    sized at [capacity_factor] (default 2.5) × their aggregate mean
    rate, while a fluid aggregate of [bg_flows] (default 200_000) AIMD
    background flows contends for the same queue (when
    {!Ebrc_net.Fluid.enabled}; otherwise the identical packet-only
    bench runs with no fluid attached). Deliveries and drops fold into
    the fingerprint, so repeated runs at equal seeds must agree —
    the hybrid co-simulation's determinism check. *)
