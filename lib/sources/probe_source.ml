(* Non-adaptive probe sources: constant bit rate and Poisson. The paper
   uses Poisson probes to measure the "network" loss-event rate p''
   (Claim 3 / Figure 7): a non-adaptive source samples the congestion
   process uniformly in time. *)

module Engine = Ebrc_sim.Engine
module Packet = Ebrc_net.Packet
module Prng = Ebrc_rng.Prng
module Dist = Ebrc_rng.Dist

type pacing = Cbr | Poisson of Prng.t

type t = {
  engine : Engine.t;
  flow : int;
  packet_size : int;
  rate : float;              (* pkt/s *)
  pacing : pacing;
  mutable transmit : Packet.t -> unit;
  mutable seq : int;
  mutable sent : int;
  mutable running : bool;
  send_lane : Engine.lane;   (* pacing ticks: FIFO, never cancelled *)
}

let create ?(packet_size = 1000) ~engine ~flow ~rate ~pacing () =
  if rate <= 0.0 then invalid_arg "Probe_source.create: rate <= 0";
  if packet_size <= 0 then invalid_arg "Probe_source.create: packet_size <= 0";
  {
    engine;
    flow;
    packet_size;
    rate;
    pacing;
    transmit = (fun _ -> ());
    seq = 0;
    sent = 0;
    running = false;
    send_lane = Engine.lane engine;
  }

let set_transmit t f = t.transmit <- f

let next_gap t =
  match t.pacing with
  | Cbr -> 1.0 /. t.rate
  | Poisson rng -> Dist.exponential rng ~rate:t.rate

let send_loop t =
  (* One self-rescheduling thunk per start, not one closure per packet. *)
  let rec tick () =
    if t.running then begin
      let pkt =
        Packet.data ~flow:t.flow ~seq:t.seq ~size:t.packet_size
          ~sent_at:(Engine.now t.engine)
      in
      t.seq <- t.seq + 1;
      t.sent <- t.sent + 1;
      t.transmit pkt;
      (* Each tick pushes the next strictly later — FIFO per source. *)
      Engine.lane_push_after t.send_lane ~delay:(next_gap t) tick
    end
  in
  tick ()

let start t =
  if not t.running then begin
    t.running <- true;
    send_loop t
  end

let stop t = t.running <- false
let sent t = t.sent
let flow t = t.flow
