(** Equation-based rate control: a reproduction of Vojnović & Le Boudec,
    "On the Long-Run Behavior of Equation-Based Rate Control"
    (SIGCOMM 2002 / IC tech report IC/2003/70).

    This umbrella module re-exports the public API. The layering is:

    - Foundations: {!Stats}, {!Prng}, {!Dist}, {!Point_process},
      {!Convexity}, {!Roots}, {!Quadrature}, {!Ode}, and {!Pool} (the
      domain pool behind every [?jobs] parameter).
    - The paper's analytical objects: {!Formula} (SQRT / PFTK throughput
      formulas), {!Conditions} (the (F1)/(F2)/(F2c) convexity
      conditions), {!Weights} and {!Loss_interval} (the θ̂ estimator),
      {!Loss_process} (driving loss processes), {!Basic_control} and
      {!Comprehensive_control} (the two control laws and their Palm
      throughput analysis), {!Theorems} (Theorems 1–2 as predicates).
    - The packet-level substrate standing in for ns-2 and the testbeds:
      {!Engine}, {!Packet}, {!Queue_discipline}, {!Link},
      {!Loss_module}, {!Flow_stats}, {!Gap_sink}, {!Tcp_sender},
      {!Tcp_receiver}, {!Tfrc_sender}, {!Tfrc_receiver},
      {!Loss_history}, {!Probe_source}, {!Audio_source}, {!Flock}.
    - The paper's evaluation: {!Breakdown} (the four TCP-friendliness
      sub-conditions), {!Few_flows} (Claim 4), {!Many_sources}
      (Claim 3), {!Scenario} / {!Audio_scenario} / {!Paths} (experiment
      setups), {!Figures} (one runner per paper figure), {!Table}
      (result rendering). *)

(* Foundations *)
module Descriptive = Ebrc_stats.Descriptive
module Welford = Ebrc_stats.Welford
module Cov_acc = Ebrc_stats.Cov_acc
module Histogram = Ebrc_stats.Histogram
module Ecdf = Ebrc_stats.Ecdf
module Resample = Ebrc_stats.Resample
module Student_t = Ebrc_stats.Student_t
module Prng = Ebrc_rng.Prng
module Dist = Ebrc_rng.Dist
module Point_process = Ebrc_rng.Point_process
module Pool = Ebrc_parallel.Pool
module Telemetry = Ebrc_telemetry.Telemetry
module Telemetry_export = Ebrc_telemetry.Export
module Telemetry_stream = Ebrc_telemetry.Stream
module Telemetry_flight = Ebrc_telemetry.Flight
module Convexity = Ebrc_numerics.Convexity
module Roots = Ebrc_numerics.Roots
module Quadrature = Ebrc_numerics.Quadrature
module Ode = Ebrc_numerics.Ode

(* Analytical core *)
module Formula = Ebrc_formulas.Formula
module Conditions = Ebrc_formulas.Conditions
module Weights = Ebrc_estimator.Weights
module Loss_interval = Ebrc_estimator.Loss_interval
module Loss_process = Ebrc_lossproc.Loss_process
module Basic_control = Ebrc_control.Basic_control
module Comprehensive_control = Ebrc_control.Comprehensive_control
module Theorems = Ebrc_control.Theorems
module Exact = Ebrc_control.Exact

(* Packet-level substrate *)
module Engine = Ebrc_sim.Engine
module Event_queue = Ebrc_sim.Event_queue
module Timing_wheel = Ebrc_sim.Timing_wheel
module Trace = Ebrc_sim.Trace
module Packet = Ebrc_net.Packet
module Queue_discipline = Ebrc_net.Queue_discipline
module Link = Ebrc_net.Link
module Loss_module = Ebrc_net.Loss_module
module Fluid = Ebrc_net.Fluid
module Flow_stats = Ebrc_net.Flow_stats
module Gap_sink = Ebrc_net.Gap_sink
module Fault = Ebrc_net.Fault
module Seq_set = Ebrc_tcp.Seq_set
module Tcp_sender = Ebrc_tcp.Tcp_sender
module Tcp_receiver = Ebrc_tcp.Tcp_receiver
module Loss_history = Ebrc_tfrc.Loss_history
module Tfrc_sender = Ebrc_tfrc.Tfrc_sender
module Tfrc_receiver = Ebrc_tfrc.Tfrc_receiver
module Probe_source = Ebrc_sources.Probe_source
module Audio_source = Ebrc_sources.Audio_source
module Flock = Ebrc_sources.Flock
module Flow_pool = Ebrc_sources.Flow_pool

(* Evaluation *)
module Breakdown = Ebrc_analysis.Breakdown
module Few_flows = Ebrc_analysis.Few_flows
module Many_sources = Ebrc_analysis.Many_sources
module Design = Ebrc_analysis.Design
module Scenario = Ebrc_exp.Scenario
module Result_cache = Ebrc_exp.Result_cache
module Audio_scenario = Ebrc_exp.Audio_scenario
module Chain_scenario = Ebrc_exp.Chain_scenario
module Paths = Ebrc_exp.Paths
module Figures = Ebrc_exp.Figures
module Table = Ebrc_exp.Table
module Report = Ebrc_exp.Report
module Validate = Ebrc_exp.Validate

let version = "1.0.0"
