(** Window-based TCP sender (Reno/NewReno, standing in for ns-2 Sack1):
    slow start, congestion avoidance with delayed-ACK-paced growth, fast
    retransmit on three duplicate ACKs, NewReno hole repair, Jacobson
    RTO with Karn's rule and exponential backoff.

    Loss events follow the paper's TCP-side definition: congestion
    indications separated by less than one smoothed RTT form one event;
    intervals are counted in packets sent between events. *)

type t

type phase = Slow_start | Congestion_avoidance | Fast_recovery

type variant = Tahoe | Reno

val create :
  ?packet_size:int ->
  ?initial_cwnd:float ->
  ?max_window:float ->
  ?min_rto:float ->
  ?variant:variant ->
  engine:Ebrc_sim.Engine.t ->
  flow:int ->
  unit ->
  t
(** Defaults: 1000-byte packets, initial cwnd 2, unbounded receiver
    window, 200 ms minimum RTO (the ns-2 default), [Reno] recovery.
    [Tahoe] restarts from slow start on three duplicate ACKs instead
    of halving into fast recovery. *)

val set_transmit : t -> (Ebrc_net.Packet.t -> unit) -> unit
val set_rate_sample_hook : t -> (float -> unit) -> unit
(** Called with the window size (packets) after each window update. *)

val start : t -> unit
(** Begin transmitting (long-lived flow: always backlogged). *)

val on_ack : t -> acked:int -> dup:bool -> echo:float -> unit

val cwnd : t -> float
val ssthresh : t -> float
val phase : t -> phase
val flight_size : t -> int
val window : t -> float
val packets_sent : t -> int
val retransmits : t -> int
val timeouts : t -> int
val fast_retransmits : t -> int
val loss_events : t -> int
val srtt : t -> float
val mean_rtt : t -> float

val loss_event_intervals : t -> float array
(** Completed loss-event intervals in packets sent. *)

val interval_count : t -> int
(** Number of completed intervals, without materialising the array. *)

val loss_event_rate : t -> float
(** p′ = (#completed intervals) / (Σ packets in them). *)
