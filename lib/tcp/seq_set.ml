(* Open-addressing set of sequence numbers (non-negative ints).

   Replaces [(int, unit) Hashtbl.t] on the TCP per-packet paths: the
   generic hashtable pays a [caml_hash] C call per probe and a
   polymorphic-compare C call per key test, which together were a
   measurable slice of a scenario run. Here membership is a linear
   probe over a flat int array — sequence numbers arrive nearly
   consecutively, so the identity hash distributes perfectly and
   probes almost never collide.

   Deletion uses tombstones; the table rehashes when live + dead
   entries pass half the capacity, which bounds probe lengths and
   recycles tombstones. Capacities are powers of two. *)

let empty_key = min_int
let tomb_key = min_int + 1

type t = {
  mutable slots : int array;
  mutable mask : int;
  mutable live : int;
  mutable used : int; (* live + tombstones *)
}

let create ?(capacity = 64) () =
  let cap = ref 16 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    slots = Array.make !cap empty_key;
    mask = !cap - 1;
    live = 0;
    used = 0;
  }

let cardinal t = t.live

(* Probe until [seq] or an empty slot; tombstones are skipped. The
   table always keeps empty slots (rehash below half load), so the
   walk terminates. *)
let rec find_from slots mask seq i =
  let k = Array.unsafe_get slots i in
  if k = seq || k = empty_key then i
  else find_from slots mask seq ((i + 1) land mask)

let mem t seq = t.slots.(find_from t.slots t.mask seq (seq land t.mask)) = seq

(* Probe until [seq] or an empty slot, remembering the first tombstone
   ([tomb = -1] if none seen). Stopping at a tombstone would let a key
   further down the chain be duplicated, so the walk must reach an
   empty slot before deciding the key is absent; the insert then reuses
   the remembered tombstone if there was one. *)
let rec insert_raw slots mask seq i tomb =
  let k = Array.unsafe_get slots i in
  if k = seq then false
  else if k = empty_key then begin
    Array.unsafe_set slots (if tomb >= 0 then tomb else i) seq;
    true
  end
  else
    let tomb = if k = tomb_key && tomb < 0 then i else tomb in
    insert_raw slots mask seq ((i + 1) land mask) tomb

let rehash t cap =
  let slots = Array.make cap empty_key in
  let mask = cap - 1 in
  Array.iter
    (fun k ->
      if k <> empty_key && k <> tomb_key then
        ignore (insert_raw slots mask k (k land mask) (-1)))
    t.slots;
  t.slots <- slots;
  t.mask <- mask;
  t.used <- t.live

let add t seq =
  if seq < 0 then invalid_arg "Seq_set.add: negative sequence number";
  if 2 * (t.used + 1) > t.mask + 1 then
    (* Grow only when at least half the occupancy is live; otherwise
       same-size rehash just clears tombstones. *)
    rehash t (if 4 * t.live > t.mask + 1 then 2 * (t.mask + 1) else t.mask + 1);
  if insert_raw t.slots t.mask seq (seq land t.mask) (-1) then begin
    t.live <- t.live + 1;
    t.used <- t.used + 1
  end

let remove t seq =
  let i = find_from t.slots t.mask seq (seq land t.mask) in
  if t.slots.(i) = seq then begin
    t.slots.(i) <- tomb_key;
    t.live <- t.live - 1
  end
