(** Open-addressing set of sequence numbers (non-negative ints).

    An int-specialized replacement for [(int, unit) Hashtbl.t] on the
    TCP per-packet paths: membership is a linear probe over a flat int
    array under the identity hash — no generic-hash or
    polymorphic-compare C calls — which sequence numbers' near-
    consecutive arrival pattern makes collision-free in practice.
    Deletion is by tombstone with automatic same-size rehash, so probe
    lengths stay bounded. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is rounded up to a power of two (minimum 16). *)

val mem : t -> int -> bool
val add : t -> int -> unit
(** Idempotent. Raises [Invalid_argument] on negative values (the
    encoding reserves two negative sentinels). *)

val remove : t -> int -> unit
(** A no-op when absent. *)

val cardinal : t -> int
