(* Window-based TCP sender (Reno/NewReno, approximating ns-2 Sack1 for
   the statistics this reproduction needs):

     - slow start (cwnd += 1 per new ACK while cwnd < ssthresh),
     - congestion avoidance (cwnd += 1/cwnd per new ACK; with delayed
       ACKs b=2 this yields the ~1/b-per-RTT linear growth the PFTK
       model assumes),
     - fast retransmit on 3 duplicate ACKs, NewReno partial-ACK hole
       repair during recovery, one window halving per recovery episode,
     - retransmission timeout with Jacobson RTO, Karn's rule and
       exponential backoff, followed by slow start.

   Loss events are tracked sender-side as the paper defines them for
   TCP: congestion indications (fast retransmit or timeout) separated by
   less than one smoothed RTT count as a single loss event; loss-event
   intervals are measured in packets sent between events. *)

module Engine = Ebrc_sim.Engine
module Packet = Ebrc_net.Packet
module Tm = Ebrc_telemetry.Telemetry

let m_timeouts =
  Tm.Counter.make ~help:"TCP retransmission timeouts" "tcp.timeouts"

let m_fast_retx =
  Tm.Counter.make ~help:"TCP fast retransmits (3 dup ACKs)"
    "tcp.fast_retransmits"

let m_cwnd_halved =
  Tm.Counter.make ~help:"congestion-window reductions (timeout or recovery)"
    "tcp.cwnd_halvings"

type phase = Slow_start | Congestion_avoidance | Fast_recovery

type variant = Tahoe | Reno

type t = {
  engine : Engine.t;
  flow : int;
  variant : variant;
  packet_size : int;                   (* bytes *)
  mutable transmit : Packet.t -> unit;
  (* --- window state --- *)
  mutable cwnd : float;                (* packets *)
  mutable ssthresh : float;
  max_window : float;
  mutable snd_una : int;               (* lowest unacknowledged seq *)
  mutable snd_nxt : int;               (* next new seq to send *)
  mutable dup_acks : int;
  mutable phase : phase;
  mutable recover : int;               (* recovery ends when una > recover *)
  (* --- RTT estimation / RTO --- *)
  mutable srtt : float;
  mutable rttvar : float;
  mutable rto : float;
  min_rto : float;
  mutable backoff : int;
  mutable timer : Engine.handle option;
  mutable timed_seq : int;             (* Karn: seq being timed, -1 none *)
  mutable timed_at : float;
  mutable retransmitted : Seq_set.t;
  (* --- statistics --- *)
  mutable packets_sent : int;
  mutable retransmits : int;
  mutable timeouts : int;
  mutable fast_retransmits : int;
  mutable loss_events : int;
  mutable last_event_at : float;
  mutable packets_at_last_event : int;
  loss_intervals : Ebrc_stats.Floatbuf.t;
  rtt_acc : Ebrc_stats.Welford.t;
  mutable on_rate_sample : float -> unit;
}

let create ?(packet_size = 1000) ?(initial_cwnd = 2.0) ?(max_window = 1e9)
    ?(min_rto = 0.2) ?(variant = Reno) ~engine ~flow () =
  if packet_size <= 0 then invalid_arg "Tcp_sender.create: packet_size <= 0";
  {
    engine;
    flow;
    variant;
    packet_size;
    transmit = (fun _ -> ());
    cwnd = initial_cwnd;
    ssthresh = 1e9;
    max_window;
    snd_una = 0;
    snd_nxt = 0;
    dup_acks = 0;
    phase = Slow_start;
    recover = -1;
    srtt = 0.0;
    rttvar = 0.0;
    rto = 1.0;
    min_rto;
    backoff = 1;
    timer = None;
    timed_seq = -1;
    timed_at = 0.0;
    retransmitted = Seq_set.create ~capacity:64 ();
    packets_sent = 0;
    retransmits = 0;
    timeouts = 0;
    fast_retransmits = 0;
    loss_events = 0;
    last_event_at = neg_infinity;
    packets_at_last_event = 0;
    loss_intervals = Ebrc_stats.Floatbuf.create ();
    rtt_acc = Ebrc_stats.Welford.create ();
    on_rate_sample = (fun _ -> ());
  }

let set_transmit t f = t.transmit <- f
let set_rate_sample_hook t f = t.on_rate_sample <- f

let flight_size t = t.snd_nxt - t.snd_una

let window t = Float.min t.cwnd t.max_window

(* --- loss-event accounting (paper definition) --- *)

let note_congestion_event t =
  let now = t.engine.Engine.now in
  let window = if t.srtt > 0.0 then t.srtt else t.rto in
  if now -. t.last_event_at > window then begin
    if t.loss_events > 0 then
      Ebrc_stats.Floatbuf.add t.loss_intervals
        (float_of_int (t.packets_sent - t.packets_at_last_event));
    t.loss_events <- t.loss_events + 1;
    t.packets_at_last_event <- t.packets_sent;
    t.last_event_at <- now
  end

(* --- RTO timer --- *)

let cancel_timer t =
  match t.timer with
  | Some h ->
      Engine.cancel h;
      t.timer <- None
  | None -> ()

let rec arm_timer t =
  cancel_timer t;
  let delay = t.rto *. float_of_int t.backoff in
  t.timer <- Some (Engine.schedule_after t.engine ~delay (fun () -> on_timeout t))

and send_segment t ~seq ~retransmission =
  let now = t.engine.Engine.now in
  let pkt = Packet.data ~flow:t.flow ~seq ~size:t.packet_size ~sent_at:now in
  if retransmission then begin
    t.retransmits <- t.retransmits + 1;
    Seq_set.add t.retransmitted seq;
    (* Karn: never time a retransmitted segment. *)
    if t.timed_seq = seq then t.timed_seq <- -1
  end
  else begin
    t.packets_sent <- t.packets_sent + 1;
    if t.timed_seq < 0 then begin
      t.timed_seq <- seq;
      t.timed_at <- now
    end
  end;
  t.transmit pkt

and try_send t =
  let w = int_of_float (window t) in
  let sent_any = ref false in
  while flight_size t < w do
    send_segment t ~seq:t.snd_nxt ~retransmission:false;
    t.snd_nxt <- t.snd_nxt + 1;
    sent_any := true
  done;
  (match t.timer with
   | None when !sent_any -> arm_timer t
   | _ -> ())

and on_timeout t =
  t.timer <- None;
  if flight_size t > 0 then begin
    t.timeouts <- t.timeouts + 1;
    if Tm.is_on () then begin
      Tm.Counter.incr m_timeouts;
      Tm.Counter.incr m_cwnd_halved;
      Tm.event "tcp.timeout" ~time:(t.engine.Engine.now) ~flow:t.flow
        ~value:t.cwnd
    end;
    note_congestion_event t;
    t.ssthresh <- Float.max (float_of_int (flight_size t) /. 2.0) 2.0;
    t.cwnd <- 1.0;
    t.phase <- Slow_start;
    t.dup_acks <- 0;
    t.recover <- t.snd_nxt - 1;
    t.backoff <- min (t.backoff * 2) 64;
    t.timed_seq <- -1;
    (* Go-back-N: forget the outstanding window and refill from the
       first hole as the window re-opens; the receiver discards stale
       duplicates and its cumulative ACKs fast-forward over the segments
       it already holds. *)
    send_segment t ~seq:t.snd_una ~retransmission:true;
    t.snd_nxt <- t.snd_una + 1;
    arm_timer t
  end

let update_rtt t sample =
  Ebrc_stats.Welford.add t.rtt_acc sample;
  if t.srtt = 0.0 then begin
    t.srtt <- sample;
    t.rttvar <- sample /. 2.0
  end
  else begin
    let alpha = 0.125 and beta = 0.25 in
    t.rttvar <-
      ((1.0 -. beta) *. t.rttvar) +. (beta *. abs_float (t.srtt -. sample));
    t.srtt <- ((1.0 -. alpha) *. t.srtt) +. (alpha *. sample)
  end;
  t.rto <- Float.max t.min_rto (t.srtt +. (4.0 *. t.rttvar))

let enter_fast_recovery t =
  t.fast_retransmits <- t.fast_retransmits + 1;
  if Tm.is_on () then begin
    Tm.Counter.incr m_fast_retx;
    Tm.Counter.incr m_cwnd_halved;
    Tm.event "tcp.fast_retransmit" ~time:(t.engine.Engine.now) ~flow:t.flow
      ~value:t.cwnd
  end;
  note_congestion_event t;
  t.ssthresh <- Float.max (float_of_int (flight_size t) /. 2.0) 2.0;
  (match t.variant with
  | Reno ->
      (* NewReno-style: halve and repair holes on partial ACKs. *)
      t.cwnd <- t.ssthresh;
      t.phase <- Fast_recovery;
      t.recover <- t.snd_nxt - 1
  | Tahoe ->
      (* Tahoe: fast retransmit exists but recovery restarts from a
         one-packet window in slow start (no fast recovery). *)
      t.cwnd <- 1.0;
      t.phase <- Slow_start;
      t.recover <- t.snd_nxt - 1;
      t.snd_nxt <- t.snd_una + 1);
  send_segment t ~seq:t.snd_una ~retransmission:true;
  arm_timer t

let on_ack t ~acked ~dup ~echo:_ =
  let now = t.engine.Engine.now in
  if acked >= t.snd_una then begin
    (* New (or repeated-but-advancing) cumulative ACK. *)
    if acked >= t.snd_una && not dup then begin
      (* RTT sample via the timed segment (Karn's rule). *)
      if t.timed_seq >= 0 && acked >= t.timed_seq
         && not (Seq_set.mem t.retransmitted t.timed_seq) then begin
        update_rtt t (now -. t.timed_at);
        t.timed_seq <- -1
      end;
      let newly_acked = acked - t.snd_una + 1 in
      if newly_acked > 0 then begin
        t.snd_una <- acked + 1;
        t.backoff <- 1;
        t.dup_acks <- 0;
        (match t.phase with
        | Fast_recovery ->
            if acked >= t.recover then begin
              (* Full recovery: resume congestion avoidance. *)
              t.phase <- Congestion_avoidance;
              t.cwnd <- t.ssthresh
            end
            else
              (* Partial ACK: NewReno hole repair, window frozen. *)
              send_segment t ~seq:t.snd_una ~retransmission:true
        | Slow_start ->
            (* Appropriate byte counting with L = 2 (RFC 3465): grow by
               at most two segments per ACK, so a large cumulative ACK
               after a go-back-N restart cannot re-inflate the window
               past ssthresh in one step. *)
            t.cwnd <- t.cwnd +. Float.min (float_of_int newly_acked) 2.0;
            if t.cwnd >= t.ssthresh then t.phase <- Congestion_avoidance
        | Congestion_avoidance ->
            t.cwnd <- t.cwnd +. (float_of_int newly_acked /. t.cwnd));
        t.on_rate_sample (window t);
        if flight_size t > 0 then arm_timer t else cancel_timer t;
        try_send t
      end
    end
  end
  else if dup then begin
    t.dup_acks <- t.dup_acks + 1;
    if t.dup_acks = 3 && t.phase <> Fast_recovery then enter_fast_recovery t
    else if t.phase = Fast_recovery then
      (* Window inflation substitute: allow one new segment per extra
         dup ACK to keep the pipe from draining. *)
      try_send t
  end

let start t = try_send t

(* --- observers --- *)

let cwnd t = t.cwnd
let ssthresh t = t.ssthresh
let phase t = t.phase
let packets_sent t = t.packets_sent
let retransmits t = t.retransmits
let timeouts t = t.timeouts
let fast_retransmits t = t.fast_retransmits
let loss_events t = t.loss_events
let srtt t = t.srtt
let mean_rtt t = Ebrc_stats.Welford.mean t.rtt_acc

let loss_event_intervals t = Ebrc_stats.Floatbuf.to_array t.loss_intervals

let interval_count t = Ebrc_stats.Floatbuf.length t.loss_intervals

let loss_event_rate t =
  let n = Ebrc_stats.Floatbuf.length t.loss_intervals in
  if n = 0 then 0.0
  else float_of_int n /. Ebrc_stats.Floatbuf.sum t.loss_intervals
