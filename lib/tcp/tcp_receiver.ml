(* TCP receiver: cumulative ACKs with delayed acknowledgments (b = 2),
   a delayed-ACK timer so single segments are acknowledged within
   [delack_timeout] even when no second segment arrives, immediate
   duplicate ACKs on out-of-order arrivals, immediate ACK when a gap is
   filled. Out-of-order segments are buffered in a hash set (standing in
   for the SACK scoreboard: the sender model repairs holes NewReno-style,
   which matches ns-2 Sack1 closely enough for loss-event and throughput
   statistics). *)

module Engine = Ebrc_sim.Engine

type t = {
  engine : Engine.t;
  flow : int;
  mutable expected : int;               (* next in-order sequence wanted *)
  out_of_order : Seq_set.t;
  mutable delayed : int;                (* in-order packets since last ACK *)
  ack_every : int;                      (* b: packets per ACK *)
  delack_timeout : float;
  mutable delack_timer : Engine.handle option;
  mutable last_echo : float;
  mutable send_ack : acked:int -> dup:bool -> echo:float -> unit;
  mutable received : int;
  mutable bytes : int;
}

let create ?(ack_every = 2) ?(delack_timeout = 0.1) ~engine ~flow () =
  if ack_every < 1 then invalid_arg "Tcp_receiver.create: ack_every >= 1";
  if delack_timeout <= 0.0 then
    invalid_arg "Tcp_receiver.create: delack_timeout <= 0";
  {
    engine;
    flow;
    expected = 0;
    out_of_order = Seq_set.create ~capacity:64 ();
    delayed = 0;
    ack_every;
    delack_timeout;
    delack_timer = None;
    last_echo = 0.0;
    send_ack = (fun ~acked:_ ~dup:_ ~echo:_ -> ());
    received = 0;
    bytes = 0;
  }

let set_ack_sink t f = t.send_ack <- f

let expected t = t.expected
let received t = t.received
let bytes t = t.bytes

let cancel_delack t =
  match t.delack_timer with
  | Some h ->
      Engine.cancel h;
      t.delack_timer <- None
  | None -> ()

let ack_now t ~dup ~echo =
  cancel_delack t;
  t.delayed <- 0;
  t.send_ack ~acked:(t.expected - 1) ~dup ~echo

let arm_delack t =
  (* [match], not [= None]: option equality is a polymorphic-compare
     call, and this runs per in-order packet. *)
  match t.delack_timer with
  | Some _ -> ()
  | None ->
    t.delack_timer <-
      Some
        (Engine.schedule_after t.engine ~delay:t.delack_timeout (fun () ->
             t.delack_timer <- None;
             if t.delayed > 0 then ack_now t ~dup:false ~echo:t.last_echo))

let on_data t (pkt : Ebrc_net.Packet.t) =
  t.received <- t.received + 1;
  t.bytes <- t.bytes + pkt.size;
  let seq = pkt.seq in
  (* Read the timestamp once: each cross-module read of the unboxed
     cell boxes a fresh float. *)
  let stamp = Ebrc_net.Packet.sent_at pkt in
  t.last_echo <- stamp;
  if seq = t.expected then begin
    t.expected <- t.expected + 1;
    let filled_gap = Seq_set.cardinal t.out_of_order > 0 in
    while Seq_set.mem t.out_of_order t.expected do
      Seq_set.remove t.out_of_order t.expected;
      t.expected <- t.expected + 1
    done;
    t.delayed <- t.delayed + 1;
    if filled_gap || t.delayed >= t.ack_every then
      ack_now t ~dup:false ~echo:stamp
    else arm_delack t
  end
  else if seq > t.expected then begin
    Seq_set.add t.out_of_order seq;
    (* Out-of-order: duplicate ACK, sent immediately, without resetting
       the in-order delayed count. *)
    t.send_ack ~acked:(t.expected - 1) ~dup:true ~echo:stamp
  end
  else
    (* Stale duplicate (a spurious retransmission): re-ACK immediately. *)
    ack_now t ~dup:false ~echo:stamp
