(** The Claim-2 / Figure-6 scenario: fixed-packet-rate, variable-length
    equation-based sender behind a Bernoulli dropper. Drops are
    independent of packet length, so cov[X₀, S₀] = 0 and Claim 2
    predicts the conservativeness sign from the convexity of f(1/x). *)

type dropper_mode =
  | Packet_mode  (** Drop independent of length — the Claim-2 regime. *)
  | Byte_mode    (** Drop probability scales with packet length — the
                     ablation breaking Claim 2's independence. *)

type config = {
  seed : int;
  drop_p : float;
  period : float;
  l : int;
  comprehensive : bool;
  formula_kind : Ebrc_formulas.Formula.kind;
  duration : float;
  warmup : float;
  one_way_delay : float;
  dropper_mode : dropper_mode;
  faults : Ebrc_net.Fault.config option;
      (** Deterministic forward-path fault injection on the dropper
          channel (there is no feedback path to black out); see
          {!Scenario.config}. *)
}

val default_config : config
(** 20 ms packet period, L = 4, basic control — the paper's setting. *)

type result = {
  normalized_throughput : float;  (** x̄ / f(p_observed). *)
  p_observed : float;
  cv2_thetahat : float;           (** Squared CV of θ̂ at loss events. *)
  mean_rate : float;
  events : int;
  packets : int;
}

val run : config -> result
