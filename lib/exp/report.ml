(* Markdown report generator: runs any subset of the figure registry
   and renders one self-contained document with the tables, notes and
   timing, suitable for committing next to EXPERIMENTS.md or attaching
   to a CI run. *)

module Tm = Ebrc_telemetry.Telemetry

let m_reports =
  Tm.Counter.make ~help:"markdown reports generated" "exp.reports"

let markdown_of_table (t : Table.t) =
  (* Re-render a Table.t as GitHub-flavoured markdown. Table does not
     expose its internals, so parse its own CSV (stable by contract). *)
  let csv = Table.to_csv t in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  match lines with
  | [] -> ""
  | header :: rows ->
      let split line =
        (* Minimal CSV field split; experiment cells never embed
           escaped commas except via quoting, which we unwrap. *)
        let fields = ref [] and buf = Buffer.create 16 in
        let in_quotes = ref false in
        String.iter
          (fun c ->
            match c with
            | '"' -> in_quotes := not !in_quotes
            | ',' when not !in_quotes ->
                fields := Buffer.contents buf :: !fields;
                Buffer.clear buf
            | c -> Buffer.add_char buf c)
          line;
        fields := Buffer.contents buf :: !fields;
        List.rev !fields
      in
      let cells = split header in
      let buf = Buffer.create 512 in
      Buffer.add_string buf ("| " ^ String.concat " | " cells ^ " |\n");
      Buffer.add_string buf
        ("|" ^ String.concat "|" (List.map (fun _ -> "---") cells) ^ "|\n");
      List.iter
        (fun row ->
          Buffer.add_string buf
            ("| " ^ String.concat " | " (split row) ^ " |\n"))
        rows;
      Buffer.contents buf

(* Extract title and notes from the rendered ASCII (Table exposes only
   rendering); titles are the "== ... ==" line, notes the "note: "
   lines. *)
let title_and_notes (t : Table.t) =
  let text = Table.to_string t in
  let lines = String.split_on_char '\n' text in
  let title =
    List.find_map
      (fun l ->
        let n = String.length l in
        if n > 6 && String.sub l 0 3 = "== " then Some (String.sub l 3 (n - 6))
        else None)
      lines
  in
  let notes =
    List.filter_map
      (fun l ->
        if String.length l > 6 && String.sub l 0 6 = "note: " then
          Some (String.sub l 6 (String.length l - 6))
        else None)
      lines
  in
  (Option.value title ~default:"(untitled)", notes)

type options = {
  ids : string list;          (* empty = whole registry *)
  quick : bool;
  heading : string;
  jobs : int option;          (* None = sequential *)
  keep_going : bool;          (* failing figures become FAILED sections *)
}

let default_options =
  {
    ids = [];
    quick = true;
    heading = "EBRC reproduction report";
    jobs = None;
    keep_going = false;
  }

let generate_result ?(options = default_options) () =
  Tm.with_span ~cat:"report" "report:generate" @@ fun () ->
  if Tm.is_on () then Tm.Counter.incr m_reports;
  Ebrc_telemetry.Stream.manifest ~cmd:"report"
    ~attrs:
      [
        ( "ids",
          Printf.sprintf "\"%s\""
            (Ebrc_telemetry.Export.json_escape
               (String.concat " " options.ids)) );
        ("quick", string_of_bool options.quick);
        ( "jobs",
          match options.jobs with Some j -> string_of_int j | None -> "1" );
        ("keep_going", string_of_bool options.keep_going);
      ]
    ();
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Printf.sprintf "# %s\n\n" options.heading);
  Buffer.add_string buf
    (Printf.sprintf
       "Mode: %s. Each section regenerates one figure/table of the paper's \
        evaluation;\nsee DESIGN.md for the experiment index and \
        EXPERIMENTS.md for the paper-vs-measured record.\n\n"
       (if options.quick then "quick (scaled-down sweeps)"
        else "full (paper-scale sweeps)"));
  let entries =
    match options.ids with
    | [] -> Figures.registry
    | ids ->
        List.filter_map
          (fun id ->
            List.find_opt (fun (fid, _, _) -> fid = id) Figures.registry)
          ids
  in
  let failures = ref [] in
  List.iter
    (fun (id, desc, runner) ->
      Buffer.add_string buf (Printf.sprintf "## Figure %s — %s\n\n" id desc);
      let t0 = Unix.gettimeofday () in
      (* Route through the Figures entry points so report runs get
         per-figure spans. In keep-going mode a raising runner renders
         as a FAILED section and the rest of the report survives. *)
      let outcome =
        if options.keep_going then
          Figures.run_runner_result ~id runner ?jobs:options.jobs
            ~quick:options.quick ()
        else
          Ok (Figures.run_one ?jobs:options.jobs ~quick:options.quick id)
      in
      (match outcome with
      | Ok tables ->
          List.iter
            (fun t ->
              let title, notes = title_and_notes t in
              Buffer.add_string buf (Printf.sprintf "### %s\n\n" title);
              Buffer.add_string buf (markdown_of_table t);
              Buffer.add_char buf '\n';
              List.iter
                (fun n -> Buffer.add_string buf (Printf.sprintf "> %s\n\n" n))
                notes)
            tables
      | Error (f : Figures.failure) ->
          failures := f :: !failures;
          Buffer.add_string buf
            (Printf.sprintf "### **FAILED**\n\n> %s\n\n" f.Figures.message));
      Buffer.add_string buf
        (Printf.sprintf "_regenerated in %.1f s_\n\n"
           (Unix.gettimeofday () -. t0)))
    entries;
  let failures = List.rev !failures in
  (if failures <> [] then begin
     Buffer.add_string buf "## Failure summary\n\n";
     List.iter
       (fun (f : Figures.failure) ->
         Buffer.add_string buf
           (Printf.sprintf "- figure %s: %s\n" f.Figures.failed_id
              f.Figures.message))
       failures;
     Buffer.add_char buf '\n'
   end);
  (Buffer.contents buf, failures)

let generate ?options () = fst (generate_result ?options ())

let save_result ?options ~path () =
  let doc, failures = generate_result ?options () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc doc);
  failures

let save ?options ~path () = ignore (save_result ?options ~path ())
