(** Markdown report generator: run a subset of the figure registry and
    render one self-contained document (tables, notes, timing). *)

type options = {
  ids : string list;   (** Figure ids to include; empty = whole registry. *)
  quick : bool;
  heading : string;
  jobs : int option;   (** Worker domains per runner; [None] = sequential. *)
  keep_going : bool;
      (** When true, a raising runner renders as a FAILED section (and a
          trailing failure summary) instead of aborting the report. *)
}

val default_options : options
(** [keep_going] defaults to false. *)

val generate : ?options:options -> unit -> string
(** Render the report as a markdown string. *)

val generate_result :
  ?options:options -> unit -> string * Figures.failure list
(** Like {!generate} but also returns the structured failures collected
    in keep-going mode (always empty when [keep_going] is false, since
    the first failure raises). *)

val save : ?options:options -> path:string -> unit -> unit

val save_result :
  ?options:options -> path:string -> unit -> Figures.failure list
(** Write the report and return the keep-going failures so callers can
    reflect them in the exit code. *)

val markdown_of_table : Table.t -> string
(** GitHub-flavoured markdown rendering of a single table. *)
