(* Automated validation of the paper's qualitative claims: each check
   runs an experiment and asserts the *shape* the paper predicts
   (orderings, crossovers, approximate factors), so a regression in any
   substrate that would silently change a scientific conclusion fails
   loudly. Exposed through `ebrc validate` and usable as a scientific
   CI gate. *)

module Formula = Ebrc_formulas.Formula
module Conditions = Ebrc_formulas.Conditions
module Convexity = Ebrc_numerics.Convexity
module Loss_interval = Ebrc_estimator.Loss_interval
module Loss_process = Ebrc_lossproc.Loss_process
module Basic_control = Ebrc_control.Basic_control
module Exact = Ebrc_control.Exact
module Few_flows = Ebrc_analysis.Few_flows
module Many_sources = Ebrc_analysis.Many_sources
module Prng = Ebrc_rng.Prng
module Pool = Ebrc_parallel.Pool

type check = {
  id : string;
  claim : string;             (* what the paper asserts *)
  run : quick:bool -> (bool * string);  (* (pass, evidence) *)
}

let run_basic ~seed ~kind ~l ~p ~cv ~cycles =
  let rng = Prng.create ~seed in
  let process = Loss_process.iid_shifted_exponential rng ~p ~cv in
  let formula = Formula.create ~rtt:1.0 kind in
  let estimator = Loss_interval.of_tfrc ~l in
  Basic_control.simulate ~formula ~estimator ~process ~cycles ()

let checks : check list =
  [
    {
      id = "prop4-ratio";
      claim = "PFTK-standard deviates from convexity by r = 1.0026";
      run =
        (fun ~quick ->
          let f = Formula.create ~rtt:1.0 ~b:1.0 Formula.Pftk_standard in
          let samples = if quick then 8192 else 65536 in
          let r =
            Convexity.deviation_ratio ~samples (Formula.g f) ~lo:3.25 ~hi:3.5
          in
          ( abs_float (r -. 1.0026) < 5e-4,
            Printf.sprintf "measured r = %.5f" r ));
    };
    {
      id = "f1-conditions";
      claim = "(F1) holds for SQRT and PFTK-simplified";
      run =
        (fun ~quick:_ ->
          let ok =
            Conditions.f1_holds (Formula.create Formula.Sqrt)
            && Conditions.f1_holds (Formula.create Formula.Pftk_simplified)
          in
          (ok, "convexity classifier on x in [1.5, 1000]"));
    };
    {
      id = "thm1-conservative";
      claim = "Theorem 1: iid losses + (F1) give x/f(p) <= 1";
      run =
        (fun ~quick ->
          let cycles = if quick then 50_000 else 300_000 in
          let worst = ref 0.0 in
          List.iter
            (fun (kind, l, p) ->
              let r = run_basic ~seed:11 ~kind ~l ~p ~cv:0.9 ~cycles in
              if r.Basic_control.normalized > !worst then
                worst := r.Basic_control.normalized)
            [
              (Formula.Sqrt, 4, 0.1); (Formula.Sqrt, 16, 0.3);
              (Formula.Pftk_simplified, 4, 0.1);
              (Formula.Pftk_simplified, 16, 0.3);
            ];
          ( !worst <= 1.02,
            Printf.sprintf "worst normalized = %.3f" !worst ));
    };
    {
      id = "claim1-l-ordering";
      claim = "Claim 1: larger L is less conservative";
      run =
        (fun ~quick ->
          let cycles = if quick then 50_000 else 300_000 in
          let v l =
            (run_basic ~seed:13 ~kind:Formula.Pftk_simplified ~l ~p:0.1
               ~cv:0.9 ~cycles)
              .Basic_control.normalized
          in
          let v2 = v 2 and v8 = v 8 and v16 = v 16 in
          ( v2 < v8 && v8 < v16,
            Printf.sprintf "L=2: %.3f < L=8: %.3f < L=16: %.3f" v2 v8 v16 ));
    };
    {
      id = "claim1-p-ordering";
      claim = "Claim 1: heavier loss is more conservative (PFTK)";
      run =
        (fun ~quick ->
          let cycles = if quick then 50_000 else 300_000 in
          let v p =
            (run_basic ~seed:17 ~kind:Formula.Pftk_simplified ~l:8 ~p ~cv:0.9
               ~cycles)
              .Basic_control.normalized
          in
          let a = v 0.02 and b = v 0.3 in
          (b < a, Printf.sprintf "p=0.02: %.3f > p=0.3: %.3f" a b));
    };
    {
      id = "sqrt-invariance";
      claim = "SQRT normalized throughput is invariant in p";
      run =
        (fun ~quick ->
          let l = 4 in
          let e p = Exact.normalized_throughput
              ~formula:(Formula.create Formula.Sqrt) ~l ~p ~cv:0.9 in
          ignore quick;
          let a = e 0.01 and b = e 0.4 in
          ( abs_float (a -. b) < 1e-6,
            Printf.sprintf "exact: %.6f vs %.6f" a b ));
    };
    {
      id = "claim2-crossover";
      claim =
        "Claim 2: audio source conservative under SQRT, non-conservative \
         under PFTK at heavy loss";
      run =
        (fun ~quick ->
          let duration = if quick then 800.0 else 3000.0 in
          let run kind drop_p =
            (Audio_scenario.run
               {
                 Audio_scenario.default_config with
                 drop_p;
                 formula_kind = kind;
                 duration;
                 warmup = duration /. 10.0;
               })
              .Audio_scenario.normalized_throughput
          in
          let sqrt_heavy = run Formula.Sqrt 0.2 in
          let pftk_heavy = run Formula.Pftk_simplified 0.2 in
          ( sqrt_heavy <= 1.02 && pftk_heavy > 1.0,
            Printf.sprintf "SQRT: %.3f <= 1 < PFTK: %.3f" sqrt_heavy
              pftk_heavy ));
    };
    {
      id = "claim3-ordering";
      claim = "Claim 3: p' <= p <= p'' in the many-sources limit";
      run =
        (fun ~quick:_ ->
          let cp =
            [|
              { Many_sources.p_i = 0.001; pi_i = 0.5 };
              { Many_sources.p_i = 0.01; pi_i = 0.3 };
              { Many_sources.p_i = 0.05; pi_i = 0.2 };
            |]
          in
          let formula = Formula.create ~rtt:0.05 Formula.Pftk_standard in
          let fr p = Formula.eval formula p in
          let p'' =
            Many_sources.limit_loss_event_rate cp
              ~rates:(Many_sources.poisson_profile cp)
          in
          let p' =
            Many_sources.limit_loss_event_rate cp
              ~rates:(Many_sources.responsive_profile cp ~formula_rate:fr)
          in
          let p_mid =
            Many_sources.limit_loss_event_rate cp
              ~rates:
                (Many_sources.partially_responsive_profile cp
                   ~formula_rate:fr ~responsiveness:0.5)
          in
          ( p' < p_mid && p_mid < p'',
            Printf.sprintf "p' = %.5f < p = %.5f < p'' = %.5f" p' p_mid p''
          ));
    };
    {
      id = "claim3-bottleneck";
      claim = "Claim 3 on a shared RED bottleneck: p'(TCP) <= p(TFRC) <= p''";
      run =
        (fun ~quick ->
          let cfg =
            {
              Scenario.default_config with
              seed = 21;
              n_tfrc = 4;
              n_tcp = 4;
              duration = (if quick then 80.0 else 300.0);
              warmup = (if quick then 20.0 else 60.0);
            }
          in
          let r = Result_cache.run cfg in
          let p = Scenario.pooled_loss_rate r.Scenario.tfrc in
          let p' = Scenario.pooled_loss_rate r.Scenario.tcp in
          let p'' =
            match r.Scenario.probe with
            | Some m -> m.Scenario.loss_event_rate
            | None -> nan
          in
          ( p' <= p *. 1.5 && p <= p'' *. 1.5,
            Printf.sprintf "p' = %.4f, p = %.4f, p'' = %.4f (50%% slack)" p' p
              p'' ));
    };
    {
      id = "claim4-closed-form";
      claim = "Claim 4: p'/p = 16/9 at beta = 1/2, confirmed by simulation";
      run =
        (fun ~quick:_ ->
          let params =
            { Few_flows.alpha = 1.0; beta = 0.5; capacity = 100.0 }
          in
          let analytic = Few_flows.loss_rate_ratio ~beta:0.5 in
          let sim =
            Few_flows.simulate_aimd ~cycles:500 params
            /. Few_flows.simulate_ebrc ~cycles:500 params
          in
          ( abs_float (analytic -. (16.0 /. 9.0)) < 1e-12
            && abs_float (sim -. analytic) < 0.02 *. analytic,
            Printf.sprintf "analytic %.4f, simulated %.4f" analytic sim ));
    };
    {
      id = "prop2-comprehensive";
      claim = "Proposition 2: comprehensive >= basic throughput";
      run =
        (fun ~quick ->
          let cycles = if quick then 30_000 else 200_000 in
          let mk seed =
            let rng = Prng.create ~seed in
            Loss_process.iid_shifted_exponential rng ~p:0.05 ~cv:0.9
          in
          let formula = Formula.create ~rtt:1.0 Formula.Pftk_simplified in
          let basic =
            Basic_control.simulate ~formula
              ~estimator:(Loss_interval.of_tfrc ~l:8)
              ~process:(mk 31) ~cycles ()
          in
          let compr =
            Ebrc_control.Comprehensive_control.simulate ~formula
              ~estimator:(Loss_interval.of_tfrc ~l:8)
              ~process:(mk 31) ~cycles ()
          in
          ( compr.Ebrc_control.Comprehensive_control.normalized
            >= basic.Basic_control.normalized -. 0.01,
            Printf.sprintf "comprehensive %.3f >= basic %.3f"
              compr.Ebrc_control.Comprehensive_control.normalized
              basic.Basic_control.normalized ));
    };
    {
      id = "exact-vs-mc";
      claim = "Exact Erlang quadrature agrees with Monte Carlo";
      run =
        (fun ~quick ->
          let cycles = if quick then 100_000 else 500_000 in
          let formula = Formula.create ~rtt:1.0 Formula.Pftk_simplified in
          let exact =
            Exact.normalized_throughput ~formula ~l:8 ~p:0.1 ~cv:0.9
          in
          let rng = Prng.create ~seed:770 in
          let process = Loss_process.iid_shifted_exponential rng ~p:0.1 ~cv:0.9 in
          let estimator =
            Loss_interval.create ~weights:(Ebrc_estimator.Weights.uniform 8)
          in
          let mc =
            (Basic_control.simulate ~formula ~estimator ~process ~cycles ())
              .Basic_control.normalized
          in
          ( abs_float (mc -. exact) < 0.02 *. exact,
            Printf.sprintf "exact %.4f vs MC %.4f" exact mc ));
    };
    {
      id = "iv-b-sublinear";
      claim =
        "Section IV-B conjecture: large-window TCP growth is sub-linear";
      run =
        (fun ~quick ->
          (* Reuse the A6 machinery via a direct single run. *)
          let module Engine = Ebrc_sim.Engine in
          let module Link = Ebrc_net.Link in
          let module QD = Ebrc_net.Queue_discipline in
          let module TS = Ebrc_tcp.Tcp_sender in
          let module TR = Ebrc_tcp.Tcp_receiver in
          let module Trace = Ebrc_sim.Trace in
          let duration = if quick then 120.0 else 600.0 in
          let engine = Engine.create () in
          let rng = Prng.create ~seed:31 in
          let queue =
            QD.create ~service_rate:1250.0 ~capacity:200 QD.Drop_tail
          in
          let link =
            Link.create ~engine ~rate_bps:10e6 ~delay:0.025 ~queue ~rng
          in
          let sender = TS.create ~engine ~flow:0 () in
          let receiver = TR.create ~engine ~flow:0 () in
          TS.set_transmit sender (fun pkt -> Link.send link pkt);
          Link.set_deliver link (fun pkt ->
        TR.on_data receiver pkt;
        Ebrc_net.Packet.release pkt);
          TR.set_ack_sink receiver (fun ~acked ~dup ~echo ->
              ignore
                (Engine.schedule_after engine ~delay:0.025 (fun () ->
                     TS.on_ack sender ~acked ~dup ~echo)));
          let current = ref (Trace.create ()) in
          let best = ref (Trace.create ()) in
          let last_events = ref 0 in
          TS.set_rate_sample_hook sender (fun w ->
              let ev = TS.loss_events sender in
              if ev <> !last_events then begin
                last_events := ev;
                if Trace.length !current > Trace.length !best then
                  best := !current;
                current := Trace.create ()
              end;
              if TS.phase sender = TS.Congestion_avoidance then
                Trace.record !current ~time:(Engine.now engine) ~value:w);
          ignore (Engine.schedule engine ~at:0.0 (fun () -> TS.start sender));
          ignore (Engine.run ~until:duration engine);
          if Trace.length !current > Trace.length !best then best := !current;
          let ratio = Trace.growth_linearity !best in
          ( ratio < 0.95,
            Printf.sprintf "slope ratio (2nd/1st half) = %.3f < 1" ratio ));
    };
    {
      id = "competition-collapse";
      claim =
        "Competing AIMD+EBRC: the loss-rate ratio collapses toward 1 \
         (less pronounced than isolated, as the paper notes)";
      run =
        (fun ~quick ->
          let cycles = if quick then 500 else 5000 in
          let params =
            { Few_flows.alpha = 1.0; beta = 0.5; capacity = 100.0 }
          in
          let r = Few_flows.simulate_competition ~cycles params in
          ( r.Few_flows.ratio < Few_flows.loss_rate_ratio ~beta:0.5
            && r.Few_flows.ratio > 0.8,
            Printf.sprintf "competing %.3f < isolated %.3f" r.Few_flows.ratio
              (Few_flows.loss_rate_ratio ~beta:0.5) ));
    };
    {
      id = "feller-ordering";
      claim =
        "Feller paradox: the event-average rate exceeds the time-average \
         throughput";
      run =
        (fun ~quick ->
          let cycles = if quick then 50_000 else 300_000 in
          let r =
            run_basic ~seed:23 ~kind:Formula.Sqrt ~l:4 ~p:0.1 ~cv:0.9 ~cycles
          in
          ( r.Basic_control.palm_mean_rate >= r.Basic_control.throughput,
            Printf.sprintf "E0[X] = %.2f >= x_bar = %.2f"
              r.Basic_control.palm_mean_rate r.Basic_control.throughput ));
    };
  ]

type outcome = { check : check; passed : bool; evidence : string;
                 seconds : float }

(* Each check is a self-contained experiment with its own seeds, so the
   grid parallelises cleanly; only the wall-clock [seconds] column
   depends on [jobs]. A check that raises (budget exceeded, crashed
   substrate, ...) is recorded as FAIL with the exception as evidence
   instead of killing the whole validation run. *)
let run_all ?(quick = true) ?(jobs = 1) () =
  let one check =
    let t0 = Unix.gettimeofday () in
    let passed, evidence =
      match check.run ~quick with
      | outcome -> outcome
      | exception e ->
          (false, Printf.sprintf "raised %s" (Printexc.to_string e))
    in
    { check; passed; evidence; seconds = Unix.gettimeofday () -. t0 }
  in
  if jobs <= 1 then List.map one checks
  else Pool.map_list (Pool.shared ~domains:jobs ()) one checks

let to_table outcomes =
  let t =
    Table.create ~title:"Paper-claim validation"
      ~header:[ "check"; "verdict"; "evidence"; "secs" ]
  in
  List.fold_left
    (fun t o ->
      Table.add_row t
        [
          o.check.id;
          (if o.passed then "PASS" else "FAIL");
          o.evidence;
          Printf.sprintf "%.1f" o.seconds;
        ])
    t outcomes

let all_passed outcomes = List.for_all (fun o -> o.passed) outcomes
