(** The dumbbell scenario standing in for the paper's ns-2 and lab
    setups: TFRC, TCP and optional Poisson-probe flows sharing one
    bottleneck; fixed-delay reverse path; counter-snapshot measurement
    over [warmup, duration]. *)

type queue_config =
  | Drop_tail of { capacity : int }
  | Red_auto of { capacity : int }
      (** Thresholds derived from the BDP as in the paper's ns-2 runs;
          capacity 0 means 2.5 × BDP. *)
  | Red_manual of {
      capacity : int;
      params : Ebrc_net.Queue_discipline.red_params;
    }

type background = {
  bg_flows : int;
      (** Fluid background aggregate: the number of AIMD flows the ODE
          stands in for (10⁴–10⁶ is the intended regime). *)
  bg_share_cap : float;
      (** Max capacity fraction the fluid may hold (service floor for
          the packet-level foreground). *)
  bg_resolution : float;  (** Fluid sync quantum, seconds. *)
}

val default_background : flows:int -> background
(** share_cap 0.9, resolution 1 ms. *)

type config = {
  seed : int;
  bottleneck_bps : float;
  one_way_delay : float;
  queue : queue_config;
  packet_size : int;
  n_tfrc : int;
  n_tcp : int;
  with_probe : bool;
  tfrc_l : int;
  tfrc_formula_kind : Ebrc_formulas.Formula.kind;
  tfrc_comprehensive : bool;
  tfrc_conform_to_analysis : bool;
  reverse_jitter : float;
      (** Per-flow reverse-delay spread (factor in 1 ± jitter); breaks
          DropTail phase effects and, at larger values, exercises the
          r′/r sub-condition under heterogeneous RTTs. *)
  duration : float;
  warmup : float;
  faults : Ebrc_net.Fault.config option;
      (** Deterministic fault injection (link flaps, delay spikes,
          reordering, duplication on the forward path; one-way
          blackouts on the TFRC feedback path). The injector draws
          from [Prng.stream ~root:seed], so it never perturbs the
          master sequence: a run with [faults = None] — or with the
          layer disabled via [EBRC_FAULTS=0] — is bit-identical to a
          fault-free run. *)
  background : background option;
      (** Fluid background aggregate sharing the bottleneck (the hybrid
          packet/fluid engine). Like [faults], a run with [None] — or
          with the layer disabled via [EBRC_HYBRID=0] — is bit-identical
          to a packet-only run: nothing is attached to the link or the
          engine. *)
}

val default_config : config
(** The paper's ns-2 baseline: 15 Mb/s RED bottleneck, ~50 ms RTT,
    PFTK-standard, L = 8, 300 s runs. *)

type flow_measure = {
  flow : int;
  throughput_pps : float;
  loss_event_rate : float;
  mean_rtt : float;
  loss_intervals : float array;
  estimate_pairs : (float * float) array;  (** TFRC only: (θ̂ₙ, θₙ). *)
}

type result = {
  tfrc : flow_measure array;
  tcp : flow_measure array;
  probe : flow_measure option;
  link_utilization : float;
  queue_drops : int;
  sim_time : float;
  tfrc_halvings : int;
      (** RFC 3448 nofeedback-timer halvings summed over TFRC senders
          (whole run, not just the measurement window). *)
  fault_stats : Ebrc_net.Fault.stats option;
      (** Injector counts; [None] when no injector was active. *)
  fluid_stats : Ebrc_net.Fluid.stats option;
      (** Fluid background state at the end of the run; [None] when no
          fluid was attached. *)
}

val run : config -> result
(** When live streaming with sim-time sampling is active
    ({!Ebrc_telemetry.Stream.sim_active}), [run] also emits a
    [run_start]/[delta]/[run_end] record sequence keyed by
    {!stream_key}: an engine sampler fires at sim-time boundaries and
    streams this run's domain-local telemetry deltas. The sampler
    neither schedules events nor draws randomness, so the simulation
    result is bit-identical with streaming on or off. *)

val stream_key : config -> string
(** Config-derived identity used for this run's stream records — a
    pure function of the config, independent of pool scheduling. *)

val base_rtt : config -> float
val bdp_packets : config -> float

val queue_capacity : config -> int
(** Bottleneck queue capacity in packets, after the 0-means-2.5×BDP
    default. *)

val fluid_config : config -> background -> Ebrc_net.Fluid.config
(** The fluid configuration [run] attaches for this background: drop
    profile mirroring the packet queue, capacity and qmax shared with
    it. Lets callers query [Fluid.equilibrium] for exactly the
    aggregate a run used. *)

val mean_throughput : flow_measure array -> float
val mean_loss_rate : flow_measure array -> float
val mean_rtt : flow_measure array -> float

val pooled_pairs : flow_measure array -> (float * float) array
(** Concatenated (θ̂ₙ, θₙ) pairs across flows. *)

val pooled_loss_rate : flow_measure array -> float
(** Loss-event rate over the union of all flows' completed intervals —
    stabler than averaging per-flow rates. *)

(** {2 Robust presets}

    Stress configs for the paper's qualitative claims when the control
    loop degrades (the spirit of its lab/Internet experiments). *)

val robust_blackout_config : config
(** Recurring one-way feedback blackouts; the nofeedback timer must
    fire (> 0 halvings) while TCP, whose acks are not blacked out,
    keeps flowing. *)

val robust_flaps_config : config
(** Random link up/down flaps (drop mode); TFRC stays conservative
    vs. the formula rate through the loss bursts. *)

val robust_chaos_config : config
(** Flaps (park mode) + delay spikes + reordering + duplication + a
    one-shot blackout — the determinism workout. *)

val robust_presets : (string * string * config) list
(** [(name, description, config)]; names are ["robust-blackout"],
    ["robust-flaps"], ["robust-chaos"]. *)

val robust_preset : string -> config option
