(** Content-addressed scenario result cache.

    A canonical digest of the full scenario configuration (seed, link,
    queue discipline, flow mix, TFRC estimator/formula parameters,
    durations) plus a code-version tag keys an in-memory memo and an
    optional on-disk store, so [report], [figures] and [bench] never
    pay for the same simulation twice. [Scenario.run] is deterministic
    in its config, so a hit is byte-identical to a fresh run; floats
    are stored as hex-float strings for exact round-trips (including
    nan/infinity). Safe to call from parallel sweep workers. *)

val run : Scenario.config -> Scenario.result
(** Memo lookup, then disk lookup (when a cache directory is set),
    then [Scenario.run] + store. With the cache disabled this is
    exactly [Scenario.run]. *)

val set_enabled : bool -> unit
(** Default on; set [EBRC_CACHE=0] (or the CLI's [--no-cache]) to
    bypass the cache entirely. *)

val enabled : unit -> bool

val set_dir : string option -> unit
(** On-disk store location; [None] (the default, unless
    [EBRC_CACHE_DIR] is set) keeps the cache in-memory only. The
    directory is created on first store. *)

val dir : unit -> string option

val clear_memory : unit -> unit
(** Drop the in-memory memo (the disk store is untouched). *)

val digest_of_config : Scenario.config -> string
(** Hex digest of the canonical key — the on-disk record is
    [<digest>.json] under the cache directory. *)

val serialize_result : Scenario.result -> string
(** The exact JSON payload stored on disk; also useful for
    byte-identity checks in tests and benchmarks. *)

(** {2 Store as a service}

    Explicit-directory accessors for the multi-process sweep service
    (lib/serve): workers publish results into a shared store and serve
    watches it for completion. None of these touch the in-process
    memo, so a long-running worker stays O(1) in memory. *)

val load_from : dir:string -> Scenario.config -> Scenario.result option
(** Load and fully verify (schema, version tag, full key) the record
    for this config; [None] when absent or corrupt. *)

val store_to : dir:string -> Scenario.config -> Scenario.result -> unit
(** Publish a result into [dir] with the atomic tmp+rename discipline
    (same failure behaviour as the implicit store: a failed write is
    counted and warned, never raised). *)

val published : dir:string -> Scenario.config -> bool
(** [load_from] succeeds — a full verification, so a truncated or
    stale-version record reads as unpublished and gets recomputed. *)

val list_store : dir:string -> string list
(** Digests with a record file present in [dir], sorted; [[]] when the
    directory is unreadable. Presence alone does not imply validity —
    use {!published} per config for that. *)

val gc_tmp : ?max_age:float -> string -> int
(** Unlink stale [.<digest>.<pid>.tmp] files stranded by crashed
    writers, returning how many were reclaimed (also counted on the
    [cache.tmp_reclaimed] telemetry counter). Files younger than
    [max_age] seconds (default 3600) are left alone so a live writer's
    in-flight record survives — sweep callers pass [2 × lease ttl] so
    the threshold always dominates a worker's longest possible
    publication window. Safe on a missing directory. *)

type scrub_report = {
  scrub_checked : int;  (** records examined *)
  scrub_ok : int;  (** records that verified clean *)
  scrub_quarantined : string list;
      (** digests whose records were moved to quarantine, sorted by
          store order *)
  scrub_dir : string;  (** the quarantine directory used *)
}

val scrub : ?quarantine:string -> dir:string -> unit -> scrub_report
(** Verify every record in the store against the digest its file name
    claims: JSON parse, schema number, code-version tag, MD5 of the
    embedded key, and a full result decode. Corrupt or truncated
    records are moved — never deleted — into [quarantine] (default
    [dir/quarantine]), so re-serving the manifest recomputes exactly
    the quarantined digests. Emits [scrub.checked] / [scrub.ok] /
    [scrub.quarantined] telemetry. Invariant (property-tested):
    quarantined ∪ surviving = the original record set. *)

type stats = {
  hits : int;        (** in-memory memo hits *)
  disk_hits : int;   (** disk-record hits (schema + key verified) *)
  misses : int;      (** full simulation runs *)
  stores : int;      (** disk records written *)
  corrupt : int;     (** unreadable/mismatched disk records ignored *)
  store_errors : int;
      (** failed disk writes (unwritable [EBRC_CACHE_DIR], full disk):
          warned once per process, counted per failure
          ([cache.store_errors]); the run falls back to the in-memory
          memo instead of raising mid-figure. *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
