(** Content-addressed scenario result cache.

    A canonical digest of the full scenario configuration (seed, link,
    queue discipline, flow mix, TFRC estimator/formula parameters,
    durations) plus a code-version tag keys an in-memory memo and an
    optional on-disk store, so [report], [figures] and [bench] never
    pay for the same simulation twice. [Scenario.run] is deterministic
    in its config, so a hit is byte-identical to a fresh run; floats
    are stored as hex-float strings for exact round-trips (including
    nan/infinity). Safe to call from parallel sweep workers. *)

val run : Scenario.config -> Scenario.result
(** Memo lookup, then disk lookup (when a cache directory is set),
    then [Scenario.run] + store. With the cache disabled this is
    exactly [Scenario.run]. *)

val set_enabled : bool -> unit
(** Default on; set [EBRC_CACHE=0] (or the CLI's [--no-cache]) to
    bypass the cache entirely. *)

val enabled : unit -> bool

val set_dir : string option -> unit
(** On-disk store location; [None] (the default, unless
    [EBRC_CACHE_DIR] is set) keeps the cache in-memory only. The
    directory is created on first store. *)

val dir : unit -> string option

val clear_memory : unit -> unit
(** Drop the in-memory memo (the disk store is untouched). *)

val digest_of_config : Scenario.config -> string
(** Hex digest of the canonical key — the on-disk record is
    [<digest>.json] under the cache directory. *)

val serialize_result : Scenario.result -> string
(** The exact JSON payload stored on disk; also useful for
    byte-identity checks in tests and benchmarks. *)

type stats = {
  hits : int;        (** in-memory memo hits *)
  disk_hits : int;   (** disk-record hits (schema + key verified) *)
  misses : int;      (** full simulation runs *)
  stores : int;      (** disk records written *)
  corrupt : int;     (** unreadable/mismatched disk records ignored *)
  store_errors : int;
      (** failed disk writes (unwritable [EBRC_CACHE_DIR], full disk):
          warned once per process, counted per failure
          ([cache.store_errors]); the run falls back to the in-memory
          memo instead of raising mid-figure. *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
