(** A two-router chain generalising the paper's lab topology: two
    queued links in series with optional CBR cross-traffic joining at
    the second router. With the second link fast it degenerates to the
    dumbbell; with comparable rates plus cross-traffic, end-to-end loss
    events are a superposition of two congestion points. *)

type config = {
  seed : int;
  link1_bps : float;
  link2_bps : float;
  delay1 : float;
  delay2 : float;
  queue1_capacity : int;
  queue2_capacity : int;
  cross_rate_fraction : float;  (** CBR cross load as fraction of link2. *)
  n_tfrc : int;
  n_tcp : int;
  tfrc_l : int;
  duration : float;
  warmup : float;
  packet_size : int;
  faults : Ebrc_net.Fault.config option;
      (** Deterministic fault injection at the link-1 ingress (all
          senders) and on the TFRC feedback path; see
          {!Scenario.config}. *)
}

val default_config : config

type class_measure = {
  throughput_pps : float;   (** Per-flow mean over the class. *)
  loss_event_rate : float;  (** Pooled over the class. *)
  mean_rtt : float;
}

type result = {
  tfrc : class_measure;
  tcp : class_measure;
  drops_link1 : int;
  drops_link2 : int;
  utilization1 : float;
  utilization2 : float;
}

val run : config -> result
val base_rtt : config -> float
