(* Content-addressed scenario result cache.

   The key is a canonical rendering of every [Scenario.config] field
   (floats in hex so the key is exact, not a rounding of the config)
   plus a code-version tag that must be bumped whenever the simulator's
   observable behaviour changes — a stale tag silently invalidates
   every old record, which is the safe failure mode.

   Layering: an in-memory memo (mutex-guarded — sweep workers on pool
   domains call [run] concurrently) in front of an optional on-disk
   store of one JSON record per digest. Disk records carry the schema
   number, the version tag and the full key; a record failing any of
   those checks (or failing to parse) is counted as corrupt and
   ignored, and the next store simply overwrites it. Floats are
   serialized as hex-float strings ("%h" / [float_of_string]) so
   results round-trip bit-exactly, including nan and infinity. *)

module Tm = Ebrc_telemetry.Telemetry
module Chaos = Ebrc_chaos.Io_fault

let m_hits = Tm.Counter.make ~help:"scenario cache memo hits" "cache.hits"

let m_disk_hits =
  Tm.Counter.make ~help:"scenario cache disk hits" "cache.disk_hits"

let m_misses =
  Tm.Counter.make ~help:"scenario cache misses (full runs)" "cache.misses"

let m_stores =
  Tm.Counter.make ~help:"scenario cache disk records written" "cache.stores"

let m_corrupt =
  Tm.Counter.make ~help:"corrupt scenario cache records ignored"
    "cache.corrupt"

let m_bytes_read =
  Tm.Counter.make ~help:"scenario cache bytes read from disk"
    "cache.bytes_read"

let m_bytes_written =
  Tm.Counter.make ~help:"scenario cache bytes written to disk"
    "cache.bytes_written"

let m_store_errors =
  Tm.Counter.make ~help:"scenario cache disk-store failures"
    "cache.store_errors"

let m_tmp_reclaimed =
  Tm.Counter.make ~help:"stale cache tmp files reclaimed at startup"
    "cache.tmp_reclaimed"

let m_scrub_checked =
  Tm.Counter.make ~help:"store records examined by the scrubber"
    "scrub.checked"

let m_scrub_ok =
  Tm.Counter.make ~help:"store records that passed scrub verification"
    "scrub.ok"

let m_scrub_quarantined =
  Tm.Counter.make ~help:"corrupt store records moved to quarantine"
    "scrub.quarantined"

(* Bump whenever Scenario.run's observable behaviour changes.
   v5: result gains tfrc_halvings + fault_stats; key gains faults.
   v6: result gains fluid_stats; key gains the hybrid background. *)
let code_version = "ebrc-scenario-v6"

let enabled_flag = ref (Sys.getenv_opt "EBRC_CACHE" <> Some "0")
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let dir_ref = ref (Sys.getenv_opt "EBRC_CACHE_DIR")
let set_dir d = dir_ref := d
let dir () = !dir_ref

type stats = {
  hits : int;
  disk_hits : int;
  misses : int;
  stores : int;
  corrupt : int;
  store_errors : int;
}

let lock = Mutex.create ()
let memo : (string, Scenario.result) Hashtbl.t = Hashtbl.create 64
let s_hits = ref 0
let s_disk_hits = ref 0
let s_misses = ref 0
let s_stores = ref 0
let s_corrupt = ref 0
let s_store_errors = ref 0
let store_warned = ref false

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let clear_memory () = locked (fun () -> Hashtbl.reset memo)

let stats () =
  locked (fun () ->
      {
        hits = !s_hits;
        disk_hits = !s_disk_hits;
        misses = !s_misses;
        stores = !s_stores;
        corrupt = !s_corrupt;
        store_errors = !s_store_errors;
      })

let reset_stats () =
  locked (fun () ->
      s_hits := 0;
      s_disk_hits := 0;
      s_misses := 0;
      s_stores := 0;
      s_corrupt := 0;
      s_store_errors := 0;
      store_warned := false)

(* ------------------------- canonical key -------------------------- *)

let queue_key (q : Scenario.queue_config) =
  match q with
  | Scenario.Drop_tail { capacity } -> Printf.sprintf "dt:%d" capacity
  | Scenario.Red_auto { capacity } -> Printf.sprintf "redauto:%d" capacity
  | Scenario.Red_manual { capacity; params = p } ->
      Printf.sprintf "red:%d:%h:%h:%h:%h:%b:%d:%b" capacity
        p.Ebrc_net.Queue_discipline.min_th p.max_th p.max_p p.wq p.byte_mode
        p.mean_pktsize p.gentle

let formula_key (k : Ebrc_formulas.Formula.kind) =
  match k with
  | Ebrc_formulas.Formula.Sqrt -> "sqrt"
  | Pftk_standard -> "pftk"
  | Pftk_simplified -> "pftk-simple"
  | Aimd { alpha; beta } -> Printf.sprintf "aimd:%h:%h" alpha beta

module Fault = Ebrc_net.Fault

let window_key (w : Fault.window) =
  Printf.sprintf "%h:%h:%h" w.Fault.start w.length w.period

let fault_config_key (fc : Fault.config) =
  let flaps =
    match fc.Fault.flaps with
    | None -> "-"
    | Some f ->
        Printf.sprintf "%h:%h:%h:%h:%b" f.Fault.first_down f.down_mean
          f.up_mean f.flap_jitter f.park
  in
  let blackouts = String.concat "," (List.map window_key fc.blackouts) in
  let spike =
    match fc.spike with
    | None -> "-"
    | Some (w, d) -> Printf.sprintf "%s:%h" (window_key w) d
  in
  let reorder =
    match fc.reorder with
    | None -> "-"
    | Some (w, p, h) -> Printf.sprintf "%s:%h:%h" (window_key w) p h
  in
  let duplicate =
    match fc.duplicate with
    | None -> "-"
    | Some (w, p) -> Printf.sprintf "%s:%h" (window_key w) p
  in
  Printf.sprintf "flaps=%s,bo=%s,spike=%s,re=%s,dup=%s" flaps blackouts spike
    reorder duplicate

(* The key renders the EFFECTIVE fault config: with the layer disabled
   (EBRC_FAULTS=0) a faulted config keys — and therefore caches —
   identically to a fault-free one, matching what Scenario.run does. *)
let effective_faults (cfg : Scenario.config) =
  match cfg.Scenario.faults with
  | Some fc when Fault.enabled () -> fault_config_key fc
  | _ -> "none"

module Fluid = Ebrc_net.Fluid

(* Same effective-config rule for the hybrid background: with the layer
   disabled (EBRC_HYBRID=0) a hybrid config keys — and caches —
   identically to a packet-only one, matching Scenario.run. *)
let effective_background (cfg : Scenario.config) =
  match cfg.Scenario.background with
  | Some bg when Fluid.enabled () ->
      Printf.sprintf "%d:%h:%h" bg.Scenario.bg_flows bg.bg_share_cap
        bg.bg_resolution
  | _ -> "none"

let canonical_key (cfg : Scenario.config) =
  Printf.sprintf
    "%s;seed=%d;bps=%h;owd=%h;queue=%s;pkt=%d;ntfrc=%d;ntcp=%d;probe=%b;l=%d;formula=%s;compr=%b;conform=%b;jitter=%h;dur=%h;warm=%h;faults=%s;bg=%s"
    code_version cfg.Scenario.seed cfg.bottleneck_bps cfg.one_way_delay
    (queue_key cfg.queue) cfg.packet_size cfg.n_tfrc cfg.n_tcp cfg.with_probe
    cfg.tfrc_l
    (formula_key cfg.tfrc_formula_kind)
    cfg.tfrc_comprehensive cfg.tfrc_conform_to_analysis cfg.reverse_jitter
    cfg.duration cfg.warmup (effective_faults cfg) (effective_background cfg)

let digest_of_config cfg = Digest.to_hex (Digest.string (canonical_key cfg))

(* -------------------------- serialization ------------------------- *)

(* Hex floats round-trip bit-exactly through float_of_string, and "%h"
   renders nan/infinity as the literals float_of_string accepts. *)
let add_float buf f =
  Buffer.add_char buf '"';
  Buffer.add_string buf (Printf.sprintf "%h" f);
  Buffer.add_char buf '"'

let add_float_array buf arr =
  Buffer.add_char buf '[';
  Array.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      add_float buf f)
    arr;
  Buffer.add_char buf ']'

let add_pair_array buf arr =
  Buffer.add_char buf '[';
  Array.iteri
    (fun i (a, b) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '[';
      add_float buf a;
      Buffer.add_char buf ',';
      add_float buf b;
      Buffer.add_char buf ']')
    arr;
  Buffer.add_char buf ']'

let add_measure buf (m : Scenario.flow_measure) =
  Buffer.add_string buf (Printf.sprintf "{\"flow\":%d," m.Scenario.flow);
  Buffer.add_string buf "\"throughput_pps\":";
  add_float buf m.throughput_pps;
  Buffer.add_string buf ",\"loss_event_rate\":";
  add_float buf m.loss_event_rate;
  Buffer.add_string buf ",\"mean_rtt\":";
  add_float buf m.mean_rtt;
  Buffer.add_string buf ",\"loss_intervals\":";
  add_float_array buf m.loss_intervals;
  Buffer.add_string buf ",\"estimate_pairs\":";
  add_pair_array buf m.estimate_pairs;
  Buffer.add_char buf '}'

let add_measures buf arr =
  Buffer.add_char buf '[';
  Array.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char buf ',';
      add_measure buf m)
    arr;
  Buffer.add_char buf ']'

let serialize_result (r : Scenario.result) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"tfrc\":";
  add_measures buf r.Scenario.tfrc;
  Buffer.add_string buf ",\"tcp\":";
  add_measures buf r.tcp;
  Buffer.add_string buf ",\"probe\":";
  (match r.probe with
  | None -> Buffer.add_string buf "null"
  | Some m -> add_measure buf m);
  Buffer.add_string buf ",\"link_utilization\":";
  add_float buf r.link_utilization;
  Buffer.add_string buf (Printf.sprintf ",\"queue_drops\":%d," r.queue_drops);
  Buffer.add_string buf "\"sim_time\":";
  add_float buf r.sim_time;
  Buffer.add_string buf
    (Printf.sprintf ",\"tfrc_halvings\":%d,\"fault_stats\":" r.tfrc_halvings);
  (match r.fault_stats with
  | None -> Buffer.add_string buf "null"
  | Some (s : Fault.stats) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"transitions\":%d,\"down_drops\":%d,\"parked\":%d,\"spiked\":%d,\"reordered\":%d,\"duplicated\":%d,\"blackout_drops\":%d}"
           s.Fault.transitions s.down_drops s.parked s.spiked s.reordered
           s.duplicated s.blackout_drops));
  Buffer.add_string buf ",\"fluid_stats\":";
  (match r.fluid_stats with
  | None -> Buffer.add_string buf "null"
  | Some (s : Fluid.stats) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"advances\":%d,\"accepted\":%d,\"rejected\":%d,\"evals\":%d"
           s.Fluid.advances s.ode.Ebrc_numerics.Ode.accepted s.ode.rejected
           s.ode.evals);
      Buffer.add_string buf ",\"w\":";
      add_float buf s.w;
      Buffer.add_string buf ",\"q\":";
      add_float buf s.q;
      Buffer.add_string buf ",\"a_fg\":";
      add_float buf s.a_fg;
      Buffer.add_string buf ",\"mean_util\":";
      add_float buf s.mean_util;
      Buffer.add_string buf ",\"mean_drop\":";
      add_float buf s.mean_drop;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}';
  Buffer.contents buf

let record_string ~key r =
  Printf.sprintf "{\"schema\":1,\"version\":\"%s\",\"key\":\"%s\",\"result\":%s}\n"
    code_version key (serialize_result r)

(* ------------------------- minimal parser ------------------------- *)

(* The disk records are machine-written in the fixed shape above, but
   the reader below is a small general JSON parser so a truncated or
   hand-edited record fails loudly into the corrupt path instead of
   crashing. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Corrupt

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c = if peek () = c then advance () else raise Corrupt in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          Buffer.add_char buf (peek ());
          advance ();
          go ()
      | '\000' -> raise Corrupt
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    let num_char c = (c >= '0' && c <= '9') || c = '-' in
    while num_char (peek ()) do
      advance ()
    done;
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some i -> i
    | None -> raise Corrupt
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> raise Corrupt
          in
          members []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (
          advance ();
          List [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elements (v :: acc)
            | ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> raise Corrupt
          in
          elements []
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Int (parse_int ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise Corrupt;
  v

let member name = function
  | Obj kvs -> ( match List.assoc_opt name kvs with Some v -> v | None -> raise Corrupt)
  | _ -> raise Corrupt

let as_float = function
  | Str s -> (
      match float_of_string_opt s with Some f -> f | None -> raise Corrupt)
  | _ -> raise Corrupt

let as_int = function Int i -> i | _ -> raise Corrupt

let as_float_array = function
  | List xs -> Array.of_list (List.map as_float xs)
  | _ -> raise Corrupt

let as_pair_array = function
  | List xs ->
      Array.of_list
        (List.map
           (function
             | List [ a; b ] -> (as_float a, as_float b) | _ -> raise Corrupt)
           xs)
  | _ -> raise Corrupt

let measure_of_json j : Scenario.flow_measure =
  {
    Scenario.flow = as_int (member "flow" j);
    throughput_pps = as_float (member "throughput_pps" j);
    loss_event_rate = as_float (member "loss_event_rate" j);
    mean_rtt = as_float (member "mean_rtt" j);
    loss_intervals = as_float_array (member "loss_intervals" j);
    estimate_pairs = as_pair_array (member "estimate_pairs" j);
  }

let measures_of_json = function
  | List xs -> Array.of_list (List.map measure_of_json xs)
  | _ -> raise Corrupt

let result_of_record ~key (s : string) : Scenario.result =
  let j = parse_json s in
  (match member "schema" j with Int 1 -> () | _ -> raise Corrupt);
  (match member "version" j with
  | Str v when v = code_version -> ()
  | _ -> raise Corrupt);
  (* The full key is stored and compared, so a digest collision (or a
     renamed file) can never serve the wrong result. *)
  (match member "key" j with Str k when k = key -> () | _ -> raise Corrupt);
  let r = member "result" j in
  {
    Scenario.tfrc = measures_of_json (member "tfrc" r);
    tcp = measures_of_json (member "tcp" r);
    probe = (match member "probe" r with Null -> None | m -> Some (measure_of_json m));
    link_utilization = as_float (member "link_utilization" r);
    queue_drops = as_int (member "queue_drops" r);
    sim_time = as_float (member "sim_time" r);
    tfrc_halvings = as_int (member "tfrc_halvings" r);
    fault_stats =
      (match member "fault_stats" r with
      | Null -> None
      | fs ->
          Some
            {
              Fault.transitions = as_int (member "transitions" fs);
              down_drops = as_int (member "down_drops" fs);
              parked = as_int (member "parked" fs);
              spiked = as_int (member "spiked" fs);
              reordered = as_int (member "reordered" fs);
              duplicated = as_int (member "duplicated" fs);
              blackout_drops = as_int (member "blackout_drops" fs);
            });
    fluid_stats =
      (match member "fluid_stats" r with
      | Null -> None
      | fs ->
          Some
            {
              Fluid.advances = as_int (member "advances" fs);
              ode =
                {
                  Ebrc_numerics.Ode.accepted = as_int (member "accepted" fs);
                  rejected = as_int (member "rejected" fs);
                  evals = as_int (member "evals" fs);
                };
              w = as_float (member "w" fs);
              q = as_float (member "q" fs);
              a_fg = as_float (member "a_fg" fs);
              mean_util = as_float (member "mean_util" fs);
              mean_drop = as_float (member "mean_drop" fs);
            });
  }

(* --------------------------- disk store --------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let disk_load ~dir ~key digest =
  let path = Filename.concat dir (digest ^ ".json") in
  if not (Sys.file_exists path) then None
  else
    match
      let s = read_file path in
      if Tm.is_on () then Tm.Counter.add m_bytes_read (String.length s);
      result_of_record ~key s
    with
    | r -> Some r
    | exception _ ->
        locked (fun () -> incr s_corrupt);
        if Tm.is_on () then Tm.Counter.incr m_corrupt;
        None

let disk_store ~dir ~key digest r =
  match
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (digest ^ ".json") in
    let tmp =
      Filename.concat dir
        (Printf.sprintf ".%s.%d.tmp" digest (Unix.getpid ()))
    in
    Chaos.guard_open tmp;
    let oc = open_out_bin tmp in
    let record = record_string ~key r in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Chaos.write oc record;
        Chaos.fsync oc);
    Chaos.guard_rename path;
    Sys.rename tmp path;
    String.length record
  with
  | n ->
      locked (fun () -> incr s_stores);
      if Tm.is_on () then begin
        Tm.Counter.incr m_stores;
        Tm.Counter.add m_bytes_written n
      end
  | exception e ->
      (* A read-only or vanished cache directory (or a full disk) must
         never fail the experiment — the result is still returned from
         memory. Count the failure and warn once per process so the
         silent-degradation mode is at least visible. *)
      locked (fun () ->
          incr s_store_errors;
          if not !store_warned then begin
            store_warned := true;
            Printf.eprintf
              "ebrc: warning: scenario cache store to %s failed (%s); \
               continuing with the in-memory cache only\n\
               %!"
              dir (Printexc.to_string e)
          end);
      if Tm.is_on () then Tm.Counter.incr m_store_errors

(* ------------------------ store as a service ---------------------- *)

(* The sweep service (lib/serve) treats the disk store as the shared
   result backbone for many worker processes: every accessor below
   takes an explicit directory and never touches the per-process memo,
   so a million-task worker stays O(1) in memory and a publication is
   visible to every other process the instant the rename lands. *)

let load_from ~dir cfg =
  let key = canonical_key cfg in
  disk_load ~dir ~key (Digest.to_hex (Digest.string key))

let store_to ~dir cfg r =
  let key = canonical_key cfg in
  disk_store ~dir ~key (Digest.to_hex (Digest.string key)) r

(* Full load + verification, not a bare [Sys.file_exists]: a truncated
   or stale-version record counts as unpublished, so a resumed sweep
   recomputes it instead of trusting a corpse. *)
let published ~dir cfg = load_from ~dir cfg <> None

let list_store ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      let digests =
        Array.to_list entries
        |> List.filter_map (fun e ->
               if String.length e > 0 && e.[0] <> '.'
                  && Filename.check_suffix e ".json"
               then Some (Filename.chop_suffix e ".json")
               else None)
      in
      List.sort String.compare digests

(* A writer SIGKILL'd between open and rename strands its
   [.<digest>.<pid>.tmp]; they are invisible to readers (digest file
   names never start with '.') but accumulate forever. The age gate
   keeps a live writer's in-flight tmp safe: anything younger than
   [max_age] is left alone. *)
let gc_tmp ?(max_age = 3600.0) dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
      let now = Unix.gettimeofday () in
      Array.fold_left
        (fun n e ->
          if String.length e > 0 && e.[0] = '.'
             && Filename.check_suffix e ".tmp"
          then
            let p = Filename.concat dir e in
            match Unix.stat p with
            | st when now -. st.Unix.st_mtime > max_age -> (
                match Unix.unlink p with
                | () ->
                    if Tm.is_on () then Tm.Counter.incr m_tmp_reclaimed;
                    n + 1
                | exception Unix.Unix_error _ -> n)
            | _ -> n
            | exception Unix.Unix_error _ -> n
          else n)
        0 entries

(* ------------------------------ scrub ----------------------------- *)

let rec mkdir_p d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Full verification of a store record against the digest its file name
   claims: parse, schema, version tag, MD5(key) = digest, and the
   result payload itself must decode. *)
let verify_record ~digest (s : string) =
  match
    let j = parse_json s in
    let k = match member "key" j with Str k -> k | _ -> raise Corrupt in
    if Digest.to_hex (Digest.string k) <> digest then raise Corrupt;
    ignore (result_of_record ~key:k s)
  with
  | () -> true
  | exception _ -> false

type scrub_report = {
  scrub_checked : int;
  scrub_ok : int;
  scrub_quarantined : string list;
  scrub_dir : string;
}

let scrub ?quarantine ~dir () =
  let qdir =
    match quarantine with
    | Some q -> q
    | None -> Filename.concat dir "quarantine"
  in
  let checked = ref 0 and ok = ref 0 and quarantined = ref [] in
  List.iter
    (fun digest ->
      incr checked;
      if Tm.is_on () then Tm.Counter.incr m_scrub_checked;
      let path = Filename.concat dir (digest ^ ".json") in
      let good =
        match read_file path with
        | s -> verify_record ~digest s
        | exception _ -> false
      in
      if good then begin
        incr ok;
        if Tm.is_on () then Tm.Counter.incr m_scrub_ok
      end
      else begin
        (* Never silently delete: the corpse moves to quarantine under
           its own name (suffixed if a previous scrub already parked
           one) so it stays available for postmortem. *)
        mkdir_p qdir;
        let dst =
          let base = Filename.concat qdir (digest ^ ".json") in
          if not (Sys.file_exists base) then base
          else
            let rec pick i =
              let p = Printf.sprintf "%s.%d" base i in
              if Sys.file_exists p then pick (i + 1) else p
            in
            pick 1
        in
        match Unix.rename path dst with
        | () ->
            quarantined := digest :: !quarantined;
            if Tm.is_on () then Tm.Counter.incr m_scrub_quarantined
        | exception Unix.Unix_error _ -> ()
      end)
    (list_store ~dir);
  {
    scrub_checked = !checked;
    scrub_ok = !ok;
    scrub_quarantined = List.rev !quarantined;
    scrub_dir = qdir;
  }

(* ------------------------------ run ------------------------------- *)

let run cfg =
  if not !enabled_flag then Scenario.run cfg
  else begin
    let key = canonical_key cfg in
    match locked (fun () -> Hashtbl.find_opt memo key) with
    | Some r ->
        locked (fun () -> incr s_hits);
        if Tm.is_on () then Tm.Counter.incr m_hits;
        r
    | None -> (
        let digest = Digest.to_hex (Digest.string key) in
        let from_disk =
          match !dir_ref with
          | None -> None
          | Some dir -> disk_load ~dir ~key digest
        in
        match from_disk with
        | Some r ->
            locked (fun () ->
                incr s_disk_hits;
                Hashtbl.replace memo key r);
            if Tm.is_on () then Tm.Counter.incr m_disk_hits;
            r
        | None ->
            let r = Scenario.run cfg in
            locked (fun () ->
                incr s_misses;
                Hashtbl.replace memo key r);
            if Tm.is_on () then Tm.Counter.incr m_misses;
            (match !dir_ref with
            | None -> ()
            | Some dir -> disk_store ~dir ~key digest r);
            r)
  end
