(* One runner per paper figure/table. Every runner returns Table.t
   values whose rows are the series the paper plots; `quick` shrinks
   grids and run lengths so the whole suite fits in a benchmark run,
   while the full mode reproduces the paper-scale sweeps.

   The experiment index lives in DESIGN.md; paper-vs-measured notes in
   EXPERIMENTS.md. *)

module Formula = Ebrc_formulas.Formula
module Conditions = Ebrc_formulas.Conditions
module Convexity = Ebrc_numerics.Convexity
module Loss_interval = Ebrc_estimator.Loss_interval
module Weights = Ebrc_estimator.Weights
module Loss_process = Ebrc_lossproc.Loss_process
module Basic_control = Ebrc_control.Basic_control
module Comprehensive_control = Ebrc_control.Comprehensive_control
module Prng = Ebrc_rng.Prng
module Descriptive = Ebrc_stats.Descriptive
module Breakdown = Ebrc_analysis.Breakdown
module Few_flows = Ebrc_analysis.Few_flows
module Many_sources = Ebrc_analysis.Many_sources
module Pool = Ebrc_parallel.Pool
module Tm = Ebrc_telemetry.Telemetry

let m_figures_run =
  Tm.Counter.make ~help:"figure/table runners executed" "exp.figures_run"

let m_tables =
  Tm.Counter.make ~help:"result tables produced by runners" "exp.tables"

let cell = Table.cell_float

(* Order-preserving parallel map over the points of a sweep. Every
   point must be self-contained — its own PRNG seed derived from the
   point's coordinates, no shared mutable state — so the output list is
   identical for every [jobs], and tables built from it are
   byte-identical to the sequential run. *)
(* Sweeps below this many points stay serial: the job handoff to
   parked workers costs more than it saves on tiny grids. Raised from 4
   after a bench record caught figure 3's quick sweep at 0.44x with 2
   jobs — its flattened 25-point grid cleared the old threshold, but at
   ~3 ms a point the pool handoff dominated. Figure 3 now hands the
   pool whole rows (see below), and any sweep shorter than 8 tasks is
   assumed to be in the same fine-grained regime. *)
let par_threshold = 8

let par_map ~jobs f xs =
  if jobs <= 1 || List.compare_length_with xs par_threshold < 0 then
    List.map f xs
  else Pool.map_list (Pool.shared ~domains:jobs ()) f xs

(* Split [xs] after its first [n] elements — used to slice a flat
   row-major sweep result back into table rows. *)
let rec take_drop n xs =
  if n = 0 then ([], xs)
  else
    match xs with
    | [] -> ([], [])
    | x :: tl ->
        let a, b = take_drop (n - 1) tl in
        (x :: a, b)

(* ------------------------------------------------------------------ *)
(* Figure 1: the functionals x -> f(1/x) and x -> 1/f(1/x).            *)
(* ------------------------------------------------------------------ *)

let fig1 ?jobs:_ ~quick:_ () =
  let formulas =
    List.map (fun k -> Formula.create ~rtt:1.0 k) Formula.all_paper_kinds
  in
  let xs = [ 1.5; 2.0; 3.0; 5.0; 8.0; 12.0; 20.0; 30.0; 50.0 ] in
  let t =
    Table.create ~title:"Figure 1: f(1/x) and 1/f(1/x) (r=1, q=4r)"
      ~header:
        ("x"
        :: List.concat_map
             (fun f -> [ Formula.name f ^ " f(1/x)"; Formula.name f ^ " g(x)" ])
             formulas)
  in
  let t =
    List.fold_left
      (fun t x ->
        Table.add_row t
          (cell ~decimals:1 x
          :: List.concat_map
               (fun f ->
                 [ cell (Formula.h f x); cell (Formula.g f x) ])
               formulas))
      t xs
  in
  let verdicts =
    List.map
      (fun f ->
        let g_c = Convexity.classify (Formula.g f) ~lo:1.5 ~hi:50.0 in
        let h_c = Convexity.classify (Formula.h f) ~lo:1.5 ~hi:50.0 in
        let show = function
          | Convexity.Convex -> "convex"
          | Convexity.Concave -> "concave"
          | Convexity.Neither -> "neither"
        in
        Printf.sprintf "%s: g is %s, f(1/x) is %s" (Formula.name f)
          (show g_c) (show h_c))
      formulas
  in
  [ List.fold_left Table.add_note t verdicts ]

(* ------------------------------------------------------------------ *)
(* Figure 2: convex closure of g for PFTK-standard; r = 1.0026.        *)
(* ------------------------------------------------------------------ *)

let fig2 ?jobs:_ ~quick () =
  (* The paper's Figure 2 places the PFTK-standard convexity kink at
     x = 3.375, i.e. at x = c2^2 with b = 1 acknowledged packet per ACK;
     we reproduce that parameterisation (with b = 2 the same kink sits
     at x = 6.75 and the analysis is unchanged). *)
  let f = Formula.create ~rtt:1.0 ~b:1.0 Formula.Pftk_standard in
  let samples = if quick then 8192 else 65536 in
  let lo = 3.25 and hi = 3.5 in
  let ratio = Convexity.deviation_ratio ~samples (Formula.g f) ~lo ~hi in
  let closure = Convexity.convex_closure ~samples (Formula.g f) ~lo ~hi in
  let t =
    Table.create
      ~title:"Figure 2: g vs its convex closure g** (PFTK-standard)"
      ~header:[ "x"; "g(x)"; "g**(x)"; "g/g**" ]
  in
  let n = 11 in
  let t =
    List.fold_left
      (fun t i ->
        let x = lo +. (float_of_int i *. (hi -. lo) /. float_of_int (n - 1)) in
        let g = Formula.g f x in
        let g2 = Convexity.closure_eval closure x in
        Table.add_row t
          [ cell ~decimals:4 x; cell g; cell g2; cell ~decimals:5 (g /. g2) ])
      t
      (List.init n Fun.id)
  in
  let t =
    Table.add_note t
      (Printf.sprintf "deviation-from-convexity ratio r = %.5f (paper: 1.0026)"
         ratio)
  in
  [ t ]

(* ------------------------------------------------------------------ *)
(* Figures 3 & 4: basic-control numerical experiments.                 *)
(* ------------------------------------------------------------------ *)

let run_basic ~seed ~kind ~l ~p ~cv ~cycles =
  let rng = Prng.create ~seed in
  let process = Loss_process.iid_shifted_exponential rng ~p ~cv in
  let formula = Formula.create ~rtt:1.0 kind in
  let estimator = Loss_interval.of_tfrc ~l in
  Basic_control.simulate ~formula ~estimator ~process ~cycles ()

let fig3 ?(jobs = 1) ~quick () =
  let cycles = if quick then 20_000 else 400_000 in
  let ls = [ 1; 2; 4; 8; 16 ] in
  let ps =
    if quick then [ 0.02; 0.1; 0.2; 0.3; 0.4 ]
    else [ 0.01; 0.02; 0.05; 0.1; 0.15; 0.2; 0.25; 0.3; 0.35; 0.4 ]
  in
  let cv = 1.0 -. (1.0 /. 1000.0) in
  let make kind title =
    (* One parallel task per p-row, not per point: a quick-mode point
       is ~3 ms of work, and at that grain the pool's job handoff
       dominated (a recorded 0.44x "speedup" at 2 jobs). Rows are
       self-contained — each point reseeds from its own coordinates —
       so tables stay byte-identical at any job count. Quick mode's 5
       rows fall under [par_threshold] and run serial by design. *)
    let rows =
      par_map ~jobs
        (fun p ->
          List.map
            (fun l ->
              (run_basic ~seed:(1000 + l) ~kind ~l ~p ~cv ~cycles)
                .Basic_control.normalized)
            ls)
        ps
    in
    let t =
      Table.create ~title
        ~header:("p" :: List.map (fun l -> Printf.sprintf "L=%d" l) ls)
    in
    List.fold_left2
      (fun t p row ->
        Table.add_row t
          (cell ~decimals:2 p :: List.map (cell ~decimals:3) row))
      t ps rows
  in
  [
    make Formula.Sqrt
      "Figure 3 (left): basic control, SQRT — normalized throughput vs p";
    make Formula.Pftk_simplified
      "Figure 3 (right): basic control, PFTK-simplified — normalized \
       throughput vs p";
  ]

let fig4 ?(jobs = 1) ~quick () =
  let cycles = if quick then 20_000 else 400_000 in
  let ls = [ 1; 2; 4; 8; 16 ] in
  let cvs =
    if quick then [ 0.2; 0.5; 0.8; 0.99 ]
    else [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.99 ]
  in
  let make p title =
    let grid = List.concat_map (fun cv -> List.map (fun l -> (cv, l)) ls) cvs in
    let vals =
      par_map ~jobs
        (fun (cv, l) ->
          (run_basic ~seed:(2000 + l) ~kind:Formula.Pftk_simplified ~l ~p ~cv
             ~cycles)
            .Basic_control.normalized)
        grid
    in
    let t =
      Table.create ~title
        ~header:("cv" :: List.map (fun l -> Printf.sprintf "L=%d" l) ls)
    in
    let width = List.length ls in
    let t, _ =
      List.fold_left
        (fun (t, vals) cv ->
          let row, rest = take_drop width vals in
          ( Table.add_row t
              (cell ~decimals:2 cv :: List.map (cell ~decimals:3) row),
            rest ))
        (t, vals) cvs
    in
    t
  in
  [
    make 0.01
      "Figure 4 (top): basic control, PFTK-simplified, p=1/100 — normalized \
       throughput vs cv";
    make 0.1
      "Figure 4 (bottom): basic control, PFTK-simplified, p=1/10 — normalized \
       throughput vs cv";
  ]

(* ------------------------------------------------------------------ *)
(* Shared bottleneck sweep for Figures 5, 7, 8, 9.                     *)
(* ------------------------------------------------------------------ *)

type sweep_point = {
  l : int;
  n : int;
  tfrc_p : float;
  tcp_p : float;
  probe_p : float;
  tfrc_x : float;
  tcp_x : float;
  tfrc_rtt : float;
  tcp_rtt : float;
  tfrc_normalized : float;    (* mean over flows of x / f(p, r) *)
  cov_norm : float;           (* cov[theta, thetahat] * p^2, pooled *)
  tcp_formula_rate : float;   (* f(p', r') *)
}

let sweep_cache : (string, sweep_point list) Hashtbl.t = Hashtbl.create 8

let bottleneck_sweep ?(jobs = 1) ~quick () =
  let key = if quick then "quick" else "full" in
  match Hashtbl.find_opt sweep_cache key with
  | Some pts -> pts
  | None ->
      let ls = if quick then [ 2; 8 ] else [ 2; 4; 8; 16 ] in
      let ns = if quick then [ 4; 24 ] else [ 2; 4; 8; 16; 32; 64; 96 ] in
      let duration = if quick then 80.0 else 400.0 in
      let warmup = if quick then 20.0 else 80.0 in
      (* Each (L, N) point owns its seed and its whole simulation; the
         cache is touched only here on the calling domain. *)
      let pts =
        par_map ~jobs
          (fun (l, n) ->
                let cfg =
                  {
                    Scenario.default_config with
                    seed = 42 + (100 * l) + n;
                    n_tfrc = n;
                    n_tcp = n;
                    with_probe = true;
                    tfrc_l = l;
                    duration;
                    warmup;
                  }
                in
                let r = Result_cache.run cfg in
                let formula =
                  Formula.create ~rtt:(Scenario.base_rtt cfg)
                    cfg.tfrc_formula_kind
                in
                let pairs = Scenario.pooled_pairs r.tfrc in
                let tfrc_p = Scenario.pooled_loss_rate r.tfrc in
                let tfrc_rtt = Scenario.mean_rtt r.tfrc in
                let tfrc_normalized =
                  if tfrc_p <= 0.0 then nan
                  else
                    Scenario.mean_throughput r.tfrc
                    /. Formula.eval
                         (Formula.with_rtt formula ~rtt:tfrc_rtt)
                         tfrc_p
                in
                let cov_norm =
                  if Array.length pairs < 2 then nan
                  else
                    let thetas = Array.map snd pairs in
                    let hats = Array.map fst pairs in
                    Descriptive.covariance thetas hats *. tfrc_p *. tfrc_p
                in
                let tcp_p = Scenario.pooled_loss_rate r.tcp in
                let tcp_rtt = Scenario.mean_rtt r.tcp in
                let tcp_formula_rate =
                  if tcp_p <= 0.0 then nan
                  else
                    Formula.eval (Formula.with_rtt formula ~rtt:tcp_rtt) tcp_p
                in
                {
                  l;
                  n;
                  tfrc_p;
                  tcp_p;
                  probe_p =
                    (match r.probe with
                    | Some m -> m.loss_event_rate
                    | None -> nan);
                  tfrc_x = Scenario.mean_throughput r.tfrc;
                  tcp_x = Scenario.mean_throughput r.tcp;
                  tfrc_rtt;
                  tcp_rtt;
                  tfrc_normalized;
                  cov_norm;
                  tcp_formula_rate;
                })
          (List.concat_map (fun l -> List.map (fun n -> (l, n)) ns) ls)
      in
      Hashtbl.replace sweep_cache key pts;
      pts

let fig5 ?(jobs = 1) ~quick () =
  let pts = bottleneck_sweep ~jobs ~quick () in
  let t1 =
    Table.create
      ~title:
        "Figure 5 (top): TFRC over RED bottleneck — normalized throughput vs p"
      ~header:[ "L"; "N"; "p"; "x/f(p,r)" ]
  in
  let t2 =
    Table.create
      ~title:"Figure 5 (bottom): cov[theta,thetahat] p^2 vs p"
      ~header:[ "L"; "N"; "p"; "cov*p^2" ]
  in
  let t1, t2 =
    List.fold_left
      (fun (t1, t2) pt ->
        ( Table.add_row t1
            [
              string_of_int pt.l;
              string_of_int pt.n;
              cell ~decimals:5 pt.tfrc_p;
              cell ~decimals:3 pt.tfrc_normalized;
            ],
          Table.add_row t2
            [
              string_of_int pt.l;
              string_of_int pt.n;
              cell ~decimals:5 pt.tfrc_p;
              cell ~decimals:4 pt.cov_norm;
            ] ))
      (t1, t2) pts
  in
  [ t1; t2 ]

let fig7 ?(jobs = 1) ~quick () =
  let pts = bottleneck_sweep ~jobs ~quick () in
  let t =
    Table.create
      ~title:
        "Figure 7: loss-event rates of TFRC (p), TCP (p'), Poisson (p'') vs \
         number of connections"
      ~header:
        [ "L"; "connections"; "p (TFRC)"; "p' (TCP)"; "p'' (Poisson)";
          "p'<=p<=p''" ]
  in
  let t =
    List.fold_left
      (fun t pt ->
        let ordered =
          (not (Float.is_nan pt.probe_p))
          && pt.tcp_p <= pt.tfrc_p *. 1.10
          && pt.tfrc_p <= pt.probe_p *. 1.10
        in
        Table.add_row t
          [
            string_of_int pt.l;
            string_of_int (2 * pt.n);
            cell ~decimals:5 pt.tfrc_p;
            cell ~decimals:5 pt.tcp_p;
            cell ~decimals:5 pt.probe_p;
            (if ordered then "yes" else "no");
          ])
      t pts
  in
  [ t ]

let fig8 ?(jobs = 1) ~quick () =
  let pts = bottleneck_sweep ~jobs ~quick () in
  let t =
    Table.create
      ~title:"Figure 8: TFRC/TCP throughput ratio vs number of connections"
      ~header:[ "L"; "connections"; "x(TFRC)/x(TCP)" ]
  in
  let t =
    List.fold_left
      (fun t pt ->
        Table.add_row t
          [
            string_of_int pt.l;
            string_of_int (2 * pt.n);
            cell ~decimals:3 (pt.tfrc_x /. pt.tcp_x);
          ])
      t pts
  in
  [ t ]

let fig9 ?(jobs = 1) ~quick () =
  let pts = bottleneck_sweep ~jobs ~quick () in
  let t =
    Table.create
      ~title:
        "Figure 9: TCP throughput vs PFTK-standard prediction f(p', r')"
      ~header:[ "L"; "N"; "f(p',r') pkt/s"; "measured x' pkt/s"; "x'/f" ]
  in
  let t =
    List.fold_left
      (fun t pt ->
        Table.add_row t
          [
            string_of_int pt.l;
            string_of_int pt.n;
            cell ~decimals:1 pt.tcp_formula_rate;
            cell ~decimals:1 pt.tcp_x;
            cell ~decimals:3 (pt.tcp_x /. pt.tcp_formula_rate);
          ])
      t pts
  in
  [ t ]

(* ------------------------------------------------------------------ *)
(* Figure 6: the Claim-2 audio experiments.                            *)
(* ------------------------------------------------------------------ *)

let fig6 ?(jobs = 1) ~quick () =
  let drop_ps =
    if quick then [ 0.02; 0.1; 0.2 ]
    else [ 0.01; 0.02; 0.05; 0.1; 0.15; 0.2; 0.25 ]
  in
  let kinds = Formula.all_paper_kinds in
  let duration = if quick then 600.0 else 4000.0 in
  let t1 =
    Table.create
      ~title:
        "Figure 6 (top): audio source over Bernoulli dropper — normalized \
         throughput vs p (L=4, basic control)"
      ~header:("p (drop prob)" :: List.map (fun k ->
          Formula.name (Formula.create k)) kinds)
  in
  let t2 =
    Table.create
      ~title:"Figure 6 (bottom): squared CV of thetahat vs p"
      ~header:("p (drop prob)" :: List.map (fun k ->
          Formula.name (Formula.create k)) kinds)
  in
  let flat =
    par_map ~jobs
      (fun (p, kind) ->
        Audio_scenario.run
          {
            Audio_scenario.default_config with
            drop_p = p;
            formula_kind = kind;
            duration;
            warmup = duration /. 10.0;
          })
      (List.concat_map (fun p -> List.map (fun k -> (p, k)) kinds) drop_ps)
  in
  let results =
    let width = List.length kinds in
    fst
      (List.fold_left
         (fun (acc, flat) p ->
           let rs, rest = take_drop width flat in
           (acc @ [ (p, rs) ], rest))
         ([], flat) drop_ps)
  in
  let t1 =
    List.fold_left
      (fun t (p, rs) ->
        Table.add_row t
          (cell ~decimals:2 p
          :: List.map
               (fun (r : Audio_scenario.result) ->
                 cell ~decimals:3 r.normalized_throughput)
               rs))
      t1 results
  in
  let t2 =
    List.fold_left
      (fun t (p, rs) ->
        Table.add_row t
          (cell ~decimals:2 p
          :: List.map
               (fun (r : Audio_scenario.result) ->
                 cell ~decimals:4 r.cv2_thetahat)
               rs))
      t2 results
  in
  [ t1; t2 ]

(* ------------------------------------------------------------------ *)
(* Figures 10-16, 18, 19: path-profile experiments.                    *)
(* ------------------------------------------------------------------ *)

type path_point = {
  pn : int;
  ebrc_p : float;
  breakdown : Breakdown.t;
  path_cov_norm : float;
}

let path_cache : (string, path_point list) Hashtbl.t = Hashtbl.create 16

let run_profile ?(jobs = 1) ~quick (profile : Paths.profile) =
  let key = profile.Paths.name ^ if quick then ":q" else ":f" in
  match Hashtbl.find_opt path_cache key with
  | Some pts -> pts
  | None ->
      let duration = if quick then 80.0 else 400.0 in
      let warmup = if quick then 20.0 else 80.0 in
      let n_grid =
        if quick then
          match profile.Paths.n_grid with
          | a :: _ :: b :: _ -> [ a; b ]
          | l -> l
        else profile.Paths.n_grid
      in
      let point n =
            let cfg = Paths.to_config ~duration ~warmup profile ~n in
            let r = Result_cache.run cfg in
            let tfrc_p = Scenario.pooled_loss_rate r.tfrc in
            let tcp_p = Scenario.pooled_loss_rate r.tcp in
            if tfrc_p <= 0.0 || tcp_p <= 0.0 then None
            else begin
              let formula =
                Formula.create ~rtt:(Scenario.base_rtt cfg)
                  cfg.Scenario.tfrc_formula_kind
              in
              let b =
                Breakdown.create
                  ~ebrc:
                    {
                      Breakdown.throughput = Scenario.mean_throughput r.tfrc;
                      p = tfrc_p;
                      rtt = Scenario.mean_rtt r.tfrc;
                    }
                  ~tcp:
                    {
                      Breakdown.throughput = Scenario.mean_throughput r.tcp;
                      p = tcp_p;
                      rtt = Scenario.mean_rtt r.tcp;
                    }
                  ~formula
              in
              let pairs = Scenario.pooled_pairs r.tfrc in
              let cov_norm =
                if Array.length pairs < 2 then nan
                else
                  Descriptive.covariance (Array.map snd pairs)
                    (Array.map fst pairs)
                  *. tfrc_p *. tfrc_p
              in
              Some
                { pn = n; ebrc_p = tfrc_p; breakdown = b;
                  path_cov_norm = cov_norm }
            end
      in
      let pts = List.filter_map Fun.id (par_map ~jobs point n_grid) in
      Hashtbl.replace path_cache key pts;
      pts

let fig10 ?(jobs = 1) ~quick () =
  (* Lab, Internet and the cable-modem receiver — the paper's three
     panels of Figure 10. *)
  let profiles =
    Paths.lab_profiles ~pkt:1000 @ Paths.internet_profiles
    @ [ Paths.cable_modem ]
  in
  let t =
    Table.create
      ~title:
        "Figure 10: normalized covariance cov[theta,thetahat] p^2 per path"
      ~header:[ "path"; "N"; "cov*p^2" ]
  in
  let t =
    List.fold_left
      (fun t profile ->
        let pts = run_profile ~jobs ~quick profile in
        List.fold_left
          (fun t pt ->
            Table.add_row t
              [
                profile.Paths.name;
                string_of_int pt.pn;
                cell ~decimals:4 pt.path_cov_norm;
              ])
          t pts)
      t profiles
  in
  [ Table.add_note t "paper: mostly near zero; noticeably negative for UMELB \
                      (batch losses)" ]

let breakdown_table ~title pts =
  let t =
    Table.create ~title
      ~header:
        [ "N"; "p"; "x/f(p,r)"; "p'/p"; "r'/r"; "x'/f(p',r')"; "x/x'" ]
  in
  List.fold_left
    (fun t pt ->
      let b = pt.breakdown in
      Table.add_row t
        [
          string_of_int pt.pn;
          cell ~decimals:5 pt.ebrc_p;
          cell ~decimals:3 (Breakdown.conservativeness_ratio b);
          cell ~decimals:3 (Breakdown.loss_rate_ratio b);
          cell ~decimals:3 (Breakdown.rtt_ratio b);
          cell ~decimals:3 (Breakdown.tcp_obedience_ratio b);
          cell ~decimals:3 (Breakdown.friendliness_ratio b);
        ])
    t pts

let fig_profile_breakdown ~jobs ~quick ~fig_id profile =
  let pts = run_profile ~jobs ~quick profile in
  [
    breakdown_table
      ~title:
        (Printf.sprintf
           "Figure %d: %s — TCP-friendliness breakdown (x/f, p'/p, r'/r, \
            x'/f(p',r'))"
           fig_id profile.Paths.name)
      pts;
  ]

let fig11 ?(jobs = 1) ~quick () =
  let t =
    Table.create
      ~title:"Figure 11: Internet paths — TFRC/TCP throughput ratio vs p"
      ~header:[ "path"; "N"; "x/x'" ]
  in
  let t =
    List.fold_left
      (fun t profile ->
        let pts = run_profile ~jobs ~quick profile in
        List.fold_left
          (fun t pt ->
            Table.add_row t
              [
                profile.Paths.name;
                string_of_int pt.pn;
                cell ~decimals:3 (Breakdown.friendliness_ratio pt.breakdown);
              ])
          t pts)
      t Paths.internet_profiles
  in
  [ t ]

let fig12 ?(jobs = 1) ~quick () =
  fig_profile_breakdown ~jobs ~quick ~fig_id:12 Paths.inria

let fig13 ?(jobs = 1) ~quick () =
  fig_profile_breakdown ~jobs ~quick ~fig_id:13 Paths.kth

let fig14 ?(jobs = 1) ~quick () =
  fig_profile_breakdown ~jobs ~quick ~fig_id:14 Paths.umass

let fig15 ?(jobs = 1) ~quick () =
  fig_profile_breakdown ~jobs ~quick ~fig_id:15 Paths.umelb

let fig16 ?(jobs = 1) ~quick () =
  let profiles = [ Paths.lab_droptail ~capacity:100; Paths.lab_red ~pkt:1000 ] in
  let t =
    Table.create
      ~title:"Figure 16: lab — TFRC/TCP throughput ratio vs p"
      ~header:[ "queue"; "N"; "x/x'" ]
  in
  let t =
    List.fold_left
      (fun t profile ->
        let pts = run_profile ~jobs ~quick profile in
        List.fold_left
          (fun t pt ->
            Table.add_row t
              [
                profile.Paths.name;
                string_of_int pt.pn;
                cell ~decimals:3 (Breakdown.friendliness_ratio pt.breakdown);
              ])
          t pts)
      t profiles
  in
  [ t ]

let fig18 ?(jobs = 1) ~quick () =
  fig_profile_breakdown ~jobs ~quick ~fig_id:18
    (Paths.lab_droptail ~capacity:100)

let fig19 ?(jobs = 1) ~quick () =
  fig_profile_breakdown ~jobs ~quick ~fig_id:19 (Paths.lab_red ~pkt:1000)

(* ------------------------------------------------------------------ *)
(* Figure 17 + Claim 4: loss-event-rate ratio over a DropTail link.    *)
(* ------------------------------------------------------------------ *)

let fig17 ?(jobs = 1) ~quick () =
  let buffers = if quick then [ 25; 100 ] else [ 10; 25; 50; 100; 200; 300 ] in
  let duration = if quick then 120.0 else 600.0 in
  let warmup = duration /. 5.0 in
  let isolated_run ~buffer ~tfrc =
    let cfg =
      {
        Scenario.default_config with
        seed = 4242 + buffer + if tfrc then 1 else 0;
        bottleneck_bps = 10e6;
        queue = Scenario.Drop_tail { capacity = buffer };
        n_tfrc = (if tfrc then 1 else 0);
        n_tcp = (if tfrc then 0 else 1);
        with_probe = false;
        duration;
        warmup;
      }
    in
    let r = Result_cache.run cfg in
    if tfrc then Scenario.mean_loss_rate r.tfrc
    else Scenario.mean_loss_rate r.tcp
  in
  let t1 =
    Table.create
      ~title:"Figure 17 (left): p'/p, TCP and TFRC each alone on DropTail(b)"
      ~header:[ "b (packets)"; "p' (TCP alone)"; "p (TFRC alone)"; "p'/p" ]
  in
  let isolated =
    par_map ~jobs
      (fun (b, tfrc) -> isolated_run ~buffer:b ~tfrc)
      (List.concat_map (fun b -> [ (b, false); (b, true) ]) buffers)
  in
  let t1, _ =
    List.fold_left
      (fun (t, vals) b ->
        match vals with
        | p' :: p :: rest ->
            ( Table.add_row t
                [
                  string_of_int b;
                  cell ~decimals:5 p';
                  cell ~decimals:5 p;
                  cell ~decimals:3 (if p > 0.0 then p' /. p else nan);
                ],
              rest )
        | _ -> assert false)
      (t1, isolated) buffers
  in
  let t2 =
    Table.create
      ~title:
        "Figure 17 (right): p'/p, one TCP and one TFRC competing on \
         DropTail(b)"
      ~header:[ "b (packets)"; "p' (TCP)"; "p (TFRC)"; "p'/p" ]
  in
  let competing =
    par_map ~jobs
      (fun b ->
        let cfg =
          {
            Scenario.default_config with
            seed = 777 + b;
            bottleneck_bps = 10e6;
            queue = Scenario.Drop_tail { capacity = b };
            n_tfrc = 1;
            n_tcp = 1;
            with_probe = false;
            duration;
            warmup;
          }
        in
        let r = Result_cache.run cfg in
        (Scenario.mean_loss_rate r.tcp, Scenario.mean_loss_rate r.tfrc))
      buffers
  in
  let t2 =
    List.fold_left2
      (fun t b (p', p) ->
        Table.add_row t
          [
            string_of_int b;
            cell ~decimals:5 p';
            cell ~decimals:5 p;
            cell ~decimals:3 (if p > 0.0 then p' /. p else nan);
          ])
      t2 buffers competing
  in
  [ t1; t2 ]

let table_c4 ?jobs:_ ~quick:_ () =
  let t =
    Table.create
      ~title:
        "Claim 4 closed form: p'/p = 4/(1+beta)^2 (analytic vs deterministic \
         simulation; the paper prints (1-beta) but its 16/9 value confirms \
         (1+beta))"
      ~header:
        [ "beta"; "p' (AIMD)"; "p (EBRC)"; "ratio analytic"; "ratio simulated" ]
  in
  let t =
    List.fold_left
      (fun t beta ->
        let params = { Few_flows.alpha = 1.0; beta; capacity = 100.0 } in
        let p' = Few_flows.aimd_loss_event_rate params in
        let p = Few_flows.ebrc_loss_event_rate params in
        let sim_ratio =
          Few_flows.simulate_aimd ~cycles:500 params
          /. Few_flows.simulate_ebrc ~cycles:500 params
        in
        Table.add_row t
          [
            cell ~decimals:2 beta;
            cell p';
            cell p;
            cell ~decimals:4 (Few_flows.loss_rate_ratio ~beta);
            cell ~decimals:4 sim_ratio;
          ])
      t [ 0.125; 0.25; 0.5; 0.75 ]
  in
  [ Table.add_note t "beta = 1/2 gives 16/9 = 1.7778, the paper's headline" ]

let table_one ?jobs:_ ~quick:_ () = [ Paths.table_one () ]

(* Claim 3 analytic check: the many-sources limit ordering. *)
let table_c3 ?(jobs = 1) ~quick () =
  let cp =
    [|
      { Many_sources.p_i = 0.001; pi_i = 0.5 };
      { Many_sources.p_i = 0.01; pi_i = 0.3 };
      { Many_sources.p_i = 0.05; pi_i = 0.2 };
    |]
  in
  let formula = Formula.create ~rtt:0.05 Formula.Pftk_standard in
  let formula_rate p = Formula.eval formula p in
  let p'' =
    Many_sources.limit_loss_event_rate cp ~rates:(Many_sources.poisson_profile cp)
  in
  let p' =
    Many_sources.limit_loss_event_rate cp
      ~rates:(Many_sources.responsive_profile cp ~formula_rate)
  in
  let t =
    Table.create
      ~title:
        "Claim 3: many-sources limit — loss-event rate vs responsiveness \
         (Eq. 13)"
      ~header:
        [ "responsiveness"; "p (limit)"; "p (Monte-Carlo)"; "within bounds" ]
  in
  let steps = if quick then 20_000 else 200_000 in
  let resps = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let rows =
    par_map ~jobs
      (fun resp ->
        let rates =
          Many_sources.partially_responsive_profile cp ~formula_rate
            ~responsiveness:resp
        in
        let p_lim = Many_sources.limit_loss_event_rate cp ~rates in
        let rng = Prng.create ~seed:(int_of_float (resp *. 1000.0)) in
        let mc =
          Many_sources.monte_carlo rng cp ~rates ~mean_sojourn:100.0 ~steps
        in
        (resp, p_lim, mc.Many_sources.observed_p))
      resps
  in
  let t =
    List.fold_left
      (fun t (resp, p_lim, mc_p) ->
        let ok = p' <= p_lim +. 1e-12 && p_lim <= p'' +. 1e-12 in
        Table.add_row t
          [
            cell ~decimals:2 resp;
            cell ~decimals:5 p_lim;
            cell ~decimals:5 mc_p;
            (if ok then "yes" else "no");
          ])
      t rows
  in
  [
    Table.add_note t
      (Printf.sprintf "p' (TCP-like) = %.5f <= p <= p'' (Poisson) = %.5f" p' p'');
  ]

(* ------------------------------------------------------------------ *)
(* Ablations: design-choice experiments beyond the paper's figures.    *)
(* ------------------------------------------------------------------ *)

(* A1: TFRC weights vs uniform weights in the basic control. The
   decaying TFRC weights concentrate mass on recent intervals (higher
   estimator variability than uniform at equal L), so Claim 1 predicts
   the TFRC weighting to be slightly more conservative. *)
let ablation_weights ?(jobs = 1) ~quick () =
  let cycles = if quick then 30_000 else 300_000 in
  let t =
    Table.create
      ~title:
        "Ablation A1: estimator weights (TFRC decaying vs uniform) — basic \
         control, PFTK-simplified, p = 0.1, cv = 0.9"
      ~header:[ "L"; "x/f(p) TFRC weights"; "x/f(p) uniform weights" ]
  in
  let run_with ~weights ~seed =
    let rng = Prng.create ~seed in
    let process = Loss_process.iid_shifted_exponential rng ~p:0.1 ~cv:0.9 in
    let formula = Formula.create ~rtt:1.0 Formula.Pftk_simplified in
    let estimator = Loss_interval.create ~weights in
    (Basic_control.simulate ~formula ~estimator ~process ~cycles ())
      .Basic_control.normalized
  in
  let ls = [ 2; 4; 8; 16 ] in
  let rows =
    par_map ~jobs
      (fun l ->
        ( l,
          run_with ~weights:(Weights.tfrc l) ~seed:(3 + l),
          run_with ~weights:(Weights.uniform l) ~seed:(3 + l) ))
      ls
  in
  let t =
    List.fold_left
      (fun t (l, tfrc_v, uniform_v) ->
        Table.add_row t
          [
            string_of_int l;
            cell ~decimals:3 tfrc_v;
            cell ~decimals:3 uniform_v;
          ])
      t rows
  in
  [
    Table.add_note t
      "uniform weights smooth more at equal L, so they are slightly less \
       conservative (Claim 1, second bullet)";
  ]

(* A2: Eq. (12) -> Eq. (13) convergence as the congestion-process
   timescale separates from the control timescale. *)
let ablation_eq12 ?jobs:_ ~quick:_ () =
  let cp =
    [|
      { Many_sources.p_i = 0.001; pi_i = 0.5 };
      { Many_sources.p_i = 0.01; pi_i = 0.3 };
      { Many_sources.p_i = 0.05; pi_i = 0.2 };
    |]
  in
  let formula = Formula.create ~rtt:0.05 Formula.Pftk_standard in
  let rates =
    Many_sources.responsive_profile cp ~formula_rate:(fun p ->
        Formula.eval formula p)
  in
  let limit = Many_sources.limit_loss_event_rate cp ~rates in
  let t =
    Table.create
      ~title:
        "Ablation A2: Eq. (12) with finite sojourns -> Eq. (13) limit (b_i \
         -> 1)"
      ~header:[ "mean sojourn"; "p (Eq. 12)"; "p (Eq. 13 limit)"; "rel. gap" ]
  in
  let t =
    List.fold_left
      (fun t sojourn ->
        let p12 =
          Many_sources.finite_timescale_loss_event_rate cp ~rates
            ~mean_sojourn:sojourn
        in
        Table.add_row t
          [
            cell ~decimals:0 sojourn;
            cell ~decimals:6 p12;
            cell ~decimals:6 limit;
            cell ~decimals:4 (abs_float (p12 -. limit) /. limit);
          ])
      t
      [ 1.0; 10.0; 100.0; 1000.0; 10000.0 ]
  in
  [ t ]

(* A3: Claim-2 audio source over a packet-mode vs byte-mode dropper.
   Byte mode penalises long packets, creating the negative rate/duration
   correlation that restores conservativeness under PFTK heavy loss. *)
let ablation_dropper_mode ?(jobs = 1) ~quick () =
  let duration = if quick then 800.0 else 4000.0 in
  let t =
    Table.create
      ~title:
        "Ablation A3: audio source, packet-mode vs byte-mode dropper \
         (PFTK-simplified, heavy loss)"
      ~header:[ "drop p"; "x/f(p) packet mode"; "x/f(p) byte mode" ]
  in
  let run mode p =
    (Audio_scenario.run
       {
         Audio_scenario.default_config with
         drop_p = p;
         formula_kind = Formula.Pftk_simplified;
         duration;
         warmup = duration /. 10.0;
         dropper_mode = mode;
       })
      .Audio_scenario.normalized_throughput
  in
  let ps = [ 0.1; 0.2 ] in
  let rows =
    par_map ~jobs
      (fun p ->
        (p, run Audio_scenario.Packet_mode p, run Audio_scenario.Byte_mode p))
      ps
  in
  let t =
    List.fold_left
      (fun t (p, packet_v, byte_v) ->
        Table.add_row t
          [
            cell ~decimals:2 p;
            cell ~decimals:3 packet_v;
            cell ~decimals:3 byte_v;
          ])
      t rows
  in
  [
    Table.add_note t
      "packet mode: cov[X,S] = 0 and the Theorem-2 overshoot stays within a \
       few percent. Byte mode makes the per-packet loss probability depend \
       on the control itself (bigger packets dropped more): the loss-event \
       rate is no longer exogenous and the control oscillates into large \
       overshoot of f(p). Claim 2's packet-mode assumption is essential, \
       not cosmetic.";
  ]

(* A4: the paper's undisplayed competition experiment — one AIMD and
   one EBRC sharing a fluid link. *)
let ablation_competition ?jobs:_ ~quick () =
  let cycles = if quick then 500 else 5000 in
  let t =
    Table.create
      ~title:
        "Ablation A4: one AIMD + one EBRC sharing a fluid link — p'/p vs the \
         isolated closed form"
      ~header:
        [ "beta"; "p'/p isolated (analytic)"; "p'/p competing (simulated)";
          "AIMD traffic share" ]
  in
  let t =
    List.fold_left
      (fun t beta ->
        let params = { Few_flows.alpha = 1.0; beta; capacity = 100.0 } in
        let r = Few_flows.simulate_competition ~cycles params in
        Table.add_row t
          [
            cell ~decimals:2 beta;
            cell ~decimals:3 (Few_flows.loss_rate_ratio ~beta);
            cell ~decimals:3 r.Few_flows.ratio;
            cell ~decimals:3 r.Few_flows.aimd_share;
          ])
      t [ 0.25; 0.5; 0.75 ]
  in
  [
    Table.add_note t
      "paper: 'the deviation of the loss-event rates does hold, but it is \
       somewhat less pronounced' in competition — both flows see every \
       shared congestion event, so the simulated ratio collapses toward 1";
  ]

(* A5: Figure 3 under the comprehensive control — the variant the paper
   describes as "qualitatively the same, but the effects are less
   pronounced" (its tech-report Figure 4). *)
let ablation_comprehensive_fig3 ?(jobs = 1) ~quick () =
  let cycles = if quick then 15_000 else 150_000 in
  let ls = [ 1; 2; 4; 8; 16 ] in
  let ps = if quick then [ 0.02; 0.1; 0.3 ] else [ 0.01; 0.02; 0.05; 0.1; 0.2; 0.3; 0.4 ] in
  let cv = 1.0 -. (1.0 /. 1000.0) in
  let t =
    Table.create
      ~title:
        "Ablation A5: Figure 3 under the comprehensive control \
         (PFTK-simplified) — less pronounced conservativeness"
      ~header:("p" :: List.map (fun l -> Printf.sprintf "L=%d" l) ls)
  in
  let grid = List.concat_map (fun p -> List.map (fun l -> (p, l)) ls) ps in
  let vals =
    par_map ~jobs
      (fun (p, l) ->
        let rng = Prng.create ~seed:(5000 + l) in
        let process = Loss_process.iid_shifted_exponential rng ~p ~cv in
        let formula = Formula.create ~rtt:1.0 Formula.Pftk_simplified in
        let estimator = Loss_interval.of_tfrc ~l in
        let r =
          Comprehensive_control.simulate ~formula ~estimator ~process ~cycles
            ()
        in
        r.Comprehensive_control.normalized)
      grid
  in
  let width = List.length ls in
  let t, _ =
    List.fold_left
      (fun (t, vals) p ->
        let row, rest = take_drop width vals in
        ( Table.add_row t
            (cell ~decimals:2 p :: List.map (cell ~decimals:3) row),
          rest ))
      (t, vals) ps
  in
  [
    Table.add_note t
      "compare with figure 3 (basic control): same shape, higher values — \
       Proposition 2";
  ]

(* A6: the Section-IV-B conjecture — when TCP's window is large (few
   competing flows), its growth over time is sub-linear, which is why
   TCP can fall short of the PFTK formula. We trace cwnd during
   congestion-avoidance ascents of a single TCP flow over a DropTail
   bottleneck and report the second-half/first-half slope ratio of the
   longest ascent (1 = linear, < 1 = concave/sub-linear). *)
let ablation_window_growth ?(jobs = 1) ~quick () =
  let module Engine = Ebrc_sim.Engine in
  let module Link = Ebrc_net.Link in
  let module QD = Ebrc_net.Queue_discipline in
  let module TS = Ebrc_tcp.Tcp_sender in
  let module TR = Ebrc_tcp.Tcp_receiver in
  let module Trace = Ebrc_sim.Trace in
  let duration = if quick then 120.0 else 600.0 in
  let run ~buffer =
    let engine = Engine.create () in
    let rng = Prng.create ~seed:31 in
    let queue = QD.create ~service_rate:1250.0 ~capacity:buffer QD.Drop_tail in
    let link =
      Link.create ~engine ~rate_bps:10e6 ~delay:0.025 ~queue ~rng
    in
    let sender = TS.create ~engine ~flow:0 () in
    let receiver = TR.create ~engine ~flow:0 () in
    TS.set_transmit sender (fun pkt -> Link.send link pkt);
    Link.set_deliver link (fun pkt ->
        TR.on_data receiver pkt;
        Ebrc_net.Packet.release pkt);
    TR.set_ack_sink receiver (fun ~acked ~dup ~echo ->
        ignore
          (Engine.schedule_after engine ~delay:0.025 (fun () ->
               TS.on_ack sender ~acked ~dup ~echo)));
    (* Segment cwnd ascents by loss events; keep the longest. *)
    let current = ref (Trace.create ()) in
    let best = ref (Trace.create ()) in
    let last_events = ref 0 in
    TS.set_rate_sample_hook sender (fun w ->
        let ev = TS.loss_events sender in
        if ev <> !last_events then begin
          last_events := ev;
          if Trace.length !current > Trace.length !best then
            best := !current;
          current := Trace.create ()
        end;
        if TS.phase sender = TS.Congestion_avoidance then
          Trace.record !current ~time:(Engine.now engine) ~value:w);
    ignore (Engine.schedule engine ~at:0.0 (fun () -> TS.start sender));
    ignore (Engine.run ~until:duration engine);
    if Trace.length !current > Trace.length !best then best := !current;
    (TS.loss_events sender, Trace.length !best,
     Trace.growth_linearity !best)
  in
  let t =
    Table.create
      ~title:
        "Ablation A6: TCP congestion-avoidance window growth linearity \
         (Section IV-B conjecture)"
      ~header:
        [ "DropTail buffer"; "loss events"; "ascent samples";
          "slope ratio (2nd/1st half)" ]
  in
  let buffers = if quick then [ 50; 200 ] else [ 25; 50; 100; 200; 400 ] in
  let rows = par_map ~jobs (fun buffer -> run ~buffer) buffers in
  let t =
    List.fold_left2
      (fun t buffer (events, samples, ratio) ->
        Table.add_row t
          [
            string_of_int buffer;
            string_of_int events;
            string_of_int samples;
            cell ~decimals:3 ratio;
          ])
      t buffers rows
  in
  [
    Table.add_note t
      "ratio < 1 = sub-linear growth at large windows (self-induced queueing \
       delay stretches the RTT), the paper's explanation for TCP falling \
       short of the PFTK formula";
  ]

(* A7: autocovariance structure of the measured loss-event intervals —
   the [Zhang et al.] evidence behind condition (C1): lag-k
   autocorrelations of TFRC's loss intervals on a shared bottleneck are
   small. *)
let ablation_autocovariance ?jobs:_ ~quick () =
  let duration = if quick then 120.0 else 600.0 in
  let cfg =
    {
      Scenario.default_config with
      seed = 88;
      n_tfrc = 4;
      n_tcp = 4;
      duration;
      warmup = duration /. 5.0;
    }
  in
  let r = Result_cache.run cfg in
  let t =
    Table.create
      ~title:
        "Ablation A7: lag-k autocorrelation of TFRC loss-event intervals \
         (the [18] evidence for (C1))"
      ~header:[ "flow"; "intervals"; "lag 1"; "lag 2"; "lag 4"; "lag 8" ]
  in
  let t =
    Array.fold_left
      (fun t (m : Scenario.flow_measure) ->
        let ivs = m.loss_intervals in
        if Array.length ivs < 20 then t
        else
          Table.add_row t
            (string_of_int m.flow
            :: string_of_int (Array.length ivs)
            :: List.map
                 (fun lag ->
                   cell ~decimals:3 (Descriptive.autocorrelation ivs ~lag))
                 [ 1; 2; 4; 8 ]))
      t r.tfrc
  in
  [
    Table.add_note t
      "small autocorrelations mean the moving-average estimator is a poor \
       predictor of the next interval — condition (C1) — and Theorem 1 \
       yields conservativeness";
  ]

(* A8: exact quadrature vs Monte Carlo for the iid Prop-1 collapse —
   validates both engines against each other. *)
let ablation_exact_vs_mc ?(jobs = 1) ~quick () =
  let cycles = if quick then 100_000 else 1_000_000 in
  let formula = Formula.create ~rtt:1.0 Formula.Pftk_simplified in
  let t =
    Table.create
      ~title:
        "Ablation A8: exact Erlang quadrature vs Monte Carlo (basic control, \
         uniform weights, PFTK-simplified, p = 0.1, cv = 0.9)"
      ~header:[ "L"; "x/f(p) exact"; "x/f(p) Monte Carlo"; "rel. error" ]
  in
  let ls = [ 1; 2; 4; 8; 16 ] in
  let rows =
    par_map ~jobs
      (fun l ->
        let exact =
          Ebrc_control.Exact.normalized_throughput ~formula ~l ~p:0.1 ~cv:0.9
        in
        let rng = Prng.create ~seed:770 in
        let process = Loss_process.iid_shifted_exponential rng ~p:0.1 ~cv:0.9 in
        let estimator =
          Loss_interval.create ~weights:(Ebrc_estimator.Weights.uniform l)
        in
        let mc =
          (Basic_control.simulate ~formula ~estimator ~process ~cycles ())
            .Basic_control.normalized
        in
        (l, exact, mc))
      ls
  in
  let t =
    List.fold_left
      (fun t (l, exact, mc) ->
        Table.add_row t
          [
            string_of_int l;
            cell ~decimals:4 exact;
            cell ~decimals:4 mc;
            cell ~decimals:4 (abs_float (mc -. exact) /. exact);
          ])
      t rows
  in
  [ t ]

(* A9: the two-router chain — where do losses happen and does the
   TFRC/TCP comparison survive a second congestion point? *)
let ablation_chain ?jobs:_ ~quick () =
  let duration = if quick then 60.0 else 300.0 in
  let t =
    Table.create
      ~title:
        "Ablation A9: two-router chain — single vs dual bottleneck (+30% \
         cross traffic on link 2)"
      ~header:
        [ "setup"; "drops L1"; "drops L2"; "TFRC x (pkt/s)"; "TCP x (pkt/s)";
          "p (TFRC)"; "p' (TCP)" ]
  in
  let run name cfg =
    let r = Chain_scenario.run cfg in
    [
      name;
      string_of_int r.Chain_scenario.drops_link1;
      string_of_int r.drops_link2;
      cell ~decimals:1 r.tfrc.throughput_pps;
      cell ~decimals:1 r.tcp.throughput_pps;
      cell ~decimals:5 r.tfrc.loss_event_rate;
      cell ~decimals:5 r.tcp.loss_event_rate;
    ]
  in
  let base =
    { Chain_scenario.default_config with duration; warmup = duration /. 4.0 }
  in
  let t =
    Table.add_row t
      (run "single bottleneck (fast L2)"
         { base with link2_bps = 100e6; cross_rate_fraction = 0.0 })
  in
  let t = Table.add_row t (run "dual bottleneck + cross" base) in
  [
    Table.add_note t
      "the paper's lab used the second router purely as a delay element \
       (the first row); the second row shows the loss process becoming a \
       superposition of two congestion points";
  ]

(* A10: TCP variant sensitivity — does the Reno/Tahoe recovery style
   change the loss-event rates and formula obedience that drive the
   paper's sub-conditions 2 and 4? *)
let ablation_tcp_variant ?(jobs = 1) ~quick () =
  let module Engine = Ebrc_sim.Engine in
  let module Link = Ebrc_net.Link in
  let module QD = Ebrc_net.Queue_discipline in
  let module TS = Ebrc_tcp.Tcp_sender in
  let module TR = Ebrc_tcp.Tcp_receiver in
  let duration = if quick then 120.0 else 600.0 in
  let run ~variant =
    let engine = Engine.create () in
    let rng = Prng.create ~seed:7 in
    let queue = QD.create ~service_rate:1250.0 ~capacity:60 QD.Drop_tail in
    let link = Link.create ~engine ~rate_bps:10e6 ~delay:0.025 ~queue ~rng in
    let sender = TS.create ~variant ~engine ~flow:0 () in
    let receiver = TR.create ~engine ~flow:0 () in
    TS.set_transmit sender (fun pkt -> Link.send link pkt);
    Link.set_deliver link (fun pkt ->
        TR.on_data receiver pkt;
        Ebrc_net.Packet.release pkt);
    TR.set_ack_sink receiver (fun ~acked ~dup ~echo ->
        ignore
          (Engine.schedule_after engine ~delay:0.025 (fun () ->
               TS.on_ack sender ~acked ~dup ~echo)));
    ignore (Engine.schedule engine ~at:0.0 (fun () -> TS.start sender));
    ignore (Engine.run ~until:duration engine);
    let p = TS.loss_event_rate sender in
    let x = float_of_int (TR.received receiver) /. duration in
    let rtt = TS.mean_rtt sender in
    let f =
      if p > 0.0 then
        Formula.eval (Formula.create ~rtt Formula.Pftk_standard) p
      else nan
    in
    (p, x, x /. f, TS.timeouts sender, TS.fast_retransmits sender)
  in
  let t =
    Table.create
      ~title:
        "Ablation A10: TCP recovery variant alone on a DropTail bottleneck \
         — loss-event rate and formula obedience"
      ~header:
        [ "variant"; "p'"; "x' (pkt/s)"; "x'/f(p',r')"; "timeouts";
          "fast rtx" ]
  in
  let variants = [ ("Reno/NewReno", TS.Reno); ("Tahoe", TS.Tahoe) ] in
  let rows =
    par_map ~jobs (fun (name, variant) -> (name, run ~variant)) variants
  in
  let t =
    List.fold_left
      (fun t (name, (p, x, obed, timeouts, frtx)) ->
        Table.add_row t
          [
            name;
            cell ~decimals:5 p;
            cell ~decimals:1 x;
            cell ~decimals:3 obed;
            string_of_int timeouts;
            string_of_int frtx;
          ])
      t rows
  in
  [
    Table.add_note t
      "the PFTK formula models Reno; Tahoe's slow-start restarts change \
       both p' and the obedience ratio — sub-conditions 2 and 4 are \
       implementation-sensitive, reinforcing the paper's warning";
  ]

(* A11: the paper's "further study" direction — conservativeness as a
   design objective. The advisor picks the smallest estimator window
   meeting a worst-case efficiency target over an operating region. *)
let ablation_design_advisor ?jobs:_ ~quick:_ () =
  let module Dz = Ebrc_analysis.Design in
  let formula = Formula.create ~rtt:0.1 Formula.Pftk_standard in
  let t =
    Table.create
      ~title:
        "Ablation A11: design advisor — smallest window L meeting a \
         worst-case efficiency target (PFTK-standard, p in {0.01..0.2}, \
         cv = 0.9)"
      ~header:[ "target x/f(p)"; "recommended L"; "achieved worst case" ]
  in
  let t =
    List.fold_left
      (fun t target ->
        match Dz.recommend_window ~formula ~target () with
        | Some r ->
            Table.add_row t
              [
                cell ~decimals:2 target;
                string_of_int r.Dz.l;
                cell ~decimals:3 r.Dz.efficiency;
              ]
        | None ->
            Table.add_row t
              [ cell ~decimals:2 target; "unreachable (l_max)"; "-" ])
      t
      [ 0.5; 0.7; 0.8; 0.9; 0.95 ]
  in
  [
    Table.add_note t
      "the conclusion's design alternative, implemented: pick L for a \
       provable conservativeness/efficiency trade-off instead of tuning \
       for TCP-friendliness";
  ]

(* A12: sub-condition 3 under heterogeneous RTTs — the paper only
   observed the r'/r comparison empirically; here we sweep the per-flow
   reverse-delay spread and watch how the RTT ratio and the headline
   friendliness ratio move. *)
let ablation_rtt_heterogeneity ?(jobs = 1) ~quick () =
  let duration = if quick then 80.0 else 400.0 in
  let t =
    Table.create
      ~title:
        "Ablation A12: per-flow RTT heterogeneity - r'/r and the \
         friendliness ratio vs reverse-delay spread"
      ~header:
        [ "jitter"; "rtt TFRC (ms)"; "rtt TCP (ms)"; "r'/r"; "x/x'" ]
  in
  let jitters = if quick then [ 0.0; 0.3 ] else [ 0.0; 0.1; 0.3; 0.6 ] in
  let rows =
    par_map ~jobs
      (fun jitter ->
        let cfg =
          {
            Scenario.default_config with
            seed = 61;
            n_tfrc = 4;
            n_tcp = 4;
            with_probe = false;
            reverse_jitter = jitter;
            duration;
            warmup = duration /. 4.0;
          }
        in
        let r = Result_cache.run cfg in
        ( jitter,
          Scenario.mean_rtt r.tfrc,
          Scenario.mean_rtt r.tcp,
          Scenario.mean_throughput r.tfrc /. Scenario.mean_throughput r.tcp ))
      jitters
  in
  let t =
    List.fold_left
      (fun t (jitter, rtt_tfrc, rtt_tcp, ratio) ->
        Table.add_row t
          [
            cell ~decimals:2 jitter;
            cell ~decimals:1 (1000.0 *. rtt_tfrc);
            cell ~decimals:1 (1000.0 *. rtt_tcp);
            cell ~decimals:3 (rtt_tcp /. rtt_tfrc);
            cell ~decimals:3 ratio;
          ])
      t rows
  in
  [
    Table.add_note t
      "the paper observed RTT deviations but found them not to dominate \
       friendliness; the spread here perturbs r'/r by a few percent while \
       the throughput ratio moves much less than the loss-rate effects of \
       F12-F15";
  ]

(* A13: loss-process family sensitivity — the same basic control and
   operating point driven by different interval laws; the covariance
   column explains each outcome through Theorem 1 / Claim 1. *)
let ablation_loss_families ?(jobs = 1) ~quick () =
  let cycles = if quick then 50_000 else 400_000 in
  let formula = Formula.create ~rtt:1.0 Formula.Pftk_simplified in
  let p = 0.05 in
  let processes =
    [
      ("iid shifted-exp cv=0.9",
       fun seed ->
         Loss_process.iid_shifted_exponential (Prng.create ~seed) ~p ~cv:0.9);
      ("iid exponential",
       fun seed -> Loss_process.iid_exponential (Prng.create ~seed) ~p);
      ("iid pareto shape=2.2",
       fun seed -> Loss_process.iid_pareto (Prng.create ~seed) ~p ~shape:2.2);
      ("gilbert 5/35 run=15",
       fun seed ->
         Loss_process.gilbert (Prng.create ~seed) ~mean_short:5.0
           ~mean_long:35.0 ~run_length:15.0);
      ("batch bp=0.3 bs=3",
       fun seed ->
         Loss_process.batch (Prng.create ~seed) ~p ~batch_p:0.3 ~batch_size:3);
      ("ar1 rho=+0.8",
       fun seed ->
         Loss_process.ar1 (Prng.create ~seed) ~p ~rho:0.8 ~sigma:0.4);
    ]
  in
  let t =
    Table.create
      ~title:
        "Ablation A13: loss-process families under the basic control \
         (PFTK-simplified, L=8, target p=0.05)"
      ~header:
        [ "process"; "p observed"; "x/f(p)"; "cov[th,th^]p^2"; "cv[th^]" ]
  in
  let rows =
    par_map ~jobs
      (fun (name, mk) ->
        let process = mk 97 in
        let estimator = Loss_interval.of_tfrc ~l:8 in
        (name, Basic_control.simulate ~formula ~estimator ~process ~cycles ()))
      processes
  in
  let t =
    List.fold_left
      (fun t (name, r) ->
        Table.add_row t
          [
            name;
            cell ~decimals:4 r.Basic_control.p_observed;
            cell ~decimals:3 r.Basic_control.normalized;
            cell ~decimals:4
              (r.Basic_control.cov_theta_thetahat
              *. r.Basic_control.p_observed *. r.Basic_control.p_observed);
            cell ~decimals:3 r.Basic_control.cv_thetahat;
          ])
      t rows
  in
  [
    Table.add_note t
      "iid families (cov ~ 0): conservative per Theorem 1; positively \
       correlated families (gilbert, ar1) escape the theorem's hypotheses \
       but PFTK's convexity penalty keeps them below f(p) here (Claim 1: \
       high estimator variability)";
  ]

(* ------------------------------------------------------------------ *)
(* Robust presets: the paper's qualitative claims when the control     *)
(* loop degrades (the spirit of its lab/Internet experiments).         *)
(* ------------------------------------------------------------------ *)

(* One row of the faulted-vs-clean comparison the robust figures share:
   TFRC throughput, pooled loss-event rate, conservativeness x/f(p,r),
   nofeedback halvings, and the injector counts. *)
let robust_row label (cfg : Scenario.config) (r : Scenario.result) =
  let formula =
    Formula.create ~rtt:(Scenario.base_rtt cfg) cfg.tfrc_formula_kind
  in
  let p = Scenario.pooled_loss_rate r.tfrc in
  let x = Scenario.mean_throughput r.tfrc in
  let rtt = Scenario.mean_rtt r.tfrc in
  let norm =
    if p <= 0.0 then nan
    else x /. Formula.eval (Formula.with_rtt formula ~rtt) p
  in
  let fs i = string_of_int i in
  let stat f = match r.fault_stats with None -> "-" | Some s -> fs (f s) in
  [
    label; cell ~decimals:1 x; cell ~decimals:4 p; cell ~decimals:3 norm;
    fs r.tfrc_halvings;
    stat (fun s -> s.Ebrc_net.Fault.transitions);
    stat (fun s -> s.Ebrc_net.Fault.down_drops + s.Ebrc_net.Fault.parked);
    stat (fun s -> s.Ebrc_net.Fault.blackout_drops);
  ]

let robust_header =
  [ "variant"; "tfrc x (pps)"; "p"; "x/f(p,r)"; "halvings"; "flaps";
    "down pkts"; "blackout drops" ]

let robust_compare ~title ~note cfg =
  let faulted = Result_cache.run cfg in
  let clean = Result_cache.run { cfg with Scenario.faults = None } in
  let t = Table.create ~title ~header:robust_header in
  let t = Table.add_row t (robust_row "faulted" cfg faulted) in
  let t = Table.add_row t (robust_row "fault-free" cfg clean) in
  [ Table.add_note t note ]

let robust_blackout ?jobs:_ ~quick:_ () =
  robust_compare Scenario.robust_blackout_config
    ~title:
      "Robust: recurring one-way feedback blackouts (15 s every 50 s)"
    ~note:
      "RFC 3448 safety valve: with feedback gone for >> 4 RTTs the \
       nofeedback timer halves the rate repeatedly (halvings > 0, vs 0 \
       fault-free); TCP acks are not blacked out, isolating the TFRC \
       mechanism"

let robust_flaps ?jobs:_ ~quick:_ () =
  robust_compare Scenario.robust_flaps_config
    ~title:"Robust: random link up/down flaps (outages ~1.5 s, up ~8 s)"
    ~note:
      "through flap-driven loss bursts TFRC tracks the degraded loss \
       process and stays at or below the formula rate (x/f(p,r) <= ~1, \
       the paper's conservativeness under stress)"

let robust_chaos ?jobs:_ ~quick:_ () =
  let cfg = Scenario.robust_chaos_config in
  (* Determinism demonstrated the hard way: two full runs (bypassing
     the cache, which would make the equality trivial), compared on
     their exact serialized bytes. *)
  let r1 = Scenario.run cfg in
  let r2 = Scenario.run cfg in
  let identical =
    String.equal
      (Result_cache.serialize_result r1)
      (Result_cache.serialize_result r2)
  in
  let t =
    Table.create
      ~title:
        "Robust: chaos episodes (flaps+park, delay spikes, reordering, \
         duplication, blackout)"
      ~header:[ "metric"; "value" ]
  in
  let stat name f =
    [ name;
      (match r1.Scenario.fault_stats with
      | None -> "-"
      | Some s -> string_of_int (f s)) ]
  in
  let t = Table.add_row t (stat "flap transitions" (fun s -> s.Ebrc_net.Fault.transitions)) in
  let t = Table.add_row t (stat "packets parked" (fun s -> s.Ebrc_net.Fault.parked)) in
  let t = Table.add_row t (stat "delay-spiked" (fun s -> s.Ebrc_net.Fault.spiked)) in
  let t = Table.add_row t (stat "reordered" (fun s -> s.Ebrc_net.Fault.reordered)) in
  let t = Table.add_row t (stat "duplicated" (fun s -> s.Ebrc_net.Fault.duplicated)) in
  let t = Table.add_row t (stat "blackout drops" (fun s -> s.Ebrc_net.Fault.blackout_drops)) in
  let t =
    Table.add_row t [ "nofeedback halvings"; string_of_int r1.tfrc_halvings ]
  in
  let t =
    Table.add_row t
      [ "rerun bit-identical"; (if identical then "yes" else "NO") ]
  in
  [ Table.add_note t
      "every fault draw comes from Prng.stream of the scenario seed, so \
       the schedule is bit-reproducible: two fresh runs serialize to the \
       same bytes" ]

(* ------------------------------------------------------------------ *)
(* Hybrid packet/fluid engine: validation (h1) and scale (h2).         *)
(* ------------------------------------------------------------------ *)

(* h1: the hybrid validation gate. A small background population is
   simulated twice — once packet-exact (n extra TCP flows) and once as
   a fluid aggregate of the same n flows — and the TFRC foreground's
   loss-event rate and normalized throughput are compared leg against
   leg. Rough agreement here is what licenses replacing 10^4..10^6
   packet flows with the ODE in h2, where a packet-exact leg no longer
   exists. (The fluid is a mean-field model, so small n is its worst
   case; the CI tolerance in test_fluid/test_exp is calibrated
   accordingly and this table is the human-readable view.) *)
let hybrid_agreement ?jobs:_ ~quick () =
  let dur = if quick then 120.0 else 300.0 in
  let base =
    {
      Scenario.default_config with
      Scenario.with_probe = false;
      duration = dur;
      warmup = dur /. 4.0;
    }
  in
  let formula =
    Formula.create ~rtt:(Scenario.base_rtt base) base.Scenario.tfrc_formula_kind
  in
  let measure (r : Scenario.result) =
    let p = Scenario.pooled_loss_rate r.Scenario.tfrc in
    let x = Scenario.mean_throughput r.Scenario.tfrc in
    let rtt = Scenario.mean_rtt r.Scenario.tfrc in
    let norm =
      if p <= 0.0 then nan
      else x /. Formula.eval (Formula.with_rtt formula ~rtt) p
    in
    (p, norm)
  in
  let ns = if quick then [ 4; 8 ] else [ 4; 8; 16 ] in
  let t =
    Table.create
      ~title:
        "Hybrid validation: n background flows, packet-exact vs fluid \
         aggregate"
      ~header:
        [ "bg flows"; "pkt p"; "fluid p"; "pkt x/f"; "fluid x/f";
          "p ratio"; "x/f ratio" ]
  in
  let t =
    List.fold_left
      (fun t n ->
        let pkt =
          Result_cache.run
            { base with Scenario.n_tcp = base.Scenario.n_tcp + n }
        in
        let fl =
          Result_cache.run
            {
              base with
              Scenario.background = Some (Scenario.default_background ~flows:n);
            }
        in
        let p_pkt, x_pkt = measure pkt and p_fl, x_fl = measure fl in
        Table.add_row t
          [
            string_of_int n;
            cell ~decimals:4 p_pkt; cell ~decimals:4 p_fl;
            cell ~decimals:3 x_pkt; cell ~decimals:3 x_fl;
            cell ~decimals:3 (p_fl /. p_pkt);
            cell ~decimals:3 (x_fl /. x_pkt);
          ])
      t ns
  in
  let note =
    if Ebrc_net.Fluid.enabled () then
      "both legs share seed, queue and foreground; only the background's \
       representation changes (packets vs one ODE). Ratios near 1 mean \
       the fluid is a faithful stand-in for the congestion the packet \
       background would have caused"
    else
      "EBRC_HYBRID=0: the fluid leg ran packet-only, so the comparison \
       is degenerate (fluid columns see no background at all)"
  in
  [ Table.add_note t note ]

(* h2: fluid scale sweep — the many-sources regime the packet engine
   cannot reach. The background aggregates 10^4..10^6 AIMD flows into
   one 2-state ODE while the bottleneck scales with N (the paper's
   many-sources normalization: per-flow share held constant, here
   ~70 pkt/s so the RED ramp pins the fixed point at a moderate drop
   rate). The simulated fluid endpoint is compared against its analytic
   equilibrium, and the ODE-cost columns show why this scales: stepper
   work is independent of N. *)
let hybrid_scale ?jobs:_ ~quick () =
  let dur = if quick then 60.0 else 180.0 in
  let base n =
    {
      Scenario.default_config with
      Scenario.with_probe = false;
      (* ~70 pkt/s x 8000 bit packets per background flow. *)
      bottleneck_bps = 5.6e5 *. float_of_int n;
      duration = dur;
      warmup = dur /. 3.0;
    }
  in
  let ns =
    if quick then [ 10_000; 100_000 ] else [ 10_000; 100_000; 1_000_000 ]
  in
  let t =
    Table.create
      ~title:"Hybrid scale: N-flow fluid background vs analytic equilibrium"
      ~header:
        [ "N"; "sim w"; "eq w"; "sim drop"; "eq p"; "tfrc x (pps)";
          "ode steps"; "syncs" ]
  in
  let t =
    List.fold_left
      (fun t n ->
        let bg = Scenario.default_background ~flows:n in
        let cfg = { (base n) with Scenario.background = Some bg } in
        let r = Result_cache.run cfg in
        match r.Scenario.fluid_stats with
        | None ->
            Table.add_row t
              [ string_of_int n; "-"; "-"; "-"; "-";
                cell ~decimals:1 (Scenario.mean_throughput r.Scenario.tfrc);
                "-"; "-" ]
        | Some s ->
            let eq = Ebrc_net.Fluid.equilibrium (Scenario.fluid_config cfg bg) in
            Table.add_row t
              [
                string_of_int n;
                cell ~decimals:3 s.Ebrc_net.Fluid.w;
                cell ~decimals:3 eq.Ebrc_net.Fluid.eq_w;
                cell ~decimals:4 s.Ebrc_net.Fluid.mean_drop;
                cell ~decimals:4 eq.Ebrc_net.Fluid.eq_p;
                cell ~decimals:1 (Scenario.mean_throughput r.Scenario.tfrc);
                string_of_int s.Ebrc_net.Fluid.ode.Ebrc_numerics.Ode.accepted;
                string_of_int s.Ebrc_net.Fluid.advances;
              ])
      t ns
  in
  [ Table.add_note t
      "bottleneck scales with N (constant per-flow share), so the fixed \
       point is N-invariant while a packet-level background would cost \
       10^4..10^6 more events; mean_drop is a whole-run time average so \
       it can sit off the endpoint equilibrium while the transient \
       decays. The RED ramp couples both classes: the packet foreground \
       is dropped on the same avg-occupancy ramp the fluid solves" ]

(* ------------------------------------------------------------------ *)
(* Registry.                                                           *)
(* ------------------------------------------------------------------ *)

type runner = ?jobs:int -> quick:bool -> unit -> Table.t list

let registry : (string * string * runner) list =
  [
    ("1", "function shapes f(1/x), 1/f(1/x)", fig1);
    ("2", "convex closure of PFTK-standard g; ratio r", fig2);
    ("3", "basic control: normalized throughput vs p", fig3);
    ("4", "basic control: normalized throughput vs cv", fig4);
    ("5", "TFRC over RED bottleneck: normalization & covariance", fig5);
    ("6", "audio source over Bernoulli dropper (Claim 2)", fig6);
    ("7", "loss-event rates TFRC/TCP/Poisson vs N (Claim 3)", fig7);
    ("8", "TFRC/TCP throughput ratio vs N", fig8);
    ("9", "TCP vs its formula", fig9);
    ("10", "normalized covariance per path", fig10);
    ("11", "Internet paths: friendliness ratio", fig11);
    ("12", "INRIA breakdown", fig12);
    ("13", "KTH breakdown", fig13);
    ("14", "UMASS breakdown", fig14);
    ("15", "UMELB breakdown", fig15);
    ("16", "lab friendliness ratio", fig16);
    ("17", "p'/p over DropTail buffer (Claim 4)", fig17);
    ("18", "lab DropTail-100 breakdown", fig18);
    ("19", "lab RED breakdown", fig19);
    ("t1", "Table I substitute: path profiles", table_one);
    ("c3", "Claim 3 analytic: many-sources limit", table_c3);
    ("c4", "Claim 4 closed form: p'/p = 4/(1+beta)^2", table_c4);
    ("a1", "ablation: TFRC vs uniform estimator weights", ablation_weights);
    ("a2", "ablation: Eq.12 -> Eq.13 timescale convergence", ablation_eq12);
    ("a3", "ablation: packet-mode vs byte-mode dropper (Claim 2)",
     ablation_dropper_mode);
    ("a4", "ablation: AIMD + EBRC competing on a fluid link",
     ablation_competition);
    ("a5", "ablation: Figure 3 under the comprehensive control",
     ablation_comprehensive_fig3);
    ("a6", "ablation: TCP window growth linearity (Section IV-B)",
     ablation_window_growth);
    ("a7", "ablation: autocorrelation of loss intervals ((C1) evidence)",
     ablation_autocovariance);
    ("a8", "ablation: exact quadrature vs Monte Carlo", ablation_exact_vs_mc);
    ("a9", "ablation: two-router chain (dual bottleneck)", ablation_chain);
    ("a10", "ablation: TCP recovery variant (Reno vs Tahoe)",
     ablation_tcp_variant);
    ("a11", "ablation: design advisor (conservativeness as objective)",
     ablation_design_advisor);
    ("a12", "ablation: RTT heterogeneity (sub-condition 3)",
     ablation_rtt_heterogeneity);
    ("a13", "ablation: loss-process family sensitivity",
     ablation_loss_families);
    ("r1", "robust: feedback blackouts drive nofeedback halvings",
     robust_blackout);
    ("r2", "robust: link flaps; TFRC stays conservative vs f",
     robust_flaps);
    ("r3", "robust: chaos episodes, bit-reproducible schedule",
     robust_chaos);
    ("h1", "hybrid: packet-exact vs fluid background agreement",
     hybrid_agreement);
    ("h2", "hybrid: fluid background scale sweep (10^4..10^6 flows)",
     hybrid_scale);
  ]

let find id =
  List.find_opt (fun (fid, _, _) -> fid = id) registry
  |> Option.map (fun (_, _, r) -> r)

let ids () = List.map (fun (id, _, _) -> id) registry
let describe () = List.map (fun (id, d, _) -> (id, d)) registry

(* Span-wrapped execution: per-figure wall time lands in the trace and
   the summary whenever telemetry is enabled; the counters make the
   replication count visible to bench-compare. *)
let run_runner ~id (runner : runner) ?jobs ~quick () =
  Ebrc_telemetry.Stream.figure_event ~id ~phase:"start" ();
  match
    Tm.with_span ~cat:"figure" ("figure:" ^ id) (fun () ->
        let tables = runner ?jobs ~quick () in
        if Tm.is_on () then begin
          Tm.Counter.incr m_figures_run;
          Tm.Counter.add m_tables (List.length tables)
        end;
        tables)
  with
  | tables ->
      Ebrc_telemetry.Stream.figure_event ~id ~phase:"done"
        ~tables:(List.length tables) ();
      tables
  | exception e ->
      Ebrc_telemetry.Stream.figure_event ~id ~phase:"failed" ();
      Ebrc_telemetry.Flight.on_exn ~reason:("figure:" ^ id) e;
      raise e

let run_one ?jobs ~quick id =
  match find id with
  | Some runner -> run_runner ~id runner ?jobs ~quick ()
  | None -> invalid_arg ("Figures.run_one: unknown figure id " ^ id)

let run_all ?jobs ~quick () =
  List.concat_map
    (fun (id, _, runner) -> run_runner ~id runner ?jobs ~quick ())
    registry

(* ------------------------- keep-going mode ------------------------- *)

type failure = { failed_id : string; message : string; backtrace : string }

(* A Pool.Task_failed already names the replication that died; surface
   that (plus the replay knob) instead of a bare exception string. *)
let describe_exn = function
  | Pool.Task_failed e ->
      Printf.sprintf
        "task #%d (seed %d, %d attempt%s) failed: %s — replay just this \
         task with --only-task %d"
        e.Pool.t_index e.Pool.t_seed e.Pool.t_attempts
        (if e.Pool.t_attempts = 1 then "" else "s")
        (Printexc.to_string e.Pool.t_exn)
        e.Pool.t_index
  | Ebrc_sim.Engine.Budget_exceeded { kind; budget; at; events } ->
      let what, unit_ =
        match kind with
        | Ebrc_sim.Engine.Sim_time -> ("sim-time", "s of simulated time")
        | Ebrc_sim.Engine.Wall_clock -> ("wall-clock", "s elapsed")
      in
      Printf.sprintf
        "%s watchdog tripped: budget %g s, at %g %s after %d events"
        what budget at unit_ events
  | e -> Printexc.to_string e

let run_runner_result ~id runner ?jobs ~quick () =
  match run_runner ~id runner ?jobs ~quick () with
  | tables -> Ok tables
  | exception e ->
      let backtrace = Printexc.get_backtrace () in
      Error { failed_id = id; message = describe_exn e; backtrace }

let run_one_result ?jobs ~quick id =
  match find id with
  | Some runner -> run_runner_result ~id runner ?jobs ~quick ()
  | None ->
      Error
        {
          failed_id = id;
          message =
            Printf.sprintf "unknown figure id %S; valid ids: %s" id
              (String.concat " " (ids ()));
          backtrace = "";
        }

let run_all_keep_going ?jobs ~quick () =
  let tables = ref [] and failures = ref [] in
  List.iter
    (fun (id, _, runner) ->
      match run_runner_result ~id runner ?jobs ~quick () with
      | Ok ts -> tables := ts :: !tables
      | Error f -> failures := f :: !failures)
    registry;
  (List.concat (List.rev !tables), List.rev !failures)
