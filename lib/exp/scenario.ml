(* The dumbbell scenario that stands in for the paper's ns-2 and lab
   setups: N TFRC senders, M TCP senders and optional non-adaptive
   probes share one bottleneck link; the reverse path is a fixed delay
   (no reverse congestion, as in the paper's topologies).

     senders --> [ queue | bottleneck ] --prop--> receivers
        ^                                             |
        +---------------- fixed reverse delay --------+

   Per-flow reverse-delay jitter (a few percent, fixed per flow) breaks
   the phase effects DropTail is prone to, mirroring the heterogeneous
   access links of the testbed. Measurements are taken between
   [warmup] and [duration] via counter snapshots. *)

module Engine = Ebrc_sim.Engine
module Prng = Ebrc_rng.Prng
module Packet = Ebrc_net.Packet
module Link = Ebrc_net.Link
module Queue_discipline = Ebrc_net.Queue_discipline
module Gap_sink = Ebrc_net.Gap_sink
module Flow_stats = Ebrc_net.Flow_stats
module Fault = Ebrc_net.Fault
module Tcp_sender = Ebrc_tcp.Tcp_sender
module Tcp_receiver = Ebrc_tcp.Tcp_receiver
module Tfrc_sender = Ebrc_tfrc.Tfrc_sender
module Tfrc_receiver = Ebrc_tfrc.Tfrc_receiver
module Loss_history = Ebrc_tfrc.Loss_history
module Probe_source = Ebrc_sources.Probe_source
module Flow_pool = Ebrc_sources.Flow_pool
module Fluid = Ebrc_net.Fluid
module Formula = Ebrc_formulas.Formula
module Stream = Ebrc_telemetry.Stream

type queue_config =
  | Drop_tail of { capacity : int }
  | Red_auto of { capacity : int }  (* thresholds from the BDP, as in ns-2 *)
  | Red_manual of { capacity : int; params : Queue_discipline.red_params }

type background = {
  bg_flows : int;        (* AIMD flows the fluid aggregate stands in for *)
  bg_share_cap : float;  (* max capacity fraction the fluid may hold *)
  bg_resolution : float; (* fluid sync quantum, seconds *)
}

let default_background ~flows =
  { bg_flows = flows; bg_share_cap = 0.9; bg_resolution = 1e-3 }

type config = {
  seed : int;
  bottleneck_bps : float;
  one_way_delay : float;          (* propagation each way, seconds *)
  queue : queue_config;
  packet_size : int;              (* bytes, data packets *)
  n_tfrc : int;
  n_tcp : int;
  with_probe : bool;              (* one Poisson probe at ~1% of capacity *)
  tfrc_l : int;                   (* TFRC history window *)
  tfrc_formula_kind : Formula.kind;
  tfrc_comprehensive : bool;
  tfrc_conform_to_analysis : bool;
  reverse_jitter : float;         (* per-flow reverse-delay spread:
                                     factor drawn from 1 +/- jitter *)
  duration : float;               (* simulated seconds *)
  warmup : float;                 (* measurement start *)
  faults : Fault.config option;   (* deterministic fault injection on the
                                     forward path + TFRC feedback path *)
  background : background option; (* fluid background aggregate sharing
                                     the bottleneck; like [faults], a run
                                     with [None] — or with the layer
                                     disabled via EBRC_HYBRID=0 — is
                                     bit-identical to a packet-only run *)
}

let default_config =
  {
    seed = 42;
    bottleneck_bps = 15e6;
    one_way_delay = 0.025;
    queue = Red_auto { capacity = 0 } (* 0 = derive from BDP *);
    packet_size = 1000;
    n_tfrc = 4;
    n_tcp = 4;
    with_probe = true;
    tfrc_l = 8;
    tfrc_formula_kind = Formula.Pftk_standard;
    tfrc_comprehensive = true;
    tfrc_conform_to_analysis = false;
    reverse_jitter = 0.1;
    duration = 300.0;
    warmup = 50.0;
    faults = None;
    background = None;
  }

type flow_measure = {
  flow : int;
  throughput_pps : float;        (* over the measurement window *)
  loss_event_rate : float;       (* completed intervals in the window *)
  mean_rtt : float;
  loss_intervals : float array;  (* completed intervals in the window *)
  estimate_pairs : (float * float) array;  (* TFRC only: (thetahat, theta) *)
}

type result = {
  tfrc : flow_measure array;
  tcp : flow_measure array;
  probe : flow_measure option;
  link_utilization : float;
  queue_drops : int;
  sim_time : float;
  tfrc_halvings : int;           (* nofeedback-timer halvings, all senders *)
  fault_stats : Fault.stats option;  (* None when no injector was active *)
  fluid_stats : Fluid.stats option;  (* None when no fluid was attached *)
}

(* Mean base RTT, before queueing. *)
let base_rtt cfg = 2.0 *. cfg.one_way_delay

let bdp_packets cfg =
  cfg.bottleneck_bps *. base_rtt cfg /. (8.0 *. float_of_int cfg.packet_size)

(* Queue capacity in packets after the 0-means-2.5-BDP default. *)
let queue_capacity cfg =
  let auto capacity =
    if capacity > 0 then capacity
    else max 4 (int_of_float (2.5 *. bdp_packets cfg))
  in
  match cfg.queue with
  | Drop_tail { capacity } | Red_auto { capacity } -> auto capacity
  | Red_manual { capacity; _ } -> capacity

let make_queue cfg =
  let bdp = bdp_packets cfg in
  let service_rate =
    cfg.bottleneck_bps /. (8.0 *. float_of_int cfg.packet_size)
  in
  let capacity = queue_capacity cfg in
  match cfg.queue with
  | Drop_tail _ ->
      Queue_discipline.create ~service_rate ~capacity Queue_discipline.Drop_tail
  | Red_auto _ ->
      Queue_discipline.create ~service_rate ~capacity
        (Queue_discipline.Red (Queue_discipline.default_red ~bdp))
  | Red_manual { params; _ } ->
      Queue_discipline.create ~service_rate ~capacity
        (Queue_discipline.Red params)

(* The fluid config a scenario attaches for [bg]: drop profile mirroring
   the packet queue, capacity and qmax shared with it. Exposed so the
   figure runners can query the analytic [Fluid.equilibrium] of exactly
   the aggregate the run used. *)
let fluid_config cfg (bg : background) =
  let capacity_pps =
    cfg.bottleneck_bps /. (8.0 *. float_of_int cfg.packet_size)
  in
  let qmax = float_of_int (queue_capacity cfg) in
  let ramp_of p =
    Fluid.Ramp
      {
        min_th = p.Queue_discipline.min_th;
        max_th = p.Queue_discipline.max_th;
        max_p = p.Queue_discipline.max_p;
      }
  in
  let profile =
    match cfg.queue with
    | Drop_tail _ -> Fluid.Tail { ramp = 0.25 }
    | Red_auto _ ->
        ramp_of (Queue_discipline.default_red ~bdp:(bdp_packets cfg))
    | Red_manual { params; _ } -> ramp_of params
  in
  Fluid.default ~profile ~share_cap:bg.bg_share_cap
    ~resolution:bg.bg_resolution ~flows:bg.bg_flows ~capacity_pps
    ~base_rtt:(base_rtt cfg) ~qmax ()

(* Per-flow endpoints built by [run]. Counter snapshots and the final
   per-flow measurements live in a struct-of-arrays Flow_pool keyed by
   flow id (TFRC flow i -> slot i, TCP flow j -> slot n_tfrc + j), so
   the measurement pass walks flat columns instead of chasing mutable
   fields through an array of records. *)
type tfrc_flow = { ts : Tfrc_sender.t; tr : Tfrc_receiver.t }
type tcp_flow = { cs : Tcp_sender.t; cr : Tcp_receiver.t }

(* Stream-run identity: a pure function of the scenario config, so the
   same simulation gets the same key no matter which pool domain it is
   scheduled on or in what order. Distinct sweep points differ in at
   least one of these fields; identical configs produce identical
   (deterministic) runs, so a key collision merely makes the finalized
   stream's stable sort see equal lines. Deliberately not the result
   cache's digest: that lives upstream of this module. *)
let stream_key cfg =
  let queue_tag =
    match cfg.queue with
    | Drop_tail { capacity } -> Printf.sprintf "dt%d" capacity
    | Red_auto { capacity } -> Printf.sprintf "reda%d" capacity
    | Red_manual { capacity; _ } -> Printf.sprintf "redm%d" capacity
  in
  Printf.sprintf "s%d:n%d+%d%s:d%g:w%g:%s%s%s" cfg.seed cfg.n_tfrc cfg.n_tcp
    (if cfg.with_probe then "+p" else "")
    cfg.duration cfg.warmup queue_tag
    (if cfg.faults <> None then ":f" else "")
    (if cfg.background <> None then ":bg" else "")

let run cfg =
  if cfg.duration <= cfg.warmup then
    invalid_arg "Scenario.run: duration must exceed warmup";
  let engine = Engine.create () in
  (* Live-stream sampling: the engine fires the sampler at sim-time
     boundaries (deterministic; see Engine.set_sampler), and the
     sampler reads only this domain's metric shards, so the emitted
     deltas are exactly this run's contribution. *)
  let stream_run =
    if Stream.sim_active () then begin
      let r = Stream.run_start ~key:(stream_key cfg) in
      Engine.set_sampler engine ~period:(Stream.sim_period ()) (fun b ->
          Stream.sample r ~t_sim:b ~events:engine.Engine.processed
            ~pending:(Engine.pending engine));
      Some r
    end
    else None
  in
  let stream_end ~ok =
    match stream_run with
    | Some r ->
        Stream.run_end r ~t_sim:(Engine.now engine)
          ~events:engine.Engine.processed
          ~pending:(Engine.pending engine) ~ok;
        Engine.clear_sampler engine
    | None -> ()
  in
  let guarded_run ~until =
    try ignore (Engine.run ~until engine : Engine.stop_reason)
    with e ->
      stream_end ~ok:false;
      raise e
  in
  let master = Prng.create ~seed:cfg.seed in
  let queue = make_queue cfg in
  let link =
    Link.create ~engine ~rate_bps:cfg.bottleneck_bps ~delay:cfg.one_way_delay
      ~queue ~rng:(Prng.split master)
  in
  let rtt0 = base_rtt cfg in
  let formula =
    Formula.create ~rtt:rtt0 cfg.tfrc_formula_kind
  in
  (* Fluid background aggregate. Like the fault injector, it is only
     constructed when configured AND globally enabled, and it draws no
     randomness at all (its sync points are quantized event times), so
     [background = None] — or EBRC_HYBRID=0 — leaves the packet-only
     run bit-identical. The drop profile mirrors the packet queue so
     both traffic classes see the same congestion signal. *)
  let fluid =
    match cfg.background with
    | Some bg when Fluid.enabled () ->
        let fl = Fluid.create (fluid_config cfg bg) in
        Link.attach_fluid link fl;
        Engine.set_advance_hook engine
          (Some
             (fun now ->
               Fluid.set_pkt_occupancy fl (Queue_discipline.occupancy queue);
               Fluid.sync fl ~now));
        Some fl
    | _ -> None
  in
  (* Per-flow reverse delays with +/-reverse_jitter spread: breaks
     DropTail phase effects and, at larger spreads, exercises the
     paper's sub-condition 3 (the r'/r comparison) under heterogeneous
     round-trip times. *)
  if cfg.reverse_jitter < 0.0 || cfg.reverse_jitter >= 1.0 then
    invalid_arg "Scenario.run: reverse_jitter must be in [0, 1)";
  let reverse_delay () =
    let j = cfg.reverse_jitter in
    cfg.one_way_delay *. (1.0 -. j +. (2.0 *. j *. Prng.float_unit master))
  in
  (* Fault injector. Its PRNG is a pure function of the scenario seed
     (Prng.stream, not a split of [master]), so configuring faults
     never perturbs the master draw sequence — and with faults absent
     or globally disabled (EBRC_FAULTS=0) the run is bit-identical to
     a fault-free one. *)
  let fault =
    match cfg.faults with
    | Some fc when Fault.enabled () ->
        let inj =
          Fault.create ~engine ~rng:(Prng.stream ~root:cfg.seed 9001) fc
        in
        if Fault.active inj then Some inj else None
    | _ -> None
  in
  let send_link pkt = Link.send link pkt in
  let forward =
    match fault with Some f -> Fault.wrap_forward f send_link | None -> send_link
  in
  let feedback_sink sink =
    match fault with Some f -> Fault.wrap_feedback f sink | None -> sink
  in
  (* SoA measurement state: one slot per foreground flow (TFRC i -> i,
     TCP j -> n_tfrc + j). *)
  let pool = Flow_pool.create ~capacity:(max 1 (cfg.n_tfrc + cfg.n_tcp)) in
  for _ = 1 to cfg.n_tfrc + cfg.n_tcp do
    ignore (Flow_pool.add pool : int)
  done;
  (* --- TFRC flows: ids 0 .. n_tfrc-1 --- *)
  let tfrc_flows =
    Array.init cfg.n_tfrc (fun i ->
        let flow = i in
        let ts =
          Tfrc_sender.create ~packet_size:cfg.packet_size
            ~conform_to_analysis:cfg.tfrc_conform_to_analysis ~engine ~flow
            ~formula ()
        in
        let tr =
          Tfrc_receiver.create ~comprehensive:cfg.tfrc_comprehensive ~engine
            ~flow ~l:cfg.tfrc_l ~rtt:rtt0 ()
        in
        let rd = reverse_delay () in
        Tfrc_sender.set_transmit ts forward;
        (* Feedback is emitted in time order and delayed by the
           per-flow constant [rd], so the reverse path is FIFO and can
           ride a fast lane instead of the heap. A blackout filter
           composes with that proof: it only removes pushes. *)
        let fb_lane = Engine.lane engine in
        Tfrc_receiver.set_feedback_sink tr
          (feedback_sink (fun pkt ->
               Engine.lane_push fb_lane
                 ~at:(Engine.now engine +. rd)
                 (fun () -> Tfrc_sender.on_packet ts pkt)));
        { ts; tr })
  in
  (* --- TCP flows: ids n_tfrc .. n_tfrc+n_tcp-1 --- *)
  let tcp_flows =
    Array.init cfg.n_tcp (fun i ->
        let flow = cfg.n_tfrc + i in
        let cs =
          Tcp_sender.create ~packet_size:cfg.packet_size ~engine ~flow ()
        in
        let cr = Tcp_receiver.create ~engine ~flow () in
        let rd = reverse_delay () in
        (* Forward-path faults (flaps, spikes, reordering, duplication)
           hit all traffic classes; blackouts are one-way and
           TFRC-feedback-only, so TCP acks stay clean — the contrast
           isolates the nofeedback-timer mechanism. *)
        Tcp_sender.set_transmit cs forward;
        (* Acks are generated at delivery times (monotone) and delayed
           by the per-flow constant [rd] — FIFO, same as feedback. *)
        let ack_lane = Engine.lane engine in
        Tcp_receiver.set_ack_sink cr (fun ~acked ~dup ~echo ->
            Engine.lane_push_after ack_lane ~delay:rd (fun () ->
                Tcp_sender.on_ack cs ~acked ~dup ~echo));
        { cs; cr })
  in
  (* --- optional Poisson probe: id n_tfrc + n_tcp --- *)
  let probe_flow = cfg.n_tfrc + cfg.n_tcp in
  let probe =
    if not cfg.with_probe then None
    else begin
      let rate =
        0.01 *. cfg.bottleneck_bps /. (8.0 *. float_of_int cfg.packet_size)
      in
      let src =
        Probe_source.create ~packet_size:cfg.packet_size ~engine
          ~flow:probe_flow ~rate
          ~pacing:(Probe_source.Poisson (Prng.split master))
          ()
      in
      let sink = Gap_sink.create ~flow:probe_flow ~rtt_hint:rtt0 in
      Probe_source.set_transmit src forward;
      Some (src, sink)
    end
  in
  (* --- forward demux --- *)
  Link.set_deliver link (fun pkt ->
      let now = engine.Engine.now in
      let f = pkt.Packet.flow in
      (if f < cfg.n_tfrc then Tfrc_receiver.on_data tfrc_flows.(f).tr pkt
       else if f < cfg.n_tfrc + cfg.n_tcp then
         Tcp_receiver.on_data tcp_flows.(f - cfg.n_tfrc).cr pkt
       else
         match probe with
         | Some (_, sink) -> Gap_sink.on_packet sink ~now pkt
         | None -> ());
      (* Receivers read fields synchronously and never retain the
         packet, so it can be recycled here. *)
      Packet.release pkt);
  (* --- start: staggered over the first second to avoid lockstep --- *)
  Array.iter
    (fun fl ->
      let t0 = Prng.float_unit master in
      ignore (Engine.schedule engine ~at:t0 (fun () -> Tfrc_sender.start fl.ts)))
    tfrc_flows;
  Array.iter
    (fun fl ->
      let t0 = Prng.float_unit master in
      ignore (Engine.schedule engine ~at:t0 (fun () -> Tcp_sender.start fl.cs)))
    tcp_flows;
  (match probe with
  | Some (src, _) ->
      ignore (Engine.schedule engine ~at:0.5 (fun () -> Probe_source.start src))
  | None -> ());
  (* --- warmup phase, snapshot, measurement phase --- *)
  guarded_run ~until:cfg.warmup;
  let probe_recv_snapshot = ref 0 and probe_ivs_snapshot = ref 0 in
  let snap_recv = pool.Flow_pool.snap_recv
  and snap_ivs = pool.Flow_pool.snap_ivs
  and snap_pairs = pool.Flow_pool.snap_pairs in
  Array.iteri
    (fun i fl ->
      snap_recv.(i) <- Tfrc_receiver.received fl.tr;
      snap_ivs.(i) <- Loss_history.interval_count (Tfrc_receiver.history fl.tr);
      snap_pairs.(i) <- Loss_history.pair_count (Tfrc_receiver.history fl.tr))
    tfrc_flows;
  Array.iteri
    (fun j fl ->
      let s = cfg.n_tfrc + j in
      snap_recv.(s) <- Tcp_receiver.received fl.cr;
      snap_ivs.(s) <- Tcp_sender.interval_count fl.cs)
    tcp_flows;
  (match probe with
  | Some (_, sink) ->
      probe_recv_snapshot := Flow_stats.received (Gap_sink.stats sink);
      probe_ivs_snapshot := Flow_stats.interval_count (Gap_sink.stats sink)
  | None -> ());
  let drops_at_warmup = Queue_discipline.drops queue in
  let delivered_at_warmup = Link.bytes_delivered link in
  guarded_run ~until:cfg.duration;
  stream_end ~ok:true;
  let window = cfg.duration -. cfg.warmup in
  let tail arr from = Array.sub arr from (Array.length arr - from) in
  let interval_rate ivs =
    if Array.length ivs = 0 then 0.0
    else float_of_int (Array.length ivs) /. Array.fold_left ( +. ) 0.0 ivs
  in
  (* The final measures are computed into the pool's float columns
     first (throughput in [rate], RTT in [rtt], loss-event rate in
     [loss_rate]) and then materialized as records for the result. *)
  let measure_into slot ~flow ~recv_now ~mean_rtt:r ~ivs ~pairs =
    let thr = float_of_int (recv_now - snap_recv.(slot)) /. window in
    let rtt = if Float.is_nan r || r <= 0.0 then rtt0 else r in
    let ler = interval_rate ivs in
    Float.Array.set pool.Flow_pool.rate slot thr;
    Float.Array.set pool.Flow_pool.rtt slot rtt;
    Float.Array.set pool.Flow_pool.loss_rate slot ler;
    {
      flow;
      throughput_pps = thr;
      loss_event_rate = ler;
      mean_rtt = rtt;
      loss_intervals = ivs;
      estimate_pairs = pairs;
    }
  in
  let tfrc_measures =
    Array.mapi
      (fun i fl ->
        let hist = Tfrc_receiver.history fl.tr in
        let ivs = tail (Loss_history.completed_intervals hist) snap_ivs.(i) in
        let pairs = tail (Loss_history.estimate_pairs hist) snap_pairs.(i) in
        measure_into i ~flow:(Tfrc_sender.flow fl.ts)
          ~recv_now:(Tfrc_receiver.received fl.tr)
          ~mean_rtt:(Tfrc_sender.mean_rtt fl.ts) ~ivs ~pairs)
      tfrc_flows
  in
  let tcp_measures =
    Array.mapi
      (fun i fl ->
        let s = cfg.n_tfrc + i in
        let ivs = tail (Tcp_sender.loss_event_intervals fl.cs) snap_ivs.(s) in
        measure_into s ~flow:s
          ~recv_now:(Tcp_receiver.received fl.cr)
          ~mean_rtt:(Tcp_sender.mean_rtt fl.cs) ~ivs ~pairs:[||])
      tcp_flows
  in
  let probe_measure =
    match probe with
    | None -> None
    | Some (_, sink) ->
        let st = Gap_sink.stats sink in
        let ivs = tail (Flow_stats.loss_event_intervals st) !probe_ivs_snapshot in
        Some
          {
            flow = probe_flow;
            throughput_pps =
              float_of_int (Flow_stats.received st - !probe_recv_snapshot)
              /. window;
            loss_event_rate = interval_rate ivs;
            mean_rtt = rtt0;
            loss_intervals = ivs;
            estimate_pairs = [||];
          }
  in
  {
    tfrc = tfrc_measures;
    tcp = tcp_measures;
    probe = probe_measure;
    link_utilization =
      8.0
      *. float_of_int (Link.bytes_delivered link - delivered_at_warmup)
      /. (cfg.bottleneck_bps *. window);
    queue_drops = Queue_discipline.drops queue - drops_at_warmup;
    sim_time = Engine.now engine;
    tfrc_halvings =
      Array.fold_left
        (fun acc fl -> acc + Tfrc_sender.rate_halvings fl.ts)
        0 tfrc_flows;
    fault_stats = Option.map Fault.stats fault;
    fluid_stats = Option.map Fluid.stats fluid;
  }

(* Aggregate helpers used by the figure runners. *)

let mean_of f arr =
  if Array.length arr = 0 then nan
  else Array.fold_left (fun acc m -> acc +. f m) 0.0 arr /. float_of_int (Array.length arr)

let mean_throughput ms = mean_of (fun m -> m.throughput_pps) ms
let mean_loss_rate ms = mean_of (fun m -> m.loss_event_rate) ms
let mean_rtt ms = mean_of (fun m -> m.mean_rtt) ms

let pooled_pairs ms =
  Array.concat (Array.to_list (Array.map (fun m -> m.estimate_pairs) ms))

(* Loss-event rate over the union of all flows' completed intervals —
   the stable per-scenario estimate (per-flow estimates are noisy and
   bias ratios through the nonlinearity of f). *)
let pooled_loss_rate ms =
  let count = ref 0 and total = ref 0.0 in
  Array.iter
    (fun m ->
      count := !count + Array.length m.loss_intervals;
      total := !total +. Array.fold_left ( +. ) 0.0 m.loss_intervals)
    ms;
  if !count = 0 then 0.0 else float_of_int !count /. !total

(* ------------------------- robust presets -------------------------- *)

(* Stress scenarios for the paper's qualitative claims outside the
   clean closed-form world (the lab/Internet experiments of Sections
   6-7): the control loop degrades, and TFRC's safety mechanisms — the
   nofeedback timer, the conservative formula response to loss bursts
   — keep it conservative rather than letting it overshoot. *)

(* Recurring 15 s one-way feedback blackouts. With feedback gone for
   >> 4 RTTs, the RFC 3448 nofeedback timer must fire repeatedly
   (halving the rate each time) — the regression pinned by test_fault. *)
let robust_blackout_config =
  {
    default_config with
    seed = 71;
    n_tfrc = 2;
    n_tcp = 2;
    with_probe = false;
    duration = 160.0;
    warmup = 30.0;
    faults =
      Some
        {
          Fault.none with
          Fault.blackouts =
            [ { Fault.start = 60.0; length = 15.0; period = 50.0 } ];
        };
  }

(* Random link up/down flaps (outages ~1.5 s, up-times ~8 s): loss
   bursts and dead air on the forward path. TFRC should track the
   degraded loss process and stay at or below the formula rate f(p). *)
let robust_flaps_config =
  {
    default_config with
    seed = 72;
    n_tfrc = 2;
    n_tcp = 2;
    with_probe = false;
    duration = 160.0;
    warmup = 30.0;
    faults =
      Some
        {
          Fault.none with
          Fault.flaps =
            Some
              { Fault.first_down = 50.0; down_mean = 1.5; up_mean = 8.0;
                flap_jitter = 0.4; park = false };
        };
  }

(* Everything at once — parked-packet flaps, delay spikes, reordering,
   duplication, a one-shot blackout — the determinism workout: the
   whole schedule must be a pure function of the seed. *)
let robust_chaos_config =
  {
    default_config with
    seed = 73;
    n_tfrc = 2;
    n_tcp = 2;
    with_probe = true;
    duration = 120.0;
    warmup = 30.0;
    faults =
      Some
        {
          Fault.flaps =
            Some
              { Fault.first_down = 40.0; down_mean = 0.5; up_mean = 6.0;
                flap_jitter = 0.3; park = true };
          blackouts = [ { Fault.start = 70.0; length = 5.0; period = 0.0 } ];
          spike =
            Some ({ Fault.start = 50.0; length = 10.0; period = 40.0 }, 0.03);
          reorder =
            Some
              ({ Fault.start = 45.0; length = 10.0; period = 35.0 }, 0.2,
               0.005);
          duplicate =
            Some ({ Fault.start = 55.0; length = 10.0; period = 45.0 }, 0.1);
        };
  }

let robust_presets =
  [
    ("robust-blackout",
     "recurring one-way feedback blackouts; nofeedback halvings fire",
     robust_blackout_config);
    ("robust-flaps",
     "random link up/down flaps; TFRC stays conservative vs f(p)",
     robust_flaps_config);
    ("robust-chaos",
     "flaps + delay spikes + reordering + duplication + blackout",
     robust_chaos_config);
  ]

let robust_preset name =
  List.find_map
    (fun (n, _, cfg) -> if String.equal n name then Some cfg else None)
    robust_presets
