(* A two-router chain, generalising the paper's lab topology: traffic
   traverses two links in series, each with its own queue, and optional
   CBR cross-traffic loads the second link only.

     senders -> [q1 | link1] -> [q2 | link2] -> receivers
                                 ^
                      cross-traffic (joins at router 2)

   With link2 faster than link1 this degenerates to the dumbbell (the
   paper's setup: second router purely adds delay); with comparable
   rates plus cross-traffic, losses occur at two places and the
   loss-event process seen end-to-end is a superposition — a stress
   test for the loss-history aggregation. *)

module Engine = Ebrc_sim.Engine
module Prng = Ebrc_rng.Prng
module Packet = Ebrc_net.Packet
module Link = Ebrc_net.Link
module Queue_discipline = Ebrc_net.Queue_discipline
module Tcp_sender = Ebrc_tcp.Tcp_sender
module Tcp_receiver = Ebrc_tcp.Tcp_receiver
module Tfrc_sender = Ebrc_tfrc.Tfrc_sender
module Tfrc_receiver = Ebrc_tfrc.Tfrc_receiver
module Loss_history = Ebrc_tfrc.Loss_history
module Probe_source = Ebrc_sources.Probe_source
module Formula = Ebrc_formulas.Formula
module Fault = Ebrc_net.Fault

type config = {
  seed : int;
  link1_bps : float;
  link2_bps : float;
  delay1 : float;               (* propagation of link 1, seconds *)
  delay2 : float;
  queue1_capacity : int;
  queue2_capacity : int;
  cross_rate_fraction : float;  (* CBR cross load as fraction of link2 *)
  n_tfrc : int;
  n_tcp : int;
  tfrc_l : int;
  duration : float;
  warmup : float;
  packet_size : int;
  faults : Fault.config option; (* injected at the link-1 ingress and on
                                   the TFRC feedback path *)
}

let default_config =
  {
    seed = 42;
    link1_bps = 10e6;
    link2_bps = 10e6;
    delay1 = 0.01;
    delay2 = 0.02;
    queue1_capacity = 60;
    queue2_capacity = 60;
    cross_rate_fraction = 0.3;
    n_tfrc = 2;
    n_tcp = 2;
    tfrc_l = 8;
    duration = 120.0;
    warmup = 30.0;
    packet_size = 1000;
    faults = None;
  }

type class_measure = {
  throughput_pps : float;
  loss_event_rate : float;
  mean_rtt : float;
}

type result = {
  tfrc : class_measure;
  tcp : class_measure;
  drops_link1 : int;
  drops_link2 : int;
  utilization1 : float;
  utilization2 : float;
}

let base_rtt cfg = 2.0 *. (cfg.delay1 +. cfg.delay2)

let run cfg =
  if cfg.duration <= cfg.warmup then
    invalid_arg "Chain_scenario.run: duration must exceed warmup";
  if cfg.cross_rate_fraction < 0.0 || cfg.cross_rate_fraction >= 1.0 then
    invalid_arg "Chain_scenario.run: cross fraction in [0,1)";
  let engine = Engine.create () in
  let master = Prng.create ~seed:cfg.seed in
  let mk_link ~bps ~delay ~capacity =
    let service_rate = bps /. (8.0 *. float_of_int cfg.packet_size) in
    let queue =
      Queue_discipline.create ~service_rate ~capacity Queue_discipline.Drop_tail
    in
    Link.create ~engine ~rate_bps:bps ~delay ~queue ~rng:(Prng.split master)
  in
  let link1 = mk_link ~bps:cfg.link1_bps ~delay:cfg.delay1 ~capacity:cfg.queue1_capacity in
  let link2 = mk_link ~bps:cfg.link2_bps ~delay:cfg.delay2 ~capacity:cfg.queue2_capacity in
  Link.set_deliver link1 (fun pkt -> Link.send link2 pkt);
  let rtt0 = base_rtt cfg in
  let formula = Formula.create ~rtt:rtt0 Formula.Pftk_standard in
  let reverse_delay () = (cfg.delay1 +. cfg.delay2) *. (0.9 +. (0.2 *. Prng.float_unit master)) in
  (* Faults hit the first-hop ingress (the paper's lab topology put the
     perturbed segment first) and the TFRC feedback path; same
     stream-derived PRNG contract as Scenario. *)
  let fault =
    match cfg.faults with
    | Some fc when Fault.enabled () ->
        let inj =
          Fault.create ~engine ~rng:(Prng.stream ~root:cfg.seed 9001) fc
        in
        if Fault.active inj then Some inj else None
    | _ -> None
  in
  let send_link1 pkt = Link.send link1 pkt in
  let forward =
    match fault with
    | Some f -> Fault.wrap_forward f send_link1
    | None -> send_link1
  in
  let feedback_sink sink =
    match fault with Some f -> Fault.wrap_feedback f sink | None -> sink
  in
  (* TFRC flows 0..n_tfrc-1, TCP flows follow, cross flow last. *)
  let tfrc =
    Array.init cfg.n_tfrc (fun flow ->
        let ts =
          Tfrc_sender.create ~packet_size:cfg.packet_size ~engine ~flow
            ~formula ()
        in
        let tr =
          Tfrc_receiver.create ~engine ~flow ~l:cfg.tfrc_l ~rtt:rtt0 ()
        in
        let rd = reverse_delay () in
        Tfrc_sender.set_transmit ts forward;
        Tfrc_receiver.set_feedback_sink tr
          (feedback_sink (fun pkt ->
               ignore
                 (Engine.schedule_after engine ~delay:rd (fun () ->
                      Tfrc_sender.on_packet ts pkt))));
        (ts, tr))
  in
  let tcp =
    Array.init cfg.n_tcp (fun i ->
        let flow = cfg.n_tfrc + i in
        let cs = Tcp_sender.create ~packet_size:cfg.packet_size ~engine ~flow () in
        let cr = Tcp_receiver.create ~engine ~flow () in
        let rd = reverse_delay () in
        Tcp_sender.set_transmit cs forward;
        Tcp_receiver.set_ack_sink cr (fun ~acked ~dup ~echo ->
            ignore
              (Engine.schedule_after engine ~delay:rd (fun () ->
                   Tcp_sender.on_ack cs ~acked ~dup ~echo)));
        (cs, cr))
  in
  let cross_flow = cfg.n_tfrc + cfg.n_tcp in
  let cross =
    if cfg.cross_rate_fraction = 0.0 then None
    else begin
      let rate =
        cfg.cross_rate_fraction *. cfg.link2_bps
        /. (8.0 *. float_of_int cfg.packet_size)
      in
      let src =
        Probe_source.create ~packet_size:cfg.packet_size ~engine
          ~flow:cross_flow ~rate
          ~pacing:(Probe_source.Poisson (Prng.split master))
          ()
      in
      (* Cross traffic joins at router 2 and leaves after link 2. *)
      Probe_source.set_transmit src (fun pkt -> Link.send link2 pkt);
      Some src
    end
  in
  Link.set_deliver link2 (fun pkt ->
      let f = pkt.Packet.flow in
      (if f < cfg.n_tfrc then Tfrc_receiver.on_data (snd tfrc.(f)) pkt
       else if f < cross_flow then
         Tcp_receiver.on_data (snd tcp.(f - cfg.n_tfrc)) pkt
       else () (* cross traffic sinks silently *));
      Packet.release pkt);
  Array.iter
    (fun (ts, _) ->
      let t0 = Prng.float_unit master in
      ignore (Engine.schedule engine ~at:t0 (fun () -> Tfrc_sender.start ts)))
    tfrc;
  Array.iter
    (fun (cs, _) ->
      let t0 = Prng.float_unit master in
      ignore (Engine.schedule engine ~at:t0 (fun () -> Tcp_sender.start cs)))
    tcp;
  (match cross with
  | Some src ->
      ignore (Engine.schedule engine ~at:0.2 (fun () -> Probe_source.start src))
  | None -> ());
  ignore (Engine.run ~until:cfg.warmup engine);
  let snap_recv_tfrc = Array.map (fun (_, tr) -> Tfrc_receiver.received tr) tfrc in
  let snap_recv_tcp = Array.map (fun (_, cr) -> Tcp_receiver.received cr) tcp in
  let snap_iv_tfrc =
    Array.map
      (fun (_, tr) ->
        Loss_history.interval_count (Tfrc_receiver.history tr))
      tfrc
  in
  let snap_iv_tcp =
    Array.map (fun (cs, _) -> Tcp_sender.interval_count cs) tcp
  in
  let drops1_warm = Queue_discipline.drops (Link.queue link1) in
  let drops2_warm = Queue_discipline.drops (Link.queue link2) in
  let bytes1_warm = Link.bytes_delivered link1 in
  let bytes2_warm = Link.bytes_delivered link2 in
  ignore (Engine.run ~until:cfg.duration engine);
  let window = cfg.duration -. cfg.warmup in
  let interval_rate ivs =
    if Array.length ivs = 0 then 0.0
    else float_of_int (Array.length ivs) /. Array.fold_left ( +. ) 0.0 ivs
  in
  let tail arr from = Array.sub arr from (Array.length arr - from) in
  let tfrc_measure =
    let recvs = ref 0 and ivs = ref [] and rtts = ref [] in
    Array.iteri
      (fun i (ts, tr) ->
        recvs := !recvs + (Tfrc_receiver.received tr - snap_recv_tfrc.(i));
        ivs :=
          tail
            (Loss_history.completed_intervals (Tfrc_receiver.history tr))
            snap_iv_tfrc.(i)
          :: !ivs;
        let r = Tfrc_sender.mean_rtt ts in
        if not (Float.is_nan r) && r > 0.0 then rtts := r :: !rtts)
      tfrc;
    {
      throughput_pps =
        float_of_int !recvs /. window /. float_of_int (max 1 cfg.n_tfrc);
      loss_event_rate = interval_rate (Array.concat !ivs);
      mean_rtt =
        (match !rtts with
        | [] -> rtt0
        | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l));
    }
  in
  let tcp_measure =
    let recvs = ref 0 and ivs = ref [] and rtts = ref [] in
    Array.iteri
      (fun i (cs, cr) ->
        recvs := !recvs + (Tcp_receiver.received cr - snap_recv_tcp.(i));
        ivs := tail (Tcp_sender.loss_event_intervals cs) snap_iv_tcp.(i) :: !ivs;
        let r = Tcp_sender.mean_rtt cs in
        if not (Float.is_nan r) && r > 0.0 then rtts := r :: !rtts)
      tcp;
    {
      throughput_pps =
        float_of_int !recvs /. window /. float_of_int (max 1 cfg.n_tcp);
      loss_event_rate = interval_rate (Array.concat !ivs);
      mean_rtt =
        (match !rtts with
        | [] -> rtt0
        | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l));
    }
  in
  {
    tfrc = tfrc_measure;
    tcp = tcp_measure;
    drops_link1 = Queue_discipline.drops (Link.queue link1) - drops1_warm;
    drops_link2 = Queue_discipline.drops (Link.queue link2) - drops2_warm;
    utilization1 =
      8.0
      *. float_of_int (Link.bytes_delivered link1 - bytes1_warm)
      /. (cfg.link1_bps *. window);
    utilization2 =
      8.0
      *. float_of_int (Link.bytes_delivered link2 - bytes2_warm)
      /. (cfg.link2_bps *. window);
  }
