(** One runner per paper figure/table. [quick] shrinks grids and run
    lengths (benchmark mode); full mode reproduces the paper-scale
    sweeps. The experiment index lives in DESIGN.md, the
    paper-vs-measured record in EXPERIMENTS.md.

    [jobs] (default 1) fans the runner's sweep points out over that
    many domains. Every point derives its PRNG from its own
    coordinates and results are assembled in grid order, so the tables
    are byte-identical for every [jobs]. *)

type runner = ?jobs:int -> quick:bool -> unit -> Table.t list

val registry : (string * string * runner) list
(** (figure id, description, runner). Ids: "1".."19", "t1", "c3",
    "c4", "a1".."a13", "r1".."r3", "h1".."h2". *)

val ids : unit -> string list
val describe : unit -> (string * string) list

val find : string -> runner option
val run_one : ?jobs:int -> quick:bool -> string -> Table.t list
(** Raises [Invalid_argument] on an unknown id. *)

val run_all : ?jobs:int -> quick:bool -> unit -> Table.t list

(** {2 Keep-going mode}

    Crash-isolated variants for hardened orchestration: a failing
    runner becomes a structured {!failure} (with [Pool.Task_failed]
    errors rendered as a replayable task #/seed report) instead of
    killing the whole generation. *)

type failure = {
  failed_id : string;
  message : string;    (** human-readable cause, with replay hints *)
  backtrace : string;  (** empty unless backtrace recording is on *)
}

val run_runner_result :
  id:string -> runner -> ?jobs:int -> quick:bool -> unit ->
  (Table.t list, failure) result

val run_one_result :
  ?jobs:int -> quick:bool -> string -> (Table.t list, failure) result
(** Unknown ids become [Error] (listing the valid ids), not an
    exception. *)

val run_all_keep_going :
  ?jobs:int -> quick:bool -> unit -> Table.t list * failure list
(** Run the whole registry; surviving figures' tables in registry
    order plus one {!failure} per runner that raised. *)

(** Individual runners (exposed for tests and the bench harness). *)

val fig1 : runner
val fig2 : runner
val fig3 : runner
val fig4 : runner
val fig5 : runner
val fig6 : runner
val fig7 : runner
val fig8 : runner
val fig9 : runner
val fig10 : runner
val fig11 : runner
val fig12 : runner
val fig13 : runner
val fig14 : runner
val fig15 : runner
val fig16 : runner
val fig17 : runner
val fig18 : runner
val fig19 : runner
val table_one : runner
val table_c3 : runner
val table_c4 : runner
val ablation_weights : runner
val ablation_eq12 : runner
val ablation_dropper_mode : runner
val ablation_competition : runner
val ablation_comprehensive_fig3 : runner
val ablation_window_growth : runner
val ablation_autocovariance : runner
val ablation_exact_vs_mc : runner
val ablation_chain : runner
val ablation_tcp_variant : runner
val ablation_design_advisor : runner
val ablation_rtt_heterogeneity : runner
val ablation_loss_families : runner
val robust_blackout : runner
val robust_flaps : runner
val robust_chaos : runner
val hybrid_agreement : runner
val hybrid_scale : runner
