(* The Claim-2 / Figure-6 scenario: an audio-like sender with a fixed
   packet send rate (one packet per 20 ms in the paper) and equation-
   controlled packet lengths, behind a Bernoulli dropper with a fixed
   per-packet drop probability. Packet drops are independent of packet
   length, so cov[X_0, S_0] = 0 and Claim 2 applies: conservative where
   f(1/x) is concave (SQRT, or PFTK with rare losses), non-conservative
   where it is strictly convex (PFTK with heavy losses). *)

module Engine = Ebrc_sim.Engine
module Prng = Ebrc_rng.Prng
module Audio_source = Ebrc_sources.Audio_source
module Loss_module = Ebrc_net.Loss_module
module Loss_history = Ebrc_tfrc.Loss_history
module Formula = Ebrc_formulas.Formula
module Descriptive = Ebrc_stats.Descriptive
module Fault = Ebrc_net.Fault

type dropper_mode =
  | Packet_mode            (* drop independent of packet length (Claim 2) *)
  | Byte_mode              (* drop probability scales with packet length *)

type config = {
  seed : int;
  drop_p : float;              (* Bernoulli per-packet drop probability *)
  period : float;              (* fixed inter-packet time, s *)
  l : int;                     (* estimator window *)
  comprehensive : bool;
  formula_kind : Formula.kind;
  duration : float;
  warmup : float;
  one_way_delay : float;
  dropper_mode : dropper_mode;
  faults : Fault.config option;  (* injected on the dropper channel *)
}

let default_config =
  {
    seed = 7;
    drop_p = 0.05;
    period = 0.02;
    l = 4;
    comprehensive = false;
    formula_kind = Formula.Pftk_simplified;
    duration = 2000.0;
    warmup = 200.0;
    one_way_delay = 0.02;
    dropper_mode = Packet_mode;
    faults = None;
  }

type result = {
  normalized_throughput : float;   (* x_bar / f(p_observed) *)
  p_observed : float;              (* empirical loss-event rate *)
  cv2_thetahat : float;            (* squared CV of the estimator *)
  mean_rate : float;
  events : int;
  packets : int;
}

let run cfg =
  if cfg.duration <= cfg.warmup then
    invalid_arg "Audio_scenario.run: duration must exceed warmup";
  let engine = Engine.create () in
  let rng = Prng.create ~seed:cfg.seed in
  let rtt = 2.0 *. cfg.one_way_delay in
  let formula = Formula.create ~rtt cfg.formula_kind in
  let source =
    Audio_source.create ~comprehensive:cfg.comprehensive ~l:cfg.l ~engine
      ~flow:0 ~period:cfg.period ~formula ~rtt ()
  in
  let dropper =
    match cfg.dropper_mode with
    | Packet_mode -> Loss_module.bernoulli rng ~p:cfg.drop_p
    | Byte_mode ->
        (* Reference size: the fixed point f(drop_p) * period units of
           base_size bytes, so the average drop probability matches the
           packet-mode run. *)
        let fixed_units = Formula.eval formula cfg.drop_p *. cfg.period in
        let ref_size = max 1 (int_of_float (fixed_units *. 100.0)) in
        Loss_module.bernoulli_bytes rng ~p_ref:cfg.drop_p ~ref_size
  in
  (* Rate samples restricted to the measurement window, with the
     estimator value at each loss event for the CV statistic. *)
  let rate_sum = ref 0.0 and rate_n = ref 0 in
  let thetahats = ref [] in
  let measuring () = Engine.now engine >= cfg.warmup in
  (* The fault injector wraps the whole dropper channel (same PRNG
     contract as Scenario: a Prng.stream of the seed, so fault-free
     runs are untouched). There is no feedback path here — the source
     reads its own history — so only forward faults apply. *)
  let fault =
    match cfg.faults with
    | Some fc when Fault.enabled () ->
        let inj =
          Fault.create ~engine ~rng:(Prng.stream ~root:cfg.seed 9001) fc
        in
        if Fault.active inj then Some inj else None
    | _ -> None
  in
  let channel pkt =
    if Loss_module.process dropper pkt then
      ignore
        (Engine.schedule_after engine ~delay:cfg.one_way_delay (fun () ->
             let before =
               Loss_history.event_count (Audio_source.history source)
             in
             Audio_source.on_receiver_packet source ~seq:pkt.Ebrc_net.Packet.seq;
             let hist = Audio_source.history source in
             if measuring () && Loss_history.event_count hist > before then
               thetahats := Loss_history.average_interval hist :: !thetahats))
  in
  let channel =
    match fault with Some f -> Fault.wrap_forward f channel | None -> channel
  in
  Audio_source.set_transmit source (fun pkt ->
      if measuring () then begin
        rate_sum := !rate_sum +. Audio_source.rate_units source;
        incr rate_n
      end;
      channel pkt);
  (* Counters snapshotted at warmup for the empirical loss-event rate. *)
  let ivs_at_warmup = ref 0 in
  ignore (Engine.schedule engine ~at:cfg.warmup (fun () ->
      ivs_at_warmup :=
        Array.length
          (Loss_history.completed_intervals (Audio_source.history source))));
  Audio_source.start source;
  ignore (Engine.run ~until:cfg.duration engine);
  let hist = Audio_source.history source in
  let all_ivs = Loss_history.completed_intervals hist in
  let ivs =
    Array.sub all_ivs !ivs_at_warmup (Array.length all_ivs - !ivs_at_warmup)
  in
  let p_observed =
    if Array.length ivs = 0 then 0.0
    else float_of_int (Array.length ivs) /. Array.fold_left ( +. ) 0.0 ivs
  in
  let mean_rate = if !rate_n = 0 then 0.0 else !rate_sum /. float_of_int !rate_n in
  let normalized =
    if p_observed > 0.0 then mean_rate /. Formula.eval formula p_observed
    else nan
  in
  let cv2 =
    let arr = Array.of_list !thetahats in
    if Array.length arr < 2 then 0.0
    else
      let cv = Descriptive.coefficient_of_variation arr in
      cv *. cv
  in
  {
    normalized_throughput = normalized;
    p_observed;
    cv2_thetahat = cv2;
    mean_rate;
    events = Loss_history.event_count hist;
    packets = Audio_source.sent source;
  }
