# Convenience targets; everything is plain dune underneath.

.PHONY: all ci build test test-ablations serve-e2e chaos-e2e serve-demo bench bench-quick bench-full bench-scale bench-compare bench-trend figures validate report examples telemetry-demo status-demo clean

all: build

# The full gate: build everything, run the test suites (including the
# all-ablations-off leg), take a fresh bench record, and diff it
# against the previous one (fails on hot-path regressions > 20% or
# fixed-seed telemetry drift; set EBRC_COMPARE_WARN_ONLY=1 when a
# simulator change makes drift intentional).
ci: build test test-ablations serve-e2e chaos-e2e bench-quick bench-compare

build:
	dune build @all

test:
	dune runtest

# The same suites with every ablatable fast path and the fault layer
# disabled: lane merge off, geometric gap-skip off, fault injection
# off. Guards the contract that each toggle is behaviour-preserving
# (or, for EBRC_FAULTS, that disabling it reproduces fault-free runs).
# A second leg turns off just the timing wheel so every suite also
# runs against the pure-heap event core, and a third turns off the
# hybrid packet/fluid layer so configs carrying a fluid background
# degrade to bit-identical packet-only runs.
test-ablations:
	EBRC_LANES=0 EBRC_GAP_SKIP=0 EBRC_FAULTS=0 dune runtest --force
	EBRC_WHEEL=0 dune runtest --force
	EBRC_HYBRID=0 dune runtest --force

# End-to-end check of the multi-process sweep service: serve a 6-task
# manifest with 2 workers to completion, resume over a partial store,
# warm-resume with --workers 0, and assert the exit-code contract
# (0 = all published, 2 = bad manifest).
serve-e2e: build
	sh scripts/serve_ci.sh

# Chaos soak end to end: serve a manifest under injected I/O faults
# and random worker SIGKILLs, corrupt and scrub the store, resume
# fault-free, and assert the healed store is byte-identical to a
# fault-free reference run.
chaos-e2e: build
	sh scripts/chaos_ci.sh

# The sweep service end to end, human-sized: write a demo manifest,
# serve it with 2 workers (live fleet progress), then re-serve to show
# the warm resume skipping everything already in the store.
serve-demo: build
	dune exec bin/ebrc_cli.exe -- manifest serve-demo.json --tasks 6 --duration 20
	dune exec bin/ebrc_cli.exe -- serve serve-demo.json --workers 2
	dune exec bin/ebrc_cli.exe -- serve serve-demo.json --workers 0
	@echo
	@echo "serve-demo.json       : the sweep manifest (canonical hex-float JSON)"
	@echo "serve-demo.json.queue : task queue (tasks/ + leases/) and store/ with"
	@echo "                        one content-addressed record per task; re-running"
	@echo "                        'serve' is a warm resume and completes instantly."

# Regenerate every paper figure (quick mode) plus the micro-benchmarks;
# writes BENCH_<date>.json. Set EBRC_JOBS=N to size the domain pool.
bench: bench-quick

bench-quick:
	dune exec bench/main.exe

# Paper-scale sweeps (long).
bench-full:
	EBRC_BENCH_FULL=1 dune exec bench/main.exe

# Just the scale points: flows100k (packet-only scheduler), flows1m
# (hybrid packet/fluid) and the EBRC_HYBRID=0 ablation. No JSON record.
bench-scale:
	EBRC_BENCH_ONLY=scale dune exec bench/main.exe

# Diff the newest two BENCH_*.json records; exits non-zero when any
# hot-path micro-benchmark regressed by more than 20%, a fixed-seed
# counter drifted, or a determinism gate (wheel/faults/hybrid/stream
# bit-identity) broke.
bench-compare:
	dune exec bench/compare.exe

# Longitudinal view over the whole BENCH_*.json history: first/last/
# best, per-record slope and regression flags for every hot-path
# timing and fixed-seed counter.
bench-trend:
	dune exec bin/ebrc_cli.exe -- bench-trend

figures:
	dune exec bin/ebrc_cli.exe -- figure all

validate:
	dune exec bin/ebrc_cli.exe -- validate

report:
	dune exec bin/ebrc_cli.exe -- report -o report.md

# Run one figure with full telemetry: structured events + per-figure
# spans land in telemetry.jsonl / trace.json, and a summary table is
# printed on exit.
telemetry-demo:
	dune exec bin/ebrc_cli.exe -- figure 17 \
	  --telemetry telemetry.jsonl --trace trace.json --telemetry-summary
	@echo
	@echo "telemetry.jsonl : one JSON object per line (metrics, spans, events)"
	@echo "trace.json      : Chrome trace_event format -- open chrome://tracing"
	@echo "                  (or https://ui.perfetto.dev) and load the file to"
	@echo "                  see per-figure spans and simulated-time events."

# Live observability end to end: stream a figure run to ebrc.stream,
# then render the finished stream with `ebrc status` (while a run is
# still going, the same command in another terminal shows live
# progress and `--once` emits machine-readable JSON).
status-demo:
	dune exec bin/ebrc_cli.exe -- figure 17 --no-cache --stream ebrc.stream
	dune exec bin/ebrc_cli.exe -- status ebrc.stream
	@echo
	@echo "ebrc.stream : self-describing JSONL (meta/manifest/figure/delta"
	@echo "              records); 'ebrc status --once ebrc.stream' prints"
	@echo "              one JSON object for scripting."

examples:
	dune exec examples/quickstart.exe
	dune exec examples/audio_rate_control.exe
	dune exec examples/bottleneck_sharing.exe
	dune exec examples/many_sources_demo.exe
	dune exec examples/theorem_explorer.exe
	dune exec examples/design_advisor.exe

clean:
	dune clean
	rm -rf serve-demo.json serve-demo.json.queue
