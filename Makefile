# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-quick bench-full bench-compare figures validate report examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# Regenerate every paper figure (quick mode) plus the micro-benchmarks;
# writes BENCH_<date>.json. Set EBRC_JOBS=N to size the domain pool.
bench: bench-quick

bench-quick:
	dune exec bench/main.exe

# Paper-scale sweeps (long).
bench-full:
	EBRC_BENCH_FULL=1 dune exec bench/main.exe

# Diff the newest two BENCH_*.json records; exits non-zero when any
# hot-path micro-benchmark regressed by more than 20%.
bench-compare:
	dune exec bench/compare.exe

figures:
	dune exec bin/ebrc_cli.exe -- figure all

validate:
	dune exec bin/ebrc_cli.exe -- validate

report:
	dune exec bin/ebrc_cli.exe -- report -o report.md

examples:
	dune exec examples/quickstart.exe
	dune exec examples/audio_rate_control.exe
	dune exec examples/bottleneck_sharing.exe
	dune exec examples/many_sources_demo.exe
	dune exec examples/theorem_explorer.exe
	dune exec examples/design_advisor.exe

clean:
	dune clean
