(* Compare the newest two BENCH_*.json records and fail loudly when a
   hot-path micro-benchmark regresses by more than 20%.

   Records are ordered by the timestamp embedded in the filename (via
   Ebrc_obs.Bench_records), so the historical day-only shape
   [BENCH_2026-08-05.json] and the timestamped
   [BENCH_2026-08-05T141802Z.json] coexist without the lexicographic
   accident the old sort relied on; files without a recognisable
   timestamp sort last with a warning rather than silently mis-order
   the baseline. Parsing goes through Ebrc_obs.Json — the same reader
   `ebrc bench-trend` uses — so older records (and hand-edited ones)
   keep working. Only tests present in both records are compared, and
   sub-millisecond kernels are reported but never fatal: at that scale
   run-to-run clock noise routinely exceeds the regression
   threshold. *)

open Ebrc_obs.Json

let parse_json path s =
  match Ebrc_obs.Json.parse s with
  | Ok v -> v
  | Error e ->
      Printf.eprintf "bench-compare: %s: %s\n" path e;
      exit 1

(* ------------------------------------------------------------------ *)
(* Comparison.                                                         *)
(* ------------------------------------------------------------------ *)

(* Hot-path regressions below this baseline are reported, not fatal:
   sub-millisecond in-process kernels swing well past 20% between
   runs of identical binaries (frequency scaling, cache state,
   neighbouring load — observed repeatedly on the 100us-1ms figure
   kernels even at a 1 s OLS quota), so gating them would make the
   target flaky. The packet-path scenario kernels this gate exists
   for all sit in the tens of milliseconds. *)
let noise_floor_ns = 1_000_000.0
let regression_threshold = 0.20

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let bench_files () =
  let files, warnings = Ebrc_obs.Bench_records.list_ordered ~dir:"." in
  List.iter (fun w -> Printf.eprintf "bench-compare: %s\n" w) warnings;
  files

let ns_table json =
  match member "microbench_ns_per_run" json with
  | Some (Obj kvs) ->
      List.filter_map
        (fun (k, v) -> match v with Num f -> Some (k, f) | _ -> None)
        kvs
  | _ -> []

(* Telemetry counters from the fixed-seed ablation scenario. These are
   deterministic, so between two records at the same seed any drift
   means the simulation itself changed behaviour — a scientific
   regression, and fatal by default. An intentional simulator change
   legitimately moves them: set EBRC_COMPARE_WARN_ONLY=1 for the one
   run that establishes the new baseline. Counters present in only one
   record (new instrumentation) are skipped, not failed. *)
let telemetry_drift_threshold = 0.05

let warn_only = Sys.getenv_opt "EBRC_COMPARE_WARN_ONLY" = Some "1"

let telemetry_counters json =
  match member "telemetry_summary" json with
  | Some summary -> (
      match member "counters" summary with
      | Some (Obj kvs) ->
          List.filter_map
            (fun (k, v) -> match v with Num f -> Some (k, f) | _ -> None)
            kvs
      | _ -> [])
  | None -> []

(* Returns the drifted counters so the caller can decide to fail. *)
let compare_telemetry old_json new_json =
  let old_tbl = telemetry_counters old_json in
  let new_tbl = telemetry_counters new_json in
  if old_tbl = [] || new_tbl = [] then []
  else begin
    let drifted =
      List.filter_map
        (fun (name, old_v) ->
          match List.assoc_opt name new_tbl with
          | Some new_v when old_v > 0.0 ->
              let rel = abs_float (new_v -. old_v) /. old_v in
              if rel > telemetry_drift_threshold then
                Some (name, old_v, new_v, rel)
              else None
          | _ -> None)
        old_tbl
    in
    (match drifted with
    | [] ->
        Printf.printf
          "  telemetry counters: %d compared, drift <= %.0f%%\n\n"
          (List.length old_tbl) (100.0 *. telemetry_drift_threshold)
    | ds ->
        Printf.printf
          "  telemetry counters: %s — %d counter(s) drifted > %.0f%% \
           at equal seeds (simulation behaviour changed?):\n"
          (if warn_only then "WARNING (EBRC_COMPARE_WARN_ONLY)" else "FAIL")
          (List.length ds) (100.0 *. telemetry_drift_threshold);
        List.iter
          (fun (name, old_v, new_v, rel) ->
            Printf.printf "    %-40s %12.0f -> %12.0f  (%+.1f%%)\n" name old_v
              new_v (100.0 *. rel *. (if new_v >= old_v then 1.0 else -1.0)))
          ds;
        print_newline ());
    drifted
  end

(* Figure regeneration times: purely informational (wall time depends
   on the machine), but useful context next to the microbenches. A
   figure may carry an explicit "skipped: <reason>" string instead of
   a number (sub-millisecond analytic figures do); those are counted
   as deliberately skipped, distinct from figures absent in a record.
   Legacy records used a bare null for the same thing; both forms are
   set aside rather than compared against 0. *)
let figure_seconds json =
  match member "figure_regeneration_seconds" json with
  | Some (Obj kvs) ->
      List.filter_map
        (fun (k, v) -> match v with Num f -> Some (k, f) | _ -> None)
        kvs
  | _ -> []

let figure_skips json =
  match member "figure_regeneration_seconds" json with
  | Some (Obj kvs) ->
      List.length
        (List.filter
           (function _, Str _ | _, Null -> true | _ -> false)
           kvs)
  | _ -> 0

let compare_figure_seconds old_json new_json =
  let old_tbl = figure_seconds old_json in
  let new_tbl = figure_seconds new_json in
  if old_tbl <> [] && new_tbl <> [] then begin
    let compared, faster, slower =
      List.fold_left
        (fun (n, f, s) (name, old_s) ->
          match List.assoc_opt name new_tbl with
          | Some new_s when old_s > 0.0 ->
              ( n + 1,
                (if new_s < old_s then f + 1 else f),
                if new_s > old_s then s + 1 else s )
          | _ -> (n, f, s))
        (0, 0, 0) old_tbl
    in
    let absent = List.length old_tbl - compared in
    Printf.printf
      "  figure regeneration: %d timed figures compared (%d faster, %d \
       slower, %d explicitly skipped, %d absent; informational only)\n\n"
      compared faster slower (figure_skips new_json) absent
  end

let () =
  match List.rev (bench_files ()) with
  | [] | [ _ ] ->
      print_endline
        "bench-compare: need at least two BENCH_*.json records (run `make \
         bench` twice)";
      exit 0
  | newest :: prev :: _ ->
      Printf.printf "bench-compare: %s (baseline) -> %s (current)\n\n" prev
        newest;
      let old_json = parse_json prev (read_file prev) in
      let new_json = parse_json newest (read_file newest) in
      let old_tbl = ns_table old_json in
      let new_tbl = ns_table new_json in
      if old_tbl = [] || new_tbl = [] then begin
        Printf.printf
          "bench-compare: no microbench_ns_per_run table in one of the \
           records; nothing to compare\n";
        exit 0
      end;
      let regressions = ref [] in
      Printf.printf "  %-45s %12s %12s %8s\n" "test" "baseline ns" "current ns"
        "ratio";
      List.iter
        (fun (name, old_ns) ->
          match List.assoc_opt name new_tbl with
          | None -> ()
          | Some new_ns ->
              let ratio = new_ns /. old_ns in
              let flag =
                if ratio > 1.0 +. regression_threshold then
                  if old_ns >= noise_floor_ns then begin
                    regressions := (name, ratio) :: !regressions;
                    "  REGRESSED"
                  end
                  else "  (noisy: sub-ms baseline, ignored)"
                else ""
              in
              Printf.printf "  %-45s %12.0f %12.0f %7.2fx%s\n" name old_ns
                new_ns ratio flag)
        old_tbl;
      print_newline ();
      let drifted = compare_telemetry old_json new_json in
      compare_figure_seconds old_json new_json;
      (match member "parallel_figure_sweep" new_json with
      | Some sweep -> (
          match (member "figure" sweep, member "speedup" sweep) with
          | Some (Str fig), Some (Num sp) ->
              Printf.printf "  parallel sweep (figure %s): %.2fx\n\n" fig sp
          | _ -> ())
      | None -> ());
      (* Faults ablation: the disabled arm must stay byte-identical to
         the fault-free run — a [false] here means the injection layer
         leaks into unfaulted simulations, which is fatal regardless of
         timing. Absent in pre-faults records; skipped then. *)
      let faults_broken =
        match member "faults_ablation" new_json with
        | Some fa -> (
            (match
               ( member "scenario_none_ms" fa,
                 member "scenario_enabled_ms" fa )
             with
            | Some (Num none_ms), Some (Num live_ms) ->
                Printf.printf
                  "  faults ablation: fault-free %.1f ms, live %.1f ms\n"
                  none_ms live_ms
            | _ -> ());
            match member "bit_identical" fa with
            | Some (Bool true) ->
                Printf.printf
                  "  faults ablation: disabled arm bit-identical to \
                   fault-free\n\n";
                false
            | Some (Bool false) ->
                Printf.printf
                  "  faults ablation: FAIL — EBRC_FAULTS=0 run is NOT \
                   byte-identical to the fault-free run\n\n";
                true
            | _ -> false)
        | None -> false
      in
      (* Scheduler ablations: dispatch order must be bit-identical
         across wheel / lanes / heap (and, at the 100k-flow scale
         point, between wheel and heap fingerprints) — a [false] is
         fatal regardless of timing, mirroring the faults gate. The
         timing targets are reported but not fatal: they move with the
         host. Absent in pre-wheel records; skipped then. *)
      let wheel_broken =
        match member "wheel_ablation" new_json with
        | Some wa -> (
            (match
               (member "wheel_droptail_ms" wa, member "heap_droptail_ms" wa)
             with
            | Some (Num w), Some (Num h) ->
                Printf.printf
                  "  wheel ablation: droptail wheel %.1f ms, heap %.1f ms \
                   (%.2fx vs heap; target < 7 ms %s)\n"
                  w h (h /. w)
                  (if w < 7.0 then "met" else "missed")
            | _ -> ());
            match member "bit_identical" wa with
            | Some (Bool true) ->
                Printf.printf
                  "  wheel ablation: wheel/lanes/heap runs bit-identical\n";
                false
            | Some (Bool false) ->
                Printf.printf
                  "  wheel ablation: FAIL — wheel/lanes/heap runs are NOT \
                   byte-identical\n";
                true
            | _ -> false)
        | None -> false
      in
      let flows_broken =
        match member "flows100k" new_json with
        | Some fl -> (
            (match
               ( member "wheel_ns_per_packet" fl,
                 member "heap_ns_per_packet" fl )
             with
            | Some (Num w), Some (Num h) ->
                Printf.printf
                  "  flows100k: wheel %.0f ns/packet, heap %.0f ns/packet \
                   (%.2fx vs heap; halving target %s)\n"
                  w h (h /. w)
                  (if w <= 0.5 *. h then "met" else "missed")
            | _ -> ());
            match member "bit_identical" fl with
            | Some (Bool true) ->
                Printf.printf
                  "  flows100k: wheel and heap dispatch fingerprints \
                   identical\n\n";
                false
            | Some (Bool false) ->
                Printf.printf
                  "  flows100k: FAIL — wheel and heap dispatch fingerprints \
                   differ\n\n";
                true
            | _ -> false)
        | None -> false
      in
      (* flows1m: informational timing for the hybrid scale point (the
         <= 2x ratio vs flows100k moves with the host), but fingerprint
         disagreement between equal-seed reruns is fatal — the hybrid
         co-simulation's determinism contract. *)
      let flows1m_broken =
        match member "flows1m" new_json with
        | Some fl -> (
            (match
               ( member "bg_flows" fl,
                 member "ns_per_event" fl,
                 member "ratio_vs_flows100k" fl )
             with
            | Some (Num bg), Some (Num ns), Some (Num ratio) ->
                Printf.printf
                  "  flows1m: %.0f fluid bg flows, %.0f ns/event (%.2fx vs \
                   flows100k; <= 2x target %s)\n"
                  bg ns ratio
                  (if ratio <= 2.0 then "met" else "missed")
            | _ -> ());
            match member "bit_identical" fl with
            | Some (Bool true) ->
                Printf.printf
                  "  flows1m: equal-seed reruns bit-identical\n";
                false
            | Some (Bool false) ->
                Printf.printf
                  "  flows1m: FAIL — equal-seed hybrid reruns disagree on \
                   the dispatch fingerprint\n";
                true
            | _ -> false)
        | None -> false
      in
      (* Hybrid ablation: with EBRC_HYBRID=0 a config carrying a fluid
         background must serialize byte-identically to the same config
         with no background — a [false] means the hybrid layer leaks
         into ablated runs, fatal regardless of timing. Absent in
         pre-hybrid records; skipped then. *)
      let hybrid_broken =
        match member "hybrid_ablation" new_json with
        | Some ha -> (
            (match
               ( member "scenario_none_ms" ha,
                 member "scenario_enabled_ms" ha )
             with
            | Some (Num none_ms), Some (Num live_ms) ->
                Printf.printf
                  "  hybrid ablation: background-free %.1f ms, live %.1f ms\n"
                  none_ms live_ms
            | _ -> ());
            match member "bit_identical" ha with
            | Some (Bool true) ->
                Printf.printf
                  "  hybrid ablation: EBRC_HYBRID=0 arm bit-identical to \
                   background-free\n\n";
                false
            | Some (Bool false) ->
                Printf.printf
                  "  hybrid ablation: FAIL — EBRC_HYBRID=0 run is NOT \
                   byte-identical to the background-free run\n\n";
                true
            | _ -> false)
        | None -> false
      in
      (* Streaming ablation: two gates. The streamed run must
         serialize byte-identically to the silent run — observation
         may not perturb the simulation, fatal when false. And the
         stream-off arm must stay within the regression threshold of
         the telemetry ablation's own disabled arm (same config, same
         seed): disabled streaming must be free. The timing gate
         respects EBRC_COMPARE_WARN_ONLY (it moves with the host);
         the identity gate does not. Absent in pre-stream records;
         skipped then. *)
      let stream_broken =
        match member "stream_ablation" new_json with
        | Some sa ->
            let id_broken =
              match member "bit_identical" sa with
              | Some (Bool true) ->
                  Printf.printf
                    "  stream ablation: streamed run bit-identical to the \
                     silent run\n";
                  false
              | Some (Bool false) ->
                  Printf.printf
                    "  stream ablation: FAIL — streaming a run changes its \
                     serialized result\n";
                  true
              | _ -> false
            in
            let overhead_broken =
              match member "scenario_off_ms" sa with
              | Some (Num off_ms) -> (
                  match
                    Option.bind
                      (member "telemetry_summary" new_json)
                      (member "disabled_ms")
                  with
                  | Some (Num base_ms) when base_ms > 0.0 ->
                      let ratio = off_ms /. base_ms in
                      if ratio > 1.0 +. regression_threshold then begin
                        Printf.printf
                          "  stream ablation: %s — stream-off scenario %.1f \
                           ms vs %.1f ms telemetry-off baseline (%.2fx; \
                           disabled streaming must be free)\n"
                          (if warn_only then
                             "WARNING (EBRC_COMPARE_WARN_ONLY)"
                           else "FAIL")
                          off_ms base_ms ratio;
                        not warn_only
                      end
                      else begin
                        Printf.printf
                          "  stream ablation: stream-off %.1f ms within \
                           %.2fx of the %.1f ms telemetry-off baseline\n"
                          off_ms ratio base_ms;
                        false
                      end
                  | _ -> false)
              | _ -> false
            in
            (match
               (member "scenario_streaming_ms" sa, member "delta_records" sa)
             with
            | Some (Num on_ms), Some (Num deltas) ->
                Printf.printf
                  "  stream ablation: streaming arm %.1f ms, %.0f delta \
                   record(s) (informational)\n\n"
                  on_ms deltas
            | _ -> print_newline ());
            id_broken || overhead_broken
        | None -> false
      in
      (* Sweep service: the worker fleet publishes into a
         content-addressed store that must be byte-identical to a
         serial in-process run of the same manifest — disagreement
         means the service layer perturbs results, fatal regardless of
         timing. The throughput and warm-resume numbers move with the
         host and are informational. Absent in pre-service records;
         skipped then. *)
      let service_broken =
        match member "sweep_service" new_json with
        | Some sv -> (
            (match
               ( member "tasks" sv,
                 member "worker1_seconds" sv,
                 member "worker4_seconds" sv )
             with
            | Some (Num tasks), Some (Num w1), Some (Num w4)
              when w1 > 0.0 && w4 > 0.0 ->
                Printf.printf
                  "  sweep service: %.0f tasks — %.1f tasks/s at 1 worker, \
                   %.1f tasks/s at 4\n"
                  tasks (tasks /. w1) (tasks /. w4)
            | _ -> ());
            (match member "cold_over_warm" sv with
            | Some (Num r) ->
                Printf.printf
                  "  sweep service: warm resume %.0fx faster than cold \
                   (>= 50x target %s)\n"
                  r
                  (if r >= 50.0 then "met" else "missed")
            | _ -> ());
            match member "store_identical" sv with
            | Some (Bool true) ->
                Printf.printf
                  "  sweep service: 4-worker store byte-identical to the \
                   serial in-process run\n\n";
                false
            | Some (Bool false) ->
                Printf.printf
                  "  sweep service: FAIL — multi-worker store is NOT \
                   byte-identical to the serial in-process run\n\n";
                true
            | _ -> false)
        | None -> false
      in
      (* Chaos soak: a sweep served under injected I/O faults and
         random worker kills, scrubbed and resumed fault-free, must
         end with a store byte-identical to the fault-free reference
         run. Disagreement means chaos leaked into results — fatal.
         [store_identical] is null when the soak was skipped (no CLI
         binary next to the bench), and absent in pre-chaos records. *)
      let chaos_broken =
        match member "chaos_soak" new_json with
        | Some cs -> (
            (match
               ( member "soak_seconds" cs,
                 member "soak_exit" cs,
                 member "scrub_quarantined" cs )
             with
            | Some (Num soak), Some (Num code), Some (Num quarantined) ->
                Printf.printf
                  "  chaos soak: %.1f s under faults + kills (exit %.0f), \
                   %.0f record(s) quarantined by scrub\n"
                  soak code quarantined
            | _ -> ());
            match member "store_identical" cs with
            | Some (Bool true) ->
                Printf.printf
                  "  chaos soak: resumed store byte-identical to the \
                   fault-free run\n\n";
                false
            | Some (Bool false) ->
                Printf.printf
                  "  chaos soak: FAIL — store after soak + scrub + resume \
                   is NOT byte-identical to the fault-free run\n\n";
                true
            | _ ->
                Printf.printf "  chaos soak: skipped\n\n";
                false)
        | None -> false
      in
      let failed = ref false in
      if faults_broken then failed := true;
      if service_broken then failed := true;
      if chaos_broken then failed := true;
      if stream_broken then failed := true;
      if wheel_broken then failed := true;
      if flows_broken then failed := true;
      if flows1m_broken then failed := true;
      if hybrid_broken then failed := true;
      (match List.rev !regressions with
      | [] -> print_endline "bench-compare: OK, no hot-path regression > 20%"
      | rs ->
          Printf.printf
            "bench-compare: FAIL — %d hot-path regression(s) > 20%%:\n"
            (List.length rs);
          List.iter
            (fun (name, ratio) ->
              Printf.printf "  %s slowed down %.2fx\n" name ratio)
            rs;
          failed := true);
      if drifted <> [] then
        if warn_only then
          print_endline
            "bench-compare: telemetry drift ignored (EBRC_COMPARE_WARN_ONLY=1)"
        else begin
          Printf.printf
            "bench-compare: FAIL — %d fixed-seed telemetry counter(s) \
             drifted (set EBRC_COMPARE_WARN_ONLY=1 to accept a new \
             baseline)\n"
            (List.length drifted);
          failed := true
        end;
      if !failed then exit 1
