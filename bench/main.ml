(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   in quick (scaled-down) mode, printing the same rows/series the paper
   reports — set EBRC_BENCH_FULL=1 for the paper-scale sweeps and
   EBRC_JOBS=N to fan sweep points out over N domains (default: one per
   available core; the tables are identical either way).

   Part 2 runs Bechamel micro-benchmarks: one Test.make per figure (a
   representative kernel of that figure's computation) plus the
   component kernels and the ablation comparisons called out in
   DESIGN.md (closed-form vs ODE comprehensive engine, DropTail vs
   RED).

   Part 3 measures the domain-pool speedup on one figure sweep.

   Part 4 measures the multi-process sweep service (`ebrc serve` over
   exec'd workers): tasks/sec at 1 vs 4 workers, warm-resume time, and
   the serial-vs-fleet store byte-identity gate.

   Everything — per-test ns/run, per-figure regeneration seconds, the
   speedup and service records — lands in BENCH_<UTC-date>.json. *)

open Bechamel
open Toolkit

let quick = Sys.getenv_opt "EBRC_BENCH_FULL" <> Some "1"

(* EBRC_JOBS is read by Pool.default_jobs; fall back to all cores. *)
let jobs = Ebrc.Pool.default_jobs ()

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate all figures/tables.                              *)
(* ------------------------------------------------------------------ *)

let regenerate_figures () =
  Printf.printf
    "#############################################################\n\
     # Regenerating all paper figures/tables (%s mode, %d jobs)\n\
     #############################################################\n\n"
    (if quick then "quick" else "FULL")
    jobs;
  List.map
    (fun (id, desc, runner) ->
      Printf.printf "--- figure %s: %s ---\n%!" id desc;
      let t0 = Unix.gettimeofday () in
      let tables = runner ?jobs:(Some jobs) ~quick () in
      List.iter Ebrc.Table.print tables;
      let seconds = Unix.gettimeofday () -. t0 in
      Printf.printf "(figure %s regenerated in %.1f s)\n\n%!" id seconds;
      (id, seconds))
    Ebrc.Figures.registry

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks.                                  *)
(* ------------------------------------------------------------------ *)

(* Component kernels. *)

let bench_formula_eval kind =
  let f = Ebrc.Formula.create ~rtt:0.1 kind in
  Staged.stage (fun () ->
      let acc = ref 0.0 in
      for i = 1 to 100 do
        acc := !acc +. Ebrc.Formula.eval f (float_of_int i /. 250.0)
      done;
      !acc)

let bench_estimator () =
  let e = Ebrc.Loss_interval.of_tfrc ~l:8 in
  Ebrc.Loss_interval.prime e 20.0;
  Staged.stage (fun () ->
      for i = 1 to 100 do
        Ebrc.Loss_interval.record e (10.0 +. float_of_int (i mod 20));
        ignore (Ebrc.Loss_interval.estimate e)
      done)

let bench_event_queue () =
  Staged.stage (fun () ->
      let q = Ebrc.Event_queue.create () in
      for i = 1 to 256 do
        Ebrc.Event_queue.push q ~time:(float_of_int ((i * 7919) mod 997)) i
      done;
      while not (Ebrc.Event_queue.is_empty q) do
        ignore (Ebrc.Event_queue.pop q)
      done)

let bench_red_offer () =
  let open Ebrc.Queue_discipline in
  let q =
    create ~service_rate:1000.0 ~capacity:200 (Red (default_red ~bdp:80.0))
  in
  let rng = Ebrc.Prng.create ~seed:1 in
  Staged.stage (fun () ->
      for _ = 1 to 100 do
        match offer q ~now:0.0 ~u:(Ebrc.Prng.float_unit rng) with
        | Enqueue -> if occupancy q > 100 then departure q ~now:0.0
        | Drop -> ()
      done)

(* Figure kernels: a scaled-down unit of the per-figure computation. *)

let kernel_fig1 () =
  let fs = List.map Ebrc.Formula.create Ebrc.Formula.all_paper_kinds in
  Staged.stage (fun () ->
      List.iter
        (fun f ->
          for i = 2 to 100 do
            let x = float_of_int i /. 2.0 in
            ignore (Ebrc.Formula.g f x);
            ignore (Ebrc.Formula.h f x)
          done)
        fs)

let kernel_fig2 () =
  let f = Ebrc.Formula.create ~rtt:1.0 ~b:1.0 Ebrc.Formula.Pftk_standard in
  Staged.stage (fun () ->
      ignore
        (Ebrc.Convexity.deviation_ratio ~samples:2048 (Ebrc.Formula.g f)
           ~lo:3.25 ~hi:3.5))

let kernel_basic_control ~kind () =
  Staged.stage (fun () ->
      let rng = Ebrc.Prng.create ~seed:5 in
      let process =
        Ebrc.Loss_process.iid_shifted_exponential rng ~p:0.1 ~cv:0.9
      in
      let formula = Ebrc.Formula.create ~rtt:1.0 kind in
      let estimator = Ebrc.Loss_interval.of_tfrc ~l:8 in
      ignore
        (Ebrc.Basic_control.simulate ~formula ~estimator ~process ~cycles:2000
           ()))

let kernel_comprehensive ~engine () =
  Staged.stage (fun () ->
      let rng = Ebrc.Prng.create ~seed:5 in
      let process =
        Ebrc.Loss_process.iid_shifted_exponential rng ~p:0.1 ~cv:0.9
      in
      let formula =
        Ebrc.Formula.create ~rtt:1.0 Ebrc.Formula.Pftk_simplified
      in
      let estimator = Ebrc.Loss_interval.of_tfrc ~l:8 in
      ignore
        (Ebrc.Comprehensive_control.simulate ~engine ~formula ~estimator
           ~process ~cycles:500 ()))

let kernel_scenario ~queue () =
  Staged.stage (fun () ->
      let cfg =
        {
          Ebrc.Scenario.default_config with
          n_tfrc = 2;
          n_tcp = 2;
          queue;
          duration = 10.0;
          warmup = 2.0;
          seed = 9;
        }
      in
      ignore (Ebrc.Scenario.run cfg))

let kernel_audio () =
  Staged.stage (fun () ->
      ignore
        (Ebrc.Audio_scenario.run
           {
             Ebrc.Audio_scenario.default_config with
             duration = 60.0;
             warmup = 6.0;
           }))

let kernel_many_sources () =
  let cp =
    [|
      { Ebrc.Many_sources.p_i = 0.001; pi_i = 0.5 };
      { Ebrc.Many_sources.p_i = 0.01; pi_i = 0.3 };
      { Ebrc.Many_sources.p_i = 0.05; pi_i = 0.2 };
    |]
  in
  let formula = Ebrc.Formula.create ~rtt:0.05 Ebrc.Formula.Pftk_standard in
  let rates =
    Ebrc.Many_sources.responsive_profile cp ~formula_rate:(fun p ->
        Ebrc.Formula.eval formula p)
  in
  Staged.stage (fun () ->
      let rng = Ebrc.Prng.create ~seed:3 in
      ignore
        (Ebrc.Many_sources.monte_carlo rng cp ~rates ~mean_sojourn:100.0
           ~steps:5000))

let kernel_few_flows () =
  Staged.stage (fun () ->
      let params =
        { Ebrc.Few_flows.alpha = 1.0; beta = 0.5; capacity = 100.0 }
      in
      ignore (Ebrc.Few_flows.simulate_aimd ~cycles:200 params);
      ignore (Ebrc.Few_flows.simulate_ebrc ~cycles:200 params))

let tests =
  Test.make_grouped ~name:"ebrc"
    [
      Test.make_grouped ~name:"components"
        [
          Test.make ~name:"formula-eval-sqrt-x100"
            (bench_formula_eval Ebrc.Formula.Sqrt);
          Test.make ~name:"formula-eval-pftk-std-x100"
            (bench_formula_eval Ebrc.Formula.Pftk_standard);
          Test.make ~name:"formula-eval-pftk-simpl-x100"
            (bench_formula_eval Ebrc.Formula.Pftk_simplified);
          Test.make ~name:"estimator-record+estimate-x100" (bench_estimator ());
          Test.make ~name:"event-queue-256" (bench_event_queue ());
          Test.make ~name:"red-offer-x100" (bench_red_offer ());
        ];
      Test.make_grouped ~name:"figures"
        [
          Test.make ~name:"fig1-functionals" (kernel_fig1 ());
          Test.make ~name:"fig2-convex-closure" (kernel_fig2 ());
          Test.make ~name:"fig3-basic-sqrt"
            (kernel_basic_control ~kind:Ebrc.Formula.Sqrt ());
          Test.make ~name:"fig3-basic-pftk"
            (kernel_basic_control ~kind:Ebrc.Formula.Pftk_simplified ());
          Test.make ~name:"fig4-basic-cv-sweep"
            (kernel_basic_control ~kind:Ebrc.Formula.Pftk_simplified ());
          Test.make ~name:"fig5-red-bottleneck"
            (kernel_scenario
               ~queue:(Ebrc.Scenario.Red_auto { capacity = 0 })
               ());
          Test.make ~name:"fig6-audio-bernoulli" (kernel_audio ());
          Test.make ~name:"fig7-loss-rate-ordering"
            (kernel_scenario
               ~queue:(Ebrc.Scenario.Red_auto { capacity = 0 })
               ());
          Test.make ~name:"fig17-droptail"
            (kernel_scenario
               ~queue:(Ebrc.Scenario.Drop_tail { capacity = 64 })
               ());
          Test.make ~name:"c3-many-sources-mc" (kernel_many_sources ());
          Test.make ~name:"c4-few-flows" (kernel_few_flows ());
        ];
      Test.make_grouped ~name:"ablations"
        [
          Test.make ~name:"comprehensive-closed-form"
            (kernel_comprehensive
               ~engine:Ebrc.Comprehensive_control.Closed_form ());
          Test.make ~name:"comprehensive-ode"
            (kernel_comprehensive
               ~engine:Ebrc.Comprehensive_control.Ode_integration ());
          Test.make ~name:"scenario-droptail"
            (kernel_scenario
               ~queue:(Ebrc.Scenario.Drop_tail { capacity = 100 })
               ());
          Test.make ~name:"scenario-red"
            (kernel_scenario
               ~queue:(Ebrc.Scenario.Red_auto { capacity = 0 })
               ());
        ];
    ]

(* Run the micro-benchmarks against both the monotonic clock and the
   minor-allocation counter, returning one (name, estimate) table per
   measure. Allocation rates are the before/after evidence for the
   simulator pooling work: a pooled hot path shows up directly as a
   drop in minor words per run. *)
let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let clock = Instance.monotonic_clock in
  let minor = Instance.minor_allocated in
  (* A full second per (test, instance): the mid-size figure kernels
     (100 us - 1 ms) swing past bench-compare's 20% gate at shorter
     quotas on a busy machine; the longer OLS window settles them. *)
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg [ clock; minor ] tests in
  let per_instance instance =
    let tbl = Analyze.all ols instance raw in
    let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
    let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
    List.filter_map
      (fun (name, ols) ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Some (name, est)
        | _ -> None)
      rows
  in
  (per_instance clock, per_instance minor)

let print_bench_results (ns_per_run, minor_per_run) =
  Printf.printf
    "#############################################################\n\
     # Bechamel micro-benchmarks (ns and minor words per run)\n\
     #############################################################\n\n";
  List.iter
    (fun (name, ns) ->
      let words =
        match List.assoc_opt name minor_per_run with
        | Some w -> Printf.sprintf "%14.0f mw/run" w
        | None -> ""
      in
      Printf.printf "  %-45s %12.0f ns/run %s\n" name ns words)
    ns_per_run

(* ------------------------------------------------------------------ *)
(* ODE engine: accuracy-vs-time frontier.                              *)
(* ------------------------------------------------------------------ *)

type frontier_point = {
  rtol : float;
  adaptive_ns : float;      (* mean per uncached adaptive solve *)
  max_rel_err : float;      (* vs the exact SQRT closed form *)
}

type frontier = {
  fixed_step_ns : float;    (* legacy RK4 at the old 1e-3 step *)
  points : frontier_point list;
}

(* The SQRT formula admits an exact closed form for the cycle duration
   (Proposition 3), so it calibrates the adaptive engine: for each
   tolerance we measure the true cost of an *uncached* solve (distinct
   theta per call defeats the memo) and the worst relative error
   against the closed form over a grid of cycle lengths. *)
let measure_ode_frontier () =
  let formula = Ebrc.Formula.create ~rtt:1.0 Ebrc.Formula.Sqrt in
  let estimator = Ebrc.Loss_interval.of_tfrc ~l:8 in
  Ebrc.Loss_interval.prime estimator 20.0;
  let thetas ~base n = Array.init n (fun i -> base +. (float_of_int i /. 8.0)) in
  let n_err = 128 and n_time = 256 in
  let time_per_call f n =
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
  in
  let fixed_step_ns =
    let ths = thetas ~base:60.0 64 in
    time_per_call
      (fun () ->
        Array.iter
          (fun theta ->
            ignore
              (Ebrc.Comprehensive_control.cycle_duration_ode ~step:1e-3
                 ~formula ~estimator ~theta ()))
          ths)
      64
  in
  let points =
    List.map
      (fun rtol ->
        let max_rel_err = ref 0.0 in
        Array.iter
          (fun theta ->
            let s =
              Ebrc.Comprehensive_control.cycle_duration_ode_adaptive ~rtol
                ~formula ~estimator ~theta ()
            in
            let c =
              Ebrc.Comprehensive_control.cycle_duration_closed ~formula
                ~estimator ~theta
            in
            max_rel_err := Float.max !max_rel_err (abs_float (s -. c) /. c))
          (thetas ~base:60.0 n_err);
        (* Fresh thetas so every timed call misses the memo. *)
        let ths = thetas ~base:120.0 n_time in
        let adaptive_ns =
          time_per_call
            (fun () ->
              Array.iter
                (fun theta ->
                  ignore
                    (Ebrc.Comprehensive_control.cycle_duration_ode_adaptive
                       ~rtol ~formula ~estimator ~theta ()))
                ths)
            n_time
        in
        { rtol; adaptive_ns; max_rel_err = !max_rel_err })
      [ 1e-3; 1e-6; 1e-9; 1e-12 ]
  in
  Printf.printf
    "#############################################################\n\
     # ODE engine: accuracy vs time (SQRT closed form as reference)\n\
     #############################################################\n\n";
  Printf.printf "  fixed-step RK4 (step 1e-3)  %12.0f ns/solve\n" fixed_step_ns;
  List.iter
    (fun p ->
      Printf.printf
        "  adaptive rtol %.0e  %12.0f ns/solve  max rel err %.2e  (%.0fx \
         vs fixed)\n"
        p.rtol p.adaptive_ns p.max_rel_err
        (fixed_step_ns /. p.adaptive_ns))
    points;
  print_newline ();
  { fixed_step_ns; points }

(* ------------------------------------------------------------------ *)
(* Freelist A/B: allocation rate and wall time, pooled vs not.         *)
(* ------------------------------------------------------------------ *)

type alloc_ab = {
  unpooled_ms : float;
  unpooled_mwords : float;     (* minor words per scenario run *)
  pooled_ms : float;
  pooled_mwords : float;
}

(* The packet/event freelists are off by default: recycled records are
   tenured, so every boxed store into them pays a write barrier plus a
   promotion, which measured slower than letting the records die in
   the minor heap. This records both sides of that trade on one
   scenario run so the regression guard keeps the decision honest. *)
let measure_alloc_ab () =
  let run_once () =
    let cfg =
      {
        Ebrc.Scenario.default_config with
        n_tfrc = 2;
        n_tcp = 2;
        queue = Ebrc.Scenario.Drop_tail { capacity = 100 };
        duration = 10.0;
        warmup = 2.0;
        seed = 9;
      }
    in
    ignore (Ebrc.Scenario.run cfg)
  in
  let measure () =
    let reps = 5 in
    let best = ref infinity in
    let w0 = Gc.minor_words () in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      run_once ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    let words = (Gc.minor_words () -. w0) /. float_of_int reps in
    (!best *. 1e3, words)
  in
  run_once ();
  let unpooled_ms, unpooled_mwords = measure () in
  Ebrc.Packet.set_pooling true;
  Ebrc.Engine.set_pooling true;
  run_once ();
  let pooled_ms, pooled_mwords = measure () in
  Ebrc.Packet.set_pooling false;
  Ebrc.Engine.set_pooling false;
  Printf.printf
    "#############################################################\n\
     # Packet/event freelist A/B (scenario run, best of 5)\n\
     #############################################################\n\n\
    \  unpooled (default)  %7.2f ms  %12.0f minor words/run\n\
    \  pooled (EBRC_POOL)  %7.2f ms  %12.0f minor words/run\n\n"
    unpooled_ms unpooled_mwords pooled_ms pooled_mwords;
  { unpooled_ms; unpooled_mwords; pooled_ms; pooled_mwords }

(* ------------------------------------------------------------------ *)
(* Telemetry ablation: compile-in instrumentation must be ~free when   *)
(* disabled (the ISSUE budget is <= 2% on the DropTail hot path), and  *)
(* the enabled counter totals at a fixed seed are deterministic, so    *)
(* they double as a scientific drift detector for bench-compare.       *)
(* ------------------------------------------------------------------ *)

type telemetry_ab = {
  telem_off_ms : float;
  telem_on_ms : float;
  telem_counters : (string * int) list;  (* fixed-seed scenario totals *)
  telem_events : int;                    (* events emitted (incl. dropped) *)
}

let measure_telemetry () =
  let run_once () =
    let cfg =
      {
        Ebrc.Scenario.default_config with
        n_tfrc = 2;
        n_tcp = 2;
        queue = Ebrc.Scenario.Drop_tail { capacity = 100 };
        duration = 10.0;
        warmup = 2.0;
        seed = 9;
      }
    in
    ignore (Ebrc.Scenario.run cfg)
  in
  let best_of reps =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      run_once ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best *. 1e3
  in
  run_once ();
  let telem_off_ms = best_of 5 in
  Ebrc.Telemetry.set_enabled true;
  Ebrc.Telemetry.reset ();
  run_once ();
  let telem_on_ms = best_of 5 in
  (* Deterministic totals: one fresh recording of the same seed. *)
  Ebrc.Telemetry.reset ();
  run_once ();
  let telem_counters =
    List.filter_map
      (fun s ->
        if s.Ebrc.Telemetry.snap_kind = Ebrc.Telemetry.Counter && s.count > 0
        then Some (s.snap_name, s.count)
        else None)
      (Ebrc.Telemetry.snapshot ())
  in
  let telem_events =
    List.length (Ebrc.Telemetry.events ()) + Ebrc.Telemetry.events_dropped ()
  in
  Ebrc.Telemetry.set_enabled false;
  Ebrc.Telemetry.reset ();
  Printf.printf
    "#############################################################\n\
     # Telemetry ablation (DropTail scenario, best of 5)\n\
     #############################################################\n\n\
    \  disabled  %7.2f ms\n\
    \  enabled   %7.2f ms  (+%.1f%%, %d counters, %d events)\n\n"
    telem_off_ms telem_on_ms
    (100.0 *. ((telem_on_ms /. telem_off_ms) -. 1.0))
    (List.length telem_counters) telem_events;
  { telem_off_ms; telem_on_ms; telem_counters; telem_events }

(* ------------------------------------------------------------------ *)
(* FIFO-lane A/B: the k-way lane merge vs the pure binary heap.        *)
(* ------------------------------------------------------------------ *)

type lanes_ab = {
  lane_droptail_ms : float;
  heap_droptail_ms : float;
  lane_red_ms : float;
  heap_red_ms : float;
  lanes_identical : bool;  (* serialized results byte-identical *)
}

(* Shared scenario configs and best-of timer for the scheduler A/Bs. *)
let ab_cfg queue =
  {
    Ebrc.Scenario.default_config with
    n_tfrc = 2;
    n_tcp = 2;
    queue;
    duration = 10.0;
    warmup = 2.0;
    seed = 9;
  }

let ab_droptail = ab_cfg (Ebrc.Scenario.Drop_tail { capacity = 100 })
let ab_red = ab_cfg (Ebrc.Scenario.Red_auto { capacity = 0 })

let ab_best_of reps cfg =
  ignore (Ebrc.Scenario.run cfg);
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Ebrc.Scenario.run cfg);
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best *. 1e3

(* The lane merge reproduces the heap's pop order exactly (lanes draw
   tie-break tickets from the heap's own sequence counter), so besides
   the timing both arms must serialize to the same bytes. The wheel is
   held off for the whole measurement: in wheel mode no lane ever
   registers, so lanes-vs-heap is only observable on the heap path. *)
let measure_lanes_ab () =
  Ebrc.Engine.set_wheel false;
  let lane_droptail_ms, lane_red_ms, lane_bytes =
    Fun.protect
      ~finally:(fun () -> Ebrc.Engine.set_wheel true)
      (fun () ->
        let d = ab_best_of 7 ab_droptail in
        let r = ab_best_of 7 ab_red in
        let b =
          Ebrc.Result_cache.serialize_result (Ebrc.Scenario.run ab_droptail)
        in
        (d, r, b))
  in
  Ebrc.Engine.set_wheel false;
  Ebrc.Engine.set_fast_lanes false;
  let heap_droptail_ms, heap_red_ms, heap_bytes =
    Fun.protect
      ~finally:(fun () ->
        Ebrc.Engine.set_fast_lanes true;
        Ebrc.Engine.set_wheel true)
      (fun () ->
        ( ab_best_of 7 ab_droptail,
          ab_best_of 7 ab_red,
          Ebrc.Result_cache.serialize_result (Ebrc.Scenario.run ab_droptail) ))
  in
  let lanes_identical = String.equal lane_bytes heap_bytes in
  Printf.printf
    "#############################################################\n\
     # FIFO-lane A/B (scenario run, best of 7)\n\
     #############################################################\n\n\
    \  droptail: lanes %7.2f ms  heap %7.2f ms  speedup %.2fx\n\
    \  red:      lanes %7.2f ms  heap %7.2f ms  speedup %.2fx\n\
    \  bit-identical results: %b\n\n"
    lane_droptail_ms heap_droptail_ms
    (heap_droptail_ms /. lane_droptail_ms)
    lane_red_ms heap_red_ms
    (heap_red_ms /. lane_red_ms)
    lanes_identical;
  { lane_droptail_ms; heap_droptail_ms; lane_red_ms; heap_red_ms;
    lanes_identical }

(* ------------------------------------------------------------------ *)
(* Streaming-telemetry ablation: the delta stream must cost nothing    *)
(* when disabled, and when live it may only observe — the streamed     *)
(* run must serialize byte-identically to the silent one.              *)
(* ------------------------------------------------------------------ *)

type stream_ablation = {
  stream_off_ms : float;    (* telemetry off, stream off (baseline) *)
  stream_on_ms : float;     (* telemetry on, stream live, 1 s cadence *)
  stream_deltas : int;      (* delta records written by the timed arm *)
  stream_identical : bool;  (* streamed run == silent run, bytes *)
}

let measure_stream_ablation () =
  let module Stream = Ebrc.Telemetry_stream in
  (* Baseline arm: everything off. This is the configuration every
     non-observed run pays for, so bench/compare.ml holds it against
     the telemetry ablation's own disabled_ms (same config, same
     seed). *)
  let stream_off_ms = ab_best_of 5 ab_droptail in
  let off_bytes =
    Ebrc.Result_cache.serialize_result (Ebrc.Scenario.run ab_droptail)
  in
  (* Live arm: registry on, stream on, wall progress off (progress
     records are wall-dependent; the sim-time deltas are the product
     being priced here). *)
  let path = Filename.temp_file "ebrc_stream_ab" ".jsonl" in
  Ebrc.Telemetry.set_enabled true;
  Ebrc.Telemetry.reset ();
  Stream.enable ~path ~period_sim:1.0 ~period_wall:0.0;
  let stream_on_ms, on_bytes =
    Fun.protect
      ~finally:(fun () ->
        Stream.disable ();
        Ebrc.Telemetry.set_enabled false;
        Ebrc.Telemetry.reset ())
      (fun () ->
        ( ab_best_of 5 ab_droptail,
          Ebrc.Result_cache.serialize_result (Ebrc.Scenario.run ab_droptail) ))
  in
  let stream_deltas =
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         let tag = "{\"type\":\"delta\"" in
         if
           String.length line >= String.length tag
           && String.sub line 0 (String.length tag) = tag
         then incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  in
  (try Sys.remove path with Sys_error _ -> ());
  let stream_identical = String.equal off_bytes on_bytes in
  Printf.printf
    "#############################################################\n\
     # Streaming-telemetry ablation (DropTail scenario, best of 5)\n\
     #############################################################\n\n\
    \  silent              %7.2f ms\n\
    \  streaming (1 s)     %7.2f ms  (+%.1f%%, %d delta records)\n\
    \  streamed == silent bytes: %b\n\n"
    stream_off_ms stream_on_ms
    (100.0 *. ((stream_on_ms /. stream_off_ms) -. 1.0))
    stream_deltas stream_identical;
  { stream_off_ms; stream_on_ms; stream_deltas; stream_identical }

(* ------------------------------------------------------------------ *)
(* Timing-wheel A/B: wheel vs FIFO lanes vs pure heap.                 *)
(* ------------------------------------------------------------------ *)

type wheel_ab = {
  wheel_droptail_ms : float;
  wheel_lanes_droptail_ms : float;
  wheel_heap_droptail_ms : float;
  wheel_red_ms : float;
  wheel_lanes_red_ms : float;
  wheel_heap_red_ms : float;
  wheel_identical : bool;
      (* droptail results byte-identical across all three schedulers *)
}

(* The wheel draws tie-break tickets from the heap's shared sequence
   counter and extracts the exact (time, seq) minimum, so all three
   scheduler modes must serialize a scenario to the same bytes; the
   gate in bench/compare.ml treats anything else as fatal. *)
let measure_wheel_ab () =
  let run_mode ~wheel ~lanes =
    Ebrc.Engine.set_wheel wheel;
    Ebrc.Engine.set_fast_lanes lanes;
    Fun.protect
      ~finally:(fun () ->
        Ebrc.Engine.set_wheel true;
        Ebrc.Engine.set_fast_lanes true)
      (fun () ->
        let d = ab_best_of 7 ab_droptail in
        let r = ab_best_of 7 ab_red in
        let b =
          Ebrc.Result_cache.serialize_result (Ebrc.Scenario.run ab_droptail)
        in
        (d, r, b))
  in
  let wheel_droptail_ms, wheel_red_ms, wheel_bytes =
    run_mode ~wheel:true ~lanes:true
  in
  let wheel_lanes_droptail_ms, wheel_lanes_red_ms, lane_bytes =
    run_mode ~wheel:false ~lanes:true
  in
  let wheel_heap_droptail_ms, wheel_heap_red_ms, heap_bytes =
    run_mode ~wheel:false ~lanes:false
  in
  let wheel_identical =
    String.equal wheel_bytes lane_bytes && String.equal wheel_bytes heap_bytes
  in
  Printf.printf
    "#############################################################\n\
     # Timing-wheel A/B (scenario run, best of 7)\n\
     #############################################################\n\n\
    \  droptail: wheel %7.2f ms  lanes %7.2f ms  heap %7.2f ms  \
     speedup vs heap %.2fx\n\
    \  red:      wheel %7.2f ms  lanes %7.2f ms  heap %7.2f ms  \
     speedup vs heap %.2fx\n\
    \  bit-identical results: %b\n\n"
    wheel_droptail_ms wheel_lanes_droptail_ms wheel_heap_droptail_ms
    (wheel_heap_droptail_ms /. wheel_droptail_ms)
    wheel_red_ms wheel_lanes_red_ms wheel_heap_red_ms
    (wheel_heap_red_ms /. wheel_red_ms)
    wheel_identical;
  { wheel_droptail_ms; wheel_lanes_droptail_ms; wheel_heap_droptail_ms;
    wheel_red_ms; wheel_lanes_red_ms; wheel_heap_red_ms; wheel_identical }

(* ------------------------------------------------------------------ *)
(* 100k-flow scale point: scheduler cost with 10^5 pending events.     *)
(* ------------------------------------------------------------------ *)

type flows100k = {
  fl_flows : int;
  fl_events : int;
  fl_wheel_ns : float;     (* ns per packet tick, wheel scheduler *)
  fl_heap_ns : float;      (* ns per packet tick, pure heap *)
  fl_identical : bool;     (* dispatch-order fingerprints equal *)
}

(* Scenario benches hold a few dozen pending events — heap depth ~5 —
   so they can't see the scheduler's asymptotic cost. The flock pins
   ~10^5 events in the pending set, where a binary heap pays ~17
   cache-missing sift levels per operation and the wheel stays O(1).
   Flock members are deliberately minimal (bump a sequence number,
   fold the dispatch fingerprint, reschedule) so ns/packet is
   scheduler cost, not protocol work. *)
let measure_flows100k () =
  let flows = 100_000 and duration = 10.0 and seed = 1 in
  let leg () =
    let best = ref infinity in
    let stats = ref None in
    for _ = 1 to 3 do
      Gc.full_major ();
      let t0 = Unix.gettimeofday () in
      let s = Ebrc.Flock.run ~flows ~duration ~seed () in
      best := Float.min !best (Unix.gettimeofday () -. t0);
      stats := Some s
    done;
    let s = Option.get !stats in
    (!best *. 1e9 /. float s.Ebrc.Flock.events, s)
  in
  Ebrc.Engine.set_wheel true;
  let fl_wheel_ns, wheel_stats = leg () in
  Ebrc.Engine.set_wheel false;
  let fl_heap_ns, heap_stats =
    Fun.protect ~finally:(fun () -> Ebrc.Engine.set_wheel true) leg
  in
  let fl_identical =
    wheel_stats.Ebrc.Flock.fingerprint = heap_stats.Ebrc.Flock.fingerprint
    && wheel_stats.Ebrc.Flock.events = heap_stats.Ebrc.Flock.events
  in
  Printf.printf
    "#############################################################\n\
     # 100k-flow scale point (%d flows, %d events, best of 3)\n\
     #############################################################\n\n\
    \  wheel %7.1f ns/packet   heap %7.1f ns/packet   speedup %.2fx\n\
    \  bit-identical dispatch order: %b\n\n"
    flows wheel_stats.Ebrc.Flock.events fl_wheel_ns fl_heap_ns
    (fl_heap_ns /. fl_wheel_ns) fl_identical;
  { fl_flows = flows; fl_events = wheel_stats.Ebrc.Flock.events;
    fl_wheel_ns; fl_heap_ns; fl_identical }

(* ------------------------------------------------------------------ *)
(* flows1m: the hybrid packet/fluid scale point.                       *)
(* ------------------------------------------------------------------ *)

type flows1m = {
  f1_fg : int;
  f1_bg : int;                (* fluid background flows *)
  f1_events : int;
  f1_ns_per_event : float;
  f1_ratio_vs_flows100k : float;
      (* hybrid ns/event over the packet-only flows100k wheel leg; the
         ISSUE target is <= 2x *)
  f1_fluid_advances : int;
  f1_identical : bool;        (* equal-seed reruns agree on fingerprint *)
}

(* 20k packet-level foreground flows through a DropTail bottleneck
   while the fluid carries the background aggregate — 200k flows in
   quick mode, the full 10^6 under EBRC_BENCH_FULL=1. The fluid's ODE
   cost is independent of bg_flows (two state variables either way),
   which is the whole point of the hybrid: the measured ns/event must
   stay within 2x of the packet-only flows100k scheduler bench. *)
let measure_flows1m (packet_only : flows100k) =
  let fg_flows = 20_000 and duration = 10.0 and seed = 1 in
  let bg_flows = if quick then 200_000 else 1_000_000 in
  let best = ref infinity in
  let last = ref None in
  let identical = ref true in
  for _ = 1 to 3 do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let (s : Ebrc.Flock.hybrid_stats) =
      Ebrc.Flock.run_hybrid ~fg_flows ~bg_flows ~duration ~seed ()
    in
    best := Float.min !best (Unix.gettimeofday () -. t0);
    (match !last with
    | Some (prev : Ebrc.Flock.hybrid_stats) ->
        identical :=
          !identical
          && prev.fingerprint = s.fingerprint
          && prev.events = s.events
    | None -> ());
    last := Some s
  done;
  let (s : Ebrc.Flock.hybrid_stats) = Option.get !last in
  let f1_ns_per_event = !best *. 1e9 /. float_of_int s.events in
  let f1_fluid_advances =
    match s.fluid with Some f -> f.Ebrc.Fluid.advances | None -> 0
  in
  let f1_ratio_vs_flows100k = f1_ns_per_event /. packet_only.fl_wheel_ns in
  Printf.printf
    "#############################################################\n\
     # flows1m hybrid scale point (%d fg + %d fluid bg, best of 3)\n\
     #############################################################\n\n\
    \  %7.1f ns/event (%d events, %d fluid advances)\n\
    \  vs flows100k wheel: %.2fx (target <= 2x %s)\n\
    \  equal-seed reruns bit-identical: %b\n\n"
    fg_flows bg_flows f1_ns_per_event s.events f1_fluid_advances
    f1_ratio_vs_flows100k
    (if f1_ratio_vs_flows100k <= 2.0 then "met" else "missed")
    !identical;
  { f1_fg = fg_flows; f1_bg = bg_flows; f1_events = s.events;
    f1_ns_per_event; f1_ratio_vs_flows100k; f1_fluid_advances;
    f1_identical = !identical }

(* ------------------------------------------------------------------ *)
(* Hybrid ablation: background-free vs hybrid-disabled (must be byte-  *)
(* identical) vs hybrid live.                                          *)
(* ------------------------------------------------------------------ *)

type hybrid_ablation = {
  hyb_none_ms : float;      (* config carries no background *)
  hyb_off_ms : float;       (* background configured, layer ablated *)
  hyb_on_ms : float;        (* fluid background live *)
  hyb_identical : bool;     (* disabled run == background-free run *)
}

(* The EBRC_HYBRID=0 contract: with the layer ablated, a config that
   carries a fluid background must serialize byte-identically to the
   same config with no background at all — nothing may attach to the
   link or the engine. bench/compare.ml fails on a [false] here. *)
let measure_hybrid_ablation () =
  (* 8 background flows: enough to contend for the 15 Mb/s default
     link without starving the foreground (10^4+ flows would pin the
     fluid at its cap and the live arm would measure a degenerate,
     nearly packet-free run). *)
  let with_bg =
    { (ab_cfg (Ebrc.Scenario.Red_auto { capacity = 0 })) with
      Ebrc.Scenario.background =
        Some (Ebrc.Scenario.default_background ~flows:8) }
  in
  let clean = { with_bg with Ebrc.Scenario.background = None } in
  let prior = Ebrc.Fluid.enabled () in
  Ebrc.Fluid.set_hybrid true;
  let hyb_none_ms, hyb_on_ms, none_bytes =
    Fun.protect
      ~finally:(fun () -> Ebrc.Fluid.set_hybrid prior)
      (fun () ->
        ( ab_best_of 5 clean,
          ab_best_of 5 with_bg,
          Ebrc.Result_cache.serialize_result (Ebrc.Scenario.run clean) ))
  in
  Ebrc.Fluid.set_hybrid false;
  let hyb_off_ms, off_bytes =
    Fun.protect
      ~finally:(fun () -> Ebrc.Fluid.set_hybrid prior)
      (fun () ->
        ( ab_best_of 5 with_bg,
          Ebrc.Result_cache.serialize_result (Ebrc.Scenario.run with_bg) ))
  in
  let hyb_identical = String.equal none_bytes off_bytes in
  Printf.printf
    "#############################################################\n\
     # Hybrid packet/fluid ablation (RED scenario, best of 5)\n\
     #############################################################\n\n\
    \  no background      %7.2f ms\n\
    \  hybrid disabled    %7.2f ms (EBRC_HYBRID=0 arm)\n\
    \  hybrid live        %7.2f ms (overhead %+.1f%%)\n\
    \  disabled == background-free bytes: %b\n\n"
    hyb_none_ms hyb_off_ms hyb_on_ms
    (100.0 *. ((hyb_on_ms /. hyb_none_ms) -. 1.0))
    hyb_identical;
  { hyb_none_ms; hyb_off_ms; hyb_on_ms; hyb_identical }

(* ------------------------------------------------------------------ *)
(* Fault-injection A/B: fault-free vs faults-disabled (must be byte-   *)
(* identical) vs faults live (cost of a blackout schedule).            *)
(* ------------------------------------------------------------------ *)

type faults_ab = {
  faults_none_ms : float;      (* config carries no faults *)
  faults_disabled_ms : float;  (* faults configured, layer ablated *)
  faults_enabled_ms : float;   (* faults configured and live *)
  faults_identical : bool;     (* disabled run == fault-free run, bytes *)
}

let measure_faults_ab () =
  let faulted =
    {
      Ebrc.Scenario.default_config with
      n_tfrc = 2;
      n_tcp = 2;
      duration = 60.0;
      warmup = 15.0;
      seed = 71;
      faults =
        Some
          { Ebrc.Fault.none with
            Ebrc.Fault.blackouts =
              [ { Ebrc.Fault.start = 20.0; length = 8.0; period = 30.0 } ] };
    }
  in
  let clean = { faulted with Ebrc.Scenario.faults = None } in
  let best_of reps cfg =
    ignore (Ebrc.Scenario.run cfg);
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (Ebrc.Scenario.run cfg);
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best *. 1e3
  in
  let faults_none_ms = best_of 5 clean in
  let none_bytes = Ebrc.Result_cache.serialize_result (Ebrc.Scenario.run clean) in
  let faults_enabled_ms = best_of 5 faulted in
  Ebrc.Fault.set_enabled false;
  let faults_disabled_ms, disabled_bytes =
    Fun.protect
      ~finally:(fun () -> Ebrc.Fault.set_enabled true)
      (fun () ->
        ( best_of 5 faulted,
          Ebrc.Result_cache.serialize_result (Ebrc.Scenario.run faulted) ))
  in
  let faults_identical = String.equal none_bytes disabled_bytes in
  Printf.printf
    "#############################################################\n\
     # Fault-injection A/B (blackout scenario, best of 5)\n\
     #############################################################\n\n\
    \  fault-free       %7.2f ms\n\
    \  faults disabled  %7.2f ms (EBRC_FAULTS=0 arm)\n\
    \  faults live      %7.2f ms (overhead %+.1f%%)\n\
    \  disabled == fault-free bytes: %b\n\n"
    faults_none_ms faults_disabled_ms faults_enabled_ms
    (100.0 *. ((faults_enabled_ms /. faults_none_ms) -. 1.0))
    faults_identical;
  { faults_none_ms; faults_disabled_ms; faults_enabled_ms; faults_identical }

(* ------------------------------------------------------------------ *)
(* Geometric gap-skip A/B: one geometric draw per loss event vs one    *)
(* uniform draw per packet.                                            *)
(* ------------------------------------------------------------------ *)

type gap_skip_ab = {
  gap_skip_ns : float;        (* ns per offered packet *)
  per_packet_ns : float;
  gap_skip_drop_rate : float;
  per_packet_drop_rate : float;
}

let measure_gap_skip () =
  let n = 2_000_000 and p = 0.01 in
  let pkt = Ebrc.Packet.data ~flow:0 ~seq:0 ~size:1000 ~sent_at:0.0 in
  let run () =
    let lm = Ebrc.Loss_module.bernoulli (Ebrc.Prng.create ~seed:13) ~p in
    let dropped = ref 0 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      if not (Ebrc.Loss_module.process lm pkt) then incr dropped
    done;
    let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n in
    (ns, float_of_int !dropped /. float_of_int n)
  in
  let best_of reps =
    ignore (run ());
    let best_ns = ref infinity and rate = ref 0.0 in
    for _ = 1 to reps do
      let ns, r = run () in
      if ns < !best_ns then begin
        best_ns := ns;
        rate := r
      end
    done;
    (!best_ns, !rate)
  in
  let gap_skip_ns, gap_skip_drop_rate = best_of 5 in
  Ebrc.Loss_module.set_gap_skip false;
  let per_packet_ns, per_packet_drop_rate =
    Fun.protect
      ~finally:(fun () -> Ebrc.Loss_module.set_gap_skip true)
      (fun () -> best_of 5)
  in
  Printf.printf
    "#############################################################\n\
     # Bernoulli loss sampling A/B (%d packets, p = %g, best of 5)\n\
     #############################################################\n\n\
    \  gap-skip    %6.2f ns/pkt  drop rate %.5f\n\
    \  per-packet  %6.2f ns/pkt  drop rate %.5f\n\
    \  speedup %.2fx (statistically equivalent, different RNG streams)\n\n"
    n p gap_skip_ns gap_skip_drop_rate per_packet_ns per_packet_drop_rate
    (per_packet_ns /. gap_skip_ns);
  { gap_skip_ns; per_packet_ns; gap_skip_drop_rate; per_packet_drop_rate }

(* ------------------------------------------------------------------ *)
(* Scenario result cache: cold vs warm, with hit/miss counters.        *)
(* ------------------------------------------------------------------ *)

type cache_measure = {
  cache_cold_ms : float;
  cache_warm_ms : float;       (* two repeat lookups of the cold run *)
  cache_counters : (string * int) list;  (* the cache.* telemetry *)
}

(* Mirrors the real duplication in the figure suite: fig5, fig7 and the
   scenario-red ablation all simulate the same RED config at seed 9, so
   a warm cache pays one simulation for all three. *)
let measure_cache () =
  let cfg =
    {
      Ebrc.Scenario.default_config with
      n_tfrc = 2;
      n_tcp = 2;
      queue = Ebrc.Scenario.Red_auto { capacity = 0 };
      duration = 10.0;
      warmup = 2.0;
      seed = 9;
    }
  in
  Ebrc.Result_cache.clear_memory ();
  Ebrc.Result_cache.reset_stats ();
  Ebrc.Telemetry.set_enabled true;
  Ebrc.Telemetry.reset ();
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0) *. 1e3
  in
  let cache_cold_ms = time (fun () -> ignore (Ebrc.Result_cache.run cfg)) in
  let cache_warm_ms =
    time (fun () ->
        ignore (Ebrc.Result_cache.run cfg);
        ignore (Ebrc.Result_cache.run cfg))
  in
  let cache_counters =
    List.filter_map
      (fun s ->
        let name = s.Ebrc.Telemetry.snap_name in
        if
          s.Ebrc.Telemetry.snap_kind = Ebrc.Telemetry.Counter
          && String.length name > 6
          && String.sub name 0 6 = "cache."
        then Some (name, s.count)
        else None)
      (Ebrc.Telemetry.snapshot ())
  in
  Ebrc.Telemetry.set_enabled false;
  Ebrc.Telemetry.reset ();
  Printf.printf
    "#############################################################\n\
     # Scenario result cache (RED scenario, cold run then 2 lookups)\n\
     #############################################################\n\n\
    \  cold (miss)      %8.2f ms\n\
    \  warm (2 hits)    %8.2f ms\n"
    cache_cold_ms cache_warm_ms;
  List.iter
    (fun (k, v) -> Printf.printf "  %-18s %d\n" k v)
    cache_counters;
  print_newline ();
  { cache_cold_ms; cache_warm_ms; cache_counters }

(* ------------------------------------------------------------------ *)
(* Part 3: domain-pool speedup on a real figure sweep.                 *)
(* ------------------------------------------------------------------ *)

type speedup = {
  figure : string;
  par_jobs : int;
  serial_seconds : float;     (* compute: cache off, memo cleared per leg *)
  parallel_seconds : float;   (* compute: same sweep through the pool *)
  warm_lookup_seconds : float; (* same sweep, memo warm: lookups only *)
  deterministic : bool;       (* tables byte-identical at 1 and N jobs *)
}

(* Figure 6 is simulator-heavy — every sweep point is a full
   packet-level scenario run — and its quick grid (9 points) clears
   the figure runners' serial-fallback threshold, so the pool actually
   engages (figure 17's quick grid of 4 does not: timing it compares
   serial against serial). The shared pool is warmed (spawned and
   exercised) before any timing, runs alternate serial/parallel, and
   each mode reports its best of [reps].

   Honesty of the recorded speedup: both compute arms run with the
   result cache disabled AND the in-memory memo cleared before every
   leg, so they time simulation, never lookups. The separate
   [warm_lookup_seconds] arm times a memoized figure (17 — its points
   all route through Result_cache; figure 6's audio runs do not) with
   a warm memo — published so the record shows the lookup-vs-compute
   gap instead of silently blending the two. The [deterministic] flag
   asserts the pool's contract: tables byte-identical at 1 and N
   jobs. *)
let measure_parallel_sweep () =
  let fig = "6" in
  let fig_warm = "17" in
  let par_jobs = max 2 (min 4 jobs) in
  let reps = 5 in
  Ebrc.Result_cache.set_enabled false;
  Printf.printf
    "#############################################################\n\
     # Parallel figure sweep: figure %s at 1 vs %d jobs (best of %d)\n\
     #############################################################\n\n%!"
    fig par_jobs reps;
  let pool = Ebrc.Pool.shared ~domains:par_jobs () in
  ignore (Ebrc.Pool.map pool (fun x -> x * x) (Array.init 64 Fun.id));
  let csv_of tables = String.concat "\n" (List.map Ebrc.Table.to_csv tables) in
  let time_run ~jobs =
    (* Per-leg clear: even with the cache disabled nothing is memoized,
       but the clear keeps the compute arms honest against any future
       change to the cache-off semantics. Then settle the heap so
       earlier phases' garbage doesn't land its collection cost on one
       arm of the comparison. *)
    Ebrc.Result_cache.clear_memory ();
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let tables = Ebrc.Figures.run_one ~jobs ~quick:true fig in
    (Unix.gettimeofday () -. t0, csv_of tables)
  in
  (* Untimed warm-up of both paths. *)
  let _, serial_csv = time_run ~jobs:1 in
  let _, parallel_csv = time_run ~jobs:par_jobs in
  let deterministic = String.equal serial_csv parallel_csv in
  let serial_seconds = ref infinity and parallel_seconds = ref infinity in
  for _ = 1 to reps do
    let s, _ = time_run ~jobs:1 in
    serial_seconds := Float.min !serial_seconds s;
    let p, _ = time_run ~jobs:par_jobs in
    parallel_seconds := Float.min !parallel_seconds p
  done;
  let serial_seconds = !serial_seconds
  and parallel_seconds = !parallel_seconds in
  (* Lookup arm: cache on, memo warmed by one untimed pass. *)
  Ebrc.Result_cache.set_enabled true;
  Ebrc.Result_cache.clear_memory ();
  ignore (Ebrc.Figures.run_one ~jobs:1 ~quick:true fig_warm);
  let warm_lookup_seconds = ref infinity in
  for _ = 1 to reps do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    ignore (Ebrc.Figures.run_one ~jobs:1 ~quick:true fig_warm);
    warm_lookup_seconds :=
      Float.min !warm_lookup_seconds (Unix.gettimeofday () -. t0)
  done;
  let warm_lookup_seconds = !warm_lookup_seconds in
  Ebrc.Result_cache.clear_memory ();
  Printf.printf
    "  serial       %.2f s (compute, cache off)\n\
    \  parallel     %.2f s (%d jobs)\n\
    \  speedup      %.2fx\n\
    \  warm lookup  %.4f s (figure 17, memo hits only)\n\
    \  deterministic: %b\n\n"
    serial_seconds parallel_seconds par_jobs
    (serial_seconds /. parallel_seconds)
    warm_lookup_seconds deterministic;
  { figure = fig; par_jobs; serial_seconds; parallel_seconds;
    warm_lookup_seconds; deterministic }

(* ------------------------------------------------------------------ *)
(* Part 4: the multi-process sweep service (ebrc serve / worker).      *)
(* ------------------------------------------------------------------ *)

type sweep_service = {
  svc_tasks : int;
  svc_serial_seconds : float;    (* in-process run + store_to per task *)
  svc_worker1_seconds : float;   (* ebrc serve --workers 1, cold store *)
  svc_worker4_seconds : float;   (* ebrc serve --workers 4, cold store *)
  svc_warm_resume_seconds : float; (* re-serve over the populated store *)
  svc_store_identical : bool;    (* 4-worker store bytes == serial bytes *)
}

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

(* A store's identity is the multiset of (record name, record bytes):
   names are content digests, so equal fingerprints mean the same
   result set with byte-identical payloads. *)
let store_fingerprint dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> "<unreadable>"
  | entries ->
      let buf = Buffer.create 4096 in
      Array.to_list entries |> List.sort String.compare
      |> List.iter (fun e ->
             if Filename.check_suffix e ".json" then begin
               Buffer.add_string buf e;
               Buffer.add_char buf '\000';
               let ic = open_in_bin (Filename.concat dir e) in
               Fun.protect
                 ~finally:(fun () -> close_in_noerr ic)
                 (fun () ->
                   Buffer.add_string buf
                     (really_input_string ic (in_channel_length ic)));
               Buffer.add_char buf '\000'
             end);
      Buffer.contents buf

(* The service arms exec the real CLI: the bench process has live
   domains (the shared pool), so forking workers in-process is off the
   table — and exec'ing `ebrc serve` measures the product, not a
   stand-in. *)
let ebrc_binary () =
  let p =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/ebrc_cli.exe"
  in
  if Sys.file_exists p then Some p else None

let measure_sweep_service () =
  let tasks = 6 in
  (* Long enough that per-task simulation dominates worker spawn and
     watch-loop overhead — the cold arms should measure compute. *)
  let m = Ebrc_serve.Manifest.demo ~tasks ~duration:300.0 () in
  Printf.printf
    "#############################################################\n\
     # Sweep service: %d tasks, serial vs 1 vs 4 workers, warm resume\n\
     #############################################################\n\n%!"
    tasks;
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ebrc-bench-serve.%d" (Unix.getpid ()))
  in
  rm_rf root;
  Unix.mkdir root 0o755;
  Fun.protect ~finally:(fun () -> rm_rf root)
  @@ fun () ->
  (* Serial reference arm: run + publish in-process, no queue. *)
  let serial_store = Filename.concat root "serial-store" in
  Unix.mkdir serial_store 0o755;
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun cfg ->
      Ebrc.Result_cache.store_to ~dir:serial_store cfg (Ebrc.Scenario.run cfg))
    m.Ebrc_serve.Manifest.tasks;
  let svc_serial_seconds = Unix.gettimeofday () -. t0 in
  match ebrc_binary () with
  | None ->
      Printf.printf
        "  serial    %.2f s\n\
        \  service arms skipped: bin/ebrc_cli.exe not found next to the \
         bench binary\n\n"
        svc_serial_seconds;
      { svc_tasks = tasks; svc_serial_seconds; svc_worker1_seconds = nan;
        svc_worker4_seconds = nan; svc_warm_resume_seconds = nan;
        svc_store_identical = false }
  | Some ebrc ->
      let manifest_path = Filename.concat root "sweep.json" in
      Ebrc_serve.Manifest.save ~path:manifest_path m;
      let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
      let serve ~queue ~workers =
        let argv =
          [|
            ebrc; "serve"; manifest_path; "--queue"; queue; "--workers";
            string_of_int workers; "--quiet";
          |]
        in
        let t0 = Unix.gettimeofday () in
        let pid =
          Unix.create_process ebrc argv Unix.stdin devnull Unix.stderr
        in
        let _, status = Unix.waitpid [] pid in
        (match status with
        | Unix.WEXITED 0 -> ()
        | _ -> Printf.eprintf "bench: ebrc serve exited abnormally\n%!");
        Unix.gettimeofday () -. t0
      in
      let q1 = Filename.concat root "q1" and q4 = Filename.concat root "q4" in
      let svc_worker1_seconds = serve ~queue:q1 ~workers:1 in
      let svc_worker4_seconds = serve ~queue:q4 ~workers:4 in
      let svc_warm_resume_seconds = serve ~queue:q4 ~workers:4 in
      Unix.close devnull;
      let svc_store_identical =
        String.equal
          (store_fingerprint serial_store)
          (store_fingerprint (Filename.concat q4 "store"))
      in
      let rate s = float_of_int tasks /. s in
      Printf.printf
        "  serial       %.2f s (%.1f tasks/s, in-process)\n\
        \  1 worker     %.2f s (%.1f tasks/s)\n\
        \  4 workers    %.2f s (%.1f tasks/s)\n\
        \  warm resume  %.4f s (%.0fx faster than 4-worker cold)\n\
        \  store identical to serial: %b\n\n"
        svc_serial_seconds (rate svc_serial_seconds)
        svc_worker1_seconds (rate svc_worker1_seconds)
        svc_worker4_seconds (rate svc_worker4_seconds)
        svc_warm_resume_seconds
        (svc_worker4_seconds /. svc_warm_resume_seconds)
        svc_store_identical;
      { svc_tasks = tasks; svc_serial_seconds; svc_worker1_seconds;
        svc_worker4_seconds; svc_warm_resume_seconds; svc_store_identical }

(* Chaos soak: the same manifest served twice — once fault-free (the
   reference), once under the fault-injecting shim plus the chaos
   monkey (random worker SIGKILLs), followed by a scrub and a
   fault-free resume. The headline is correctness, not speed: the
   resumed store must be byte-identical to the fault-free reference —
   faults may cost retries and wall-clock, never bytes. *)
type chaos_soak = {
  cs_tasks : int;
  cs_baseline_seconds : float;  (* fault-free serve, cold store *)
  cs_soak_seconds : float;      (* serve under --chaos + --chaos-kill *)
  cs_resume_seconds : float;    (* fault-free resume over the soaked queue *)
  cs_soak_exit : int;           (* soak exit code (1 = degraded, expected) *)
  cs_scrub_quarantined : int;   (* records quarantined after the soak *)
  cs_store_identical : bool;    (* resumed store bytes == reference bytes *)
}

let measure_chaos_soak () =
  let tasks = 6 in
  (* Long enough per task (~2.5 s wall) that the chaos monkey's 0.5–2 s
     kill schedule lands mid-simulation; quick mode shortens the soak
     but still eats several kills. *)
  let duration = if quick then 1200.0 else 3000.0 in
  let m = Ebrc_serve.Manifest.demo ~tasks ~duration () in
  Printf.printf
    "#############################################################\n\
     # Chaos soak: %d tasks under injected I/O faults + worker kills\n\
     #############################################################\n\n%!"
    tasks;
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ebrc-bench-chaos.%d" (Unix.getpid ()))
  in
  rm_rf root;
  Unix.mkdir root 0o755;
  Fun.protect ~finally:(fun () -> rm_rf root)
  @@ fun () ->
  match ebrc_binary () with
  | None ->
      Printf.printf
        "  chaos soak skipped: bin/ebrc_cli.exe not found next to the bench \
         binary\n\n";
      { cs_tasks = tasks; cs_baseline_seconds = nan; cs_soak_seconds = nan;
        cs_resume_seconds = nan; cs_soak_exit = -1; cs_scrub_quarantined = -1;
        cs_store_identical = false }
  | Some ebrc ->
      let manifest_path = Filename.concat root "soak.json" in
      Ebrc_serve.Manifest.save ~path:manifest_path m;
      let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644 in
      let serve ?(env = []) ~queue extra =
        let argv =
          Array.of_list
            ([ ebrc; "serve"; manifest_path; "--queue"; queue; "--workers";
               "2"; "--quiet" ]
            @ extra)
        in
        let full_env = Array.append (Unix.environment ()) (Array.of_list env) in
        let t0 = Unix.gettimeofday () in
        let pid =
          Unix.create_process_env ebrc argv full_env Unix.stdin devnull
            devnull
        in
        let _, status = Unix.waitpid [] pid in
        let code =
          match status with Unix.WEXITED c -> c | _ -> 255
        in
        (Unix.gettimeofday () -. t0, code)
      in
      let qref = Filename.concat root "qref"
      and qsoak = Filename.concat root "qsoak" in
      (* Fault-free reference arm. *)
      let cs_baseline_seconds, base_code = serve ~queue:qref [] in
      if base_code <> 0 then
        Printf.eprintf "bench: fault-free reference serve exited %d\n%!"
          base_code;
      (* Soak arm: I/O faults in workers, lease-churn-friendly knobs,
         and the supervisor's chaos monkey killing workers. Exit 1
         (poisoned/failed tasks) is an expected soak outcome. *)
      let cs_soak_seconds, cs_soak_exit =
        serve ~queue:qsoak
          ~env:[ "EBRC_LEASE_GRACE=2" ]
          [ "--ttl"; "5"; "--watchdog"; "15"; "--chaos"; "99";
            "--chaos-kill"; "42" ]
      in
      (* Scrub the battered store, then resume fault-free: publication
         is idempotent, so the sweep self-heals to the reference. *)
      let soak_store = Filename.concat qsoak "store" in
      let scrub_report = Ebrc.Result_cache.scrub ~dir:soak_store () in
      let cs_scrub_quarantined =
        List.length scrub_report.Ebrc.Result_cache.scrub_quarantined
      in
      let cs_resume_seconds, resume_code = serve ~queue:qsoak [] in
      if resume_code <> 0 then
        Printf.eprintf "bench: post-soak resume exited %d\n%!" resume_code;
      Unix.close devnull;
      let cs_store_identical =
        resume_code = 0
        && String.equal
             (store_fingerprint (Filename.concat qref "store"))
             (store_fingerprint soak_store)
      in
      Printf.printf
        "  fault-free   %.2f s\n\
        \  chaos soak   %.2f s (exit %d)\n\
        \  scrub        %d record(s) quarantined\n\
        \  resume       %.2f s\n\
        \  store identical to fault-free run: %b\n\n"
        cs_baseline_seconds cs_soak_seconds cs_soak_exit cs_scrub_quarantined
        cs_resume_seconds cs_store_identical;
      { cs_tasks = tasks; cs_baseline_seconds; cs_soak_seconds;
        cs_resume_seconds; cs_soak_exit; cs_scrub_quarantined;
        cs_store_identical }

(* ------------------------------------------------------------------ *)
(* BENCH_<UTC-date>.json.                                              *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json ~figure_seconds ~microbench ~frontier ~alloc ~telem ~stream
    ~lanes ~wheel ~flows ~flows1m ~hybrid ~faults ~gap ~cache ~sweep ~service
    ~chaos =
  let ns_per_run, minor_per_run = microbench in
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  let date =
    Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
  in
  (* Filename carries the UTC time so same-day runs coexist; ISO-8601
     timestamps keep lexicographic order = chronological order, which
     bench-compare relies on to find the newest two records. *)
  let path =
    Printf.sprintf "BENCH_%sT%02d%02d%02dZ.json" date tm.Unix.tm_hour
      tm.Unix.tm_min tm.Unix.tm_sec
  in
  let oc = open_out path in
  let field_block name kvs fmt =
    Printf.fprintf oc "  %S: {\n" name;
    List.iteri
      (fun i (k, v) ->
        Printf.fprintf oc "    \"%s\": %s%s\n" (json_escape k) (fmt v)
          (if i = List.length kvs - 1 then "" else ","))
      kvs;
    Printf.fprintf oc "  },\n"
  in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"date\": %S,\n" date;
  Printf.fprintf oc "  \"mode\": %S,\n" (if quick then "quick" else "full");
  Printf.fprintf oc "  \"jobs\": %d,\n" jobs;
  Printf.fprintf oc "  \"recommended_domains\": %d,\n"
    (Domain.recommended_domain_count ());
  field_block "microbench_ns_per_run" ns_per_run (Printf.sprintf "%.1f");
  field_block "microbench_minor_words_per_run" minor_per_run
    (Printf.sprintf "%.1f");
  (* Analytic figures finish in well under a millisecond; "%.3f" would
     record a misleading 0.000, so those carry an explicit skip reason
     (a string, which bench-compare recognizes and sets aside) rather
     than a bare null that reads like a missing measurement. *)
  field_block "figure_regeneration_seconds" figure_seconds (fun v ->
      if v < 0.0005 then "\"skipped: sub-ms analytic figure\""
      else Printf.sprintf "%.3f" v);
  Printf.fprintf oc "  \"ode_frontier\": {\n";
  Printf.fprintf oc "    \"fixed_step_ns_per_solve\": %.1f,\n"
    frontier.fixed_step_ns;
  Printf.fprintf oc "    \"points\": [\n";
  List.iteri
    (fun i p ->
      Printf.fprintf oc
        "      { \"rtol\": %.0e, \"adaptive_ns_per_solve\": %.1f, \
         \"max_rel_err\": %.3e }%s\n"
        p.rtol p.adaptive_ns p.max_rel_err
        (if i = List.length frontier.points - 1 then "" else ","))
    frontier.points;
  Printf.fprintf oc "    ]\n  },\n";
  Printf.fprintf oc
    "  \"freelist_ablation\": {\n\
    \    \"unpooled_ms\": %.3f,\n\
    \    \"unpooled_minor_words\": %.0f,\n\
    \    \"pooled_ms\": %.3f,\n\
    \    \"pooled_minor_words\": %.0f\n\
    \  },\n"
    alloc.unpooled_ms alloc.unpooled_mwords alloc.pooled_ms
    alloc.pooled_mwords;
  Printf.fprintf oc
    "  \"telemetry_summary\": {\n\
    \    \"disabled_ms\": %.3f,\n\
    \    \"enabled_ms\": %.3f,\n\
    \    \"overhead_pct\": %.2f,\n\
    \    \"events\": %d,\n\
    \    \"counters\": {\n"
    telem.telem_off_ms telem.telem_on_ms
    (100.0 *. ((telem.telem_on_ms /. telem.telem_off_ms) -. 1.0))
    telem.telem_events;
  (* The cache.* counters from the warm-cache measurement ride in the
     same counters table so one record carries all fixed-seed totals. *)
  let counters = telem.telem_counters @ cache.cache_counters in
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "      \"%s\": %d%s\n" (json_escape k) v
        (if i = List.length counters - 1 then "" else ","))
    counters;
  Printf.fprintf oc "    }\n  },\n";
  Printf.fprintf oc
    "  \"stream_ablation\": {\n\
    \    \"scenario_off_ms\": %.3f,\n\
    \    \"scenario_streaming_ms\": %.3f,\n\
    \    \"overhead_pct\": %.2f,\n\
    \    \"delta_records\": %d,\n\
    \    \"bit_identical\": %b\n\
    \  },\n"
    stream.stream_off_ms stream.stream_on_ms
    (100.0 *. ((stream.stream_on_ms /. stream.stream_off_ms) -. 1.0))
    stream.stream_deltas stream.stream_identical;
  Printf.fprintf oc
    "  \"lanes_ablation\": {\n\
    \    \"lane_droptail_ms\": %.3f,\n\
    \    \"heap_droptail_ms\": %.3f,\n\
    \    \"droptail_speedup\": %.3f,\n\
    \    \"lane_red_ms\": %.3f,\n\
    \    \"heap_red_ms\": %.3f,\n\
    \    \"red_speedup\": %.3f,\n\
    \    \"bit_identical\": %b\n\
    \  },\n"
    lanes.lane_droptail_ms lanes.heap_droptail_ms
    (lanes.heap_droptail_ms /. lanes.lane_droptail_ms)
    lanes.lane_red_ms lanes.heap_red_ms
    (lanes.heap_red_ms /. lanes.lane_red_ms)
    lanes.lanes_identical;
  Printf.fprintf oc
    "  \"wheel_ablation\": {\n\
    \    \"wheel_droptail_ms\": %.3f,\n\
    \    \"lanes_droptail_ms\": %.3f,\n\
    \    \"heap_droptail_ms\": %.3f,\n\
    \    \"droptail_speedup_vs_heap\": %.3f,\n\
    \    \"wheel_red_ms\": %.3f,\n\
    \    \"lanes_red_ms\": %.3f,\n\
    \    \"heap_red_ms\": %.3f,\n\
    \    \"red_speedup_vs_heap\": %.3f,\n\
    \    \"bit_identical\": %b\n\
    \  },\n"
    wheel.wheel_droptail_ms wheel.wheel_lanes_droptail_ms
    wheel.wheel_heap_droptail_ms
    (wheel.wheel_heap_droptail_ms /. wheel.wheel_droptail_ms)
    wheel.wheel_red_ms wheel.wheel_lanes_red_ms wheel.wheel_heap_red_ms
    (wheel.wheel_heap_red_ms /. wheel.wheel_red_ms)
    wheel.wheel_identical;
  Printf.fprintf oc
    "  \"flows100k\": {\n\
    \    \"flows\": %d,\n\
    \    \"events\": %d,\n\
    \    \"wheel_ns_per_packet\": %.2f,\n\
    \    \"heap_ns_per_packet\": %.2f,\n\
    \    \"speedup_vs_heap\": %.3f,\n\
    \    \"bit_identical\": %b\n\
    \  },\n"
    flows.fl_flows flows.fl_events flows.fl_wheel_ns flows.fl_heap_ns
    (flows.fl_heap_ns /. flows.fl_wheel_ns)
    flows.fl_identical;
  Printf.fprintf oc
    "  \"flows1m\": {\n\
    \    \"fg_flows\": %d,\n\
    \    \"bg_flows\": %d,\n\
    \    \"events\": %d,\n\
    \    \"ns_per_event\": %.2f,\n\
    \    \"ratio_vs_flows100k\": %.3f,\n\
    \    \"fluid_advances\": %d,\n\
    \    \"bit_identical\": %b\n\
    \  },\n"
    flows1m.f1_fg flows1m.f1_bg flows1m.f1_events flows1m.f1_ns_per_event
    flows1m.f1_ratio_vs_flows100k flows1m.f1_fluid_advances
    flows1m.f1_identical;
  Printf.fprintf oc
    "  \"hybrid_ablation\": {\n\
    \    \"scenario_none_ms\": %.3f,\n\
    \    \"scenario_disabled_ms\": %.3f,\n\
    \    \"scenario_enabled_ms\": %.3f,\n\
    \    \"bit_identical\": %b\n\
    \  },\n"
    hybrid.hyb_none_ms hybrid.hyb_off_ms hybrid.hyb_on_ms
    hybrid.hyb_identical;
  Printf.fprintf oc
    "  \"faults_ablation\": {\n\
    \    \"scenario_none_ms\": %.3f,\n\
    \    \"scenario_disabled_ms\": %.3f,\n\
    \    \"scenario_enabled_ms\": %.3f,\n\
    \    \"bit_identical\": %b\n\
    \  },\n"
    faults.faults_none_ms faults.faults_disabled_ms faults.faults_enabled_ms
    faults.faults_identical;
  Printf.fprintf oc
    "  \"gap_skip_ablation\": {\n\
    \    \"gap_skip_ns_per_packet\": %.2f,\n\
    \    \"per_packet_ns_per_packet\": %.2f,\n\
    \    \"speedup\": %.3f,\n\
    \    \"gap_skip_drop_rate\": %.5f,\n\
    \    \"per_packet_drop_rate\": %.5f\n\
    \  },\n"
    gap.gap_skip_ns gap.per_packet_ns
    (gap.per_packet_ns /. gap.gap_skip_ns)
    gap.gap_skip_drop_rate gap.per_packet_drop_rate;
  Printf.fprintf oc
    "  \"scenario_cache\": {\n\
    \    \"cold_ms\": %.3f,\n\
    \    \"warm_two_lookups_ms\": %.3f\n\
    \  },\n"
    cache.cache_cold_ms cache.cache_warm_ms;
  Printf.fprintf oc
    "  \"parallel_figure_sweep\": {\n\
    \    \"figure\": %S,\n\
    \    \"jobs\": %d,\n\
    \    \"serial_seconds\": %.3f,\n\
    \    \"parallel_seconds\": %.3f,\n\
    \    \"speedup\": %.3f,\n\
    \    \"warm_lookup_figure\": \"17\",\n\
    \    \"warm_lookup_seconds\": %.5f,\n\
    \    \"deterministic\": %b\n\
    \  },\n"
    sweep.figure sweep.par_jobs sweep.serial_seconds sweep.parallel_seconds
    (sweep.serial_seconds /. sweep.parallel_seconds)
    sweep.warm_lookup_seconds sweep.deterministic;
  let num f = if Float.is_finite f then Printf.sprintf "%.4f" f else "null" in
  Printf.fprintf oc
    "  \"sweep_service\": {\n\
    \    \"tasks\": %d,\n\
    \    \"serial_seconds\": %s,\n\
    \    \"worker1_seconds\": %s,\n\
    \    \"worker4_seconds\": %s,\n\
    \    \"warm_resume_seconds\": %s,\n\
    \    \"cold_over_warm\": %s,\n\
    \    \"store_identical\": %b\n\
    \  },\n"
    service.svc_tasks
    (num service.svc_serial_seconds)
    (num service.svc_worker1_seconds)
    (num service.svc_worker4_seconds)
    (num service.svc_warm_resume_seconds)
    (num (service.svc_worker4_seconds /. service.svc_warm_resume_seconds))
    service.svc_store_identical;
  (* store_identical is null (not false) when the soak was skipped, so
     bench-compare can tell "not run" from "byte-identity broken". *)
  Printf.fprintf oc
    "  \"chaos_soak\": {\n\
    \    \"tasks\": %d,\n\
    \    \"baseline_seconds\": %s,\n\
    \    \"soak_seconds\": %s,\n\
    \    \"resume_seconds\": %s,\n\
    \    \"soak_exit\": %d,\n\
    \    \"scrub_quarantined\": %d,\n\
    \    \"store_identical\": %s\n\
    \  }\n"
    chaos.cs_tasks
    (num chaos.cs_baseline_seconds)
    (num chaos.cs_soak_seconds)
    (num chaos.cs_resume_seconds)
    chaos.cs_soak_exit chaos.cs_scrub_quarantined
    (if Float.is_finite chaos.cs_soak_seconds then
       string_of_bool chaos.cs_store_identical
     else "null");
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "bench record written to %s\n" path

let () =
  (* EBRC_BENCH_ONLY=sweep|wheel|scale: a single measurement block, no
     JSON — for iterating on the pool, the scheduler or the hybrid
     engine without a full bench run. *)
  if Sys.getenv_opt "EBRC_BENCH_ONLY" = Some "sweep" then
    ignore (measure_parallel_sweep ())
  else if Sys.getenv_opt "EBRC_BENCH_ONLY" = Some "serve" then
    ignore (measure_sweep_service ())
  else if Sys.getenv_opt "EBRC_BENCH_ONLY" = Some "chaos" then
    ignore (measure_chaos_soak ())
  else if Sys.getenv_opt "EBRC_BENCH_ONLY" = Some "wheel" then begin
    ignore (measure_wheel_ab ());
    ignore (measure_flows100k ())
  end
  else if Sys.getenv_opt "EBRC_BENCH_ONLY" = Some "scale" then begin
    let flows = measure_flows100k () in
    ignore (measure_flows1m flows);
    ignore (measure_hybrid_ablation ())
  end
  else begin
    let figure_seconds = regenerate_figures () in
    (* The regeneration phase leaves every memoized scenario result
       live in the cache; drop them and settle the heap so the
       microbenches don't inherit its GC pressure. *)
    Ebrc.Result_cache.clear_memory ();
    Gc.full_major ();
    let microbench = benchmark () in
    print_bench_results microbench;
    let frontier = measure_ode_frontier () in
    let alloc = measure_alloc_ab () in
    let telem = measure_telemetry () in
    let stream = measure_stream_ablation () in
    let lanes = measure_lanes_ab () in
    let wheel = measure_wheel_ab () in
    let flows = measure_flows100k () in
    let flows1m = measure_flows1m flows in
    let hybrid = measure_hybrid_ablation () in
    let faults = measure_faults_ab () in
    let gap = measure_gap_skip () in
    let cache = measure_cache () in
    let sweep = measure_parallel_sweep () in
    let service = measure_sweep_service () in
    let chaos = measure_chaos_soak () in
    write_json ~figure_seconds ~microbench ~frontier ~alloc ~telem ~stream
      ~lanes ~wheel ~flows ~flows1m ~hybrid ~faults ~gap ~cache ~sweep
      ~service ~chaos;
    print_endline "\nbench: done."
  end
