# End-to-end CI leg for the chaos-hardened fleet (run via
# `make chaos-e2e`, which builds first). Exercises the headline
# robustness contract: a sweep served under injected I/O faults and
# random worker SIGKILLs, then scrubbed and resumed fault-free, ends
# with a store byte-identical to a fault-free run — chaos may cost
# retries and wall-clock, never bytes. Also checks the scrubber's
# quarantine discipline on deliberately corrupted records.
set -eu

EBRC=_build/default/bin/ebrc_cli.exe
[ -x "$EBRC" ] || { echo "chaos_ci: $EBRC not built (run from repo root after dune build)"; exit 1; }

WORK=$(mktemp -d "${TMPDIR:-/tmp}/ebrc-chaos-ci.XXXXXX")
trap 'rm -rf "$WORK"' EXIT INT TERM

MANIFEST="$WORK/soak.json"
QREF="$WORK/qref"
QSOAK="$WORK/qsoak"

fail() { echo "chaos_ci: FAIL: $*"; exit 1; }

store_sum() { cat $(ls "$1"/*.json | sort) | cksum; }
store_count() { ls "$1" 2>/dev/null | grep -c '\.json$' || true; }

# Tasks long enough (~1 s wall each) that the chaos monkey's 0.5–2 s
# kill schedule lands mid-simulation.
"$EBRC" manifest "$MANIFEST" --tasks 6 --duration 1200 >/dev/null

# 1. Fault-free reference arm.
"$EBRC" serve "$MANIFEST" --queue "$QREF" --workers 2 --quiet \
  || fail "fault-free reference serve exited $?"
[ "$(store_count "$QREF/store")" = 6 ] || fail "reference store incomplete"
SUM_REF=$(store_sum "$QREF/store")

# 2. Chaos soak: I/O faults in the workers (--chaos), the supervisor's
#    chaos monkey SIGKILLing workers (--chaos-kill), short leases and a
#    tight watchdog so recovery paths actually run. A degraded exit (1:
#    poisoned or failed tasks) is an acceptable soak outcome — the
#    fault-free resume below must heal it.
set +e
EBRC_LEASE_GRACE=2 "$EBRC" serve "$MANIFEST" --queue "$QSOAK" --workers 2 \
  --ttl 5 --watchdog 15 --chaos 99 --chaos-kill 42 --quiet
SOAK_RC=$?
set -e
case "$SOAK_RC" in
  0|1) ;;
  *) fail "chaos soak exited $SOAK_RC (expected 0 or 1)" ;;
esac

# 3. Scrub discipline: corrupt two records (byte flip + truncation),
#    then scrub. Exactly those two must be quarantined — moved, never
#    deleted — and scrub must exit 1 to flag the damage.
"$EBRC" serve "$MANIFEST" --queue "$QSOAK" --workers 2 --quiet \
  || fail "post-soak resume exited $?"
[ "$(store_count "$QSOAK/store")" = 6 ] || fail "soaked store incomplete after resume"
VICTIMS=$(ls "$QSOAK/store"/*.json | sort | head -2)
FLIP=$(echo "$VICTIMS" | head -1)
TRUNC=$(echo "$VICTIMS" | tail -1)
printf 'X' | dd of="$FLIP" bs=1 seek=40 conv=notrunc 2>/dev/null
head -c 100 "$TRUNC" > "$TRUNC.cut" && mv "$TRUNC.cut" "$TRUNC"
set +e
"$EBRC" scrub "$QSOAK/store" > "$WORK/scrub.out"
SCRUB_RC=$?
set -e
[ "$SCRUB_RC" = 1 ] || fail "scrub of a corrupted store should exit 1, got $SCRUB_RC"
grep -q '2 quarantined' "$WORK/scrub.out" || fail "scrub should quarantine exactly 2 records: $(cat "$WORK/scrub.out")"
[ "$(store_count "$QSOAK/store/quarantine")" = 2 ] || fail "quarantine dir should hold the 2 corrupt records"
[ "$(store_count "$QSOAK/store")" = 4 ] || fail "4 clean records should survive the scrub"

# 4. Self-healing resume: re-serving the manifest recomputes only the
#    quarantined tasks; the final store must be byte-identical to the
#    fault-free reference. A clean store then scrubs clean (exit 0).
"$EBRC" serve "$MANIFEST" --queue "$QSOAK" --workers 2 --quiet \
  || fail "self-healing resume exited $?"
[ "$(store_sum "$QSOAK/store")" = "$SUM_REF" ] || fail "healed store differs from the fault-free reference bytes"
"$EBRC" scrub "$QSOAK/store" >/dev/null || fail "clean store should scrub clean"

echo "chaos_ci: OK (soak exit $SOAK_RC; scrub quarantined 2/2 corrupt records; healed store byte-identical to fault-free run)"
