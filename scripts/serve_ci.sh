# End-to-end CI leg for the multi-process sweep service (run via
# `make serve-e2e`, which builds first). Exercises the contract the
# docs promise: a fresh 6-task sweep completes with 2 workers, a
# partial store resumes by recomputing only what is missing (and
# byte-identically), --workers 0 is a warm resume over a complete
# store, and a missing manifest exits 2.
set -eu

EBRC=_build/default/bin/ebrc_cli.exe
[ -x "$EBRC" ] || { echo "serve_ci: $EBRC not built (run from repo root after dune build)"; exit 1; }

WORK=$(mktemp -d "${TMPDIR:-/tmp}/ebrc-serve-ci.XXXXXX")
trap 'rm -rf "$WORK"' EXIT INT TERM

MANIFEST="$WORK/sweep.json"
QUEUE="$MANIFEST.queue"
STORE="$QUEUE/store"

fail() { echo "serve_ci: FAIL: $*"; exit 1; }

store_count() { ls "$STORE" 2>/dev/null | grep -c '\.json$' || true; }
store_sum() { cat $(ls "$STORE"/*.json | sort) | cksum; }

# 1. Fresh sweep: 6 tasks, 2 workers, must complete with exit 0 and
#    publish exactly one record per task.
"$EBRC" manifest "$MANIFEST" --tasks 6 --duration 5 >/dev/null
"$EBRC" serve "$MANIFEST" --workers 2 --quiet || fail "fresh serve exited $?"
[ "$(store_count)" = 6 ] || fail "expected 6 store records, got $(store_count)"
SUM_FULL=$(store_sum)

# 2. Resume over a partial store: delete two records, re-serve. Only
#    the missing tasks are outstanding; the refilled store must be
#    byte-identical to the original (content-addressed determinism).
ls "$STORE"/*.json | head -2 | while read -r f; do rm "$f"; done
[ "$(store_count)" = 4 ] || fail "partial store should hold 4 records"
"$EBRC" serve "$MANIFEST" --workers 2 --quiet || fail "partial resume exited $?"
[ "$(store_count)" = 6 ] || fail "resume did not refill the store"
[ "$(store_sum)" = "$SUM_FULL" ] || fail "resumed store differs from original bytes"

# 3. Warm resume: everything published, --workers 0 spawns nothing and
#    still exits 0 immediately.
"$EBRC" serve "$MANIFEST" --workers 0 --quiet || fail "warm resume exited $?"

# 4. Exit-code contract: a missing manifest is a usage error (2), not
#    a crash or a silent success.
set +e
"$EBRC" serve "$WORK/absent.json" --workers 0 --quiet 2>/dev/null
RC=$?
set -e
[ "$RC" = 2 ] || fail "missing manifest should exit 2, got $RC"

echo "serve_ci: OK (fresh sweep, partial resume byte-identical, warm resume, exit codes)"
