(* Tests for the TCP model: a loopback harness wires a sender and a
   receiver through a configurable path (delay + optional dropper) and
   checks window dynamics, loss recovery, RTT estimation and loss-event
   accounting. *)

module E = Ebrc.Engine
module P = Ebrc.Packet
module LM = Ebrc.Loss_module
module TS = Ebrc.Tcp_sender
module TR = Ebrc.Tcp_receiver
module Prng = Ebrc.Prng

(* Loopback: data goes through [dropper] and arrives after [delay]/2;
   ACKs return after [delay]/2. Max in-flight bandwidth is unbounded
   (the path is pure delay), so cwnd growth is limited only by losses
   and max_window. *)
let loopback ?(delay = 0.1) ?(dropper = LM.lossless ()) ?(max_window = 1e9)
    ?(run_until = 30.0) () =
  let engine = E.create () in
  let sender = TS.create ~engine ~flow:0 ~max_window () in
  let receiver = TR.create ~engine ~flow:0 () in
  TS.set_transmit sender (fun pkt ->
      if LM.process dropper pkt then
        ignore
          (E.schedule_after engine ~delay:(delay /. 2.0) (fun () ->
               TR.on_data receiver pkt)));
  TR.set_ack_sink receiver (fun ~acked ~dup ~echo ->
      ignore
        (E.schedule_after engine ~delay:(delay /. 2.0) (fun () ->
             TS.on_ack sender ~acked ~dup ~echo)));
  ignore (E.schedule engine ~at:0.0 (fun () -> TS.start sender));
  ignore (E.run ~until:run_until engine);
  (sender, receiver)

let test_lossless_transfer_progresses () =
  let sender, receiver = loopback ~max_window:200.0 ~run_until:5.0 () in
  Alcotest.(check bool) "packets sent" true (TS.packets_sent sender > 100);
  Alcotest.(check bool) "receiver advanced" true (TR.expected receiver > 100);
  Alcotest.(check int) "no timeouts" 0 (TS.timeouts sender);
  Alcotest.(check int) "no fast retransmits" 0 (TS.fast_retransmits sender);
  Alcotest.(check int) "no loss events" 0 (TS.loss_events sender)

let test_slow_start_doubles () =
  (* In slow start, cwnd grows by the number of newly acked packets:
     roughly doubling each RTT despite delayed ACKs. *)
  let sender, _ = loopback ~max_window:5000.0 ~run_until:1.0 () in
  (* After ~10 RTTs of 0.1 s the window should be large. *)
  Alcotest.(check bool)
    (Printf.sprintf "cwnd %.0f > 100" (TS.cwnd sender))
    true
    (TS.cwnd sender > 100.0)

let test_rtt_estimate_converges () =
  let sender, _ = loopback ~delay:0.2 ~max_window:100.0 ~run_until:5.0 () in
  (* RTT = 0.2 propagation (+ delayed-ack hold for some samples). *)
  Alcotest.(check bool)
    (Printf.sprintf "srtt %.3f in [0.2, 0.35)" (TS.srtt sender))
    true
    (TS.srtt sender >= 0.2 -. 1e-9 && TS.srtt sender < 0.35)

let test_fast_retransmit_on_single_loss () =
  (* Drop exactly one packet mid-stream: recovery must use fast
     retransmit (3 dup ACKs), not a timeout. *)
  let count = ref 0 in
  (* Custom dropper: drop the 150th data packet only. *)
  let custom_pass (pkt : P.t) =
    ignore pkt;
    incr count;
    !count <> 150
  in
  let engine = E.create () in
  let sender = TS.create ~engine ~flow:0 ~max_window:64.0 () in
  let receiver = TR.create ~engine ~flow:0 () in
  TS.set_transmit sender (fun pkt ->
      if custom_pass pkt then
        ignore
          (E.schedule_after engine ~delay:0.05 (fun () ->
               TR.on_data receiver pkt)));
  TR.set_ack_sink receiver (fun ~acked ~dup ~echo ->
      ignore
        (E.schedule_after engine ~delay:0.05 (fun () ->
             TS.on_ack sender ~acked ~dup ~echo)));
  ignore (E.schedule engine ~at:0.0 (fun () -> TS.start sender));
  ignore (E.run ~until:10.0 engine);
  Alcotest.(check int) "one fast retransmit" 1 (TS.fast_retransmits sender);
  Alcotest.(check int) "no timeouts" 0 (TS.timeouts sender);
  Alcotest.(check int) "one loss event" 1 (TS.loss_events sender);
  (* The stream must keep progressing after recovery. *)
  Alcotest.(check bool) "recovered" true (TR.expected receiver > 200)

let test_halving_on_fast_retransmit () =
  (* cwnd after recovery should be about half the pre-loss flight. *)
  let count = ref 0 in
  let engine = E.create () in
  let sender = TS.create ~engine ~flow:0 ~max_window:64.0 () in
  let receiver = TR.create ~engine ~flow:0 () in
  let cwnd_before = ref 0.0 in
  TS.set_transmit sender (fun pkt ->
      incr count;
      if !count = 400 then cwnd_before := TS.window sender;
      if !count <> 400 then
        ignore
          (E.schedule_after engine ~delay:0.05 (fun () ->
               TR.on_data receiver pkt)));
  TR.set_ack_sink receiver (fun ~acked ~dup ~echo ->
      ignore
        (E.schedule_after engine ~delay:0.05 (fun () ->
             TS.on_ack sender ~acked ~dup ~echo)));
  ignore (E.schedule engine ~at:0.0 (fun () -> TS.start sender));
  ignore (E.run ~until:60.0 engine);
  (* At the loss the window was max (64); afterwards ssthresh ~ 32. *)
  Alcotest.(check bool)
    (Printf.sprintf "ssthresh %.0f ~ half of %.0f" (TS.ssthresh sender)
       !cwnd_before)
    true
    (TS.ssthresh sender <= (!cwnd_before /. 2.0) +. 2.0
    && TS.ssthresh sender >= (!cwnd_before /. 4.0) -. 2.0)

let test_timeout_on_burst_loss () =
  (* Drop a long burst so dup ACKs cannot arrive: the sender must fall
     back to a timeout and keep going. *)
  let dropped_once = Hashtbl.create 64 in
  let engine = E.create () in
  let sender = TS.create ~engine ~flow:0 ~max_window:32.0 () in
  let receiver = TR.create ~engine ~flow:0 () in
  TS.set_transmit sender (fun pkt ->
      (* Drop sequences 50..120 - a burst longer than the window - but
         only on first transmission, so recovery can proceed. *)
      let burst = pkt.P.seq >= 50 && pkt.P.seq <= 120 in
      let fresh = burst && not (Hashtbl.mem dropped_once pkt.P.seq) in
      if fresh then Hashtbl.replace dropped_once pkt.P.seq ();
      if not fresh then
        ignore
          (E.schedule_after engine ~delay:0.02 (fun () ->
               TR.on_data receiver pkt)));
  TR.set_ack_sink receiver (fun ~acked ~dup ~echo ->
      ignore
        (E.schedule_after engine ~delay:0.02 (fun () ->
             TS.on_ack sender ~acked ~dup ~echo)));
  ignore (E.schedule engine ~at:0.0 (fun () -> TS.start sender));
  ignore (E.run ~until:30.0 engine);
  Alcotest.(check bool) "at least one timeout" true (TS.timeouts sender >= 1);
  Alcotest.(check bool) "stream recovered" true (TR.expected receiver > 200)

let test_random_loss_long_run_stable () =
  let rng = Prng.create ~seed:8 in
  let dropper = LM.bernoulli rng ~p:0.01 in
  let sender, receiver = loopback ~dropper ~max_window:1000.0 ~run_until:120.0 () in
  Alcotest.(check bool) "many loss events" true (TS.loss_events sender > 20);
  Alcotest.(check bool) "receiver advanced" true (TR.expected receiver > 2000);
  let p = TS.loss_event_rate sender in
  Alcotest.(check bool)
    (Printf.sprintf "loss-event rate %.4f in (0.001, 0.02)" p)
    true
    (p > 0.001 && p < 0.02);
  (* Loss events aggregate bursts: rate at most the packet drop rate. *)
  let ivs = TS.loss_event_intervals sender in
  Alcotest.(check int) "intervals = events - 1" (TS.loss_events sender - 1)
    (Array.length ivs)

let test_loss_event_intervals_positive () =
  let rng = Prng.create ~seed:9 in
  let dropper = LM.bernoulli rng ~p:0.02 in
  let sender, _ = loopback ~dropper ~max_window:1000.0 ~run_until:60.0 () in
  Array.iter
    (fun iv -> Alcotest.(check bool) "interval >= 0" true (iv >= 0.0))
    (TS.loss_event_intervals sender)

let test_max_window_respected () =
  let sender, _ = loopback ~max_window:10.0 ~run_until:10.0 () in
  Alcotest.(check bool)
    (Printf.sprintf "window %.1f <= 10" (TS.window sender))
    true
    (TS.window sender <= 10.0 +. 1e-9)

let test_mean_rtt_accumulates () =
  let sender, _ = loopback ~delay:0.1 ~max_window:100.0 ~run_until:5.0 () in
  Alcotest.(check bool) "mean rtt sane" true
    (TS.mean_rtt sender >= 0.1 -. 1e-9 && TS.mean_rtt sender < 0.3)

let test_receiver_delayed_ack_b2 () =
  (* With b = 2, roughly one ACK per two data packets on a clean path. *)
  let engine = E.create () in
  let receiver = TR.create ~engine ~flow:0 () in
  let acks = ref 0 in
  TR.set_ack_sink receiver (fun ~acked:_ ~dup:_ ~echo:_ -> incr acks);
  ignore
    (E.schedule engine ~at:0.0 (fun () ->
         for i = 0 to 99 do
           TR.on_data receiver (P.data ~flow:0 ~seq:i ~size:1000 ~sent_at:0.0)
         done));
  ignore (E.run engine);
  Alcotest.(check int) "50 acks for 100 packets" 50 !acks

let test_receiver_dup_acks_on_gap () =
  let engine = E.create () in
  let receiver = TR.create ~engine ~flow:0 () in
  let dups = ref 0 in
  TR.set_ack_sink receiver (fun ~acked:_ ~dup ~echo:_ ->
      if dup then incr dups);
  ignore
    (E.schedule engine ~at:0.0 (fun () ->
         TR.on_data receiver (P.data ~flow:0 ~seq:0 ~size:1000 ~sent_at:0.0);
         TR.on_data receiver (P.data ~flow:0 ~seq:1 ~size:1000 ~sent_at:0.0);
         (* gap: 2 missing *)
         TR.on_data receiver (P.data ~flow:0 ~seq:3 ~size:1000 ~sent_at:0.0);
         TR.on_data receiver (P.data ~flow:0 ~seq:4 ~size:1000 ~sent_at:0.0);
         TR.on_data receiver (P.data ~flow:0 ~seq:5 ~size:1000 ~sent_at:0.0)));
  ignore (E.run engine);
  Alcotest.(check int) "three dup acks" 3 !dups;
  Alcotest.(check int) "expected still 2" 2 (TR.expected receiver)

let test_receiver_gap_fill_acks_immediately () =
  let engine = E.create () in
  let receiver = TR.create ~engine ~flow:0 () in
  let last_ack = ref (-1) in
  TR.set_ack_sink receiver (fun ~acked ~dup ~echo:_ ->
      if not dup then last_ack := acked);
  ignore
    (E.schedule engine ~at:0.0 (fun () ->
         TR.on_data receiver (P.data ~flow:0 ~seq:0 ~size:1000 ~sent_at:0.0);
         TR.on_data receiver (P.data ~flow:0 ~seq:2 ~size:1000 ~sent_at:0.0);
         TR.on_data receiver (P.data ~flow:0 ~seq:3 ~size:1000 ~sent_at:0.0);
         (* Filling the hole must trigger an immediate cumulative ACK. *)
         TR.on_data receiver (P.data ~flow:0 ~seq:1 ~size:1000 ~sent_at:0.0)));
  ignore (E.run engine);
  Alcotest.(check int) "cumulative ack covers buffered" 3 !last_ack

let test_delack_timer_fires_for_single_segment () =
  let engine = E.create () in
  let receiver = TR.create ~delack_timeout:0.1 ~engine ~flow:0 () in
  let acks = ref 0 in
  TR.set_ack_sink receiver (fun ~acked:_ ~dup:_ ~echo:_ -> incr acks);
  ignore
    (E.schedule engine ~at:0.0 (fun () ->
         TR.on_data receiver (P.data ~flow:0 ~seq:0 ~size:1000 ~sent_at:0.0)));
  ignore (E.run ~until:1.0 engine);
  Alcotest.(check int) "delayed ack fired" 1 !acks

(* ------------------------- properties -------------------------- *)

let prop_reliable_under_random_loss =
  QCheck.Test.make ~name:"no receiver gap survives under random loss"
    ~count:10
    QCheck.(pair small_nat (float_range 0.0 0.05))
    (fun (seed, p) ->
      let rng = Prng.create ~seed in
      let dropper = LM.bernoulli rng ~p in
      let _, receiver = loopback ~dropper ~max_window:500.0 ~run_until:20.0 () in
      (* The receiver's expected pointer must move: reliability holds. *)
      TR.expected receiver > 50)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_reliable_under_random_loss ]

(* ------------------------- Seq_set ------------------------- *)

let test_seq_set_basics () =
  let s = Ebrc.Seq_set.create ~capacity:4 () in
  Alcotest.(check bool) "empty" false (Ebrc.Seq_set.mem s 0);
  Ebrc.Seq_set.add s 5;
  Ebrc.Seq_set.add s 5;
  Ebrc.Seq_set.add s 0;
  Alcotest.(check int) "idempotent add" 2 (Ebrc.Seq_set.cardinal s);
  Alcotest.(check bool) "mem 5" true (Ebrc.Seq_set.mem s 5);
  Ebrc.Seq_set.remove s 5;
  Ebrc.Seq_set.remove s 5;
  Alcotest.(check bool) "removed" false (Ebrc.Seq_set.mem s 5);
  Alcotest.(check int) "cardinal after remove" 1 (Ebrc.Seq_set.cardinal s);
  (match Ebrc.Seq_set.add s (-1) with
  | () -> Alcotest.fail "expected Invalid_argument (negative)"
  | exception Invalid_argument _ -> ())

let test_seq_set_tombstone_no_duplicate () =
  (* Regression: a key displaced past a slot that later becomes a
     tombstone must not be re-inserted into the tombstone as a
     duplicate. 5 and 21 share home slot 5 with capacity 16; removing
     5 leaves a tombstone on 21's probe path. *)
  let s = Ebrc.Seq_set.create ~capacity:16 () in
  Ebrc.Seq_set.add s 5;
  Ebrc.Seq_set.add s 21;
  Ebrc.Seq_set.remove s 5;
  Ebrc.Seq_set.add s 21;
  Alcotest.(check int) "no duplicate via tombstone" 1 (Ebrc.Seq_set.cardinal s);
  Ebrc.Seq_set.remove s 21;
  Alcotest.(check bool) "fully removed" false (Ebrc.Seq_set.mem s 21);
  Alcotest.(check int) "empty" 0 (Ebrc.Seq_set.cardinal s);
  (* The tombstone slot is still reused when the key really is absent. *)
  Ebrc.Seq_set.add s 21;
  Alcotest.(check bool) "re-add after churn" true (Ebrc.Seq_set.mem s 21);
  Alcotest.(check int) "single entry" 1 (Ebrc.Seq_set.cardinal s)

let test_seq_set_growth_and_churn () =
  (* Grow far past the initial capacity, then churn adds/removes so
     tombstone rehashing gets exercised; the set must agree with a
     reference implementation throughout. *)
  let s = Ebrc.Seq_set.create ~capacity:4 () in
  let ref_tbl = Hashtbl.create 64 in
  let rng = Ebrc.Prng.create ~seed:11 in
  for _ = 1 to 5_000 do
    let v = Ebrc.Prng.int rng 300 in
    if Ebrc.Prng.bool rng then begin
      Ebrc.Seq_set.add s v;
      Hashtbl.replace ref_tbl v ()
    end
    else begin
      Ebrc.Seq_set.remove s v;
      Hashtbl.remove ref_tbl v
    end
  done;
  Alcotest.(check int) "cardinal matches reference"
    (Hashtbl.length ref_tbl) (Ebrc.Seq_set.cardinal s);
  for v = 0 to 299 do
    Alcotest.(check bool)
      (Printf.sprintf "membership of %d" v)
      (Hashtbl.mem ref_tbl v) (Ebrc.Seq_set.mem s v)
  done

let () =
  Alcotest.run "tcp"
    [
      ( "seq_set",
        [
          Alcotest.test_case "basics" `Quick test_seq_set_basics;
          Alcotest.test_case "tombstone no duplicate" `Quick
            test_seq_set_tombstone_no_duplicate;
          Alcotest.test_case "growth and churn" `Quick
            test_seq_set_growth_and_churn;
        ] );
      ( "sender",
        [
          Alcotest.test_case "lossless progress" `Quick test_lossless_transfer_progresses;
          Alcotest.test_case "slow start" `Quick test_slow_start_doubles;
          Alcotest.test_case "rtt estimate" `Quick test_rtt_estimate_converges;
          Alcotest.test_case "fast retransmit" `Quick test_fast_retransmit_on_single_loss;
          Alcotest.test_case "halving" `Quick test_halving_on_fast_retransmit;
          Alcotest.test_case "timeout on burst" `Quick test_timeout_on_burst_loss;
          Alcotest.test_case "random loss stable" `Quick test_random_loss_long_run_stable;
          Alcotest.test_case "intervals positive" `Quick test_loss_event_intervals_positive;
          Alcotest.test_case "max window" `Quick test_max_window_respected;
          Alcotest.test_case "mean rtt" `Quick test_mean_rtt_accumulates;
        ] );
      ( "receiver",
        [
          Alcotest.test_case "delayed acks b=2" `Quick test_receiver_delayed_ack_b2;
          Alcotest.test_case "dup acks on gap" `Quick test_receiver_dup_acks_on_gap;
          Alcotest.test_case "gap fill immediate ack" `Quick test_receiver_gap_fill_acks_immediately;
          Alcotest.test_case "delack timer" `Quick test_delack_timer_fires_for_single_segment;
        ] );
      ("properties", qsuite);
    ]
