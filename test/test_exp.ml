(* Tests for the experiment harness: table rendering, scenario
   mechanics, path profiles and the figure registry. *)

module T = Ebrc.Table
module S = Ebrc.Scenario
module A = Ebrc.Audio_scenario
module P = Ebrc.Paths
module Fig = Ebrc.Figures
module RC = Ebrc.Result_cache
module Pool = Ebrc.Pool

let feq ?(eps = 1e-9) a b =
  Alcotest.(check bool)
    (Printf.sprintf "%.12g ~ %.12g" a b)
    true
    (abs_float (a -. b) <= eps *. (1.0 +. abs_float a +. abs_float b))

(* ---------------------------- table ----------------------------- *)

let test_table_render () =
  let t = T.create ~title:"demo" ~header:[ "a"; "bb" ] in
  let t = T.add_row t [ "1"; "2" ] in
  let t = T.add_row t [ "333"; "4" ] in
  let s = T.to_string t in
  Alcotest.(check bool) "title present" true
    (String.length s > 0
    && String.sub s 0 7 = "== demo");
  Alcotest.(check bool) "has rows" true
    (String.length (T.to_csv t) > 0)

let test_table_column_mismatch () =
  let t = T.create ~title:"x" ~header:[ "a" ] in
  match T.add_row t [ "1"; "2" ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_table_csv_escaping () =
  let t = T.create ~title:"x" ~header:[ "a,b"; "c" ] in
  let t = T.add_row t [ "v\"w"; "plain" ] in
  let csv = T.to_csv t in
  Alcotest.(check bool) "quoted comma" true
    (String.length csv > 0 && csv.[0] = '"')

let test_cell_float () =
  Alcotest.(check string) "nan" "nan" (T.cell_float nan);
  Alcotest.(check bool) "number renders" true
    (String.length (T.cell_float 3.14159) > 0)

let test_table_csv_roundtrip_columns () =
  let t = T.create ~title:"t" ~header:[ "x"; "y"; "z" ] in
  let t = T.add_row t [ "1"; "2"; "3" ] in
  let lines = String.split_on_char '\n' (T.to_csv t) in
  List.iter
    (fun line ->
      if line <> "" then
        Alcotest.(check int) "3 columns"
          3
          (List.length (String.split_on_char ',' line)))
    lines

(* --------------------------- scenario --------------------------- *)

let quick_cfg =
  {
    S.default_config with
    duration = 40.0;
    warmup = 10.0;
    n_tfrc = 2;
    n_tcp = 2;
    seed = 7;
  }

let result = lazy (S.run quick_cfg)

let test_scenario_counts () =
  let r = Lazy.force result in
  Alcotest.(check int) "tfrc flows" 2 (Array.length r.S.tfrc);
  Alcotest.(check int) "tcp flows" 2 (Array.length r.S.tcp);
  Alcotest.(check bool) "probe present" true (r.S.probe <> None)

let test_scenario_utilization () =
  let r = Lazy.force result in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.2f in (0.5, 1.02)" r.S.link_utilization)
    true
    (r.S.link_utilization > 0.5 && r.S.link_utilization < 1.02)

let test_scenario_throughputs_positive () =
  let r = Lazy.force result in
  Array.iter
    (fun (m : S.flow_measure) ->
      Alcotest.(check bool) "tfrc throughput > 0" true (m.throughput_pps > 0.0))
    r.S.tfrc;
  Array.iter
    (fun (m : S.flow_measure) ->
      Alcotest.(check bool) "tcp throughput > 0" true (m.throughput_pps > 0.0))
    r.S.tcp

let test_scenario_capacity_conservation () =
  let r = Lazy.force result in
  let cap_pps =
    quick_cfg.S.bottleneck_bps /. (8.0 *. float_of_int quick_cfg.S.packet_size)
  in
  let total =
    S.mean_throughput r.S.tfrc *. 2.0 +. (S.mean_throughput r.S.tcp *. 2.0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "sum %.0f <= capacity %.0f" total cap_pps)
    true
    (total <= cap_pps *. 1.02)

let test_scenario_determinism () =
  let r1 = S.run { quick_cfg with duration = 20.0 } in
  let r2 = S.run { quick_cfg with duration = 20.0 } in
  feq (S.mean_throughput r1.S.tfrc) (S.mean_throughput r2.S.tfrc);
  feq (S.mean_throughput r1.S.tcp) (S.mean_throughput r2.S.tcp);
  Alcotest.(check int) "same drops" r1.S.queue_drops r2.S.queue_drops

let test_scenario_seed_sensitivity () =
  let r1 = S.run { quick_cfg with duration = 20.0 } in
  let r2 = S.run { quick_cfg with duration = 20.0; seed = 8 } in
  Alcotest.(check bool) "different seeds differ" true
    (S.mean_throughput r1.S.tfrc <> S.mean_throughput r2.S.tfrc)

let test_scenario_pooled_loss_rate () =
  let r = Lazy.force result in
  let p = S.pooled_loss_rate r.S.tfrc in
  Alcotest.(check bool)
    (Printf.sprintf "pooled p %.5f in (0, 0.2)" p)
    true
    (p > 0.0 && p < 0.2)

(* The freelist recycling of packet and event records must be invisible
   to the simulation: same seeds, same results, pooled or not. *)
let test_scenario_freelist_equivalence () =
  let cfg = { quick_cfg with duration = 20.0 } in
  let r_plain = S.run cfg in
  Ebrc.Packet.set_pooling true;
  Ebrc.Engine.set_pooling true;
  let r_pooled =
    Fun.protect
      ~finally:(fun () ->
        Ebrc.Packet.set_pooling false;
        Ebrc.Engine.set_pooling false)
      (fun () -> S.run cfg)
  in
  feq (S.mean_throughput r_plain.S.tfrc) (S.mean_throughput r_pooled.S.tfrc);
  feq (S.mean_throughput r_plain.S.tcp) (S.mean_throughput r_pooled.S.tcp);
  feq (S.pooled_loss_rate r_plain.S.tfrc) (S.pooled_loss_rate r_pooled.S.tfrc);
  Alcotest.(check int)
    "same drops" r_plain.S.queue_drops r_pooled.S.queue_drops

let test_scenario_invalid_duration () =
  match S.run { quick_cfg with duration = 5.0; warmup = 10.0 } with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_bdp_and_rtt_helpers () =
  feq (S.base_rtt quick_cfg) 0.05;
  (* 15 Mb/s * 0.05 s / 8000 bits = 93.75 packets *)
  feq (S.bdp_packets quick_cfg) 93.75

(* With lanes disabled every event goes through the binary heap; the
   k-way merge must reproduce that schedule exactly, so a full scenario
   serializes to the same bytes either way. *)
let test_scenario_lanes_vs_heap_identical () =
  let cfg = { quick_cfg with duration = 20.0 } in
  (* Pin each arm's toggle and restore the environment's choice (the
     suite also runs under EBRC_LANES=0). *)
  let was = Ebrc.Engine.fast_lanes_enabled () in
  Fun.protect ~finally:(fun () -> Ebrc.Engine.set_fast_lanes was)
  @@ fun () ->
  Ebrc.Engine.set_fast_lanes true;
  let with_lanes = RC.serialize_result (S.run cfg) in
  Ebrc.Engine.set_fast_lanes false;
  let heap_only = RC.serialize_result (S.run cfg) in
  Alcotest.(check bool) "bit-identical serialization" true
    (String.equal with_lanes heap_only)

(* ------------------------- result cache ------------------------- *)

let cache_dir =
  Filename.concat (Filename.get_temp_dir_name ()) "ebrc_cache_test"

(* Every cache test starts from a clean slate — no memo, no stats, no
   stale disk records — and leaves the global cache state as it found
   it (enabled, memory-only). *)
let with_clean_cache f =
  if Sys.file_exists cache_dir && Sys.is_directory cache_dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat cache_dir f))
      (Sys.readdir cache_dir);
  RC.clear_memory ();
  RC.reset_stats ();
  Fun.protect
    ~finally:(fun () ->
      RC.set_dir None;
      RC.set_enabled true;
      RC.clear_memory ();
      RC.reset_stats ())
    f

let cache_cfg = { quick_cfg with duration = 20.0; seed = 21 }

let test_cache_memo_roundtrip () =
  with_clean_cache (fun () ->
      let direct = RC.serialize_result (S.run cache_cfg) in
      let first = RC.serialize_result (RC.run cache_cfg) in
      let second = RC.serialize_result (RC.run cache_cfg) in
      Alcotest.(check bool) "miss = direct" true (String.equal direct first);
      Alcotest.(check bool) "hit = direct" true (String.equal direct second);
      let s = RC.stats () in
      Alcotest.(check int) "one miss" 1 s.RC.misses;
      Alcotest.(check int) "one hit" 1 s.RC.hits;
      Alcotest.(check int) "no corruption" 0 s.RC.corrupt)

let test_cache_digest_separates_configs () =
  let d1 = RC.digest_of_config cache_cfg in
  let d2 = RC.digest_of_config { cache_cfg with seed = 22 } in
  let d3 = RC.digest_of_config { cache_cfg with duration = 20.5 } in
  Alcotest.(check bool) "seed changes digest" true (d1 <> d2);
  Alcotest.(check bool) "duration changes digest" true (d1 <> d3);
  Alcotest.(check string) "digest is stable" d1 (RC.digest_of_config cache_cfg)

let record_path cfg = Filename.concat cache_dir (RC.digest_of_config cfg ^ ".json")

let test_cache_disk_roundtrip () =
  with_clean_cache (fun () ->
      RC.set_dir (Some cache_dir);
      let first = RC.serialize_result (RC.run cache_cfg) in
      Alcotest.(check bool) "record written" true
        (Sys.file_exists (record_path cache_cfg));
      (* Drop the memo: the next lookup must come from disk. *)
      RC.clear_memory ();
      let from_disk = RC.serialize_result (RC.run cache_cfg) in
      Alcotest.(check bool) "disk hit byte-identical" true
        (String.equal first from_disk);
      let s = RC.stats () in
      Alcotest.(check int) "one store" 1 s.RC.stores;
      Alcotest.(check int) "one disk hit" 1 s.RC.disk_hits;
      Alcotest.(check int) "one miss" 1 s.RC.misses)

let test_cache_corrupt_record_detected () =
  with_clean_cache (fun () ->
      RC.set_dir (Some cache_dir);
      let good = RC.serialize_result (RC.run cache_cfg) in
      let path = record_path cache_cfg in
      let oc = open_out path in
      output_string oc "{ not json ";
      close_out oc;
      RC.clear_memory ();
      RC.reset_stats ();
      let recomputed = RC.serialize_result (RC.run cache_cfg) in
      Alcotest.(check bool) "recompute matches" true
        (String.equal good recomputed);
      let s = RC.stats () in
      Alcotest.(check int) "corruption counted" 1 s.RC.corrupt;
      Alcotest.(check int) "fell back to a real run" 1 s.RC.misses;
      (* The bad record was overwritten by the fresh store. *)
      RC.clear_memory ();
      ignore (RC.run cache_cfg);
      Alcotest.(check int) "repaired record readable" 1
        (RC.stats ()).RC.disk_hits)

let test_cache_disabled_bypasses () =
  with_clean_cache (fun () ->
      RC.set_enabled false;
      ignore (RC.run cache_cfg);
      ignore (RC.run cache_cfg);
      let s = RC.stats () in
      Alcotest.(check int) "no hits" 0 s.RC.hits;
      Alcotest.(check int) "no misses counted" 0 s.RC.misses)

let test_cache_store_failure_degrades () =
  (* An unwritable cache dir must not abort the run: the store error is
     counted, a warning is printed once, and the in-memory memo still
     serves hits. *)
  with_clean_cache (fun () ->
      RC.set_dir (Some "/dev/null/ebrc_nope");
      let first = RC.serialize_result (RC.run cache_cfg) in
      let second = RC.serialize_result (RC.run cache_cfg) in
      Alcotest.(check bool) "memo still serves" true
        (String.equal first second);
      let s = RC.stats () in
      Alcotest.(check bool) "store errors counted" true (s.RC.store_errors > 0);
      Alcotest.(check int) "no store claimed" 0 s.RC.stores;
      Alcotest.(check int) "one hit from memory" 1 s.RC.hits)

let test_cache_robust_roundtrip () =
  (* A faulted config round-trips through the disk store: the record
     carries tfrc_halvings and fault_stats, and the faulted and
     fault-free configs get distinct digests. Pin the fault gate on so
     the test also holds under the EBRC_FAULTS=0 ablation leg. *)
  let was_enabled = Ebrc.Fault.enabled () in
  Ebrc.Fault.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Ebrc.Fault.set_enabled was_enabled)
  @@ fun () ->
  let robust =
    { Ebrc.Scenario.robust_blackout_config with
      Ebrc.Scenario.duration = 60.0;
      warmup = 15.0 }
  in
  let clean = { robust with S.faults = None } in
  Alcotest.(check bool) "faults change the digest" true
    (RC.digest_of_config robust <> RC.digest_of_config clean);
  with_clean_cache (fun () ->
      RC.set_dir (Some cache_dir);
      let first = RC.serialize_result (RC.run robust) in
      RC.clear_memory ();
      let from_disk = RC.serialize_result (RC.run robust) in
      Alcotest.(check bool) "robust disk hit byte-identical" true
        (String.equal first from_disk);
      Alcotest.(check int) "served from disk" 1 (RC.stats ()).RC.disk_hits)

(* ---------------------- hybrid packet/fluid ---------------------- *)

let with_hybrid on f =
  let before = Ebrc.Fluid.enabled () in
  Ebrc.Fluid.set_hybrid on;
  Fun.protect ~finally:(fun () -> Ebrc.Fluid.set_hybrid before) f

(* The EBRC_HYBRID=0 ablation contract: with the layer disabled, a
   config carrying a background is structurally the packet-only run —
   byte-identical serialization AND an identical cache key. *)
let test_hybrid_off_bit_identical () =
  let cfg_bg =
    { quick_cfg with
      S.background = Some (S.default_background ~flows:50_000) }
  in
  let cfg_none = { quick_cfg with S.background = None } in
  with_hybrid false (fun () ->
      Alcotest.(check string) "digests collapse when disabled"
        (RC.digest_of_config cfg_none)
        (RC.digest_of_config cfg_bg);
      let a = RC.serialize_result (S.run cfg_bg) in
      let b = RC.serialize_result (S.run cfg_none) in
      Alcotest.(check bool) "hybrid-off run bit-identical to packet-only"
        true (String.equal a b));
  with_hybrid true (fun () ->
      Alcotest.(check bool) "digests differ when enabled" true
        (RC.digest_of_config cfg_bg <> RC.digest_of_config cfg_none);
      let r = S.run cfg_bg in
      Alcotest.(check bool) "fluid stats present" true
        (r.S.fluid_stats <> None))

let test_hybrid_cache_roundtrip () =
  (* fluid_stats round-trips byte-exactly through the disk store. *)
  with_hybrid true (fun () ->
      let cfg =
        { cache_cfg with
          S.background = Some (S.default_background ~flows:10_000) }
      in
      with_clean_cache (fun () ->
          RC.set_dir (Some cache_dir);
          let first = RC.serialize_result (RC.run cfg) in
          Alcotest.(check bool) "result carries fluid stats" true
            ((RC.run cfg).S.fluid_stats <> None);
          RC.clear_memory ();
          let from_disk = RC.serialize_result (RC.run cfg) in
          Alcotest.(check bool) "hybrid disk hit byte-identical" true
            (String.equal first from_disk);
          Alcotest.(check int) "served from disk" 1
            (RC.stats ()).RC.disk_hits))

(* The hybrid validation gate (CI-enforced version of figure h1): the
   same background population simulated packet-exact (n extra TCP
   flows) and as an n-flow fluid must agree on what the TFRC
   foreground experiences. The fluid is a mean-field model and n = 8
   is its worst case, so the loss-event-rate tolerance is a factor,
   not a percentage; normalized throughput (the paper's headline
   metric) is much tighter because TFRC's formula response compensates
   for the p difference. *)
let test_hybrid_matches_packet_background () =
  with_hybrid true @@ fun () ->
  let base =
    { S.default_config with
      S.with_probe = false; duration = 120.0; warmup = 30.0 }
  in
  let n = 8 in
  let pkt = S.run { base with S.n_tcp = base.S.n_tcp + n } in
  let fl =
    S.run { base with S.background = Some (S.default_background ~flows:n) }
  in
  let formula =
    Ebrc.Formula.create ~rtt:(S.base_rtt base) base.S.tfrc_formula_kind
  in
  let norm (r : S.result) =
    let p = S.pooled_loss_rate r.S.tfrc in
    S.mean_throughput r.S.tfrc
    /. Ebrc.Formula.eval
         (Ebrc.Formula.with_rtt formula ~rtt:(S.mean_rtt r.S.tfrc))
         p
  in
  let p_ratio = S.pooled_loss_rate fl.S.tfrc /. S.pooled_loss_rate pkt.S.tfrc
  and x_ratio = norm fl /. norm pkt in
  Alcotest.(check bool)
    (Printf.sprintf "loss-event rate ratio %.3f in [0.4, 2.5]" p_ratio)
    true
    (p_ratio > 0.4 && p_ratio < 2.5);
  Alcotest.(check bool)
    (Printf.sprintf "normalized throughput ratio %.3f in [0.85, 1.15]"
       x_ratio)
    true
    (x_ratio > 0.85 && x_ratio < 1.15)

(* Satellite e2e: in the many-sources limit the fluid background is an
   exogenous one-state congestion process for the foreground, so
   Eq. (13)'s limit loss-event rate — for any rate profile — is the
   state's drop probability, i.e. the fluid's analytic equilibrium.
   The RED ramp couples the classes (packet foreground is dropped on
   the same avg-occupancy ramp the fluid solves), so the TFRC
   foreground's measured loss-event rate must approach that limit.
   Seeds pinned; capacity scales with N per the many-sources
   normalization. *)
let test_hybrid_many_sources_limit () =
  with_hybrid true @@ fun () ->
  let n = 100_000 in
  let bg = S.default_background ~flows:n in
  let cfg =
    { S.default_config with
      S.seed = 11;
      with_probe = false;
      n_tfrc = 2;
      n_tcp = 0;
      bottleneck_bps = 5.6e5 *. float_of_int n;
      duration = 60.0;
      warmup = 20.0;
      background = Some bg }
  in
  let r = S.run cfg in
  let eq = Ebrc.Fluid.equilibrium (S.fluid_config cfg bg) in
  let cp =
    [| { Ebrc.Many_sources.p_i = eq.Ebrc.Fluid.eq_p; pi_i = 1.0 } |]
  in
  let p_limit =
    Ebrc.Many_sources.limit_loss_event_rate cp
      ~rates:(Ebrc.Many_sources.poisson_profile cp)
  in
  let p_sim = S.pooled_loss_rate r.S.tfrc in
  (* RED's uniform drop spreading (p_a = p_b / (1 - count.p_b)) makes
     inter-drop gaps uniform on [1, 1/p_b], so the realized per-packet
     drop rate the foreground sees is 2.p_b / (1 + p_b), not p_b. The
     fluid's mean-field ramp — and hence the Eq. (13) limit — is in
     p_b units; convert before comparing. *)
  let p_pred = 2.0 *. p_limit /. (1.0 +. p_limit) in
  Alcotest.(check bool)
    (Printf.sprintf "one-state limit is the equilibrium (%.4f)" p_limit)
    true
    (Float.abs (p_limit -. eq.Ebrc.Fluid.eq_p) < 1e-12);
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.4f vs spread-adjusted limit %.4f" p_sim
       p_pred)
    true
    (p_sim > 0.6 *. p_pred && p_sim < 1.67 *. p_pred)

let test_figures_byte_identical_with_cache () =
  (* Satellite guarantee: figure output is byte-identical cache-on
     (cold and warm) vs cache-off. Fig 17 is the cheapest DES-backed
     runner. *)
  let render () =
    String.concat "\n" (List.map T.to_csv (Fig.run_one ~quick:true "17"))
  in
  with_clean_cache (fun () ->
      let cold = render () in
      let warm = render () in
      Alcotest.(check bool) "warm cache pays no misses" true
        ((RC.stats ()).RC.hits > 0);
      RC.set_enabled false;
      let uncached = render () in
      Alcotest.(check bool) "cold = warm" true (String.equal cold warm);
      Alcotest.(check bool) "cached = uncached" true
        (String.equal cold uncached))

(* ------------------------ audio scenario ------------------------ *)

let test_audio_scenario_smoke () =
  let r =
    A.run { A.default_config with duration = 200.0; warmup = 20.0 }
  in
  Alcotest.(check bool) "events happened" true (r.A.events > 10);
  Alcotest.(check bool) "p positive" true (r.A.p_observed > 0.0);
  Alcotest.(check bool) "normalized finite" true
    (Float.is_finite r.A.normalized_throughput)

(* ---------------------------- paths ----------------------------- *)

let test_path_catalog_complete () =
  let names = List.map (fun p -> p.P.name) (P.all_profiles ~pkt:1000) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    [ "INRIA"; "KTH"; "UMASS"; "UMELB"; "DropTail 64"; "DropTail 100"; "RED" ]

let test_path_to_config () =
  let cfg = P.to_config P.inria ~n:4 in
  Alcotest.(check int) "n_tfrc" 4 cfg.S.n_tfrc;
  Alcotest.(check int) "n_tcp" 4 cfg.S.n_tcp;
  feq cfg.S.bottleneck_bps P.inria.P.bottleneck_bps

let test_lab_red_geometry () =
  (* U = 62500 B / 1000 B = 62.5 packets; min 3/20 U, max 5/4 U. *)
  let p = P.lab_red_params ~pkt:1000 in
  feq p.Ebrc.Queue_discipline.min_th 9.375;
  feq p.Ebrc.Queue_discipline.max_th 78.125

let test_table_one () =
  let t = P.table_one () in
  Alcotest.(check bool) "renders" true (String.length (T.to_string t) > 100)

(* --------------------------- figures ---------------------------- *)

let test_registry_complete () =
  let ids = Fig.ids () in
  List.iter
    (fun id ->
      Alcotest.(check bool) ("figure " ^ id) true (List.mem id ids))
    [ "1"; "2"; "3"; "4"; "5"; "6"; "7"; "8"; "9"; "10"; "11"; "12"; "13";
      "14"; "15"; "16"; "17"; "18"; "19"; "t1"; "c3"; "c4"; "a1"; "a2";
      "a3"; "a4"; "a5"; "a6"; "a7"; "a8"; "a9"; "a10"; "a11"; "a12"; "a13";
      "r1"; "r2"; "r3" ]

let test_registry_unknown () =
  match Fig.run_one ~quick:true "nope" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_run_one_result_unknown () =
  match Fig.run_one_result ~quick:true "nope" with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error f ->
      Alcotest.(check string) "failure id" "nope" f.Fig.failed_id;
      let has needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "message lists valid ids" true
        (has "valid" f.Fig.message && has "t1" f.Fig.message)

let test_run_runner_result_failure () =
  (* A runner that dies inside a pool sweep must surface the failing
     task's index and seed with a replay hint, not a bare exception. *)
  let boom : Fig.runner =
   fun ?jobs ~quick () ->
    ignore quick;
    Pool.with_pool ?domains:jobs (fun pool ->
        ignore
          (Pool.init pool 8 (fun i ->
               if i = 5 then failwith "injected crash" else i)));
    []
  in
  match Fig.run_runner_result ~id:"boom" boom ~jobs:2 ~quick:true () with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error f ->
      let has needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check string) "failure id" "boom" f.Fig.failed_id;
      Alcotest.(check bool) "message names the task" true
        (has "task #5" f.Fig.message);
      Alcotest.(check bool) "message suggests --only-task" true
        (has "--only-task 5" f.Fig.message)

let test_run_all_keep_going_collects () =
  (* Break one registry entry's pool sweep indirectly by running a
     tiny fake registry through run_runner_result; then check the real
     keep-going driver over two known-good cheap ids. *)
  let ok : Fig.runner =
   fun ?jobs ~quick () ->
    ignore jobs;
    ignore quick;
    [ T.add_row (T.create ~title:"ok" ~header:[ "v" ]) [ "1" ] ]
  in
  match Fig.run_runner_result ~id:"ok" ok ~quick:true () with
  | Error _ -> Alcotest.fail "good runner must succeed"
  | Ok tables -> Alcotest.(check int) "tables pass through" 1 (List.length tables)

let test_analytic_figures_run () =
  (* The cheap, purely analytic figures should run here; the DES sweeps
     are covered by the integration suite and the bench harness. *)
  List.iter
    (fun id ->
      let tables = Fig.run_one ~quick:true id in
      Alcotest.(check bool) ("figure " ^ id ^ " non-empty") true
        (List.length tables > 0
        && List.for_all (fun t -> String.length (T.to_string t) > 0) tables))
    [ "1"; "2"; "t1"; "c3"; "c4"; "a2"; "a4"; "a11" ]

let test_validate_cheap_checks () =
  (* Run the three cheapest validation checks directly. *)
  let by_id id =
    List.find (fun c -> c.Ebrc.Validate.id = id) Ebrc.Validate.checks
  in
  List.iter
    (fun id ->
      let c = by_id id in
      let passed, evidence = c.Ebrc.Validate.run ~quick:true in
      Alcotest.(check bool) (id ^ ": " ^ evidence) true passed)
    [ "prop4-ratio"; "f1-conditions"; "sqrt-invariance";
      "claim4-closed-form"; "competition-collapse"; "claim3-ordering" ]

let test_validate_table_renders () =
  let c =
    List.find (fun c -> c.Ebrc.Validate.id = "f1-conditions")
      Ebrc.Validate.checks
  in
  let passed, evidence = c.Ebrc.Validate.run ~quick:true in
  let outcome =
    { Ebrc.Validate.check = c; passed; evidence; seconds = 0.0 }
  in
  let t = Ebrc.Validate.to_table [ outcome ] in
  Alcotest.(check bool) "renders" true
    (String.length (T.to_string t) > 50);
  Alcotest.(check bool) "all passed" true
    (Ebrc.Validate.all_passed [ outcome ])

let test_mc_figures_values_sane () =
  (* The Monte-Carlo-only figures run fast in quick mode; check every
     numeric cell of the normalized-throughput tables parses and lies
     in a sane range. *)
  List.iter
    (fun id ->
      let tables = Fig.run_one ~quick:true id in
      Alcotest.(check bool) (id ^ " non-empty") true (List.length tables > 0);
      List.iter
        (fun t ->
          let csv = T.to_csv t in
          let lines = String.split_on_char '\n' csv in
          match lines with
          | [] -> Alcotest.fail "empty csv"
          | _header :: rows ->
              List.iter
                (fun row ->
                  if row <> "" then
                    List.iter
                      (fun cell ->
                        match float_of_string_opt cell with
                        | Some v ->
                            Alcotest.(check bool)
                              (Printf.sprintf "%s: %g finite, sane" id v)
                              true
                              (Float.is_finite v && v > -1e9 && v < 1e9)
                        | None -> () (* label column *))
                      (String.split_on_char ',' row))
                rows)
        tables)
    [ "3"; "4"; "a1"; "a5"; "a8"; "a13" ]

let test_fig2_ratio_note () =
  (* Figure 2 must report the paper's deviation ratio 1.0026. *)
  let tables = Fig.run_one ~quick:true "2" in
  let text = String.concat "\n" (List.map T.to_string tables) in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "ratio 1.0026 reported" true
    (contains text "1.0026")

let () =
  Alcotest.run "exp"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "column mismatch" `Quick test_table_column_mismatch;
          Alcotest.test_case "csv escaping" `Quick test_table_csv_escaping;
          Alcotest.test_case "cell float" `Quick test_cell_float;
          Alcotest.test_case "csv columns" `Quick test_table_csv_roundtrip_columns;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "counts" `Quick test_scenario_counts;
          Alcotest.test_case "utilization" `Quick test_scenario_utilization;
          Alcotest.test_case "throughputs positive" `Quick test_scenario_throughputs_positive;
          Alcotest.test_case "capacity conservation" `Quick test_scenario_capacity_conservation;
          Alcotest.test_case "determinism" `Quick test_scenario_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_scenario_seed_sensitivity;
          Alcotest.test_case "pooled loss rate" `Quick test_scenario_pooled_loss_rate;
          Alcotest.test_case "freelist equivalence" `Quick
            test_scenario_freelist_equivalence;
          Alcotest.test_case "invalid duration" `Quick test_scenario_invalid_duration;
          Alcotest.test_case "bdp/rtt helpers" `Quick test_bdp_and_rtt_helpers;
          Alcotest.test_case "lanes vs heap identical" `Quick
            test_scenario_lanes_vs_heap_identical;
        ] );
      ( "result_cache",
        [
          Alcotest.test_case "memo roundtrip" `Quick test_cache_memo_roundtrip;
          Alcotest.test_case "digest separates configs" `Quick
            test_cache_digest_separates_configs;
          Alcotest.test_case "disk roundtrip" `Quick test_cache_disk_roundtrip;
          Alcotest.test_case "corrupt record detected" `Quick
            test_cache_corrupt_record_detected;
          Alcotest.test_case "store failure degrades" `Quick
            test_cache_store_failure_degrades;
          Alcotest.test_case "robust config roundtrip" `Quick
            test_cache_robust_roundtrip;
          Alcotest.test_case "disabled bypasses" `Quick
            test_cache_disabled_bypasses;
          Alcotest.test_case "figures byte-identical" `Quick
            test_figures_byte_identical_with_cache;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "off = bit-identical packet-only" `Quick
            test_hybrid_off_bit_identical;
          Alcotest.test_case "cache roundtrip" `Quick
            test_hybrid_cache_roundtrip;
          Alcotest.test_case "matches packet background" `Quick
            test_hybrid_matches_packet_background;
          Alcotest.test_case "many-sources limit" `Quick
            test_hybrid_many_sources_limit;
        ] );
      ( "audio_scenario",
        [ Alcotest.test_case "smoke" `Quick test_audio_scenario_smoke ] );
      ( "paths",
        [
          Alcotest.test_case "catalog" `Quick test_path_catalog_complete;
          Alcotest.test_case "to_config" `Quick test_path_to_config;
          Alcotest.test_case "lab RED geometry" `Quick test_lab_red_geometry;
          Alcotest.test_case "table one" `Quick test_table_one;
        ] );
      ( "figures",
        [
          Alcotest.test_case "registry" `Quick test_registry_complete;
          Alcotest.test_case "unknown id" `Quick test_registry_unknown;
          Alcotest.test_case "unknown id (keep-going)" `Quick
            test_run_one_result_unknown;
          Alcotest.test_case "failing runner (keep-going)" `Quick
            test_run_runner_result_failure;
          Alcotest.test_case "good runner passes through" `Quick
            test_run_all_keep_going_collects;
          Alcotest.test_case "analytic figures" `Quick test_analytic_figures_run;
          Alcotest.test_case "fig2 ratio" `Quick test_fig2_ratio_note;
          Alcotest.test_case "validate cheap checks" `Quick test_validate_cheap_checks;
          Alcotest.test_case "validate table" `Quick test_validate_table_renders;
          Alcotest.test_case "MC figures sane" `Quick test_mc_figures_values_sane;
        ] );
    ]
