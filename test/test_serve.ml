(* Tests for the multi-process sweep service: manifest codec
   exactness, lease-claim atomicity (including cross-process
   contention via fork — safe here because these tests spawn no
   domains before forking), crashed-worker recovery, store tmp GC, and
   the serve planner's resume semantics. *)

module Manifest = Ebrc_serve.Manifest
module Task_queue = Ebrc_serve.Task_queue
module Worker = Ebrc_serve.Worker
module Serve = Ebrc_serve.Serve
module Scenario = Ebrc.Scenario
module Rc = Ebrc.Result_cache

let tmp_dir =
  let counter = ref 0 in
  fun name ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ebrc-test-serve-%d-%s-%d" (Unix.getpid ()) name
           !counter)
    in
    let rec rm_rf p =
      match Unix.lstat p with
      | exception Unix.Unix_error _ -> ()
      | { Unix.st_kind = Unix.S_DIR; _ } ->
          Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
          (try Unix.rmdir p with Unix.Unix_error _ -> ())
      | _ -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    in
    rm_rf d;
    Unix.mkdir d 0o755;
    d

(* A config exercising every optional arm of the codec: manual RED,
   AIMD formula, full fault config, fluid background. *)
let ornate_config =
  {
    Scenario.default_config with
    seed = 7;
    bottleneck_bps = 1.25e6;
    queue =
      Scenario.Red_manual
        {
          capacity = 60;
          params =
            {
              Ebrc.Queue_discipline.min_th = 5.0;
              max_th = 15.0;
              max_p = 0.1;
              wq = 0.002;
              byte_mode = false;
              mean_pktsize = 1000;
              gentle = true;
            };
        };
    tfrc_formula_kind = Ebrc.Formula.Aimd { alpha = 0.31; beta = 0.125 };
    reverse_jitter = 0.2;
    duration = 11.5;
    warmup = 2.3;
    faults =
      Some
        {
          Ebrc.Fault.flaps =
            Some
              {
                Ebrc.Fault.first_down = 3.0;
                down_mean = 0.5;
                up_mean = 4.0;
                flap_jitter = 0.1;
                park = false;
              };
          blackouts =
            [ { Ebrc.Fault.start = 1.0; length = 0.2; period = 5.0 } ];
          spike =
            Some ({ Ebrc.Fault.start = 2.0; length = 0.5; period = 0.0 }, 0.05);
          reorder =
            Some
              ({ Ebrc.Fault.start = 0.0; length = 1.0; period = 3.0 }, 0.2, 0.01);
          duplicate =
            Some ({ Ebrc.Fault.start = 4.0; length = 0.3; period = 0.0 }, 0.5);
        };
    background = Some (Scenario.default_background ~flows:1000);
  }

(* ----------------------------- manifest --------------------------- *)

let test_manifest_roundtrip () =
  let m = Manifest.demo ~tasks:3 () in
  let json = Manifest.to_json m in
  match Manifest.of_json json with
  | Error e -> Alcotest.failf "of_json failed: %s" e
  | Ok m' ->
      Alcotest.(check string) "re-save is byte-identical" json
        (Manifest.to_json m');
      Alcotest.(check (list string))
        "digests survive the round-trip"
        (List.map Manifest.digest m.Manifest.tasks)
        (List.map Manifest.digest m'.Manifest.tasks)

let test_manifest_ornate_task () =
  let json = Manifest.task_to_json ornate_config in
  match Manifest.task_of_json json with
  | Error e -> Alcotest.failf "task_of_json failed: %s" e
  | Ok c ->
      Alcotest.(check bool) "config round-trips exactly" true
        (c = ornate_config);
      Alcotest.(check string) "digest is stable"
        (Manifest.digest ornate_config)
        (Manifest.digest c)

let test_manifest_file_io () =
  let dir = tmp_dir "manifest" in
  let path = Filename.concat dir "m.json" in
  let m = Manifest.demo ~tasks:2 ~seed0:9 ~duration:3.0 () in
  Manifest.save ~path m;
  (match Manifest.load ~path with
  | Ok m' ->
      Alcotest.(check string) "load/save byte-identical" (Manifest.to_json m)
        (Manifest.to_json m')
  | Error e -> Alcotest.failf "load failed: %s" e);
  match Manifest.load ~path:(Filename.concat dir "absent.json") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing manifest succeeded"

let test_manifest_rejects_junk () =
  (match Manifest.of_json "{\"schema\":1,\"codec\":\"nope\",\"tasks\":[]}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong codec accepted");
  match Manifest.task_of_json "{\"seed\":1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated task accepted"

(* ---------------------------- task queue -------------------------- *)

let claim_tt =
  Alcotest.testable
    (fun ppf -> function
      | Task_queue.Claimed -> Format.fprintf ppf "Claimed"
      | Task_queue.Busy -> Format.fprintf ppf "Busy"
      | Task_queue.Gone -> Format.fprintf ppf "Gone")
    ( = )

let test_queue_basics () =
  let q = Task_queue.create ~dir:(tmp_dir "queue") () in
  Alcotest.(check (list string)) "empty" [] (Task_queue.pending q);
  Task_queue.enqueue q ~digest:"bbb" ~spec:"{\"b\":1}";
  Task_queue.enqueue q ~digest:"aaa" ~spec:"{\"a\":1}";
  Task_queue.enqueue q ~digest:"aaa" ~spec:"{\"overwrite\":true}";
  Alcotest.(check (list string)) "sorted" [ "aaa"; "bbb" ]
    (Task_queue.pending q);
  Alcotest.(check (option string)) "enqueue is idempotent"
    (Some "{\"a\":1}\n")
    (Task_queue.read_spec q ~digest:"aaa");
  Alcotest.check claim_tt "first claim wins" Task_queue.Claimed
    (Task_queue.claim q ~worker:"w1" ~ttl:60.0 ~digest:"aaa");
  Alcotest.check claim_tt "second claimant busy" Task_queue.Busy
    (Task_queue.claim q ~worker:"w2" ~ttl:60.0 ~digest:"aaa");
  Alcotest.(check int) "one lease" 1 (Task_queue.leased q);
  Task_queue.release q ~digest:"aaa";
  Alcotest.check claim_tt "claimable after release" Task_queue.Claimed
    (Task_queue.claim q ~worker:"w2" ~ttl:60.0 ~digest:"aaa");
  Task_queue.complete q ~digest:"aaa";
  Alcotest.(check (list string)) "completed leaves the queue" [ "bbb" ]
    (Task_queue.pending q);
  Alcotest.check claim_tt "completed task is gone" Task_queue.Gone
    (Task_queue.claim q ~worker:"w2" ~ttl:60.0 ~digest:"aaa");
  Task_queue.fail q ~worker:"w2" ~digest:"bbb" ~message:"boom \"quoted\"";
  Alcotest.(check (list string)) "failed leaves the queue" []
    (Task_queue.pending q);
  match Task_queue.failed q with
  | [ (d, m) ] ->
      Alcotest.(check string) "failed digest" "bbb" d;
      Alcotest.(check string) "failure message survives escaping"
        "boom \"quoted\"" m
  | l -> Alcotest.failf "expected 1 failure record, got %d" (List.length l)

let test_queue_expired_lease_reclaim () =
  let q = Task_queue.create ~dir:(tmp_dir "reclaim") () in
  Task_queue.enqueue q ~digest:"t1" ~spec:"{}";
  (* Negative ttl: the lease is born expired. *)
  Alcotest.check claim_tt "claim with past deadline" Task_queue.Claimed
    (Task_queue.claim q ~worker:"dead" ~ttl:(-1.0) ~digest:"t1");
  Alcotest.check claim_tt "expired lease is reclaimed" Task_queue.Claimed
    (Task_queue.claim q ~worker:"alive" ~ttl:60.0 ~digest:"t1");
  Alcotest.check claim_tt "fresh lease holds" Task_queue.Busy
    (Task_queue.claim q ~worker:"third" ~ttl:60.0 ~digest:"t1")

let test_queue_torn_lease () =
  let dir = tmp_dir "torn" in
  let q = Task_queue.create ~dir () in
  Task_queue.enqueue q ~digest:"t1" ~spec:"{}";
  (* A claimant killed between O_EXCL create and write leaves an empty
     lease file. Within the grace period it still holds the lease;
     once aged past it, it reads as expired. *)
  let lease = Filename.concat (Filename.concat dir "leases") "t1.lease" in
  let oc = open_out lease in
  close_out oc;
  Alcotest.check claim_tt "young torn lease holds" Task_queue.Busy
    (Task_queue.claim q ~worker:"w" ~ttl:60.0 ~digest:"t1");
  let old = Unix.gettimeofday () -. 3600.0 in
  Unix.utimes lease old old;
  Alcotest.check claim_tt "aged torn lease is reclaimed" Task_queue.Claimed
    (Task_queue.claim q ~worker:"w" ~ttl:60.0 ~digest:"t1")

let test_queue_torn_grace_config () =
  (* Explicit parameter wins. *)
  let q = Task_queue.create ~torn_grace:5.0 ~dir:(tmp_dir "grace-a") () in
  Alcotest.(check (float 1e-9)) "explicit grace" 5.0 (Task_queue.torn_grace q);
  (* EBRC_LEASE_GRACE steers the default; junk and empty fall back. *)
  Unix.putenv "EBRC_LEASE_GRACE" "123.5";
  let q = Task_queue.create ~dir:(tmp_dir "grace-b") () in
  Alcotest.(check (float 1e-9)) "env grace" 123.5 (Task_queue.torn_grace q);
  Unix.putenv "EBRC_LEASE_GRACE" "not-a-float";
  let q = Task_queue.create ~dir:(tmp_dir "grace-c") () in
  Alcotest.(check (float 1e-9)) "junk env falls back" 10.0
    (Task_queue.torn_grace q);
  Unix.putenv "EBRC_LEASE_GRACE" "123.5";
  let q = Task_queue.create ~torn_grace:2.0 ~dir:(tmp_dir "grace-d") () in
  Alcotest.(check (float 1e-9)) "explicit still beats env" 2.0
    (Task_queue.torn_grace q);
  Unix.putenv "EBRC_LEASE_GRACE" "";
  (* A short grace turns a freshly torn lease reclaimable quickly. *)
  let dir = tmp_dir "grace-e" in
  let q = Task_queue.create ~torn_grace:0.05 ~dir () in
  Task_queue.enqueue q ~digest:"t1" ~spec:"{}";
  let lease = Filename.concat (Filename.concat dir "leases") "t1.lease" in
  let oc = open_out lease in
  close_out oc;
  Unix.sleepf 0.2;
  Alcotest.check claim_tt "torn lease expired past short grace"
    Task_queue.Claimed
    (Task_queue.claim q ~worker:"w" ~ttl:60.0 ~digest:"t1")

let test_queue_poison_lifecycle () =
  let q = Task_queue.create ~dir:(tmp_dir "poison") () in
  Task_queue.enqueue q ~digest:"bad" ~spec:"{}";
  Task_queue.enqueue q ~digest:"good" ~spec:"{}";
  ignore (Task_queue.claim q ~worker:"w1" ~ttl:60.0 ~digest:"bad");
  Task_queue.poison q ~digest:"bad" ~message:"3 worker death(s) while leased";
  Alcotest.(check (list string)) "poisoned task dequeued" [ "good" ]
    (Task_queue.pending q);
  Alcotest.(check int) "poisoned lease dropped" 0 (Task_queue.leased q);
  (match Task_queue.poisoned q with
  | [ (d, m) ] ->
      Alcotest.(check string) "poisoned digest" "bad" d;
      Alcotest.(check string) "verdict message survives"
        "3 worker death(s) while leased" m
  | l -> Alcotest.failf "expected 1 poison record, got %d" (List.length l));
  Alcotest.check claim_tt "poisoned task is gone to claimants"
    Task_queue.Gone
    (Task_queue.claim q ~worker:"w2" ~ttl:60.0 ~digest:"bad");
  Task_queue.clear_poison q ~digest:"bad";
  Alcotest.(check (list (pair string string))) "verdict cleared" []
    (Task_queue.poisoned q);
  Task_queue.clear_poison q ~digest:"bad" (* idempotent *)

let test_queue_reclaim_worker () =
  let q = Task_queue.create ~dir:(tmp_dir "reclaim-worker") () in
  List.iter
    (fun d -> Task_queue.enqueue q ~digest:d ~spec:"{}")
    [ "a"; "b"; "c" ];
  ignore (Task_queue.claim q ~worker:"w1" ~ttl:60.0 ~digest:"a");
  ignore (Task_queue.claim q ~worker:"w1" ~ttl:60.0 ~digest:"b");
  ignore (Task_queue.claim q ~worker:"w2" ~ttl:60.0 ~digest:"c");
  Alcotest.(check (list (pair string string)))
    "lease holders visible"
    [ ("a", "w1"); ("b", "w1"); ("c", "w2") ]
    (Task_queue.lease_holders q);
  let freed = List.sort String.compare (Task_queue.reclaim_worker q ~worker:"w1") in
  Alcotest.(check (list string)) "only w1's digests freed" [ "a"; "b" ] freed;
  Alcotest.(check (list (pair string string)))
    "w2's lease untouched" [ ("c", "w2") ]
    (Task_queue.lease_holders q);
  Alcotest.check claim_tt "freed digest reclaimable" Task_queue.Claimed
    (Task_queue.claim q ~worker:"w3" ~ttl:60.0 ~digest:"a");
  Alcotest.(check (list string)) "no-op for unknown worker" []
    (Task_queue.reclaim_worker q ~worker:"ghost")

(* Cross-process contention: fork claimants racing for one digest;
   the O_EXCL protocol must elect exactly one winner. Forked before
   any domain is spawned (this binary runs no pool work first). *)
let test_queue_fork_contention () =
  let dir = tmp_dir "contention" in
  let q = Task_queue.create ~dir () in
  Task_queue.enqueue q ~digest:"prize" ~spec:"{}";
  let n = 8 in
  let pids =
    List.init n (fun i ->
        match Unix.fork () with
        | 0 ->
            let q = Task_queue.create ~dir () in
            let outcome =
              Task_queue.claim q
                ~worker:(Printf.sprintf "c%d" i)
                ~ttl:60.0 ~digest:"prize"
            in
            Unix._exit (if outcome = Task_queue.Claimed then 0 else 1)
        | pid -> pid)
  in
  let winners =
    List.fold_left
      (fun acc pid ->
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> acc + 1
        | _, Unix.WEXITED 1 -> acc
        | _ -> Alcotest.fail "claimant child died abnormally")
      0 pids
  in
  Alcotest.(check int) "exactly one winner" 1 winners;
  Alcotest.(check int) "exactly one lease file" 1 (Task_queue.leased q)

(* ------------------------------ gc_tmp ---------------------------- *)

let test_gc_tmp () =
  let dir = tmp_dir "gc" in
  let touch name =
    let oc = open_out (Filename.concat dir name) in
    output_string oc "x";
    close_out oc
  in
  touch ".stale.123.tmp";
  touch ".fresh.456.tmp";
  touch "abcdef.json";
  let old = Unix.gettimeofday () -. 7200.0 in
  Unix.utimes (Filename.concat dir ".stale.123.tmp") old old;
  Alcotest.(check int) "one stale tmp reclaimed" 1 (Rc.gc_tmp dir);
  Alcotest.(check bool) "stale gone" false
    (Sys.file_exists (Filename.concat dir ".stale.123.tmp"));
  Alcotest.(check bool) "fresh tmp survives" true
    (Sys.file_exists (Filename.concat dir ".fresh.456.tmp"));
  Alcotest.(check bool) "records survive" true
    (Sys.file_exists (Filename.concat dir "abcdef.json"));
  Alcotest.(check int) "second sweep finds nothing" 0 (Rc.gc_tmp dir);
  Alcotest.(check int) "missing dir is safe" 0
    (Rc.gc_tmp (Filename.concat dir "nope"))

(* Regression: the serve planner passes gc_tmp a threshold of 2× the
   lease ttl, so a live peer's in-flight tmp file (younger than that)
   must never be swept even when it is older than the default. *)
let test_gc_tmp_age_threshold () =
  let dir = tmp_dir "gc-age" in
  let tmp = Filename.concat dir ".peer.789.tmp" in
  let oc = open_out tmp in
  output_string oc "x";
  close_out oc;
  let age = Unix.gettimeofday () -. 3600.0 in
  Unix.utimes tmp age age;
  Alcotest.(check int) "1h-old tmp survives a 2h threshold" 0
    (Rc.gc_tmp ~max_age:7200.0 dir);
  Alcotest.(check bool) "file still present" true (Sys.file_exists tmp);
  Alcotest.(check int) "and falls to a 30min threshold" 1
    (Rc.gc_tmp ~max_age:1800.0 dir);
  Alcotest.(check bool) "file gone" false (Sys.file_exists tmp)

(* --------------------------- worker + serve ----------------------- *)

let demo_manifest = Manifest.demo ~tasks:3 ~duration:3.0 ()

let serial_store_bytes store =
  Sys.readdir store |> Array.to_list |> List.sort String.compare
  |> List.filter (fun e -> Filename.check_suffix e ".json")
  |> List.map (fun e ->
         let ic = open_in_bin (Filename.concat store e) in
         Fun.protect
           ~finally:(fun () -> close_in_noerr ic)
           (fun () -> (e, really_input_string ic (in_channel_length ic))))

let test_worker_drains_queue () =
  let root = tmp_dir "worker" in
  let qdir = Filename.concat root "queue" in
  let store = Filename.concat root "store" in
  let q = Task_queue.create ~dir:qdir () in
  let outstanding = Serve.plan ~store_dir:store ~queue:q demo_manifest in
  Alcotest.(check int) "all tasks outstanding" 3 outstanding;
  let o = Worker.run { (Worker.default ~queue_dir:qdir) with store_dir = store } in
  Alcotest.(check int) "ran all" 3 o.Worker.ran;
  Alcotest.(check int) "nothing cached" 0 o.Worker.cached;
  Alcotest.(check int) "nothing failed" 0 o.Worker.failed;
  Alcotest.(check (list string)) "queue drained" [] (Task_queue.pending q);
  (* The published store must be byte-identical to a serial in-process
     run of the same configs. *)
  let serial = Filename.concat root "serial" in
  Unix.mkdir serial 0o755;
  List.iter
    (fun cfg -> Rc.store_to ~dir:serial cfg (Scenario.run cfg))
    demo_manifest.Manifest.tasks;
  Alcotest.(check bool) "store byte-identical to serial run" true
    (serial_store_bytes store = serial_store_bytes serial);
  (* Resume: a second plan finds nothing to do; a second worker run
     over a re-primed queue completes by store lookup alone. *)
  Alcotest.(check int) "warm plan enqueues nothing" 0
    (Serve.plan ~store_dir:store ~queue:q demo_manifest);
  List.iter
    (fun cfg ->
      Task_queue.enqueue q ~digest:(Manifest.digest cfg)
        ~spec:(Manifest.task_to_json cfg))
    demo_manifest.Manifest.tasks;
  let o2 =
    Worker.run { (Worker.default ~queue_dir:qdir) with store_dir = store }
  in
  Alcotest.(check int) "resume simulates nothing" 0 o2.Worker.ran;
  Alcotest.(check int) "resume completes from the store" 3 o2.Worker.cached

(* A worker SIGKILL'd mid-task strands a lease; after its ttl a second
   worker must reclaim and finish, ending with the complete result
   set, byte-identical to a serial run. *)
let test_worker_killed_recovery () =
  let root = tmp_dir "killed" in
  let qdir = Filename.concat root "queue" in
  let store = Filename.concat root "store" in
  let q = Task_queue.create ~dir:qdir () in
  ignore (Serve.plan ~store_dir:store ~queue:q demo_manifest);
  (* Child claims the first task with a short ttl and dies without
     completing it — the claim-then-SIGKILL window. *)
  let victim = List.hd (Task_queue.pending q) in
  (match Unix.fork () with
  | 0 ->
      let q = Task_queue.create ~dir:qdir () in
      ignore (Task_queue.claim q ~worker:"victim" ~ttl:0.3 ~digest:victim);
      Unix._exit 0
  | pid -> ignore (Unix.waitpid [] pid));
  Alcotest.(check int) "stranded lease present" 1 (Task_queue.leased q);
  let o =
    Worker.run
      { (Worker.default ~queue_dir:qdir) with store_dir = store; poll = 0.05 }
  in
  Alcotest.(check int) "survivor runs every task" 3 o.Worker.ran;
  Alcotest.(check int) "no failures" 0 o.Worker.failed;
  Alcotest.(check (list string)) "queue drained" [] (Task_queue.pending q);
  let serial = Filename.concat root "serial" in
  Unix.mkdir serial 0o755;
  List.iter
    (fun cfg -> Rc.store_to ~dir:serial cfg (Scenario.run cfg))
    demo_manifest.Manifest.tasks;
  Alcotest.(check bool) "recovered store byte-identical to serial" true
    (serial_store_bytes store = serial_store_bytes serial)

let test_worker_records_bad_spec () =
  let root = tmp_dir "badspec" in
  let qdir = Filename.concat root "queue" in
  let q = Task_queue.create ~dir:qdir () in
  Task_queue.enqueue q ~digest:"nonsense" ~spec:"{\"not\":\"a config\"}";
  let o = Worker.run (Worker.default ~queue_dir:qdir) in
  Alcotest.(check int) "bad spec is a failure" 1 o.Worker.failed;
  Alcotest.(check (list string)) "queue still drains" []
    (Task_queue.pending q);
  match Task_queue.failed q with
  | [ (d, _) ] -> Alcotest.(check string) "failure recorded" "nonsense" d
  | l -> Alcotest.failf "expected 1 failure, got %d" (List.length l)

let test_serve_progress_and_exit_codes () =
  let root = tmp_dir "serve" in
  let path = Filename.concat root "m.json" in
  Manifest.save ~path demo_manifest;
  let d = Serve.default ~manifest_path:path in
  let cfg = { d with Serve.workers = 0; quiet = true } in
  (* Prime-only pass: queue primed, nothing published yet. *)
  Alcotest.(check int) "prime-only exits 0" 0 (Serve.run cfg);
  let q = Task_queue.create ~dir:cfg.Serve.queue_dir () in
  let p = Serve.progress ~store_dir:cfg.Serve.store_dir ~queue:q demo_manifest in
  Alcotest.(check int) "total" 3 p.Serve.total;
  Alcotest.(check int) "queued" 3 p.Serve.queued;
  Alcotest.(check int) "published" 0 p.Serve.published;
  (* Drain in-process, then the same serve invocation is a warm resume. *)
  ignore
    (Worker.run
       {
         (Worker.default ~queue_dir:cfg.Serve.queue_dir) with
         store_dir = cfg.Serve.store_dir;
       });
  Alcotest.(check int) "warm resume exits 0" 0 (Serve.run cfg);
  let p = Serve.progress ~store_dir:cfg.Serve.store_dir ~queue:q demo_manifest in
  Alcotest.(check int) "all published" 3 p.Serve.published;
  Alcotest.(check int) "queue empty" 0 p.Serve.queued;
  Alcotest.(check int) "unreadable manifest exits 2" 2
    (Serve.run
       { cfg with Serve.manifest_path = Filename.concat root "absent.json" })

let test_serve_backoff () =
  Alcotest.(check (float 1e-9)) "first respawn" 0.5 (Serve.backoff 0);
  Alcotest.(check (float 1e-9)) "doubles" 1.0 (Serve.backoff 1);
  Alcotest.(check (float 1e-9)) "doubles again" 2.0 (Serve.backoff 2);
  Alcotest.(check (float 1e-9)) "caps at 15s" 15.0 (Serve.backoff 10);
  Alcotest.(check (float 1e-9)) "stays capped" 15.0 (Serve.backoff 60);
  let rec monotone n =
    n > 12 || (Serve.backoff n <= Serve.backoff (n + 1) && monotone (n + 1))
  in
  Alcotest.(check bool) "monotone nondecreasing" true (monotone 0)

let () =
  Alcotest.run "serve"
    [
      ( "manifest",
        [
          Alcotest.test_case "roundtrip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "ornate task" `Quick test_manifest_ornate_task;
          Alcotest.test_case "file io" `Quick test_manifest_file_io;
          Alcotest.test_case "rejects junk" `Quick test_manifest_rejects_junk;
        ] );
      ( "task_queue",
        [
          Alcotest.test_case "basics" `Quick test_queue_basics;
          Alcotest.test_case "expired lease reclaim" `Quick
            test_queue_expired_lease_reclaim;
          Alcotest.test_case "torn lease" `Quick test_queue_torn_lease;
          Alcotest.test_case "torn-grace config" `Quick
            test_queue_torn_grace_config;
          Alcotest.test_case "poison lifecycle" `Quick
            test_queue_poison_lifecycle;
          Alcotest.test_case "reclaim worker" `Quick test_queue_reclaim_worker;
          Alcotest.test_case "fork contention" `Quick
            test_queue_fork_contention;
        ] );
      ( "gc",
        [
          Alcotest.test_case "store tmp gc" `Quick test_gc_tmp;
          Alcotest.test_case "age threshold" `Quick test_gc_tmp_age_threshold;
        ] );
      ( "worker",
        [
          Alcotest.test_case "drains queue" `Quick test_worker_drains_queue;
          Alcotest.test_case "killed-worker recovery" `Quick
            test_worker_killed_recovery;
          Alcotest.test_case "bad spec" `Quick test_worker_records_bad_spec;
        ] );
      ( "serve",
        [
          Alcotest.test_case "progress and exit codes" `Quick
            test_serve_progress_and_exit_codes;
          Alcotest.test_case "restart backoff" `Quick test_serve_backoff;
        ] );
    ]
