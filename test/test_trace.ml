(* Tests for the bounded-memory time-series recorder and the
   nofeedback-timer behaviour it helps observe. *)

module Trace = Ebrc.Trace

let feq ?(eps = 1e-9) a b =
  Alcotest.(check bool)
    (Printf.sprintf "%.12g ~ %.12g" a b)
    true
    (abs_float (a -. b) <= eps *. (1.0 +. abs_float a +. abs_float b))

let test_record_and_read_back () =
  let t = Trace.create () in
  for i = 0 to 9 do
    Trace.record t ~time:(float_of_int i) ~value:(float_of_int (i * i))
  done;
  Alcotest.(check int) "length" 10 (Trace.length t);
  feq (Trace.times t).(3) 3.0;
  feq (Trace.values t).(3) 9.0;
  Alcotest.(check int) "pairs" 10 (Array.length (Trace.to_pairs t))

let test_decimation_bounds_memory () =
  let t = Trace.create ~capacity:64 () in
  for i = 0 to 9999 do
    Trace.record t ~time:(float_of_int i) ~value:1.0
  done;
  Alcotest.(check bool) "bounded" true (Trace.length t <= 64);
  Alcotest.(check bool) "stride grew" true (Trace.stride t > 1);
  (* The skeleton must still span the whole time range. *)
  let times = Trace.times t in
  Alcotest.(check bool) "covers start" true (times.(0) < 1000.0);
  Alcotest.(check bool) "covers end" true
    (times.(Array.length times - 1) > 8000.0)

let test_decimation_preserves_order () =
  let t = Trace.create ~capacity:32 () in
  for i = 0 to 999 do
    Trace.record t ~time:(float_of_int i) ~value:(float_of_int i)
  done;
  let times = Trace.times t in
  for i = 0 to Array.length times - 2 do
    Alcotest.(check bool) "sorted" true (times.(i) < times.(i + 1))
  done

let test_time_average_step () =
  let t = Trace.create () in
  (* 1 for one second, then 3 for one second: step average = 2 over
     [0,2] but sample-and-hold over recorded points = (1*1 + 3*... the
     last sample has no width, so average = 1*1/(2-0) + 3*1/(2-0). *)
  Trace.record t ~time:0.0 ~value:1.0;
  Trace.record t ~time:1.0 ~value:3.0;
  Trace.record t ~time:2.0 ~value:3.0;
  feq (Trace.time_average t) 2.0

let test_time_average_degenerate () =
  let t = Trace.create () in
  Alcotest.(check bool) "empty nan" true (Float.is_nan (Trace.time_average t));
  Trace.record t ~time:1.0 ~value:7.0;
  feq (Trace.time_average t) 7.0

let test_slope_linear () =
  let t = Trace.create () in
  for i = 0 to 99 do
    Trace.record t ~time:(float_of_int i) ~value:((2.5 *. float_of_int i) +. 1.0)
  done;
  feq ~eps:1e-9 (Trace.slope t) 2.5

let test_slope_constant () =
  let t = Trace.create () in
  for i = 0 to 9 do
    Trace.record t ~time:(float_of_int i) ~value:5.0
  done;
  feq (Trace.slope t) 0.0

let test_growth_linearity_linear () =
  let t = Trace.create () in
  for i = 0 to 199 do
    Trace.record t ~time:(float_of_int i) ~value:(float_of_int i)
  done;
  feq ~eps:1e-6 (Trace.growth_linearity t) 1.0

let test_growth_linearity_concave () =
  let t = Trace.create () in
  for i = 1 to 200 do
    Trace.record t ~time:(float_of_int i) ~value:(sqrt (float_of_int i))
  done;
  Alcotest.(check bool) "sublinear < 1" true (Trace.growth_linearity t < 0.9)

let test_growth_linearity_convex () =
  let t = Trace.create () in
  for i = 1 to 200 do
    let x = float_of_int i in
    Trace.record t ~time:x ~value:(x *. x)
  done;
  Alcotest.(check bool) "superlinear > 1" true (Trace.growth_linearity t > 1.1)

(* --- nan contract (pinned by trace.mli) --- *)

let check_nan name v = Alcotest.(check bool) name true (Float.is_nan v)

let test_nan_contract_empty () =
  let t = Trace.create () in
  check_nan "slope empty" (Trace.slope t);
  check_nan "time_average empty" (Trace.time_average t);
  check_nan "growth_linearity empty" (Trace.growth_linearity t)

let test_nan_contract_single_sample () =
  let t = Trace.create () in
  Trace.record t ~time:2.0 ~value:9.0;
  check_nan "slope single" (Trace.slope t);
  (* One sample is a well-defined (degenerate) average, not nan. *)
  feq (Trace.time_average t) 9.0;
  check_nan "growth_linearity single" (Trace.growth_linearity t)

let test_nan_contract_constant_time () =
  (* All samples at the same instant: zero time variance, so the fit
     is vertical and the sample-and-hold window has zero width. *)
  let t = Trace.create () in
  for i = 0 to 15 do
    Trace.record t ~time:1.0 ~value:(float_of_int i)
  done;
  check_nan "slope constant-time" (Trace.slope t);
  check_nan "time_average constant-time" (Trace.time_average t);
  check_nan "growth_linearity constant-time" (Trace.growth_linearity t)

let test_nan_contract_flat_first_half () =
  (* First-half slope exactly 0: the ratio would divide by zero. *)
  let t = Trace.create () in
  for i = 0 to 99 do
    let v = if i < 50 then 1.0 else float_of_int (i - 49) in
    Trace.record t ~time:(float_of_int i) ~value:v
  done;
  check_nan "growth_linearity flat first half" (Trace.growth_linearity t)

let test_nan_contract_below_min_samples () =
  let t = Trace.create () in
  for i = 0 to 6 do
    Trace.record t ~time:(float_of_int i) ~value:(float_of_int i)
  done;
  (* 7 samples: slope is fine, but growth_linearity needs >= 8. *)
  feq (Trace.slope t) 1.0;
  check_nan "growth_linearity under 8 samples" (Trace.growth_linearity t)

let test_capacity_validation () =
  match Trace.create ~capacity:2 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------- TFRC nofeedback timer --------------------- *)

let test_nofeedback_timer_halves_rate () =
  (* A sender whose receiver goes silent must decay its rate. *)
  let module E = Ebrc.Engine in
  let module TFS = Ebrc.Tfrc_sender in
  let engine = E.create () in
  let sender =
    TFS.create ~initial_rate:100.0 ~nofeedback_rtts:4.0 ~engine ~flow:0
      ~formula:(Ebrc.Formula.create ~rtt:0.1 Ebrc.Formula.Sqrt)
      ()
  in
  TFS.set_transmit sender (fun _ -> ());
  ignore (E.schedule engine ~at:0.0 (fun () -> TFS.start sender));
  (* One feedback seeds srtt = 0.1 and a rate of f(p, srtt). *)
  ignore
    (E.schedule engine ~at:0.05 (fun () ->
         TFS.on_feedback sender ~p_estimate:0.01 ~recv_rate:1000.0
           ~rtt_echo:(-0.05) ~hold:0.0));
  ignore (E.run ~until:10.0 engine);
  (* wait: rtt_echo must be positive to set srtt; use a sent_at of
     0.05-0.1... the echo above is negative so srtt stayed 0 and the
     horizon was 4 * 1s; after 10 s several halvings still fired. *)
  Alcotest.(check bool)
    (Printf.sprintf "%d halvings fired" (TFS.rate_halvings sender))
    true
    (TFS.rate_halvings sender >= 2);
  Alcotest.(check bool) "rate decayed" true (TFS.rate sender < 100.0)

let test_nofeedback_timer_disabled () =
  let module E = Ebrc.Engine in
  let module TFS = Ebrc.Tfrc_sender in
  let engine = E.create () in
  let sender =
    TFS.create ~initial_rate:50.0 ~nofeedback_rtts:0.0 ~engine ~flow:0
      ~formula:(Ebrc.Formula.create ~rtt:0.1 Ebrc.Formula.Sqrt)
      ()
  in
  TFS.set_transmit sender (fun _ -> ());
  ignore (E.schedule engine ~at:0.0 (fun () -> TFS.start sender));
  ignore (E.run ~until:30.0 engine);
  Alcotest.(check int) "no halvings" 0 (TFS.rate_halvings sender);
  feq (TFS.rate sender) 50.0

let test_nofeedback_timer_reset_by_feedback () =
  let module E = Ebrc.Engine in
  let module TFS = Ebrc.Tfrc_sender in
  let engine = E.create () in
  let sender =
    TFS.create ~initial_rate:50.0 ~nofeedback_rtts:4.0 ~engine ~flow:0
      ~formula:(Ebrc.Formula.create ~rtt:0.1 Ebrc.Formula.Sqrt)
      ()
  in
  TFS.set_transmit sender (fun _ -> ());
  ignore (E.schedule engine ~at:0.0 (fun () -> TFS.start sender));
  (* Feed feedback every second (well under the 4 s horizon while srtt
     stays at the 1 s default): the timer must never fire. *)
  let rec feed at =
    if at < 20.0 then
      ignore
        (E.schedule engine ~at (fun () ->
             TFS.on_feedback sender ~p_estimate:0.0 ~recv_rate:0.0
               ~rtt_echo:0.0 ~hold:0.0;
             feed (at +. 1.0)))
  in
  feed 0.5;
  ignore (E.run ~until:20.0 engine);
  Alcotest.(check int) "no halvings with live feedback" 0
    (TFS.rate_halvings sender)

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "record/read" `Quick test_record_and_read_back;
          Alcotest.test_case "decimation bounds memory" `Quick test_decimation_bounds_memory;
          Alcotest.test_case "decimation order" `Quick test_decimation_preserves_order;
          Alcotest.test_case "time average" `Quick test_time_average_step;
          Alcotest.test_case "time average degenerate" `Quick test_time_average_degenerate;
          Alcotest.test_case "slope linear" `Quick test_slope_linear;
          Alcotest.test_case "slope constant" `Quick test_slope_constant;
          Alcotest.test_case "linearity linear" `Quick test_growth_linearity_linear;
          Alcotest.test_case "linearity concave" `Quick test_growth_linearity_concave;
          Alcotest.test_case "linearity convex" `Quick test_growth_linearity_convex;
          Alcotest.test_case "capacity validation" `Quick test_capacity_validation;
        ] );
      ( "nan_contract",
        [
          Alcotest.test_case "empty" `Quick test_nan_contract_empty;
          Alcotest.test_case "single sample" `Quick test_nan_contract_single_sample;
          Alcotest.test_case "constant time" `Quick test_nan_contract_constant_time;
          Alcotest.test_case "flat first half" `Quick test_nan_contract_flat_first_half;
          Alcotest.test_case "below min samples" `Quick test_nan_contract_below_min_samples;
        ] );
      ( "nofeedback_timer",
        [
          Alcotest.test_case "halves on silence" `Quick test_nofeedback_timer_halves_rate;
          Alcotest.test_case "disabled" `Quick test_nofeedback_timer_disabled;
          Alcotest.test_case "reset by feedback" `Quick test_nofeedback_timer_reset_by_feedback;
        ] );
    ]
