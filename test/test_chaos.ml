(* Tests for the chaos layer: the fault-injecting I/O shim's
   zero-overhead-when-off and seeded-determinism contracts, store
   publication converging to byte-identical records under injected
   faults, the scrubber's quarantine partition property (QCheck), and
   the flight recorder's structured failure attributes. *)

module Chaos = Ebrc_chaos.Io_fault
module Manifest = Ebrc_serve.Manifest
module Scenario = Ebrc.Scenario
module Rc = Ebrc.Result_cache
module Flight = Ebrc.Telemetry_flight

let tmp_dir =
  let counter = ref 0 in
  fun name ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ebrc-test-chaos-%d-%s-%d" (Unix.getpid ()) name
           !counter)
    in
    let rec rm_rf p =
      match Unix.lstat p with
      | exception Unix.Unix_error _ -> ()
      | { Unix.st_kind = Unix.S_DIR; _ } ->
          Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
          (try Unix.rmdir p with Unix.Unix_error _ -> ())
      | _ -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    in
    rm_rf d;
    Unix.mkdir d 0o755;
    d

(* Every test that arms the shim must disarm it on the way out, even
   on failure — chaos state is process-global. *)
let with_chaos seed f =
  Chaos.set_seed (Some seed);
  Fun.protect ~finally:(fun () -> Chaos.set_seed None) f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let has_sub hay needle = find_sub hay needle <> None

(* ------------------------- shim off = inert ----------------------- *)

let test_chaos_off_inert () =
  Chaos.set_seed None;
  Alcotest.(check bool) "disabled" false (Chaos.enabled ());
  Alcotest.(check (option int)) "no seed" None (Chaos.seed ());
  let dir = tmp_dir "off" in
  let path = Filename.concat dir "f" in
  (* The guards are no-ops and write is output_string, byte for byte. *)
  Chaos.guard_open path;
  Chaos.guard_rename path;
  let oc = open_out_bin path in
  Chaos.write oc "payload bytes";
  Chaos.fsync oc;
  close_out oc;
  Alcotest.(check string) "write is output_string" "payload bytes"
    (read_file path);
  Alcotest.(check string) "maim is identity" "abc" (Chaos.maim "abc");
  let skew = abs_float (Chaos.now () -. Unix.gettimeofday ()) in
  Alcotest.(check bool) "now is gettimeofday" true (skew < 1.0);
  let s = Chaos.stats () in
  Alcotest.(check int) "no eio" 0 s.Chaos.eio;
  Alcotest.(check int) "no enospc" 0 s.Chaos.enospc;
  Alcotest.(check int) "no torn writes" 0 s.Chaos.torn_writes;
  Alcotest.(check int) "no lost fsyncs" 0 s.Chaos.fsync_lost;
  Alcotest.(check int) "no clock skews" 0 s.Chaos.clock_skews

(* --------------------- seeded fault determinism -------------------- *)

(* Drive a fixed operation sequence and record which ops faulted (and
   how, via the exception message). The same seed must reproduce the
   exact trace and fault tallies. *)
let fault_trace seed =
  with_chaos seed (fun () ->
      let dir = tmp_dir "trace" in
      (* Classify faults by kind, not message — messages embed the
         (run-varying) temp path. *)
      let probe f =
        match f () with
        | () -> "-"
        | exception Sys_error m ->
            if has_sub m "ENOSPC" then "enospc"
            else if has_sub m "torn" then "torn"
            else "eio"
      in
      let trace =
        List.init 120 (fun i ->
            let p = Filename.concat dir (string_of_int i) in
            let opened = probe (fun () -> Chaos.guard_open p) in
            let renamed = probe (fun () -> Chaos.guard_rename p) in
            let wrote =
              probe (fun () ->
                  let oc = open_out_bin p in
                  Fun.protect
                    ~finally:(fun () -> close_out_noerr oc)
                    (fun () ->
                      Chaos.write oc "0123456789abcdef";
                      Chaos.fsync oc))
            in
            String.concat "|" [ opened; renamed; wrote; Chaos.maim "0123456789" ])
      in
      (trace, Chaos.stats ()))

let test_chaos_seeded_determinism () =
  let t1, s1 = fault_trace 42 in
  let t2, s2 = fault_trace 42 in
  Alcotest.(check (list string)) "same seed, same fault trace" t1 t2;
  Alcotest.(check bool) "same seed, same stats" true (s1 = s2);
  Alcotest.(check bool) "faults actually injected" true
    (s1.Chaos.eio + s1.Chaos.enospc + s1.Chaos.torn_writes > 0);
  let t3, _ = fault_trace 43 in
  Alcotest.(check bool) "different seed, different trace" true (t1 <> t3)

(* ---------------- store publication under chaos -------------------- *)

(* Publication through the faulty shim must converge to a record
   byte-identical to a fault-free store: store failures are swallowed
   (warn-once), publication is atomic, and retries are idempotent. *)
let test_store_converges_under_chaos () =
  let cfg =
    { Scenario.default_config with seed = 3; duration = 2.0; warmup = 0.5 }
  in
  let r = Scenario.run cfg in
  let clean = tmp_dir "clean" in
  Rc.store_to ~dir:clean cfg r;
  let faulty = tmp_dir "faulty" in
  with_chaos 1234 (fun () ->
      let attempts = ref 0 in
      while (not (Rc.published ~dir:faulty cfg)) && !attempts < 500 do
        incr attempts;
        Rc.store_to ~dir:faulty cfg r
      done);
  Alcotest.(check bool) "published despite faults" true
    (Rc.published ~dir:faulty cfg);
  let record dir =
    match Rc.list_store ~dir with
    | [ d ] -> read_file (Filename.concat dir (d ^ ".json"))
    | l -> Alcotest.failf "expected 1 record, got %d" (List.length l)
  in
  Alcotest.(check string) "record byte-identical to fault-free store"
    (record clean) (record faulty)

(* ------------------------- scrub property -------------------------- *)

(* A pristine 3-record store, built once; each QCheck iteration copies
   it into a fresh dir, corrupts a chosen subset (key-region byte flip
   or truncation — both verifiably detectable), scrubs, and checks the
   partition invariant: quarantined ∪ surviving = original, exactly
   the corrupted records are quarantined, survivors are byte-intact,
   and re-publishing restores byte-identity (self-healing resume). *)
let scrub_manifest = Manifest.demo ~tasks:3 ~duration:2.0 ()

let pristine =
  lazy
    (let dir = tmp_dir "pristine" in
     List.iter
       (fun cfg -> Rc.store_to ~dir cfg (Scenario.run cfg))
       scrub_manifest.Manifest.tasks;
     List.map
       (fun d -> (d, read_file (Filename.concat dir (d ^ ".json"))))
       (Rc.list_store ~dir))

let corrupt ~mode ~at content =
  match mode with
  | `Flip ->
      (* Flip a byte inside the embedded key: either the digest check
         or the JSON parse must catch it. *)
      let b = Bytes.of_string content in
      let k =
        match find_sub content "\"key\"" with
        | Some k -> k
        | None -> Alcotest.fail "record has no key field"
      in
      let i = k + 8 + (at mod 16) in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      Bytes.to_string b
  | `Truncate ->
      (* Any proper prefix short of the closing brace is unparsable. *)
      String.sub content 0 (1 + (at mod (String.length content - 2)))

let scrub_partition_prop (mask, mode_bits, at) =
  let records = Lazy.force pristine in
  let dir = tmp_dir "scrub" in
  let corrupted =
    List.filteri
      (fun i (digest, bytes) ->
        let hit = mask land (1 lsl i) <> 0 in
        let bytes =
          if hit then
            corrupt
              ~mode:(if mode_bits land (1 lsl i) <> 0 then `Flip else `Truncate)
              ~at bytes
          else bytes
        in
        let oc = open_out_bin (Filename.concat dir (digest ^ ".json")) in
        output_string oc bytes;
        close_out oc;
        hit)
      records
    |> List.map fst
    |> List.sort String.compare
  in
  let rep = Rc.scrub ~dir () in
  let surviving = Rc.list_store ~dir in
  let quarantined = List.sort String.compare rep.Rc.scrub_quarantined in
  (* Partition: nothing deleted, every record accounted for. *)
  List.sort String.compare (quarantined @ surviving)
  = List.sort String.compare (List.map fst records)
  && rep.Rc.scrub_checked = List.length records
  && rep.Rc.scrub_ok = List.length surviving
  && quarantined = corrupted
  && List.for_all
       (fun d -> Sys.file_exists (Filename.concat rep.Rc.scrub_dir (d ^ ".json")))
       quarantined
  (* Survivors untouched, and re-publishing the quarantined configs
     restores the store to byte-identity with the pristine build. *)
  && List.for_all
       (fun (d, bytes) ->
         if List.mem d quarantined then true
         else read_file (Filename.concat dir (d ^ ".json")) = bytes)
       records
  &&
  (List.iter
     (fun cfg -> Rc.store_to ~dir cfg (Scenario.run cfg))
     scrub_manifest.Manifest.tasks;
   List.for_all
     (fun (d, bytes) -> read_file (Filename.concat dir (d ^ ".json")) = bytes)
     records)

let scrub_partition =
  QCheck.Test.make ~name:"scrub partitions the store; resume self-heals"
    ~count:30
    QCheck.(triple (int_range 0 7) (int_range 0 7) (int_range 0 10_000))
    scrub_partition_prop

let test_scrub_clean_store () =
  let records = Lazy.force pristine in
  let dir = tmp_dir "scrub-clean" in
  List.iter
    (fun (d, bytes) ->
      let oc = open_out_bin (Filename.concat dir (d ^ ".json")) in
      output_string oc bytes;
      close_out oc)
    records;
  let rep = Rc.scrub ~dir () in
  Alcotest.(check int) "all checked" (List.length records) rep.Rc.scrub_checked;
  Alcotest.(check int) "all ok" (List.length records) rep.Rc.scrub_ok;
  Alcotest.(check (list string)) "nothing quarantined" []
    rep.Rc.scrub_quarantined;
  Alcotest.(check bool) "empty store is fine" true
    ((Rc.scrub ~dir:(tmp_dir "scrub-empty") ()).Rc.scrub_checked = 0)

(* ------------------------ flight recorder -------------------------- *)

let test_flight_attrs () =
  let dir = tmp_dir "flight" in
  Flight.set_dir dir;
  Flight.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Flight.set_enabled false)
    (fun () ->
      Flight.on_exn ~reason:"worker.task"
        ~attrs:[ ("digest", "abc123"); ("chaos_seed", "99") ]
        (Failure "task exploded");
      match Flight.last_dump () with
      | None -> Alcotest.fail "no dump written"
      | Some path ->
          let body = read_file path in
          Alcotest.(check bool) "digest attr in dump" true
            (has_sub body "\"digest\":\"abc123\"");
          Alcotest.(check bool) "chaos seed attr in dump" true
            (has_sub body "\"chaos_seed\":\"99\"");
          Alcotest.(check bool) "reason in dump" true
            (has_sub body "worker.task"))

let () =
  Alcotest.run "chaos"
    [
      ( "shim",
        [
          Alcotest.test_case "off = inert" `Quick test_chaos_off_inert;
          Alcotest.test_case "seeded determinism" `Quick
            test_chaos_seeded_determinism;
        ] );
      ( "store",
        [
          Alcotest.test_case "publication converges under chaos" `Quick
            test_store_converges_under_chaos;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "clean store" `Quick test_scrub_clean_store;
          QCheck_alcotest.to_alcotest scrub_partition;
        ] );
      ( "flight",
        [ Alcotest.test_case "failure attrs" `Quick test_flight_attrs ] );
    ]
