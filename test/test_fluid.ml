(* Tests for the hybrid packet/fluid layer: the resumable Ode.System
   stepper, the fluid background aggregate (convergence to its analytic
   equilibrium, sync determinism, quantum gating), and the flows1m
   hybrid bench (determinism at equal seeds; the fluid visibly couples
   when on). The scenario-level structural-inertness ablation
   (EBRC_HYBRID=0 bit-identity) lives in test_exp. Toggle-sensitive
   tests pin Fluid.set_hybrid and restore it, so the suite passes under
   the EBRC_HYBRID=0 ablation leg. *)

module Ode = Ebrc.Ode
module Fluid = Ebrc.Fluid
module Flock = Ebrc.Flock

let with_hybrid on f =
  let before = Fluid.enabled () in
  Fluid.set_hybrid on;
  Fun.protect ~finally:(fun () -> Fluid.set_hybrid before) f

(* ------------------------- Ode.System ------------------------------ *)

(* dy/dt = -y, y(0) = 1: resumed integration in many small bursts must
   agree with one adaptive sweep and with exp(-t). *)
let test_system_resume_matches_oneshot () =
  let f _t y dy = Float.Array.set dy 0 (-.Float.Array.get y 0) in
  let y0 = Float.Array.make 1 1.0 in
  let sys = Ode.System.create ~f ~t0:0.0 ~y0 () in
  let t = ref 0.0 in
  while !t < 5.0 -. 1e-9 do
    t := Float.min 5.0 (!t +. 0.037);
    Ode.System.advance sys !t
  done;
  let resumed = Ode.System.value sys 0 in
  Alcotest.(check bool)
    "landed exactly on target" true
    (Ode.System.time sys = 5.0);
  let exact = exp (-5.0) in
  Alcotest.(check bool)
    (Printf.sprintf "resumed %.9g vs exact %.9g" resumed exact)
    true
    (Float.abs (resumed -. exact) /. exact < 1e-4);
  let oneshot =
    Ode.integrate_adaptive (fun _ y -> -.y) ~t0:0.0 ~t1:5.0 ~y0:1.0
  in
  Alcotest.(check bool)
    "resumed agrees with one-shot scalar engine" true
    (Float.abs (resumed -. oneshot) /. exact < 1e-4)

(* A 2-D rotation (harmonic oscillator): energy is conserved, so the
   vector path of the stepper is exercised with a known invariant. *)
let test_system_oscillator_energy () =
  let f _t y dy =
    Float.Array.set dy 0 (Float.Array.get y 1);
    Float.Array.set dy 1 (-.Float.Array.get y 0)
  in
  let y0 = Float.Array.make 2 0.0 in
  Float.Array.set y0 0 1.0;
  let sys = Ode.System.create ~rtol:1e-8 ~atol:1e-10 ~f ~t0:0.0 ~y0 () in
  for k = 1 to 100 do
    Ode.System.advance sys (0.2 *. float_of_int k)
  done;
  let x = Ode.System.value sys 0 and v = Ode.System.value sys 1 in
  let energy = (x *. x) +. (v *. v) in
  Alcotest.(check bool)
    (Printf.sprintf "energy %.9g stays 1" energy)
    true
    (Float.abs (energy -. 1.0) < 1e-5);
  Alcotest.(check bool)
    "x tracks cos(20)" true
    (Float.abs (x -. cos 20.0) < 1e-5)

let test_system_past_target_rejected () =
  let f _t _y dy = Float.Array.set dy 0 1.0 in
  let sys =
    Ode.System.create ~f ~t0:0.0 ~y0:(Float.Array.make 1 0.0) ()
  in
  Ode.System.advance sys 1.0;
  Alcotest.check_raises "past target"
    (Invalid_argument "Ode.System.advance: target in the past")
    (fun () -> Ode.System.advance sys 0.5)

let test_system_set_invalidate () =
  (* dy/dt reads a mutable input; flipping it without invalidate would
     reuse the stale FSAL slope for the first stage. [set] on the state
     must also refresh. *)
  let gain = ref 1.0 in
  let f _t y dy = Float.Array.set dy 0 (!gain *. Float.Array.get y 0) in
  let sys =
    Ode.System.create ~f ~t0:0.0 ~y0:(Float.Array.make 1 1.0) ()
  in
  Ode.System.advance sys 1.0;
  gain := -1.0;
  Ode.System.invalidate sys;
  Ode.System.advance sys 2.0;
  (* exp(1) then exp(-1) back to 1. *)
  let y = Ode.System.value sys 0 in
  Alcotest.(check bool)
    (Printf.sprintf "grow then shrink returns to 1 (got %.9g)" y)
    true
    (Float.abs (y -. 1.0) < 1e-3);
  Ode.System.set sys 0 42.0;
  Alcotest.(check (float 0.0)) "set visible" 42.0 (Ode.System.value sys 0)

(* --------------------------- Fluid --------------------------------- *)

let test_cfg =
  Fluid.default ~flows:100 ~capacity_pps:12_500.0 ~base_rtt:0.05
    ~qmax:625.0 ()

let test_equilibrium_balances () =
  let eq = Fluid.equilibrium test_cfg in
  Alcotest.(check bool) "p in (0,1)" true (eq.Fluid.eq_p > 0.0 && eq.Fluid.eq_p < 1.0);
  (* The fixed point balances admitted demand against capacity. *)
  let demand =
    float_of_int test_cfg.Fluid.flows *. eq.Fluid.eq_w /. eq.Fluid.eq_rtt
    *. (1.0 -. eq.Fluid.eq_p)
  in
  Alcotest.(check bool)
    (Printf.sprintf "demand %.1f balances capacity %.1f" demand
       test_cfg.Fluid.capacity_pps)
    true
    (Float.abs (demand -. test_cfg.Fluid.capacity_pps)
     /. test_cfg.Fluid.capacity_pps
    < 1e-6);
  (* W* = sqrt(2/p): the AIMD fixed point. *)
  Alcotest.(check bool)
    "w = sqrt(2/p)" true
    (Float.abs (eq.Fluid.eq_w -. sqrt (2.0 /. eq.Fluid.eq_p)) < 1e-9)

let test_fluid_converges_to_equilibrium () =
  with_hybrid true (fun () ->
      let fl = Fluid.create test_cfg in
      let t = ref 0.0 in
      while !t < 120.0 -. 1e-9 do
        t := !t +. 0.01;
        Fluid.sync fl ~now:!t
      done;
      let eq = Fluid.equilibrium test_cfg in
      let w = Fluid.window fl in
      Alcotest.(check bool)
        (Printf.sprintf "window %.3f near eq %.3f" w eq.Fluid.eq_w)
        true
        (Float.abs (w -. eq.Fluid.eq_w) /. eq.Fluid.eq_w < 0.25);
      let p = Fluid.drop_prob fl in
      Alcotest.(check bool)
        (Printf.sprintf "drop prob %.4f near eq %.4f" p eq.Fluid.eq_p)
        true
        (Float.abs (p -. eq.Fluid.eq_p) /. eq.Fluid.eq_p < 0.5);
      let st = Fluid.stats fl in
      Alcotest.(check bool) "advances counted" true (st.Fluid.advances > 0);
      Alcotest.(check bool)
        "ODE steps bounded (resumable stepper reuses its step size)"
        true
        (st.Fluid.ode.Ode.accepted < 200_000))

let test_fluid_sync_deterministic () =
  with_hybrid true (fun () ->
      let run () =
        let fl = Fluid.create test_cfg in
        for k = 1 to 500 do
          Fluid.sync fl ~now:(0.0137 *. float_of_int k);
          if k mod 50 = 0 then Fluid.on_packet_arrival fl;
          if k mod 70 = 0 then Fluid.set_pkt_occupancy fl (k mod 11)
        done;
        (Fluid.window fl, Fluid.queue_pkts fl, Fluid.fg_rate fl)
      in
      let a = run () and b = run () in
      Alcotest.(check bool) "bit-identical state" true (a = b))

let test_fluid_quantum_gating () =
  with_hybrid true (fun () ->
      let fl = Fluid.create test_cfg in
      Fluid.sync fl ~now:0.5;
      let w = Fluid.window fl in
      let st = Fluid.stats fl in
      (* Sub-quantum nudges must not move the state. *)
      Fluid.sync fl ~now:0.5001;
      Fluid.sync fl ~now:0.5009;
      Alcotest.(check (float 0.0)) "state unchanged" w (Fluid.window fl);
      Alcotest.(check int)
        "no extra advances" st.Fluid.advances
        (Fluid.stats fl).Fluid.advances)

let test_fluid_validates () =
  Alcotest.check_raises "flows >= 1"
    (Invalid_argument "Fluid: flows must be >= 1")
    (fun () ->
      ignore
        (Fluid.create
           (Fluid.default ~flows:0 ~capacity_pps:1.0 ~base_rtt:0.1
              ~qmax:10.0 ())))

(* ------------------------ flows1m bench ---------------------------- *)

let hybrid_args =
  (* Small enough for CI, large enough to exercise queue contention. *)
  fun () ->
    Flock.run_hybrid ~fg_flows:500 ~bg_flows:5_000 ~duration:2.0 ~seed:7 ()

let test_hybrid_deterministic () =
  with_hybrid true (fun () ->
      let a = hybrid_args () and b = hybrid_args () in
      Alcotest.(check int)
        "fingerprints agree" a.Flock.fingerprint b.Flock.fingerprint;
      Alcotest.(check int) "events agree" a.Flock.events b.Flock.events;
      Alcotest.(check bool) "fluid stats present" true (a.Flock.fluid <> None);
      Alcotest.(check bool) "packets flowed" true (a.Flock.delivered > 0))

let test_hybrid_couples_when_on () =
  let on = with_hybrid true hybrid_args in
  let off = with_hybrid false hybrid_args in
  Alcotest.(check bool) "fluid stats absent when off" true
    (off.Flock.fluid = None);
  (* The fluid holds queue share and capacity: the foreground must see
     a different (more contended) path when the hybrid layer is on. *)
  Alcotest.(check bool)
    "coupling changes the foreground's fate" true
    (on.Flock.fingerprint <> off.Flock.fingerprint);
  Alcotest.(check bool)
    "background causes foreground drops" true
    (on.Flock.dropped >= off.Flock.dropped)

let test_flock_pool_backing () =
  let e = Ebrc.Engine.create () in
  let fl = Flock.create ~flows:100 ~seed:3 e in
  let pool = Flock.pool fl in
  Alcotest.(check int) "pool sized to flock" 100
    (Ebrc.Flow_pool.length pool);
  ignore (Ebrc.Engine.run ~until:5.0 e);
  (* Gaps live in the rate column and drive the schedule. *)
  let g = Float.Array.get pool.Ebrc.Flow_pool.rate 0 in
  Alcotest.(check bool) "gap in [0.8,1.2)" true (g >= 0.8 && g < 1.2);
  Alcotest.(check bool) "sequences advanced" true
    (pool.Ebrc.Flow_pool.seq.(0) > 0)

let () =
  Alcotest.run "fluid"
    [
      ( "ode-system",
        [
          Alcotest.test_case "resume matches one-shot" `Quick
            test_system_resume_matches_oneshot;
          Alcotest.test_case "oscillator energy" `Quick
            test_system_oscillator_energy;
          Alcotest.test_case "past target rejected" `Quick
            test_system_past_target_rejected;
          Alcotest.test_case "set/invalidate" `Quick
            test_system_set_invalidate;
        ] );
      ( "fluid",
        [
          Alcotest.test_case "equilibrium balances" `Quick
            test_equilibrium_balances;
          Alcotest.test_case "converges to equilibrium" `Quick
            test_fluid_converges_to_equilibrium;
          Alcotest.test_case "sync deterministic" `Quick
            test_fluid_sync_deterministic;
          Alcotest.test_case "quantum gating" `Quick
            test_fluid_quantum_gating;
          Alcotest.test_case "config validation" `Quick test_fluid_validates;
        ] );
      ( "hybrid-bench",
        [
          Alcotest.test_case "deterministic at equal seeds" `Quick
            test_hybrid_deterministic;
          Alcotest.test_case "fluid couples when on" `Quick
            test_hybrid_couples_when_on;
          Alcotest.test_case "flock rides the flow pool" `Quick
            test_flock_pool_backing;
        ] );
    ]
