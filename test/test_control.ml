(* Tests for the basic and comprehensive control engines: the Palm
   throughput formulas (Props 1-3), the theorem predicates, and
   Monte-Carlo validation of the paper's core claims. *)

module F = Ebrc.Formula
module LI = Ebrc.Loss_interval
module LP = Ebrc.Loss_process
module BC = Ebrc.Basic_control
module CC = Ebrc.Comprehensive_control
module Th = Ebrc.Theorems
module Prng = Ebrc.Prng

let feq ?(eps = 1e-9) a b =
  Alcotest.(check bool)
    (Printf.sprintf "%.12g ~ %.12g" a b)
    true
    (abs_float (a -. b) <= eps *. (1.0 +. abs_float a +. abs_float b))

let sqrt_f = F.create ~rtt:1.0 F.Sqrt
let pftk_simpl = F.create ~rtt:1.0 F.Pftk_simplified

let run_basic ?(seed = 11) ?(cycles = 100_000) ~kind ~l ~p ~cv () =
  let rng = Prng.create ~seed in
  let process = LP.iid_shifted_exponential rng ~p ~cv in
  let formula = F.create ~rtt:1.0 kind in
  let estimator = LI.of_tfrc ~l in
  BC.simulate ~formula ~estimator ~process ~cycles ()

(* ----------------------- Proposition 1 ------------------------- *)

let test_palm_throughput_constant_trajectory () =
  let v = 25.0 in
  let thetas = Array.make 50 v in
  let weights = Ebrc.Weights.tfrc 8 in
  feq (BC.palm_throughput ~formula:sqrt_f ~weights thetas)
    (F.eval sqrt_f (1.0 /. v))

let test_palm_throughput_two_point_exact () =
  (* Hand-computed Prop-1 value on a deterministic alternating
     trajectory with L = 1 (thetahat_n = theta_{n-1}). Cycle pairs
     (thetahat, theta): (10,20),(20,10),(10,20),(20,10). *)
  let thetas = [| 10.0; 20.0; 10.0; 20.0; 10.0 |] in
  let weights = [| 1.0 |] in
  let d1 = 20.0 /. F.eval sqrt_f 0.1 and d2 = 10.0 /. F.eval sqrt_f 0.05 in
  feq
    (BC.palm_throughput ~formula:sqrt_f ~weights thetas)
    (60.0 /. ((2.0 *. d1) +. (2.0 *. d2)))

let test_palm_throughput_too_short () =
  match
    BC.palm_throughput ~formula:sqrt_f ~weights:(Ebrc.Weights.tfrc 8)
      (Array.make 8 10.0)
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_simulate_agrees_with_palm_formula () =
  (* The streaming cycle loop and the trajectory-based Prop-1 evaluation
     must agree on the same interval sequence. *)
  let rng = Prng.create ~seed:3 in
  let thetas =
    Array.init 5008 (fun _ -> Ebrc.Dist.exponential_mean rng ~mean:20.0)
  in
  let weights = Ebrc.Weights.tfrc 8 in
  let direct = BC.palm_throughput ~formula:pftk_simpl ~weights thetas in
  let estimator = LI.create ~weights in
  for i = 0 to 7 do
    LI.record estimator thetas.(i)
  done;
  let num = ref 0.0 and den = ref 0.0 in
  for i = 8 to 5007 do
    let thetahat = LI.estimate estimator in
    let theta = thetas.(i) in
    num := !num +. theta;
    den := !den +. (theta /. F.eval pftk_simpl (1.0 /. thetahat));
    LI.record estimator theta
  done;
  feq ~eps:1e-9 (!num /. !den) direct

(* -------------------- Theorem 1 validation --------------------- *)

let test_sqrt_conservative_iid () =
  List.iter
    (fun l ->
      let r = run_basic ~kind:F.Sqrt ~l ~p:0.1 ~cv:0.9 () in
      Alcotest.(check bool)
        (Printf.sprintf "SQRT L=%d normalized %.3f <= 1" l r.BC.normalized)
        true
        (r.BC.normalized <= 1.02))
    [ 1; 2; 4; 8; 16 ]

let test_pftk_conservative_iid () =
  List.iter
    (fun p ->
      let r = run_basic ~kind:F.Pftk_simplified ~l:8 ~p ~cv:0.9 () in
      Alcotest.(check bool)
        (Printf.sprintf "PFTK p=%.2f normalized %.3f <= 1" p r.BC.normalized)
        true
        (r.BC.normalized <= 1.02))
    [ 0.01; 0.05; 0.1; 0.2 ]

let test_more_convex_more_conservative () =
  let s = run_basic ~kind:F.Sqrt ~l:4 ~p:0.2 ~cv:0.9 () in
  let k = run_basic ~kind:F.Pftk_simplified ~l:4 ~p:0.2 ~cv:0.9 () in
  Alcotest.(check bool)
    (Printf.sprintf "PFTK %.3f < SQRT %.3f" k.BC.normalized s.BC.normalized)
    true
    (k.BC.normalized < s.BC.normalized)

let test_larger_l_less_conservative () =
  let r2 = run_basic ~kind:F.Pftk_simplified ~l:2 ~p:0.1 ~cv:0.9 () in
  let r16 = run_basic ~kind:F.Pftk_simplified ~l:16 ~p:0.1 ~cv:0.9 () in
  Alcotest.(check bool)
    (Printf.sprintf "L=16 %.3f > L=2 %.3f" r16.BC.normalized r2.BC.normalized)
    true
    (r16.BC.normalized > r2.BC.normalized)

let test_heavier_loss_more_conservative_pftk () =
  let r_small = run_basic ~kind:F.Pftk_simplified ~l:8 ~p:0.02 ~cv:0.9 () in
  let r_big = run_basic ~kind:F.Pftk_simplified ~l:8 ~p:0.3 ~cv:0.9 () in
  Alcotest.(check bool) "heavier loss more conservative" true
    (r_big.BC.normalized < r_small.BC.normalized)

let test_sqrt_normalized_invariant_in_p () =
  let r1 = run_basic ~seed:5 ~kind:F.Sqrt ~l:4 ~p:0.02 ~cv:0.9 () in
  let r2 = run_basic ~seed:5 ~kind:F.Sqrt ~l:4 ~p:0.3 ~cv:0.9 () in
  Alcotest.(check bool)
    (Printf.sprintf "%.4f vs %.4f" r1.BC.normalized r2.BC.normalized)
    true
    (abs_float (r1.BC.normalized -. r2.BC.normalized) < 0.02)

let test_covariance_iid_near_zero () =
  let r = run_basic ~kind:F.Sqrt ~l:8 ~p:0.05 ~cv:0.9 ~cycles:200_000 () in
  let norm_cov =
    r.BC.cov_theta_thetahat *. r.BC.p_observed *. r.BC.p_observed
  in
  Alcotest.(check bool)
    (Printf.sprintf "normalized cov %.4f near 0" norm_cov)
    true
    (abs_float norm_cov < 0.01)

let test_observed_p_matches_target () =
  let r = run_basic ~kind:F.Sqrt ~l:8 ~p:0.1 ~cv:0.8 () in
  Alcotest.(check bool)
    (Printf.sprintf "p_observed %.4f ~ 0.1" r.BC.p_observed)
    true
    (abs_float (r.BC.p_observed -. 0.1) < 0.005)

let test_markov_phases_can_be_nonconservative () =
  (* Predictable (positively correlated) intervals break (C1); the
     control becomes less conservative than in the iid case. *)
  let rng = Prng.create ~seed:77 in
  let process =
    LP.markov_phases rng ~mean_good:60.0 ~mean_bad:4.0 ~phase_length:40.0
  in
  let estimator = LI.of_tfrc ~l:4 in
  let r = BC.simulate ~formula:sqrt_f ~estimator ~process ~cycles:200_000 () in
  Alcotest.(check bool) "cov > 0" true (r.BC.cov_theta_thetahat > 0.0);
  let iid = run_basic ~kind:F.Sqrt ~l:4 ~p:r.BC.p_observed ~cv:0.9 () in
  Alcotest.(check bool)
    (Printf.sprintf "phases %.3f > iid %.3f" r.BC.normalized iid.BC.normalized)
    true
    (r.BC.normalized > iid.BC.normalized)

(* ------------------ Theorem 2 / audio regime ------------------- *)

(* Basic control against a real-time loss process (exponential
   durations independent of the rate): cov[X0, S0] = 0, the audio
   regime. theta_n = X_n * S_n. *)
let run_realtime_losses ~kind ~l ~event_rate ~cycles ~seed =
  let rng = Prng.create ~seed in
  let formula = F.create ~rtt:1.0 kind in
  let estimator = LI.of_tfrc ~l in
  let mean_s = 1.0 /. event_rate in
  LI.prime estimator (F.eval formula event_rate *. mean_s);
  let total_packets = ref 0.0 and total_time = ref 0.0 in
  for _ = 1 to cycles do
    let thetahat = LI.estimate estimator in
    let x = F.eval formula (1.0 /. thetahat) in
    let s = Ebrc.Dist.exponential rng ~rate:event_rate in
    let theta = Float.max (x *. s) 1e-6 in
    total_packets := !total_packets +. theta;
    total_time := !total_time +. s;
    LI.record estimator theta
  done;
  let throughput = !total_packets /. !total_time in
  let p = float_of_int cycles /. !total_packets in
  throughput /. F.eval formula p

let test_realtime_sqrt_conservative () =
  let norm =
    run_realtime_losses ~kind:F.Sqrt ~l:4 ~event_rate:1.0 ~cycles:200_000
      ~seed:13
  in
  Alcotest.(check bool)
    (Printf.sprintf "SQRT realtime normalized %.3f <= 1" norm)
    true (norm <= 1.005)

let test_realtime_pftk_heavy_loss_nonconservative () =
  let norm =
    run_realtime_losses ~kind:F.Pftk_simplified ~l:4 ~event_rate:1.0
      ~cycles:200_000 ~seed:14
  in
  Alcotest.(check bool)
    (Printf.sprintf "PFTK heavy-loss realtime normalized %.3f > 1" norm)
    true (norm > 1.0)

(* ------------------- comprehensive control --------------------- *)

let run_comprehensive ?(seed = 21) ?(cycles = 50_000) ~engine ~kind ~l ~p ~cv
    () =
  let rng = Prng.create ~seed in
  let process = LP.iid_shifted_exponential rng ~p ~cv in
  let formula = F.create ~rtt:1.0 kind in
  let estimator = LI.of_tfrc ~l in
  CC.simulate ~engine ~formula ~estimator ~process ~cycles ()

let test_comprehensive_at_least_basic () =
  List.iter
    (fun kind ->
      let b = run_basic ~seed:31 ~kind ~l:8 ~p:0.05 ~cv:0.9 () in
      let c =
        run_comprehensive ~seed:31 ~engine:CC.Closed_form ~kind ~l:8 ~p:0.05
          ~cv:0.9 ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: compr %.4f >= basic %.4f"
           (F.name (F.create kind))
           c.CC.normalized b.BC.normalized)
        true
        (c.CC.normalized >= b.BC.normalized -. 0.01))
    [ F.Sqrt; F.Pftk_simplified ]

let test_closed_form_matches_ode () =
  List.iter
    (fun kind ->
      let a =
        run_comprehensive ~seed:41 ~cycles:3000 ~engine:CC.Closed_form ~kind
          ~l:8 ~p:0.05 ~cv:0.9 ()
      in
      let b =
        run_comprehensive ~seed:41 ~cycles:3000 ~engine:CC.Ode_integration
          ~kind ~l:8 ~p:0.05 ~cv:0.9 ()
      in
      feq ~eps:1e-2 a.CC.throughput b.CC.throughput)
    [ F.Sqrt; F.Pftk_simplified ]

let test_cycle_duration_no_growth_equals_basic () =
  let estimator = LI.of_tfrc ~l:8 in
  LI.prime estimator 50.0;
  let theta = 10.0 in
  let s = CC.cycle_duration_closed ~formula:sqrt_f ~estimator ~theta in
  feq s (theta /. F.eval sqrt_f (1.0 /. 50.0))

let test_cycle_duration_growth_shorter () =
  let estimator = LI.of_tfrc ~l:8 in
  LI.prime estimator 20.0;
  let theta = 200.0 in
  let s = CC.cycle_duration_closed ~formula:sqrt_f ~estimator ~theta in
  let x0 = F.eval sqrt_f (1.0 /. 20.0) in
  Alcotest.(check bool) "shorter than no-growth" true (s < theta /. x0);
  let probe = LI.copy estimator in
  LI.record probe theta;
  let x1 = F.eval sqrt_f (1.0 /. LI.estimate probe) in
  Alcotest.(check bool) "longer than at final rate" true (s > theta /. x1)

let test_cycle_duration_closed_vs_ode_single () =
  let estimator = LI.of_tfrc ~l:8 in
  LI.prime estimator 20.0;
  let theta = 120.0 in
  let s_closed =
    CC.cycle_duration_closed ~formula:pftk_simpl ~estimator ~theta
  in
  let s_ode =
    CC.cycle_duration_ode ~step:1e-4 ~formula:pftk_simpl ~estimator ~theta ()
  in
  feq ~eps:1e-3 s_closed s_ode

let test_cycle_duration_adaptive_vs_closed_sqrt () =
  (* Acceptance bar for the adaptive engine: <= 1e-6 relative error
     against the Proposition-3 closed form at the default tolerance. *)
  let estimator = LI.of_tfrc ~l:8 in
  LI.prime estimator 20.0;
  let theta = 120.0 in
  let s_closed = CC.cycle_duration_closed ~formula:sqrt_f ~estimator ~theta in
  let s_adaptive =
    CC.cycle_duration_ode_adaptive ~formula:sqrt_f ~estimator ~theta ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "rel err %.3g <= 1e-6"
       (abs_float (s_adaptive -. s_closed) /. s_closed))
    true
    (abs_float (s_adaptive -. s_closed) /. s_closed <= 1e-6)

let test_adaptive_memo_deterministic () =
  (* Second call hits the memo cache and must return the identical
     float, and a fresh estimator with the same state must too. *)
  let estimator = LI.of_tfrc ~l:8 in
  LI.prime estimator 25.0;
  let theta = 300.0 in
  let s1 =
    CC.cycle_duration_ode_adaptive ~formula:pftk_simpl ~estimator ~theta ()
  in
  let s2 =
    CC.cycle_duration_ode_adaptive ~formula:pftk_simpl ~estimator ~theta ()
  in
  let estimator' = LI.of_tfrc ~l:8 in
  LI.prime estimator' 25.0;
  let s3 =
    CC.cycle_duration_ode_adaptive ~formula:pftk_simpl ~estimator:estimator'
      ~theta ()
  in
  Alcotest.(check bool) "memo hit identical" true (s1 = s2 && s1 = s3)

let test_fixed_step_engine_matches_closed () =
  (* The legacy engine stays available behind Ode_fixed_step. *)
  let a =
    run_comprehensive ~seed:43 ~cycles:2000 ~engine:CC.Closed_form ~kind:F.Sqrt
      ~l:8 ~p:0.05 ~cv:0.9 ()
  in
  let b =
    run_comprehensive ~seed:43 ~cycles:2000 ~engine:CC.Ode_fixed_step
      ~kind:F.Sqrt ~l:8 ~p:0.05 ~cv:0.9 ()
  in
  feq ~eps:1e-2 a.CC.throughput b.CC.throughput

let test_closed_form_rejects_pftk_standard () =
  let rng = Prng.create ~seed:1 in
  let process = LP.iid_exponential rng ~p:0.05 in
  let estimator = LI.of_tfrc ~l:8 in
  match
    CC.simulate ~engine:CC.Closed_form
      ~formula:(F.create ~rtt:1.0 F.Pftk_standard)
      ~estimator ~process ~cycles:10 ()
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_v_n_zero_when_equal () =
  feq (CC.v_n ~formula:sqrt_f ~w1:0.2 ~thetahat0:30.0 ~thetahat1:30.0) 0.0

(* ------------------------- theorems ---------------------------- *)

let obs ?(cov_tt = 0.0) ?(cov_xs = 0.0) ?(lo = 5.0) ?(hi = 100.0) ?(var = true)
    () =
  {
    Th.cov_theta_thetahat = cov_tt;
    cov_rate_duration = cov_xs;
    thetahat_lo = lo;
    thetahat_hi = hi;
    estimator_has_variance = var;
  }

let pred = Alcotest.testable Th.pp_prediction ( = )

let test_theorem1_applies () =
  Alcotest.check pred "SQRT + C1 => conservative" Th.Conservative
    (Th.theorem1 sqrt_f (obs ~cov_tt:(-0.1) ()));
  Alcotest.check pred "positive cov: no prediction" Th.No_prediction
    (Th.theorem1 sqrt_f (obs ~cov_tt:1.0 ()))

let test_theorem2_directions () =
  Alcotest.check pred "SQRT concave + C2" Th.Conservative
    (Th.theorem2 sqrt_f (obs ~cov_xs:(-0.5) ()));
  Alcotest.check pred "PFTK heavy + C2c + V" Th.Non_conservative
    (Th.theorem2 pftk_simpl (obs ~cov_xs:0.0 ~lo:1.6 ~hi:4.0 ()));
  Alcotest.check pred "degenerate estimator" Th.No_prediction
    (Th.theorem2 pftk_simpl (obs ~cov_xs:0.0 ~lo:1.6 ~hi:4.0 ~var:false ()))

let test_predict_prefers_theorem1 () =
  Alcotest.check pred "predict via theorem 1" Th.Conservative
    (Th.predict sqrt_f (obs ~cov_tt:(-0.1) ~cov_xs:1.0 ()))

let test_max_overshoot_bound () =
  let r = Th.max_overshoot pftk_simpl (obs ()) in
  Alcotest.(check bool) "overshoot ratio ~ 1 for convex g" true
    (r >= 1.0 && r < 1.0001)

(* ---------------------- (C3) diagnostic ------------------------- *)

let test_c3_detects_decreasing_conditional () =
  (* S = 10/X plus small noise: E[S|X] strictly decreasing -> C3 holds. *)
  let rng = Prng.create ~seed:61 in
  let pairs =
    Array.init 800 (fun _ ->
        let x = Ebrc.Dist.uniform rng ~lo:1.0 ~hi:10.0 in
        let s = (10.0 /. x) +. Ebrc.Dist.uniform rng ~lo:0.0 ~hi:0.05 in
        (x, s))
  in
  let v = Th.check_c3 pairs in
  Alcotest.(check bool) "C3 holds" true v.Th.holds;
  Alcotest.(check int) "no violations" 0 v.Th.violations

let test_c3_detects_increasing_conditional () =
  (* S proportional to X: E[S|X] increasing -> C3 fails. *)
  let rng = Prng.create ~seed:62 in
  let pairs =
    Array.init 800 (fun _ ->
        let x = Ebrc.Dist.uniform rng ~lo:1.0 ~hi:10.0 in
        (x, x /. 5.0))
  in
  let v = Th.check_c3 pairs in
  Alcotest.(check bool) "C3 fails" false v.Th.holds;
  Alcotest.(check bool) "violations found" true (v.Th.violations > 0)

let test_c3_flat_conditional_holds () =
  (* Independent S: flat conditional passes within tolerance — the
     audio regime (cov = 0). *)
  let rng = Prng.create ~seed:63 in
  let pairs =
    Array.init 4000 (fun _ ->
        ( Ebrc.Dist.uniform rng ~lo:1.0 ~hi:10.0,
          Ebrc.Dist.exponential rng ~rate:1.0 ))
  in
  let v = Th.check_c3 ~bins:4 ~tolerance:0.2 pairs in
  Alcotest.(check bool) "flat passes with tolerance" true v.Th.holds

let test_c3_on_basic_control_trajectory () =
  (* For the basic control on iid losses, S_n = theta_n / X_n with
     theta independent of X, so E[S|X] = E[theta]/X is decreasing:
     (C3) holds on real trajectory data, implying (C2). *)
  let rng = Prng.create ~seed:64 in
  let process = LP.iid_shifted_exponential rng ~p:0.1 ~cv:0.9 in
  let estimator = LI.of_tfrc ~l:4 in
  let r =
    BC.simulate ~collect_pairs:true ~formula:pftk_simpl ~estimator ~process
      ~cycles:50_000 ()
  in
  let v = Th.check_c3 ~bins:6 ~tolerance:0.1 r.BC.rate_duration_pairs in
  Alcotest.(check bool) "C3 holds on trajectory" true v.Th.holds;
  Alcotest.(check bool) "and C2 (cov <= 0) as Harris implies" true
    (r.BC.cov_rate_duration <= 0.0)

let test_c3_validation () =
  (match Th.check_c3 ~bins:1 [| (1.0, 1.0); (2.0, 2.0) |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match Th.check_c3 (Array.make 3 (1.0, 1.0)) with
  | _ -> Alcotest.fail "expected Invalid_argument (too few)"
  | exception Invalid_argument _ -> ()

(* ----------------------- exact quadrature ---------------------- *)

let test_exact_matches_monte_carlo () =
  (* The iid Prop-1 collapse: exact Erlang quadrature vs Monte Carlo
     with uniform weights, within MC noise. *)
  List.iter
    (fun l ->
      let exact =
        Ebrc.Exact.normalized_throughput ~formula:pftk_simpl ~l ~p:0.1 ~cv:0.9
      in
      let rng = Prng.create ~seed:77 in
      let process = LP.iid_shifted_exponential rng ~p:0.1 ~cv:0.9 in
      let estimator = LI.create ~weights:(Ebrc.Weights.uniform l) in
      let mc =
        (BC.simulate ~formula:pftk_simpl ~estimator ~process ~cycles:200_000 ())
          .BC.normalized
      in
      Alcotest.(check bool)
        (Printf.sprintf "L=%d exact %.4f ~ MC %.4f" l exact mc)
        true
        (abs_float (mc -. exact) < 0.02 *. exact +. 0.002))
    [ 1; 2; 4; 8 ]

let test_exact_erlang_density_normalises () =
  List.iter
    (fun k ->
      let integral =
        Ebrc.Quadrature.adaptive_simpson
          (fun y -> Ebrc.Exact.erlang_density ~k ~rate:2.0 y)
          ~lo:0.0 ~hi:50.0
      in
      feq ~eps:1e-8 integral 1.0)
    [ 1; 2; 5; 10 ]

let test_exact_jensen_gap_nonneg_for_convex_g () =
  (* g convex (F1) => E[g(thetahat)] >= g(E[thetahat]): the exact
     Jensen gap is non-negative for SQRT and PFTK-simplified at any
     (L, p, cv). *)
  List.iter
    (fun (l, p, cv) ->
      List.iter
        (fun formula ->
          let gap = Ebrc.Exact.jensen_gap ~formula ~l ~p ~cv in
          Alcotest.(check bool)
            (Printf.sprintf "%s L=%d p=%.2f cv=%.2f gap %.4g >= 0"
               (F.name formula) l p cv gap)
            true (gap >= -1e-9))
        [ sqrt_f; pftk_simpl ])
    [ (1, 0.05, 0.9); (4, 0.2, 0.5); (8, 0.01, 0.99); (16, 0.4, 0.3) ]

let test_exact_palm_rate_above_time_average () =
  (* Feller paradox: the event-average rate exceeds the time-average
     throughput (long intervals are sampled more by time). *)
  let l = 4 and p = 0.1 and cv = 0.9 in
  let palm = Ebrc.Exact.palm_mean_rate ~formula:sqrt_f ~l ~p ~cv in
  let norm = Ebrc.Exact.normalized_throughput ~formula:sqrt_f ~l ~p ~cv in
  let time_avg = norm *. F.eval sqrt_f p in
  Alcotest.(check bool)
    (Printf.sprintf "palm %.3f >= time avg %.3f" palm time_avg)
    true (palm >= time_avg)

let test_exact_monotone_in_l () =
  (* Larger (uniform) windows reduce estimator variability: normalized
     throughput increases with L (Claim 1). *)
  let prev = ref 0.0 in
  List.iter
    (fun l ->
      let v =
        Ebrc.Exact.normalized_throughput ~formula:pftk_simpl ~l ~p:0.1 ~cv:0.9
      in
      Alcotest.(check bool)
        (Printf.sprintf "L=%d: %.4f > %.4f" l v !prev)
        true (v > !prev);
      prev := v)
    [ 1; 2; 4; 8; 16; 32 ]

(* ------------------------- properties -------------------------- *)

let prop_basic_conservative_sqrt_iid =
  QCheck.Test.make ~name:"Theorem 1 holds in MC for SQRT, iid" ~count:12
    QCheck.(
      triple (int_range 1 16) (float_range 0.01 0.3) (float_range 0.3 0.99))
    (fun (l, p, cv) ->
      let r = run_basic ~seed:(l * 7) ~cycles:30_000 ~kind:F.Sqrt ~l ~p ~cv () in
      r.BC.normalized <= 1.05)

let prop_basic_conservative_pftk_iid =
  QCheck.Test.make ~name:"Theorem 1 holds in MC for PFTK-simplified, iid"
    ~count:12
    QCheck.(
      triple (int_range 1 16) (float_range 0.01 0.3) (float_range 0.3 0.99))
    (fun (l, p, cv) ->
      let r =
        run_basic ~seed:(l * 13) ~cycles:30_000 ~kind:F.Pftk_simplified ~l ~p
          ~cv ()
      in
      r.BC.normalized <= 1.05)

let prop_adaptive_matches_closed_sqrt =
  (* Satellite: RK45 vs the SQRT closed-form cycle duration, across
     random estimator states and cycle lengths, to 1e-6 relative. *)
  QCheck.Test.make ~name:"adaptive ODE = SQRT closed form to 1e-6" ~count:60
    QCheck.(
      triple (int_range 2 16) (float_range 5.0 80.0) (float_range 1.1 20.0))
    (fun (l, prime, growth) ->
      let estimator = LI.of_tfrc ~l in
      LI.prime estimator prime;
      let theta = prime *. growth in
      let s_closed =
        CC.cycle_duration_closed ~formula:sqrt_f ~estimator ~theta
      in
      let s_adaptive =
        CC.cycle_duration_ode_adaptive ~formula:sqrt_f ~estimator ~theta ()
      in
      abs_float (s_adaptive -. s_closed) /. s_closed <= 1e-6)

let prop_comprehensive_ge_basic =
  QCheck.Test.make ~name:"Prop 2: comprehensive >= basic" ~count:8
    QCheck.(pair (int_range 2 16) (float_range 0.02 0.2))
    (fun (l, p) ->
      let b = run_basic ~seed:l ~cycles:20_000 ~kind:F.Sqrt ~l ~p ~cv:0.9 () in
      let c =
        run_comprehensive ~seed:l ~cycles:20_000 ~engine:CC.Closed_form
          ~kind:F.Sqrt ~l ~p ~cv:0.9 ()
      in
      c.CC.normalized >= b.BC.normalized -. 0.02)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_basic_conservative_sqrt_iid;
      prop_basic_conservative_pftk_iid;
      prop_adaptive_matches_closed_sqrt;
      prop_comprehensive_ge_basic;
    ]

let () =
  Alcotest.run "control"
    [
      ( "proposition1",
        [
          Alcotest.test_case "constant trajectory" `Quick test_palm_throughput_constant_trajectory;
          Alcotest.test_case "two-point exact" `Quick test_palm_throughput_two_point_exact;
          Alcotest.test_case "too short raises" `Quick test_palm_throughput_too_short;
          Alcotest.test_case "simulate agrees with formula" `Quick test_simulate_agrees_with_palm_formula;
        ] );
      ( "theorem1",
        [
          Alcotest.test_case "SQRT conservative (iid)" `Quick test_sqrt_conservative_iid;
          Alcotest.test_case "PFTK conservative (iid)" `Quick test_pftk_conservative_iid;
          Alcotest.test_case "more convex, more conservative" `Quick test_more_convex_more_conservative;
          Alcotest.test_case "larger L, less conservative" `Quick test_larger_l_less_conservative;
          Alcotest.test_case "heavier loss, more conservative" `Quick test_heavier_loss_more_conservative_pftk;
          Alcotest.test_case "SQRT invariant in p" `Quick test_sqrt_normalized_invariant_in_p;
          Alcotest.test_case "iid cov near zero" `Quick test_covariance_iid_near_zero;
          Alcotest.test_case "observed p" `Quick test_observed_p_matches_target;
          Alcotest.test_case "phases break C1" `Quick test_markov_phases_can_be_nonconservative;
        ] );
      ( "theorem2",
        [
          Alcotest.test_case "realtime SQRT conservative" `Quick test_realtime_sqrt_conservative;
          Alcotest.test_case "realtime PFTK heavy non-conservative" `Quick test_realtime_pftk_heavy_loss_nonconservative;
        ] );
      ( "comprehensive",
        [
          Alcotest.test_case "Prop 2 bound" `Quick test_comprehensive_at_least_basic;
          Alcotest.test_case "closed form = ODE (MC)" `Quick test_closed_form_matches_ode;
          Alcotest.test_case "no growth = basic cycle" `Quick test_cycle_duration_no_growth_equals_basic;
          Alcotest.test_case "growth shortens cycle" `Quick test_cycle_duration_growth_shorter;
          Alcotest.test_case "closed vs ODE single cycle" `Quick test_cycle_duration_closed_vs_ode_single;
          Alcotest.test_case "adaptive vs closed (SQRT, 1e-6)" `Quick test_cycle_duration_adaptive_vs_closed_sqrt;
          Alcotest.test_case "adaptive memo deterministic" `Quick test_adaptive_memo_deterministic;
          Alcotest.test_case "fixed-step engine A/B" `Quick test_fixed_step_engine_matches_closed;
          Alcotest.test_case "closed form rejects PFTK-std" `Quick test_closed_form_rejects_pftk_standard;
          Alcotest.test_case "V_n zero when estimates equal" `Quick test_v_n_zero_when_equal;
        ] );
      ( "exact",
        [
          Alcotest.test_case "matches Monte Carlo" `Quick test_exact_matches_monte_carlo;
          Alcotest.test_case "Erlang density normalised" `Quick test_exact_erlang_density_normalises;
          Alcotest.test_case "Jensen gap non-negative" `Quick test_exact_jensen_gap_nonneg_for_convex_g;
          Alcotest.test_case "Feller paradox ordering" `Quick test_exact_palm_rate_above_time_average;
          Alcotest.test_case "monotone in L" `Quick test_exact_monotone_in_l;
        ] );
      ( "theorems",
        [
          Alcotest.test_case "theorem 1 predicate" `Quick test_theorem1_applies;
          Alcotest.test_case "theorem 2 directions" `Quick test_theorem2_directions;
          Alcotest.test_case "predict order" `Quick test_predict_prefers_theorem1;
          Alcotest.test_case "max overshoot" `Quick test_max_overshoot_bound;
          Alcotest.test_case "C3 decreasing" `Quick test_c3_detects_decreasing_conditional;
          Alcotest.test_case "C3 increasing" `Quick test_c3_detects_increasing_conditional;
          Alcotest.test_case "C3 flat" `Quick test_c3_flat_conditional_holds;
          Alcotest.test_case "C3 on trajectory" `Quick test_c3_on_basic_control_trajectory;
          Alcotest.test_case "C3 validation" `Quick test_c3_validation;
        ] );
      ("properties", qsuite);
    ]
