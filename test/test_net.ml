(* Tests for the network elements: packets, DropTail and RED queues,
   links, loss modules, flow statistics, and the gap-detecting sink. *)

module P = Ebrc.Packet
module QD = Ebrc.Queue_discipline
module Link = Ebrc.Link
module LM = Ebrc.Loss_module
module FS = Ebrc.Flow_stats
module GS = Ebrc.Gap_sink
module E = Ebrc.Engine
module Prng = Ebrc.Prng

let feq ?(eps = 1e-9) a b =
  Alcotest.(check bool)
    (Printf.sprintf "%.12g ~ %.12g" a b)
    true
    (abs_float (a -. b) <= eps *. (1.0 +. abs_float a +. abs_float b))

(* --------------------------- packets --------------------------- *)

let test_packet_constructors () =
  let d = P.data ~flow:1 ~seq:5 ~size:1000 ~sent_at:2.0 in
  Alcotest.(check bool) "data" true (P.is_data d);
  Alcotest.(check int) "bits" 8000 (P.bits d);
  let a = P.ack ~flow:1 ~seq:0 ~acked:4 ~dup:false ~sent_at:2.1 in
  Alcotest.(check bool) "ack not data" false (P.is_data a);
  Alcotest.(check int) "ack size" 40 a.P.size;
  let f =
    P.feedback ~flow:1 ~seq:0 ~p_estimate:0.01 ~recv_rate:100.0 ~rtt_echo:1.9
      ~hold:0.02 ~sent_at:2.2
  in
  match f.P.kind with
  | P.Feedback fb ->
      feq fb.p_estimate 0.01;
      feq fb.hold 0.02
  | P.Data | P.Ack _ -> Alcotest.fail "wrong kind"

let test_packet_invalid_size () =
  match P.data ~flow:0 ~seq:0 ~size:0 ~sent_at:0.0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* -------------------------- DropTail --------------------------- *)

let test_droptail_accepts_until_full () =
  let q = QD.create ~capacity:3 QD.Drop_tail in
  let offer () = QD.offer q ~now:0.0 ~u:0.5 in
  Alcotest.(check bool) "1" true (offer () = QD.Enqueue);
  Alcotest.(check bool) "2" true (offer () = QD.Enqueue);
  Alcotest.(check bool) "3" true (offer () = QD.Enqueue);
  Alcotest.(check bool) "4 drops" true (offer () = QD.Drop);
  Alcotest.(check int) "occupancy" 3 (QD.occupancy q);
  Alcotest.(check int) "drops" 1 (QD.drops q);
  Alcotest.(check int) "enqueues" 3 (QD.enqueues q)

let test_droptail_departure_frees_slot () =
  let q = QD.create ~capacity:1 QD.Drop_tail in
  ignore (QD.offer q ~now:0.0 ~u:0.5);
  Alcotest.(check bool) "full" true (QD.offer q ~now:0.0 ~u:0.5 = QD.Drop);
  QD.departure q ~now:1.0;
  Alcotest.(check bool) "freed" true (QD.offer q ~now:1.0 ~u:0.5 = QD.Enqueue)

let test_departure_empty_raises () =
  let q = QD.create ~capacity:1 QD.Drop_tail in
  match QD.departure q ~now:0.0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ----------------------------- RED ----------------------------- *)

let red_params =
  { QD.min_th = 5.0; max_th = 15.0; max_p = 0.1; wq = 0.2; byte_mode = false;
    mean_pktsize = 1000; gentle = false }

let test_red_no_drops_below_min_th () =
  let q = QD.create ~capacity:100 (QD.Red red_params) in
  (* Keep the queue short: no random drops while avg < min_th. *)
  for i = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "enqueue %d" i)
      true
      (QD.offer q ~now:(float_of_int i) ~u:0.0001 = QD.Enqueue)
  done;
  Alcotest.(check int) "no drops" 0 (QD.drops q)

let test_red_drops_probabilistically_between_thresholds () =
  let q = QD.create ~capacity:100 (QD.Red red_params) in
  (* Fill to raise the average well between thresholds. *)
  let dropped = ref 0 and offered = ref 0 in
  let rng = Prng.create ~seed:5 in
  for i = 1 to 200 do
    incr offered;
    match QD.offer q ~now:(float_of_int i *. 0.01) ~u:(Prng.float_unit rng) with
    | QD.Drop -> incr dropped
    | QD.Enqueue ->
        (* Serve occasionally to stay around 10 packets. *)
        if QD.occupancy q > 10 then QD.departure q ~now:(float_of_int i *. 0.01)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "some but not all dropped (%d/200)" !dropped)
    true
    (!dropped > 0 && !dropped < 100)

let test_red_forced_drop_above_max_th () =
  let q = QD.create ~capacity:1000 (QD.Red { red_params with wq = 1.0 }) in
  (* wq = 1: the average tracks the instantaneous queue exactly. *)
  for i = 1 to 20 do
    ignore (QD.offer q ~now:(float_of_int i *. 1e-3) ~u:0.999)
  done;
  (* occupancy/avg now >= max_th = 15 -> forced drop regardless of u. *)
  Alcotest.(check bool) "forced drop" true
    (QD.offer q ~now:0.05 ~u:0.999999 = QD.Drop)

let test_red_hard_limit () =
  let q = QD.create ~capacity:2 (QD.Red { red_params with min_th = 100.0; max_th = 200.0 }) in
  ignore (QD.offer q ~now:0.0 ~u:0.5);
  ignore (QD.offer q ~now:0.0 ~u:0.5);
  Alcotest.(check bool) "hard full" true (QD.offer q ~now:0.0 ~u:0.5 = QD.Drop)

let test_red_average_decays_when_idle () =
  let q =
    QD.create ~service_rate:100.0 ~capacity:100
      (QD.Red { red_params with wq = 0.5 })
  in
  (* u close to 1 means "never randomly dropped". *)
  for i = 1 to 10 do
    ignore (QD.offer q ~now:(float_of_int i *. 1e-3) ~u:0.999999)
  done;
  let avg_busy = QD.average_queue q in
  while QD.occupancy q > 0 do
    QD.departure q ~now:0.011
  done;
  (* After a long idle period the EWMA must have decayed. *)
  ignore (QD.offer q ~now:10.0 ~u:1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "decayed: %.3f -> %.3f" avg_busy (QD.average_queue q))
    true
    (QD.average_queue q < avg_busy /. 2.0)

let test_red_default_params () =
  let p = QD.default_red ~bdp:100.0 in
  feq p.QD.min_th 25.0;
  feq p.QD.max_th 125.0;
  feq p.QD.max_p 0.1;
  feq p.QD.wq 0.002

let test_red_invalid_params () =
  match
    QD.create ~capacity:10
      (QD.Red { red_params with min_th = 5.0; max_th = 4.0 })
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ---------------------------- link ----------------------------- *)

let test_link_delivers_with_delay () =
  let engine = E.create () in
  let q = QD.create ~capacity:10 QD.Drop_tail in
  let link =
    Link.create ~engine ~rate_bps:8000.0 ~delay:0.5 ~queue:q
      ~rng:(Prng.create ~seed:1)
  in
  let delivered = ref [] in
  Link.set_deliver link (fun pkt -> delivered := (E.now engine, pkt.P.seq) :: !delivered);
  (* 1000-byte packet at 8000 bps: 1 s transmission + 0.5 s delay. *)
  ignore
    (E.schedule engine ~at:0.0 (fun () ->
         Link.send link (P.data ~flow:0 ~seq:0 ~size:1000 ~sent_at:0.0)));
  ignore (E.run engine);
  match !delivered with
  | [ (t, 0) ] -> feq t 1.5
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_link_serialises_back_to_back () =
  let engine = E.create () in
  let q = QD.create ~capacity:10 QD.Drop_tail in
  let link =
    Link.create ~engine ~rate_bps:8000.0 ~delay:0.0 ~queue:q
      ~rng:(Prng.create ~seed:1)
  in
  let times = ref [] in
  Link.set_deliver link (fun _ -> times := E.now engine :: !times);
  ignore
    (E.schedule engine ~at:0.0 (fun () ->
         Link.send link (P.data ~flow:0 ~seq:0 ~size:1000 ~sent_at:0.0);
         Link.send link (P.data ~flow:0 ~seq:1 ~size:1000 ~sent_at:0.0)));
  ignore (E.run engine);
  match List.rev !times with
  | [ t1; t2 ] ->
      feq t1 1.0;
      feq t2 2.0
  | _ -> Alcotest.fail "expected two deliveries"

let test_link_drop_hook_and_counters () =
  let engine = E.create () in
  let q = QD.create ~capacity:1 QD.Drop_tail in
  let link =
    Link.create ~engine ~rate_bps:8000.0 ~delay:0.0 ~queue:q
      ~rng:(Prng.create ~seed:1)
  in
  let drops = ref 0 in
  Link.set_on_drop link (fun _ -> incr drops);
  ignore
    (E.schedule engine ~at:0.0 (fun () ->
         for i = 0 to 4 do
           Link.send link (P.data ~flow:0 ~seq:i ~size:1000 ~sent_at:0.0)
         done));
  ignore (E.run engine);
  (* Occupancy counts the in-service packet until it departs, so with
     capacity 1 only the first of five simultaneous sends is admitted:
     1 delivered, 4 dropped. *)
  Alcotest.(check int) "delivered" 1 (Link.delivered link);
  Alcotest.(check int) "dropped" 4 !drops;
  feq (Link.utilization link ~duration:1.0) 1.0

let test_link_transmission_time () =
  let engine = E.create () in
  let q = QD.create ~capacity:1 QD.Drop_tail in
  let link =
    Link.create ~engine ~rate_bps:1e6 ~delay:0.0 ~queue:q
      ~rng:(Prng.create ~seed:1)
  in
  feq
    (Link.transmission_time link (P.data ~flow:0 ~seq:0 ~size:1250 ~sent_at:0.0))
    0.01

(* ------------------------ loss modules ------------------------- *)

(* Drive [n] packets through a dropper and return the per-packet
   pass/drop verdicts (true = passed). *)
let verdicts lm n =
  List.init n (fun i ->
      LM.process lm (P.data ~flow:0 ~seq:i ~size:100 ~sent_at:0.0))

let test_bernoulli_dropper_rate () =
  let rng = Prng.create ~seed:3 in
  let lm = LM.bernoulli rng ~p:0.2 in
  let passed = ref 0 in
  for i = 0 to 49_999 do
    if LM.process lm (P.data ~flow:0 ~seq:i ~size:100 ~sent_at:0.0) then
      incr passed
  done;
  let offered, dropped = LM.stats lm in
  Alcotest.(check int) "offered" 50_000 offered;
  Alcotest.(check bool)
    (Printf.sprintf "drop rate %.3f ~ 0.2" (float_of_int dropped /. 50_000.0))
    true
    (abs_float ((float_of_int dropped /. 50_000.0) -. 0.2) < 0.01);
  Alcotest.(check int) "conservation" 50_000 (!passed + dropped)

let test_periodic_dropper () =
  let lm = LM.periodic ~period:3 in
  let verdicts =
    List.init 9 (fun i ->
        LM.process lm (P.data ~flow:0 ~seq:i ~size:100 ~sent_at:0.0))
  in
  Alcotest.(check (list bool)) "every 3rd dropped"
    [ true; true; false; true; true; false; true; true; false ]
    verdicts

let test_gap_skip_drop_rate_matches_per_packet () =
  (* The gap-skipped sampler and the per-packet sampler draw different
     random streams, so equivalence is statistical: both must hit the
     target drop rate. *)
  let n = 50_000 and p = 0.2 in
  let rate_of lm =
    let dropped =
      List.fold_left (fun d pass -> if pass then d else d + 1) 0
        (verdicts lm n)
    in
    float_of_int dropped /. float_of_int n
  in
  (* Pin the toggle for each arm and restore whatever the environment
     selected (the suite also runs under EBRC_GAP_SKIP=0). *)
  let was = LM.gap_skip_enabled () in
  Fun.protect ~finally:(fun () -> LM.set_gap_skip was) @@ fun () ->
  LM.set_gap_skip true;
  let gap_rate = rate_of (LM.bernoulli (Prng.create ~seed:11) ~p) in
  LM.set_gap_skip false;
  let per_rate = rate_of (LM.bernoulli (Prng.create ~seed:11) ~p) in
  Alcotest.(check bool)
    (Printf.sprintf "gap-skip rate %.4f ~ %.1f" gap_rate p)
    true
    (abs_float (gap_rate -. p) < 0.01);
  Alcotest.(check bool)
    (Printf.sprintf "per-packet rate %.4f ~ %.1f" per_rate p)
    true
    (abs_float (per_rate -. p) < 0.01)

let test_gap_skip_chi_squared () =
  (* Under i.i.d. Bernoulli(p) drops, the number of passed packets
     between consecutive drops is Geometric(p) on {0, 1, ...} with pmf
     p (1-p)^k. Bin the observed gaps from the gap-skipped sampler and
     compare with the exact pmf via a chi-squared statistic. With 15
     bins (k = 0..13 plus a pooled tail), the 99.9% critical value for
     14 degrees of freedom is 36.1; the seed is fixed, so this is a
     deterministic regression gate, not a flaky sampling test. *)
  let p = 0.1 and n = 200_000 and nbins = 15 in
  let lm = LM.bernoulli (Prng.create ~seed:5) ~p in
  let bins = Array.make nbins 0 in
  let gaps = ref 0 in
  let run = ref 0 in
  List.iter
    (fun pass ->
      if pass then incr run
      else begin
        let k = min !run (nbins - 1) in
        bins.(k) <- bins.(k) + 1;
        incr gaps;
        run := 0
      end)
    (verdicts lm n);
  Alcotest.(check bool) "enough loss events" true (!gaps > 10_000);
  let total = float_of_int !gaps in
  let chi2 = ref 0.0 in
  for k = 0 to nbins - 1 do
    let prob =
      if k < nbins - 1 then p *. ((1.0 -. p) ** float_of_int k)
      else (1.0 -. p) ** float_of_int (nbins - 1) (* pooled tail *)
    in
    let expected = total *. prob in
    let diff = float_of_int bins.(k) -. expected in
    chi2 := !chi2 +. (diff *. diff /. expected)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "chi2 %.2f < 36.1" !chi2)
    true (!chi2 < 36.1)

let test_gap_skip_p_zero_and_one () =
  (* Degenerate rates must not hang or divide by zero: p = 0 is a
     lossless fast path, p = 1 is rejected (both samplers require
     p in [0,1)), and p near 1 drops almost everything. *)
  let lossless = LM.bernoulli (Prng.create ~seed:1) ~p:0.0 in
  List.iter (fun pass -> Alcotest.(check bool) "p=0 passes" true pass)
    (verdicts lossless 100);
  (match LM.bernoulli (Prng.create ~seed:1) ~p:1.0 with
  | _ -> Alcotest.fail "expected Invalid_argument for p=1"
  | exception Invalid_argument _ -> ());
  let near_wall = LM.bernoulli (Prng.create ~seed:1) ~p:0.99 in
  let dropped =
    List.fold_left (fun d pass -> if pass then d else d + 1) 0
      (verdicts near_wall 1000)
  in
  Alcotest.(check bool)
    (Printf.sprintf "p=0.99 drops %d/1000" dropped)
    true (dropped > 950)

let test_loss_module_telemetry_counters () =
  let module Tm = Ebrc.Telemetry in
  Tm.set_enabled true;
  Tm.reset ();
  Fun.protect
    ~finally:(fun () ->
      Tm.set_enabled false;
      Tm.reset ())
    (fun () ->
      let lm = LM.periodic ~period:3 in
      ignore (verdicts lm 9);
      let count name =
        match
          List.find_opt (fun s -> s.Tm.snap_name = name) (Tm.snapshot ())
        with
        | Some s -> s.Tm.count
        | None -> 0
      in
      Alcotest.(check int) "offered" 9 (count "loss_module.offered");
      Alcotest.(check int) "drops" 3 (count "loss_module.drops"))

let test_lossless () =
  let lm = LM.lossless () in
  for i = 0 to 99 do
    Alcotest.(check bool) "passes" true
      (LM.process lm (P.data ~flow:0 ~seq:i ~size:100 ~sent_at:0.0))
  done

let test_bernoulli_bytes_length_dependence () =
  let rng = Prng.create ~seed:7 in
  let lm = LM.bernoulli_bytes rng ~p_ref:0.1 ~ref_size:1000 in
  let drops_for size =
    let d = ref 0 in
    for i = 0 to 19_999 do
      if not (LM.process lm (P.data ~flow:0 ~seq:i ~size ~sent_at:0.0)) then
        incr d
    done;
    float_of_int !d /. 20_000.0
  in
  let small = drops_for 100 and big = drops_for 2000 in
  Alcotest.(check bool)
    (Printf.sprintf "small %.4f ~ 0.01" small)
    true
    (abs_float (small -. 0.01) < 0.005);
  Alcotest.(check bool)
    (Printf.sprintf "big %.4f ~ 0.2" big)
    true
    (abs_float (big -. 0.2) < 0.02)

let test_red_byte_mode_prefers_small_packets () =
  (* At the same average queue, byte-mode RED drops large packets more
     often than small ones. *)
  let params =
    { red_params with byte_mode = true; mean_pktsize = 1000; wq = 1.0 }
  in
  let run_with size =
    let q = QD.create ~capacity:1000 (QD.Red params) in
    (* Pin the average between thresholds. *)
    for _ = 1 to 10 do
      ignore (QD.offer ~bytes:1000 q ~now:0.0 ~u:0.9999)
    done;
    let rng = Prng.create ~seed:9 in
    let drops = ref 0 in
    for _ = 1 to 2000 do
      match QD.offer ~bytes:size q ~now:0.0 ~u:(Prng.float_unit rng) with
      | QD.Drop -> incr drops
      | QD.Enqueue -> QD.departure q ~now:0.0
    done;
    !drops
  in
  let small = run_with 100 and big = run_with 2000 in
  Alcotest.(check bool)
    (Printf.sprintf "big packets dropped more: %d > %d" big small)
    true (big > small)

let test_gilbert_elliott_burstiness () =
  let rng = Prng.create ~seed:4 in
  let lm =
    LM.gilbert_elliott rng ~p_good:0.001 ~p_bad:0.5 ~good_to_bad:0.01
      ~bad_to_good:0.1
  in
  let losses = ref 0 in
  for i = 0 to 99_999 do
    if not (LM.process lm (P.data ~flow:0 ~seq:i ~size:100 ~sent_at:0.0)) then
      incr losses
  done;
  (* Stationary bad fraction = 0.01/(0.01+0.1) ~ 0.0909; expected loss
     ~ 0.0909*0.5 + 0.909*0.001 ~ 0.0464. *)
  let rate = float_of_int !losses /. 100_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "bursty loss rate %.4f in (0.02, 0.08)" rate)
    true
    (rate > 0.02 && rate < 0.08)

(* ----------------------- flow statistics ----------------------- *)

let test_flow_stats_loss_event_aggregation () =
  let fs = FS.create ~flow:0 ~rtt_hint:0.1 in
  (* Two losses within one RTT = one event; a later loss = another. *)
  FS.on_loss fs ~now:1.0;
  FS.on_loss fs ~now:1.05;
  FS.on_loss fs ~now:2.0;
  Alcotest.(check int) "two events" 2 (FS.loss_events fs);
  Alcotest.(check int) "three packets lost" 3 (FS.lost fs)

let test_flow_stats_intervals () =
  let fs = FS.create ~flow:0 ~rtt_hint:0.1 in
  FS.on_loss fs ~now:0.0;
  for i = 1 to 10 do
    FS.on_receive fs ~now:(0.0 +. (0.01 *. float_of_int i)) ~bytes:100
  done;
  FS.on_loss fs ~now:1.0;
  for i = 1 to 20 do
    FS.on_receive fs ~now:(1.0 +. (0.01 *. float_of_int i)) ~bytes:100
  done;
  FS.on_loss fs ~now:2.0;
  let ivs = FS.loss_event_intervals fs in
  Alcotest.(check int) "two completed intervals" 2 (Array.length ivs);
  feq ivs.(0) 10.0;
  feq ivs.(1) 20.0;
  feq (FS.loss_event_rate fs) (2.0 /. 30.0)

let test_flow_stats_throughput () =
  let fs = FS.create ~flow:0 ~rtt_hint:0.1 in
  for i = 0 to 10 do
    FS.on_receive fs ~now:(float_of_int i) ~bytes:1000
  done;
  feq (FS.throughput_pps fs) 1.0;
  feq (FS.throughput_bps fs) (8.0 *. 11_000.0 /. 10.0)

let test_flow_stats_rtt () =
  let fs = FS.create ~flow:0 ~rtt_hint:0.1 in
  FS.on_rtt_sample fs 0.05;
  FS.on_rtt_sample fs 0.07;
  feq (FS.mean_rtt fs) 0.06;
  Alcotest.(check int) "samples" 2 (FS.rtt_samples fs)

(* --------------------------- gap sink -------------------------- *)

let test_gap_sink_detects_losses () =
  let gs = GS.create ~flow:0 ~rtt_hint:0.1 in
  let pkt seq = P.data ~flow:0 ~seq ~size:100 ~sent_at:0.0 in
  GS.on_packet gs ~now:0.0 (pkt 0);
  GS.on_packet gs ~now:0.1 (pkt 1);
  GS.on_packet gs ~now:0.2 (pkt 3);   (* seq 2 lost *)
  GS.on_packet gs ~now:5.0 (pkt 10);  (* 4..9 lost, new event *)
  let st = GS.stats gs in
  Alcotest.(check int) "2 loss events" 2 (FS.loss_events st);
  Alcotest.(check int) "received" 4 (FS.received st)

let test_gap_sink_contiguous_no_loss () =
  let gs = GS.create ~flow:0 ~rtt_hint:0.1 in
  for i = 0 to 99 do
    GS.on_packet gs ~now:(float_of_int i *. 0.01)
      (P.data ~flow:0 ~seq:i ~size:100 ~sent_at:0.0)
  done;
  Alcotest.(check int) "no events" 0 (FS.loss_events (GS.stats gs))

(* ------------------------- properties -------------------------- *)

let prop_droptail_occupancy_bounded =
  QCheck.Test.make ~name:"DropTail occupancy never exceeds capacity"
    ~count:100
    QCheck.(pair (int_range 1 20) (list_of_size Gen.(int_range 1 200) bool))
    (fun (cap, ops) ->
      let q = QD.create ~capacity:cap QD.Drop_tail in
      List.for_all
        (fun enqueue ->
          if enqueue then ignore (QD.offer q ~now:0.0 ~u:0.5)
          else if QD.occupancy q > 0 then QD.departure q ~now:0.0;
          QD.occupancy q <= cap)
        ops)

let prop_bernoulli_conservation =
  QCheck.Test.make ~name:"loss module conserves packets" ~count:50
    QCheck.(pair small_nat (float_range 0.0 0.9))
    (fun (seed, p) ->
      let rng = Prng.create ~seed in
      let lm = LM.bernoulli rng ~p in
      let passed = ref 0 in
      for i = 0 to 999 do
        if LM.process lm (P.data ~flow:0 ~seq:i ~size:10 ~sent_at:0.0) then
          incr passed
      done;
      let offered, dropped = LM.stats lm in
      offered = 1000 && !passed + dropped = 1000)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_droptail_occupancy_bounded; prop_bernoulli_conservation ]

let () =
  Alcotest.run "net"
    [
      ( "packet",
        [
          Alcotest.test_case "constructors" `Quick test_packet_constructors;
          Alcotest.test_case "invalid size" `Quick test_packet_invalid_size;
        ] );
      ( "droptail",
        [
          Alcotest.test_case "fills then drops" `Quick test_droptail_accepts_until_full;
          Alcotest.test_case "departure frees" `Quick test_droptail_departure_frees_slot;
          Alcotest.test_case "empty departure raises" `Quick test_departure_empty_raises;
        ] );
      ( "red",
        [
          Alcotest.test_case "no drops below min_th" `Quick test_red_no_drops_below_min_th;
          Alcotest.test_case "probabilistic between thresholds" `Quick test_red_drops_probabilistically_between_thresholds;
          Alcotest.test_case "forced above max_th" `Quick test_red_forced_drop_above_max_th;
          Alcotest.test_case "hard limit" `Quick test_red_hard_limit;
          Alcotest.test_case "idle decay" `Quick test_red_average_decays_when_idle;
          Alcotest.test_case "ns-2 default geometry" `Quick test_red_default_params;
          Alcotest.test_case "invalid params" `Quick test_red_invalid_params;
        ] );
      ( "link",
        [
          Alcotest.test_case "delivery with delay" `Quick test_link_delivers_with_delay;
          Alcotest.test_case "serialisation" `Quick test_link_serialises_back_to_back;
          Alcotest.test_case "drop hook + counters" `Quick test_link_drop_hook_and_counters;
          Alcotest.test_case "transmission time" `Quick test_link_transmission_time;
        ] );
      ( "loss_module",
        [
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_dropper_rate;
          Alcotest.test_case "periodic" `Quick test_periodic_dropper;
          Alcotest.test_case "lossless" `Quick test_lossless;
          Alcotest.test_case "bernoulli bytes" `Quick test_bernoulli_bytes_length_dependence;
          Alcotest.test_case "RED byte mode" `Quick test_red_byte_mode_prefers_small_packets;
          Alcotest.test_case "gilbert-elliott" `Quick test_gilbert_elliott_burstiness;
          Alcotest.test_case "gap-skip rate" `Quick
            test_gap_skip_drop_rate_matches_per_packet;
          Alcotest.test_case "gap-skip chi-squared" `Quick
            test_gap_skip_chi_squared;
          Alcotest.test_case "gap-skip degenerate p" `Quick
            test_gap_skip_p_zero_and_one;
          Alcotest.test_case "telemetry counters" `Quick
            test_loss_module_telemetry_counters;
        ] );
      ( "flow_stats",
        [
          Alcotest.test_case "loss-event aggregation" `Quick test_flow_stats_loss_event_aggregation;
          Alcotest.test_case "intervals" `Quick test_flow_stats_intervals;
          Alcotest.test_case "throughput" `Quick test_flow_stats_throughput;
          Alcotest.test_case "rtt" `Quick test_flow_stats_rtt;
        ] );
      ( "gap_sink",
        [
          Alcotest.test_case "detects losses" `Quick test_gap_sink_detects_losses;
          Alcotest.test_case "contiguous clean" `Quick test_gap_sink_contiguous_no_loss;
        ] );
      ("properties", qsuite);
    ]
