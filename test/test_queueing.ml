(* Queueing-theoretic validation of the simulator substrate: the link
   model must agree with classic closed forms where they exist.

   - M/D/1: Poisson arrivals into a fixed-rate server give mean waiting
     time Wq = rho * s / (2 (1 - rho)) with s the (deterministic)
     service time.
   - Little's law: mean queue occupancy equals arrival rate times mean
     sojourn.
   - The PFTK formula itself: simulated TCP under memoryless loss at
     rate p must land near f(p, rtt) — the validation the PFTK paper
     performed against real traces, rerun against our TCP model. *)

module E = Ebrc.Engine
module P = Ebrc.Packet
module QD = Ebrc.Queue_discipline
module Link = Ebrc.Link
module PS = Ebrc.Probe_source
module Prng = Ebrc.Prng

let close ?(tol = 0.1) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.5g within %g%% of %.5g" name actual (tol *. 100.0)
       expected)
    true
    (abs_float (actual -. expected) <= tol *. (abs_float expected +. 1e-9))

(* Drive a Poisson stream at utilisation [rho] into a 1000-byte/packet
   link and measure per-packet sojourn (arrival at the queue to delivery,
   minus propagation). *)
let run_md1 ~rho ~seed ~duration =
  let engine = E.create () in
  let rate_bps = 8e6 in
  let service = 8000.0 /. rate_bps in (* 1 ms *)
  let queue = QD.create ~capacity:100_000 QD.Drop_tail in
  let link =
    Link.create ~engine ~rate_bps ~delay:0.0 ~queue
      ~rng:(Prng.create ~seed:(seed + 1))
  in
  let src =
    PS.create ~engine ~flow:0
      ~rate:(rho /. service)
      ~pacing:(PS.Poisson (Prng.create ~seed))
      ()
  in
  let sojourns = ref [] in
  PS.set_transmit src (fun pkt -> Link.send link pkt);
  Link.set_deliver link (fun pkt ->
      sojourns := (E.now engine -. P.sent_at pkt) :: !sojourns);
  ignore (E.schedule engine ~at:0.0 (fun () -> PS.start src));
  ignore (E.run ~until:duration engine);
  let mean_sojourn = Ebrc.Descriptive.mean (Array.of_list !sojourns) in
  (service, mean_sojourn)

let test_md1_waiting_time_moderate_load () =
  let rho = 0.5 in
  let service, mean_sojourn = run_md1 ~rho ~seed:3 ~duration:2000.0 in
  (* Pollaczek-Khinchine for M/D/1: Wq = rho s / (2 (1 - rho)). *)
  let wq = rho *. service /. (2.0 *. (1.0 -. rho)) in
  close ~tol:0.05 "mean sojourn" (service +. wq) mean_sojourn

let test_md1_waiting_time_high_load () =
  let rho = 0.8 in
  let service, mean_sojourn = run_md1 ~rho ~seed:4 ~duration:4000.0 in
  let wq = rho *. service /. (2.0 *. (1.0 -. rho)) in
  close ~tol:0.1 "mean sojourn" (service +. wq) mean_sojourn

let test_md1_low_load_no_queueing () =
  let service, mean_sojourn = run_md1 ~rho:0.05 ~seed:5 ~duration:500.0 in
  (* Almost no waiting: sojourn ~ service. *)
  close ~tol:0.05 "sojourn ~ service" (service *. 1.026) mean_sojourn

let test_littles_law () =
  (* N = lambda W with the occupancy sampled on an independent
     fine-grained clock (the arrival-epoch left-endpoint sum is biased
     low because departures drain the queue between arrivals). *)
  let rho = 0.7 in
  let engine = E.create () in
  let rate_bps = 8e6 in
  let service = 8000.0 /. rate_bps in
  let queue = QD.create ~capacity:100_000 QD.Drop_tail in
  let link =
    Link.create ~engine ~rate_bps ~delay:0.0 ~queue ~rng:(Prng.create ~seed:7)
  in
  let src =
    PS.create ~engine ~flow:0
      ~rate:(rho /. service)
      ~pacing:(PS.Poisson (Prng.create ~seed:6))
      ()
  in
  let sojourns = ref [] and arrivals = ref 0 in
  PS.set_transmit src (fun pkt ->
      incr arrivals;
      Link.send link pkt);
  Link.set_deliver link (fun pkt ->
      sojourns := (E.now engine -. P.sent_at pkt) :: !sojourns);
  let occ_sum = ref 0.0 and occ_n = ref 0 in
  let rec sample () =
    occ_sum := !occ_sum +. float_of_int (QD.occupancy queue);
    incr occ_n;
    ignore (E.schedule_after engine ~delay:(service /. 3.0) (fun () -> sample ()))
  in
  ignore (E.schedule engine ~at:0.0 (fun () -> PS.start src));
  ignore (E.schedule engine ~at:0.0 (fun () -> sample ()));
  let duration = 500.0 in
  ignore (E.run ~until:duration engine);
  let mean_sojourn = Ebrc.Descriptive.mean (Array.of_list !sojourns) in
  let mean_occupancy = !occ_sum /. float_of_int !occ_n in
  let arrival_rate = float_of_int !arrivals /. duration in
  close ~tol:0.1 "Little's law" (arrival_rate *. mean_sojourn) mean_occupancy

(* ---------------- PFTK formula vs simulated TCP ------------------ *)

let run_tcp_under_bernoulli_loss ~p ~seed ~duration =
  let module TS = Ebrc.Tcp_sender in
  let module TR = Ebrc.Tcp_receiver in
  let module LM = Ebrc.Loss_module in
  let engine = E.create () in
  let rng = Prng.create ~seed in
  let dropper = LM.bernoulli rng ~p in
  let sender = TS.create ~max_window:2000.0 ~engine ~flow:0 () in
  let receiver = TR.create ~engine ~flow:0 () in
  let delay = 0.05 in
  TS.set_transmit sender (fun pkt ->
      if LM.process dropper pkt then
        ignore
          (E.schedule_after engine ~delay (fun () -> TR.on_data receiver pkt)));
  TR.set_ack_sink receiver (fun ~acked ~dup ~echo ->
      ignore
        (E.schedule_after engine ~delay (fun () ->
             TS.on_ack sender ~acked ~dup ~echo)));
  ignore (E.schedule engine ~at:0.0 (fun () -> TS.start sender));
  ignore (E.run ~until:duration engine);
  let throughput = float_of_int (TR.received receiver) /. duration in
  (throughput, TS.loss_event_rate sender, TS.mean_rtt sender)

let test_tcp_matches_pftk_shape () =
  (* The PFTK paper validated f against measured TCP; we rerun that
     against our TCP model: for memoryless per-packet loss, measured
     throughput must be within a factor ~2 of f(p_events, rtt) across
     two decades of loss rate, and ordered in p. *)
  let check p =
    let x, p_events, rtt = run_tcp_under_bernoulli_loss ~p ~seed:8 ~duration:600.0 in
    Alcotest.(check bool) "saw events" true (p_events > 0.0);
    let f =
      Ebrc.Formula.eval
        (Ebrc.Formula.create ~rtt Ebrc.Formula.Pftk_standard)
        p_events
    in
    let ratio = x /. f in
    Alcotest.(check bool)
      (Printf.sprintf "p=%.3f: x=%.1f f=%.1f ratio=%.2f in [0.5, 2]" p x f
         ratio)
      true
      (ratio > 0.5 && ratio < 2.0);
    x
  in
  let x1 = check 0.002 in
  let x2 = check 0.01 in
  let x3 = check 0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "throughput ordered in p: %.1f > %.1f > %.1f" x1 x2 x3)
    true
    (x1 > x2 && x2 > x3)

let test_tcp_sqrt_scaling () =
  (* Quadrupling the loss rate should roughly halve throughput in the
     sqrt regime (small p). *)
  let x1, p1, _ = run_tcp_under_bernoulli_loss ~p:0.002 ~seed:9 ~duration:600.0 in
  let x2, p2, _ = run_tcp_under_bernoulli_loss ~p:0.008 ~seed:9 ~duration:600.0 in
  let expected_ratio = sqrt (p2 /. p1) in
  let measured_ratio = x1 /. x2 in
  Alcotest.(check bool)
    (Printf.sprintf "sqrt scaling: measured %.2f vs sqrt-law %.2f (50%%)"
       measured_ratio expected_ratio)
    true
    (abs_float (measured_ratio -. expected_ratio) < 0.5 *. expected_ratio)

let () =
  Alcotest.run "queueing"
    [
      ( "md1",
        [
          Alcotest.test_case "P-K at rho=0.5" `Quick test_md1_waiting_time_moderate_load;
          Alcotest.test_case "P-K at rho=0.8" `Quick test_md1_waiting_time_high_load;
          Alcotest.test_case "low load" `Quick test_md1_low_load_no_queueing;
          Alcotest.test_case "Little's law" `Quick test_littles_law;
        ] );
      ( "pftk_vs_tcp",
        [
          Alcotest.test_case "shape across p" `Quick test_tcp_matches_pftk_shape;
          Alcotest.test_case "sqrt scaling" `Quick test_tcp_sqrt_scaling;
        ] );
    ]
