(* Tests for the live observability service: the streamed delta
   records' telescoping invariant (summed deltas == final snapshot),
   the -j1 vs -j4 byte-identity contract, the JSONL schema, the
   flight recorder, and the `ebrc status` reader over real streams. *)

module Tm = Ebrc.Telemetry
module Stream = Ebrc.Telemetry_stream
module Flight = Ebrc.Telemetry_flight
module Pool = Ebrc.Pool
module J = Ebrc_obs.Json

let scrub () =
  Stream.disable ();
  Tm.set_enabled false;
  Tm.reset ()

(* A scenario quick enough to run repeatedly but long enough for the
   0.5 s sampler to fire several times. *)
let cfg seed =
  {
    Ebrc.Scenario.default_config with
    n_tfrc = 1;
    n_tcp = 1;
    queue = Ebrc.Scenario.Drop_tail { capacity = 50 };
    duration = 4.0;
    warmup = 1.0;
    seed;
  }

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let lines_of path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> l <> "")

let parse line =
  match J.parse line with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparsable stream line (%s): %s" e line

let record_type j =
  match J.member "type" j with Some (J.Str t) -> t | _ -> "?"

(* Run one streamed scenario and return (stream lines, counter-kind
   snapshot totals by name, gauge+histogram sample counts by name). *)
let streamed_run () =
  scrub ();
  let path = Filename.temp_file "ebrc_stream_test" ".jsonl" in
  Tm.set_enabled true;
  Stream.enable ~path ~period_sim:0.5 ~period_wall:0.0;
  ignore (Ebrc.Scenario.run (cfg 42));
  let snap = Tm.snapshot () in
  Stream.finalize ();
  scrub ();
  let ls = lines_of path in
  Sys.remove path;
  (ls, snap)

let test_deltas_sum_to_snapshot () =
  let lines, snap = streamed_run () in
  (* Accumulate every per-name integer delta across delta + run_end
     records; integers telescope, so per streamed name the sum must
     equal the final merged snapshot's count exactly. *)
  let totals : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let n_deltas = ref 0 in
  List.iter
    (fun line ->
      let j = parse line in
      match record_type j with
      | "delta" | "run_end" ->
          incr n_deltas;
          List.iter
            (fun section ->
              match J.member section j with
              | Some (J.Obj kvs) ->
                  List.iter
                    (fun (name, v) ->
                      match J.to_int v with
                      | Some d ->
                          Hashtbl.replace totals name
                            (d + Option.value ~default:0
                                   (Hashtbl.find_opt totals name))
                      | None ->
                          Alcotest.failf "non-integer delta for %s" name)
                    kvs
              | _ -> ())
            [ "counters"; "gauges"; "hists" ]
      | _ -> ())
    lines;
  Alcotest.(check bool) "several sampled records" true (!n_deltas >= 3);
  Alcotest.(check bool) "streamed some metrics" true
    (Hashtbl.length totals > 0);
  Hashtbl.iter
    (fun name total ->
      match List.find_opt (fun s -> s.Tm.snap_name = name) snap with
      | Some s ->
          Alcotest.(check int)
            (name ^ " deltas sum to final snapshot")
            s.Tm.count total
      | None -> Alcotest.failf "streamed metric %s missing from snapshot" name)
    totals

let test_stream_schema () =
  let lines, _ = streamed_run () in
  Alcotest.(check bool) "has lines" true (List.length lines >= 4);
  (match lines with
  | first :: _ -> (
      let j = parse first in
      Alcotest.(check string) "first line is meta" "meta" (record_type j);
      match J.member "schema" j with
      | Some (J.Num _) -> ()
      | _ -> Alcotest.fail "meta line missing schema")
  | [] -> Alcotest.fail "empty stream");
  (match List.rev lines with
  | last :: _ ->
      Alcotest.(check string) "last line is stream_end" "stream_end"
        (record_type (parse last))
  | [] -> ());
  let seen_end = ref false in
  List.iter
    (fun line ->
      let j = parse line in
      match record_type j with
      | "delta" | "run_end" as ty ->
          List.iter
            (fun k ->
              if J.member k j = None then
                Alcotest.failf "%s record missing %S: %s" ty k line)
            [ "run"; "seq"; "t_sim"; "d_events"; "pending" ];
          if ty = "run_end" then begin
            seen_end := true;
            match J.member "ok" j with
            | Some (J.Bool _) -> ()
            | _ -> Alcotest.fail "run_end missing ok"
          end
      | "run_start" ->
          if J.member "run" j = None then
            Alcotest.fail "run_start missing run key"
      | "meta" | "stream_end" -> ()
      | other -> Alcotest.failf "unexpected record type %S" other)
    lines;
  Alcotest.(check bool) "run_end present" true !seen_end

(* The -j determinism contract: the same four scenarios streamed under
   a 1-domain and a 4-domain pool must produce byte-identical files
   (wall progress off; finalize canonicalises run interleaving). *)
let stream_bytes ~domains =
  scrub ();
  let path = Filename.temp_file "ebrc_stream_j" ".jsonl" in
  Tm.set_enabled true;
  Stream.enable ~path ~period_sim:0.5 ~period_wall:0.0;
  Pool.with_pool ~domains (fun pool ->
      ignore
        (Pool.init pool 4 (fun i ->
             ignore (Ebrc.Scenario.run (cfg (100 + i)));
             i)));
  Stream.finalize ();
  scrub ();
  let s = read_file path in
  Sys.remove path;
  s

let test_stream_j1_vs_j4 () =
  let s1 = stream_bytes ~domains:1 in
  let s4 = stream_bytes ~domains:4 in
  Alcotest.(check bool) "non-trivial stream" true (String.length s1 > 200);
  Alcotest.(check string) "byte-identical across -j" s1 s4

let test_flight_dump_on_budget () =
  scrub ();
  Tm.set_enabled true;
  Flight.set_dir (Filename.get_temp_dir_name ());
  Flight.set_enabled true;
  Ebrc.Engine.set_sim_budget (Some 0.5);
  Fun.protect
    ~finally:(fun () ->
      Ebrc.Engine.set_sim_budget None;
      Flight.set_enabled false;
      Flight.set_dir ".";
      scrub ())
  @@ fun () ->
  (match Ebrc.Scenario.run (cfg 7) with
  | _ -> Alcotest.fail "expected Budget_exceeded"
  | exception Ebrc.Engine.Budget_exceeded _ -> ());
  match Flight.last_dump () with
  | None -> Alcotest.fail "watchdog abort left no flight dump"
  | Some p ->
      Fun.protect ~finally:(fun () -> Sys.remove p)
      @@ fun () ->
      let lines = lines_of p in
      (match lines with
      | first :: _ -> (
          let j = parse first in
          Alcotest.(check string) "first line is flight header" "flight"
            (record_type j);
          (match J.member "reason" j with
          | Some (J.Str "engine.budget") -> ()
          | _ -> Alcotest.fail "dump reason is not engine.budget");
          match J.member "exn" j with
          | Some (J.Str _) -> ()
          | _ -> Alcotest.fail "dump missing exn")
      | [] -> Alcotest.fail "empty flight dump");
      (* The postmortem carries the merged metric snapshot. *)
      Alcotest.(check bool) "snapshot lines present" true
        (List.exists (fun l -> record_type (parse l) = "counter") lines)

let test_flight_dedups_same_exn () =
  scrub ();
  Flight.set_dir (Filename.get_temp_dir_name ());
  Flight.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Flight.set_enabled false;
      Flight.set_dir ".";
      scrub ())
  @@ fun () ->
  let e = Failure "flight-dedup-probe" in
  Flight.on_exn ~reason:"test.first" e;
  let p1 = Flight.last_dump () in
  Flight.on_exn ~reason:"test.second" e;
  let p2 = Flight.last_dump () in
  (match p1 with
  | Some p -> if Sys.file_exists p then Sys.remove p
  | None -> Alcotest.fail "first on_exn produced no dump");
  Alcotest.(check bool) "same exception dumps once" true (p1 = p2)

let test_status_view () =
  let lines, _ = streamed_run () in
  let v = Ebrc_obs.Status.of_lines lines in
  Alcotest.(check bool) "finished" true v.Ebrc_obs.Status.finished;
  Alcotest.(check int) "no skipped lines" 0 v.Ebrc_obs.Status.skipped;
  (match v.Ebrc_obs.Status.runs with
  | [ r ] ->
      Alcotest.(check bool) "run ended" true r.Ebrc_obs.Status.ended;
      Alcotest.(check bool) "run ok" true r.Ebrc_obs.Status.run_ok;
      Alcotest.(check bool) "events accumulated" true
        (r.Ebrc_obs.Status.events > 0);
      Alcotest.(check bool) "sampled to the end" true
        (r.Ebrc_obs.Status.t_sim > 3.0)
  | rs -> Alcotest.failf "expected 1 run row, got %d" (List.length rs));
  (* A torn tail (mid-write read) is skipped, not fatal. *)
  let torn = Ebrc_obs.Status.of_lines (lines @ [ "{\"type\":\"del" ]) in
  Alcotest.(check int) "torn tail skipped" 1 torn.Ebrc_obs.Status.skipped;
  (* The machine rendering is itself valid JSON. *)
  match J.parse (Ebrc_obs.Status.render_json v) with
  | Ok j -> (
      match J.member "finished" j with
      | Some (J.Bool true) -> ()
      | _ -> Alcotest.fail "render_json finished flag wrong")
  | Error e -> Alcotest.failf "render_json not valid JSON: %s" e

(* Task lifecycle records (the sweep-service worker's stream) and the
   multi-worker merge the serve watcher builds on. *)
let test_status_tasks_and_merge () =
  let module S = Ebrc_obs.Status in
  let worker n lines =
    S.of_lines
      ([
         Printf.sprintf
           "{\"type\":\"manifest\",\"cmd\":\"worker\",\"worker\":\"w%d\"}" n;
       ]
      @ lines)
  in
  let v1 =
    worker 1
      [
        "{\"type\":\"task\",\"id\":\"aaa\",\"phase\":\"leased\",\"t_wall\":1.0}";
        "{\"type\":\"task\",\"id\":\"aaa\",\"phase\":\"done\",\"t_wall\":3.5}";
        "{\"type\":\"progress\",\"t_wall\":3.5,\"counters\":{\"queue.claims\":1}}";
        "{\"type\":\"stream_end\"}";
      ]
  in
  let v2 =
    worker 2
      [
        "{\"type\":\"task\",\"id\":\"bbb\",\"phase\":\"leased\",\"t_wall\":1.2}";
        "{\"type\":\"task\",\"id\":\"bbb\",\"phase\":\"failed\",\"t_wall\":2.0}";
        "{\"type\":\"progress\",\"t_wall\":4.0,\"counters\":{\"queue.claims\":2,\"queue.failed\":1}}";
      ]
  in
  (match v1.S.tasks with
  | [ t ] ->
      Alcotest.(check string) "task id" "aaa" t.S.fig_id;
      Alcotest.(check string) "latest phase" "done" t.S.phase;
      Alcotest.(check bool) "t_start anchors at the lease" true
        (t.S.t_start = 1.0 && t.S.t_last = 3.5)
  | ts -> Alcotest.failf "expected 1 task row, got %d" (List.length ts));
  let m = S.merge [ v1; v2 ] in
  Alcotest.(check int) "rows concatenate" 2 (List.length m.S.tasks);
  Alcotest.(check (option int)) "counters sum by key" (Some 3)
    (List.assoc_opt "queue.claims" m.S.counters);
  Alcotest.(check (option int)) "singleton counters survive" (Some 1)
    (List.assoc_opt "queue.failed" m.S.counters);
  Alcotest.(check bool) "fleet unfinished while any member is" false
    m.S.finished;
  Alcotest.(check bool) "t_progress takes the max" true
    (m.S.t_progress = 4.0);
  let m_done = S.merge [ v1; { v2 with S.finished = true } ] in
  Alcotest.(check bool) "fleet finished when all are" true m_done.S.finished;
  Alcotest.(check bool) "merge [] is empty and unfinished" false
    (S.merge []).S.finished

let () =
  Alcotest.run "stream"
    [
      ( "deltas",
        [
          Alcotest.test_case "sum to final snapshot" `Quick
            test_deltas_sum_to_snapshot;
          Alcotest.test_case "schema" `Quick test_stream_schema;
          Alcotest.test_case "-j1 vs -j4 byte-identical" `Slow
            test_stream_j1_vs_j4;
        ] );
      ( "flight",
        [
          Alcotest.test_case "dump on budget abort" `Quick
            test_flight_dump_on_budget;
          Alcotest.test_case "dedups same exception" `Quick
            test_flight_dedups_same_exn;
        ] );
      ( "status",
        [
          Alcotest.test_case "view over a real stream" `Quick test_status_view;
          Alcotest.test_case "task rows and fleet merge" `Quick
            test_status_tasks_and_merge;
        ] );
    ]
