(* Tests for Ebrc_parallel.Pool: sequential equivalence across pool
   sizes, exception propagation, pool reuse, and the end-to-end
   determinism contract (figure tables identical at jobs=1 and
   jobs=4). *)

module Pool = Ebrc.Pool

let check_int_list = Alcotest.(check (list int))
let check_float_array = Alcotest.(check (array (float 1e-12)))

(* ----------------- sequential equivalence ----------------------- *)

let collatz_len n =
  let rec go steps n = if n <= 1 then steps else go (steps + 1) (if n mod 2 = 0 then n / 2 else (3 * n) + 1) in
  go 0 n

let test_map_matches_sequential () =
  let input = List.init 257 (fun i -> i + 1) in
  let expected = List.map collatz_len input in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          check_int_list
            (Printf.sprintf "map_list at %d domains" domains)
            expected
            (Pool.map_list pool collatz_len input)))
    [ 1; 2; 8 ]

let test_map_array () =
  let input = Array.init 100 (fun i -> float_of_int i) in
  let f x = sin x +. (x *. x) in
  let expected = Array.map f input in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          check_float_array
            (Printf.sprintf "map at %d domains" domains)
            expected (Pool.map pool f input)))
    [ 1; 2; 8 ]

let test_init () =
  let expected = Array.init 64 (fun i -> i * i) in
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (array int))
        "init" expected
        (Pool.init pool 64 (fun i -> i * i)))

let test_empty_and_singleton () =
  Pool.with_pool ~domains:3 (fun pool ->
      check_int_list "empty" [] (Pool.map_list pool succ []);
      check_int_list "singleton" [ 2 ] (Pool.map_list pool succ [ 1 ]))

(* ------------------- exception propagation ---------------------- *)

exception Boom of int

let test_exception_propagates () =
  Pool.with_pool ~domains:4 (fun pool ->
      let err =
        try
          ignore (Pool.init pool 100 (fun i -> if i = 37 then raise (Boom i) else i));
          None
        with Pool.Task_failed e -> Some e
      in
      (match err with
      | None -> Alcotest.fail "expected Task_failed"
      | Some e ->
          Alcotest.(check int) "failing task index" 37 e.Pool.t_index;
          Alcotest.(check int) "failing task seed" 37 e.Pool.t_seed;
          Alcotest.(check int) "single attempt" 1 e.Pool.t_attempts;
          Alcotest.(check bool) "original exception preserved" true
            (e.Pool.t_exn = Boom 37));
      (* the pool survives a failed job *)
      check_int_list "usable after exception" [ 1; 2; 3 ]
        (Pool.map_list pool succ [ 0; 1; 2 ]))

let test_lowest_failure_wins () =
  (* Several tasks fail; the reported index must deterministically be
     the lowest one regardless of scheduling order. *)
  Pool.with_pool ~domains:4 (fun pool ->
      let err =
        try
          ignore
            (Pool.init pool 200 (fun i ->
                 if i mod 17 = 5 then raise (Boom i) else i));
          None
        with Pool.Task_failed e -> Some e
      in
      match err with
      | None -> Alcotest.fail "expected Task_failed"
      | Some e -> Alcotest.(check int) "lowest failing index" 5 e.Pool.t_index)

let test_try_init_isolates () =
  Pool.with_pool ~domains:4 (fun pool ->
      let results =
        Pool.try_init pool 50 (fun ~attempt:_ i ->
            if i mod 10 = 3 then raise (Boom i) else i * 2)
      in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v ->
              Alcotest.(check bool)
                (Printf.sprintf "task %d ok" i)
                true
                (i mod 10 <> 3 && v = 2 * i)
          | Error e ->
              Alcotest.(check bool)
                (Printf.sprintf "task %d failed" i)
                true
                (i mod 10 = 3 && e.Pool.t_index = i && e.Pool.t_exn = Boom i))
        results)

let test_retries_with_fresh_attempt () =
  (* A task that fails on attempt 0 and succeeds on attempt 1 must be
     retried transparently; a task that always fails reports the full
     attempt count. *)
  Pool.with_pool ~domains:2 (fun pool ->
      let results =
        Pool.try_init ~retries:2 ~seed_of:(fun i -> 1000 + i) pool 10
          (fun ~attempt i ->
            if i = 4 && attempt < 1 then raise (Boom i)
            else if i = 7 then raise (Boom i)
            else attempt)
      in
      (match results.(4) with
      | Ok attempt -> Alcotest.(check int) "succeeded on retry" 1 attempt
      | Error _ -> Alcotest.fail "task 4 should succeed on attempt 1");
      match results.(7) with
      | Ok _ -> Alcotest.fail "task 7 should exhaust retries"
      | Error e ->
          Alcotest.(check int) "attempts counted" 3 e.Pool.t_attempts;
          Alcotest.(check int) "custom seed recorded" 1007 e.Pool.t_seed)

let test_only_task_filter () =
  Pool.set_only_task (Some 3);
  Fun.protect
    ~finally:(fun () -> Pool.set_only_task None)
    (fun () ->
      Pool.with_pool ~domains:2 (fun pool ->
          let results = Pool.try_init pool 6 (fun ~attempt:_ i -> i) in
          Array.iteri
            (fun i r ->
              match r with
              | Ok v ->
                  Alcotest.(check int) "only the selected task ran" 3 i;
                  Alcotest.(check int) "selected task value" 3 v
              | Error e ->
                  Alcotest.(check bool)
                    (Printf.sprintf "task %d skipped" i)
                    true
                    (i <> 3 && e.Pool.t_exn = Pool.Task_skipped))
            results;
          (* map/init ignore the filter *)
          check_int_list "map_list unaffected by only-task" [ 1; 2; 3 ]
            (Pool.map_list pool succ [ 0; 1; 2 ])))

(* ------------------------ pool reuse ----------------------------- *)

let test_pool_reuse () =
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      for round = 1 to 5 do
        let n = 50 * round in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init n (fun i -> i + round))
          (Pool.init pool n (fun i -> i + round))
      done)

let test_shutdown_idempotent () =
  let pool = Pool.create ~domains:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  let raised =
    try
      ignore (Pool.map_list pool succ [ 1 ]);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "use after shutdown raises" true raised

(* --------------- end-to-end figure determinism ------------------ *)

let figure_csv ~jobs id =
  Ebrc.Figures.run_one ~jobs ~quick:true id
  |> List.map Ebrc.Table.to_csv
  |> String.concat "\n"

let test_figure_determinism () =
  (* The acceptance bar for the parallel engine: the same figure,
     regenerated at jobs=1 and jobs=4, yields byte-identical tables. *)
  Alcotest.(check string)
    "figure 3 identical at jobs=1 and jobs=4" (figure_csv ~jobs:1 "3")
    (figure_csv ~jobs:4 "3")

let test_monte_carlo_determinism () =
  let cp : Ebrc.Many_sources.congestion_process =
    [|
      { p_i = 0.01; pi_i = 0.5 };
      { p_i = 0.05; pi_i = 0.3 };
      { p_i = 0.2; pi_i = 0.2 };
    |]
  in
  let run jobs =
    Ebrc.Many_sources.monte_carlo_batched ~jobs ~root_seed:77 cp
      ~rates:[| 2.0; 1.0; 0.5 |] ~mean_sojourn:5.0 ~steps:400 ~batches:8
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool) "batched MC identical at jobs=1 and jobs=4" true
    (r1 = r4)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map_list = List.map (1/2/8 domains)" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "map = Array.map (1/2/8 domains)" `Quick
            test_map_array;
          Alcotest.test_case "init = Array.init" `Quick test_init;
          Alcotest.test_case "empty and singleton" `Quick
            test_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "lowest failure wins" `Quick
            test_lowest_failure_wins;
          Alcotest.test_case "try_init isolates crashes" `Quick
            test_try_init_isolates;
          Alcotest.test_case "retries with fresh attempt" `Quick
            test_retries_with_fresh_attempt;
          Alcotest.test_case "only-task replay filter" `Quick
            test_only_task_filter;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "figure 3 jobs=1 vs jobs=4" `Slow
            test_figure_determinism;
          Alcotest.test_case "monte carlo jobs=1 vs jobs=4" `Quick
            test_monte_carlo_determinism;
        ] );
    ]
